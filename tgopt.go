// Package tgopt is a from-scratch Go implementation of TGOpt
// (Wang & Mendis, PPoPP 2023): redundancy-aware optimizations —
// deduplication, embedding memoization, and time-encoding
// precomputation — for Temporal Graph Attention Network (TGAT)
// inference, together with the full substrate stack: dense tensors, a
// tape-based autograd, the TGAT model itself, temporal graph storage
// with a parallel most-recent sampler, link-prediction training,
// synthetic dynamic-graph workloads shaped after the paper's seven
// datasets, and a benchmark harness regenerating every table and figure
// of the paper's evaluation.
//
// This package is the public facade: it re-exports the stable surface
// of the internal packages. The typical flow is
//
//	ds, _ := tgopt.Generate(spec, tgopt.DatasetOptions{FeatureDim: 64})
//	model, _ := tgopt.NewModel(tgopt.DefaultModelConfig(), ds.NodeFeat, ds.EdgeFeat)
//	sampler := tgopt.NewSampler(ds.Graph, 20, tgopt.MostRecent, 0)
//	engine := tgopt.NewEngine(model, sampler, tgopt.OptAll())
//	embeddings := engine.Embed(nodes, timestamps)
//
// Engine.Embed is a drop-in replacement for the baseline Model.Embed:
// its outputs are identical within the paper's stated 1e-5 tolerance
// (and in this implementation, bit-for-bit).
package tgopt

import (
	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/npy"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

// Tensor is a dense row-major float32 tensor.
type Tensor = tensor.Tensor

// RNG is the deterministic pseudo-random generator used throughout.
type RNG = tensor.RNG

// NewRNG creates a deterministic generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// NewTensor creates a zero-filled tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Graph is an immutable continuous-time dynamic graph with a T-CSR
// temporal adjacency index.
type Graph = graph.Graph

// Edge is one timestamped interaction.
type Edge = graph.Edge

// NewGraph builds a graph over nodes 1..numNodes (0 is the padding
// node) from an edge list, which is sorted chronologically.
func NewGraph(numNodes int, edges []Edge) (*Graph, error) {
	return graph.NewGraph(numNodes, edges)
}

// Dynamic is a streaming continuous-time dynamic graph supporting
// chronological appends and (rare) edge deletions. TGOpt's memoization
// stays sound under appends; deletions require Engine.InvalidateEdge.
type Dynamic = graph.Dynamic

// NewDynamic creates an empty streaming graph over nodes 1..numNodes.
func NewDynamic(numNodes int) *Dynamic { return graph.NewDynamic(numNodes) }

// Sampler draws bounded temporal neighborhoods.
type Sampler = graph.Sampler

// Strategy selects the neighbor sampling strategy.
type Strategy = graph.Strategy

// Sampling strategies. The memoization cache requires MostRecent.
const (
	MostRecent = graph.MostRecent
	Uniform    = graph.Uniform
)

// NewSampler creates a temporal neighbor sampler drawing up to k
// neighbors per target.
func NewSampler(g *Graph, k int, strategy Strategy, seed uint64) *Sampler {
	return graph.NewSampler(g, k, strategy, seed)
}

// NewDynamicSampler creates a sampler over a streaming graph.
func NewDynamicSampler(d *Dynamic, k int, strategy Strategy, seed uint64) *Sampler {
	return graph.NewDynamicSampler(d, k, strategy, seed)
}

// Model is the baseline TGAT model.
type Model = tgat.Model

// ModelConfig holds the TGAT architecture hyperparameters.
type ModelConfig = tgat.Config

// DefaultModelConfig returns the paper's architecture (2 layers, 2
// heads, 20 most-recent neighbors) at a laptop-friendly width.
func DefaultModelConfig() ModelConfig { return tgat.DefaultConfig() }

// NewModel creates a TGAT model over node and edge feature tables
// (row 0 of each must be the all-zero padding row).
func NewModel(cfg ModelConfig, nodeFeat, edgeFeat *Tensor) (*Model, error) {
	return tgat.NewModel(cfg, nodeFeat, edgeFeat)
}

// EmbedFunc computes top-layer temporal embeddings for a target batch.
type EmbedFunc = tgat.EmbedFunc

// StreamResult is the output of a full-stream inference pass.
type StreamResult = tgat.StreamResult

// StreamInference iterates every edge chronologically in batches,
// embedding and scoring each interaction — the paper's standard
// inference task.
func StreamInference(g *Graph, m *Model, batchSize int, embed EmbedFunc) *StreamResult {
	return tgat.StreamInference(g, m, batchSize, embed)
}

// Engine computes TGAT embeddings with the paper's redundancy-aware
// optimizations (Algorithm 1).
type Engine = core.Engine

// Options configure the TGOpt engine.
type Options = core.Options

// OptAll enables all three optimizations at the paper's defaults
// (2M-entry cache, 10k time window).
func OptAll() Options { return core.OptAll() }

// NewEngine creates a TGOpt engine over a model and most-recent
// sampler.
func NewEngine(m *Model, s *Sampler, opt Options) *Engine {
	return core.NewEngine(m, s, opt)
}

// Key packs a node id and timestamp into the collision-free 64-bit
// cache key of §4.1.
func Key(node int32, t float64) uint64 { return core.Key(node, t) }

// Dataset is a generated or loaded workload: graph plus feature tables.
type Dataset = dataset.Dataset

// DatasetSpec describes a synthetic dynamic-graph workload.
type DatasetSpec = dataset.Spec

// DatasetOptions control feature synthesis.
type DatasetOptions = dataset.Options

// DatasetSpecs returns the seven workloads modeled after the paper's
// Table 2.
func DatasetSpecs() []DatasetSpec { return dataset.Specs() }

// DatasetByName returns the named Table 2 workload spec.
func DatasetByName(name string) (DatasetSpec, error) { return dataset.SpecByName(name) }

// Generate synthesizes the workload described by spec.
func Generate(spec DatasetSpec, opt DatasetOptions) (*Dataset, error) {
	return dataset.Generate(spec, opt)
}

// LoadCSV reads an edge list in the TGAT artifact's ml_{name}.csv
// format.
func LoadCSV(path string) (*Graph, error) { return dataset.LoadCSV(path) }

// ReadNpy reads a NumPy .npy file (the artifact's feature-table
// format) into a tensor.
func ReadNpy(path string) (*Tensor, error) { return npy.ReadFile(path) }

// WriteNpy writes a tensor as a NumPy .npy file.
func WriteNpy(path string, t *Tensor) error { return npy.WriteFile(path, t) }

// TrainConfig controls link-prediction training.
type TrainConfig = trainer.Config

// TrainResult summarizes a training run.
type TrainResult = trainer.Result

// Train runs standard link-prediction training (negative sampling,
// BCE, Adam) over the model's parameters in place.
func Train(m *Model, g *Graph, s *Sampler, cfg TrainConfig) (*TrainResult, error) {
	return trainer.Train(m, g, s, cfg)
}
