#!/usr/bin/env bash
# Runs the committed performance suite (kernels, attention, end-to-end
# stream inference) and writes BENCH_<n>.json at the repo root, where
# <n> is the first free index — or the explicit index given as $1.
# BENCH_0.json is the pre-optimization reference; later indices track
# the hot path over time. RUNS overrides the e2e repetitions.
#
#   scripts/bench.sh cache    # regenerate the cache-policy sweep
#                             # (hit rate vs byte budget, BENCH_3.json)
#   scripts/bench.sh quant    # regenerate the int8 quantized-path report
#                             # (kernel MB/s, e2e ns/edge, hit rate at
#                             # equal budgets, AP delta; BENCH_4.json)
#   scripts/bench.sh deep     # regenerate the deep-invalidation sweep
#                             # (3-layer serving under live ingest,
#                             # selective vs clear-all; BENCH_5.json)
#   scripts/bench.sh swap     # regenerate the hot-swap sweep (cache
#                             # re-warm cost, swap pause, bitwise
#                             # post-swap spot checks; BENCH_6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "cache" ]; then
  go run ./cmd/tgopt-bench cachesweep -o BENCH_3.json
  echo "wrote BENCH_3.json" >&2
  exit 0
fi

if [ "${1:-}" = "quant" ]; then
  go run ./cmd/tgopt-bench quant -runs "${RUNS:-3}" -o BENCH_4.json
  echo "wrote BENCH_4.json" >&2
  exit 0
fi

if [ "${1:-}" = "deep" ]; then
  go run ./cmd/tgopt-bench deepsweep -runs "${RUNS:-3}" -o BENCH_5.json
  echo "wrote BENCH_5.json" >&2
  exit 0
fi

if [ "${1:-}" = "swap" ]; then
  go run ./cmd/tgopt-bench swapsweep -runs "${RUNS:-3}" -o BENCH_6.json
  echo "wrote BENCH_6.json" >&2
  exit 0
fi

n="${1:-}"
if [ -z "$n" ]; then
  n=0
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
fi

go run ./cmd/tgopt-bench perf -runs "${RUNS:-3}" -o "BENCH_${n}.json"
echo "wrote BENCH_${n}.json" >&2
