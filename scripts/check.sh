#!/usr/bin/env bash
# Tier-1 verification plus race checks for the concurrency-sensitive
# packages (the parallel runtime, the serving middleware, the request
# micro-batcher, the sharded cache, the shard router, and the mutable
# dynamic graph) and
# the crash-safety suites (checkpoint envelope, fault injection, trainer
# resume). Run on every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrency-sensitive + fault-injection packages)"
go test -race ./internal/parallel/... ./internal/serve/... ./internal/core/... \
    ./internal/batcher/... ./internal/graph/... ./internal/shard/... \
    ./internal/stats/... ./internal/checkpoint/... ./internal/faultfs/... \
    ./internal/trainer/... ./internal/tensor/... ./internal/nn/... ./internal/tgat/...

echo "== shard chaos gate (panic injection, breaker cycle, restart-from-snapshot; race-enabled)"
go test -race -count=1 -run 'TestChaos|TestRouter|TestBreaker|TestServeSharded|TestServeHealth' \
    ./internal/shard/... ./internal/serve/...

echo "== spill-tier fault injection (crash mid-seal, bit flips, torn segments; race-enabled)"
go test -race -count=1 -run 'TestSpill|TestTieredCache|TestBatcherRetire' ./internal/core/ ./internal/batcher/

echo "== cache-policy sweep smoke (Zipf trace, TinyLFU >= FIFO at equal budget)"
go test -count=1 -run 'TestCacheSweep' ./internal/perfbench/

echo "== deep-invalidation gate (3-layer transitive invalidation exactness; race-enabled)"
go test -race -count=1 -run 'TestTransitive|TestSupport|TestDeepClearAll|TestServeOutOfOrderIngestConvergesToSortedDeep' \
    ./internal/core/ ./internal/serve/

echo "== hot-swap gate (atomic model swap under load: no mixed-version rows, no stale cache; race-enabled)"
go test -race -count=1 -run 'TestServeSwap|TestRouterSwap|TestRestartAfterSwap|TestEngineSwap|TestSpillRecoveryRejects|TestCacheSnapshotVersion' \
    ./internal/serve/ ./internal/shard/ ./internal/core/
go test -count=1 -run 'TestPublishLatest|TestLatestRejects|TestFineTune' ./internal/swap/

echo "== hot-swap sweep smoke (tgopt-bench swapsweep, bitwise post-swap spot checks)"
go test -count=1 -run 'TestSwapSweep' ./internal/perfbench/

echo "== quantized-path gate (int8 kernels/cache/snapshots under race; AP within 1pp of float32)"
go test -race -count=1 -run 'TestQuant' ./internal/core/ ./internal/nn/ ./internal/tensor/
go run ./cmd/tgopt-bench quantacc -max-ap-delta 0.01 > /dev/null

echo "== bench smoke (compile + one iteration of every benchmark)"
go test -run='^$' -bench=. -benchtime=1x ./internal/tensor/ ./internal/core/ ./internal/graph/ > /dev/null

echo "== serve load smoke (tgopt-bench serve, tiny closed loop)"
go run ./cmd/tgopt-bench serve -conc 1,4 -requests 10 -warmup 2 > /dev/null

echo "== fuzz smoke (persistence parsers + ingest bodies, seed corpus + 5s each)"
go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime=5s ./internal/checkpoint/
go test -run='^$' -fuzz='^FuzzCacheReadFrom$' -fuzztime=5s ./internal/core/
go test -run='^$' -fuzz='^FuzzLoadParams$' -fuzztime=5s ./internal/tgat/
go test -run='^$' -fuzz='^FuzzIngest$' -fuzztime=5s ./internal/serve/
go test -run='^$' -fuzz='^FuzzTransitiveInvalidate$' -fuzztime=5s ./internal/core/
go test -run='^$' -fuzz='^FuzzSwapManifest$' -fuzztime=5s ./internal/swap/

echo "OK"
