#!/usr/bin/env bash
# Tier-1 verification plus race checks for the concurrency-sensitive
# packages (the parallel runtime, the serving middleware, and the
# sharded cache). Run on every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrency-sensitive packages)"
go test -race ./internal/parallel/... ./internal/serve/... ./internal/core/... ./internal/stats/...

echo "OK"
