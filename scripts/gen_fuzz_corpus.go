//go:build ignore

// gen_fuzz_corpus regenerates the checked-in fuzz seed corpora under
// internal/*/testdata/fuzz: representative valid, truncated, and
// bit-flipped snapshot bytes for the persistence readers. Run from the
// repo root after changing a snapshot format:
//
//	go run scripts/gen_fuzz_corpus.go
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"tgopt/internal/checkpoint"
	"tgopt/internal/core"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func writeCorpus(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d payload bytes)\n", filepath.Join(dir, name), len(data))
}

func main() {
	// --- core: FuzzCacheReadFrom (cache blob bytes) ---
	c := core.NewCache(16, 3, 4)
	r := tensor.NewRNG(9)
	keys := make([]uint64, 8)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	c.Store(keys, tensor.Rand(r, 8, 3))
	var v2 bytes.Buffer
	if _, err := c.WriteTo(&v2); err != nil {
		log.Fatal(err)
	}
	coreDir := "internal/core/testdata/fuzz/FuzzCacheReadFrom"
	writeCorpus(coreDir, "valid-v2", v2.Bytes())
	writeCorpus(coreDir, "truncated-v2", v2.Bytes()[:v2.Len()/2])
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x10
	writeCorpus(coreDir, "bitflip-v2", flipped)

	// --- tgat: FuzzLoadParams (full params checkpoint file bytes) ---
	cfg := tgat.Config{Layers: 1, Heads: 1, NodeDim: 4, EdgeDim: 4, TimeDim: 4, NumNeighbors: 2, Seed: 3}
	m, err := tgat.NewModel(cfg, tensor.New(3, 4), tensor.New(3, 4))
	if err != nil {
		log.Fatal(err)
	}
	tmp := filepath.Join(os.TempDir(), "gen-corpus-params.bin")
	defer os.Remove(tmp)
	if err := m.SaveParams(tmp); err != nil {
		log.Fatal(err)
	}
	params, err := os.ReadFile(tmp)
	if err != nil {
		log.Fatal(err)
	}
	tgatDir := "internal/tgat/testdata/fuzz/FuzzLoadParams"
	writeCorpus(tgatDir, "valid-v2", params)
	writeCorpus(tgatDir, "truncated-v2", params[:len(params)*2/3])
	pflip := append([]byte(nil), params...)
	pflip[len(pflip)-6] ^= 0x04
	writeCorpus(tgatDir, "bitflip-v2", pflip)

	// --- checkpoint: FuzzDecode (raw envelope bytes) ---
	env, err := checkpoint.Encode(1, func(w io.Writer) error {
		_, err := w.Write([]byte("corpus payload"))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	ckDir := "internal/checkpoint/testdata/fuzz/FuzzDecode"
	writeCorpus(ckDir, "valid", env)
	writeCorpus(ckDir, "truncated", env[:len(env)-3])
}
