// tgopt-serve runs the HTTP inference service: a TGOpt engine over a
// live dynamic graph, accepting streaming edge ingestion and serving
// memoized temporal embeddings and link scores.
//
//	tgopt-serve -d jodie-wiki --scale 0.004 --addr :8080
//	curl -X POST localhost:8080/v1/score \
//	     -d '{"pairs":[{"src":1,"dst":2,"time":1e6}]}'
//
// By default the synthetic dataset's history is pre-ingested so the
// service starts warm; --empty starts with a bare graph (grow it with
// /v1/ingest).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/graph"
	"tgopt/internal/serve"
)

func main() {
	name := flag.String("d", "jodie-wiki", "dataset to build the serving graph from")
	scale := flag.Float64("scale", 0.004, "synthetic dataset scale factor")
	dim := flag.Int("dim", 32, "feature width")
	heads := flag.Int("heads", 2, "attention heads")
	layers := flag.Int("layers", 2, "TGAT layers")
	k := flag.Int("n-degree", 10, "sampled most-recent neighbors")
	addr := flag.String("addr", ":8080", "listen address")
	empty := flag.Bool("empty", false, "start with an empty graph instead of pre-ingesting history")
	modelPath := flag.String("model", "", "load trained parameters from this checkpoint")
	cacheLimit := flag.Int("cache-limit", 0, "cache item limit (0 = 2M scaled)")
	cacheFile := flag.String("cache-file", "", "warm-start file: load memoized embeddings at boot, save on SIGINT/SIGTERM")
	flag.Parse()

	setup := experiments.Setup{
		Scale: *scale, NodeDim: *dim, Heads: *heads, Layers: *layers,
		K: *k, TimeWindow: 10_000, Seed: 1, CacheLimit: *cacheLimit,
	}
	wl, err := experiments.LoadWorkload(*name, setup)
	if err != nil {
		fatal(err)
	}
	if *modelPath != "" {
		if err := wl.Model.LoadParams(*modelPath); err != nil {
			fatal(err)
		}
	}

	dyn := graph.NewDynamic(wl.DS.Graph.NumNodes())
	if !*empty {
		for _, e := range wl.DS.Graph.Edges() {
			if _, err := dyn.Append(e); err != nil {
				fatal(err)
			}
		}
	}

	opt := core.OptAll()
	opt.CacheLimit = setup.EffectiveCacheLimit()
	srv := serve.New(wl.Model, dyn, opt)

	if *cacheFile != "" {
		if err := srv.Engine().LoadCaches(*cacheFile); err != nil {
			if os.IsNotExist(err) {
				log.Printf("no warm cache at %s; starting cold", *cacheFile)
			} else {
				fatal(err)
			}
		} else {
			log.Printf("warm-started %d memoized embeddings from %s",
				srv.Engine().CacheLen(), *cacheFile)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := srv.Engine().SaveCaches(*cacheFile); err != nil {
				log.Printf("cache save failed: %v", err)
			} else {
				log.Printf("saved %d memoized embeddings to %s", srv.Engine().CacheLen(), *cacheFile)
			}
			os.Exit(0)
		}()
	}

	log.Printf("tgopt-serve: %s (%d nodes, %d edges pre-ingested) listening on %s",
		*name, dyn.NumNodes(), dyn.NumEdges(), *addr)
	log.Printf("endpoints: POST /v1/ingest /v1/embed /v1/score, GET /v1/stats /metrics")
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-serve:", err)
	os.Exit(1)
}
