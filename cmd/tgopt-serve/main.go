// tgopt-serve runs the HTTP inference service: a TGOpt engine over a
// live dynamic graph, accepting streaming edge ingestion and serving
// memoized temporal embeddings and link scores.
//
//	tgopt-serve -d jodie-wiki --scale 0.004 --addr :8080
//	curl -X POST localhost:8080/v1/score \
//	     -d '{"pairs":[{"src":1,"dst":2,"time":1e6}]}'
//
// By default the synthetic dataset's history is pre-ingested so the
// service starts warm; --empty starts with a bare graph (grow it with
// /v1/ingest). Requests are bounded by --timeout (504 on expiry) and
// --max-inflight (429 at saturation), and SIGINT/SIGTERM drains
// in-flight requests via http.Server.Shutdown before saving the warm
// cache and exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/checkpoint"
	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/graph"
	"tgopt/internal/serve"
	"tgopt/internal/shard"
	"tgopt/internal/swap"
	"tgopt/internal/trainer"
)

func main() {
	name := flag.String("d", "jodie-wiki", "dataset to build the serving graph from")
	scale := flag.Float64("scale", 0.004, "synthetic dataset scale factor")
	dim := flag.Int("dim", 32, "feature width")
	heads := flag.Int("heads", 2, "attention heads")
	layers := flag.Int("layers", 2, "TGAT layers")
	k := flag.Int("n-degree", 10, "sampled most-recent neighbors")
	addr := flag.String("addr", ":8080", "listen address")
	empty := flag.Bool("empty", false, "start with an empty graph instead of pre-ingesting history")
	modelPath := flag.String("model", "", "load trained parameters from this checkpoint")
	cacheLimit := flag.Int("cache-limit", 0, "cache item limit (0 = 2M scaled)")
	cacheBudget := flag.Int64("cache-budget", 0, "hot-tier cache byte budget (overrides -cache-limit; 0 = use the item limit)")
	cachePolicy := flag.String("cache-policy", "tinylfu", "hot-tier eviction policy: tinylfu (sketch-based admission) or fifo (the paper's policy)")
	spillDir := flag.String("cache-spill-dir", "", "spill evicted cache entries to append-only segment files under this directory (empty = no cold tier)")
	spillMax := flag.Int64("cache-spill-max", 0, "cold-tier on-disk byte budget (0 = unbounded; oldest segments dropped first)")
	cacheFile := flag.String("cache-file", "", "warm-start file: load memoized embeddings at boot, save on SIGINT/SIGTERM")
	snapInterval := flag.Duration("snapshot-interval", 0, "background cache snapshot cadence to -cache-file (0 disables; snapshots are atomic, a crash never corrupts the file)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 disables; exceeded requests get 504)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrently-executing requests (0 = unlimited; excess gets 429)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for draining in-flight requests")
	batchWindow := flag.Duration("batch-window", batcher.DefaultWindow, "max wait before flushing a partial cross-request batch (only applies while another fused pass is executing)")
	batchMax := flag.Int("batch-max", batcher.DefaultMaxBatch, "flush a cross-request batch at this many unique targets")
	batchOff := flag.Bool("batch-off", false, "disable cross-request micro-batching (each request runs its own engine pass)")
	lateness := flag.Float64("lateness", 0, "out-of-order tolerance: accept late edges within this many time units of the stream maximum (0 = strict chronological ingest; older edges are dropped against the watermark)")
	shards := flag.Int("shards", 1, "partition serving into this many fault-isolated engine shards (1 = single engine; >= 2 enables the scatter-gather router)")
	shardQuorum := flag.Int("shard-quorum", 1, "healthy shards required to accept a request (below it: 503 + Retry-After)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge a shard leg to a replica after max(this, the shard's observed p99) (0 disables hedged reads)")
	breakerWindow := flag.Int("breaker-window", 64, "per-shard breaker: rolling outcome window")
	breakerThreshold := flag.Float64("breaker-threshold", 0.5, "per-shard breaker: failure rate that opens the breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 500*time.Millisecond, "per-shard breaker: open duration before half-open probes")
	breakerProbes := flag.Int("breaker-probes", 3, "per-shard breaker: consecutive half-open successes required to re-close")
	quant := flag.String("quant", "float32", "inference precision: float32 (default) or int8 (packed kernels + ~4x denser memo cache; see DESIGN.md §14)")
	swapDir := flag.String("swap-dir", "", "online-learning swap directory (params-<version>.tgp + CURRENT manifest): load the latest published params at boot and hot-swap to new versions while serving (see DESIGN.md §16)")
	swapInterval := flag.Duration("swap-interval", 0, "swap loop cadence: poll -swap-dir (or fine-tune, with -swap-train) this often (0 disables the loop; boot-time load still happens)")
	swapTrain := flag.Bool("swap-train", false, "run the fine-tuner in-process: each -swap-interval, train a clone of the serving model on the watermarked prefix of the live stream, publish it into -swap-dir, and hot-swap to it")
	swapEpochs := flag.Int("swap-epochs", 1, "fine-tune epochs per swap tick (with -swap-train)")
	flag.Parse()

	setup := experiments.Setup{
		Scale: *scale, NodeDim: *dim, Heads: *heads, Layers: *layers,
		K: *k, TimeWindow: 10_000, Seed: 1, CacheLimit: *cacheLimit,
	}
	wl, err := experiments.LoadWorkload(*name, setup)
	if err != nil {
		fatal(err)
	}
	if *modelPath != "" {
		if err := wl.Model.LoadParams(*modelPath); err != nil {
			fatal(err)
		}
	}

	// Boot on the latest published params, if any: a restart after N
	// swaps must come back serving version N, not the boot checkpoint.
	// A corrupt published snapshot falls back to whatever -model (or
	// init) provided rather than refusing to boot.
	bootVersion := uint64(0)
	if *swapDir != "" {
		v, p, err := swap.Latest(checkpoint.OS{}, *swapDir)
		switch {
		case err == nil:
			if sp, perr := wl.Model.ParseParamsFS(checkpoint.OS{}, p); perr != nil {
				log.Printf("swap: published v%d unreadable (%v); serving boot params as v0", v, perr)
			} else {
				wl.Model.ApplyParams(sp)
				bootVersion = v
				log.Printf("swap: booted on published params v%d from %s", v, *swapDir)
			}
		case errors.Is(err, fs.ErrNotExist):
			// Nothing published yet; first publish will hot-swap in.
		default:
			log.Printf("swap: manifest read: %v; serving boot params as v0", err)
		}
	}

	dyn := graph.NewDynamic(wl.DS.Graph.NumNodes())
	if *lateness > 0 {
		dyn.SetLateness(*lateness)
	}
	if !*empty {
		for _, e := range wl.DS.Graph.Edges() {
			if _, err := dyn.Append(e); err != nil {
				fatal(err)
			}
		}
	}

	opt := core.OptAll()
	opt.CacheLimit = setup.EffectiveCacheLimit()
	opt.CacheBudgetBytes = *cacheBudget
	switch *cachePolicy {
	case "tinylfu":
		opt.CachePolicy = core.CacheTinyLFU
	case "fifo":
		opt.CachePolicy = core.CacheFIFO
	default:
		fatal(fmt.Errorf("unknown -cache-policy %q (want tinylfu or fifo)", *cachePolicy))
	}
	opt.CacheSpillDir = *spillDir
	opt.CacheSpillMaxBytes = *spillMax
	opt.ModelVersion = bootVersion
	if opt.Quant, err = core.ParseQuantMode(*quant); err != nil {
		fatal(err)
	}
	var srv *serve.Server
	if *shards > 1 {
		// Sharded serving plane: batching (when on) runs per shard, and
		// -cache-file names the per-shard snapshot DIRECTORY instead of
		// a single snapshot file.
		cfg := shard.Config{
			Shards:     *shards,
			Quorum:     *shardQuorum,
			HedgeDelay: *hedgeDelay,
			Breaker: shard.BreakerConfig{
				Window:    *breakerWindow,
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
				Probes:    *breakerProbes,
			},
			SnapshotDir: *cacheFile,
			Logf:        log.Printf,
		}
		if !*batchOff {
			cfg.Batch = &batcher.Config{Window: *batchWindow, MaxBatch: *batchMax}
		}
		var err error
		srv, err = serve.NewSharded(wl.Model, dyn, opt, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		srv = serve.New(wl.Model, dyn, opt)
		if !*batchOff {
			srv.SetBatching(batcher.Config{Window: *batchWindow, MaxBatch: *batchMax})
		}
	}
	srv.SetLimits(serve.Limits{Timeout: *timeout, MaxInFlight: *maxInflight})

	// A missing or corrupt warm cache must never stop the service from
	// booting: WarmStart logs the cold start and continues.
	if *cacheFile != "" {
		srv.WarmStart(*cacheFile, log.Printf)
	}
	srv.SetReady() // /readyz starts answering 200
	stopSnapshots := func() {}
	if *cacheFile != "" && *snapInterval > 0 {
		stopSnapshots = srv.StartSnapshots(*cacheFile, *snapInterval, log.Printf)
		log.Printf("snapshotting cache to %s every %s", *cacheFile, *snapInterval)
	}
	stopSwaps := func() {}
	if *swapDir != "" && *swapInterval > 0 {
		tcfg := trainer.DefaultConfig()
		tcfg.Epochs = *swapEpochs
		stopSwaps = srv.StartSwapLoop(serve.SwapConfig{
			Dir:      *swapDir,
			Interval: *swapInterval,
			Train:    *swapTrain,
			Trainer:  tcfg,
			Logf:     log.Printf,
		})
		if *swapTrain {
			log.Printf("swap: fine-tune + publish + hot-swap every %s into %s (%d epochs/tick)", *swapInterval, *swapDir, *swapEpochs)
		} else {
			log.Printf("swap: watching %s for published params every %s", *swapDir, *swapInterval)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests (bounded by --grace), then persist the
	// warm cache. ListenAndServe returns ErrServerClosed as soon as
	// Shutdown starts, so drain completion is signalled separately.
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.BeginDrain() // /readyz flips to 503 so load balancers stop routing here
		log.Printf("shutting down: draining in-flight requests (grace %s)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(drained)
	}()

	log.Printf("tgopt-serve: %s (%d nodes, %d edges pre-ingested) listening on %s",
		*name, dyn.NumNodes(), dyn.NumEdges(), *addr)
	log.Printf("limits: timeout=%s max-inflight=%d", *timeout, *maxInflight)
	if *lateness > 0 {
		log.Printf("out-of-order ingest: lateness window %g (late edges sorted-insert + selective cache invalidation)", *lateness)
	} else {
		log.Printf("out-of-order ingest: off (out-of-order edges are dropped against the watermark)")
	}
	log.Printf("inference precision: %s", opt.Quant)
	if *batchOff {
		log.Printf("cross-request batching: off")
	} else {
		log.Printf("cross-request batching: window=%s max=%d", *batchWindow, *batchMax)
	}
	if srv.Sharded() {
		log.Printf("sharding: %d shards, quorum %d, hedge-delay %s, breaker window=%d threshold=%g cooldown=%s probes=%d",
			*shards, *shardQuorum, *hedgeDelay, *breakerWindow, *breakerThreshold, *breakerCooldown, *breakerProbes)
		log.Printf("cache: policy=%s per-shard (divided from hot-limit %d)", *cachePolicy, opt.CacheLimit)
	} else if *spillDir != "" {
		log.Printf("cache: policy=%s hot-limit=%d cold tier at %s (budget %d bytes)",
			*cachePolicy, srv.Engine().Options().CacheLimit, *spillDir, *spillMax)
	} else {
		log.Printf("cache: policy=%s hot-limit=%d (no cold tier)", *cachePolicy, srv.Engine().Options().CacheLimit)
	}
	log.Printf("endpoints: POST /v1/ingest /v1/embed /v1/score /v1/explain, GET /v1/stats /metrics /healthz /readyz")
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained

	stopSwaps()     // no swap may land between drain and the final save
	stopSnapshots() // quiesce the snapshotter before the final save
	if *cacheFile != "" {
		if srv.Sharded() {
			if err := srv.Router().SaveSnapshots(); err != nil {
				log.Printf("shard snapshot save failed: %v", err)
			} else {
				log.Printf("saved per-shard snapshots (%d memoized embeddings) under %s",
					srv.Router().CacheLen(), *cacheFile)
			}
		} else if err := srv.Engine().SaveCaches(*cacheFile); err != nil {
			log.Printf("cache save failed: %v", err)
		} else {
			log.Printf("saved %d memoized embeddings to %s", srv.Engine().CacheLen(), *cacheFile)
		}
	}
	// Stop the promotion workers and seal the spill tier's open segments
	// so spilled entries are recovered on the next boot.
	if err := srv.Close(); err != nil {
		log.Printf("cache close failed: %v", err)
	}
	log.Printf("tgopt-serve: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-serve:", err)
	os.Exit(1)
}
