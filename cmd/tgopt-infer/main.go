// tgopt-infer is the Go analogue of the artifact's inference.py: it runs
// the standard inference task — iterate a dynamic graph's edges
// chronologically in batches and compute temporal embeddings for every
// interaction — with or without the TGOpt optimizations, printing
// runtime and, with --stats, the operation breakdown, hit rate, and
// cache usage.
//
//	tgopt-infer -d snap-msg --opt-all --stats
//	tgopt-infer -d jodie-wiki --opt-cache --opt-dedup --cache-limit 100000
//	tgopt-infer --csv path/to/ml_custom.csv --opt-all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/device"
	"tgopt/internal/experiments"
	"tgopt/internal/graph"
	"tgopt/internal/npy"
	"tgopt/internal/tgat"
)

func main() {
	name := flag.String("d", "snap-msg", "dataset name (see tgopt-data list)")
	csvPath := flag.String("csv", "", "load edges from a TGAT-format CSV instead of generating")
	scale := flag.Float64("scale", 0.004, "synthetic dataset scale factor")
	batch := flag.Int("bs", 200, "batch size")
	dim := flag.Int("dim", 32, "feature width")
	heads := flag.Int("heads", 2, "attention heads")
	layers := flag.Int("layers", 2, "TGAT layers")
	k := flag.Int("n-degree", 10, "sampled most-recent neighbors")
	optAll := flag.Bool("opt-all", false, "enable all TGOpt optimizations")
	optDedup := flag.Bool("opt-dedup", false, "enable deduplication")
	optCache := flag.Bool("opt-cache", false, "enable embedding memoization")
	optTime := flag.Bool("opt-time", false, "enable precomputed time encodings")
	cacheLimit := flag.Int("cache-limit", 0, "cache item limit (0 = 2M scaled)")
	window := flag.Int("time-window", 10000, "time-encoding window")
	gpu := flag.Bool("gpu", false, "run under the simulated accelerator cost model")
	cacheOnDevice := flag.Bool("cache-on-device", false, "store cache in simulated device memory")
	showStats := flag.Bool("stats", false, "print the operation breakdown")
	modelPath := flag.String("model", "", "load trained parameters from this checkpoint")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	setup := experiments.Setup{
		Scale: *scale, BatchSize: *batch, NodeDim: *dim, Heads: *heads,
		Layers: *layers, K: *k, TimeWindow: *window, Seed: *seed,
		CacheLimit: *cacheLimit,
	}

	var wl *experiments.Workload
	var err error
	if *csvPath != "" {
		wl, err = loadCSVWorkload(*csvPath, setup)
	} else {
		wl, err = experiments.LoadWorkload(*name, setup)
	}
	if err != nil {
		fatal(err)
	}
	wl.SetBatchSize(*batch)
	if *modelPath != "" {
		if err := wl.Model.LoadParams(*modelPath); err != nil {
			fatal(err)
		}
	}

	opt := core.Options{
		EnableDedup:          *optDedup || *optAll,
		EnableCache:          *optCache || *optAll,
		EnableTimePrecompute: *optTime || *optAll,
		CacheLimit:           setup.EffectiveCacheLimit(),
		TimeWindow:           *window,
		CacheOnDevice:        *cacheOnDevice,
	}
	kind := experiments.CPU
	if *gpu {
		kind = experiments.GPU
	}

	fmt.Printf("dataset %s: %d nodes, %d edges, batch %d, L=%d k=%d d=%d\n",
		*name, wl.DS.Graph.NumNodes(), wl.DS.Graph.NumEdges(), *batch, *layers, *k, *dim)
	fmt.Printf("optimizations: dedup=%v cache=%v time-precompute=%v (limit %d, window %d) device=%s\n",
		opt.EnableDedup, opt.EnableCache, opt.EnableTimePrecompute,
		opt.CacheLimit, opt.TimeWindow, kind)

	start := time.Now()
	res := experiments.RunInference(wl, opt, kind)
	wall := time.Since(start)
	fmt.Printf("runtime: %v", res.Runtime)
	if kind == experiments.GPU {
		fmt.Printf(" (simulated; host wall %v)", wall)
	}
	fmt.Println()

	if *showStats {
		fmt.Println("\noperation breakdown:")
		fmt.Print(res.Collector.String())
		if opt.EnableCache {
			fmt.Printf("avg hit rate:   %.2f%%\n", 100*res.HitRate.Average())
			fmt.Printf("cache items:    %d\n", res.Engine.CacheLen())
			fmt.Printf("cache size:     %.1f MiB\n", float64(res.Engine.CacheBytes())/(1<<20))
		}
		if res.Sim != nil {
			x := res.Sim.Transfers()
			for _, d := range []device.Direction{device.HtoD, device.DtoH, device.DtoD} {
				fmt.Printf("memcpy %-5s    %d calls, %d bytes, %v\n", d, x[d].Calls, x[d].Bytes, x[d].Time)
			}
		}
	}
}

// loadCSVWorkload builds a workload around an external edge list in the
// artifact's layout. If ml_{name}.npy / ml_{name}_node.npy feature
// files sit next to the CSV, they are loaded (their width overrides the
// configured one); otherwise zero node features and Gaussian edge
// features are synthesized at the configured width (the artifact's
// missing-feature rule).
func loadCSVWorkload(path string, setup experiments.Setup) (*experiments.Workload, error) {
	g, err := dataset.LoadCSV(path)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.FromGraph("csv:"+path, g, dataset.Options{FeatureDim: setup.NodeDim}, setup.Seed)
	if err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(path, ".csv")
	if edgeFeat, err := npy.ReadFile(base + ".npy"); err == nil {
		nodeFeat, err := npy.ReadFile(base + "_node.npy")
		if err != nil {
			return nil, fmt.Errorf("found %s.npy but not its node features: %w", base, err)
		}
		if edgeFeat.Dim(0) != g.NumEdges()+1 || nodeFeat.Dim(0) != g.NumNodes()+1 {
			return nil, fmt.Errorf("feature tables (%d edges+1, %d nodes+1 rows) do not match graph (%d edges, %d nodes)",
				edgeFeat.Dim(0), nodeFeat.Dim(0), g.NumEdges(), g.NumNodes())
		}
		setup.NodeDim = edgeFeat.Dim(1)
		ds.EdgeFeat, ds.NodeFeat = edgeFeat, nodeFeat
	}
	m, err := tgat.NewModel(setup.ModelConfig(), ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		return nil, err
	}
	s := graph.NewSampler(g, setup.K, graph.MostRecent, setup.Seed)
	return &experiments.Workload{DS: ds, Model: m, Sampler: s}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-infer:", err)
	os.Exit(1)
}
