// tgopt-data generates the synthetic Table 2 workloads and exports them
// in the TGAT artifact's CSV format, plus binary feature tables (our
// substitution for the artifact's .npy files).
//
//	tgopt-data list
//	tgopt-data gen -d jodie-wiki --scale 0.01 -o data/
//	tgopt-data stats -d snap-msg --scale 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tgopt/internal/dataset"
	"tgopt/internal/npy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	name := fs.String("d", "snap-msg", "dataset name")
	scale := fs.Float64("scale", 0.004, "scale factor")
	dim := fs.Int("dim", 32, "feature width")
	out := fs.String("o", "data", "output directory")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "list":
		for _, s := range dataset.Specs() {
			kind := "homogeneous"
			if s.Bipartite {
				kind = "bipartite"
			}
			fmt.Printf("%-14s %-12s |V|=%-7d |E|=%-9d d_e=%-4d max(t)=%.2g\n",
				s.Name, kind, s.NumNodes(), s.Edges, s.NativeEdgeDim, s.MaxTime)
		}
	case "gen":
		spec, err := dataset.SpecByName(*name)
		if err != nil {
			fatal(err)
		}
		spec = spec.Scale(*scale)
		ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: *dim})
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		// The artifact's exact layout: ml_{name}.csv edge list,
		// ml_{name}.npy edge features, ml_{name}_node.npy node features.
		csvPath := filepath.Join(*out, "ml_"+*name+".csv")
		if err := dataset.SaveCSV(csvPath, ds.Graph); err != nil {
			fatal(err)
		}
		nodePath := filepath.Join(*out, "ml_"+*name+"_node.npy")
		edgePath := filepath.Join(*out, "ml_"+*name+".npy")
		if err := npy.WriteFile(nodePath, ds.NodeFeat); err != nil {
			fatal(err)
		}
		if err := npy.WriteFile(edgePath, ds.EdgeFeat); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d edges), %s, %s\n", csvPath, ds.Graph.NumEdges(), nodePath, edgePath)
	case "stats":
		spec, err := dataset.SpecByName(*name)
		if err != nil {
			fatal(err)
		}
		spec = spec.Scale(*scale)
		ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: *dim})
		if err != nil {
			fatal(err)
		}
		g := ds.Graph
		fmt.Printf("%s @ scale %g: |V|=%d |E|=%d max(t)=%.4g\n",
			*name, *scale, g.NumNodes(), g.NumEdges(), g.MaxTime())
		maxDeg, sumDeg := 0, 0
		for v := int32(1); v <= int32(g.NumNodes()); v++ {
			d := g.Degree(v)
			sumDeg += d
			if d > maxDeg {
				maxDeg = d
			}
		}
		fmt.Printf("degree: mean %.1f, max %d\n", float64(sumDeg)/float64(g.NumNodes()), maxDeg)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tgopt-data <list|gen|stats> [flags]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-data:", err)
	os.Exit(1)
}
