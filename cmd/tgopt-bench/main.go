// tgopt-bench regenerates the paper's tables and figures. One
// subcommand per artifact:
//
//	tgopt-bench table1                     # batch duplication per layer
//	tgopt-bench fig3  [-d snap-msg]        # reuse vs recompute over time
//	tgopt-bench fig4  [-d snap-msg]        # Δt distribution
//	tgopt-bench fig5  [--device cpu|gpu]   # end-to-end runtimes + speedups
//	tgopt-bench fig6  [--device cpu|gpu]   # accumulative ablation
//	tgopt-bench fig7                       # cache hit-rate evolution
//	tgopt-bench table3 [--device cpu|gpu]  # operation breakdown
//	tgopt-bench table4                     # cache-limit sweep
//	tgopt-bench table5                     # cache placement transfers
//	tgopt-bench table2                     # dataset statistics
//	tgopt-bench sampling                   # most-recent vs uniform probe
//	tgopt-bench train-dedup                # §7 training-time dedup
//	tgopt-bench warmstart                  # cache persistence warm start
//	tgopt-bench batchsweep                 # batch-size sensitivity
//	tgopt-bench perf [-o BENCH.json]       # kernel + end-to-end perf report
//	tgopt-bench serve [-o BENCH.json]      # closed-loop serving load: throughput
//	                                       # and latency vs concurrency, batching on/off
//	tgopt-bench cachesweep [-o BENCH.json] # memo-cache hit rate vs byte budget,
//	                                       # FIFO vs TinyLFU admission
//	tgopt-bench quant [-o BENCH.json]      # int8 vs float32: kernel MB/s, e2e
//	                                       # ns/edge and hit rate at equal budgets
//	tgopt-bench deepsweep [-o BENCH.json]  # 3-layer serving under live ingest:
//	                                       # transitive invalidation vs deep clear-all
//	tgopt-bench swapsweep [-o BENCH.json]  # online-learning hot-swap under load:
//	                                       # cache re-warm cost, swap pause, bitwise
//	                                       # post-swap spot checks
//	tgopt-bench quantacc [-max-ap-delta d] # int8 accuracy harness: AP/accuracy
//	                                       # delta + max-abs embedding delta
//	tgopt-bench all                        # everything above, CPU + GPU
//
// Figure subcommands accept --plot <dir> (SVG output) and --csv <dir>
// (machine-readable results). The synthetic workloads are scaled-down
// analogues of the paper's Table 2 datasets; --scale controls the
// factor (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tgopt/internal/dataset"
	"tgopt/internal/experiments"
	"tgopt/internal/perfbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 0.004, "dataset scale factor relative to the paper's Table 2")
	batch := fs.Int("batch", 200, "inference batch size (paper: 200)")
	dim := fs.Int("dim", 32, "node/edge/time feature width")
	heads := fs.Int("heads", 2, "attention heads")
	layers := fs.Int("layers", 2, "TGAT layers")
	k := fs.Int("k", 10, "sampled most-recent neighbors")
	runs := fs.Int("runs", 3, "repetitions for runtime experiments (paper: 10)")
	deviceFlag := fs.String("device", "cpu", "cpu or gpu (simulated accelerator)")
	ds := fs.String("d", "", "restrict to one dataset (default: experiment-appropriate set)")
	cacheLimit := fs.Int("cache-limit", 0, "cache item limit (0 = paper's 2M scaled)")
	window := fs.Int("time-window", 10000, "precomputed time-encoding window")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	plotDir := fs.String("plot", "", "also write figure SVGs into this directory")
	csvDir := fs.String("csv", "", "also write machine-readable result CSVs into this directory")
	out := fs.String("o", "", "perf/serve: write the JSON report here instead of stdout")
	conc := fs.String("conc", "1,8,32", "serve: comma-separated closed-loop client counts")
	reqs := fs.Int("requests", 400, "serve: measured requests per client per level")
	warmup := fs.Int("warmup", 30, "serve: unmeasured warmup requests per client per level")
	pool := fs.Int("pool", 48, "serve: distinct (node, ts) targets shared by all clients")
	targets := fs.Int("targets", 4, "serve: targets per embed request")
	rotate := fs.Int("rotate", 64, "serve: advance the query timestamp every N requests (0 = static times)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "serve: batcher flush window")
	batchMax := fs.Int("batch-max", 256, "serve: batcher size trigger")
	maxAPDelta := fs.Float64("max-ap-delta", 0, "quantacc: exit non-zero if |AP(float32) - AP(int8)| exceeds this (0 disables the gate)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	setup := experiments.Setup{
		Scale:      *scale,
		BatchSize:  *batch,
		NodeDim:    *dim,
		Heads:      *heads,
		Layers:     *layers,
		K:          *k,
		Runs:       *runs,
		CacheLimit: *cacheLimit,
		TimeWindow: *window,
		Seed:       *seed,
	}
	kind := experiments.CPU
	switch *deviceFlag {
	case "cpu":
	case "gpu":
		kind = experiments.GPU
	default:
		fatal(fmt.Errorf("unknown --device %q (want cpu or gpu)", *deviceFlag))
	}

	all := dataset.Names()
	selected := all
	if *ds != "" {
		selected = []string{*ds}
	}
	// The paper's in-depth analyses focus on these two datasets.
	focus := []string{"jodie-lastfm", "snap-msg"}
	if *ds != "" {
		focus = []string{*ds}
	}

	w := os.Stdout
	var err error
	switch cmd {
	case "table1":
		var rows []experiments.Table1Row
		rows, err = experiments.Table1(w, setup, selected)
		if err == nil {
			h, rs := experiments.Table1CSV(rows)
			err = maybeCSV(*csvDir, "table1", h, rs)
		}
	case "fig3":
		name := one(focus, "snap-msg", *ds)
		var points []experiments.Figure3Point
		points, err = experiments.Figure3(w, setup, name, 20)
		if err == nil {
			err = maybePlot(*plotDir, "fig3-"+name, experiments.Figure3SVG(name, points))
		}
		if err == nil {
			h, rs := experiments.Figure3CSV(points)
			err = maybeCSV(*csvDir, "fig3-"+name, h, rs)
		}
	case "fig4":
		name := one(focus, "snap-msg", *ds)
		var buckets []experiments.Figure4Bucket
		buckets, err = experiments.Figure4(w, setup, name, 14)
		if err == nil {
			err = maybePlot(*plotDir, "fig4-"+name, experiments.Figure4SVG(name, buckets))
		}
		if err == nil {
			h, rs := experiments.Figure4CSV(buckets)
			err = maybeCSV(*csvDir, "fig4-"+name, h, rs)
		}
	case "fig5":
		var rows []experiments.Figure5Row
		rows, err = experiments.Figure5(w, setup, selected, kind)
		if err == nil {
			err = maybePlot(*plotDir, "fig5-"+kind.String(), experiments.Figure5SVG(rows))
		}
		if err == nil {
			h, rs := experiments.Figure5CSV(rows)
			err = maybeCSV(*csvDir, "fig5-"+kind.String(), h, rs)
		}
	case "fig6":
		var rows []experiments.Figure6Row
		rows, err = experiments.Figure6(w, setup, focus, kind)
		if err == nil {
			err = maybePlot(*plotDir, "fig6-"+kind.String(), experiments.Figure6SVG(rows))
		}
		if err == nil {
			h, rs := experiments.Figure6CSV(rows)
			err = maybeCSV(*csvDir, "fig6-"+kind.String(), h, rs)
		}
	case "fig7":
		var series []experiments.Figure7Series
		series, err = experiments.Figure7(w, setup, focus)
		if err == nil {
			err = maybePlot(*plotDir, "fig7", experiments.Figure7SVG(series))
		}
		if err == nil {
			h, rs := experiments.Figure7CSV(series)
			err = maybeCSV(*csvDir, "fig7", h, rs)
		}
	case "table3":
		_, err = experiments.Table3(w, setup, focus, kind)
	case "table4":
		var cells []experiments.Table4Cell
		cells, err = experiments.Table4(w, setup, focus, experiments.GPU)
		if err == nil {
			h, rs := experiments.Table4CSV(cells)
			err = maybeCSV(*csvDir, "table4", h, rs)
		}
	case "table5":
		var results []experiments.Table5Result
		results, err = experiments.Table5(w, setup, focus)
		if err == nil {
			h, rs := experiments.Table5CSV(results)
			err = maybeCSV(*csvDir, "table5", h, rs)
		}
	case "sampling":
		_, err = experiments.CompareSampling(w, setup, one(focus, "jodie-lastfm", *ds))
	case "table2":
		_, err = experiments.Table2(w, setup, selected)
	case "train-dedup":
		_, err = experiments.TrainDedup(w, setup, one(focus, "snap-msg", *ds), 1)
	case "warmstart":
		_, err = experiments.WarmStart(w, setup, one(focus, "jodie-lastfm", *ds), 5)
	case "batchsweep":
		_, err = experiments.BatchSweep(w, setup, one(focus, "jodie-lastfm", *ds),
			[]int{50, 100, 200, 400, 800})
	case "perf":
		err = runPerf(setup, one(focus, "snap-msg", *ds), *runs, *out)
	case "serve":
		cfg := perfbench.ServeLoadConfig{
			RequestsPerClient: *reqs,
			WarmupPerClient:   *warmup,
			TargetsPerRequest: *targets,
			TargetPool:        *pool,
			RotateEvery:       *rotate,
			Window:            *batchWindow,
			MaxBatch:          *batchMax,
			Seed:              *seed,
		}
		if cfg.Concurrency, err = parseConc(*conc); err == nil {
			err = runServe(setup, one(focus, "snap-msg", *ds), cfg, *out)
		}
	case "cachesweep":
		cfg := perfbench.DefaultCacheSweepConfig()
		cfg.Seed = *seed
		err = runCacheSweep(cfg, *out)
	case "deepsweep":
		cfg := perfbench.DefaultDeepSweepConfig()
		cfg.Seed = *seed
		cfg.Runs = *runs
		err = runDeepSweep(cfg, *out)
	case "swapsweep":
		cfg := perfbench.DefaultSwapSweepConfig()
		cfg.Seed = *seed
		cfg.Runs = *runs
		err = runSwapSweep(cfg, *out)
	case "quant":
		err = runQuant(setup, one(focus, "snap-msg", *ds), *runs, *out)
	case "quantacc":
		err = runQuantAcc(setup, one(focus, "snap-msg", *ds), *maxAPDelta, *out)
	case "all":
		err = runAll(setup, selected, focus, *plotDir, *csvDir)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

// maybeCSV writes a result CSV into dir when requested.
func maybeCSV(dir, name string, header []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	path, err := experiments.WriteCSVFile(dir, name, header, rows)
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return err
}

// maybePlot writes svg into dir when plotting is requested.
func maybePlot(dir, name, svg string) error {
	if dir == "" {
		return nil
	}
	path, err := experiments.WriteSVG(dir, name, svg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return err
}

// one picks the explicit dataset if given, else the preferred default.
func one(focus []string, preferred, explicit string) string {
	if explicit != "" {
		return explicit
	}
	for _, f := range focus {
		if f == preferred {
			return f
		}
	}
	return focus[0]
}

func runAll(setup experiments.Setup, selected, focus []string, plotDir, csvDir string) error {
	w := os.Stdout
	// Figures 3 and 4 are distribution analyses, not timing runs; they
	// are cheap enough to run at a larger scale, which snap-msg (the
	// paper's subject and the smallest dataset) needs to develop its
	// redundancy structure.
	distSetup := setup
	if distSetup.Scale < 0.05 {
		distSetup.Scale = 0.05
	}
	steps := []func() error{
		func() error {
			rows, err := experiments.Table1(w, setup, selected)
			if err != nil {
				return err
			}
			h, rs := experiments.Table1CSV(rows)
			return maybeCSV(csvDir, "table1", h, rs)
		},
		func() error {
			points, err := experiments.Figure3(w, distSetup, "snap-msg", 20)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig3-snap-msg", experiments.Figure3SVG("snap-msg", points)); err != nil {
				return err
			}
			h, rs := experiments.Figure3CSV(points)
			return maybeCSV(csvDir, "fig3-snap-msg", h, rs)
		},
		func() error {
			buckets, err := experiments.Figure4(w, distSetup, "snap-msg", 14)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig4-snap-msg", experiments.Figure4SVG("snap-msg", buckets)); err != nil {
				return err
			}
			h, rs := experiments.Figure4CSV(buckets)
			return maybeCSV(csvDir, "fig4-snap-msg", h, rs)
		},
		func() error {
			rows, err := experiments.Figure5(w, setup, selected, experiments.CPU)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig5-cpu", experiments.Figure5SVG(rows)); err != nil {
				return err
			}
			h, rs := experiments.Figure5CSV(rows)
			return maybeCSV(csvDir, "fig5-cpu", h, rs)
		},
		func() error {
			rows, err := experiments.Figure5(w, setup, selected, experiments.GPU)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig5-gpu", experiments.Figure5SVG(rows)); err != nil {
				return err
			}
			h, rs := experiments.Figure5CSV(rows)
			return maybeCSV(csvDir, "fig5-gpu", h, rs)
		},
		func() error {
			rows, err := experiments.Figure6(w, setup, focus, experiments.CPU)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig6-cpu", experiments.Figure6SVG(rows)); err != nil {
				return err
			}
			h, rs := experiments.Figure6CSV(rows)
			return maybeCSV(csvDir, "fig6-cpu", h, rs)
		},
		func() error {
			rows, err := experiments.Figure6(w, setup, focus, experiments.GPU)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig6-gpu", experiments.Figure6SVG(rows)); err != nil {
				return err
			}
			h, rs := experiments.Figure6CSV(rows)
			return maybeCSV(csvDir, "fig6-gpu", h, rs)
		},
		func() error {
			series, err := experiments.Figure7(w, distSetup, focus)
			if err != nil {
				return err
			}
			if err := maybePlot(plotDir, "fig7", experiments.Figure7SVG(series)); err != nil {
				return err
			}
			h, rs := experiments.Figure7CSV(series)
			return maybeCSV(csvDir, "fig7", h, rs)
		},
		func() error { _, err := experiments.Table3(w, setup, focus, experiments.CPU); return err },
		func() error { _, err := experiments.Table3(w, setup, focus, experiments.GPU); return err },
		func() error {
			cells, err := experiments.Table4(w, setup, focus, experiments.GPU)
			if err != nil {
				return err
			}
			h, rs := experiments.Table4CSV(cells)
			return maybeCSV(csvDir, "table4", h, rs)
		},
		func() error {
			results, err := experiments.Table5(w, setup, focus)
			if err != nil {
				return err
			}
			h, rs := experiments.Table5CSV(results)
			return maybeCSV(csvDir, "table5", h, rs)
		},
		func() error { _, err := experiments.CompareSampling(w, setup, "jodie-lastfm"); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runPerf executes the committed performance suite (kernels, attention,
// end-to-end stream inference) and writes the JSON report to out, or
// stdout when out is empty. A one-line summary always goes to stderr so
// scripted runs stay observable.
func runPerf(setup experiments.Setup, name string, runs int, out string) error {
	rep, err := perfbench.Run(setup, name, runs)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		if r.NsPerEdge > 0 {
			fmt.Fprintf(os.Stderr, "perf: %s %.0f ns/edge (%d edges, %.0f allocs/pass)\n",
				r.Name, r.NsPerEdge, r.Edges, r.AllocsPerOp)
		}
	}
	return nil
}

// parseConc parses the serve subcommand's comma-separated client counts.
func parseConc(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -conc element %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runServe executes the closed-loop serving benchmark and writes the
// JSON report to out (stdout when empty), with a per-level summary line
// on stderr.
func runServe(setup experiments.Setup, name string, cfg perfbench.ServeLoadConfig, out string) error {
	rep, err := perfbench.RunServe(setup, name, cfg)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		return err
	}
	for _, l := range rep.Levels {
		mode := "off"
		if l.Batching {
			mode = "on "
		}
		fmt.Fprintf(os.Stderr, "serve: conc=%-3d batch=%s %8.0f req/s  p50=%7.0fus p99=%7.0fus coalesce=%.2f\n",
			l.Concurrency, mode, l.Throughput, l.P50us, l.P99us, l.CoalesceRatio)
	}
	fmt.Fprintf(os.Stderr, "serve: speedup at max concurrency %.2fx\n", rep.SpeedupMaxConc)
	return nil
}

// runCacheSweep executes the FIFO-vs-TinyLFU hit-rate sweep and writes
// the JSON report to out (stdout when empty), one summary line per
// budget on stderr.
func runCacheSweep(cfg perfbench.CacheSweepConfig, out string) error {
	rep, err := perfbench.RunCacheSweep(cfg)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		return err
	}
	for _, p := range rep.Points {
		fmt.Fprintf(os.Stderr, "cachesweep: budget=%8d entries=%6d fifo=%.4f tinylfu=%.4f (%+.4f)\n",
			p.BudgetBytes, p.Entries, p.FIFOHitRate, p.TinyLFUHitRate, p.Improvement)
	}
	return nil
}

// runDeepSweep executes the deep-layer invalidation sweep (BENCH_5:
// 3-layer serving under live ingest, selective transitive invalidation
// vs the conservative deep clear) and writes the JSON report to out
// (stdout when empty), with a summary on stderr.
func runDeepSweep(cfg perfbench.DeepSweepConfig, out string) error {
	rep, err := perfbench.RunDeepSweep(cfg)
	if err != nil {
		return err
	}
	if err := writeReport(rep, out); err != nil {
		return err
	}
	for _, p := range rep.Points {
		fmt.Fprintf(os.Stderr,
			"deepsweep: rate=%4d/1000 (%d ingests, %d late) deep-hit sel=%.4f clr=%.4f (%+.4f) ns/edge sel=%.0f clr=%.0f (%.2fx)\n",
			p.RatePer1000, p.Ingests, p.LateEdges,
			p.Selective.DeepHitRate, p.ClearAll.DeepHitRate, p.HitRateGain,
			p.Selective.NsPerEdge, p.ClearAll.NsPerEdge, p.Speedup)
	}
	if !rep.AllPointsPass {
		return fmt.Errorf("deepsweep: acceptance failed — selective did not beat clear-all at every rate")
	}
	return nil
}

// runSwapSweep executes the hot-swap sweep (BENCH_6: cache re-warm
// cost and swap pause at several swap cadences, plus bitwise post-swap
// spot checks against fixed-params references) and writes the JSON
// report to out (stdout when empty), with a summary on stderr.
func runSwapSweep(cfg perfbench.SwapSweepConfig, out string) error {
	rep, err := perfbench.RunSwapSweep(cfg)
	if err != nil {
		return err
	}
	if err := writeReport(rep, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "swapsweep: baseline hit-rate %.4f, %.0f ns/query\n",
		rep.BaselineHitRate, rep.BaselineNsPerQuery)
	for _, p := range rep.Points {
		fmt.Fprintf(os.Stderr,
			"swapsweep: every=%4d (%d swaps) hit=%.4f post-swap=%.4f steady=%.4f pause=%.0fus spot=%d/%d\n",
			p.SwapEvery, p.Swaps, p.HitRate, p.PostSwapHitRate, p.SteadyHitRate,
			p.MeanSwapPauseUs, p.SpotChecks-p.SpotCheckFailures, p.SpotChecks)
	}
	if !rep.AllPointsPass {
		return fmt.Errorf("swapsweep: acceptance failed — a post-swap spot check diverged or the cache never re-warmed")
	}
	return nil
}

// runQuant executes the quantized-path suite (BENCH_4: kernel MB/s at
// both precisions, e2e ns/edge and cache hit rate at equal byte
// budgets, embedded accuracy report) and writes the JSON report to out
// (stdout when empty), with a summary on stderr.
func runQuant(setup experiments.Setup, name string, runs int, out string) error {
	rep, err := perfbench.RunQuant(setup, name, runs)
	if err != nil {
		return err
	}
	if err := writeReport(rep, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "quant: kernel int8/float32 %.2fx MB/s\n", rep.KernelSpeedup)
	for _, p := range rep.Budgets {
		fmt.Fprintf(os.Stderr, "quant: budget=%8d hit-rate float32=%.4f (%d entries) int8=%.4f (%d entries)\n",
			p.BudgetBytes, p.Float32HitRate, p.Float32Entries, p.Int8HitRate, p.Int8Entries)
	}
	for _, r := range rep.Results {
		if r.NsPerEdge > 0 {
			fmt.Fprintf(os.Stderr, "quant: %s %.0f ns/edge (budget %d B)\n", r.Name, r.NsPerEdge, rep.E2EBudgetBytes)
		}
	}
	fmt.Fprintf(os.Stderr, "quant: e2e int8 speedup %.2fx, AP delta %.4f, max-abs embed delta %.4f\n",
		rep.E2ESpeedup, rep.Acc.APDelta, rep.Acc.MaxAbsEmbedDelta)
	return nil
}

// runQuantAcc executes the int8-vs-float32 accuracy harness, writes
// the JSON report to out (stdout when empty), and — when maxAPDelta is
// positive — fails if the AP drop exceeds it (the check.sh gate).
func runQuantAcc(setup experiments.Setup, name string, maxAPDelta float64, out string) error {
	rep, err := perfbench.RunQuantAcc(setup, name)
	if err != nil {
		return err
	}
	if err := writeReport(rep, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "quantacc: AP float32=%.4f int8=%.4f delta=%.4f acc float32=%.4f int8=%.4f\n",
		rep.APFloat32, rep.APInt8, rep.APDelta, rep.AccFloat32, rep.AccInt8)
	fmt.Fprintf(os.Stderr, "quantacc: max-abs embed delta %.4f, max-abs logit delta %.4f\n",
		rep.MaxAbsEmbedDelta, rep.MaxAbsLogitDelta)
	if maxAPDelta > 0 && rep.APDelta > maxAPDelta {
		return fmt.Errorf("quantacc: AP delta %.4f exceeds -max-ap-delta %.4f", rep.APDelta, maxAPDelta)
	}
	return nil
}

// writeReport marshals a JSON report to out, or stdout when out is
// empty.
func writeReport(rep any, out string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tgopt-bench <table1|table2|fig3|fig4|fig5|fig6|fig7|table3|table4|table5|sampling|train-dedup|batchsweep|warmstart|perf|serve|cachesweep|quant|quantacc|deepsweep|swapsweep|all> [flags]
run "tgopt-bench fig5 -h" for flags`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-bench:", err)
	os.Exit(1)
}
