// tgopt-train is the Go analogue of the artifact's train.py: it trains a
// TGAT model for link prediction on a (synthetic or CSV) dynamic graph
// and saves the parameters for tgopt-infer --model.
//
//	tgopt-train -d snap-msg --epochs 3 -o saved_models/snap-msg.bin
//
// With -checkpoint the run writes an atomic, checksummed training
// checkpoint (parameters, optimizer state, RNG streams, cursors) every
// -checkpoint-every batches and at epoch boundaries; after a crash,
// -resume continues from the last checkpoint with exactly the loss
// trajectory an uninterrupted run would have produced.
//
//	tgopt-train -d snap-msg -checkpoint train.ckpt -checkpoint-every 50
//	tgopt-train -d snap-msg -checkpoint train.ckpt -resume
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"tgopt/internal/checkpoint"
	"tgopt/internal/experiments"
	"tgopt/internal/swap"
	"tgopt/internal/trainer"
)

func main() {
	name := flag.String("d", "snap-msg", "dataset name")
	scale := flag.Float64("scale", 0.004, "synthetic dataset scale factor")
	dim := flag.Int("dim", 32, "feature width")
	heads := flag.Int("heads", 2, "attention heads")
	layers := flag.Int("layers", 2, "TGAT layers (train.py --n-layer)")
	k := flag.Int("n-degree", 10, "sampled most-recent neighbors (train.py --n-degree)")
	epochs := flag.Int("epochs", 3, "training epochs")
	batch := flag.Int("bs", 200, "batch size")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate")
	frac := flag.Float64("train-frac", 0.7, "chronological train fraction")
	dropout := flag.Float64("dropout", 0.1, "training dropout probability (0 disables)")
	dedup := flag.Bool("dedup", false, "apply TGOpt deduplication inside the training forward (§7)")
	out := flag.String("o", "", "checkpoint output path (default saved_models/<dataset>.bin)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	ckpt := flag.String("checkpoint", "", "training checkpoint path (enables crash-safe checkpointing)")
	ckptEvery := flag.Int("checkpoint-every", 0, "also checkpoint every N batches (0 = epoch boundaries only)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	maxBatches := flag.Int("max-batches", 0, "stop cleanly after N batches, checkpointing the position (0 = run to completion)")
	swapDir := flag.String("swap-dir", "", "also publish the trained parameters into this online-learning swap directory (at the next free version); a running tgopt-serve -swap-dir picks them up and hot-swaps without a restart")
	flag.Parse()

	setup := experiments.Setup{
		Scale: *scale, BatchSize: *batch, NodeDim: *dim, Heads: *heads,
		Layers: *layers, K: *k, Seed: *seed, TimeWindow: 10_000,
	}
	wl, err := experiments.LoadWorkload(*name, setup)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training %s: %d nodes, %d edges, L=%d k=%d d=%d\n",
		*name, wl.DS.Graph.NumNodes(), wl.DS.Graph.NumEdges(), *layers, *k, *dim)

	cfg := trainer.Config{
		Epochs: *epochs, BatchSize: *batch, LR: *lr, TrainFrac: *frac, Seed: *seed,
		Dropout: *dropout, Dedup: *dedup,
		CheckpointPath: *ckpt, CheckpointEvery: *ckptEvery, Resume: *resume, MaxBatches: *maxBatches,
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	}
	res, err := trainer.Train(wl.Model, wl.DS.Graph, wl.Sampler, cfg)
	if err != nil {
		fatal(err)
	}
	if res.NonFinite > 0 {
		fmt.Printf("skipped %d non-finite batches (%d rollbacks)\n", res.NonFinite, res.Rollbacks)
	}
	if res.Interrupted {
		fmt.Printf("stopped after -max-batches; resume with -checkpoint %s -resume\n", *ckpt)
		return
	}
	fmt.Printf("final loss %.4f, validation AP %.4f, accuracy %.4f\n",
		res.EpochLoss[len(res.EpochLoss)-1], res.ValAP, res.ValAcc)

	path := *out
	if path == "" {
		if err := os.MkdirAll("saved_models", 0o755); err != nil {
			fatal(err)
		}
		path = "saved_models/" + *name + ".bin"
	}
	if err := wl.Model.SaveParams(path); err != nil {
		fatal(err)
	}
	fmt.Printf("saved checkpoint to %s\n", path)

	if *swapDir != "" {
		version := uint64(1)
		if v, _, err := swap.Latest(checkpoint.OS{}, *swapDir); err == nil {
			version = v + 1
		} else if !errors.Is(err, fs.ErrNotExist) {
			fatal(fmt.Errorf("swap-dir manifest: %w", err))
		}
		if err := swap.Publish(checkpoint.OS{}, *swapDir, wl.Model, version); err != nil {
			fatal(err)
		}
		fmt.Printf("published params v%d to %s (servers watching it will hot-swap)\n", version, *swapDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgopt-train:", err)
	os.Exit(1)
}
