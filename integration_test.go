package tgopt_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tgopt"
	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/npy"
	"tgopt/internal/serve"
	"tgopt/internal/tgat"
)

// TestFullLifecycle drives the whole system the way a deployment would:
// generate a dataset, export it in the artifact's CSV+npy layout,
// reload it from disk, train for link prediction, checkpoint the model,
// serve it over HTTP with streaming ingestion, and verify the served
// scores against direct model evaluation.
func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and export.
	spec, err := tgopt.DatasetByName("jodie-wiki")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(0.003)
	ds, err := tgopt.Generate(spec, tgopt.DatasetOptions{FeatureDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "ml_wiki.csv")
	if err := dataset.SaveCSV(csvPath, ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := npy.WriteFile(filepath.Join(dir, "ml_wiki.npy"), ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	if err := npy.WriteFile(filepath.Join(dir, "ml_wiki_node.npy"), ds.NodeFeat); err != nil {
		t.Fatal(err)
	}

	// 2. Reload from disk — the artifact's own-data path.
	g, err := tgopt.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("reloaded %d edges, generated %d", g.NumEdges(), ds.Graph.NumEdges())
	}
	edgeFeat, err := tgopt.ReadNpy(filepath.Join(dir, "ml_wiki.npy"))
	if err != nil {
		t.Fatal(err)
	}
	nodeFeat, err := tgopt.ReadNpy(filepath.Join(dir, "ml_wiki_node.npy"))
	if err != nil {
		t.Fatal(err)
	}

	// 3. Train briefly and checkpoint.
	cfg := tgopt.ModelConfig{Layers: 1, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 1}
	model, err := tgopt.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	sampler := tgopt.NewSampler(g, 5, tgopt.MostRecent, 0)
	res, err := tgopt.Train(model, g, sampler, tgopt.TrainConfig{
		Epochs: 2, BatchSize: 100, LR: 3e-3, TrainFrac: 0.8, Seed: 1, Dropout: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != 2 {
		t.Fatalf("training losses: %v", res.EpochLoss)
	}
	ckpt := filepath.Join(dir, "model.bin")
	if err := model.SaveParams(ckpt); err != nil {
		t.Fatal(err)
	}

	// 4. Serve: fresh process state — reload weights, pre-ingest the
	// stream, expose HTTP.
	served, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	if err := served.LoadParams(ckpt); err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(g.NumNodes())
	for _, e := range g.Edges() {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.New(served, dyn, core.OptAll())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// 5. Score a pair over HTTP and against the model directly.
	now := g.MaxTime() + 1
	reqBody, _ := json.Marshal(map[string]any{
		"pairs": []map[string]any{{"src": 1, "dst": 2, "time": now}},
	})
	resp, err := http.Post(hs.URL+"/v1/score", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("score status %d", resp.StatusCode)
	}
	var sr struct {
		Logits []float64 `json:"logits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}

	dynSampler := graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0)
	h := served.Embed(dynSampler, []int32{1, 2}, []float64{now, now}, nil)
	d := cfg.NodeDim
	hs1 := sliceRows(h, 0, 1, d)
	hs2 := sliceRows(h, 1, 2, d)
	direct := float64(served.Score(hs1, hs2).At(0, 0))
	diff := direct - sr.Logits[0]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-5 {
		t.Fatalf("served score %v differs from direct %v", sr.Logits[0], direct)
	}
}

func sliceRows(t *tgopt.Tensor, lo, hi, d int) *tgopt.Tensor {
	data := make([]float32, (hi-lo)*d)
	copy(data, t.Data()[lo*d:hi*d])
	out := tgopt.NewTensor(hi-lo, d)
	copy(out.Data(), data)
	return out
}
