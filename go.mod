module tgopt

go 1.22
