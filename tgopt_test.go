package tgopt_test

import (
	"testing"

	"tgopt"
)

// TestPublicAPIEndToEnd exercises the documented facade flow: generate
// a workload, build a model, train briefly, and verify the optimized
// engine reproduces baseline embeddings over a full inference pass.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec, err := tgopt.DatasetByName("jodie-wiki")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(0.002)
	ds, err := tgopt.Generate(spec, tgopt.DatasetOptions{FeatureDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tgopt.ModelConfig{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 1}
	model, err := tgopt.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	sampler := tgopt.NewSampler(ds.Graph, 5, tgopt.MostRecent, 0)

	if _, err := tgopt.Train(model, ds.Graph, sampler, tgopt.TrainConfig{
		Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 0.8, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}

	baseline := tgopt.StreamInference(ds.Graph, model, 100, model.BaselineEmbedFunc(sampler))
	engine := tgopt.NewEngine(model, sampler, tgopt.OptAll())
	optimized := tgopt.StreamInference(ds.Graph, model, 100, engine.EmbedFunc())
	if len(baseline.Scores) != len(optimized.Scores) {
		t.Fatal("score count mismatch")
	}
	for i := range baseline.Scores {
		d := baseline.Scores[i] - optimized.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("score %d differs by %g", i, d)
		}
	}
}

func TestPublicAPIBasics(t *testing.T) {
	if len(tgopt.DatasetSpecs()) != 7 {
		t.Fatal("expected the paper's seven datasets")
	}
	g, err := tgopt.NewGraph(3, []tgopt.Edge{{Src: 1, Dst: 2, Time: 5}, {Src: 2, Dst: 3, Time: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatal("graph construction broken through the facade")
	}
	if tgopt.Key(1, 2) != 1<<32|2 {
		t.Fatal("Key re-export broken")
	}
	if tgopt.NewTensor(2, 2).Len() != 4 {
		t.Fatal("tensor facade broken")
	}
	if tgopt.NewRNG(1).Uint64() == tgopt.NewRNG(2).Uint64() {
		t.Fatal("RNG facade broken")
	}
	if err := tgopt.DefaultModelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
