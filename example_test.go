package tgopt_test

import (
	"fmt"

	"tgopt"
)

// ExampleNewEngine demonstrates that the TGOpt engine is a drop-in
// replacement for baseline TGAT inference: same targets, identical
// embeddings.
func ExampleNewEngine() {
	spec, _ := tgopt.DatasetByName("snap-msg")
	ds, _ := tgopt.Generate(spec.Scale(0.002), tgopt.DatasetOptions{FeatureDim: 16})
	cfg := tgopt.ModelConfig{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 1}
	model, _ := tgopt.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	sampler := tgopt.NewSampler(ds.Graph, 5, tgopt.MostRecent, 0)
	engine := tgopt.NewEngine(model, sampler, tgopt.OptAll())

	nodes := []int32{1, 2, 3}
	times := []float64{1e6, 1e6, 2e6}
	baseline := model.Embed(sampler, nodes, times, nil)
	optimized := engine.Embed(nodes, times)

	fmt.Println("shape:", optimized.Shape())
	fmt.Println("identical:", baseline.MaxAbsDiff(optimized) == 0)
	// Output:
	// shape: [3 16]
	// identical: true
}

// ExampleKey shows the collision-free node–timestamp packing of §4.1.
func ExampleKey() {
	fmt.Printf("%#x\n", tgopt.Key(2, 3))
	fmt.Println(tgopt.Key(1, 2) == tgopt.Key(2, 1))
	// Output:
	// 0x200000003
	// false
}

// ExampleNewGraph builds a small dynamic graph and inspects its
// temporal structure.
func ExampleNewGraph() {
	g, _ := tgopt.NewGraph(3, []tgopt.Edge{
		{Src: 1, Dst: 2, Time: 10},
		{Src: 1, Dst: 3, Time: 20},
		{Src: 2, Dst: 3, Time: 30},
	})
	fmt.Println("edges:", g.NumEdges())
	// N(1, t) uses the strict constraint t_j < t.
	fmt.Println("deg(1, 20):", g.TemporalDegree(1, 20))
	fmt.Println("deg(1, 21):", g.TemporalDegree(1, 21))
	// Output:
	// edges: 3
	// deg(1, 20): 1
	// deg(1, 21): 2
}
