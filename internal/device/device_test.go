package device

import (
	"sync"
	"testing"
	"time"
)

func TestOpTimeTensorSpeedup(t *testing.T) {
	s := NewSim(CostModel{TensorSpeedup: 10, HostSlowdown: 2, LaunchOverhead: time.Millisecond})
	got := s.OpTime(TensorOp, 100*time.Millisecond, 2)
	want := 10*time.Millisecond + 2*time.Millisecond
	if got != want {
		t.Fatalf("TensorOp time = %v, want %v", got, want)
	}
	host := s.OpTime(HostOp, 100*time.Millisecond, 0)
	if host != 200*time.Millisecond {
		t.Fatalf("HostOp time = %v, want 200ms", host)
	}
	if s.Total() != got+host {
		t.Fatalf("Total = %v, want %v", s.Total(), got+host)
	}
}

func TestTransferTimeBandwidthAndLatency(t *testing.T) {
	s := NewSim(CostModel{PCIeBytesPerSec: 1e9, DtoDBytesPerSec: 10e9, TransferLatency: time.Microsecond})
	got := s.TransferTime(HtoD, 1e9, 1)
	want := time.Second + time.Microsecond
	if got != want {
		t.Fatalf("HtoD transfer = %v, want %v", got, want)
	}
	dd := s.TransferTime(DtoD, 1e9, 1000)
	wantDD := 100*time.Millisecond + 1000*time.Microsecond
	if dd != wantDD {
		t.Fatalf("DtoD transfer = %v, want %v", dd, wantDD)
	}
	x := s.Transfers()
	if x[HtoD].Bytes != 1e9 || x[HtoD].Calls != 1 || x[HtoD].Time != want {
		t.Fatalf("HtoD account %+v", x[HtoD])
	}
	if x[DtoD].Calls != 1000 {
		t.Fatalf("DtoD calls = %d", x[DtoD].Calls)
	}
	if x[DtoH].Bytes != 0 {
		t.Fatal("DtoH should be untouched")
	}
}

func TestManySmallCopiesDominatedByLatency(t *testing.T) {
	// The Table 5 pathology: the same bytes in many small copies cost
	// far more than one large copy.
	s := NewSim(DefaultCostModel())
	one := s.TransferTime(DtoD, 1<<20, 1)
	s.Reset()
	many := s.TransferTime(DtoD, 1<<20, 4096)
	if many < 100*one {
		t.Fatalf("4096 small copies (%v) not ≫ one large copy (%v)", many, one)
	}
}

func TestNilSimIsFree(t *testing.T) {
	var s *Sim
	if s.OpTime(TensorOp, time.Second, 5) != time.Second {
		t.Fatal("nil Sim should pass wall time through")
	}
	if s.TransferTime(HtoD, 1e9, 1) != 0 {
		t.Fatal("nil Sim transfer should be free")
	}
	if s.Total() != 0 {
		t.Fatal("nil Total should be 0")
	}
	if s.Transfers() != ([3]Transfer{}) {
		t.Fatal("nil Transfers should be zero")
	}
	s.Reset() // must not panic
	if s.String() != "<no device>" {
		t.Fatal("nil String wrong")
	}
}

func TestResetClears(t *testing.T) {
	s := NewSim(DefaultCostModel())
	s.OpTime(TensorOp, time.Second, 1)
	s.TransferTime(HtoD, 1000, 1)
	s.Reset()
	if s.Total() != 0 || s.Transfers()[HtoD].Bytes != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestDirectionString(t *testing.T) {
	if HtoD.String() != "HtoD" || DtoH.String() != "DtoH" || DtoD.String() != "DtoD" || Direction(9).String() != "unknown" {
		t.Fatal("Direction strings wrong")
	}
}

func TestDefaultCostModelShape(t *testing.T) {
	m := DefaultCostModel()
	if m.TensorSpeedup <= 1 {
		t.Fatal("accelerator should speed up tensor math")
	}
	if m.HostSlowdown < 1 {
		t.Fatal("GPU-machine host cores should not be faster")
	}
	if m.DtoDBytesPerSec <= m.PCIeBytesPerSec {
		t.Fatal("on-device bandwidth should exceed PCIe")
	}
}

func TestSimConcurrentUse(t *testing.T) {
	s := NewSim(DefaultCostModel())
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.OpTime(HostOp, time.Microsecond, 0)
				s.TransferTime(DtoH, 100, 1)
			}
		}()
	}
	wg.Wait()
	if s.Transfers()[DtoH].Calls != 2000 {
		t.Fatalf("lost transfer calls: %d", s.Transfers()[DtoH].Calls)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}
