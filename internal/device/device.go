// Package device provides a simulated accelerator for the paper's GPU
// experiments (Figure 5 right, Figure 6 bottom, Table 3 GPU section,
// Table 5). No GPU exists in this environment, so — per the
// substitution rule documented in DESIGN.md — this package models one:
// tensor kernels are executed on the host but *charged* at accelerated
// rates with per-kernel launch overhead, host-side bookkeeping is
// charged at host speed, and every cache/table data movement is charged
// PCIe- or HBM-like transfer costs and counted per direction
// (host-to-device, device-to-host, device-to-device).
//
// The simulation preserves the two behaviours the paper's GPU results
// hinge on: dense math being relatively cheap (so redundancy elimination
// saves less than on CPU, and the time-encoding table lookup can be a
// net regression), and on-device cache storage drowning in many small
// device-to-device copies (Table 5).
package device

import (
	"fmt"
	"sync"
	"time"
)

// OpKind classifies where an operation runs under the device model.
type OpKind int

const (
	// HostOp runs on the host CPU regardless of device (sampling,
	// deduplication, hash-table operations, table gathers).
	HostOp OpKind = iota
	// TensorOp is dense math that the accelerator executes (attention
	// projections, time-encoding kernels, the affinity head).
	TensorOp
)

// Direction labels a memory transfer.
type Direction int

const (
	HtoD Direction = iota // host to device
	DtoH                  // device to host
	DtoD                  // within device
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case HtoD:
		return "HtoD"
	case DtoH:
		return "DtoH"
	case DtoD:
		return "DtoD"
	default:
		return "unknown"
	}
}

// CostModel holds the simulated accelerator's performance parameters.
type CostModel struct {
	// TensorSpeedup divides the host wall time of TensorOps.
	TensorSpeedup float64
	// HostSlowdown multiplies the host wall time of HostOps (the
	// paper's GPU machine had slower CPU cores than the CPU server).
	HostSlowdown float64
	// LaunchOverhead is charged once per kernel launch.
	LaunchOverhead time.Duration
	// PCIeBytesPerSec is the HtoD/DtoH bandwidth.
	PCIeBytesPerSec float64
	// DtoDBytesPerSec is the on-device copy bandwidth.
	DtoDBytesPerSec float64
	// TransferLatency is charged once per transfer call; many small
	// copies are dominated by it, which is exactly the pathology the
	// paper observes for GPU-resident caches.
	TransferLatency time.Duration
}

// DefaultCostModel returns parameters loosely shaped after a V100-class
// card on PCIe 3.0 relative to a single Xeon core: large dense-math
// speedup, ~10 µs launch overhead, ~12 GB/s PCIe, ~300 GB/s effective
// small-copy DtoD with ~4 µs per-call latency.
func DefaultCostModel() CostModel {
	return CostModel{
		TensorSpeedup:   12,
		HostSlowdown:    1.15,
		LaunchOverhead:  10 * time.Microsecond,
		PCIeBytesPerSec: 12e9,
		DtoDBytesPerSec: 300e9,
		TransferLatency: 4 * time.Microsecond,
	}
}

// Transfer is an accumulated per-direction transfer account.
type Transfer struct {
	Calls int64
	Bytes int64
	Time  time.Duration
}

// Sim is a simulated device accumulating charged time and transfer
// accounts. It is safe for concurrent use. A nil *Sim means "no device":
// OpTime returns wall time unchanged and transfers are free.
type Sim struct {
	model CostModel

	mu    sync.Mutex
	total time.Duration
	xfers [3]Transfer
}

// NewSim creates a simulated device with the given cost model.
func NewSim(model CostModel) *Sim { return &Sim{model: model} }

// Model returns the cost model.
func (s *Sim) Model() CostModel { return s.model }

// OpTime converts a measured host wall duration into the simulated
// device duration for an operation of the given kind with the given
// number of kernel launches, accumulates it, and returns it. For a nil
// Sim it returns wall unchanged.
func (s *Sim) OpTime(kind OpKind, wall time.Duration, launches int) time.Duration {
	if s == nil {
		return wall
	}
	var sim time.Duration
	switch kind {
	case TensorOp:
		sim = time.Duration(float64(wall)/s.model.TensorSpeedup) +
			time.Duration(launches)*s.model.LaunchOverhead
	default:
		sim = time.Duration(float64(wall) * s.model.HostSlowdown)
	}
	s.mu.Lock()
	s.total += sim
	s.mu.Unlock()
	return sim
}

// TransferTime charges `calls` transfers moving `bytes` total in the
// given direction, accumulates both the account and the simulated time,
// and returns the simulated duration. Nil Sim: free.
func (s *Sim) TransferTime(dir Direction, bytes int64, calls int) time.Duration {
	if s == nil {
		return 0
	}
	bw := s.model.PCIeBytesPerSec
	if dir == DtoD {
		bw = s.model.DtoDBytesPerSec
	}
	sim := time.Duration(float64(bytes)/bw*float64(time.Second)) +
		time.Duration(calls)*s.model.TransferLatency
	s.mu.Lock()
	s.total += sim
	t := &s.xfers[dir]
	t.Calls += int64(calls)
	t.Bytes += bytes
	t.Time += sim
	s.mu.Unlock()
	return sim
}

// Total returns the accumulated simulated time.
func (s *Sim) Total() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Transfers returns the accumulated per-direction transfer accounts
// indexed by Direction.
func (s *Sim) Transfers() [3]Transfer {
	if s == nil {
		return [3]Transfer{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.xfers
}

// Reset clears the accumulated time and transfer accounts.
func (s *Sim) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total = 0
	s.xfers = [3]Transfer{}
}

// String summarizes the transfer accounts.
func (s *Sim) String() string {
	if s == nil {
		return "<no device>"
	}
	x := s.Transfers()
	return fmt.Sprintf("HtoD %dB/%v  DtoH %dB/%v  DtoD %dB/%v",
		x[HtoD].Bytes, x[HtoD].Time, x[DtoH].Bytes, x[DtoH].Time, x[DtoD].Bytes, x[DtoD].Time)
}
