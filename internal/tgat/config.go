// Package tgat implements the Temporal Graph Attention Network model of
// Xu et al. (ICLR 2020) that TGOpt optimizes: a layered architecture
// where each layer computes temporal node embeddings by attending over a
// sampled temporal neighborhood, with time information injected through
// the functional encoding Φ(Δt) (Eqs. 4–7 of the TGOpt paper).
//
// This package contains the *baseline* recursive embedding computation —
// the reference semantics that the optimized engine in internal/core
// must reproduce bit-for-bit within floating-point tolerance — plus the
// link-prediction head, parameter persistence, and batched inference
// over an edge stream.
package tgat

import "fmt"

// Config holds the TGAT architecture hyperparameters. The paper's
// evaluation uses Layers=2, Heads=2, NumNeighbors=20.
type Config struct {
	Layers       int // number of stacked attention layers (L)
	Heads        int // attention heads per layer
	NodeDim      int // node feature/embedding dimensionality d_v
	EdgeDim      int // edge feature dimensionality d_e
	TimeDim      int // time-encoding dimensionality d_t
	NumNeighbors int // temporal neighbors sampled per target (k)
	Seed         uint64
}

// DefaultConfig returns the paper's model configuration at a
// laptop-friendly feature width.
func DefaultConfig() Config {
	return Config{
		Layers:       2,
		Heads:        2,
		NodeDim:      64,
		EdgeDim:      64,
		TimeDim:      64,
		NumNeighbors: 20,
		Seed:         1,
	}
}

// Validate checks dimensional constraints.
func (c Config) Validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("tgat: Layers must be >= 1, got %d", c.Layers)
	}
	if c.Heads < 1 {
		return fmt.Errorf("tgat: Heads must be >= 1, got %d", c.Heads)
	}
	if c.NodeDim < 1 || c.EdgeDim < 0 || c.TimeDim < 1 {
		return fmt.Errorf("tgat: invalid dims node=%d edge=%d time=%d", c.NodeDim, c.EdgeDim, c.TimeDim)
	}
	if (c.NodeDim+c.TimeDim)%c.Heads != 0 {
		return fmt.Errorf("tgat: NodeDim+TimeDim = %d not divisible by Heads = %d", c.NodeDim+c.TimeDim, c.Heads)
	}
	if c.NumNeighbors < 1 {
		return fmt.Errorf("tgat: NumNeighbors must be >= 1, got %d", c.NumNeighbors)
	}
	return nil
}

// QDim returns the attention query width: node embedding plus Φ(0).
func (c Config) QDim() int { return c.NodeDim + c.TimeDim }

// KDim returns the attention key/value width: neighbor embedding, edge
// feature and Φ(Δt) concatenated.
func (c Config) KDim() int { return c.NodeDim + c.EdgeDim + c.TimeDim }
