package tgat

import (
	"path/filepath"
	"testing"
	"tgopt/internal/parallel"

	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
)

func testConfig() Config {
	return Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 7}
}

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	spec := dataset.Spec{
		Name: "t", Bipartite: true, Users: 30, Items: 15, Edges: 800,
		MaxTime: 1e5, Repeat: 0.5, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 3,
	}
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: 16, RandomNodeFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testModel(t *testing.T, ds *dataset.Dataset) *Model {
	t.Helper()
	m, err := NewModel(testConfig(), ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Heads = 0 },
		func(c *Config) { c.NodeDim = 0 },
		func(c *Config) { c.TimeDim = 0 },
		func(c *Config) { c.NumNeighbors = 0 },
		func(c *Config) { c.Heads = 3 }, // 32 % 3 != 0
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("DefaultConfig invalid")
	}
	if good.QDim() != 32 || good.KDim() != 48 {
		t.Fatalf("QDim/KDim = %d/%d", good.QDim(), good.KDim())
	}
}

func TestNewModelDimChecks(t *testing.T) {
	ds := testDataset(t)
	cfg := testConfig()
	cfg.NodeDim = 8 // mismatch with 16-wide features
	if _, err := NewModel(cfg, ds.NodeFeat, ds.EdgeFeat); err == nil {
		t.Fatal("node-dim mismatch accepted")
	}
	cfg = testConfig()
	cfg.EdgeDim = 8
	cfg.TimeDim = 24 // keep divisibility: 16+24=40 % 2 == 0
	if _, err := NewModel(cfg, ds.NodeFeat, ds.EdgeFeat); err == nil {
		t.Fatal("edge-dim mismatch accepted")
	}
}

func TestLayerForwardShape(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	r := tensor.NewRNG(1)
	n, k := 4, m.Cfg.NumNeighbors
	hTgt := tensor.Randn(r, n, 16)
	hNgh := tensor.Randn(r, n*k, 16)
	eFeat := tensor.Randn(r, n*k, 16)
	tEnc0 := m.Time.Encode(make([]float64, n))
	tEncD := m.Time.Encode(make([]float64, n*k))
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = true
	}
	out := m.LayerForward(1, hTgt, hNgh, eFeat, tEnc0, tEncD, mask)
	if out.Dim(0) != n || out.Dim(1) != 16 {
		t.Fatalf("LayerForward shape %v", out.Shape())
	}
	if out.HasNaN() {
		t.Fatal("LayerForward produced NaN")
	}
}

func TestEmbedShapesAndDeterminism(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	nodes := []int32{1, 2, 3, 31, 32}
	ts := []float64{5e4, 5e4, 6e4, 7e4, 9e4}
	h1 := m.Embed(s, nodes, ts, nil)
	if h1.Dim(0) != 5 || h1.Dim(1) != 16 {
		t.Fatalf("Embed shape %v", h1.Shape())
	}
	h2 := m.Embed(s, nodes, ts, nil)
	if !h1.AllClose(h2, 0) {
		t.Fatal("Embed is not deterministic for the same targets")
	}
	if h1.HasNaN() {
		t.Fatal("Embed produced NaN")
	}
}

func TestEmbedDiffersAcrossTimes(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	// A node with history should embed differently at an early vs late
	// time (different temporal neighborhoods).
	var busy int32 = 1
	best, bestDeg := int32(1), 0
	for v := int32(1); v <= 30; v++ {
		if d := ds.Graph.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	busy = best
	early := m.Embed(s, []int32{busy}, []float64{1e3}, nil)
	late := m.Embed(s, []int32{busy}, []float64{9.9e4}, nil)
	if early.AllClose(late, 1e-9) {
		t.Fatal("embeddings identical across very different times (suspicious)")
	}
}

func TestEmbedLayerZeroIsFeatureLookup(t *testing.T) {
	ds := testDataset(t)
	cfg := testConfig()
	cfg.Layers = 1
	m, err := NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	h := m.embed(s, 0, []int32{0, 3, 7}, []float64{1, 2, 3}, nil)
	for j := 0; j < 16; j++ {
		if h.At(0, j) != 0 {
			t.Fatal("padding node features not zero")
		}
		if h.At(1, j) != ds.NodeFeat.At(3, j) || h.At(2, j) != ds.NodeFeat.At(7, j) {
			t.Fatal("layer-0 lookup wrong")
		}
	}
}

func TestEmbedCollectsStats(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	col := stats.NewCollector()
	m.Embed(s, []int32{1, 2}, []float64{5e4, 5e4}, col)
	for _, op := range []string{stats.OpNghLookup, stats.OpTimeEncZero, stats.OpTimeEncDelta, stats.OpAttention, stats.OpFeatLookup} {
		if col.Duration(op) <= 0 {
			t.Fatalf("no time recorded for %s", op)
		}
	}
}

func TestScoreShape(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	r := tensor.NewRNG(2)
	logits := m.Score(tensor.Randn(r, 6, 16), tensor.Randn(r, 6, 16))
	if logits.Dim(0) != 6 || logits.Dim(1) != 1 {
		t.Fatalf("Score shape %v", logits.Shape())
	}
}

func TestParamsStableCount(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	// time (2) + per layer: attn 8 + merge 4 = 12 ×2 layers + affinity 4.
	if got := len(m.Params()); got != 2+2*12+4 {
		t.Fatalf("param count = %d, want %d", got, 2+2*12+4)
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	nodes := []int32{1, 2, 3}
	ts := []float64{5e4, 6e4, 7e4}
	want := m.Embed(s, nodes, ts, nil)

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	// A fresh model with a different seed embeds differently...
	cfg := testConfig()
	cfg.Seed = 999
	m2, err := NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Embed(s, nodes, ts, nil).AllClose(want, 1e-9) {
		t.Fatal("different-seed models embed identically (suspicious)")
	}
	// ...until the checkpoint is loaded.
	if err := m2.LoadParams(path); err != nil {
		t.Fatal(err)
	}
	got := m2.Embed(s, nodes, ts, nil)
	if !got.AllClose(want, 0) {
		t.Fatalf("post-load embeddings differ: %g", got.MaxAbsDiff(want))
	}
}

func TestLoadParamsArchMismatch(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Layers = 1
	m2, err := NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadParams(path); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	if err := m.LoadParams(path + ".missing"); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestStreamInferenceScoresEveryEdge(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	res := StreamInference(ds.Graph, m, 128, m.BaselineEmbedFunc(s))
	if len(res.Scores) != ds.Graph.NumEdges() {
		t.Fatalf("scores = %d, want %d", len(res.Scores), ds.Graph.NumEdges())
	}
	wantBatches := (ds.Graph.NumEdges() + 127) / 128
	if res.Batches != wantBatches {
		t.Fatalf("batches = %d, want %d", res.Batches, wantBatches)
	}
}

func TestStreamInferenceDeterministic(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	a := StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	b := StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d differs across runs", i)
		}
	}
}

func TestStreamInferenceConcurrentMatchesSerial(t *testing.T) {
	// Batch-level parallelism must not change a single score: embeddings
	// depend only on graph and weights, not on cache state or order.
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	serial := StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	for _, workers := range []int{1, 2, 4} {
		conc := StreamInferenceConcurrent(ds.Graph, m, 100, workers, m.BaselineEmbedFunc(s))
		if len(conc.Scores) != len(serial.Scores) || conc.Batches != serial.Batches {
			t.Fatalf("workers=%d: shape mismatch", workers)
		}
		for i := range serial.Scores {
			if serial.Scores[i] != conc.Scores[i] {
				t.Fatalf("workers=%d: score %d differs", workers, i)
			}
		}
	}
}

func TestExplainMatchesEmbedAndRanksNeighbors(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	// Pick a busy node so attributions are non-trivial.
	best, bestDeg := int32(1), 0
	for v := int32(1); v <= int32(ds.Graph.NumNodes()); v++ {
		if d := ds.Graph.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	at := ds.Graph.MaxTime() + 1
	h, attrs := m.Explain(s, best, at)
	want := m.Embed(s, []int32{best}, []float64{at}, nil)
	if d := h.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("Explain embedding differs from Embed by %g", d)
	}
	if len(attrs) == 0 {
		t.Fatal("no attributions for a busy node")
	}
	var total float64
	for i, a := range attrs {
		if a.Weight < 0 || a.Weight > 1 {
			t.Fatalf("weight %v out of [0,1]", a.Weight)
		}
		if i > 0 && attrs[i-1].Weight < a.Weight {
			t.Fatal("attributions not sorted by weight")
		}
		if a.EdgeTime >= at {
			t.Fatal("attribution violates temporal constraint")
		}
		total += a.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("head-averaged weights sum to %v, want ~1", total)
	}
}

func TestExplainNodeWithoutHistory(t *testing.T) {
	ds := testDataset(t)
	m := testModel(t, ds)
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	h, attrs := m.Explain(s, 1, 0) // before any interaction
	if len(attrs) != 0 {
		t.Fatalf("history-less node has %d attributions", len(attrs))
	}
	want := m.Embed(s, []int32{1}, []float64{0}, nil)
	if d := h.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("Explain embedding differs by %g", d)
	}
}
