package tgat

import (
	"sync"
	"sync/atomic"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
)

// EmbedFunc computes top-layer temporal embeddings for a batch of
// node–timestamp targets. Both the baseline (Model.Embed) and the
// optimized engine (internal/core) satisfy this signature, so the same
// inference driver measures both.
type EmbedFunc func(nodes []int32, ts []float64) *tensor.Tensor

// EmbedArenaFunc is EmbedFunc drawing all result storage from the
// caller's arena: the returned tensor is invalidated by ar.Reset. The
// stream-inference drivers reset the arena once per batch, making a
// steady-state batch allocation-free end to end (DESIGN.md §9).
type EmbedArenaFunc func(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor

// BaselineEmbedFunc adapts Model.Embed to an EmbedFunc over the given
// sampler.
func (m *Model) BaselineEmbedFunc(s *graph.Sampler) EmbedFunc {
	return func(nodes []int32, ts []float64) *tensor.Tensor {
		return m.Embed(s, nodes, ts, nil)
	}
}

// StreamResult is the output of one full-stream inference pass.
type StreamResult struct {
	Scores  []float64 // one link-prediction logit per edge, in stream order
	Batches int
}

// Scorer computes affinity logits for paired embedding rows. *Model,
// *QuantModel, and core.Engine all satisfy it, so the stream driver can
// score at whichever precision produced the embeddings.
type Scorer interface {
	ScoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor
}

// arenaAdapter lifts a plain EmbedFunc into an EmbedArenaFunc (the
// result simply lives on the heap instead of the arena).
func arenaAdapter(embed EmbedFunc) EmbedArenaFunc {
	return func(_ *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
		return embed(nodes, ts)
	}
}

// StreamInferenceConcurrent is StreamInference with up to `workers`
// batches in flight at once. Temporal embeddings depend only on the
// (immutable) graph and model — the TGOpt cache changes how fast a
// value is produced, never what it is — so batches may be computed in
// any order or in parallel without changing a single score; results are
// written into stream order. The embed function must be safe for
// concurrent use (both the baseline and the TGOpt engine are).
func StreamInferenceConcurrent(g *graph.Graph, m *Model, batchSize, workers int, embed EmbedFunc) *StreamResult {
	return StreamInferenceArena(g, m, batchSize, workers, arenaAdapter(embed))
}

// StreamInferenceArena is StreamInferenceConcurrent for an arena-aware
// embed function. A fixed pool of `workers` goroutines claims batch
// indices off an atomic counter; each worker owns one arena and one set
// of batch buffers for its whole lifetime, reset/reused per batch, so
// steady-state batches perform no heap allocation in the driver. With
// workers <= 1 the stream runs on the calling goroutine.
func StreamInferenceArena(g *graph.Graph, m *Model, batchSize, workers int, embed EmbedArenaFunc) *StreamResult {
	return StreamInferenceArenaScored(g, m, batchSize, workers, embed, m)
}

// StreamInferenceArenaScored is StreamInferenceArena scoring through an
// explicit Scorer instead of the model's float affinity head — the int8
// path passes the engine (or QuantModel) so embeddings and logits come
// from the same precision.
func StreamInferenceArenaScored(g *graph.Graph, m *Model, batchSize, workers int, embed EmbedArenaFunc, scorer Scorer) *StreamResult {
	edges := g.Edges()
	nBatches := (len(edges) + batchSize - 1) / batchSize
	res := &StreamResult{Scores: make([]float64, len(edges)), Batches: nBatches}
	if workers > nBatches {
		workers = nBatches
	}
	if workers <= 1 {
		w := newStreamWorker(m, scorer, batchSize)
		for bi := 0; bi < nBatches; bi++ {
			w.runBatch(edges, bi, batchSize, embed, res.Scores)
		}
		return res
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newStreamWorker(m, scorer, batchSize)
			for {
				bi := int(next.Add(1)) - 1
				if bi >= nBatches {
					return
				}
				w.runBatch(edges, bi, batchSize, embed, res.Scores)
			}
		}()
	}
	wg.Wait()
	return res
}

// streamWorker carries the per-worker reusable state of a stream pass:
// the scratch arena and the packed node/timestamp buffers. One worker
// processes one batch at a time, so all fields are single-owner.
type streamWorker struct {
	m      *Model
	scorer Scorer
	ar     *tensor.Arena
	nodes  []int32
	ts     []float64
}

func newStreamWorker(m *Model, scorer Scorer, batchSize int) *streamWorker {
	return &streamWorker{
		m:      m,
		scorer: scorer,
		ar:     tensor.NewArena(),
		nodes:  make([]int32, 2*batchSize),
		ts:     make([]float64, 2*batchSize),
	}
}

// runBatch embeds and scores batch bi, writing logits into stream
// order. Sources are packed before destinations with duplicated
// timestamps — the batching rule of §3.1.
func (w *streamWorker) runBatch(edges []graph.Edge, bi, batchSize int, embed EmbedArenaFunc, scores []float64) {
	start := bi * batchSize
	end := start + batchSize
	if end > len(edges) {
		end = len(edges)
	}
	batch := edges[start:end]
	nb := len(batch)
	w.ar.Reset()
	nodes := w.nodes[:2*nb]
	ts := w.ts[:2*nb]
	for i, e := range batch {
		nodes[i] = e.Src
		nodes[nb+i] = e.Dst
		ts[i] = e.Time
		ts[nb+i] = e.Time
	}
	d := w.m.Cfg.NodeDim
	h := embed(w.ar, nodes, ts)
	hSrc := w.ar.Wrap(h.Data()[:nb*d], nb, d)
	hDst := w.ar.Wrap(h.Data()[nb*d:], nb, d)
	logits := w.scorer.ScoreWith(w.ar, hSrc, hDst)
	for i := 0; i < nb; i++ {
		scores[start+i] = float64(logits.At(i, 0))
	}
}

// StreamInference performs the paper's standard inference task (§5.1):
// iterate every edge of the graph chronologically in batches of
// batchSize, decouple each edge into its source and destination targets
// sharing the edge timestamp, compute temporal embeddings with embed,
// and score each (source, destination) pair with the model's affinity
// head.
func StreamInference(g *graph.Graph, m *Model, batchSize int, embed EmbedFunc) *StreamResult {
	return StreamInferenceArena(g, m, batchSize, 1, arenaAdapter(embed))
}
