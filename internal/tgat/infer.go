package tgat

import (
	"sync"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
)

// EmbedFunc computes top-layer temporal embeddings for a batch of
// node–timestamp targets. Both the baseline (Model.Embed) and the
// optimized engine (internal/core) satisfy this signature, so the same
// inference driver measures both.
type EmbedFunc func(nodes []int32, ts []float64) *tensor.Tensor

// BaselineEmbedFunc adapts Model.Embed to an EmbedFunc over the given
// sampler.
func (m *Model) BaselineEmbedFunc(s *graph.Sampler) EmbedFunc {
	return func(nodes []int32, ts []float64) *tensor.Tensor {
		return m.Embed(s, nodes, ts, nil)
	}
}

// StreamResult is the output of one full-stream inference pass.
type StreamResult struct {
	Scores  []float64 // one link-prediction logit per edge, in stream order
	Batches int
}

// StreamInferenceConcurrent is StreamInference with up to `workers`
// batches in flight at once. Temporal embeddings depend only on the
// (immutable) graph and model — the TGOpt cache changes how fast a
// value is produced, never what it is — so batches may be computed in
// any order or in parallel without changing a single score; results are
// written into stream order. The embed function must be safe for
// concurrent use (both the baseline and the TGOpt engine are).
func StreamInferenceConcurrent(g *graph.Graph, m *Model, batchSize, workers int, embed EmbedFunc) *StreamResult {
	if workers <= 1 {
		return StreamInference(g, m, batchSize, embed)
	}
	edges := g.Edges()
	nBatches := (len(edges) + batchSize - 1) / batchSize
	res := &StreamResult{Scores: make([]float64, len(edges)), Batches: nBatches}
	d := m.Cfg.NodeDim

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for start := 0; start < len(edges); start += batchSize {
		start := start
		end := start + batchSize
		if end > len(edges) {
			end = len(edges)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			batch := edges[start:end]
			nb := len(batch)
			nodes := make([]int32, 2*nb)
			ts := make([]float64, 2*nb)
			for i, e := range batch {
				nodes[i] = e.Src
				nodes[nb+i] = e.Dst
				ts[i] = e.Time
				ts[nb+i] = e.Time
			}
			h := embed(nodes, ts)
			hSrc := tensor.FromSlice(h.Data()[:nb*d], nb, d)
			hDst := tensor.FromSlice(h.Data()[nb*d:], nb, d)
			logits := m.Score(hSrc, hDst)
			for i := 0; i < nb; i++ {
				res.Scores[start+i] = float64(logits.At(i, 0))
			}
		}()
	}
	wg.Wait()
	return res
}

// StreamInference performs the paper's standard inference task (§5.1):
// iterate every edge of the graph chronologically in batches of
// batchSize, decouple each edge into its source and destination targets
// sharing the edge timestamp, compute temporal embeddings with embed,
// and score each (source, destination) pair with the model's affinity
// head.
func StreamInference(g *graph.Graph, m *Model, batchSize int, embed EmbedFunc) *StreamResult {
	edges := g.Edges()
	res := &StreamResult{Scores: make([]float64, 0, len(edges))}
	d := m.Cfg.NodeDim
	for start := 0; start < len(edges); start += batchSize {
		end := start + batchSize
		if end > len(edges) {
			end = len(edges)
		}
		batch := edges[start:end]
		nb := len(batch)
		// Pack sources then destinations, duplicating the timestamps:
		// the batching rule of §3.1.
		nodes := make([]int32, 2*nb)
		ts := make([]float64, 2*nb)
		for i, e := range batch {
			nodes[i] = e.Src
			nodes[nb+i] = e.Dst
			ts[i] = e.Time
			ts[nb+i] = e.Time
		}
		h := embed(nodes, ts)
		hSrc := tensor.FromSlice(h.Data()[:nb*d], nb, d)
		hDst := tensor.FromSlice(h.Data()[nb*d:], nb, d)
		logits := m.Score(hSrc, hDst)
		for i := 0; i < nb; i++ {
			res.Scores = append(res.Scores, float64(logits.At(i, 0)))
		}
		res.Batches++
	}
	return res
}
