package tgat

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"tgopt/internal/faultfs"
	"tgopt/internal/tensor"
)

func persistTestModel(t testing.TB, seed uint64) *Model {
	t.Helper()
	cfg := Config{Layers: 1, Heads: 1, NodeDim: 4, EdgeDim: 4, TimeDim: 4, NumNeighbors: 2, Seed: seed}
	m, err := NewModel(cfg, tensor.New(3, 4), tensor.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// paramSnapshot deep-copies the model's parameter data for later
// bitwise comparison.
func paramSnapshot(m *Model) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range m.Params() {
		c := tensor.New(p.Shape()...)
		c.CopyFrom(p)
		out = append(out, c)
	}
	return out
}

func paramsEqual(t *testing.T, m *Model, want []*tensor.Tensor, context string) {
	t.Helper()
	for i, p := range m.Params() {
		if d := p.MaxAbsDiff(want[i]); d != 0 {
			t.Fatalf("%s: parameter %d differs by %g", context, i, d)
		}
	}
}

func TestSaveLoadParamsEnvelopeRoundTrip(t *testing.T) {
	m := persistTestModel(t, 11)
	path := filepath.Join(t.TempDir(), "params.bin")
	if err := m.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	m2 := persistTestModel(t, 99) // different init
	if err := m2.LoadParams(path); err != nil {
		t.Fatal(err)
	}
	paramsEqual(t, m2, paramSnapshot(m), "round trip")
}

// legacyParamsFile writes the pre-envelope checkpoint format: raw
// tensor-count header followed by the tensors, no checksum.
func legacyParamsFile(t *testing.T, m *Model, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	ps := m.Params()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ps)))
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if _, err := p.WriteTo(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadParamsLegacyFile(t *testing.T) {
	m := persistTestModel(t, 11)
	path := filepath.Join(t.TempDir(), "legacy.bin")
	legacyParamsFile(t, m, path)
	m2 := persistTestModel(t, 99)
	if err := m2.LoadParams(path); err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	paramsEqual(t, m2, paramSnapshot(m), "legacy load")
}

// TestSaveParamsAtomicUnderFaults: whatever fault hits the file system
// during a save — short write at any offset, failed create, fsync, or
// rename — the previous on-disk checkpoint remains fully loadable.
func TestSaveParamsAtomicUnderFaults(t *testing.T) {
	m := persistTestModel(t, 11)
	path := filepath.Join(t.TempDir(), "params.bin")
	if err := m.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	want := paramSnapshot(m)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	m2 := persistTestModel(t, 99) // the writer whose saves keep failing
	check := func(when string, saveErr error) {
		t.Helper()
		if saveErr == nil {
			t.Fatalf("%s: fault not reported", when)
		}
		fresh := persistTestModel(t, 5)
		if err := fresh.LoadParams(path); err != nil {
			t.Fatalf("%s: previous checkpoint damaged: %v", when, err)
		}
		paramsEqual(t, fresh, want, when)
	}

	limits := []int{0, 1, 4, 15, 16, 17}
	for l := 32; l < int(info.Size()); l += 61 {
		limits = append(limits, l)
	}
	limits = append(limits, int(info.Size())-1)
	for _, limit := range limits {
		fsys := faultfs.NewFS()
		fsys.WriteLimit = limit
		check("short write", m2.SaveParamsFS(fsys, path))
	}
	check("create", m2.SaveParamsFS(&faultfs.FS{WriteLimit: -1, FailCreate: true}, path))
	check("sync", m2.SaveParamsFS(&faultfs.FS{WriteLimit: -1, FailSync: true}, path))
	check("rename", m2.SaveParamsFS(&faultfs.FS{WriteLimit: -1, FailRename: true}, path))
}

// TestLoadParamsAllOrNothing: corrupt checkpoints (bit flips,
// truncations) must fail cleanly with the model's parameters left
// exactly as they were — never a half-applied mix of old and new.
func TestLoadParamsAllOrNothing(t *testing.T) {
	m := persistTestModel(t, 11)
	dir := t.TempDir()
	path := filepath.Join(dir, "params.bin")
	if err := m.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	loader := persistTestModel(t, 99)
	before := paramSnapshot(loader)
	for bit := int64(0); bit < int64(len(clean))*8; bit += 103 {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		if err := loader.LoadParams(path); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
		paramsEqual(t, loader, before, "after bit flip")
	}
	for _, cut := range []int64{0, 5, 20, int64(len(clean) / 2), int64(len(clean)) - 1} {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.TruncateFile(path, cut); err != nil {
			t.Fatal(err)
		}
		if err := loader.LoadParams(path); err == nil {
			t.Fatalf("truncation to %d went undetected", cut)
		}
		paramsEqual(t, loader, before, "after truncation")
	}

	// A truncated *legacy* file has no checksum; the staged apply is
	// what protects it.
	legacy := filepath.Join(dir, "legacy.bin")
	legacyParamsFile(t, m, legacy)
	lb, err := os.ReadFile(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, lb[:len(lb)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loader.LoadParams(legacy); err == nil {
		t.Fatal("truncated legacy checkpoint accepted")
	}
	paramsEqual(t, loader, before, "after truncated legacy load")
}

// FuzzLoadParams asserts the loader's contract over arbitrary file
// bytes: never a panic, and on any error the model's parameters are
// untouched.
func FuzzLoadParams(f *testing.F) {
	seedModel := persistTestModel(f, 11)
	tmp := filepath.Join(f.TempDir(), "seed.bin")
	if err := seedModel.SaveParams(tmp); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(tmp)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	var legacy bytes.Buffer
	ps := seedModel.Params()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ps)))
	legacy.Write(hdr[:])
	for _, p := range ps {
		p.WriteTo(&legacy)
	}
	f.Add(legacy.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := persistTestModel(t, 77)
		before := paramSnapshot(m)
		path := filepath.Join(t.TempDir(), "fuzz.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := m.LoadParams(path); err != nil {
			paramsEqual(t, m, before, "after failed load")
		}
	})
}
