package tgat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"tgopt/internal/checkpoint"
	"tgopt/internal/graph"
	"tgopt/internal/nn"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
)

// Model is a TGAT model instance: per-layer attention and merge
// parameters, the shared time encoder, static node and edge feature
// tables (row 0 of each is the all-zero padding row), and the
// link-prediction affinity head.
type Model struct {
	Cfg      Config
	NodeFeat *tensor.Tensor // (|V|+1, NodeDim)
	EdgeFeat *tensor.Tensor // (|E|+1, EdgeDim)
	Time     *nn.TimeEncoder
	Attn     []*nn.TemporalAttention // Attn[l-1] serves layer l
	Merge    []*nn.MergeLayer        // Merge[l-1] serves layer l
	Affinity *nn.MergeLayer          // link-prediction head -> 1 logit
}

// NewModel creates a model with Xavier-initialized parameters over the
// given feature tables. nodeFeat must have NodeDim columns and edgeFeat
// EdgeDim columns; both must keep row 0 all-zero (padding).
func NewModel(cfg Config, nodeFeat, edgeFeat *tensor.Tensor) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodeFeat.Dim(1) != cfg.NodeDim {
		return nil, fmt.Errorf("tgat: node features have %d columns, config says %d", nodeFeat.Dim(1), cfg.NodeDim)
	}
	if edgeFeat.Dim(1) != cfg.EdgeDim {
		return nil, fmt.Errorf("tgat: edge features have %d columns, config says %d", edgeFeat.Dim(1), cfg.EdgeDim)
	}
	r := tensor.NewRNG(cfg.Seed)
	m := &Model{
		Cfg:      cfg,
		NodeFeat: nodeFeat,
		EdgeFeat: edgeFeat,
		Time:     nn.NewTimeEncoder(cfg.TimeDim),
	}
	for l := 0; l < cfg.Layers; l++ {
		m.Attn = append(m.Attn, nn.NewTemporalAttention(r, cfg.Heads, cfg.QDim(), cfg.KDim()))
		m.Merge = append(m.Merge, nn.NewMergeLayer(r, cfg.QDim(), cfg.NodeDim, cfg.NodeDim, cfg.NodeDim))
	}
	m.Affinity = nn.NewMergeLayer(r, cfg.NodeDim, cfg.NodeDim, cfg.NodeDim, 1)
	return m, nil
}

// LayerForward runs one TGAT layer (Eqs. 4–7) for n targets.
//
//	l      layer index in 1..Layers
//	hTgt   (n, NodeDim)    previous-layer embeddings of the targets
//	hNgh   (n*k, NodeDim)  previous-layer embeddings of sampled neighbors
//	eFeat  (n*k, EdgeDim)  edge features of the sampled interactions
//	tEnc0  (n, TimeDim)    Φ(0) rows for the targets
//	tEncD  (n*k, TimeDim)  Φ(t−t_j) rows for the neighbor slots
//	mask   len n*k         slot validity
//
// Returns the layer-l embeddings (n, NodeDim).
func (m *Model) LayerForward(l int, hTgt, hNgh, eFeat, tEnc0, tEncD *tensor.Tensor, mask []bool) *tensor.Tensor {
	return m.LayerForwardWith(nil, l, hTgt, hNgh, eFeat, tEnc0, tEncD, mask)
}

// LayerForwardWith is LayerForward with every intermediate and the
// output drawn from ar (heap when ar is nil). The result is invalidated
// by ar.Reset.
func (m *Model) LayerForwardWith(ar *tensor.Arena, l int, hTgt, hNgh, eFeat, tEnc0, tEncD *tensor.Tensor, mask []bool) *tensor.Tensor {
	n := hTgt.Dim(0)
	q := ar.Tensor(n, m.Cfg.QDim()) // z_i(t)
	tensor.ConcatColsInto(q, hTgt, tEnc0)
	kv := ar.Tensor(hNgh.Dim(0), m.Cfg.KDim()) // z_j(t)
	tensor.ConcatColsInto(kv, hNgh, eFeat, tEncD)
	attnOut := m.Attn[l-1].ForwardWith(ar, q, kv, m.Cfg.NumNeighbors, mask)
	return m.Merge[l-1].ForwardWith(ar, attnOut, hTgt) // FFN(r_i ‖ h_i)
}

// Embed computes baseline (unoptimized) temporal embeddings at the top
// layer for the given node–timestamp targets, recursively expanding the
// L-hop temporal subgraph exactly as the original TGAT implementation
// does: no deduplication, no caching, no precomputed time encodings.
// col may be nil.
func (m *Model) Embed(s *graph.Sampler, nodes []int32, ts []float64, col *stats.Collector) *tensor.Tensor {
	return m.embed(s, m.Cfg.Layers, nodes, ts, col)
}

func (m *Model) embed(s *graph.Sampler, l int, nodes []int32, ts []float64, col *stats.Collector) *tensor.Tensor {
	if l == 0 {
		stop := col.Time(stats.OpFeatLookup)
		h := gatherRows32(m.NodeFeat, nodes)
		stop()
		return h
	}
	n := len(nodes)
	k := m.Cfg.NumNeighbors

	stop := col.Time(stats.OpNghLookup)
	b := s.Sample(nodes, ts)
	stop()

	// Recurse over targets ∪ neighbors at layer l-1.
	allNodes := make([]int32, n+n*k)
	allTs := make([]float64, n+n*k)
	copy(allNodes, nodes)
	copy(allTs, ts)
	copy(allNodes[n:], b.Nghs)
	copy(allTs[n:], b.Times)
	hAll := m.embed(s, l-1, allNodes, allTs, col)

	d := m.Cfg.NodeDim
	hTgt := tensor.FromSlice(hAll.Data()[:n*d], n, d)
	hNgh := tensor.FromSlice(hAll.Data()[n*d:], n*k, d)

	// Time encodings: Φ(0) for targets, Φ(t − t_j) for neighbor slots
	// (padding slots carry t_j = t, so their delta is 0, matching the
	// original implementation's zero-padded deltas).
	stop = col.Time(stats.OpTimeEncZero)
	zeros := make([]float64, n)
	tEnc0 := m.Time.Encode(zeros)
	stop()

	stop = col.Time(stats.OpTimeEncDelta)
	deltas := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			deltas[i*k+j] = ts[i] - b.Times[i*k+j]
		}
	}
	tEncD := m.Time.Encode(deltas)
	stop()

	stop = col.Time(stats.OpFeatLookup)
	eFeat := gatherRows32(m.EdgeFeat, b.EIdxs)
	stop()

	stop = col.Time(stats.OpAttention)
	out := m.LayerForward(l, hTgt, hNgh, eFeat, tEnc0, tEncD, b.Valid)
	stop()
	return out
}

// gatherRows32 is tensor.GatherRows for int32 indices.
func gatherRows32(t *tensor.Tensor, idx []int32) *tensor.Tensor {
	w := t.Dim(1)
	rows := t.Dim(0)
	out := tensor.New(len(idx), w)
	src := t.Data()
	dst := out.Data()
	for i, r := range idx {
		// Live-ingested edges have ids past the feature table; they
		// carry no features, so use the all-zero padding row.
		if int(r) >= rows || r < 0 {
			r = 0
		}
		copy(dst[i*w:(i+1)*w], src[int(r)*w:(int(r)+1)*w])
	}
	return out
}

// Score computes link-prediction logits for paired rows of hSrc and
// hDst, shape (n, 1).
func (m *Model) Score(hSrc, hDst *tensor.Tensor) *tensor.Tensor {
	return m.Affinity.Forward(hSrc, hDst)
}

// ScoreWith is Score with the output drawn from ar (heap when ar is
// nil). The result is invalidated by ar.Reset.
func (m *Model) ScoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor {
	return m.Affinity.ForwardWith(ar, hSrc, hDst)
}

// Attribution is one neighbor's contribution to a target's top-layer
// embedding, for model introspection.
type Attribution struct {
	Neighbor int32
	EdgeIdx  int32
	EdgeTime float64
	// Weight is the neighbor's attention probability averaged over
	// heads at the top layer.
	Weight float64
}

// Explain computes the temporal embedding of a single ⟨node, t⟩ target
// and returns the top-layer attention attribution over its sampled
// neighbors, sorted by descending weight — which past interactions the
// model attended to. The embedding equals Embed's output for the same
// target.
func (m *Model) Explain(s *graph.Sampler, node int32, t float64) (*tensor.Tensor, []Attribution) {
	nodes := []int32{node}
	ts := []float64{t}
	k := m.Cfg.NumNeighbors
	b := s.Sample(nodes, ts)

	allNodes := append(append([]int32{}, nodes...), b.Nghs...)
	allTs := append(append([]float64{}, ts...), b.Times...)
	hAll := m.embed(s, m.Cfg.Layers-1, allNodes, allTs, nil)
	d := m.Cfg.NodeDim
	hTgt := tensor.FromSlice(hAll.Data()[:d], 1, d)
	hNgh := tensor.FromSlice(hAll.Data()[d:], k, d)

	tEnc0 := m.Time.Encode([]float64{0})
	deltas := make([]float64, k)
	for j := 0; j < k; j++ {
		deltas[j] = t - b.Times[j]
	}
	tEncD := m.Time.Encode(deltas)
	eFeat := tensor.New(k, m.Cfg.EdgeDim)
	for j := 0; j < k; j++ {
		row := int(b.EIdxs[j])
		if row >= m.EdgeFeat.Dim(0) || row < 0 {
			row = 0 // live-ingested edge: no features, use the padding row
		}
		copy(eFeat.Row(j), m.EdgeFeat.Row(row))
	}

	q := tensor.ConcatCols(hTgt, tEnc0)
	kv := tensor.ConcatCols(hNgh, eFeat, tEncD)
	l := m.Cfg.Layers
	attnOut, weights := m.Attn[l-1].Forward(q, kv, k, b.Valid, true)
	h := m.Merge[l-1].Forward(attnOut, hTgt)

	var attrs []Attribution
	for j := 0; j < k; j++ {
		if !b.Valid[j] {
			continue
		}
		var wsum float64
		for head := 0; head < m.Cfg.Heads; head++ {
			wsum += float64(weights.At(0, head, j))
		}
		attrs = append(attrs, Attribution{
			Neighbor: b.Nghs[j],
			EdgeIdx:  b.EIdxs[j],
			EdgeTime: b.Times[j],
			Weight:   wsum / float64(m.Cfg.Heads),
		})
	}
	sort.SliceStable(attrs, func(a, b int) bool { return attrs[a].Weight > attrs[b].Weight })
	return h, attrs
}

// Params returns every trainable tensor in a stable order (time encoder
// first, then layers bottom-up, then the affinity head).
func (m *Model) Params() []*tensor.Tensor {
	ps := m.Time.Params()
	for l := 0; l < m.Cfg.Layers; l++ {
		ps = append(ps, m.Attn[l].Params()...)
		ps = append(ps, m.Merge[l].Params()...)
	}
	ps = append(ps, m.Affinity.Params()...)
	return ps
}

// paramsVersion is the envelope version of a parameter checkpoint
// (v2: checksummed checkpoint envelope; v1 was the raw tensor stream).
const paramsVersion uint32 = 2

// SaveParams writes all trainable parameters to path as an atomic,
// checksummed snapshot (write to path.tmp, fsync, rename): a crash
// mid-save leaves the previous checkpoint intact. Node and edge
// features are dataset state, not parameters, and are excluded.
func (m *Model) SaveParams(path string) error {
	return m.SaveParamsFS(checkpoint.OS{}, path)
}

// SaveParamsFS is SaveParams over an injectable file system (fault
// tests drive it through internal/faultfs).
func (m *Model) SaveParamsFS(fsys checkpoint.FS, path string) error {
	return checkpoint.WriteFS(fsys, path, paramsVersion, func(w io.Writer) error {
		ps := m.Params()
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(ps)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		for _, p := range ps {
			if _, err := p.WriteTo(w); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadParams reads parameters written by SaveParams into the model.
// The architecture (and hence the parameter list) must match. The load
// is all-or-nothing: every tensor is parsed and shape-checked before
// the first one is applied, so a corrupt or mismatched checkpoint
// leaves the model's parameters untouched. Both current (enveloped,
// checksummed) and legacy (raw stream) checkpoint files load.
func (m *Model) LoadParams(path string) error {
	err := checkpoint.Read(path, func(version uint32, r io.Reader) error {
		if version != paramsVersion {
			return fmt.Errorf("tgat: checkpoint version %d, model reads %d", version, paramsVersion)
		}
		return m.loadParamStream(r)
	})
	if errors.Is(err, checkpoint.ErrNotCheckpoint) {
		// Pre-envelope checkpoint: same stream, no checksum.
		f, ferr := os.Open(path)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if err := m.loadParamStream(bufio.NewReader(f)); err != nil {
			return fmt.Errorf("tgat: legacy checkpoint %s: %w", path, err)
		}
		return nil
	}
	return err
}

// loadParamStream parses a parameter stream into staging tensors and
// applies them only after every one has been read and validated.
func (m *Model) loadParamStream(r io.Reader) error {
	sp, err := m.parseParamStream(r)
	if err != nil {
		return err
	}
	m.ApplyParams(sp)
	return nil
}

// StagedParams is a fully parsed and shape-validated parameter
// checkpoint that has not yet been applied to a model — the "prepare"
// half of the two-phase hot-swap: every shard parses its copy first,
// and only when all of them succeed does any model mutate
// (ApplyParams).
type StagedParams struct {
	tensors []*tensor.Tensor
}

// parseParamStream reads and validates a parameter stream against m's
// architecture without touching m.
func (m *Model) parseParamStream(r io.Reader) (*StagedParams, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(hdr[:])
	ps := m.Params()
	if int(count) != len(ps) {
		return nil, fmt.Errorf("tgat: checkpoint has %d tensors, model expects %d", count, len(ps))
	}
	staged := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		var t tensor.Tensor
		if _, err := t.ReadFrom(br); err != nil {
			return nil, fmt.Errorf("tgat: reading tensor %d: %w", i, err)
		}
		if !t.SameShape(p) {
			return nil, fmt.Errorf("tgat: tensor %d shape %v, model expects %v", i, t.Shape(), p.Shape())
		}
		staged[i] = &t
	}
	return &StagedParams{tensors: staged}, nil
}

// ParseParamsFS reads and fully validates a parameter checkpoint
// (envelope, checksum, tensor count, shapes) against m's architecture
// WITHOUT applying it. A nil error means ApplyParams cannot fail — the
// separation that makes an all-or-nothing multi-engine swap possible.
func (m *Model) ParseParamsFS(fsys checkpoint.FS, path string) (*StagedParams, error) {
	var sp *StagedParams
	err := checkpoint.ReadFS(fsys, path, func(version uint32, r io.Reader) error {
		if version != paramsVersion {
			return fmt.Errorf("tgat: checkpoint version %d, model reads %d", version, paramsVersion)
		}
		var perr error
		sp, perr = m.parseParamStream(r)
		return perr
	})
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// ApplyParams copies a staged checkpoint into the model's parameter
// tensors. The tensors mutate in place, so every engine sharing this
// model sees the new values; callers must hold the engines' swap
// barriers (core.Engine.SwapLock) around the call.
func (m *Model) ApplyParams(sp *StagedParams) {
	for i, p := range m.Params() {
		p.CopyFrom(sp.tensors[i])
	}
}

// Clone returns a model with the same architecture and feature tables
// (shared — they are immutable dataset state) but private copies of
// every trainable parameter, initialized to m's current values. The
// background fine-tuner trains a clone so the serving model's tensors
// are never touched outside the swap barrier.
func (m *Model) Clone() (*Model, error) {
	c, err := NewModel(m.Cfg, m.NodeFeat, m.EdgeFeat)
	if err != nil {
		return nil, err
	}
	src := m.Params()
	for i, p := range c.Params() {
		p.CopyFrom(src[i])
	}
	return c, nil
}
