package tgat

import (
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

// QuantModel is the int8 inference view of a Model: every attention
// projection, merge layer, and the affinity head carry pre-packed int8
// weights (quantized once here, never per request), while feature
// tables and the time encoder stay shared with the float model. The
// forward math mirrors Model.LayerForwardWith exactly — concatenation,
// softmax, and ReLU run in float32; only the matmuls are quantized.
type QuantModel struct {
	M        *Model
	Attn     []*nn.QuantTemporalAttention // Attn[l-1] serves layer l
	Merge    []*nn.QuantMergeLayer
	Affinity *nn.QuantMergeLayer
}

// QuantizeModel packs m's weights for the int8 path. m is retained (not
// copied): a later weight swap requires re-quantizing via a fresh
// QuantizeModel call, which the engine's swap path does.
func QuantizeModel(m *Model) *QuantModel {
	qm := &QuantModel{M: m}
	for l := 0; l < m.Cfg.Layers; l++ {
		qm.Attn = append(qm.Attn, nn.QuantizeAttention(m.Attn[l]))
		qm.Merge = append(qm.Merge, nn.QuantizeMergeLayer(m.Merge[l]))
	}
	qm.Affinity = nn.QuantizeMergeLayer(m.Affinity)
	return qm
}

// WeightBytes returns the packed int8 weight footprint (all layers plus
// the affinity head), for the stats surface.
func (qm *QuantModel) WeightBytes() int {
	var b int
	for l := range qm.Attn {
		b += qm.Attn[l].Bytes() + qm.Merge[l].Bytes()
	}
	return b + qm.Affinity.Bytes()
}

// LayerForwardWith is Model.LayerForwardWith through the int8 kernels.
// See that method for the shape contract.
func (qm *QuantModel) LayerForwardWith(ar *tensor.Arena, l int, hTgt, hNgh, eFeat, tEnc0, tEncD *tensor.Tensor, mask []bool) *tensor.Tensor {
	m := qm.M
	n := hTgt.Dim(0)
	q := ar.Tensor(n, m.Cfg.QDim()) // z_i(t)
	tensor.ConcatColsInto(q, hTgt, tEnc0)
	kv := ar.Tensor(hNgh.Dim(0), m.Cfg.KDim()) // z_j(t)
	tensor.ConcatColsInto(kv, hNgh, eFeat, tEncD)
	attnOut := qm.Attn[l-1].ForwardWith(ar, q, kv, m.Cfg.NumNeighbors, mask)
	return qm.Merge[l-1].ForwardWith(ar, attnOut, hTgt) // FFN(r_i ‖ h_i)
}

// ScoreWith is Model.ScoreWith through the int8 affinity head.
func (qm *QuantModel) ScoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor {
	return qm.Affinity.ForwardWith(ar, hSrc, hDst)
}
