package autograd

import (
	"math"

	"tgopt/internal/tensor"
)

// CosAffine computes the TGAT time encoding out[i,j] = cos(dt_i·ω_j + φ_j)
// with gradients flowing into ω and φ:
//
//	∂L/∂ω_j = Σ_i −sin(dt_i·ω_j + φ_j) · dt_i · dout[i,j]
//	∂L/∂φ_j = Σ_i −sin(dt_i·ω_j + φ_j) · dout[i,j]
func CosAffine(omega, phi *Value, dts []float64) *Value {
	d := omega.T.Len()
	out := tensor.New(len(dts), d)
	om, ph := omega.T.Data(), phi.T.Data()
	args := make([]float64, len(dts)*d) // kept for the backward pass
	for i, dt := range dts {
		for j := 0; j < d; j++ {
			a := dt*float64(om[j]) + float64(ph[j])
			args[i*d+j] = a
			out.Data()[i*d+j] = float32(math.Cos(a))
		}
	}
	o := newOp(out, nil, omega, phi)
	if o.requiresGrad {
		o.back = func() {
			var gom, gph []float32
			if omega.requiresGrad {
				gom = omega.ensureGrad().Data()
			}
			if phi.requiresGrad {
				gph = phi.ensureGrad().Data()
			}
			od := o.grad.Data()
			for i, dt := range dts {
				for j := 0; j < d; j++ {
					s := -math.Sin(args[i*d+j]) * float64(od[i*d+j])
					if gom != nil {
						gom[j] += float32(s * dt)
					}
					if gph != nil {
						gph[j] += float32(s)
					}
				}
			}
		}
	}
	return o
}

// Attend is the scaled dot-product temporal attention kernel with a
// hand-written backward pass. q is (n, e) with one query per target; k
// and v are (n*slots, e); mask marks valid neighbor slots. heads must
// divide e. Targets with no valid slots produce a zero context row (and
// receive no gradient through this op), matching nn.TemporalAttention.
func Attend(q, k, v *Value, slots int, mask []bool, heads int) *Value {
	n := q.T.Dim(0)
	e := q.T.Dim(1)
	if e%heads != 0 {
		panic("autograd: Attend embed dim not divisible by heads")
	}
	hd := e / heads
	scale := 1 / math.Sqrt(float64(hd))
	out := tensor.New(n, e)
	// Cache the attention weights for the backward pass.
	alphas := make([]float32, n*heads*slots)

	qd, kd, vd, od := q.T.Data(), k.T.Data(), v.T.Data(), out.Data()
	for i := 0; i < n; i++ {
		for h := 0; h < heads; h++ {
			qrow := qd[i*e+h*hd : i*e+(h+1)*hd]
			maxv := math.Inf(-1)
			any := false
			scores := make([]float64, slots)
			for j := 0; j < slots; j++ {
				p := i*slots + j
				if !mask[p] {
					continue
				}
				krow := kd[p*e+h*hd : p*e+(h+1)*hd]
				var s float64
				for dd := range qrow {
					s += float64(qrow[dd]) * float64(krow[dd])
				}
				s *= scale
				scores[j] = s
				any = true
				if s > maxv {
					maxv = s
				}
			}
			if !any {
				continue
			}
			var sum float64
			for j := 0; j < slots; j++ {
				if !mask[i*slots+j] {
					continue
				}
				ex := math.Exp(scores[j] - maxv)
				scores[j] = ex
				sum += ex
			}
			orow := od[i*e+h*hd : i*e+(h+1)*hd]
			for j := 0; j < slots; j++ {
				p := i*slots + j
				if !mask[p] {
					continue
				}
				a := float32(scores[j] / sum)
				alphas[(i*heads+h)*slots+j] = a
				vrow := vd[p*e+h*hd : p*e+(h+1)*hd]
				for dd := range orow {
					orow[dd] += a * vrow[dd]
				}
			}
		}
	}

	o := newOp(out, nil, q, k, v)
	if o.requiresGrad {
		o.back = func() {
			var gq, gk, gv []float32
			if q.requiresGrad {
				gq = q.ensureGrad().Data()
			}
			if k.requiresGrad {
				gk = k.ensureGrad().Data()
			}
			if v.requiresGrad {
				gv = v.ensureGrad().Data()
			}
			od := o.grad.Data()
			dalpha := make([]float64, slots)
			for i := 0; i < n; i++ {
				for h := 0; h < heads; h++ {
					base := (i*heads + h) * slots
					dctx := od[i*e+h*hd : i*e+(h+1)*hd]
					// dα_j = v_j · dctx ; dv_j += α_j dctx
					var dot float64 // Σ_l α_l dα_l
					for j := 0; j < slots; j++ {
						p := i*slots + j
						a := float64(alphas[base+j])
						if a == 0 && !mask[p] {
							dalpha[j] = 0
							continue
						}
						vrow := vd[p*e+h*hd : p*e+(h+1)*hd]
						var da float64
						for dd := range dctx {
							da += float64(vrow[dd]) * float64(dctx[dd])
						}
						dalpha[j] = da
						dot += a * da
						if gv != nil {
							gvrow := gv[p*e+h*hd : p*e+(h+1)*hd]
							for dd := range dctx {
								gvrow[dd] += float32(a * float64(dctx[dd]))
							}
						}
					}
					// dscore_j = α_j (dα_j − Σ α dα); fold into q, k.
					qrow := qd[i*e+h*hd : i*e+(h+1)*hd]
					for j := 0; j < slots; j++ {
						p := i*slots + j
						a := float64(alphas[base+j])
						if a == 0 {
							continue
						}
						ds := a * (dalpha[j] - dot) * scale
						krow := kd[p*e+h*hd : p*e+(h+1)*hd]
						if gq != nil {
							gqrow := gq[i*e+h*hd : i*e+(h+1)*hd]
							for dd := range krow {
								gqrow[dd] += float32(ds * float64(krow[dd]))
							}
						}
						if gk != nil {
							gkrow := gk[p*e+h*hd : p*e+(h+1)*hd]
							for dd := range qrow {
								gkrow[dd] += float32(ds * float64(qrow[dd]))
							}
						}
					}
				}
			}
		}
	}
	return o
}

// Dropout zeroes each element with probability p and scales survivors
// by 1/(1−p) (inverted dropout), so activations keep their expectation.
// The mask is drawn from r and reused by the backward pass. p outside
// (0,1) returns x unchanged — the inference configuration. TGAT trains
// with dropout 0.1 by default.
func Dropout(x *Value, p float64, r *tensor.RNG) *Value {
	if p <= 0 || p >= 1 {
		return x
	}
	keep := float32(1 / (1 - p))
	mask := make([]bool, x.T.Len())
	out := tensor.New(x.T.Shape()...)
	for i, v := range x.T.Data() {
		if r.Float64() >= p {
			mask[i] = true
			out.Data()[i] = v * keep
		}
	}
	o := newOp(out, nil, x)
	if o.requiresGrad {
		o.back = func() {
			g := x.ensureGrad().Data()
			od := o.grad.Data()
			for i, keepIt := range mask {
				if keepIt {
					g[i] += od[i] * keep
				}
			}
		}
	}
	return o
}

// BCEWithLogits computes the mean binary cross-entropy of logits
// (n elements) against {0,1} labels as a scalar value, with the standard
// gradient (σ(x)−y)/n.
func BCEWithLogits(logits *Value, labels []float32) *Value {
	if logits.T.Len() != len(labels) {
		panic("autograd: BCEWithLogits length mismatch")
	}
	var total float64
	for i, x := range logits.T.Data() {
		xf, y := float64(x), float64(labels[i])
		total += math.Max(xf, 0) - xf*y + math.Log1p(math.Exp(-math.Abs(xf)))
	}
	n := float64(len(labels))
	out := tensor.Scalar(float32(total / n))
	o := newOp(out, nil, logits)
	if o.requiresGrad {
		o.back = func() {
			g := logits.ensureGrad().Data()
			seed := float64(o.grad.Data()[0])
			for i, x := range logits.T.Data() {
				s := 1 / (1 + math.Exp(-float64(x)))
				g[i] += float32(seed * (s - float64(labels[i])) / n)
			}
		}
	}
	return o
}
