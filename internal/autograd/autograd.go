// Package autograd implements tape-based reverse-mode automatic
// differentiation over internal/tensor, standing in for the slice of
// PyTorch autograd that TGAT training needs. Values form a DAG as
// operations execute; Backward topologically sorts the tape and
// accumulates gradients into every parameter leaf.
//
// The op set is exactly what the TGAT forward pass uses: linear layers
// (MatMulT + AddRowBias), concatenation, row slicing/gathering, ReLU,
// the cosine time encoding (CosAffine), the multi-head temporal
// attention kernel (Attend, with a hand-written backward), and the
// binary-cross-entropy-with-logits loss. Parameters are wrapped
// tensor.Tensors shared with the inference layers in internal/nn, so a
// trained model is immediately usable for inference without conversion.
package autograd

import (
	"fmt"

	"tgopt/internal/tensor"
)

// Value is a node in the autodiff tape: a tensor plus (if reachable from
// a parameter) a gradient buffer and a backward closure.
type Value struct {
	T            *tensor.Tensor
	grad         *tensor.Tensor
	requiresGrad bool
	back         func()
	prev         []*Value
}

// Param wraps t as a trainable leaf: gradients accumulate into Grad().
func Param(t *tensor.Tensor) *Value {
	return &Value{T: t, requiresGrad: true}
}

// Const wraps t as a non-trainable leaf; no gradient flows into it.
func Const(t *tensor.Tensor) *Value {
	return &Value{T: t}
}

// Grad returns the accumulated gradient, or nil if none has been
// produced (no Backward yet, or not reachable from the loss).
func (v *Value) Grad() *tensor.Tensor { return v.grad }

// ZeroGrad clears the accumulated gradient.
func (v *Value) ZeroGrad() { v.grad = nil }

// RequiresGrad reports whether gradients flow into this value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

func (v *Value) ensureGrad() *tensor.Tensor {
	if v.grad == nil {
		v.grad = tensor.New(v.T.Shape()...)
	}
	return v.grad
}

// newOp builds a non-leaf value; back is only retained if some input
// requires grad.
func newOp(t *tensor.Tensor, back func(), prev ...*Value) *Value {
	out := &Value{T: t, prev: prev}
	for _, p := range prev {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.back = back
	}
	return out
}

// Backward runs reverse-mode differentiation from v. For a scalar
// (1-element) value the seed gradient is 1; otherwise seed must be
// provided via BackwardWith.
func (v *Value) Backward() {
	if v.T.Len() != 1 {
		panic("autograd: Backward on non-scalar; use BackwardWith")
	}
	seed := tensor.Ones(v.T.Shape()...)
	v.BackwardWith(seed)
}

// BackwardWith seeds v's gradient with the given tensor (same element
// count) and propagates through the tape.
func (v *Value) BackwardWith(seed *tensor.Tensor) {
	if seed.Len() != v.T.Len() {
		panic(fmt.Sprintf("autograd: seed has %d elements, value has %d", seed.Len(), v.T.Len()))
	}
	if !v.requiresGrad {
		return
	}
	// Topological order via iterative DFS.
	var topo []*Value
	visited := map[*Value]bool{}
	type frame struct {
		v *Value
		i int
	}
	stack := []frame{{v, 0}}
	visited[v] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.v.prev) {
			child := f.v.prev[f.i]
			f.i++
			if !visited[child] && child.requiresGrad {
				visited[child] = true
				stack = append(stack, frame{child, 0})
			}
			continue
		}
		topo = append(topo, f.v)
		stack = stack[:len(stack)-1]
	}
	tensor.AddInPlace(v.ensureGrad(), seed)
	// topo is child-before-parent; walk in reverse (v first).
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.back != nil && n.grad != nil {
			n.back()
		}
	}
}

// MatMulT computes x·Wᵀ (the nn.Linear kernel) for x (n, in) and
// w (out, in), producing (n, out).
func MatMulT(x, w *Value) *Value {
	out := tensor.MatMulT(x.T, w.T)
	o := newOp(out, nil, x, w)
	if o.requiresGrad {
		o.back = func() {
			if x.requiresGrad {
				// dx = dy · W
				tensor.AddInPlace(x.ensureGrad(), tensor.MatMul(o.grad, w.T))
			}
			if w.requiresGrad {
				// dW = dyᵀ · x
				tensor.AddInPlace(w.ensureGrad(), tensor.MatMul(tensor.Transpose(o.grad), x.T))
			}
		}
	}
	return o
}

// AddRowBias adds bias b (len d) to every row of x (n, d).
func AddRowBias(x, b *Value) *Value {
	out := tensor.AddRowBias(x.T, b.T)
	o := newOp(out, nil, x, b)
	if o.requiresGrad {
		o.back = func() {
			if x.requiresGrad {
				tensor.AddInPlace(x.ensureGrad(), o.grad)
			}
			if b.requiresGrad {
				tensor.AddInPlace(b.ensureGrad(), tensor.SumRows(o.grad))
			}
		}
	}
	return o
}

// Linear is MatMulT followed by AddRowBias (bias may be nil).
func Linear(x, w, b *Value) *Value {
	y := MatMulT(x, w)
	if b == nil {
		return y
	}
	return AddRowBias(y, b)
}

// Add returns x + y elementwise.
func Add(x, y *Value) *Value {
	o := newOp(tensor.Add(x.T, y.T), nil, x, y)
	if o.requiresGrad {
		o.back = func() {
			if x.requiresGrad {
				tensor.AddInPlace(x.ensureGrad(), o.grad)
			}
			if y.requiresGrad {
				tensor.AddInPlace(y.ensureGrad(), o.grad)
			}
		}
	}
	return o
}

// Scale returns x * s.
func Scale(x *Value, s float32) *Value {
	o := newOp(tensor.Scale(x.T, s), nil, x)
	if o.requiresGrad {
		o.back = func() {
			tensor.AddInPlace(x.ensureGrad(), tensor.Scale(o.grad, s))
		}
	}
	return o
}

// ReLU applies max(0, x).
func ReLU(x *Value) *Value {
	o := newOp(tensor.ReLU(x.T), nil, x)
	if o.requiresGrad {
		o.back = func() {
			g := x.ensureGrad()
			xd, od, gd := x.T.Data(), o.grad.Data(), g.Data()
			for i := range xd {
				if xd[i] > 0 {
					gd[i] += od[i]
				}
			}
		}
	}
	return o
}

// ConcatCols concatenates rank-2 values along columns.
func ConcatCols(vs ...*Value) *Value {
	ts := make([]*tensor.Tensor, len(vs))
	for i, v := range vs {
		ts[i] = v.T
	}
	out := tensor.ConcatCols(ts...)
	o := newOp(out, nil, vs...)
	if o.requiresGrad {
		widths := make([]int, len(vs))
		for i, v := range vs {
			widths[i] = v.T.Dim(1)
		}
		o.back = func() {
			parts := tensor.SplitCols(o.grad, widths...)
			for i, v := range vs {
				if v.requiresGrad {
					tensor.AddInPlace(v.ensureGrad(), parts[i])
				}
			}
		}
	}
	return o
}

// SliceRows returns rows [lo, hi) of a rank-2 value as a new value.
func SliceRows(x *Value, lo, hi int) *Value {
	d := x.T.Dim(1)
	out := tensor.FromSlice(append([]float32(nil), x.T.Data()[lo*d:hi*d]...), hi-lo, d)
	o := newOp(out, nil, x)
	if o.requiresGrad {
		o.back = func() {
			g := x.ensureGrad()
			gd, od := g.Data(), o.grad.Data()
			for i := range od {
				gd[lo*d+i] += od[i]
			}
		}
	}
	return o
}

// GatherRows selects rows of x (rank 2) by index; gradients scatter-add
// back into the source (accumulating across duplicate indices).
func GatherRows(x *Value, idx []int32) *Value {
	d := x.T.Dim(1)
	out := tensor.New(len(idx), d)
	src, dst := x.T.Data(), out.Data()
	for i, r := range idx {
		copy(dst[i*d:(i+1)*d], src[int(r)*d:(int(r)+1)*d])
	}
	o := newOp(out, nil, x)
	if o.requiresGrad {
		o.back = func() {
			g := x.ensureGrad()
			gd, od := g.Data(), o.grad.Data()
			for i, r := range idx {
				row := gd[int(r)*d : (int(r)+1)*d]
				orow := od[i*d : (i+1)*d]
				for j := range row {
					row[j] += orow[j]
				}
			}
		}
	}
	return o
}

// Sum reduces to a scalar.
func Sum(x *Value) *Value {
	out := tensor.Scalar(float32(tensor.Sum(x.T)))
	o := newOp(out, nil, x)
	if o.requiresGrad {
		o.back = func() {
			g := x.ensureGrad()
			s := o.grad.Data()[0]
			for i := range g.Data() {
				g.Data()[i] += s
			}
		}
	}
	return o
}
