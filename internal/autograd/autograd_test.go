package autograd

import (
	"math"
	"testing"

	"tgopt/internal/tensor"
)

// checkGrads numerically verifies dLoss/dParam for every parameter via
// central finite differences. loss must rebuild the whole forward pass
// from the current parameter tensors on each call.
func checkGrads(t *testing.T, params []*Value, loss func() *Value, eps, tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	l := loss()
	l.Backward()
	for pi, p := range params {
		g := p.Grad()
		if g == nil {
			t.Fatalf("param %d has no gradient", pi)
		}
		data := p.T.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + float32(eps)
			lp := float64(loss().T.Data()[0])
			data[i] = orig - float32(eps)
			lm := float64(loss().T.Data()[0])
			data[i] = orig
			fd := (lp - lm) / (2 * eps)
			ad := float64(g.Data()[i])
			if math.Abs(fd-ad) > tol*(1+math.Abs(fd)) {
				t.Fatalf("param %d elem %d: autograd %g vs finite-diff %g", pi, i, ad, fd)
			}
		}
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	v := Param(tensor.Ones(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("non-scalar Backward did not panic")
		}
	}()
	v.Backward()
}

func TestConstReceivesNoGrad(t *testing.T) {
	c := Const(tensor.Ones(2, 2))
	p := Param(tensor.Ones(2, 2))
	out := Sum(Add(c, p))
	out.Backward()
	if c.Grad() != nil {
		t.Fatal("const accumulated a gradient")
	}
	if p.Grad() == nil {
		t.Fatal("param missing gradient")
	}
	if c.RequiresGrad() || !p.RequiresGrad() {
		t.Fatal("RequiresGrad flags wrong")
	}
}

func TestBackwardOnPureConstGraphIsNoop(t *testing.T) {
	c := Const(tensor.Ones(1))
	out := Sum(c)
	out.Backward() // must not panic
	if out.Grad() != nil {
		t.Fatal("const graph accumulated gradients")
	}
}

func TestSumGradient(t *testing.T) {
	p := Param(tensor.FromSlice([]float32{1, 2, 3}, 3))
	Sum(p).Backward()
	for i := 0; i < 3; i++ {
		if p.Grad().Data()[i] != 1 {
			t.Fatalf("dSum/dp[%d] = %v", i, p.Grad().Data()[i])
		}
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	p := Param(tensor.Ones(2))
	Sum(p).Backward()
	Sum(p).Backward()
	if p.Grad().Data()[0] != 2 {
		t.Fatalf("gradient did not accumulate: %v", p.Grad().Data()[0])
	}
	p.ZeroGrad()
	if p.Grad() != nil {
		t.Fatal("ZeroGrad did not clear")
	}
}

func TestMatMulTGradient(t *testing.T) {
	r := tensor.NewRNG(1)
	x := Param(tensor.Randn(r, 3, 4))
	w := Param(tensor.Randn(r, 2, 4))
	checkGrads(t, []*Value{x, w}, func() *Value {
		return Sum(ReLU(MatMulT(x, w)))
	}, 1e-2, 2e-2)
}

func TestAddRowBiasGradient(t *testing.T) {
	r := tensor.NewRNG(2)
	x := Param(tensor.Randn(r, 3, 4))
	b := Param(tensor.Randn(r, 4))
	// Project through a fixed matrix so the gradient is nontrivial while
	// staying smooth (ReLU kinks break finite differences).
	proj := Const(tensor.Randn(r, 2, 4))
	checkGrads(t, []*Value{x, b}, func() *Value {
		return Sum(MatMulT(AddRowBias(x, b), proj))
	}, 1e-2, 2e-2)
}

func TestLinearNilBias(t *testing.T) {
	r := tensor.NewRNG(3)
	x := Param(tensor.Randn(r, 2, 3))
	w := Param(tensor.Randn(r, 2, 3))
	out := Linear(x, w, nil)
	if out.T.Dim(1) != 2 {
		t.Fatalf("Linear shape %v", out.T.Shape())
	}
}

func TestConcatSliceGradients(t *testing.T) {
	r := tensor.NewRNG(4)
	a := Param(tensor.Randn(r, 3, 2))
	b := Param(tensor.Randn(r, 3, 3))
	checkGrads(t, []*Value{a, b}, func() *Value {
		cat := ConcatCols(a, b)
		return Sum(ReLU(SliceRows(cat, 1, 3)))
	}, 1e-2, 2e-2)
}

func TestGatherRowsGradientWithDuplicates(t *testing.T) {
	r := tensor.NewRNG(5)
	x := Param(tensor.Randn(r, 4, 3))
	idx := []int32{2, 0, 2, 2}
	proj := Const(tensor.Randn(r, 2, 3))
	checkGrads(t, []*Value{x}, func() *Value {
		return Sum(MatMulT(GatherRows(x, idx), proj))
	}, 1e-2, 2e-2)
}

func TestScaleAndAddGradient(t *testing.T) {
	r := tensor.NewRNG(6)
	x := Param(tensor.Randn(r, 5))
	y := Param(tensor.Randn(r, 5))
	checkGrads(t, []*Value{x, y}, func() *Value {
		return Sum(Add(Scale(x, 3), y))
	}, 1e-2, 2e-2)
}

func TestCosAffineForwardMatchesEncoder(t *testing.T) {
	r := tensor.NewRNG(7)
	omega := Param(tensor.Randn(r, 6))
	phi := Param(tensor.Randn(r, 6))
	dts := []float64{0, 1.5, 100}
	out := CosAffine(omega, phi, dts)
	for i, dt := range dts {
		for j := 0; j < 6; j++ {
			want := math.Cos(dt*float64(omega.T.At(j)) + float64(phi.T.At(j)))
			if math.Abs(float64(out.T.At(i, j))-want) > 1e-6 {
				t.Fatalf("CosAffine(%v)[%d] = %v, want %v", dt, j, out.T.At(i, j), want)
			}
		}
	}
}

func TestCosAffineGradient(t *testing.T) {
	r := tensor.NewRNG(8)
	omega := Param(tensor.Randn(r, 4))
	phi := Param(tensor.Randn(r, 4))
	dts := []float64{0.3, 1.2, 2.5}
	checkGrads(t, []*Value{omega, phi}, func() *Value {
		return Sum(CosAffine(omega, phi, dts))
	}, 1e-3, 2e-2)
}

func TestAttendForwardMatchesManualSoftmax(t *testing.T) {
	r := tensor.NewRNG(9)
	n, slots, e, heads := 2, 3, 4, 2
	q := Param(tensor.Randn(r, n, e))
	k := Param(tensor.Randn(r, n*slots, e))
	v := Param(tensor.Randn(r, n*slots, e))
	mask := []bool{true, true, false, true, true, true}
	out := Attend(q, k, v, slots, mask, heads)
	hd := e / heads
	scale := 1 / math.Sqrt(float64(hd))
	for i := 0; i < n; i++ {
		for h := 0; h < heads; h++ {
			var exps [3]float64
			var sum float64
			for j := 0; j < slots; j++ {
				if !mask[i*slots+j] {
					continue
				}
				var s float64
				for d := 0; d < hd; d++ {
					s += float64(q.T.At(i, h*hd+d)) * float64(k.T.At(i*slots+j, h*hd+d))
				}
				exps[j] = math.Exp(s * scale)
				sum += exps[j]
			}
			for d := 0; d < hd; d++ {
				var want float64
				for j := 0; j < slots; j++ {
					if !mask[i*slots+j] {
						continue
					}
					want += exps[j] / sum * float64(v.T.At(i*slots+j, h*hd+d))
				}
				if math.Abs(float64(out.T.At(i, h*hd+d))-want) > 1e-5 {
					t.Fatalf("Attend(%d,%d,%d) = %v, want %v", i, h, d, out.T.At(i, h*hd+d), want)
				}
			}
		}
	}
}

func TestAttendGradient(t *testing.T) {
	r := tensor.NewRNG(10)
	n, slots, e, heads := 2, 3, 4, 2
	q := Param(tensor.Randn(r, n, e))
	k := Param(tensor.Randn(r, n*slots, e))
	v := Param(tensor.Randn(r, n*slots, e))
	mask := []bool{true, false, true, true, true, true}
	checkGrads(t, []*Value{q, k, v}, func() *Value {
		return Sum(ReLU(Attend(q, k, v, slots, mask, heads)))
	}, 1e-3, 3e-2)
}

func TestAttendFullyMaskedTarget(t *testing.T) {
	r := tensor.NewRNG(11)
	q := Param(tensor.Randn(r, 1, 4))
	k := Param(tensor.Randn(r, 2, 4))
	v := Param(tensor.Randn(r, 2, 4))
	out := Attend(q, k, v, 2, []bool{false, false}, 2)
	for _, x := range out.T.Data() {
		if x != 0 {
			t.Fatal("fully masked target produced nonzero context")
		}
	}
	Sum(out).Backward()
	// Gradients must exist (zero) without NaN.
	if q.Grad().HasNaN() || k.Grad().HasNaN() || v.Grad().HasNaN() {
		t.Fatal("masked attention backward produced NaN")
	}
}

func TestBCEWithLogitsGradient(t *testing.T) {
	r := tensor.NewRNG(12)
	x := Param(tensor.Randn(r, 6))
	labels := []float32{1, 0, 1, 0, 1, 1}
	checkGrads(t, []*Value{x}, func() *Value {
		return BCEWithLogits(x, labels)
	}, 1e-3, 1e-2)
}

func TestEndToEndNetworkGradient(t *testing.T) {
	// A miniature of the real training graph: gather → linear → ReLU →
	// concat → linear → BCE.
	r := tensor.NewRNG(13)
	table := Param(tensor.Randn(r, 5, 3))
	w1 := Param(tensor.Randn(r, 4, 3))
	b1 := Param(tensor.Randn(r, 4))
	w2 := Param(tensor.Randn(r, 1, 8))
	b2 := Param(tensor.Randn(r, 1))
	idx := []int32{0, 2, 2, 4}
	labels := []float32{1, 0, 1, 0}
	loss := func() *Value {
		x := GatherRows(table, idx)
		h := ReLU(Linear(x, w1, b1))
		h2 := ConcatCols(h, h)
		logits := Linear(h2, w2, b2)
		return BCEWithLogits(logits, labels)
	}
	checkGrads(t, []*Value{table, w1, b1, w2, b2}, loss, 1e-3, 2e-2)
}

func TestTrainingReducesLoss(t *testing.T) {
	// Tiny logistic regression trained with raw SGD on the tape: loss
	// must fall monotonically-ish and substantially.
	r := tensor.NewRNG(14)
	n := 64
	x := tensor.Randn(r, n, 4)
	labels := make([]float32, n)
	for i := 0; i < n; i++ {
		// Separable rule: label = x0 + x1 > 0.
		if x.At(i, 0)+x.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	w := Param(tensor.Randn(r, 1, 4))
	b := Param(tensor.New(1))
	var first, last float64
	for step := 0; step < 200; step++ {
		w.ZeroGrad()
		b.ZeroGrad()
		loss := BCEWithLogits(Linear(Const(x), w, b), labels)
		if step == 0 {
			first = float64(loss.T.Data()[0])
		}
		last = float64(loss.T.Data()[0])
		loss.Backward()
		for i := range w.T.Data() {
			w.T.Data()[i] -= 0.5 * w.Grad().Data()[i]
		}
		b.T.Data()[0] -= 0.5 * b.Grad().Data()[0]
	}
	if last > first/3 {
		t.Fatalf("loss did not drop: first=%v last=%v", first, last)
	}
}

func TestDropoutForwardStatistics(t *testing.T) {
	r := tensor.NewRNG(20)
	x := Param(tensor.Ones(1, 10000))
	p := 0.3
	out := Dropout(x, p, r)
	zeros, kept := 0, 0
	var sum float64
	for _, v := range out.T.Data() {
		if v == 0 {
			zeros++
		} else {
			kept++
			sum += float64(v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < p-0.03 || frac > p+0.03 {
		t.Fatalf("zeroed fraction %v, want ~%v", frac, p)
	}
	// Inverted scaling keeps the expectation: survivors are 1/(1-p).
	want := 1 / (1 - p)
	if kept > 0 {
		mean := sum / float64(kept)
		if mean < want-1e-3 || mean > want+1e-3 {
			t.Fatalf("survivor value %v, want %v", mean, want)
		}
	}
	// Overall expectation ≈ 1.
	if total := tensor.Mean(out.T); total < 0.95 || total > 1.05 {
		t.Fatalf("post-dropout mean %v, want ~1", total)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	r := tensor.NewRNG(21)
	x := Param(tensor.Ones(1, 200))
	out := Dropout(x, 0.5, r)
	Sum(out).Backward()
	for i, v := range out.T.Data() {
		g := x.Grad().Data()[i]
		if v == 0 && g != 0 {
			t.Fatalf("dropped element %d received gradient %v", i, g)
		}
		if v != 0 && g != 2 { // 1/(1-0.5)
			t.Fatalf("kept element %d gradient %v, want 2", i, g)
		}
	}
}

func TestDropoutDisabledPassThrough(t *testing.T) {
	r := tensor.NewRNG(22)
	x := Param(tensor.Ones(2, 2))
	if Dropout(x, 0, r) != x || Dropout(x, 1, r) != x || Dropout(x, -0.5, r) != x {
		t.Fatal("out-of-range p did not pass through")
	}
}
