package graph

import (
	"fmt"
	"testing"
)

// buildStream appends n chronological edges and returns the graph plus
// the assigned edge ids. The node count scales with n so the mean
// degree stays constant across sizes — the benchmarks then isolate the
// stream-size-dependent cost (the log E searches) from the O(degree)
// adjacency rebuild.
func buildStream(b *testing.B, n int) (*Dynamic, []int32) {
	b.Helper()
	nodes := n / 100
	d := NewDynamic(nodes)
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		idx, err := d.Append(Edge{Src: int32(1 + i%(nodes-1)), Dst: int32(2 + i%(nodes-2)), Time: float64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = idx
	}
	return d, ids
}

// BenchmarkDeleteEdge measures removal cost at different stream sizes:
// the id index plus binary search keep it O(degree + log E), so the
// per-op time should stay nearly flat as E grows 10×.
func BenchmarkDeleteEdge(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("E=%d", size), func(b *testing.B) {
			d, ids := buildStream(b, size)
			nodes := size / 100
			// Delete and re-append in pairs so the stream size stays
			// steady across iterations.
			clock := float64(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[i%len(ids)]
				if d.DeleteEdge(id) {
					clock++
					nid, err := d.Append(Edge{Src: int32(1 + i%(nodes-1)), Dst: int32(2 + i%(nodes-2)), Time: clock})
					if err != nil {
						b.Fatal(err)
					}
					ids[i%len(ids)] = nid
				}
			}
		})
	}
}

// BenchmarkInsertLate measures sorted insertion of an edge trailing the
// stream clock by half the lateness window.
func BenchmarkInsertLate(b *testing.B) {
	for _, window := range []float64{100, 1000} {
		b.Run(fmt.Sprintf("window=%g", window), func(b *testing.B) {
			d, _ := buildStream(b, 50_000)
			nodes := 50_000 / 100
			d.SetLateness(window)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm := d.MaxTime() - window/2
				if _, err := d.InsertLate(Edge{Src: int32(1 + i%(nodes-1)), Dst: int32(2 + i%(nodes-2)), Time: tm}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
