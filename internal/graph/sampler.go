package graph

import (
	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// Strategy selects how temporal neighbors are sampled.
type Strategy int

const (
	// MostRecent keeps the k most recent interactions before the target
	// time. This is the strategy the paper focuses on (§2 "Temporal
	// Sampling"): it preserves the relative order of neighbors as the
	// graph evolves, which is what makes embedding memoization sound.
	MostRecent Strategy = iota
	// Uniform samples k interactions uniformly at random from the
	// temporal prefix. Provided for the sampling-strategy ablation; the
	// TGOpt cache must not be combined with it (re-sampling the same
	// target would pick a different subgraph).
	Uniform
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case MostRecent:
		return "most-recent"
	case Uniform:
		return "uniform"
	default:
		return "unknown"
	}
}

// adjacency is the minimal temporal-adjacency view samplers need: the
// time-sorted prefix N(v, t). Graph (immutable T-CSR) and Dynamic
// (streaming) both implement it.
type adjacency interface {
	window(v int32, t float64) (nghs, eidxs []int32, times []float64)
}

// Batch holds a flattened sampled neighborhood for n target
// node–timestamp pairs with k neighbor slots each. Slot j of target i is
// at position i*K+j. Unfilled slots are padded with node 0, edge 0,
// time = target time (so Δt is 0) and Valid=false.
type Batch struct {
	K     int
	Nghs  []int32   // len n*K, neighbor node ids (0 = padding)
	EIdxs []int32   // len n*K, 1-based edge ids (0 = padding)
	Times []float64 // len n*K, edge timestamps
	Valid []bool    // len n*K, slot validity mask
}

// NumTargets returns the number of target pairs in the batch.
func (b *Batch) NumTargets() int {
	if b.K == 0 {
		return 0
	}
	return len(b.Nghs) / b.K
}

// Sampler draws bounded temporal neighborhoods from a graph — the
// NghLookup operation of the paper's Algorithm 1. It is safe for
// concurrent use: sampling state is per-call.
type Sampler struct {
	adj      adjacency
	g        *Graph // nil when sampling a Dynamic
	k        int
	strategy Strategy
	seed     uint64
}

// NewSampler creates a sampler over an immutable graph drawing up to k
// neighbors per target using the given strategy. seed only matters for
// Uniform.
func NewSampler(g *Graph, k int, strategy Strategy, seed uint64) *Sampler {
	if k < 1 {
		panic("graph: sampler k must be >= 1")
	}
	return &Sampler{adj: g, g: g, k: k, strategy: strategy, seed: seed}
}

// NewDynamicSampler creates a sampler over a streaming graph. Appends
// made between (or during) Sample calls are observed by subsequent
// sampling but — thanks to the strict t_j < t constraint — never change
// the neighborhood of an already-sampled target.
func NewDynamicSampler(d *Dynamic, k int, strategy Strategy, seed uint64) *Sampler {
	if k < 1 {
		panic("graph: sampler k must be >= 1")
	}
	return &Sampler{adj: d, k: k, strategy: strategy, seed: seed}
}

// K returns the per-target neighbor budget.
func (s *Sampler) K() int { return s.k }

// Strategy returns the sampling strategy.
func (s *Sampler) Strategy() Strategy { return s.strategy }

// Graph returns the underlying immutable graph, or nil when the sampler
// was built over a Dynamic.
func (s *Sampler) Graph() *Graph { return s.g }

// Dynamic returns the underlying streaming graph, or nil when the
// sampler was built over an immutable Graph.
func (s *Sampler) Dynamic() *Dynamic {
	d, _ := s.adj.(*Dynamic)
	return d
}

// Sample draws the temporal neighborhoods of the given node–timestamp
// targets. The per-target work is independent and is parallelized
// across the worker pool, mirroring the paper's C++ parallel sampler.
func (s *Sampler) Sample(nodes []int32, ts []float64) *Batch {
	n := len(nodes)
	b := &Batch{
		K:     s.k,
		Nghs:  make([]int32, n*s.k),
		EIdxs: make([]int32, n*s.k),
		Times: make([]float64, n*s.k),
		Valid: make([]bool, n*s.k),
	}
	s.SampleTo(b, nodes, ts)
	return b
}

// SampleTo is Sample writing into b, whose slices must already have
// length n*k (typically drawn from a tensor.Arena by the hot inference
// path). Every slot of every slice is written — callers may pass dirty
// reused buffers.
func (s *Sampler) SampleTo(b *Batch, nodes []int32, ts []float64) {
	if len(nodes) != len(ts) {
		panic("graph: Sample nodes/ts length mismatch")
	}
	n := len(nodes)
	if len(b.Nghs) != n*s.k || len(b.EIdxs) != n*s.k || len(b.Times) != n*s.k || len(b.Valid) != n*s.k {
		panic("graph: SampleTo batch buffers sized wrong")
	}
	b.K = s.k
	if n >= parallel.MinParallelWork && parallel.Degree() > 1 {
		// Capture a copy of the header (the slices still share backing
		// arrays) so the caller's *Batch does not leak into the escaping
		// closure — hot callers keep the Batch on their stack.
		bb := *b
		parallel.ForChunked(n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.sampleOne(nodes[i], ts[i], &bb, i)
			}
		})
		return
	}
	for i := 0; i < n; i++ {
		s.sampleOne(nodes[i], ts[i], b, i)
	}
}

func (s *Sampler) sampleOne(v int32, t float64, b *Batch, i int) {
	base := i * s.k
	// Write every slot explicitly — the buffers may be recycled arena
	// scratch. Padding slots carry the target time so Δt = t - time = 0
	// for them, matching the baseline TGAT implementation's zero-padded
	// deltas.
	for j := 0; j < s.k; j++ {
		b.Nghs[base+j] = 0
		b.EIdxs[base+j] = 0
		b.Times[base+j] = t
		b.Valid[base+j] = false
	}
	if v == 0 {
		return
	}
	nghs, eidxs, times := s.adj.window(v, t)
	count := len(nghs)
	if count == 0 {
		return
	}
	take := count
	if take > s.k {
		take = s.k
	}
	switch s.strategy {
	case MostRecent:
		// Keep chronological order within the slot window, taking the
		// most recent `take` interactions.
		start := count - take
		for j := 0; j < take; j++ {
			p := start + j
			b.Nghs[base+j] = nghs[p]
			b.EIdxs[base+j] = eidxs[p]
			b.Times[base+j] = times[p]
			b.Valid[base+j] = true
		}
	case Uniform:
		if count <= s.k {
			for j := 0; j < take; j++ {
				b.Nghs[base+j] = nghs[j]
				b.EIdxs[base+j] = eidxs[j]
				b.Times[base+j] = times[j]
				b.Valid[base+j] = true
			}
			return
		}
		// Deterministic per-(node,time,seed) stream so repeated calls in
		// one experiment are reproducible, while still differing across
		// targets.
		r := tensor.NewRNG(s.seed ^ uint64(v)<<32 ^ uint64(int64(t)))
		for j := 0; j < take; j++ {
			p := r.Intn(count)
			b.Nghs[base+j] = nghs[p]
			b.EIdxs[base+j] = eidxs[p]
			b.Times[base+j] = times[p]
			b.Valid[base+j] = true
		}
	}
}
