package graph

import (
	"errors"
	"math"
	"sort"
	"sync"
	"testing"

	"tgopt/internal/tensor"
)

func TestDynamicInsertLateSortedOrder(t *testing.T) {
	d := NewDynamic(5)
	d.SetLateness(100)
	for _, tm := range []float64{10, 20, 30, 40} {
		if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: tm}); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := d.InsertLate(Edge{Src: 1, Dst: 3, Time: 25})
	if err != nil {
		t.Fatal(err)
	}
	if idx == 0 {
		t.Fatal("late insert assigned no edge id")
	}
	edges := d.Edges()
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time }) {
		t.Fatalf("edge stream not time-sorted after late insert: %+v", edges)
	}
	if edges[2].Time != 25 || edges[2].Dst != 3 {
		t.Fatalf("late edge not at its sorted position: %+v", edges)
	}
	// Both endpoints see the edge in their temporal windows.
	if d.TemporalDegree(1, 26) != 3 || d.TemporalDegree(3, 26) != 1 {
		t.Fatalf("adjacency degrees wrong: deg(1)=%d deg(3)=%d",
			d.TemporalDegree(1, 26), d.TemporalDegree(3, 26))
	}
	// But not before its timestamp.
	if d.TemporalDegree(3, 25) != 0 {
		t.Fatal("late edge visible before its own timestamp")
	}
	if d.LateAccepted() != 1 || d.LateDropped() != 0 {
		t.Fatalf("counters: accepted=%d dropped=%d", d.LateAccepted(), d.LateDropped())
	}
	if d.Mutations() != 1 {
		t.Fatalf("Mutations = %d after one late insert", d.Mutations())
	}
}

func TestDynamicInsertLateAtOrPastClockAppends(t *testing.T) {
	d := NewDynamic(3)
	d.SetLateness(10)
	d.Append(Edge{Src: 1, Dst: 2, Time: 10})
	// At the clock: a plain append, no history rewrite.
	if _, err := d.InsertLate(Edge{Src: 2, Dst: 3, Time: 10}); err != nil {
		t.Fatal(err)
	}
	// Past the clock: also an append, and the clock advances.
	if _, err := d.InsertLate(Edge{Src: 1, Dst: 3, Time: 15}); err != nil {
		t.Fatal(err)
	}
	if d.Mutations() != 0 || d.LateAccepted() != 0 {
		t.Fatalf("in-order inserts counted as rewrites: mutations=%d late=%d",
			d.Mutations(), d.LateAccepted())
	}
	if d.MaxTime() != 15 {
		t.Fatalf("MaxTime = %v", d.MaxTime())
	}
}

func TestDynamicWatermarkDrop(t *testing.T) {
	d := NewDynamic(3)
	d.SetLateness(5)
	d.Append(Edge{Src: 1, Dst: 2, Time: 100})
	if w := d.Watermark(); w != 95 {
		t.Fatalf("Watermark = %v, want 95", w)
	}
	if _, err := d.InsertLate(Edge{Src: 1, Dst: 3, Time: 90}); !errors.Is(err, ErrStale) {
		t.Fatalf("below-watermark insert: err = %v, want ErrStale", err)
	}
	if d.NumEdges() != 1 {
		t.Fatal("dropped edge reached the graph")
	}
	if d.LateDropped() != 1 {
		t.Fatalf("LateDropped = %d", d.LateDropped())
	}
	if d.Mutations() != 0 {
		t.Fatal("drop advanced the mutation epoch")
	}
	// Exactly at the watermark is still inside the window.
	if _, err := d.InsertLate(Edge{Src: 1, Dst: 3, Time: 95}); err != nil {
		t.Fatalf("at-watermark insert rejected: %v", err)
	}
}

func TestDynamicIngestDispatch(t *testing.T) {
	d := NewDynamic(4)
	d.SetLateness(50)
	res, _, err := d.Ingest(Edge{Src: 1, Dst: 2, Time: 100})
	if err != nil || res != IngestAppended {
		t.Fatalf("in-order: %v %v", res, err)
	}
	res, idx, err := d.Ingest(Edge{Src: 2, Dst: 3, Time: 80})
	if err != nil || res != IngestLate || idx == 0 {
		t.Fatalf("in-window: %v idx=%d err=%v", res, idx, err)
	}
	// Below the watermark: dropped is an outcome, not an error.
	res, _, err = d.Ingest(Edge{Src: 3, Dst: 4, Time: 10})
	if err != nil || res != IngestDropped {
		t.Fatalf("below-watermark: %v %v", res, err)
	}
	if d.NumEdges() != 2 || d.LateDropped() != 1 {
		t.Fatalf("edges=%d dropped=%d", d.NumEdges(), d.LateDropped())
	}
	// Invalid edges error without touching the graph or counters.
	if _, _, err := d.Ingest(Edge{Src: 0, Dst: 1, Time: 100}); err == nil {
		t.Fatal("invalid endpoint accepted")
	}
	if d.NumEdges() != 2 || d.LateDropped() != 1 {
		t.Fatal("invalid edge perturbed state")
	}
	for r, want := range map[IngestResult]string{IngestAppended: "appended", IngestLate: "late", IngestDropped: "dropped"} {
		if r.String() != want {
			t.Fatalf("IngestResult(%d).String() = %q", r, r.String())
		}
	}
}

func TestDynamicShuffledIngestMatchesSorted(t *testing.T) {
	// Window-shuffled ingestion must converge to the same graph as sorted
	// ingestion: same edge stream, same adjacency, same sampler output.
	r := tensor.NewRNG(7)
	n := 12
	const lateness = 40.0
	var edges []Edge
	clock := 0.0
	for i := 0; i < 250; i++ {
		clock += 1 + r.Float64()*3
		src := int32(1 + r.Intn(n))
		dst := int32(1 + r.Intn(n))
		if src == dst {
			continue
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(edges) + 1)})
	}
	// Release order: each edge delayed by up to 80% of the window, then
	// sorted by release time — arrival is shuffled but always in-window.
	type rel struct {
		e       Edge
		release float64
	}
	rels := make([]rel, len(edges))
	for i, e := range edges {
		rels[i] = rel{e, e.Time + r.Float64()*lateness*0.8}
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].release < rels[j].release })

	sorted := NewDynamic(n)
	for _, e := range edges {
		if _, err := sorted.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	shuffled := NewDynamic(n)
	shuffled.SetLateness(lateness)
	for _, x := range rels {
		if res, _, err := shuffled.Ingest(x.e); err != nil || res == IngestDropped {
			t.Fatalf("in-window edge %+v: res=%v err=%v", x.e, res, err)
		}
	}

	se, de := sorted.Edges(), shuffled.Edges()
	if len(se) != len(de) {
		t.Fatalf("edge counts differ: %d vs %d", len(se), len(de))
	}
	for i := range se {
		if se[i] != de[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, se[i], de[i])
		}
	}
	ss := NewDynamicSampler(sorted, 5, MostRecent, 0)
	ds := NewDynamicSampler(shuffled, 5, MostRecent, 0)
	targets := []int32{1, 4, 7, 11}
	ts := []float64{clock / 4, clock / 2, clock, clock + 5}
	bs, bd := ss.Sample(targets, ts), ds.Sample(targets, ts)
	for i := range bs.Nghs {
		if bs.Nghs[i] != bd.Nghs[i] || bs.Times[i] != bd.Times[i] ||
			bs.EIdxs[i] != bd.EIdxs[i] || bs.Valid[i] != bd.Valid[i] {
			t.Fatalf("sampler slot %d differs after shuffled ingest", i)
		}
	}
}

func TestDynamicAppendRejectsNonFiniteTime(t *testing.T) {
	d := NewDynamic(3)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: bad}); err == nil {
			t.Fatalf("Append accepted time %v", bad)
		}
		if _, err := d.InsertLate(Edge{Src: 1, Dst: 2, Time: bad}); err == nil {
			t.Fatalf("InsertLate accepted time %v", bad)
		}
		if _, _, err := d.Ingest(Edge{Src: 1, Dst: 2, Time: bad}); err == nil {
			t.Fatalf("Ingest accepted time %v", bad)
		}
	}
	if d.NumEdges() != 0 || d.MaxTime() != 0 {
		t.Fatal("non-finite time perturbed the stream clock")
	}
	// A NaN must not have poisoned later appends.
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicRejectsDuplicateEdgeID(t *testing.T) {
	d := NewDynamic(3)
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 1, Idx: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(Edge{Src: 2, Dst: 3, Time: 2, Idx: 7}); err == nil {
		t.Fatal("duplicate edge id accepted")
	}
	// Auto-assignment continues above explicit ids.
	idx, err := d.Append(Edge{Src: 1, Dst: 3, Time: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx <= 7 {
		t.Fatalf("auto id %d collides with explicit id space", idx)
	}
}

func TestDynamicDeleteEdge(t *testing.T) {
	d := NewDynamic(4)
	ids := make([]int32, 0, 4)
	for i, tm := range []float64{10, 20, 30, 40} {
		idx, err := d.Append(Edge{Src: int32(1 + i%3), Dst: int32(2 + i%3), Time: tm})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, idx)
	}
	if !d.DeleteEdge(ids[1]) {
		t.Fatal("delete of live edge reported false")
	}
	if d.DeleteEdge(ids[1]) {
		t.Fatal("double delete reported true")
	}
	if d.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d after delete", d.NumEdges())
	}
	for _, e := range d.Edges() {
		if e.Idx == ids[1] {
			t.Fatal("deleted edge still in the stream")
		}
	}
	if d.Mutations() != 1 {
		t.Fatalf("Mutations = %d after one delete", d.Mutations())
	}
	// The freed id is never reused by auto-assignment.
	idx, err := d.Append(Edge{Src: 1, Dst: 2, Time: 50})
	if err != nil {
		t.Fatal(err)
	}
	if idx == ids[1] {
		t.Fatalf("auto-assignment reused deleted id %d", idx)
	}
	// Deleting an equal-time run member removes exactly the right edge.
	d2 := NewDynamic(3)
	a, _ := d2.Append(Edge{Src: 1, Dst: 2, Time: 5})
	b, _ := d2.Append(Edge{Src: 2, Dst: 3, Time: 5})
	c, _ := d2.Append(Edge{Src: 1, Dst: 3, Time: 5})
	if !d2.DeleteEdge(b) {
		t.Fatal("equal-time delete failed")
	}
	rest := d2.Edges()
	if len(rest) != 2 || rest[0].Idx != a || rest[1].Idx != c {
		t.Fatalf("equal-time run corrupted: %+v", rest)
	}
}

func TestDynamicCountBetween(t *testing.T) {
	d := NewDynamic(3)
	for _, tm := range []float64{10, 20, 30, 40, 50} {
		d.Append(Edge{Src: 1, Dst: 2, Time: tm})
	}
	// Bounds are strict on both sides.
	for _, tc := range []struct {
		lo, hi float64
		want   int
	}{
		{10, 50, 3},  // 20,30,40
		{10, 40, 2},  // 20,30
		{25, 45, 2},  // 30,40
		{50, 60, 0},  // nothing after 50
		{0, 10, 0},   // 10 excluded by strict hi
		{0, 11, 1},   // 10 included
		{45, 20, 0},  // inverted range
		{-5, 100, 5}, // everything
	} {
		if got := d.CountBetween(1, tc.lo, tc.hi); got != tc.want {
			t.Fatalf("CountBetween(1, %v, %v) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	if d.CountBetween(99, 0, 100) != 0 {
		t.Fatal("out-of-range node should count zero")
	}
}

func TestDynamicConcurrentMutationsAndSampling(t *testing.T) {
	// Race-detector workout: appends, late inserts, deletions, and
	// sampling all hit one Dynamic concurrently. Correctness here is
	// "no race, no panic, temporal constraint holds"; equivalence under
	// concurrency is pinned end-to-end in internal/serve.
	d := NewDynamic(16)
	d.SetLateness(200)
	for i := 0; i < 100; i++ {
		d.Append(Edge{Src: int32(1 + i%15), Dst: int32(2 + i%14), Time: float64(i * 10)})
	}
	s := NewDynamicSampler(d, 5, MostRecent, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // appender drives the clock forward
		defer wg.Done()
		for i := 100; i < 1200; i++ {
			if _, err := d.Append(Edge{Src: int32(1 + i%15), Dst: int32(2 + i%14), Time: float64(i * 10)}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Add(1)
	go func() { // late inserter trails the clock inside the window
		defer wg.Done()
		r := tensor.NewRNG(3)
		for {
			select {
			case <-stop:
				return
			default:
			}
			hi := d.MaxTime()
			tm := hi - r.Float64()*150
			if tm < 0 {
				continue
			}
			if _, err := d.InsertLate(Edge{Src: int32(1 + r.Intn(15)), Dst: int32(1 + r.Intn(15)), Time: tm}); err != nil && !errors.Is(err, ErrStale) {
				t.Errorf("InsertLate: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // deleter removes arbitrary live ids
		defer wg.Done()
		r := tensor.NewRNG(4)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.DeleteEdge(int32(1 + r.Intn(1200)))
		}
	}()
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		ts := []float64{300, 700, 999}
		b := s.Sample([]int32{1, 7, 15}, ts)
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				p := i*5 + j
				if b.Valid[p] && b.Times[p] >= ts[i] {
					t.Fatal("temporal constraint violated under concurrent mutations")
				}
			}
		}
	}
	wg.Wait()
	// The stream must still be sorted and consistent with the id index.
	edges := d.Edges()
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time }) {
		t.Fatal("edge stream unsorted after concurrent mutations")
	}
	seen := make(map[int32]bool, len(edges))
	for _, e := range edges {
		if seen[e.Idx] {
			t.Fatalf("duplicate edge id %d in stream", e.Idx)
		}
		seen[e.Idx] = true
	}
}

func TestDynamicAppendsSequence(t *testing.T) {
	// The append sequence is the cache layer's only reliable signal that
	// adjacency changed via the chronological path: an append at exactly
	// the stream clock leaves MaxTime unchanged (and never bumps the
	// mutation epoch), so both must be distinguishable through Appends.
	d := NewDynamic(4)
	d.SetLateness(100)
	if d.Appends() != 0 {
		t.Fatalf("fresh graph Appends = %d", d.Appends())
	}
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 10}); err != nil {
		t.Fatal(err)
	}
	// Equal-time append: MaxTime stays put, the sequence must not.
	if _, err := d.Append(Edge{Src: 2, Dst: 3, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if d.MaxTime() != 10 {
		t.Fatalf("MaxTime = %v, want 10", d.MaxTime())
	}
	if d.Appends() != 2 {
		t.Fatalf("Appends = %d, want 2", d.Appends())
	}
	muts := d.Mutations()
	// A genuinely late insert is a history rewrite, not an append.
	if _, err := d.InsertLate(Edge{Src: 1, Dst: 3, Time: 5}); err != nil {
		t.Fatal(err)
	}
	if d.Appends() != 2 {
		t.Fatalf("late insert bumped Appends to %d", d.Appends())
	}
	if d.Mutations() == muts {
		t.Fatal("late insert did not bump Mutations")
	}
	// InsertLate at/past the clock degrades to an append and counts.
	if _, err := d.InsertLate(Edge{Src: 1, Dst: 4, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if d.Appends() != 3 {
		t.Fatalf("degraded-to-append insert left Appends at %d, want 3", d.Appends())
	}
}
