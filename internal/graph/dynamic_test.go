package graph

import (
	"sync"
	"testing"

	"tgopt/internal/tensor"
)

func TestDynamicAppendAndAccessors(t *testing.T) {
	d := NewDynamic(4)
	if d.NumNodes() != 4 || d.NumEdges() != 0 || d.MaxTime() != 0 {
		t.Fatal("fresh dynamic graph accessors wrong")
	}
	idx, err := d.Append(Edge{Src: 1, Dst: 2, Time: 10})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("auto idx = %d", idx)
	}
	if _, err := d.Append(Edge{Src: 2, Dst: 3, Time: 15}); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 2 || d.MaxTime() != 15 {
		t.Fatalf("NumEdges=%d MaxTime=%v", d.NumEdges(), d.MaxTime())
	}
}

func TestDynamicAppendValidation(t *testing.T) {
	d := NewDynamic(3)
	if _, err := d.Append(Edge{Src: 0, Dst: 1, Time: 1}); err == nil {
		t.Fatal("padding-node edge accepted")
	}
	if _, err := d.Append(Edge{Src: 1, Dst: 4, Time: 1}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 5}); err == nil {
		t.Fatal("time-regressing edge accepted")
	}
	// Equal timestamps are allowed (simultaneous events exist in CTDGs).
	if _, err := d.Append(Edge{Src: 2, Dst: 3, Time: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicGrowNodes(t *testing.T) {
	d := NewDynamic(2)
	if _, err := d.Append(Edge{Src: 1, Dst: 2, Time: 1}); err != nil {
		t.Fatal(err)
	}
	d.GrowNodes(5)
	if d.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if _, err := d.Append(Edge{Src: 5, Dst: 1, Time: 2}); err != nil {
		t.Fatal(err)
	}
	d.GrowNodes(3) // shrink attempts are no-ops
	if d.NumNodes() != 5 {
		t.Fatal("GrowNodes shrank the graph")
	}
}

func TestDynamicWindowMatchesGraph(t *testing.T) {
	// Build the same edge stream both ways; temporal degrees must agree
	// everywhere.
	r := tensor.NewRNG(1)
	n := 20
	var edges []Edge
	clock := 0.0
	for i := 0; i < 300; i++ {
		clock += r.Float64() * 10
		src := int32(1 + r.Intn(n))
		dst := int32(1 + r.Intn(n))
		if src == dst {
			continue
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Time: clock})
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(n)
	for _, e := range edges {
		if _, err := d.Append(Edge{Src: e.Src, Dst: e.Dst, Time: e.Time, Idx: e.Idx}); err != nil {
			t.Fatal(err)
		}
	}
	for v := int32(1); v <= int32(n); v++ {
		for _, q := range []float64{0, 50, clock / 2, clock + 1} {
			if g.TemporalDegree(v, q) != d.TemporalDegree(v, q) {
				t.Fatalf("degree mismatch at (%d, %v)", v, q)
			}
		}
	}
}

func TestDynamicSamplerMatchesGraphSampler(t *testing.T) {
	r := tensor.NewRNG(2)
	n := 15
	var edges []Edge
	clock := 0.0
	for i := 0; i < 200; i++ {
		clock += 1 + r.Float64()*5
		src := int32(1 + r.Intn(n))
		dst := int32(1 + r.Intn(n))
		if src == dst {
			dst = int32(1 + (int(src) % n))
			if src == dst {
				continue
			}
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Time: clock})
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(n)
	for i, e := range edges {
		e.Idx = int32(i + 1)
		if _, err := d.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	sg := NewSampler(g, 6, MostRecent, 0)
	sd := NewDynamicSampler(d, 6, MostRecent, 0)
	targets := []int32{1, 5, 9, 14}
	ts := []float64{clock / 3, clock / 2, clock, clock + 10}
	bg := sg.Sample(targets, ts)
	bd := sd.Sample(targets, ts)
	for i := range bg.Nghs {
		if bg.Nghs[i] != bd.Nghs[i] || bg.Times[i] != bd.Times[i] ||
			bg.Valid[i] != bd.Valid[i] || bg.EIdxs[i] != bd.EIdxs[i] {
			t.Fatalf("slot %d: graph (%d,%v,%v) vs dynamic (%d,%v,%v)",
				i, bg.Nghs[i], bg.Times[i], bg.Valid[i], bd.Nghs[i], bd.Times[i], bd.Valid[i])
		}
	}
	if sd.Graph() != nil {
		t.Fatal("dynamic sampler should have nil Graph()")
	}
	if sg.Graph() != g {
		t.Fatal("graph sampler lost its graph")
	}
}

func TestDynamicAppendsDoNotChangePastWindows(t *testing.T) {
	// The §3.2 property: N(v, t) is immutable once t is in the past.
	d := NewDynamic(3)
	d.Append(Edge{Src: 1, Dst: 2, Time: 10})
	d.Append(Edge{Src: 1, Dst: 3, Time: 20})
	s := NewDynamicSampler(d, 4, MostRecent, 0)
	before := s.Sample([]int32{1}, []float64{25})
	d.Append(Edge{Src: 1, Dst: 2, Time: 30})
	d.Append(Edge{Src: 1, Dst: 3, Time: 40})
	after := s.Sample([]int32{1}, []float64{25})
	for i := range before.Nghs {
		if before.Nghs[i] != after.Nghs[i] || before.Times[i] != after.Times[i] || before.Valid[i] != after.Valid[i] {
			t.Fatalf("slot %d changed after appends", i)
		}
	}
	// And the new edges are visible at later times.
	now := s.Sample([]int32{1}, []float64{45})
	validCount := 0
	for _, v := range now.Valid {
		if v {
			validCount++
		}
	}
	if validCount != 4 {
		t.Fatalf("new interactions not visible: %d valid slots", validCount)
	}
}

func TestDynamicSnapshotRoundTrip(t *testing.T) {
	d := NewDynamic(4)
	d.Append(Edge{Src: 1, Dst: 2, Time: 5})
	d.Append(Edge{Src: 3, Dst: 4, Time: 7})
	d.Append(Edge{Src: 2, Dst: 3, Time: 9})
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumNodes() != 4 {
		t.Fatalf("snapshot: %d edges %d nodes", g.NumEdges(), g.NumNodes())
	}
	ge := g.Edges()
	de := d.Edges()
	for i := range ge {
		if ge[i] != de[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ge[i], de[i])
		}
	}
	// Snapshot preserves src/dst orientation.
	if ge[0].Src != 1 || ge[0].Dst != 2 {
		t.Fatal("snapshot flipped edge orientation")
	}
}

func TestDynamicConcurrentAppendAndSample(t *testing.T) {
	d := NewDynamic(10)
	for i := 0; i < 50; i++ {
		d.Append(Edge{Src: int32(1 + i%9), Dst: int32(2 + i%8), Time: float64(i)})
	}
	s := NewDynamicSampler(d, 5, MostRecent, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 50; i < 2000; i++ {
			if _, err := d.Append(Edge{Src: int32(1 + i%9), Dst: int32(2 + i%8), Time: float64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		b := s.Sample([]int32{1, 5, 9}, []float64{40, 45, 49})
		// Past windows are fixed: slot values must always satisfy t_j < t.
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				p := i*5 + j
				if b.Valid[p] && b.Times[p] >= []float64{40, 45, 49}[i] {
					t.Fatal("temporal constraint violated under concurrency")
				}
			}
		}
	}
	wg.Wait()
	if d.NumEdges() != 2000 {
		t.Fatalf("lost appends: %d", d.NumEdges())
	}
}
