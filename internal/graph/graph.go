// Package graph implements continuous-time dynamic graph (CTDG) storage
// and temporal neighbor sampling for TGAT inference and training.
//
// A dynamic graph is a chronologically ordered stream of edge
// interactions. Storage follows the T-CSR layout of the TGL framework
// (Zhou et al., VLDB 2022) that the paper's custom C++ sampler is
// inspired by: per-node adjacency lists sorted by edge timestamp, packed
// into a CSR structure, so that the temporal neighborhood
// N(i, t) = {j : e_ij(t_j), t_j < t} is a prefix of the node's list found
// by binary search.
//
// Node ids are 1-based: id 0 is the padding node whose features are all
// zero, matching the TGAT artifact's ml_{name}_node.npy convention of
// |V|+1 feature rows. Edge ids are likewise 1-based with 0 reserved for
// padding.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a single timestamped interaction between two nodes. Idx is the
// 1-based edge id used to look up edge features.
type Edge struct {
	Src, Dst int32
	Time     float64
	Idx      int32
}

// Graph is an immutable CTDG with a T-CSR adjacency index. Build one
// with NewGraph; the zero value is an empty graph.
type Graph struct {
	numNodes int // excludes the padding node 0
	edges    []Edge

	// T-CSR arrays. For node v, its temporal adjacency (sorted by
	// ascending time) occupies positions indptr[v] .. indptr[v+1].
	indptr []int32
	nghs   []int32
	eidxs  []int32
	times  []float64
}

// NewGraph builds a graph over nodes 1..numNodes from a chronologically
// unordered edge list. Edges are treated as undirected (each interaction
// appears in both endpoints' adjacency), following the paper's setup
// where bipartite graphs are treated as homogeneous and all graphs as
// undirected. Edge.Idx values of 0 are assigned automatically as
// position+1.
func NewGraph(numNodes int, edges []Edge) (*Graph, error) {
	es := make([]Edge, len(edges))
	copy(es, edges)
	for i := range es {
		e := &es[i]
		if e.Idx == 0 {
			e.Idx = int32(i + 1)
		}
		if e.Src < 1 || int(e.Src) > numNodes || e.Dst < 1 || int(e.Dst) > numNodes {
			return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range 1..%d", i, e.Src, e.Dst, numNodes)
		}
	}
	sort.SliceStable(es, func(i, j int) bool { return es[i].Time < es[j].Time })

	g := &Graph{numNodes: numNodes, edges: es}
	g.buildCSR()
	return g, nil
}

func (g *Graph) buildCSR() {
	n := g.numNodes
	deg := make([]int32, n+2)
	for _, e := range g.edges {
		deg[e.Src+1]++
		deg[e.Dst+1]++
	}
	indptr := make([]int32, n+2)
	for v := 1; v <= n+1; v++ {
		indptr[v] = indptr[v-1] + deg[v]
	}
	total := indptr[n+1]
	nghs := make([]int32, total)
	eidxs := make([]int32, total)
	times := make([]float64, total)
	cursor := make([]int32, n+1)
	copy(cursor, indptr[:n+1])
	// Edges are globally time-sorted, so appending in order keeps each
	// per-node list time-sorted without a second sort.
	for _, e := range g.edges {
		p := cursor[e.Src]
		nghs[p], eidxs[p], times[p] = e.Dst, e.Idx, e.Time
		cursor[e.Src]++
		p = cursor[e.Dst]
		nghs[p], eidxs[p], times[p] = e.Src, e.Idx, e.Time
		cursor[e.Dst]++
	}
	g.indptr, g.nghs, g.eidxs, g.times = indptr, nghs, eidxs, times
}

// NumNodes returns the number of real nodes (excluding padding node 0).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of interactions.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the chronologically sorted edge stream. The slice must
// not be mutated.
func (g *Graph) Edges() []Edge { return g.edges }

// MaxTime returns the largest edge timestamp, or 0 for an empty graph.
func (g *Graph) MaxTime() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	return g.edges[len(g.edges)-1].Time
}

// Degree returns the total (lifetime) undirected degree of node v.
func (g *Graph) Degree(v int32) int {
	return int(g.indptr[v+1] - g.indptr[v])
}

// neighborhood returns the CSR range for node v limited to edges with
// timestamp strictly less than t: the temporal constraint t_j < t of the
// paper's N(i, t).
func (g *Graph) neighborhood(v int32, t float64) (lo, hi int32) {
	lo = g.indptr[v]
	end := g.indptr[v+1]
	// Binary search for the first position with time >= t.
	slice := g.times[lo:end]
	hi = lo + int32(sort.Search(len(slice), func(k int) bool { return slice[k] >= t }))
	return lo, hi
}

// window returns the temporal prefix N(v, t) of node v's adjacency as
// time-sorted slices, implementing the adjacency interface shared with
// Dynamic. The slices alias internal storage and must not be mutated.
func (g *Graph) window(v int32, t float64) (nghs, eidxs []int32, times []float64) {
	lo, hi := g.neighborhood(v, t)
	return g.nghs[lo:hi], g.eidxs[lo:hi], g.times[lo:hi]
}

// TemporalDegree returns |N(v, t)|: the number of interactions of v with
// timestamp strictly before t.
func (g *Graph) TemporalDegree(v int32, t float64) int {
	lo, hi := g.neighborhood(v, t)
	return int(hi - lo)
}
