package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrStale marks an out-of-order edge older than the stream's
// low-watermark: it cannot be inserted without unbounded reordering
// state, so it is dropped and counted instead of applied.
var ErrStale = errors.New("graph: edge time below the low-watermark")

// Dynamic is a continuous-time dynamic graph that grows by appending
// chronological edge interactions — the streaming counterpart of the
// immutable Graph, implementing the §7 assumption that "the graph only
// evolves new edge interactions". Appends keep every per-node adjacency
// time-sorted in O(1), so sampling stays a binary search plus a suffix
// copy.
//
// Real event streams are not chronological. SetLateness opens a
// bounded-lateness reordering window: an edge whose timestamp trails
// the stream clock by at most the window is accepted by sorted insert
// (InsertLate), anything older is dropped against the low-watermark
// and counted (the Flink/StreamTGN allowed-lateness discipline). Late
// inserts and deletions rewrite history, so both bump the Mutations
// epoch; cache layers above (core.Engine) use the epoch plus selective
// invalidation to stay exact — see DESIGN.md §11.
//
// Dynamic is safe for concurrent use: mutations take a write lock,
// sampling takes read locks. Windows returned to samplers alias the
// adjacency arrays, so history-rewriting mutations (InsertLate,
// DeleteEdge) replace the affected arrays copy-on-write instead of
// shifting them in place; appends only extend the suffix. Embeddings
// memoized for a target ⟨i, t⟩ remain valid across appends of edges at
// times ≥ t (the §3.2 property); late inserts require the selective
// invalidation above.
type Dynamic struct {
	mu       sync.RWMutex
	numNodes int
	lastTime float64
	lateness float64  // bounded-lateness window; 0 = strict chronological
	edges    []Edge   // time-sorted; equal timestamps in arrival order
	adj      []dynAdj // index 0 is the padding node and stays empty
	// byIdx maps a live edge id to its timestamp, making DeleteEdge a
	// map probe plus a binary search instead of an O(E) scan, and
	// letting validation reject duplicate ids.
	byIdx   map[int32]float64
	nextIdx int32 // next auto-assigned edge id; never reused after deletes
	// deadEdges counts tombstoned stream slots: DeleteEdge marks the
	// slot instead of splicing (which would memmove the O(E) suffix),
	// and compaction reclaims slots once they dominate, so deletion
	// stays O(degree + log E) amortized.
	deadEdges int

	// mutations counts history rewrites (late inserts + deletions).
	// Cache layers snapshot it before sampling and skip memoizing any
	// result whose sampled neighborhoods may predate a rewrite.
	mutations atomic.Int64
	// appends counts every accepted chronological append, including
	// appends at a timestamp equal to the current stream clock — which
	// change adjacency without advancing MaxTime. Cache layers compare
	// this sequence (not the clock) to detect appends that raced a
	// future-time batch.
	appends      atomic.Int64
	lateAccepted atomic.Int64
	lateDropped  atomic.Int64
}

// edgeTombstone marks a deleted slot in the time-sorted edge stream.
// The slot keeps its timestamp so the binary searches over the stream
// stay sound; live edge ids are always >= 1.
const edgeTombstone int32 = -1

type dynAdj struct {
	nghs  []int32
	eidxs []int32
	times []float64
}

// NewDynamic creates an empty dynamic graph over nodes 1..numNodes.
func NewDynamic(numNodes int) *Dynamic {
	return &Dynamic{
		numNodes: numNodes,
		adj:      make([]dynAdj, numNodes+1),
		byIdx:    make(map[int32]float64),
		nextIdx:  1,
	}
}

// NumNodes returns the current node count (excluding padding node 0).
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.numNodes
}

// NumEdges returns the number of live interactions.
func (d *Dynamic) NumEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.edges) - d.deadEdges
}

// MaxTime returns the stream clock: the latest timestamp accepted.
func (d *Dynamic) MaxTime() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastTime
}

// SetLateness configures the bounded-lateness reordering window. Edges
// arriving with timestamps in [MaxTime−w, MaxTime) are accepted by
// sorted insert; older ones are dropped against the watermark. Zero
// (the default) keeps the strict chronological contract.
func (d *Dynamic) SetLateness(w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("graph: lateness window must be finite and >= 0")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lateness = w
}

// Lateness returns the configured bounded-lateness window.
func (d *Dynamic) Lateness() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lateness
}

// Watermark returns the stream's low-watermark MaxTime − Lateness: the
// oldest timestamp a late edge may carry and still be accepted.
func (d *Dynamic) Watermark() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastTime - d.lateness
}

// Mutations returns the history-rewrite epoch: it advances on every
// late insert and deletion, and never on plain appends.
func (d *Dynamic) Mutations() int64 { return d.mutations.Load() }

// Appends returns the append sequence: it advances on every accepted
// chronological append (including one at exactly the current stream
// clock, which MaxTime cannot distinguish) and never on history
// rewrites, which advance Mutations instead.
func (d *Dynamic) Appends() int64 { return d.appends.Load() }

// LateAccepted returns the number of out-of-order edges accepted by
// sorted insert.
func (d *Dynamic) LateAccepted() int64 { return d.lateAccepted.Load() }

// LateDropped returns the number of edges dropped below the watermark.
func (d *Dynamic) LateDropped() int64 { return d.lateDropped.Load() }

// GrowNodes extends the node id space to newNumNodes (no-op if already
// at least that large).
func (d *Dynamic) GrowNodes(newNumNodes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if newNumNodes <= d.numNodes {
		return
	}
	for len(d.adj) < newNumNodes+1 {
		d.adj = append(d.adj, dynAdj{})
	}
	d.numNodes = newNumNodes
}

// validateLocked rejects edges the graph must never absorb: endpoints
// outside 1..numNodes, non-finite timestamps (NaN compares false
// against every clock check and would poison lastTime and the sorted
// invariant behind window's binary search), and duplicate edge ids.
func (d *Dynamic) validateLocked(e Edge) error {
	if e.Src < 1 || int(e.Src) > d.numNodes || e.Dst < 1 || int(e.Dst) > d.numNodes {
		return fmt.Errorf("graph: edge endpoints (%d,%d) out of range 1..%d", e.Src, e.Dst, d.numNodes)
	}
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
		return fmt.Errorf("graph: non-finite edge time %v", e.Time)
	}
	if e.Idx != 0 {
		if _, dup := d.byIdx[e.Idx]; dup {
			return fmt.Errorf("graph: duplicate edge id %d", e.Idx)
		}
	}
	return nil
}

// assignIdxLocked fills in an automatic edge id and keeps the
// auto-assignment counter above every id ever used, so ids are never
// reused even after deletions.
func (d *Dynamic) assignIdxLocked(e *Edge) {
	if e.Idx == 0 {
		e.Idx = d.nextIdx
	}
	if e.Idx >= d.nextIdx {
		d.nextIdx = e.Idx + 1
	}
}

// Append adds one undirected interaction. Timestamps must be
// non-decreasing across calls (the CTDG stream order); an Idx of 0 is
// assigned automatically from a never-reused counter. It returns the
// edge id used. Out-of-order edges are an error here — use Ingest (or
// InsertLate) on streams with a configured lateness window.
func (d *Dynamic) Append(e Edge) (int32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appendLocked(e)
}

func (d *Dynamic) appendLocked(e Edge) (int32, error) {
	if err := d.validateLocked(e); err != nil {
		return 0, err
	}
	if e.Time < d.lastTime {
		return 0, fmt.Errorf("graph: edge time %v precedes stream time %v", e.Time, d.lastTime)
	}
	d.assignIdxLocked(&e)
	src := &d.adj[e.Src]
	src.nghs = append(src.nghs, e.Dst)
	src.eidxs = append(src.eidxs, e.Idx)
	src.times = append(src.times, e.Time)
	dst := &d.adj[e.Dst]
	dst.nghs = append(dst.nghs, e.Src)
	dst.eidxs = append(dst.eidxs, e.Idx)
	dst.times = append(dst.times, e.Time)
	d.edges = append(d.edges, e)
	d.byIdx[e.Idx] = e.Time
	d.lastTime = e.Time
	d.appends.Add(1)
	return e.Idx, nil
}

// InsertLate adds an out-of-order interaction by sorted insert into the
// edge stream and both endpoints' adjacency. The edge must carry a
// timestamp at or above the low-watermark; older edges return ErrStale
// and are counted as dropped. Equal timestamps order after previously
// arrived ones (matching Append's tie behavior). Edges at or past the
// stream clock degrade to a plain append.
//
// A late insert rewrites history: it advances the Mutations epoch, and
// callers holding a TGOpt engine over this graph must invalidate the
// dependent memoized embeddings (core.Engine.InvalidateLateEdge) to
// preserve semantics. Cost is O(window + degree) — the stream shift is
// bounded by the lateness window, and the affected adjacency arrays are
// rebuilt copy-on-write so concurrent samplers keep reading the
// untouched old arrays.
func (d *Dynamic) InsertLate(e Edge) (int32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.insertLateLocked(e)
}

func (d *Dynamic) insertLateLocked(e Edge) (int32, error) {
	if err := d.validateLocked(e); err != nil {
		return 0, err
	}
	if e.Time >= d.lastTime {
		return d.appendLocked(e)
	}
	if e.Time < d.lastTime-d.lateness {
		d.lateDropped.Add(1)
		return 0, fmt.Errorf("%w: time %v < watermark %v (stream time %v, lateness %v)",
			ErrStale, e.Time, d.lastTime-d.lateness, d.lastTime, d.lateness)
	}
	d.assignIdxLocked(&e)
	// Sorted insert into the edge stream: upper bound by time, so ties
	// keep arrival order. The shift is bounded by the lateness window.
	pos := sort.Search(len(d.edges), func(i int) bool { return d.edges[i].Time > e.Time })
	d.edges = append(d.edges, Edge{})
	copy(d.edges[pos+1:], d.edges[pos:])
	d.edges[pos] = e
	d.adj[e.Src].insertCOW(e.Dst, e.Idx, e.Time)
	if e.Dst != e.Src {
		d.adj[e.Dst].insertCOW(e.Src, e.Idx, e.Time)
	}
	d.byIdx[e.Idx] = e.Time
	d.lateAccepted.Add(1)
	d.mutations.Add(1)
	return e.Idx, nil
}

// insertCOW inserts a neighbor slot at its time-sorted position into
// fresh backing arrays. Concurrent samplers hold prefixes of the old
// arrays (handed out by window under the read lock); rebuilding instead
// of shifting in place keeps those snapshots immutable.
func (a *dynAdj) insertCOW(ngh, eidx int32, t float64) {
	n := len(a.times)
	pos := sort.Search(n, func(i int) bool { return a.times[i] > t })
	nghs := make([]int32, n+1)
	eidxs := make([]int32, n+1)
	times := make([]float64, n+1)
	copy(nghs, a.nghs[:pos])
	copy(eidxs, a.eidxs[:pos])
	copy(times, a.times[:pos])
	nghs[pos], eidxs[pos], times[pos] = ngh, eidx, t
	copy(nghs[pos+1:], a.nghs[pos:])
	copy(eidxs[pos+1:], a.eidxs[pos:])
	copy(times[pos+1:], a.times[pos:])
	a.nghs, a.eidxs, a.times = nghs, eidxs, times
}

// removeCOW deletes the slot holding edge eidx, rebuilding the arrays
// copy-on-write (see insertCOW). Reports whether the slot existed.
func (a *dynAdj) removeCOW(eidx int32) bool {
	pos := -1
	for i := range a.eidxs {
		if a.eidxs[i] == eidx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	n := len(a.times)
	nghs := make([]int32, n-1)
	eidxs := make([]int32, n-1)
	times := make([]float64, n-1)
	copy(nghs, a.nghs[:pos])
	copy(eidxs, a.eidxs[:pos])
	copy(times, a.times[:pos])
	copy(nghs[pos:], a.nghs[pos+1:])
	copy(eidxs[pos:], a.eidxs[pos+1:])
	copy(times[pos:], a.times[pos+1:])
	a.nghs, a.eidxs, a.times = nghs, eidxs, times
	return true
}

// IngestResult classifies how Ingest disposed of an edge.
type IngestResult int

const (
	// IngestAppended: the edge was in order and appended.
	IngestAppended IngestResult = iota
	// IngestLate: the edge was out of order but inside the lateness
	// window, and was accepted by sorted insert.
	IngestLate
	// IngestDropped: the edge was older than the low-watermark and was
	// dropped (counted, never applied).
	IngestDropped
)

// String implements fmt.Stringer.
func (r IngestResult) String() string {
	switch r {
	case IngestAppended:
		return "appended"
	case IngestLate:
		return "late"
	case IngestDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// Ingest absorbs one edge from a possibly out-of-order live stream:
// in-order edges append, edges inside the lateness window sorted-insert
// (the caller must then run cache invalidation — see InsertLate), and
// edges below the watermark are dropped and counted without error.
// Invalid edges (bad endpoints, non-finite times, duplicate ids) error
// without touching the graph.
func (d *Dynamic) Ingest(e Edge) (IngestResult, int32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.validateLocked(e); err != nil {
		return IngestDropped, 0, err
	}
	if e.Time >= d.lastTime {
		idx, err := d.appendLocked(e)
		return IngestAppended, idx, err
	}
	if e.Time < d.lastTime-d.lateness {
		d.lateDropped.Add(1)
		return IngestDropped, 0, nil
	}
	idx, err := d.insertLateLocked(e)
	return IngestLate, idx, err
}

// window returns the temporal prefix N(v, t), implementing the
// adjacency interface. The returned slices are snapshots of the prefix
// at call time: appends only extend the suffix, and history-rewriting
// mutations replace the arrays copy-on-write, so the prefix a caller
// holds is never mutated underneath it.
func (d *Dynamic) window(v int32, t float64) (nghs, eidxs []int32, times []float64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(v) >= len(d.adj) {
		return nil, nil, nil
	}
	a := &d.adj[v]
	hi := sort.Search(len(a.times), func(k int) bool { return a.times[k] >= t })
	return a.nghs[:hi], a.eidxs[:hi], a.times[:hi]
}

// TemporalDegree returns |N(v, t)|.
func (d *Dynamic) TemporalDegree(v int32, t float64) int {
	nghs, _, _ := d.window(v, t)
	return len(nghs)
}

// CountBetween returns how many of v's interactions carry a timestamp
// strictly inside (lo, hi). Cache invalidation uses it to decide
// whether a late edge at time lo can enter the most-recent-k window of
// a memoized target at time hi: with k or more newer interactions in
// between, it cannot.
func (d *Dynamic) CountBetween(v int32, lo, hi float64) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(v) >= len(d.adj) {
		return 0
	}
	a := &d.adj[v]
	i := sort.Search(len(a.times), func(k int) bool { return a.times[k] > lo })
	j := sort.Search(len(a.times), func(k int) bool { return a.times[k] >= hi })
	if j < i {
		return 0
	}
	return j - i
}

// DeleteEdge removes the interaction with the given 1-based edge id
// from the graph — the §7 edge-deletion event. It reports whether the
// edge existed. The id index plus a binary search over the time-sorted
// stream make removal O(degree + log E). Deletion rewrites history: it
// advances the Mutations epoch, and callers holding a TGOpt engine over
// this graph must invalidate dependent cache entries
// (core.Engine.InvalidateEdge) to preserve semantics.
func (d *Dynamic) DeleteEdge(eidx int32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.byIdx[eidx]
	if !ok {
		return false
	}
	// First edge at time t, then scan the (typically tiny) equal-time
	// run for the matching id.
	pos := -1
	for i := sort.Search(len(d.edges), func(i int) bool { return d.edges[i].Time >= t }); i < len(d.edges) && d.edges[i].Time == t; i++ {
		if d.edges[i].Idx == eidx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false // unreachable while byIdx stays consistent
	}
	e := d.edges[pos]
	// Tombstone instead of splicing: a splice would memmove the whole
	// suffix, making every deletion O(E) regardless of the lookup cost.
	d.edges[pos] = Edge{Time: e.Time, Idx: edgeTombstone}
	d.deadEdges++
	if d.deadEdges > 1024 && d.deadEdges > len(d.edges)/2 {
		d.compactEdgesLocked()
	}
	d.adj[e.Src].removeCOW(eidx)
	if e.Dst != e.Src {
		d.adj[e.Dst].removeCOW(eidx)
	}
	delete(d.byIdx, eidx)
	d.mutations.Add(1)
	return true
}

// compactEdgesLocked rewrites the edge stream without its tombstoned
// slots, preserving order.
func (d *Dynamic) compactEdgesLocked() {
	w := 0
	for _, e := range d.edges {
		if e.Idx != edgeTombstone {
			d.edges[w] = e
			w++
		}
	}
	d.edges = d.edges[:w]
	d.deadEdges = 0
}

// copyEdgesLocked returns the live edge stream in chronological order,
// skipping tombstoned slots.
func (d *Dynamic) copyEdgesLocked() []Edge {
	out := make([]Edge, 0, len(d.edges)-d.deadEdges)
	for _, e := range d.edges {
		if e.Idx != edgeTombstone {
			out = append(out, e)
		}
	}
	return out
}

// Snapshot materializes the current state as an immutable Graph with
// the same chronological edge stream.
func (d *Dynamic) Snapshot() (*Graph, error) {
	d.mu.RLock()
	edges := d.copyEdgesLocked()
	n := d.numNodes
	d.mu.RUnlock()
	return NewGraph(n, edges)
}

// Edges returns a copy of the live edge stream in chronological order.
func (d *Dynamic) Edges() []Edge {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.copyEdgesLocked()
}
