package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Dynamic is a continuous-time dynamic graph that grows by appending
// chronological edge interactions — the streaming counterpart of the
// immutable Graph, implementing the §7 assumption that "the graph only
// evolves new edge interactions". Appends keep every per-node adjacency
// time-sorted in O(1), so sampling stays a binary search plus a suffix
// copy.
//
// Dynamic is safe for concurrent use: appends take a write lock,
// sampling takes read locks. Because the temporal constraint t_j < t
// excludes all future edges, embeddings memoized for a target ⟨i, t⟩
// remain valid after any number of appends — the property (§3.2) that
// makes TGOpt's cache sound on a live stream; the engine tests assert
// it end to end.
type Dynamic struct {
	mu       sync.RWMutex
	numNodes int
	lastTime float64
	edges    []Edge
	adj      []dynAdj // index 0 is the padding node and stays empty
}

type dynAdj struct {
	nghs  []int32
	eidxs []int32
	times []float64
}

// NewDynamic creates an empty dynamic graph over nodes 1..numNodes.
func NewDynamic(numNodes int) *Dynamic {
	return &Dynamic{numNodes: numNodes, adj: make([]dynAdj, numNodes+1)}
}

// NumNodes returns the current node count (excluding padding node 0).
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.numNodes
}

// NumEdges returns the number of interactions appended so far.
func (d *Dynamic) NumEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.edges)
}

// MaxTime returns the latest appended timestamp.
func (d *Dynamic) MaxTime() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastTime
}

// GrowNodes extends the node id space to newNumNodes (no-op if already
// at least that large).
func (d *Dynamic) GrowNodes(newNumNodes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if newNumNodes <= d.numNodes {
		return
	}
	for len(d.adj) < newNumNodes+1 {
		d.adj = append(d.adj, dynAdj{})
	}
	d.numNodes = newNumNodes
}

// Append adds one undirected interaction. Timestamps must be
// non-decreasing across calls (the CTDG stream order); an Idx of 0 is
// assigned automatically as the 1-based stream position. It returns the
// edge id used.
func (d *Dynamic) Append(e Edge) (int32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e.Src < 1 || int(e.Src) > d.numNodes || e.Dst < 1 || int(e.Dst) > d.numNodes {
		return 0, fmt.Errorf("graph: edge endpoints (%d,%d) out of range 1..%d", e.Src, e.Dst, d.numNodes)
	}
	if e.Time < d.lastTime {
		return 0, fmt.Errorf("graph: edge time %v precedes stream time %v", e.Time, d.lastTime)
	}
	if e.Idx == 0 {
		e.Idx = int32(len(d.edges) + 1)
	}
	src := &d.adj[e.Src]
	src.nghs = append(src.nghs, e.Dst)
	src.eidxs = append(src.eidxs, e.Idx)
	src.times = append(src.times, e.Time)
	dst := &d.adj[e.Dst]
	dst.nghs = append(dst.nghs, e.Src)
	dst.eidxs = append(dst.eidxs, e.Idx)
	dst.times = append(dst.times, e.Time)
	d.edges = append(d.edges, e)
	d.lastTime = e.Time
	return e.Idx, nil
}

// window returns the temporal prefix N(v, t), implementing the
// adjacency interface. The returned slices are snapshots of the prefix
// at call time; later appends do not affect them (appends only extend
// the suffix, and slice headers pin the prefix).
func (d *Dynamic) window(v int32, t float64) (nghs, eidxs []int32, times []float64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(v) >= len(d.adj) {
		return nil, nil, nil
	}
	a := &d.adj[v]
	hi := sort.Search(len(a.times), func(k int) bool { return a.times[k] >= t })
	return a.nghs[:hi], a.eidxs[:hi], a.times[:hi]
}

// TemporalDegree returns |N(v, t)|.
func (d *Dynamic) TemporalDegree(v int32, t float64) int {
	nghs, _, _ := d.window(v, t)
	return len(nghs)
}

// DeleteEdge removes the interaction with the given 1-based edge id
// from the graph — the §7 edge-deletion event. It reports whether the
// edge existed. The removal is O(degree of the endpoints); deletions
// are expected to be rare relative to appends. Callers holding a TGOpt
// engine over this graph must invalidate dependent cache entries
// (core.Engine.InvalidateEdge) to preserve semantics.
func (d *Dynamic) DeleteEdge(eidx int32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	pos := -1
	for i := range d.edges {
		if d.edges[i].Idx == eidx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	e := d.edges[pos]
	d.edges = append(d.edges[:pos], d.edges[pos+1:]...)
	for _, v := range [2]int32{e.Src, e.Dst} {
		a := &d.adj[v]
		for i := range a.eidxs {
			if a.eidxs[i] == eidx {
				a.nghs = append(a.nghs[:i], a.nghs[i+1:]...)
				a.eidxs = append(a.eidxs[:i], a.eidxs[i+1:]...)
				a.times = append(a.times[:i], a.times[i+1:]...)
				break
			}
		}
		if e.Src == e.Dst {
			break
		}
	}
	return true
}

// Snapshot materializes the current state as an immutable Graph with
// the same chronological edge stream.
func (d *Dynamic) Snapshot() (*Graph, error) {
	d.mu.RLock()
	edges := make([]Edge, len(d.edges))
	copy(edges, d.edges)
	n := d.numNodes
	d.mu.RUnlock()
	return NewGraph(n, edges)
}

// Edges returns a copy of the appended edge stream in order.
func (d *Dynamic) Edges() []Edge {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Edge, len(d.edges))
	copy(out, d.edges)
	return out
}
