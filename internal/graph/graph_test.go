package graph

import (
	"testing"
	"testing/quick"
	"tgopt/internal/parallel"

	"tgopt/internal/tensor"
)

// smallGraph builds the running example: node 1 interacts with 2,3,4,5
// at times 10,20,30,40; node 2 also interacts with 3 at time 25.
func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(5, []Edge{
		{Src: 1, Dst: 2, Time: 10},
		{Src: 1, Dst: 3, Time: 20},
		{Src: 2, Dst: 3, Time: 25},
		{Src: 1, Dst: 4, Time: 30},
		{Src: 1, Dst: 5, Time: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidatesEndpoints(t *testing.T) {
	if _, err := NewGraph(3, []Edge{{Src: 1, Dst: 4, Time: 1}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := NewGraph(3, []Edge{{Src: 0, Dst: 1, Time: 1}}); err == nil {
		t.Fatal("node id 0 accepted (reserved for padding)")
	}
}

func TestGraphBasicAccessors(t *testing.T) {
	g := smallGraph(t)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("NumNodes=%d NumEdges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.MaxTime() != 40 {
		t.Fatalf("MaxTime=%v", g.MaxTime())
	}
	if g.Degree(1) != 4 || g.Degree(3) != 2 || g.Degree(5) != 1 {
		t.Fatalf("degrees: %d %d %d", g.Degree(1), g.Degree(3), g.Degree(5))
	}
}

func TestEdgesSortedChronologically(t *testing.T) {
	g, err := NewGraph(3, []Edge{
		{Src: 1, Dst: 2, Time: 30},
		{Src: 2, Dst: 3, Time: 10},
		{Src: 1, Dst: 3, Time: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, e := range g.Edges() {
		if e.Time < prev {
			t.Fatal("edges not chronologically sorted")
		}
		prev = e.Time
	}
}

func TestEdgeIdxAutoAssigned(t *testing.T) {
	g, err := NewGraph(2, []Edge{{Src: 1, Dst: 2, Time: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges()[0].Idx != 1 {
		t.Fatalf("auto edge id = %d, want 1", g.Edges()[0].Idx)
	}
}

func TestTemporalDegreeRespectsStrictInequality(t *testing.T) {
	g := smallGraph(t)
	// Node 1 has edges at t=10,20,30,40.
	if d := g.TemporalDegree(1, 30); d != 2 {
		t.Fatalf("TemporalDegree(1,30) = %d, want 2 (strict <)", d)
	}
	if d := g.TemporalDegree(1, 30.0001); d != 3 {
		t.Fatalf("TemporalDegree(1,30.0001) = %d, want 3", d)
	}
	if d := g.TemporalDegree(1, 5); d != 0 {
		t.Fatalf("TemporalDegree(1,5) = %d, want 0", d)
	}
	if d := g.TemporalDegree(1, 1e9); d != 4 {
		t.Fatalf("TemporalDegree(1,inf) = %d, want 4", d)
	}
}

func TestSamplerMostRecentTakesLatest(t *testing.T) {
	g := smallGraph(t)
	s := NewSampler(g, 2, MostRecent, 0)
	b := s.Sample([]int32{1}, []float64{35})
	// N(1, 35) = {2@10, 3@20, 4@30}; most recent 2 are 3@20, 4@30.
	if !b.Valid[0] || !b.Valid[1] {
		t.Fatalf("expected two valid slots: %v", b.Valid)
	}
	if b.Nghs[0] != 3 || b.Nghs[1] != 4 {
		t.Fatalf("neighbors = %v, want [3 4]", b.Nghs)
	}
	if b.Times[0] != 20 || b.Times[1] != 30 {
		t.Fatalf("times = %v, want [20 30]", b.Times)
	}
}

func TestSamplerPadsWhenFewNeighbors(t *testing.T) {
	g := smallGraph(t)
	s := NewSampler(g, 4, MostRecent, 0)
	b := s.Sample([]int32{5}, []float64{50})
	// Node 5 has one interaction (with 1 at t=40).
	if !b.Valid[0] || b.Nghs[0] != 1 {
		t.Fatalf("first slot = (%d, valid=%v)", b.Nghs[0], b.Valid[0])
	}
	for j := 1; j < 4; j++ {
		if b.Valid[j] || b.Nghs[j] != 0 || b.EIdxs[j] != 0 {
			t.Fatalf("slot %d not padded: ngh=%d eidx=%d valid=%v", j, b.Nghs[j], b.EIdxs[j], b.Valid[j])
		}
		if b.Times[j] != 50 {
			t.Fatalf("padding time = %v, want target time 50 (zero delta)", b.Times[j])
		}
	}
}

func TestSamplerPaddingNodeAndNoHistory(t *testing.T) {
	g := smallGraph(t)
	s := NewSampler(g, 3, MostRecent, 0)
	b := s.Sample([]int32{0, 2}, []float64{100, 5})
	for j := 0; j < 6; j++ {
		if b.Valid[j] {
			t.Fatalf("slot %d valid for padding node / empty history", j)
		}
	}
	if b.NumTargets() != 2 {
		t.Fatalf("NumTargets = %d", b.NumTargets())
	}
}

func TestSamplerDeterministicForSameTarget(t *testing.T) {
	// The memoization optimization relies on this (§3.2): sampling the
	// same ⟨i, t⟩ twice yields exactly the same temporal subgraph, even
	// after new interactions are appended — checked here by rebuilding
	// the graph with an extra later edge.
	g1 := smallGraph(t)
	edges := append([]Edge{}, g1.Edges()...)
	for i := range edges {
		edges[i].Idx = 0 // let them be reassigned
	}
	edges = append(edges, Edge{Src: 1, Dst: 2, Time: 100})
	g2, err := NewGraph(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSampler(g1, 3, MostRecent, 0)
	s2 := NewSampler(g2, 3, MostRecent, 0)
	b1 := s1.Sample([]int32{1, 2, 3}, []float64{35, 27, 22})
	b2 := s2.Sample([]int32{1, 2, 3}, []float64{35, 27, 22})
	for i := range b1.Nghs {
		if b1.Nghs[i] != b2.Nghs[i] || b1.Times[i] != b2.Times[i] || b1.Valid[i] != b2.Valid[i] || b1.EIdxs[i] != b2.EIdxs[i] {
			t.Fatalf("slot %d differs after graph evolution: (%d,%v,%v) vs (%d,%v,%v)",
				i, b1.Nghs[i], b1.Times[i], b1.Valid[i], b2.Nghs[i], b2.Times[i], b2.Valid[i])
		}
	}
}

func TestSamplerTemporalConstraintProperty(t *testing.T) {
	// Property: every valid sampled slot has edge time strictly less
	// than the target time, for random graphs and random targets.
	prop := func(seed uint32) bool {
		r := tensor.NewRNG(uint64(seed))
		n := 5 + r.Intn(30)
		m := 20 + r.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				Src:  int32(1 + r.Intn(n)),
				Dst:  int32(1 + r.Intn(n)),
				Time: r.Float64() * 1000,
			}
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		for _, strat := range []Strategy{MostRecent, Uniform} {
			s := NewSampler(g, 1+r.Intn(10), strat, uint64(seed))
			targets := make([]int32, 16)
			ts := make([]float64, 16)
			for i := range targets {
				targets[i] = int32(1 + r.Intn(n))
				ts[i] = r.Float64() * 1200
			}
			b := s.Sample(targets, ts)
			for i := 0; i < len(targets); i++ {
				for j := 0; j < b.K; j++ {
					p := i*b.K + j
					if b.Valid[p] && b.Times[p] >= ts[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerMostRecentOrderedByTime(t *testing.T) {
	prop := func(seed uint32) bool {
		r := tensor.NewRNG(uint64(seed))
		n := 10
		m := 300
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: int32(1 + r.Intn(n)), Dst: int32(1 + r.Intn(n)), Time: float64(r.Intn(500))}
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		s := NewSampler(g, 8, MostRecent, 0)
		b := s.Sample([]int32{1, 2, 3}, []float64{400, 450, 500})
		for i := 0; i < 3; i++ {
			prev := -1.0
			for j := 0; j < 8; j++ {
				p := i*8 + j
				if !b.Valid[p] {
					continue
				}
				if b.Times[p] < prev {
					return false
				}
				prev = b.Times[p]
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSamplerReproducible(t *testing.T) {
	g := smallGraph(t)
	s := NewSampler(g, 2, Uniform, 7)
	a := s.Sample([]int32{1, 1}, []float64{45, 45})
	b := s.Sample([]int32{1, 1}, []float64{45, 45})
	for i := range a.Nghs {
		if a.Nghs[i] != b.Nghs[i] {
			t.Fatal("uniform sampler not reproducible for same seed/target")
		}
	}
}

func TestUniformSamplerTakesAllWhenUnderBudget(t *testing.T) {
	g := smallGraph(t)
	s := NewSampler(g, 10, Uniform, 1)
	b := s.Sample([]int32{1}, []float64{1e9})
	valid := 0
	for _, v := range b.Valid[:10] {
		if v {
			valid++
		}
	}
	if valid != 4 {
		t.Fatalf("uniform under-budget valid slots = %d, want 4", valid)
	}
}

func TestSamplerKPanics(t *testing.T) {
	g := smallGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 sampler did not panic")
		}
	}()
	NewSampler(g, 0, MostRecent, 0)
}

func TestStrategyString(t *testing.T) {
	if MostRecent.String() != "most-recent" || Uniform.String() != "uniform" || Strategy(99).String() != "unknown" {
		t.Fatal("Strategy.String() wrong")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.MaxTime() != 0 {
		t.Fatal("empty graph accessors wrong")
	}
}

func TestLargeBatchParallelSampling(t *testing.T) {
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	r := tensor.NewRNG(99)
	n, m := 200, 5000
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: int32(1 + r.Intn(n)), Dst: int32(1 + r.Intn(n)), Time: r.Float64() * 1e6}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, 20, MostRecent, 0)
	nt := 2000 // exceeds the parallel threshold
	nodes := make([]int32, nt)
	ts := make([]float64, nt)
	for i := range nodes {
		nodes[i] = int32(1 + r.Intn(n))
		ts[i] = r.Float64() * 1e6
	}
	b := s.Sample(nodes, ts)
	// Spot-check against a serial one-target sample.
	for _, i := range []int{0, 777, 1999} {
		single := s.Sample(nodes[i:i+1], ts[i:i+1])
		for j := 0; j < 20; j++ {
			if b.Nghs[i*20+j] != single.Nghs[j] || b.Valid[i*20+j] != single.Valid[j] {
				t.Fatalf("parallel batch slot (%d,%d) differs from serial", i, j)
			}
		}
	}
}
