package shard

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/faultfs"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// testModelSeed is testModel with a caller-chosen parameter seed, so a
// second seed stands in for a newly fine-tuned version of the same
// architecture.
func testModelSeed(t *testing.T, seed uint64) *tgat.Model {
	t.Helper()
	const maxEdges = 4096
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, testNodes+1, testDim)
	edgeFeat := tensor.Randn(r, maxEdges+1, testDim)
	for j := 0; j < testDim; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: testDim, EdgeDim: testDim, TimeDim: testDim, NumNeighbors: 4, Seed: seed}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// redirectFS serves Open(from) from a different file — the harness for
// "one shard's replica of the params checkpoint is corrupt".
type redirectFS struct {
	checkpoint.FS
	from, to string
}

func (r redirectFS) Open(name string) (io.ReadCloser, error) {
	if name == r.from {
		name = r.to
	}
	return r.FS.Open(name)
}

func poolSlab(t *testing.T, r *Router, nodes []int32, ts []float64) []float32 {
	t.Helper()
	res, err := r.Embed(context.Background(), nodes, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("degraded rows %v", res.Degraded)
	}
	return res.Slab
}

func requireSlabEqual(t *testing.T, what string, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: slab[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestRouterSwapAllOrNothing pins the two-phase pool swap: with one
// shard's replica of the params checkpoint bit-flipped, prepare fails
// on that shard and NOTHING changes anywhere — not the pool version,
// not the shared tensors, not a single served row. Clearing the fault
// lets the identical call commit everywhere at once.
func TestRouterSwapAllOrNothing(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	wantOld := referenceSlab(t, m, edges, nodes, ts)

	// Publish v1 params and a bit-flipped copy of the same file.
	dir := t.TempDir()
	good := filepath.Join(dir, "params-1.tgp")
	bad := filepath.Join(dir, "params-1-corrupt.tgp")
	if err := testModelSeed(t, 9).SaveParamsFS(checkpoint.OS{}, good); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the tensor payload, past the
	// envelope header.
	if err := faultfs.FlipBit(bad, int64(len(b))/2*8+3); err != nil {
		t.Fatal(err)
	}

	var faulty atomic.Bool
	faulty.Store(true)
	r := newTestRouter(t, m, edges, Config{
		Shards: 3,
		SwapFS: func(shard int) checkpoint.FS {
			if shard == 1 && faulty.Load() {
				return redirectFS{FS: checkpoint.OS{}, from: good, to: bad}
			}
			return nil
		},
	})
	requireSlabEqual(t, "pre-swap", poolSlab(t, r, nodes, ts), wantOld)

	err = r.SwapParams(good, 1)
	if err == nil {
		t.Fatal("swap with a corrupt shard replica committed")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
	if v := r.ParamsVersion(); v != 0 {
		t.Fatalf("version advanced to %d on a failed swap", v)
	}
	for _, s := range r.shards {
		if ev := s.currentCore().eng.ParamsVersion(); ev != 0 {
			t.Fatalf("shard %d engine at version %d after rollback", s.id, ev)
		}
	}
	requireSlabEqual(t, "after rolled-back swap", poolSlab(t, r, nodes, ts), wantOld)

	// Same call with the fault cleared: commits pool-wide.
	faulty.Store(false)
	if err := r.SwapParams(good, 1); err != nil {
		t.Fatal(err)
	}
	if v := r.ParamsVersion(); v != 1 {
		t.Fatalf("version %d after commit", v)
	}
	wantNew := referenceSlab(t, testModelSeed(t, 9), edges, nodes, ts)
	requireSlabEqual(t, "post-swap", poolSlab(t, r, nodes, ts), wantNew)
}

// TestRestartAfterSwapServesCurrentVersion pins satellite 3: a shard
// rebuilt by the supervisor AFTER a hot-swap must come back on the
// swapped (current) params version, not the boot-time one — the shared
// model already carries the new tensors, and the rebuilt engine's
// version stamp, packed weights, and caches must agree with them.
func TestRestartAfterSwapServesCurrentVersion(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()

	dir := t.TempDir()
	path := filepath.Join(dir, "params-5.tgp")
	if err := testModelSeed(t, 9).SaveParamsFS(checkpoint.OS{}, path); err != nil {
		t.Fatal(err)
	}

	r := newTestRouter(t, m, edges, Config{Shards: 3})
	poolSlab(t, r, nodes, ts) // warm
	if err := r.SwapParams(path, 5); err != nil {
		t.Fatal(err)
	}

	victim := r.shards[0]
	r.crash(victim, errors.New("injected crash"))
	waitFor(t, 5*time.Second, func() bool {
		return victim.restarts.Load() > 0 && !victim.crashed.Load()
	})

	if ev := victim.currentCore().eng.ParamsVersion(); ev != 5 {
		t.Fatalf("rebuilt shard at version %d, pool at %d", ev, r.ParamsVersion())
	}
	wantNew := referenceSlab(t, testModelSeed(t, 9), edges, nodes, ts)
	requireSlabEqual(t, "after restart", poolSlab(t, r, nodes, ts), wantNew)
}

// TestRouterSwapDuringTraffic hammers the pool with embeds and ingest
// while swapping back and forth between two published versions, under
// the race detector: every gathered slab must be bitwise one version's
// rows — never a mix — and after the final swap the pool must converge
// exactly onto the final params.
func TestRouterSwapDuringTraffic(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	wantA := referenceSlab(t, m, edges, nodes, ts)
	wantB := referenceSlab(t, testModelSeed(t, 9), edges, nodes, ts)

	dir := t.TempDir()
	pathA := filepath.Join(dir, "params-a.tgp")
	pathB := filepath.Join(dir, "params-b.tgp")
	if err := testModel(t).SaveParamsFS(checkpoint.OS{}, pathA); err != nil {
		t.Fatal(err)
	}
	if err := testModelSeed(t, 9).SaveParamsFS(checkpoint.OS{}, pathB); err != nil {
		t.Fatal(err)
	}

	r := newTestRouter(t, m, edges, Config{Shards: 3})

	stop := make(chan struct{})
	errc := make(chan error, 8)
	// Embed hammers: every response must be wholly version A or wholly
	// version B.
	for g := 0; g < 4; g++ {
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				res, err := r.Embed(context.Background(), nodes, ts)
				if err != nil || res.Partial {
					errc <- err
					return
				}
				matchA := slabEqual(res.Slab, wantA)
				matchB := slabEqual(res.Slab, wantB)
				if !matchA && !matchB {
					errc <- errors.New("slab matches neither version: mixed-version rows")
					return
				}
			}
		}()
	}
	// Ingest hammer: edges strictly after the query times, so expected
	// rows at t<=1000 stay pinned while invalidation churns.
	go func() {
		tm := 2000.0
		for {
			select {
			case <-stop:
				errc <- nil
				return
			default:
			}
			tm += 10
			r.Apply(graph.Edge{Src: 2, Dst: 3, Time: tm}, graph.IngestAppended)
		}
	}()

	version := uint64(0)
	for i := 0; i < 12; i++ {
		version++
		p := pathB
		if version%2 == 0 {
			p = pathA
		}
		if err := r.SwapParams(p, version); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	for i := 0; i < 5; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// 12 swaps: final version even → params A... the parity rule above
	// says even versions load pathA.
	requireSlabEqual(t, "converged", poolSlab(t, r, nodes, ts), wantA)
	if err := r.SwapParams(pathB, version+1); err != nil {
		t.Fatal(err)
	}
	requireSlabEqual(t, "final", poolSlab(t, r, nodes, ts), wantB)
}

func slabEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
