package shard

import (
	"sort"
)

// ring is a consistent-hash ring over node ids: each shard owns the
// arc below each of its virtual points, and a node id hashes to the
// first point at or clockwise-after it. Consistent hashing (rather
// than node % N) keeps the partition stable if the shard count ever
// becomes dynamic, and the virtual points smooth the load imbalance of
// hashing a handful of shards directly.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringVnodes is the number of virtual points per shard.
const ringVnodes = 64

// splitmix64 is the finalizer-quality mixer used to place both
// virtual points and node ids on the ring (same family as core's key
// hash; any well-mixed 64-bit permutation works).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func newRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			h := splitmix64(uint64(s)<<32 | uint64(v)<<1 | 1)
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Owner returns the shard a node id hashes to.
func (r *ring) Owner(node int32) int {
	h := splitmix64(uint64(uint32(node)))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
