package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position. Closed passes calls
// through, Open fails them fast (the shard is routed around), and
// HalfOpen admits a bounded number of probes to test recovery.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig bounds one shard's circuit breaker. The zero value
// takes every default.
type BreakerConfig struct {
	// Window is the rolling outcome window the error rate is computed
	// over (default 64 calls).
	Window int
	// Threshold opens the breaker when failures/window >= Threshold
	// (default 0.5). Timeouts count as failures; client cancellations
	// are neutral and count as neither.
	Threshold float64
	// MinSamples is the minimum recorded outcomes before the breaker
	// may open (default 8) — one early failure must not eject a shard.
	MinSamples int
	// Cooldown is how long an open breaker rejects before admitting
	// half-open probes (default 500ms).
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the
	// breaker (default 3). A single probe failure reopens it.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
	return c
}

// Outcome classifies one shard call for the breaker.
type Outcome int

const (
	// OutcomeSuccess is a completed call.
	OutcomeSuccess Outcome = iota
	// OutcomeFailure is an error, a deadline expiry, or a panic.
	OutcomeFailure
	// OutcomeNeutral is a call abandoned for reasons that say nothing
	// about the shard's health (the client went away). It returns a
	// half-open probe token instead of consuming it.
	OutcomeNeutral
)

// Breaker is a rolling-error-rate circuit breaker: Closed until the
// windowed failure rate crosses the threshold, Open for a cooldown,
// then HalfOpen admitting a few probes whose outcomes decide between
// reclosing and reopening. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // rolling ring: true = failure
	idx      int
	filled   int
	fails    int
	openedAt time.Time
	probes   int // half-open probes admitted and not yet returned
	probeOK  int // consecutive half-open successes

	opens     atomic.Int64
	halfOpens atomic.Int64
	closes    atomic.Int64
}

// NewBreaker builds a breaker with the (defaulted) config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, now: time.Now, outcomes: make([]bool, cfg.Window)}
}

// Allow reports whether a call may proceed. In the Open state it also
// performs the cooldown-elapsed transition to HalfOpen; in HalfOpen it
// consumes a probe token. Every allowed call must be followed by one
// Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.toHalfOpenLocked()
		fallthrough
	case BreakerHalfOpen:
		if b.probes < b.cfg.Probes {
			b.probes++
			return true
		}
		return false
	}
	return false
}

// Record feeds one call outcome back.
func (b *Breaker) Record(o Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if o == OutcomeNeutral {
			return
		}
		fail := o == OutcomeFailure
		if b.filled == len(b.outcomes) && b.outcomes[b.idx] {
			b.fails--
		}
		b.outcomes[b.idx] = fail
		b.idx = (b.idx + 1) % len(b.outcomes)
		if b.filled < len(b.outcomes) {
			b.filled++
		}
		if fail {
			b.fails++
		}
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.filled) >= b.cfg.Threshold {
			b.toOpenLocked()
		}
	case BreakerHalfOpen:
		switch o {
		case OutcomeNeutral:
			// The probe said nothing; hand its token back.
			if b.probes > 0 {
				b.probes--
			}
		case OutcomeFailure:
			b.toOpenLocked()
		case OutcomeSuccess:
			b.probeOK++
			if b.probeOK >= b.cfg.Probes {
				b.toClosedLocked()
			}
		}
	case BreakerOpen:
		// A straggler from before the open; the window restarts on the
		// next half-open cycle, so late outcomes are ignored.
	}
}

// ForceOpen trips the breaker immediately — the supervisor calls it
// the moment a shard crashes, before any error rate could accumulate.
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		b.toOpenLocked()
	} else {
		b.openedAt = b.now() // restart the cooldown
	}
}

// ToHalfOpen moves an open breaker to HalfOpen with a fresh probe
// budget — the supervisor calls it after a restart so traffic is
// re-admitted by probes instead of waiting out the cooldown.
func (b *Breaker) ToHalfOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		b.toHalfOpenLocked()
	}
}

func (b *Breaker) toOpenLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probes, b.probeOK = 0, 0
	b.opens.Add(1)
}

func (b *Breaker) toHalfOpenLocked() {
	b.state = BreakerHalfOpen
	b.probes, b.probeOK = 0, 0
	b.halfOpens.Add(1)
}

func (b *Breaker) toClosedLocked() {
	b.state = BreakerClosed
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
	b.closes.Add(1)
}

// Eligible reports whether the breaker could admit traffic: closed or
// half-open, or open with the cooldown elapsed (the next Allow performs
// the half-open transition). Quorum accounting MUST use this rather
// than State: if every breaker opened on error rate, a State-based
// quorum pre-check would reject all requests before any Allow could
// run, so no probe would ever fire and the pool could never recover.
func (b *Breaker) Eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cfg.Cooldown
	}
	return false
}

// State returns the current position without performing transitions.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns the cumulative open / half-open / close
// transition counts.
func (b *Breaker) Transitions() (opens, halfOpens, closes int64) {
	return b.opens.Load(), b.halfOpens.Load(), b.closes.Load()
}
