package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/graph"
)

// Supervisor: a shard whose engine panics is torn down wholesale (the
// panic may have left the old core's locks or arenas poisoned, so
// nothing from it is reused) and rebuilt in the background:
//
//  1. crash() trips the breaker (ForceOpen) and marks the shard
//     crashed, so the router routes around it and broadcast ingest
//     stops touching the old core.
//  2. The restart goroutine captures the edge-log length n, builds a
//     fresh replica + engine from log[:n], and warms its caches from
//     the shard's last snapshot (validating the snapshot's log
//     position and re-running invalidation for the edges it predates).
//  3. Under ingestMu it replays log[n:] — edges broadcast while the
//     rebuild ran — swaps the core in, and clears crashed, so no edge
//     is ever missed between replay and the first live Apply.
//  4. The breaker moves Open → HalfOpen: traffic is re-admitted by
//     probes rather than a thundering herd.

// restartBackoff paces rebuild attempts after a failed rebuild.
const restartBackoff = 100 * time.Millisecond

// posVersion is the envelope version of the .pos sidecar (an 8-byte
// little-endian edge-log position).
const posVersion uint32 = 1

// crash tears a shard down and schedules a single-flight restart. It
// is safe to call from any number of concurrent observers; only the
// first arms the rebuild.
func (r *Router) crash(s *Shard, cause error) {
	s.crashed.Store(true)
	s.breaker.ForceOpen()
	if r.closed.Load() {
		return
	}
	if !s.restarting.CompareAndSwap(false, true) {
		return
	}
	r.restartWG.Add(1)
	go func() {
		defer r.restartWG.Done()
		defer s.restarting.Store(false)
		r.restart(s, cause)
	}()
}

// restart rebuilds a crashed shard from the edge log and its last
// cache snapshot. It retries with backoff until the rebuild succeeds
// or the router closes.
func (r *Router) restart(s *Shard, cause error) {
	r.cfg.Logf("shard %d: crashed (%v); rebuilding", s.id, cause)
	for attempt := 1; ; attempt++ {
		if r.closed.Load() {
			return
		}
		if r.restartOnce(s) {
			s.restarts.Add(1)
			s.breaker.ToHalfOpen()
			r.cfg.Logf("shard %d: restarted (attempt %d)", s.id, attempt)
			return
		}
		time.Sleep(restartBackoff)
	}
}

// restartOnce is one rebuild attempt. It runs under the pool swap
// barrier's read side: a params swap committing mid-rebuild would
// otherwise let this core pack int8 weights from half-written tensors
// and warm caches stamped with a version the pool no longer serves.
// Lock order (swapMu → ingestMu → engine gates) holds: the commit path
// never takes ingestMu.
func (r *Router) restartOnce(s *Shard) bool {
	r.swapMu.RLock()
	defer r.swapMu.RUnlock()
	// Capture a stable prefix of the log. Appends may grow r.log past n
	// concurrently, but entries below n are immutable and the full
	// slice expression pins the prefix against reallocation races.
	r.ingestMu.Lock()
	n := len(r.log)
	prefix := r.log[:n:n]
	r.ingestMu.Unlock()

	c, err := r.buildCore(s.id, prefix)
	if err != nil {
		r.cfg.Logf("shard %d: rebuild failed: %v", s.id, err)
		return false
	}
	r.loadSnapshot(s.id, c, prefix)

	// Catch up on edges broadcast during the rebuild and swap the core
	// in atomically with respect to Apply, so none are missed.
	r.ingestMu.Lock()
	for _, e := range r.log[n:] {
		// nil divergence counter: replay trusts the replica's own
		// ingest decision, there is no authoritative outcome to check.
		applyToCore(c, e, graph.IngestDropped, nil)
	}
	old := s.swapCore(c)
	s.crashed.Store(false)
	r.ingestMu.Unlock()

	if old != nil {
		// Close what can be closed; a poisoned core may refuse.
		if cerr := old.close(); cerr != nil {
			r.cfg.Logf("shard %d: old core close: %v", s.id, cerr)
		}
	}
	return true
}

// snapshotPaths returns the cache blob and log-position sidecar paths
// for a shard.
func (r *Router) snapshotPaths(id int) (cache, pos string) {
	return filepath.Join(r.cfg.SnapshotDir, fmt.Sprintf("shard-%d.tgc", id)),
		filepath.Join(r.cfg.SnapshotDir, fmt.Sprintf("shard-%d.pos", id))
}

// SaveSnapshots persists every live shard's memo caches plus the edge-
// log position the snapshot is valid for. The position is captured
// BEFORE the cache save starts: entries stored concurrently with the
// save against newer edges are then redundantly re-invalidated on
// restore, which is safe — recording the position after the save could
// silently skip invalidations instead.
func (r *Router) SaveSnapshots() error {
	if r.cfg.SnapshotDir == "" {
		return fmt.Errorf("shard: no snapshot dir configured")
	}
	var first error
	for _, s := range r.shards {
		if s.crashed.Load() {
			continue
		}
		c := s.currentCore()
		if c == nil {
			continue
		}
		r.ingestMu.Lock()
		pos := int64(len(r.log))
		r.ingestMu.Unlock()
		cachePath, posPath := r.snapshotPaths(s.id)
		err := c.eng.SaveCachesFS(r.cfg.FS, cachePath)
		if err == nil {
			err = writePos(r.cfg.FS, posPath, pos)
		}
		if err != nil {
			r.snapshotErrors.Add(1)
			if first == nil {
				first = fmt.Errorf("shard %d: %w", s.id, err)
			}
			continue
		}
		r.snapshotSaves.Add(1)
	}
	return first
}

// WarmStart loads every shard's snapshot at boot (before traffic).
// Missing snapshots cold-start silently; corrupt ones are counted and
// cold-start. Returns the number of shards warmed.
func (r *Router) WarmStart() int {
	if r.cfg.SnapshotDir == "" {
		return 0
	}
	warmed := 0
	// Same barrier as restartOnce: snapshot loads validate their stored
	// model-version stamp against the engine's, so a swap landing
	// mid-warm must not interleave.
	r.swapMu.RLock()
	defer r.swapMu.RUnlock()
	r.ingestMu.Lock()
	prefix := r.log[:len(r.log):len(r.log)]
	r.ingestMu.Unlock()
	for _, s := range r.shards {
		c := s.currentCore()
		if c == nil {
			continue
		}
		if r.loadSnapshot(s.id, c, prefix) {
			warmed++
		}
	}
	return warmed
}

// loadSnapshot warms one freshly built core from the shard's last
// snapshot, if it exists, validates, and is not newer than the log
// prefix the core was built from. Edges in log[pos:] — ingested after
// the snapshot was taken — get their invalidation re-run, since the
// snapshot may hold entries those edges already invalidated in the
// live engine. Any problem means cold start (correctness never
// depends on the snapshot).
func (r *Router) loadSnapshot(id int, c *shardCore, prefix []graph.Edge) bool {
	if r.cfg.SnapshotDir == "" {
		return false
	}
	cachePath, posPath := r.snapshotPaths(id)
	pos, err := readPos(r.cfg.FS, posPath)
	if err != nil {
		return false // no (or unreadable) sidecar: cold start
	}
	if pos < 0 || pos > int64(len(prefix)) {
		// Snapshot is ahead of the prefix this core knows about (or
		// nonsense); replaying invalidations would be unsound.
		r.snapshotErrors.Add(1)
		r.cfg.Logf("shard %d: snapshot position %d outside log (%d); cold start", id, pos, len(prefix))
		return false
	}
	if err := c.eng.LoadCachesFS(r.cfg.FS, cachePath); err != nil {
		r.snapshotErrors.Add(1)
		r.cfg.Logf("shard %d: snapshot load: %v; cold start", id, err)
		return false
	}
	// InvalidateLateEdge rather than InvalidateAppend: the latter's
	// no-future-memos fast path would skip the scan on a fresh engine,
	// and the restored entries are exactly such future memos.
	for _, e := range prefix[pos:] {
		c.eng.InvalidateLateEdge(e.Src, e.Dst, e.Time)
	}
	r.snapshotLoads.Add(1)
	return true
}

// writePos persists an edge-log position through the checkpoint
// envelope (checksummed, atomically replaced).
func writePos(fsys checkpoint.FS, path string, pos int64) error {
	return checkpoint.WriteFS(fsys, path, posVersion, func(w io.Writer) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(pos))
		_, err := w.Write(buf[:])
		return err
	})
}

// readPos reads a position written by writePos.
func readPos(fsys checkpoint.FS, path string) (int64, error) {
	var pos int64
	err := checkpoint.ReadFS(fsys, path, func(version uint32, rd io.Reader) error {
		if version != posVersion {
			return fmt.Errorf("shard: pos sidecar version %d", version)
		}
		var buf [8]byte
		if _, err := io.ReadFull(rd, buf[:]); err != nil {
			return err
		}
		pos = int64(binary.LittleEndian.Uint64(buf[:]))
		return nil
	})
	return pos, err
}
