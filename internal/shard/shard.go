// Package shard partitions a TGOpt serving engine into N independent
// failure domains. Each shard owns a complete replica of the edge
// stream (a private graph.Dynamic), its own engine with private memo
// caches and arena pool, and — when batching is enabled — its own
// single-flight batcher. Compute and memo state are partitioned by a
// consistent hash over node ids; storage is deliberately replicated,
// which is what lets any shard compute any target bitwise-identically
// and makes fallback and hedged reads sound.
//
// A Router scatter-gathers embed calls across the shards under a
// robustness envelope: per-shard deadline budgets, a rolling-error-rate
// circuit breaker per shard, optional hedged reads after a p99-derived
// delay, and degraded partial responses when a shard cannot answer. A
// supervisor rebuilds a crashed shard from its last cache snapshot plus
// the router's edge log while the breaker routes traffic around it.
// See DESIGN.md §13.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
)

// errShardPanic wraps a panic recovered on a shard's direct (unbatched)
// compute path. The batched path surfaces batcher.ErrPassPanicked
// instead; isPanic recognizes both.
var errShardPanic = errors.New("shard: engine pass panicked")

// ErrShardDown is returned for calls that reach a shard whose core has
// been torn down for restart.
var ErrShardDown = errors.New("shard: shard is down for restart")

// isPanic reports whether err means the shard's engine panicked (on
// either the direct or the batched path) — the signal that tears the
// shard down and triggers a supervisor restart.
func isPanic(err error) bool {
	return errors.Is(err, errShardPanic) || errors.Is(err, batcher.ErrPassPanicked)
}

// shardCore is the replaceable heart of a shard: the edge-stream
// replica, the engine over it, and the optional batcher. A crash
// discards the whole core (a panic may have poisoned its locks) and the
// supervisor swaps in a freshly built one.
type shardCore struct {
	dyn *graph.Dynamic
	eng *core.Engine
	emb core.Embedder // eng, possibly wrapped by Config.WrapEmbedder
	bat *batcher.Batcher
}

// close releases the core's engine resources. A crashed core may be in
// an arbitrary state, so the close is panic-protected.
func (c *shardCore) close() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("shard: core close panicked: %v", rec)
		}
	}()
	return c.eng.Close()
}

// Shard is one failure domain: a core plus the health machinery the
// router consults (breaker, latency histogram, crash flags).
type Shard struct {
	id int
	r  *Router

	// coreMu guards the core pointer swap on restart; calls hold RLock
	// only long enough to copy the pointer, never across compute.
	coreMu sync.RWMutex
	core   *shardCore

	breaker *Breaker
	lat     *stats.Histogram // per-leg latency, feeds the hedge delay

	// crashed marks the shard torn down (panic observed) until the
	// supervisor swaps in a rebuilt core; restarting is the supervisor's
	// single-flight latch.
	crashed    atomic.Bool
	restarting atomic.Bool

	calls    atomic.Int64
	errs     atomic.Int64
	timeouts atomic.Int64
	panics   atomic.Int64
	restarts atomic.Int64
}

// currentCore returns the live core, or nil while torn down.
func (s *Shard) currentCore() *shardCore {
	s.coreMu.RLock()
	defer s.coreMu.RUnlock()
	return s.core
}

// swapCore installs a rebuilt core and returns the old one.
func (s *Shard) swapCore(c *shardCore) *shardCore {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	old := s.core
	s.core = c
	return old
}

// Admit reports whether the shard may take a call right now (not
// crashed, breaker allows). A true return consumes a half-open probe
// token when applicable, so the caller must follow with exactly one
// call (whose outcome is recorded by call itself).
func (s *Shard) Admit() bool {
	if s.crashed.Load() {
		return false
	}
	return s.breaker.Allow()
}

// call runs one embed leg on this shard and feeds the outcome to the
// breaker. The returned slab is len(nodes)×dim, row i for nodes[i].
func (s *Shard) call(ctx context.Context, nodes []int32, ts []float64) ([]float32, error) {
	c := s.currentCore()
	if c == nil || s.crashed.Load() {
		err := ErrShardDown
		s.errs.Add(1)
		s.breaker.Record(OutcomeFailure)
		return nil, err
	}
	s.calls.Add(1)
	start := time.Now()
	var slab []float32
	var err error
	if c.bat != nil {
		slab, err = c.bat.Embed(ctx, nodes, ts)
	} else {
		slab, err = s.direct(ctx, c, nodes, ts)
	}
	s.observe(start, err)
	return slab, err
}

// direct is the unbatched compute path: the engine pass runs in its own
// goroutine (the shard's panic domain) while the caller stays
// cancelable on ctx.
func (s *Shard) direct(ctx context.Context, c *shardCore, nodes []int32, ts []float64) ([]float32, error) {
	type result struct {
		slab []float32
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				// The arena is deliberately not returned to the pool: a
				// panic mid-pass may have left it in an arbitrary state.
				ch <- result{nil, fmt.Errorf("%w: %v", errShardPanic, rec)}
			}
		}()
		ar := tensor.GetArena()
		h := c.emb.EmbedWith(ar, nodes, ts)
		d := c.emb.Dim()
		slab := make([]float32, len(nodes)*d)
		copy(slab, h.Data()[:len(slab)])
		tensor.PutArena(ar)
		ch <- result{slab, nil}
	}()
	select {
	case r := <-ch:
		return r.slab, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// observe classifies one finished leg for the breaker and counters, and
// escalates panics to the supervisor.
func (s *Shard) observe(start time.Time, err error) {
	s.lat.Observe(time.Since(start))
	switch {
	case err == nil:
		s.breaker.Record(OutcomeSuccess)
	case errors.Is(err, context.Canceled):
		// The client went away; that says nothing about shard health.
		s.breaker.Record(OutcomeNeutral)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.breaker.Record(OutcomeFailure)
	case isPanic(err):
		s.panics.Add(1)
		s.breaker.Record(OutcomeFailure)
		s.r.crash(s, err)
	default:
		s.errs.Add(1)
		s.breaker.Record(OutcomeFailure)
	}
}

// Healthy reports whether the router should count this shard toward
// quorum: not crashed, and its breaker either admitting traffic or
// ready to start half-open probes (see Breaker.Eligible for why a
// State-based check would deadlock a fully-open pool).
func (s *Shard) Healthy() bool {
	return !s.crashed.Load() && s.breaker.Eligible()
}

// Status is one shard's row in Router.Stats.
type Status struct {
	ID       int    `json:"id"`
	Breaker  string `json:"breaker"`
	Crashed  bool   `json:"crashed"`
	Calls    int64  `json:"calls"`
	Errors   int64  `json:"errors"`
	Timeouts int64  `json:"timeouts"`
	Panics   int64  `json:"panics"`
	Restarts int64  `json:"restarts"`

	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`

	CacheItems int   `json:"cache_items"`
	CacheBytes int64 `json:"cache_bytes"`
	GraphEdges int   `json:"graph_edges"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

func (s *Shard) status() Status {
	opens, halfOpens, closes := s.breaker.Transitions()
	st := Status{
		ID:               s.id,
		Breaker:          s.breaker.State().String(),
		Crashed:          s.crashed.Load(),
		Calls:            s.calls.Load(),
		Errors:           s.errs.Load(),
		Timeouts:         s.timeouts.Load(),
		Panics:           s.panics.Load(),
		Restarts:         s.restarts.Load(),
		BreakerOpens:     opens,
		BreakerHalfOpens: halfOpens,
		BreakerCloses:    closes,
		LatencyP50Ms:     float64(s.lat.Quantile(0.5)) / float64(time.Millisecond),
		LatencyP99Ms:     float64(s.lat.Quantile(0.99)) / float64(time.Millisecond),
	}
	if c := s.currentCore(); c != nil {
		st.CacheItems = c.eng.CacheLen()
		st.CacheBytes = c.eng.CacheBytes()
		st.GraphEdges = c.dyn.NumEdges()
	}
	return st
}
