package shard

import (
	"testing"
	"time"
)

// testBreaker returns a breaker with a deterministic, manually advanced
// clock.
func testBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerOpensOnErrorRate(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 10, Threshold: 0.5, MinSamples: 4})
	// Three failures: below MinSamples, must stay closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(OutcomeFailure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state before MinSamples = %v, want closed", got)
	}
	b.Record(OutcomeFailure) // 4/4 failures >= 0.5
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside cooldown")
	}
	opens, _, _ := b.Transitions()
	if opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}
}

func TestBreakerNeutralOutcomesDoNotOpen(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 8, Threshold: 0.5, MinSamples: 4})
	// Many client cancellations say nothing about shard health.
	for i := 0; i < 50; i++ {
		b.Allow()
		b.Record(OutcomeNeutral)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after neutrals = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbesAndClose(t *testing.T) {
	cool := 100 * time.Millisecond
	b, now := testBreaker(BreakerConfig{Window: 8, Threshold: 0.5, MinSamples: 2, Cooldown: cool, Probes: 2})
	b.ForceOpen()
	if b.Allow() {
		t.Fatal("admitted inside cooldown")
	}
	*now = now.Add(cool + time.Millisecond)
	// Cooldown elapsed: exactly Probes calls are admitted.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe budget")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("admitted beyond the probe budget")
	}
	b.Record(OutcomeSuccess)
	b.Record(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probes = %v, want closed", got)
	}
	opens, halfOpens, closes := b.Transitions()
	if opens != 1 || halfOpens != 1 || closes != 1 {
		t.Fatalf("transitions = (%d,%d,%d), want (1,1,1)", opens, halfOpens, closes)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	cool := 50 * time.Millisecond
	b, now := testBreaker(BreakerConfig{Cooldown: cool, Probes: 3})
	b.ForceOpen()
	*now = now.Add(cool * 2)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(OutcomeFailure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted before a fresh cooldown")
	}
}

func TestBreakerNeutralReturnsProbeToken(t *testing.T) {
	cool := 50 * time.Millisecond
	b, now := testBreaker(BreakerConfig{Cooldown: cool, Probes: 1})
	b.ForceOpen()
	*now = now.Add(cool * 2)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if b.Allow() {
		t.Fatal("second probe admitted with budget 1")
	}
	// The probe's client went away: its token must come back.
	b.Record(OutcomeNeutral)
	if !b.Allow() {
		t.Fatal("token not returned after neutral probe outcome")
	}
	b.Record(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerEligibleAfterCooldown pins the quorum-recovery contract:
// an open breaker becomes Eligible (counts toward quorum) the moment
// its cooldown elapses, even though no Allow has performed the
// half-open transition yet. Without this, a pool whose every breaker
// opened on error rate would be rejected by the quorum pre-check
// forever and no probe could ever run.
func TestBreakerEligibleAfterCooldown(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{Window: 8, MinSamples: 2, Cooldown: 100 * time.Millisecond})
	if !b.Eligible() {
		t.Fatal("closed breaker must be eligible")
	}
	b.Record(OutcomeFailure)
	b.Record(OutcomeFailure)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Eligible() {
		t.Fatal("freshly opened breaker must not be eligible")
	}
	*clk = clk.Add(100 * time.Millisecond)
	if !b.Eligible() {
		t.Fatal("cooldown elapsed: breaker must be eligible before any Allow")
	}
	if b.State() != BreakerOpen {
		t.Fatal("Eligible must not itself transition state")
	}
	if !b.Allow() {
		t.Fatal("first post-cooldown Allow must grant a probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if !b.Eligible() {
		t.Fatal("half-open breaker must stay eligible while probing")
	}
}

func TestBreakerSupervisorToHalfOpen(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Cooldown: time.Hour, Probes: 1})
	b.ForceOpen()
	if b.Allow() {
		t.Fatal("hour-long cooldown admitted a call")
	}
	// The supervisor finished a restart: probes flow immediately.
	b.ToHalfOpen()
	if !b.Allow() {
		t.Fatal("half-open after restart refused its probe")
	}
	b.Record(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 4, Threshold: 0.6, MinSamples: 4})
	// 2 failures then enough successes to push them out of the window.
	b.Record(OutcomeFailure)
	b.Record(OutcomeFailure)
	for i := 0; i < 4; i++ {
		b.Record(OutcomeSuccess)
	}
	// Window is now all successes; one more failure is 1/4 < 0.6.
	b.Record(OutcomeFailure)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (stale failures slid out)", got)
	}
}
