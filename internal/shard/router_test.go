package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

const (
	testNodes = 24
	testDim   = 16
)

// testModel builds the deterministic small model shared by every shard
// test (same shape as the serve package's fixture).
func testModel(t *testing.T) *tgat.Model {
	t.Helper()
	const maxEdges = 4096
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, testNodes+1, testDim)
	edgeFeat := tensor.Randn(r, maxEdges+1, testDim)
	for j := 0; j < testDim; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: testDim, EdgeDim: testDim, TimeDim: testDim, NumNeighbors: 4, Seed: 2}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testEdges is a deterministic chronological workload.
func testEdges(n int) []graph.Edge {
	rng := rand.New(rand.NewSource(7))
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{
			Src:  int32(1 + rng.Intn(testNodes-1)),
			Dst:  int32(1 + rng.Intn(testNodes-1)),
			Time: float64(10 * (i + 1)),
		})
	}
	return edges
}

// seededDynamic returns a dynamic graph pre-loaded with edges.
func seededDynamic(t *testing.T, edges []graph.Edge) *graph.Dynamic {
	t.Helper()
	dyn := graph.NewDynamic(testNodes)
	for _, e := range edges {
		if _, _, err := dyn.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	return dyn
}

// referenceSlab computes the ground-truth embedding slab on a plain
// unsharded engine over the same stream.
func referenceSlab(t *testing.T, m *tgat.Model, edges []graph.Edge, nodes []int32, ts []float64) []float32 {
	t.Helper()
	dyn := seededDynamic(t, edges)
	sampler := graph.NewDynamicSampler(dyn, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	eng := core.NewEngine(m, sampler, core.OptAll())
	defer eng.Close()
	h := eng.Embed(nodes, ts)
	out := make([]float32, len(nodes)*m.Cfg.NodeDim)
	copy(out, h.Data()[:len(out)])
	return out
}

func newTestRouter(t *testing.T, m *tgat.Model, edges []graph.Edge, cfg Config) *Router {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	r, err := NewRouter(m, seededDynamic(t, edges), core.OptAll(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// embedQuery is a mixed query batch with duplicates and repeated nodes
// at different times, exercising gather ordering.
func embedQuery() ([]int32, []float64) {
	nodes := []int32{1, 5, 3, 1, 9, 12, 5, 1, 17, 3, 20, 7}
	ts := make([]float64, len(nodes))
	for i := range ts {
		ts[i] = 1000
	}
	// Two targets at a distinct time: same node, different memo key.
	ts[3] = 900
	ts[7] = 900
	return nodes, ts
}

// TestRouterMatchesUnshardedBitwise pins the core contract: a scatter-
// gathered embed equals a single-engine embed bit for bit, rows in
// exact input order, duplicates included.
func TestRouterMatchesUnshardedBitwise(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)

	for _, shards := range []int{2, 4, 7} {
		r := newTestRouter(t, m, edges, Config{Shards: shards})
		res, err := r.Embed(context.Background(), nodes, ts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Partial || len(res.Degraded) != 0 {
			t.Fatalf("shards=%d: unexpected degradation %v", shards, res.Degraded)
		}
		for i := range want {
			if res.Slab[i] != want[i] {
				t.Fatalf("shards=%d: slab[%d] = %v, want %v (not bitwise identical)", shards, i, res.Slab[i], want[i])
			}
		}
	}
}

// TestRouterBatchedMatchesUnsharded repeats the bitwise check with
// per-shard batchers enabled and concurrent requests, and checks the
// aggregated batcher stats show cross-request single-flight dedup.
func TestRouterBatchedMatchesUnsharded(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)

	r := newTestRouter(t, m, edges, Config{
		Shards: 4,
		Batch:  &batcher.Config{Window: 2 * time.Millisecond, MaxBatch: 64},
	})

	const reqs = 16
	errs := make(chan error, reqs)
	for i := 0; i < reqs; i++ {
		go func() {
			res, err := r.Embed(context.Background(), nodes, ts)
			if err != nil {
				errs <- err
				return
			}
			if res.Partial {
				errs <- errors.New("unexpected partial")
				return
			}
			for i := range want {
				if res.Slab[i] != want[i] {
					errs <- fmt.Errorf("slab[%d] = %v, want %v", i, res.Slab[i], want[i])
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < reqs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Batching == nil {
		t.Fatal("batching stats missing")
	}
	if st.Batching.Coalesced == 0 {
		t.Error("16 identical concurrent requests coalesced nothing; single-flight dedup not effective across shards")
	}
}

// TestRouterIngestInvalidatesReplicas pins that Apply keeps every
// replica's caches exact: embeddings after a broadcast append match a
// reference engine that saw the same stream.
func TestRouterIngestInvalidatesReplicas(t *testing.T) {
	m := testModel(t)
	edges := testEdges(40)
	r := newTestRouter(t, m, edges, Config{Shards: 3})

	nodes, ts := embedQuery()
	if _, err := r.Embed(context.Background(), nodes, ts); err != nil {
		t.Fatal(err) // warm the memo caches so invalidation has work
	}

	// Append edges that land inside the queried windows.
	extra := []graph.Edge{
		{Src: 1, Dst: 5, Time: 850},
		{Src: 3, Dst: 9, Time: 950},
	}
	for _, e := range extra {
		r.Apply(e, graph.IngestAppended)
	}
	all := append(append([]graph.Edge(nil), edges...), extra...)
	want := referenceSlab(t, m, all, nodes, ts)
	res, err := r.Embed(context.Background(), nodes, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Slab[i] != want[i] {
			t.Fatalf("post-ingest slab[%d] = %v, want %v", i, res.Slab[i], want[i])
		}
	}
	if d := r.Stats().Divergence; d != 0 {
		t.Fatalf("replica divergence = %d, want 0", d)
	}
}

// panicEmbedder wraps a shard's engine and panics while armed.
type panicEmbedder struct {
	core.Embedder
	armed func() bool
}

func (p *panicEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if p.armed() {
		panic("injected shard fault")
	}
	return p.Embedder.EmbedWith(ar, nodes, ts)
}

// TestRouterDegradedPartial pins the partial-response contract: with
// fallbacks also broken, a dead primary degrades exactly its own rows
// and leaves every other row bitwise intact.
func TestRouterDegradedPartial(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)

	// Every shard faulty: any leg (primary or fallback) panics while
	// armed, so the affected group degrades rather than failing over.
	var armed atomic.Bool
	r := newTestRouter(t, m, edges, Config{
		Shards: 4,
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return &panicEmbedder{Embedder: e, armed: armed.Load}
		},
	})

	badShard := r.Owner(nodes[0])
	var badRows, goodRows []int
	for i, v := range nodes {
		if r.Owner(v) == badShard {
			badRows = append(badRows, i)
		} else {
			goodRows = append(goodRows, i)
		}
	}
	if len(goodRows) == 0 {
		t.Fatal("fixture has no rows outside the faulty shard")
	}

	armed.Store(true)
	res, err := r.Embed(context.Background(), nodes, ts)
	armed.Store(false)
	if err != nil {
		t.Fatalf("degraded request must not fail whole: %v", err)
	}
	if !res.Partial {
		t.Fatal("expected a partial response")
	}
	degraded := map[int]bool{}
	for _, i := range res.Degraded {
		degraded[i] = true
	}
	for _, i := range badRows {
		if !degraded[i] {
			t.Fatalf("row %d (shard %d) should be degraded; got %v", i, badShard, res.Degraded)
		}
	}
	d := r.Dim()
	for _, i := range goodRows {
		if degraded[i] {
			continue // its shard may have been tried as a fallback and failed too
		}
		for j := 0; j < d; j++ {
			if res.Slab[i*d+j] != want[i*d+j] {
				t.Fatalf("non-degraded row %d differs from reference at %d", i, j)
			}
		}
	}
	if st := r.Stats(); st.PartialResponses == 0 || st.DegradedTargets == 0 {
		t.Fatalf("partial counters not recorded: %+v", st)
	}
}

// TestRouterQuorum pins ErrNoQuorum: with quorum = shards and one
// breaker forced open, requests are rejected outright.
func TestRouterQuorum(t *testing.T) {
	m := testModel(t)
	edges := testEdges(30)
	r := newTestRouter(t, m, edges, Config{Shards: 2, Quorum: 2})

	nodes, ts := embedQuery()
	if _, err := r.Embed(context.Background(), nodes, ts); err != nil {
		t.Fatal(err)
	}
	r.shards[0].breaker.ForceOpen()
	_, err := r.Embed(context.Background(), nodes, ts)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if r.Stats().QuorumRejects == 0 {
		t.Fatal("quorum rejection not counted")
	}
}

// slowEmbedder stalls while armed — for hedging and deadline tests.
type slowEmbedder struct {
	core.Embedder
	delay func() time.Duration
}

func (s *slowEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if d := s.delay(); d > 0 {
		time.Sleep(d)
	}
	return s.Embedder.EmbedWith(ar, nodes, ts)
}

// TestRouterHedgedRead pins hedging: a stalled primary is beaten by a
// hedge to a healthy replica, the result is still bitwise correct, and
// the hedge counters move.
func TestRouterHedgedRead(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)

	slowShard := -1
	r := newTestRouter(t, m, edges, Config{
		Shards:     3,
		HedgeDelay: 5 * time.Millisecond,
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return &slowEmbedder{Embedder: e, delay: func() time.Duration {
				if id == slowShard {
					return 300 * time.Millisecond
				}
				return 0
			}}
		},
	})
	slowShard = r.Owner(nodes[0])

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res, err := r.Embed(ctx, nodes, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hedge should have rescued the slow group, got degraded %v", res.Degraded)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedge did not beat the stalled primary (%v)", elapsed)
	}
	for i := range want {
		if res.Slab[i] != want[i] {
			t.Fatalf("hedged slab[%d] differs from reference", i)
		}
	}
	st := r.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge counters = (%d wins %d), want both > 0", st.Hedges, st.HedgeWins)
	}
}

// TestRouterSnapshotRoundTrip pins warm restarts: snapshots saved with
// their log position reload into a fresh router and serve bitwise-
// identical rows, with stale entries invalidated via the log delta.
func TestRouterSnapshotRoundTrip(t *testing.T) {
	m := testModel(t)
	edges := testEdges(40)
	nodes, ts := embedQuery()
	dir := t.TempDir()

	r1 := newTestRouter(t, m, edges, Config{Shards: 3, SnapshotDir: dir})
	if _, err := r1.Embed(context.Background(), nodes, ts); err != nil {
		t.Fatal(err)
	}
	if err := r1.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	if r1.CacheLen() == 0 {
		t.Fatal("fixture produced no cached entries")
	}

	// A new router over the same stream plus two newer edges: the
	// snapshot predates them, so WarmStart must replay invalidation.
	extra := []graph.Edge{{Src: 1, Dst: 5, Time: 850}, {Src: 3, Dst: 9, Time: 950}}
	all := append(append([]graph.Edge(nil), edges...), extra...)
	r2 := newTestRouter(t, m, all, Config{Shards: 3, SnapshotDir: dir})
	if warmed := r2.WarmStart(); warmed != 3 {
		t.Fatalf("warmed %d shards, want 3", warmed)
	}
	want := referenceSlab(t, m, all, nodes, ts)
	res, err := r2.Embed(context.Background(), nodes, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Slab[i] != want[i] {
			t.Fatalf("warm-started slab[%d] = %v, want %v", i, res.Slab[i], want[i])
		}
	}
}

// TestRouterDeadlineNeverHangs pins the no-hang guarantee: with every
// shard stalled well past the deadline, Embed returns by the deadline
// (plus scheduling slack), not when the shards do.
func TestRouterDeadlineNeverHangs(t *testing.T) {
	m := testModel(t)
	edges := testEdges(30)
	r := newTestRouter(t, m, edges, Config{
		Shards: 2,
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return &slowEmbedder{Embedder: e, delay: func() time.Duration { return 2 * time.Second }}
		},
	})
	nodes, ts := embedQuery()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := r.Embed(ctx, nodes, ts)
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("Embed hung %v past a 100ms deadline", elapsed)
	}
	// Legs time out at 90% of the budget, so the request either
	// degrades every row or (if the caller's own deadline won the
	// race) fails with a context error — it never blocks on the
	// stalled shards.
	if err == nil && !res.Partial {
		t.Fatal("stalled shards produced a clean full response")
	}
}
