package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/checkpoint"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tgat"
)

// ErrNoQuorum rejects a request when too few shards are healthy to
// meet the configured quorum. The serving layer maps it to 503 with a
// Retry-After hint.
var ErrNoQuorum = errors.New("shard: healthy shards below quorum")

// Config sizes the shard pool and its robustness envelope.
type Config struct {
	// Shards is the number of failure domains (>= 2; a single-engine
	// deployment should use core.Engine directly).
	Shards int
	// Quorum is the minimum number of healthy shards required to accept
	// a request at all (default 1 — availability-first: serve whatever
	// can be served, degrade the rest).
	Quorum int
	// HedgeDelay enables hedged reads when > 0: if a primary leg has
	// not answered after max(HedgeDelay, observed p99 of that shard's
	// leg latency), the same group is speculatively sent to a fallback
	// shard and the first success wins.
	HedgeDelay time.Duration
	// Breaker configures every shard's circuit breaker.
	Breaker BreakerConfig
	// Batch, when non-nil, gives every shard its own single-flight
	// batcher with this config (targets always hash to the same
	// primary, so dedup keeps working across requests in sharded mode).
	Batch *batcher.Config
	// SnapshotDir, when non-empty, is where per-shard cache snapshots
	// (shard-N.tgc) and their edge-log positions (shard-N.pos) live.
	SnapshotDir string
	// FS overrides the snapshot file system (default checkpoint.OS);
	// fault tests inject faultfs.FS.
	FS checkpoint.FS
	// SwapFS, when non-nil, overrides the file system one shard's
	// prepare phase reads a params checkpoint through during
	// SwapParams (nil return falls back to FS). Fault tests inject a
	// bit-flipping faultfs for exactly one shard to prove the
	// all-or-nothing rollback.
	SwapFS func(shard int) checkpoint.FS
	// ModelVersion is the params version the pool boots serving (see
	// core.Options.ModelVersion); SwapParams advances it.
	ModelVersion uint64
	// WrapEmbedder, when non-nil, wraps each shard's engine before the
	// batcher is attached — the chaos tests use it to inject panics
	// into exactly one failure domain.
	WrapEmbedder func(shard int, e core.Embedder) core.Embedder
	// Logf receives supervisor events (crashes, restarts, snapshot
	// problems). Optional.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.Quorum > c.Shards {
		c.Quorum = c.Shards
	}
	if c.FS == nil {
		c.FS = checkpoint.OS{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Result is one gathered embed response. Slab is len(nodes)×dim in
// exact input order; rows listed in Degraded could not be computed
// (their slab region is zero) and Partial is set.
type Result struct {
	Slab     []float32
	Degraded []int
	Partial  bool
}

// Router owns the shard pool: it scatters embed calls by ring owner,
// gathers rows back in request order, replicates ingest to every live
// shard through an append-only edge log, and supervises crashed shards
// back to life.
type Router struct {
	model *tgat.Model
	opt   core.Options // per-shard options (cache limits already divided)
	cfg   Config
	dim   int

	numNodes int
	lateness float64

	ring   *ring
	shards []*Shard

	// ingestMu orders the edge log: every broadcast Apply and every
	// restart's catch-up replay runs under it, so a rebuilt shard can
	// never miss an edge.
	ingestMu sync.Mutex
	log      []graph.Edge

	// swapMu is the pool-wide hot-swap barrier: Embed holds the read
	// side across its whole scatter-gather (no response ever mixes
	// rows from two model versions) and so does a supervisor rebuild
	// (a core built mid-commit would pack stale weights); SwapParams'
	// commit phase takes the write side. Lock order: swapMu before
	// ingestMu before any engine's swap gate — never the reverse.
	swapMu  sync.RWMutex
	version atomic.Uint64

	closed    atomic.Bool
	restartWG sync.WaitGroup

	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	routedAround  atomic.Int64
	degradedTgts  atomic.Int64
	partials      atomic.Int64
	quorumRejects atomic.Int64
	divergence    atomic.Int64

	snapshotSaves  atomic.Int64
	snapshotErrors atomic.Int64
	snapshotLoads  atomic.Int64
}

// NewRouter builds the shard pool. Every shard gets a full replica of
// dyn's current edge stream (the router's edge log is seeded from it);
// dyn itself stays untouched and should not be mutated afterwards —
// stream new edges through Apply instead. opt is the engine option set
// a single-engine deployment would use: per-shard cache capacities are
// derived by dividing the configured limits by the shard count, so the
// pool's total memo footprint matches the unsharded engine's.
func NewRouter(model *tgat.Model, dyn *graph.Dynamic, opt core.Options, cfg Config) (*Router, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("shard: need at least 2 shards, got %d", cfg.Shards)
	}
	cfg = cfg.withDefaults()
	opt.TrackTargets = true
	if opt.CacheLimit <= 0 {
		opt.CacheLimit = 2_000_000 // engine default, divided below
	}
	opt.CacheLimit = maxInt(1, opt.CacheLimit/cfg.Shards)
	if opt.CacheBudgetBytes > 0 {
		opt.CacheBudgetBytes /= int64(cfg.Shards)
	}
	if opt.CacheSpillMaxBytes > 0 {
		opt.CacheSpillMaxBytes /= int64(cfg.Shards)
	}
	r := &Router{
		model:    model,
		opt:      opt,
		cfg:      cfg,
		dim:      model.Cfg.NodeDim,
		numNodes: dyn.NumNodes(),
		lateness: dyn.Lateness(),
		ring:     newRing(cfg.Shards),
		log:      append([]graph.Edge(nil), dyn.Edges()...),
	}
	r.version.Store(cfg.ModelVersion)
	if cfg.SnapshotDir != "" {
		if err := cfg.FS.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: snapshot dir: %w", err)
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		c, err := r.buildCore(i, r.log)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s := &Shard{id: i, r: r, core: c, breaker: NewBreaker(cfg.Breaker), lat: stats.NewHistogram()}
		r.shards = append(r.shards, s)
	}
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildCore constructs one shard's replica + engine + batcher from a
// prefix of the edge log. Engine construction panics (bad spill dir,
// …) are converted to errors so a failed rebuild cannot take the
// supervisor down with it.
func (r *Router) buildCore(id int, prefix []graph.Edge) (c *shardCore, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, err = nil, fmt.Errorf("shard: core build panicked: %v", rec)
		}
	}()
	dyn := graph.NewDynamic(r.numNodes)
	if r.lateness > 0 {
		dyn.SetLateness(r.lateness)
	}
	for _, e := range prefix {
		if _, _, ierr := dyn.Ingest(e); ierr != nil {
			return nil, fmt.Errorf("shard: replica replay: %w", ierr)
		}
	}
	opt := r.opt
	if opt.CacheSpillDir != "" {
		opt.CacheSpillDir = filepath.Join(opt.CacheSpillDir, fmt.Sprintf("shard-%d", id))
	}
	// The rebuilt engine serves whatever version the shared model
	// carries NOW — not the boot-time one — so spill recovery and
	// snapshot loads validate against the current version. Callers on
	// the restart path hold swapMu's read side, which keeps this
	// consistent with the shared tensors across the build.
	opt.ModelVersion = r.version.Load()
	sampler := graph.NewDynamicSampler(dyn, r.model.Cfg.NumNeighbors, graph.MostRecent, 0)
	eng := core.NewEngine(r.model, sampler, opt)
	emb := core.Embedder(eng)
	if r.cfg.WrapEmbedder != nil {
		emb = r.cfg.WrapEmbedder(id, emb)
	}
	sc := &shardCore{dyn: dyn, eng: eng, emb: emb}
	if r.cfg.Batch != nil {
		sc.bat = batcher.New(emb, r.dim, *r.cfg.Batch)
		eng.SetInvalidationHook(func(u, v int32, t float64) {
			sc.bat.RetireTargets([]int32{u, v}, t)
		})
	}
	return sc, nil
}

// Dim returns the embedding width of gathered rows.
func (r *Router) Dim() int { return r.dim }

// Shards returns the pool size.
func (r *Router) Shards() int { return len(r.shards) }

// Quorum returns the healthy-shard count required to accept requests.
func (r *Router) Quorum() int { return r.cfg.Quorum }

// Owner returns the primary shard for a node id (exposed for tests and
// introspection).
func (r *Router) Owner(node int32) int { return r.ring.Owner(node) }

// HealthyShards counts shards currently eligible for quorum.
func (r *Router) HealthyShards() int {
	n := 0
	for _, s := range r.shards {
		if s.Healthy() {
			n++
		}
	}
	return n
}

// Embed scatters (nodes, ts) across the pool by ring owner and gathers
// the rows back in exact input order. Shard failures degrade the
// affected rows (Result.Degraded, zero-filled slab regions) instead of
// failing the request; only a below-quorum pool (ErrNoQuorum) or the
// caller's own context expiring fail the whole call.
func (r *Router) Embed(ctx context.Context, nodes []int32, ts []float64) (*Result, error) {
	if len(nodes) != len(ts) {
		return nil, fmt.Errorf("shard: %d nodes vs %d times", len(nodes), len(ts))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The whole scatter-gather runs under the pool swap barrier: a
	// params swap committing between two legs of one request would
	// otherwise gather rows from two model versions into one slab.
	r.swapMu.RLock()
	defer r.swapMu.RUnlock()
	if h := r.HealthyShards(); h < r.cfg.Quorum {
		r.quorumRejects.Add(1)
		return nil, fmt.Errorf("%w: %d healthy of %d, quorum %d", ErrNoQuorum, h, len(r.shards), r.cfg.Quorum)
	}
	res := &Result{Slab: make([]float32, len(nodes)*r.dim)}
	if len(nodes) == 0 {
		return res, nil
	}

	// Group target indices by primary shard.
	groups := make(map[int][]int)
	for i, v := range nodes {
		sid := r.ring.Owner(v)
		groups[sid] = append(groups[sid], i)
	}

	var (
		mu       sync.Mutex
		degraded []int
		wg       sync.WaitGroup
	)
	for sid, idxs := range groups {
		wg.Add(1)
		go func(sid int, idxs []int) {
			defer wg.Done()
			gn := make([]int32, len(idxs))
			gt := make([]float64, len(idxs))
			for j, i := range idxs {
				gn[j], gt[j] = nodes[i], ts[i]
			}
			legCtx, cancel := r.legContext(ctx)
			defer cancel()
			rows, err := r.callWithFailover(legCtx, sid, gn, gt)
			if err != nil {
				r.degradedTgts.Add(int64(len(idxs)))
				mu.Lock()
				degraded = append(degraded, idxs...)
				mu.Unlock()
				return
			}
			d := r.dim
			for j, i := range idxs {
				copy(res.Slab[i*d:(i+1)*d], rows[j*d:(j+1)*d])
			}
		}(sid, idxs)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller's own deadline/cancel expired; partials would be
		// misleading (legs were cut short, not shards unhealthy).
		return nil, err
	}
	if len(degraded) > 0 {
		sort.Ints(degraded)
		res.Degraded = degraded
		res.Partial = true
		r.partials.Add(1)
	}
	return res, nil
}

// legContext budgets one scatter leg at 90% of the caller's remaining
// deadline, reserving headroom to gather and respond (and to classify
// a slow shard as degraded rather than blowing the whole request).
func (r *Router) legContext(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	rem := time.Until(dl)
	return context.WithDeadline(ctx, time.Now().Add(rem*9/10))
}

// callWithFailover runs one group on its primary shard, hedging and
// failing over to the next admitting shard per config. Any shard can
// serve any group because every replica holds the full stream.
func (r *Router) callWithFailover(ctx context.Context, primary int, gn []int32, gt []float64) ([]float32, error) {
	p := r.shards[primary]
	if !p.Admit() {
		// Breaker open or shard torn down: route around it.
		r.routedAround.Add(1)
		if fb := r.admitFallback(primary); fb != nil {
			return fb.call(ctx, gn, gt)
		}
		return nil, ErrShardDown
	}
	if r.cfg.HedgeDelay > 0 {
		return r.hedged(ctx, primary, gn, gt)
	}
	rows, err := p.call(ctx, gn, gt)
	if err == nil {
		return rows, nil
	}
	if ctx.Err() != nil {
		// No budget left to retry elsewhere.
		return nil, err
	}
	if fb := r.admitFallback(primary); fb != nil {
		return fb.call(ctx, gn, gt)
	}
	return nil, err
}

// admitFallback finds the next shard after primary whose breaker admits
// a call. A non-nil return has consumed its admission (half-open probe
// token), so the caller must issue exactly one call on it.
func (r *Router) admitFallback(primary int) *Shard {
	n := len(r.shards)
	for k := 1; k < n; k++ {
		s := r.shards[(primary+k)%n]
		if s.Admit() {
			return s
		}
	}
	return nil
}

// hedgeDelayFor derives the effective hedge delay for a shard: the
// configured floor, raised to the shard's observed p99 leg latency so
// hedges fire on genuine stragglers rather than on every call.
func (r *Router) hedgeDelayFor(s *Shard) time.Duration {
	d := r.cfg.HedgeDelay
	if p99 := s.lat.Quantile(0.99); p99 > d {
		d = p99
	}
	return d
}

// hedged runs the primary leg and, after the hedge delay (or an early
// primary failure), a fallback leg; the first success wins and the
// loser is canceled.
func (r *Router) hedged(ctx context.Context, primary int, gn []int32, gt []float64) ([]float32, error) {
	p := r.shards[primary]
	type legResult struct {
		rows  []float32
		err   error
		hedge bool
	}
	legCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan legResult, 2)
	go func() {
		rows, err := p.call(legCtx, gn, gt)
		ch <- legResult{rows, err, false}
	}()
	outstanding := 1
	hedgeFired := false
	launchHedge := func(speculative bool) {
		hedgeFired = true
		fb := r.admitFallback(primary)
		if fb == nil {
			return
		}
		if speculative {
			r.hedges.Add(1)
		}
		outstanding++
		go func() {
			rows, err := fb.call(legCtx, gn, gt)
			ch <- legResult{rows, err, true}
		}()
	}
	timer := time.NewTimer(r.hedgeDelayFor(p))
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				if res.hedge {
					r.hedgeWins.Add(1)
				}
				return res.rows, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			outstanding--
			if !hedgeFired && ctx.Err() == nil {
				launchHedge(false) // primary failed outright: plain failover
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedgeFired {
				launchHedge(true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Apply replicates one accepted edge to every live shard and returns
// the summed count of memo entries selectively invalidated across the
// pool. want is the ingest outcome the authoritative graph reported;
// a replica disagreeing is counted as divergence (a tripwire, not a
// failure — the replica's own decision stands for its caches).
// Crashed shards are skipped; they catch up from the edge log when the
// supervisor rebuilds them.
func (r *Router) Apply(e graph.Edge, want graph.IngestResult) (invalidated int) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.log = append(r.log, e)
	for _, s := range r.shards {
		if s.crashed.Load() {
			continue
		}
		c := s.currentCore()
		if c == nil {
			continue
		}
		invalidated += applyToCore(c, e, want, &r.divergence)
	}
	return invalidated
}

// applyToCore ingests one edge into a replica and runs the matching
// cache invalidation, counting divergence from the authoritative
// outcome.
func applyToCore(c *shardCore, e graph.Edge, want graph.IngestResult, divergence *atomic.Int64) int {
	res, _, err := c.dyn.Ingest(e)
	if err != nil {
		if divergence != nil {
			divergence.Add(1)
		}
		return 0
	}
	if divergence != nil && res != want {
		divergence.Add(1)
	}
	switch res {
	case graph.IngestAppended:
		return c.eng.InvalidateAppend(e.Src, e.Dst, e.Time)
	case graph.IngestLate:
		return c.eng.InvalidateLateEdge(e.Src, e.Dst, e.Time)
	}
	return 0
}

// ParamsVersion returns the model version the pool currently serves.
func (r *Router) ParamsVersion() uint64 { return r.version.Load() }

// SwapParams atomically swaps the whole pool to the params checkpoint
// at path, as the given version, in two phases:
//
// Prepare: every shard parses and validates its own read of the
// checkpoint through its own file system (Config.SwapFS). Validation
// covers the envelope CRC, the tensor count, and every shape, so a
// nil-error prepare means the commit below cannot fail. Any shard
// failing — a bit-flipped replica of the file, a torn read — aborts
// the swap before anything mutates: all-or-nothing, the old version
// keeps serving everywhere.
//
// Commit: under the pool swap barrier (in-flight scatter-gathers and
// supervisor rebuilds drained, new ones blocked) and every live
// engine's own swap gate, the shared model's tensors are rewritten
// once and each engine re-derives its version-dependent state —
// re-packed int8 weights, re-built time tables, memo caches dropped
// and re-stamped across hot tier, spill, and pending promotes
// (core.Engine.FinishSwap). Crashed shards are absent by design:
// their supervisor rebuild reads the shared model and the advanced
// pool version, so they come back on the new parameters.
func (r *Router) SwapParams(path string, version uint64) error {
	staged := make([]*tgat.StagedParams, len(r.shards))
	for i := range r.shards {
		fsys := r.cfg.FS
		if r.cfg.SwapFS != nil {
			if f := r.cfg.SwapFS(i); f != nil {
				fsys = f
			}
		}
		sp, err := r.model.ParseParamsFS(fsys, path)
		if err != nil {
			return fmt.Errorf("shard: swap prepare failed on shard %d, rolled back pool-wide: %w", i, err)
		}
		staged[i] = sp
	}

	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	var locked []*core.Engine
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			c.eng.SwapLock()
			locked = append(locked, c.eng)
		}
	}
	// All prepares validated against the same architecture, so any
	// staged copy commits; they are byte-identical when every replica
	// of the file is intact.
	r.model.ApplyParams(staged[0])
	for _, eng := range locked {
		eng.FinishSwap(version)
	}
	for i := len(locked) - 1; i >= 0; i-- {
		locked[i].SwapUnlock()
	}
	r.version.Store(version)
	return nil
}

// RouterStats is the router-level health snapshot for /v1/stats.
type RouterStats struct {
	Shards  []Status `json:"shards"`
	Healthy int      `json:"healthy"`
	Quorum  int      `json:"quorum"`

	Hedges           int64 `json:"hedges"`
	HedgeWins        int64 `json:"hedge_wins"`
	RoutedAround     int64 `json:"routed_around"`
	DegradedTargets  int64 `json:"degraded_targets"`
	PartialResponses int64 `json:"partial_responses"`
	QuorumRejects    int64 `json:"quorum_rejects"`
	Divergence       int64 `json:"replica_divergence"`

	SnapshotSaves  int64 `json:"snapshot_saves"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	SnapshotLoads  int64 `json:"snapshot_loads"`

	ModelVersion uint64 `json:"model_version"`

	Batching *batcher.Snapshot `json:"batching,omitempty"`
}

// Stats snapshots per-shard and router-level health.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Healthy:          r.HealthyShards(),
		Quorum:           r.cfg.Quorum,
		Hedges:           r.hedges.Load(),
		HedgeWins:        r.hedgeWins.Load(),
		RoutedAround:     r.routedAround.Load(),
		DegradedTargets:  r.degradedTgts.Load(),
		PartialResponses: r.partials.Load(),
		QuorumRejects:    r.quorumRejects.Load(),
		Divergence:       r.divergence.Load(),
		SnapshotSaves:    r.snapshotSaves.Load(),
		SnapshotErrors:   r.snapshotErrors.Load(),
		SnapshotLoads:    r.snapshotLoads.Load(),
		ModelVersion:     r.version.Load(),
	}
	for _, s := range r.shards {
		st.Shards = append(st.Shards, s.status())
	}
	if r.cfg.Batch != nil {
		agg := &batcher.Snapshot{}
		for _, s := range r.shards {
			c := s.currentCore()
			if c == nil || c.bat == nil {
				continue
			}
			b := c.bat.Stats()
			agg.Enqueued += b.Enqueued
			agg.Coalesced += b.Coalesced
			agg.Batches += b.Batches
			agg.FlushSize += b.FlushSize
			agg.FlushWindow += b.FlushWindow
			agg.FlushIdle += b.FlushIdle
			agg.FlushDrain += b.FlushDrain
			agg.Panics += b.Panics
			agg.RetireCalls += b.RetireCalls
			agg.Retired += b.Retired
		}
		st.Batching = agg
	}
	return st
}

// Engines returns the live shards' engines (crashed shards omitted) —
// the serving layer aggregates stage-latency histograms across them.
func (r *Router) Engines() []*core.Engine {
	out := make([]*core.Engine, 0, len(r.shards))
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			out = append(out, c.eng)
		}
	}
	return out
}

// CacheLen sums live memo entries across the pool.
func (r *Router) CacheLen() int {
	n := 0
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			n += c.eng.CacheLen()
		}
	}
	return n
}

// CacheBytes sums resident memo bytes across the pool.
func (r *Router) CacheBytes() int64 {
	var n int64
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			n += c.eng.CacheBytes()
		}
	}
	return n
}

// CacheStats sums the tiered-cache counters across the pool.
func (r *Router) CacheStats() core.CacheStats {
	var agg core.CacheStats
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			agg.Add(c.eng.CacheStats())
		}
	}
	return agg
}

// LayerCacheStats merges the per-layer cache counters across the pool:
// every shard runs the same cached-layer layout, so same-layer sections
// add field by field. Returned in layer order.
func (r *Router) LayerCacheStats() []core.LayerCacheStats {
	var out []core.LayerCacheStats
	for _, s := range r.shards {
		c := s.currentCore()
		if c == nil {
			continue
		}
		for _, ls := range c.eng.LayerCacheStats() {
			merged := false
			for i := range out {
				if out[i].Layer == ls.Layer {
					out[i].Items += ls.Items
					out[i].Bytes += ls.Bytes
					out[i].CacheStats.Add(ls.CacheStats)
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, ls)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}

// StaleStoreSkips sums the append-staleness store rejections across the
// pool.
func (r *Router) StaleStoreSkips() int64 {
	var n int64
	for _, s := range r.shards {
		if c := s.currentCore(); c != nil {
			n += c.eng.StaleStoreSkips()
		}
	}
	return n
}

// Close tears the pool down: waits out in-flight restarts, then closes
// every engine. Safe to call more than once.
func (r *Router) Close() error {
	r.closed.Store(true)
	r.restartWG.Wait()
	var first error
	for _, s := range r.shards {
		if c := s.swapCore(nil); c != nil {
			if err := c.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
