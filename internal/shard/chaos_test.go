package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/faultfs"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
)

// chaosEmbedder injects faults into exactly one failure domain: while
// mode is non-zero, calls on the target shard panic (mode 1) or stall
// (mode 2). Every other shard computes normally.
type chaosEmbedder struct {
	core.Embedder
	shard  int
	target *atomic.Int32 // which shard id misbehaves (set after ring build)
	mode   *atomic.Int32
}

const (
	chaosOff   int32 = 0
	chaosPanic int32 = 1
	chaosStall int32 = 2
)

func (c *chaosEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if int32(c.shard) == c.target.Load() {
		switch c.mode.Load() {
		case chaosPanic:
			panic(fmt.Sprintf("chaos: injected panic on shard %d", c.shard))
		case chaosStall:
			time.Sleep(200 * time.Millisecond)
		}
	}
	return c.Embedder.EmbedWith(ar, nodes, ts)
}

// TestChaosShardPanicUnderLoad is the headline robustness test: under
// concurrent deadline-bounded load, one shard's engine panics
// repeatedly. The run must show (a) every non-degraded row of every
// response bitwise-identical to an unsharded single-engine run, (b) no
// whole-request failures beyond context expiry — shard death degrades,
// never errors, (c) no request outliving its deadline by more than
// scheduling slack, and (d) the breaker opening and then closing again
// after the supervisor restarts the shard.
func TestChaosShardPanicUnderLoad(t *testing.T) {
	m := testModel(t)
	edges := testEdges(60)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)

	var mode, victim atomic.Int32
	victim.Store(-1)
	r := newTestRouter(t, m, edges, Config{
		Shards: 4,
		// A short cooldown so the test observes the full breaker cycle
		// without waiting out the production default.
		Breaker: BreakerConfig{Window: 16, Threshold: 0.5, MinSamples: 2, Cooldown: 20 * time.Millisecond, Probes: 2},
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return &chaosEmbedder{Embedder: e, shard: id, target: &victim, mode: &mode}
		},
	})
	// Make the primary of the first queried node the victim so the
	// fault is guaranteed to sit on the request path.
	victim.Store(int32(r.Owner(nodes[0])))

	const (
		workers    = 8
		perWorker  = 30
		reqTimeout = 500 * time.Millisecond
	)
	var (
		wg          sync.WaitGroup
		hardFails   atomic.Int64
		overruns    atomic.Int64
		misrows     atomic.Int64
		clean       atomic.Int64
		degradedSum atomic.Int64
	)
	d := r.Dim()
	check := func(res *Result) {
		bad := map[int]bool{}
		for _, i := range res.Degraded {
			bad[i] = true
		}
		degradedSum.Add(int64(len(res.Degraded)))
		for i := range nodes {
			if bad[i] {
				continue
			}
			for j := 0; j < d; j++ {
				if res.Slab[i*d+j] != want[i*d+j] {
					misrows.Add(1)
					return
				}
			}
		}
		if !res.Partial {
			clean.Add(1)
		}
	}
	var completed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), reqTimeout)
				start := time.Now()
				res, err := r.Embed(ctx, nodes, ts)
				elapsed := time.Since(start)
				cancel()
				completed.Add(1)
				if elapsed > reqTimeout+300*time.Millisecond {
					overruns.Add(1)
				}
				if err != nil {
					if ctx.Err() == nil {
						hardFails.Add(1) // failed for a non-deadline reason
					}
					continue
				}
				check(res)
			}
		}()
	}

	// Mid-load: arm the panic once a quarter of the workload has flowed
	// (progress-synchronized, not wall-clock — the workload may be
	// arbitrarily fast), keep it armed until the victim demonstrably
	// panicked, then disarm and let the supervisor bring it back while
	// the remaining load keeps flowing.
	total := int64(workers * perWorker)
	waitFor(t, 10*time.Second, func() bool { return completed.Load() >= total/4 })
	mode.Store(chaosPanic)
	waitFor(t, 10*time.Second, func() bool {
		return r.shards[int(victim.Load())].panics.Load() > 0
	})
	mode.Store(chaosOff)
	wg.Wait()

	if n := hardFails.Load(); n != 0 {
		t.Errorf("%d whole-request failures; shard death must degrade, not fail", n)
	}
	if n := overruns.Load(); n != 0 {
		t.Errorf("%d requests overran their deadline", n)
	}
	if n := misrows.Load(); n != 0 {
		t.Errorf("%d responses had non-degraded rows differing from the unsharded reference", n)
	}
	if clean.Load() == 0 {
		t.Error("no clean full responses at all; pool never recovered")
	}

	// The victim must have crashed, restarted, and its breaker cycled.
	// The restart runs on the supervisor goroutine, so wait rather than
	// assert instantaneously.
	vid := int(victim.Load())
	waitFor(t, 5*time.Second, func() bool {
		v := r.Stats().Shards[vid]
		return v.Panics > 0 && v.Restarts > 0 && v.BreakerOpens > 0 && v.BreakerHalfOpens > 0
	})

	// After the storm the pool must settle back to full clean service.
	waitFor(t, 2*time.Second, func() bool {
		res, err := r.Embed(context.Background(), nodes, ts)
		return err == nil && !res.Partial
	})
	res, err := r.Embed(context.Background(), nodes, ts)
	if err != nil || res.Partial {
		t.Fatalf("post-recovery embed: err=%v partial=%v", err, res.Partial)
	}
	for i := range want {
		if res.Slab[i] != want[i] {
			t.Fatalf("post-restart slab[%d] = %v, want %v (not bitwise identical)", i, res.Slab[i], want[i])
		}
	}
	if got := r.Stats().Shards[vid].Breaker; got != "closed" && got != "half-open" {
		t.Fatalf("victim breaker = %s after recovery", got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestChaosRestartFromSnapshot pins the restart-from-snapshot leg: a
// crashed shard warms its rebuilt caches from its last snapshot (saved
// through a fault-injecting FS to prove the envelope survives), and a
// bit-flipped snapshot is detected and demoted to a cold start — the
// shard still comes back serving bitwise-correct rows either way.
func TestChaosRestartFromSnapshot(t *testing.T) {
	m := testModel(t)
	edges := testEdges(50)
	nodes, ts := embedQuery()
	want := referenceSlab(t, m, edges, nodes, ts)
	for name, corrupt := range map[string]bool{"warm": false, "corrupt-cold": true} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.NewFS()
			var mode, victim atomic.Int32
			victim.Store(-1)
			r := newTestRouter(t, m, edges, Config{
				Shards:      3,
				SnapshotDir: dir,
				FS:          ffs,
				Breaker:     BreakerConfig{MinSamples: 2, Cooldown: 10 * time.Millisecond, Probes: 1},
				WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
					return &chaosEmbedder{Embedder: e, shard: id, target: &victim, mode: &mode}
				},
			})
			victim.Store(int32(r.Owner(nodes[0])))
			vid := int(victim.Load())

			if _, err := r.Embed(context.Background(), nodes, ts); err != nil {
				t.Fatal(err)
			}
			if err := r.SaveSnapshots(); err != nil {
				t.Fatal(err)
			}
			if corrupt {
				path := filepath.Join(dir, fmt.Sprintf("shard-%d.tgc", vid))
				if err := faultfs.FlipBit(path, 120); err != nil {
					t.Fatal(err)
				}
			}
			loadsBefore := r.Stats().SnapshotLoads

			// Kill the victim once.
			mode.Store(chaosPanic)
			res, err := r.Embed(context.Background(), nodes, ts)
			mode.Store(chaosOff)
			if err != nil {
				t.Fatal(err)
			}
			_ = res // may be partial or rescued by failover; both fine

			waitFor(t, 2*time.Second, func() bool {
				return r.Stats().Shards[vid].Restarts > 0 && !r.shards[vid].crashed.Load()
			})
			st := r.Stats()
			loads := st.SnapshotLoads - loadsBefore
			if corrupt {
				if loads != 0 {
					t.Fatalf("corrupt snapshot was loaded (%d loads)", loads)
				}
				if st.SnapshotErrors == 0 {
					t.Fatal("corrupt snapshot not counted")
				}
			} else if loads != 1 {
				t.Fatalf("snapshot loads = %d, want 1", loads)
			}

			// Either way the rebuilt shard serves bitwise-correct rows.
			waitFor(t, 2*time.Second, func() bool {
				res, err := r.Embed(context.Background(), nodes, ts)
				return err == nil && !res.Partial
			})
			res, err = r.Embed(context.Background(), nodes, ts)
			if err != nil || res.Partial {
				t.Fatalf("post-restart embed: err=%v partial=%v", err, res != nil && res.Partial)
			}
			for i := range want {
				if res.Slab[i] != want[i] {
					t.Fatalf("post-restart slab[%d] differs from reference", i)
				}
			}
		})
	}
}

// TestChaosIngestDuringRestart pins the edge-log catch-up: edges
// applied while a shard is down are replayed before its rebuilt core
// goes live, so post-restart rows reflect the full stream.
func TestChaosIngestDuringRestart(t *testing.T) {
	m := testModel(t)
	edges := testEdges(40)
	nodes, ts := embedQuery()

	var mode, victim atomic.Int32
	victim.Store(-1)
	r := newTestRouter(t, m, edges, Config{
		Shards:  3,
		Breaker: BreakerConfig{MinSamples: 2, Cooldown: 10 * time.Millisecond, Probes: 1},
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return &chaosEmbedder{Embedder: e, shard: id, target: &victim, mode: &mode}
		},
	})
	victim.Store(int32(r.Owner(nodes[0])))
	vid := int(victim.Load())

	if _, err := r.Embed(context.Background(), nodes, ts); err != nil {
		t.Fatal(err)
	}

	// Crash the victim, then broadcast edges while it is (possibly
	// still) down.
	mode.Store(chaosPanic)
	if _, err := r.Embed(context.Background(), nodes, ts); err != nil {
		t.Fatal(err)
	}
	mode.Store(chaosOff)
	extra := []graph.Edge{
		{Src: nodes[0], Dst: 5, Time: 850},
		{Src: 3, Dst: nodes[0], Time: 950},
	}
	for _, e := range extra {
		r.Apply(e, graph.IngestAppended)
	}

	waitFor(t, 2*time.Second, func() bool {
		return r.Stats().Shards[vid].Restarts > 0 && !r.shards[vid].crashed.Load()
	})
	waitFor(t, 2*time.Second, func() bool {
		res, err := r.Embed(context.Background(), nodes, ts)
		return err == nil && !res.Partial
	})

	all := append(append([]graph.Edge(nil), edges...), extra...)
	want := referenceSlab(t, m, all, nodes, ts)
	res, err := r.Embed(context.Background(), nodes, ts)
	if err != nil || res.Partial {
		t.Fatalf("embed: err=%v partial=%v", err, res.Partial)
	}
	for i := range want {
		if res.Slab[i] != want[i] {
			t.Fatalf("slab[%d] = %v, want %v (restarted shard missed a logged edge)", i, res.Slab[i], want[i])
		}
	}
}
