package serve

import (
	"fmt"
	"strings"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/shard"
	"tgopt/internal/stats"
	"tgopt/internal/tgat"
)

// NewSharded builds a server whose serving plane is partitioned into
// cfg.Shards fault-isolated engine shards behind a scatter-gather
// router (package shard): each shard owns a full replica of the edge
// stream plus its private memo caches, a circuit breaker routes around
// failures, and a supervisor restarts crashed shards from their last
// snapshot. dyn stays the authoritative graph for /v1/ingest,
// /v1/stats, and /v1/explain; the router replicates accepted edges to
// every shard. opt is the same engine option set New takes — per-shard
// cache capacities are derived from it so total footprint matches the
// unsharded deployment.
func NewSharded(model *tgat.Model, dyn *graph.Dynamic, opt core.Options, cfg shard.Config) (*Server, error) {
	s := &Server{
		dyn:     dyn,
		model:   model,
		hitRate: stats.NewHitRate(10),
		quant:   opt.Quant,
	}
	if opt.Quant == core.QuantInt8 {
		s.qmodel = tgat.QuantizeModel(model)
	}
	s.modelVersion.Store(opt.ModelVersion)
	cfg.ModelVersion = opt.ModelVersion // pool and server agree on the boot version
	opt.HitRate = s.hitRate             // concurrency-safe; shared across shards
	r, err := shard.NewRouter(model, dyn, opt, cfg)
	if err != nil {
		return nil, err
	}
	s.router = r
	return s, nil
}

// Router exposes the shard router in sharded mode (nil otherwise).
func (s *Server) Router() *shard.Router { return s.router }

// Sharded reports whether this server scatter-gathers across a shard
// pool.
func (s *Server) Sharded() bool { return s.router != nil }

// The helpers below make cache/engine introspection mode-agnostic:
// single-engine mode reads the one engine, sharded mode aggregates
// across the pool.

func (s *Server) cacheLen() int {
	if s.router != nil {
		return s.router.CacheLen()
	}
	return s.engine.CacheLen()
}

func (s *Server) cacheBytes() int64 {
	if s.router != nil {
		return s.router.CacheBytes()
	}
	return s.engine.CacheBytes()
}

func (s *Server) cacheStats() core.CacheStats {
	if s.router != nil {
		return s.router.CacheStats()
	}
	return s.engine.CacheStats()
}

func (s *Server) layerCacheStats() []core.LayerCacheStats {
	if s.router != nil {
		return s.router.LayerCacheStats()
	}
	return s.engine.LayerCacheStats()
}

func (s *Server) staleStoreSkips() int64 {
	if s.router != nil {
		return s.router.StaleStoreSkips()
	}
	return s.engine.StaleStoreSkips()
}

// stageSnapshots returns per-stage latency snapshots: the single
// engine's histograms, or bucket-wise merges across every live shard
// (per-shard histogram geometry is identical, so counts add).
func (s *Server) stageSnapshots() map[string]stats.HistogramSnapshot {
	if s.router == nil {
		out := make(map[string]stats.HistogramSnapshot, len(core.Stages))
		for st, h := range s.engine.StageStats() {
			out[st] = h.Snapshot()
		}
		return out
	}
	out := make(map[string]stats.HistogramSnapshot, len(core.Stages))
	for _, eng := range s.router.Engines() {
		for st, h := range eng.StageStats() {
			snap := h.Snapshot()
			agg, ok := out[st]
			if !ok {
				out[st] = snap
				continue
			}
			agg.Count += snap.Count
			agg.Sum += snap.Sum
			for i := range agg.Counts {
				agg.Counts[i] += snap.Counts[i]
			}
			out[st] = agg
		}
	}
	return out
}

// snapshotQuantile mirrors stats.Histogram.Quantile over a (possibly
// merged) snapshot: the upper bound of the first bucket whose
// cumulative count reaches q·Count.
func snapshotQuantile(h stats.HistogramSnapshot, q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.Bounds[i]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// stageStatsJSON renders the per-stage latency snapshots for /v1/stats.
func (s *Server) stageStatsJSON() map[string]stageStats {
	snaps := s.stageSnapshots()
	out := make(map[string]stageStats, len(snaps))
	for st, h := range snaps {
		out[st] = stageStats{
			Count:   h.Count,
			TotalMs: float64(h.Sum) / float64(time.Millisecond),
			P50us:   float64(snapshotQuantile(h, 0.5)) / float64(time.Microsecond),
			P90us:   float64(snapshotQuantile(h, 0.9)) / float64(time.Microsecond),
			P99us:   float64(snapshotQuantile(h, 0.99)) / float64(time.Microsecond),
		}
	}
	return out
}

// writeLayerCacheMetrics renders the per-layer memo-cache breakdown as
// layer-labeled series (summed across shards in sharded mode). The
// per-layer families are named tgopt_cache_layer_* — distinct from the
// unlabeled tgopt_cache_* aggregates so each Prometheus family stays
// either fully labeled or fully unlabeled.
func (s *Server) writeLayerCacheMetrics(b *strings.Builder) {
	layers := s.layerCacheStats()
	if len(layers) == 0 {
		return
	}
	for _, series := range []struct {
		name, help string
		value      func(core.LayerCacheStats) float64
	}{
		{"tgopt_cache_layer_entries", "Memoized embeddings resident in RAM for the layer.", func(v core.LayerCacheStats) float64 { return float64(v.Items) }},
		{"tgopt_cache_layer_bytes", "Approximate RAM footprint of the layer's cache.", func(v core.LayerCacheStats) float64 { return float64(v.Bytes) }},
		{"tgopt_cache_layer_lookups_total", "Layer cache lookups.", func(v core.LayerCacheStats) float64 { return float64(v.Lookups) }},
		{"tgopt_cache_layer_hits_total", "Layer cache hits (RAM tier).", func(v core.LayerCacheStats) float64 { return float64(v.Hits) }},
		{"tgopt_cache_layer_misses_total", "Layer cache misses.", func(v core.LayerCacheStats) float64 { return float64(v.Misses) }},
		{"tgopt_cache_layer_spill_hits_total", "Layer lookups served from the disk spill tier.", func(v core.LayerCacheStats) float64 { return float64(v.SpillHits) }},
		{"tgopt_cache_layer_admit_rejected_total", "Layer stores rejected by TinyLFU admission.", func(v core.LayerCacheStats) float64 { return float64(v.AdmitRejected) }},
		{"tgopt_cache_layer_spill_entries", "Entries resident in the layer's disk spill tier.", func(v core.LayerCacheStats) float64 { return float64(v.Spill.Entries) }},
		{"tgopt_cache_layer_spill_bytes", "Bytes resident in the layer's disk spill tier.", func(v core.LayerCacheStats) float64 { return float64(v.Spill.Bytes) }},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", series.name, series.help, series.name)
		for _, v := range layers {
			fmt.Fprintf(b, "%s{layer=\"%d\"} %g\n", series.name, v.Layer, series.value(v))
		}
	}
}

// writeShardMetrics renders the shard pool's health onto /metrics:
// router-level counters plus per-shard labeled series for breaker
// state and restart accounting.
func (s *Server) writeShardMetrics(b *strings.Builder, write func(name, help string, value float64)) {
	st := s.router.Stats()
	write("tgopt_shards", "Configured shard count.", float64(len(st.Shards)))
	write("tgopt_shards_healthy", "Shards currently eligible for traffic (not crashed, breaker not open).", float64(st.Healthy))
	write("tgopt_shard_quorum", "Healthy shards required to accept requests.", float64(st.Quorum))
	write("tgopt_hedges_total", "Speculative hedge legs launched.", float64(st.Hedges))
	write("tgopt_hedge_wins_total", "Hedge legs that beat the primary.", float64(st.HedgeWins))
	write("tgopt_routed_around_total", "Calls diverted because the primary shard was unavailable.", float64(st.RoutedAround))
	write("tgopt_partial_responses_total", "Responses served degraded (HTTP 206).", float64(st.PartialResponses))
	write("tgopt_degraded_targets_total", "Individual targets degraded in partial responses.", float64(st.DegradedTargets))
	write("tgopt_quorum_rejects_total", "Requests rejected 503 because healthy shards fell below quorum.", float64(st.QuorumRejects))
	write("tgopt_replica_divergence_total", "Replica ingest outcomes disagreeing with the authoritative graph.", float64(st.Divergence))
	write("tgopt_shard_snapshot_saves_total", "Per-shard cache snapshots written.", float64(st.SnapshotSaves))
	write("tgopt_shard_snapshot_errors_total", "Per-shard snapshot save/load failures.", float64(st.SnapshotErrors))
	write("tgopt_shard_snapshot_loads_total", "Shards warm-started from a snapshot.", float64(st.SnapshotLoads))
	for _, series := range []struct {
		name, help string
		value      func(shard.Status) float64
	}{
		{"tgopt_shard_up", "1 if the shard is live, 0 while crashed/rebuilding.", func(v shard.Status) float64 {
			if v.Crashed {
				return 0
			}
			return 1
		}},
		{"tgopt_shard_breaker_open", "1 if the shard's breaker is open.", func(v shard.Status) float64 {
			if v.Breaker == "open" {
				return 1
			}
			return 0
		}},
		{"tgopt_shard_calls_total", "Embed legs executed by the shard.", func(v shard.Status) float64 { return float64(v.Calls) }},
		{"tgopt_shard_errors_total", "Failed legs (timeouts and panics excluded).", func(v shard.Status) float64 { return float64(v.Errors) }},
		{"tgopt_shard_timeouts_total", "Legs that exceeded their deadline budget.", func(v shard.Status) float64 { return float64(v.Timeouts) }},
		{"tgopt_shard_panics_total", "Engine panics contained by the shard boundary.", func(v shard.Status) float64 { return float64(v.Panics) }},
		{"tgopt_shard_restarts_total", "Supervisor restarts completed.", func(v shard.Status) float64 { return float64(v.Restarts) }},
		{"tgopt_shard_breaker_opens_total", "Breaker transitions to open.", func(v shard.Status) float64 { return float64(v.BreakerOpens) }},
		{"tgopt_shard_breaker_half_opens_total", "Breaker transitions to half-open.", func(v shard.Status) float64 { return float64(v.BreakerHalfOpens) }},
		{"tgopt_shard_breaker_closes_total", "Breaker transitions back to closed.", func(v shard.Status) float64 { return float64(v.BreakerCloses) }},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", series.name, series.help, series.name)
		for _, v := range st.Shards {
			fmt.Fprintf(b, "%s{shard=\"%d\"} %g\n", series.name, v.ID, series.value(v))
		}
	}
}
