package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tgopt/internal/faultfs"
)

func snapshotEdges() []edgeJSON {
	var edges []edgeJSON
	for i := 0; i < 40; i++ {
		edges = append(edges, edgeJSON{
			Src: int32(i%10 + 1), Dst: int32(i%5 + 11), Time: float64(100 * (i + 1)), Idx: int32(i + 1),
		})
	}
	return edges
}

// warmCache runs a few embed requests so the engine memoizes
// embeddings worth snapshotting.
func warmCache(t *testing.T, s *Server, url string) {
	t.Helper()
	ingest(t, url, snapshotEdges())
	resp, body := post(t, url+"/v1/embed", embedRequest{
		Nodes: []int32{1, 2, 3, 11, 12}, Times: []float64{5000, 5000, 5000, 5000, 5000},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("embed failed: %d %s", resp.StatusCode, body)
	}
	if s.Engine().CacheLen() == 0 {
		t.Fatal("embed requests populated no cache entries")
	}
}

func TestServeWarmStartRoundTrip(t *testing.T) {
	s, ts := testServer(t)
	warmCache(t, s, ts.URL)
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := s.Engine().SaveCaches(path); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := testServer(t)
	ingest(t, ts2.URL, snapshotEdges())
	var lines []string
	s2.WarmStart(path, func(f string, a ...any) { lines = append(lines, f) })
	if got, want := s2.Engine().CacheLen(), s.Engine().CacheLen(); got != want {
		t.Fatalf("warm start restored %d entries, want %d (log: %v)", got, want, lines)
	}
}

// TestServeWarmStartColdOnMissingAndCorrupt: the serving process must
// boot either way — missing snapshot, garbage file, or a bit-flipped
// real snapshot all mean a logged cold start, never an exit or a
// half-loaded cache.
func TestServeWarmStartColdOnMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()

	s, ts := testServer(t)
	warmCache(t, s, ts.URL)
	valid := filepath.Join(dir, "valid.bin")
	if err := s.Engine().SaveCaches(valid); err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flipped.bin")
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(flipped, int64(len(data))*4); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, path string
	}{
		{"missing", filepath.Join(dir, "nope.bin")},
		{"garbage", garbage},
		{"bit-flipped", flipped},
	} {
		s2, ts2 := testServer(t)
		ingest(t, ts2.URL, snapshotEdges())
		logged := 0
		s2.WarmStart(tc.path, func(string, ...any) { logged++ })
		if s2.Engine().CacheLen() != 0 {
			t.Fatalf("%s: cache not cold after failed warm start (%d entries)", tc.name, s2.Engine().CacheLen())
		}
		if logged == 0 {
			t.Fatalf("%s: cold start not logged", tc.name)
		}
	}
}

func TestServeStartSnapshotsWritesLoadableSnapshot(t *testing.T) {
	s, ts := testServer(t)
	warmCache(t, s, ts.URL)
	path := filepath.Join(t.TempDir(), "cache.bin")
	stop := s.StartSnapshots(path, 5*time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for s.snapshotSaves.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot written within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	s2, ts2 := testServer(t)
	ingest(t, ts2.URL, snapshotEdges())
	if err := s2.Engine().LoadCaches(path); err != nil {
		t.Fatalf("background snapshot not loadable: %v", err)
	}
	if s2.Engine().CacheLen() == 0 {
		t.Fatal("background snapshot restored nothing")
	}

	// Counters surface in /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Snapshots < 1 {
		t.Fatalf("stats snapshots = %d, want >= 1", st.Snapshots)
	}
}

// TestServeSnapshotsDuringIngest races the background snapshotter
// against live ingestion and embedding: every snapshot the ticker
// writes must stay fully loadable (the per-shard counts are taken
// under the shard locks).
func TestServeSnapshotsDuringIngest(t *testing.T) {
	s, ts := testServer(t)
	path := filepath.Join(t.TempDir(), "cache.bin")
	stop := s.StartSnapshots(path, time.Millisecond, func(f string, a ...any) {
		t.Errorf("snapshot failure: "+f, a...)
	})
	edges := snapshotEdges()
	for i, e := range edges {
		ingest(t, ts.URL, []edgeJSON{e})
		post(t, ts.URL+"/v1/embed", embedRequest{
			Nodes: []int32{e.Src, e.Dst}, Times: []float64{e.Time + 1, e.Time + 1},
		})
		if i%8 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	stop()
	if s.snapshotSaves.Load() == 0 {
		t.Skip("no snapshot fired during the run")
	}
	s2, ts2 := testServer(t)
	ingest(t, ts2.URL, edges)
	if err := s2.Engine().LoadCaches(path); err != nil {
		t.Fatalf("snapshot taken during ingest not loadable: %v", err)
	}
}
