package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tgopt/internal/batcher"
)

// batchedAndSerialServers builds two servers with identical weights and
// history: one serving directly (batching off) and one through the
// micro-batcher.
func batchedAndSerialServers(t *testing.T, cfg batcher.Config) (off, on *httptest.Server) {
	t.Helper()
	_, off = testServer(t)
	sOn, on := testServer(t)
	sOn.SetBatching(cfg)
	edges := []edgeJSON{
		{Src: 1, Dst: 2, Time: 10}, {Src: 1, Dst: 3, Time: 20},
		{Src: 2, Dst: 4, Time: 30}, {Src: 3, Dst: 5, Time: 40},
		{Src: 4, Dst: 6, Time: 50}, {Src: 5, Dst: 7, Time: 60},
		{Src: 6, Dst: 8, Time: 70}, {Src: 7, Dst: 1, Time: 80},
	}
	ingest(t, off.URL, edges)
	ingest(t, on.URL, edges)
	return off, on
}

// equivRequest is one request of the equivalence workload.
type equivRequest struct {
	path string
	body any
}

// equivWorkload builds a mixed embed/score request set with heavy
// target overlap across requests — the redundancy the batcher fuses.
func equivWorkload() []equivRequest {
	var reqs []equivRequest
	for i := 0; i < 24; i++ {
		n1 := int32(1 + i%8)
		n2 := int32(1 + (i+3)%8)
		ts := float64(90 + (i%4)*5)
		if i%3 == 0 {
			reqs = append(reqs, equivRequest{"/v1/score", scoreRequest{
				Pairs: []edgeJSON{{Src: n1, Dst: n2, Time: ts}},
			}})
		} else {
			reqs = append(reqs, equivRequest{"/v1/embed", embedRequest{
				Nodes: []int32{n1, n2}, Times: []float64{ts, ts},
			}})
		}
	}
	return reqs
}

func postBody(url, path string, body any) ([]byte, int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes(), resp.StatusCode, nil
}

// TestServeBatchedEquivalence is the correctness acceptance test for
// cross-request batching: N concurrent batched requests must return
// bitwise-identical bodies to the same requests served serially with
// batching off. Run under -race in scripts/check.sh.
func TestServeBatchedEquivalence(t *testing.T) {
	off, on := batchedAndSerialServers(t, batcher.Config{Window: 2 * time.Millisecond, MaxBatch: 16})
	reqs := equivWorkload()

	// Ground truth: the serial, unbatched path.
	want := make([][]byte, len(reqs))
	for i, rq := range reqs {
		body, code, err := postBody(off.URL, rq.path, rq.body)
		if err != nil || code != 200 {
			t.Fatalf("serial request %d: code %d err %v", i, code, err)
		}
		want[i] = body
	}

	// The same requests, concurrently, through the batcher — several
	// full passes over the workload so fused batches mix requests.
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(reqs))
	for round := 0; round < rounds; round++ {
		for i, rq := range reqs {
			i, rq := i, rq
			wg.Add(1)
			go func() {
				defer wg.Done()
				body, code, err := postBody(on.URL, rq.path, rq.body)
				if err != nil || code != 200 {
					errs <- fmt.Errorf("batched request %d: code %d err %v", i, code, err)
					return
				}
				if !bytes.Equal(body, want[i]) {
					errs <- fmt.Errorf("request %d (%s): batched body differs from serial\nbatched: %s\nserial:  %s",
						i, rq.path, body, want[i])
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The batcher must actually have coalesced under this workload.
	resp, err := http.Get(on.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Batching == nil {
		t.Fatal("stats missing batching section with batching on")
	}
	if sr.Batching.Enqueued == 0 || sr.Batching.Batches == 0 {
		t.Fatalf("batcher unused: %+v", sr.Batching)
	}
}

// TestServeBatchedCancellation cancels requests mid-batch and checks
// that sibling requests sharing the fused pass still complete correctly
// and the server keeps serving — no stuck waiters, no leaked flights.
func TestServeBatchedCancellation(t *testing.T) {
	off, on := batchedAndSerialServers(t, batcher.Config{Window: 5 * time.Millisecond, MaxBatch: 64})

	embedBody, _ := json.Marshal(embedRequest{Nodes: []int32{1, 2}, Times: []float64{95, 95}})
	want, code, err := postBody(off.URL, "/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{95, 95}})
	if err != nil || code != 200 {
		t.Fatalf("serial: %d %v", code, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				// Cancel mid-flight: accept either a transport error or
				// any status — the point is the sibling requests below.
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, on.URL+"/v1/embed", bytes.NewReader(embedBody))
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				return
			}
			body, code, err := postBody(on.URL, "/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{95, 95}})
			if err != nil || code != 200 {
				errs <- fmt.Errorf("sibling request: code %d err %v", code, err)
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("sibling of a cancelled request got a different body")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The server must still serve fresh work after the cancellations.
	body, code, err := postBody(on.URL, "/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{95, 95}})
	if err != nil || code != 200 || !bytes.Equal(body, want) {
		t.Fatalf("post-cancellation request broken: code %d err %v", code, err)
	}
}
