package serve

import (
	"bytes"
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// Limits bounds a server's request handling. The zero value disables
// both bounds (no deadline, unlimited concurrency).
type Limits struct {
	// Timeout is the per-request deadline, installed on the request
	// context. A request that exceeds it receives 504 Gateway Timeout
	// and increments tgopt_timeouts_total. 0 disables the deadline.
	Timeout time.Duration
	// MaxInFlight caps concurrently-executing requests. A request
	// arriving at saturation receives 429 Too Many Requests (with a
	// Retry-After hint) and increments tgopt_rejected_total. 0 means
	// unlimited.
	MaxInFlight int
}

// SetLimits configures the server's request bounds. Call it before
// Handler; it is not safe to change limits while requests are in flight.
func (s *Server) SetLimits(l Limits) {
	s.limits = l
	if l.MaxInFlight > 0 {
		s.sem = make(chan struct{}, l.MaxInFlight)
	} else {
		s.sem = nil
	}
}

// Limits returns the configured request bounds.
func (s *Server) Limits() Limits { return s.limits }

// exemptFromLimits reports whether a request bypasses the in-flight
// semaphore and deadline: observability endpoints must stay scrapeable
// while the serving path is saturated, which is exactly when their data
// matters most.
func exemptFromLimits(r *http.Request) bool {
	return r.Method == http.MethodGet &&
		(r.URL.Path == "/metrics" || r.URL.Path == "/v1/stats" ||
			r.URL.Path == "/healthz" || r.URL.Path == "/readyz")
}

// wrap is the serving middleware: max-in-flight admission control
// (429), per-request deadline (504), panic-to-500 recovery, and the
// in-flight gauge. It buffers handler output so a deadline firing
// mid-handler can never interleave a 504 with a half-written body.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release := func() {}
		if s.sem != nil && !exemptFromLimits(r) {
			select {
			case s.sem <- struct{}{}:
				release = func() { <-s.sem }
			default:
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests,
					"server saturated: %d requests in flight", s.limits.MaxInFlight)
				return
			}
		}
		s.inflight.Add(1)
		finish := func() {
			s.inflight.Add(-1)
			release()
		}

		if s.limits.Timeout <= 0 || exemptFromLimits(r) {
			defer finish()
			// Buffer even without a deadline so a panic mid-write still
			// yields a clean 500 instead of a half-committed 200.
			bw := &bufferedResponse{header: make(http.Header)}
			func() {
				defer s.recoverPanic(bw, r)
				next.ServeHTTP(bw, r)
			}()
			bw.flushTo(w)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.limits.Timeout)
		defer cancel()
		r = r.WithContext(ctx)

		// The handler runs on its own goroutine against a buffered
		// response. On completion the buffer is flushed; on deadline the
		// client gets a clean 504 and the buffer is discarded when the
		// handler eventually returns (it keeps its in-flight slot until
		// then, so MaxInFlight still counts truly-running work).
		bw := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer finish()
			defer s.recoverPanic(bw, r)
			next.ServeHTTP(bw, r)
		}()
		select {
		case <-done:
			bw.flushTo(w)
		case <-ctx.Done():
			s.timeouts.Add(1)
			httpError(w, http.StatusGatewayTimeout,
				"request exceeded the %s deadline", s.limits.Timeout)
		}
	})
}

// recoverPanic converts a handler panic into a 500 response and counts
// it, keeping one bad request from killing the process.
func (s *Server) recoverPanic(w http.ResponseWriter, r *http.Request) {
	rec := recover()
	if rec == nil {
		return
	}
	s.panics.Add(1)
	log.Printf("serve: panic handling %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
	if bw, ok := w.(*bufferedResponse); ok {
		bw.reset()
	}
	httpError(w, http.StatusInternalServerError, "internal error")
}

// bufferedResponse is an http.ResponseWriter that accumulates the
// response in memory until flushTo.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

// reset discards everything written so far (panic recovery rewrites the
// response from scratch).
func (b *bufferedResponse) reset() {
	b.header = make(http.Header)
	b.code = 0
	b.body.Reset()
}

// flushTo replays the buffered response onto the real writer.
func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	code := b.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	w.Write(b.body.Bytes())
}
