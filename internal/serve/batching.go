package serve

import (
	"time"

	"tgopt/internal/batcher"
)

// SetBatching enables cross-request dynamic micro-batching: /v1/embed
// and /v1/score stop calling the engine directly and instead enqueue
// their targets into a shared batcher that fuses concurrent requests
// into single engine passes with single-flight deduplication (see
// package batcher). Call before Handler, like SetLimits; it is not safe
// to toggle while requests are in flight.
func (s *Server) SetBatching(cfg batcher.Config) {
	b := batcher.New(s.engine, s.model.Cfg.NodeDim, cfg)
	s.batcher = b
	// Close the single-flight read-your-writes gap: when a history edit
	// (late insert or watermark-crossing append) invalidates cached
	// state, in-flight computations for the touched endpoints at newer
	// query times must retire too — they were computed against the
	// pre-edit history, and a request arriving after the ingest
	// acknowledgement must not attach to them. The engine calls the
	// hook before its own cache scan.
	s.engine.SetInvalidationHook(func(u, v int32, t float64) {
		b.RetireTargets([]int32{u, v}, t)
	})
}

// Batcher returns the serving batcher, or nil when batching is off.
func (s *Server) Batcher() *batcher.Batcher { return s.batcher }

// batchStats is the JSON rendering of the batcher's state on /v1/stats.
type batchStats struct {
	WindowMs      float64 `json:"window_ms"`
	MaxBatch      int     `json:"max_batch"`
	Enqueued      int64   `json:"enqueued"`
	Coalesced     int64   `json:"coalesced"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	Batches       int64   `json:"batches"`
	FlushSize     int64   `json:"flush_size"`
	FlushWindow   int64   `json:"flush_window"`
	FlushIdle     int64   `json:"flush_idle"`
	FlushDrain    int64   `json:"flush_drain"`
	Panics        int64   `json:"panics"`
	RetireCalls   int64   `json:"retire_calls"`
	Retired       int64   `json:"retired"`
	OccupancyMean float64 `json:"occupancy_mean"`
	OccupancyP50  int64   `json:"occupancy_p50"`
	OccupancyP99  int64   `json:"occupancy_p99"`
	QueueWaitP50  float64 `json:"queue_wait_p50_us"`
	QueueWaitP99  float64 `json:"queue_wait_p99_us"`
}

// batchStatsJSON snapshots the batcher for /v1/stats, nil when off.
func (s *Server) batchStatsJSON() *batchStats {
	b := s.batcher
	if b == nil {
		return nil
	}
	snap := b.Stats()
	occ := b.Occupancy()
	qw := b.QueueWait()
	return &batchStats{
		WindowMs:      float64(b.Config().Window) / float64(time.Millisecond),
		MaxBatch:      b.Config().MaxBatch,
		Enqueued:      snap.Enqueued,
		Coalesced:     snap.Coalesced,
		CoalesceRatio: snap.CoalesceRatio(),
		Batches:       snap.Batches,
		FlushSize:     snap.FlushSize,
		FlushWindow:   snap.FlushWindow,
		FlushIdle:     snap.FlushIdle,
		FlushDrain:    snap.FlushDrain,
		Panics:        snap.Panics,
		RetireCalls:   snap.RetireCalls,
		Retired:       snap.Retired,
		OccupancyMean: occ.Mean(),
		OccupancyP50:  occ.Quantile(0.5),
		OccupancyP99:  occ.Quantile(0.99),
		QueueWaitP50:  float64(qw.Quantile(0.5)) / float64(time.Microsecond),
		QueueWaitP99:  float64(qw.Quantile(0.99)) / float64(time.Microsecond),
	}
}
