package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// testModelDyn builds the shared test model and an empty dynamic graph
// — the same fixture whether the server under test is single-engine
// (testServer) or sharded (shardedServer in sharding_test.go).
func testModelDyn(t *testing.T) (*tgat.Model, *graph.Dynamic) {
	t.Helper()
	const nodes, maxEdges, d = 20, 4096, 16
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, nodes+1, d)
	edgeFeat := tensor.Randn(r, maxEdges+1, d)
	for j := 0; j < d; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 4, Seed: 2}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m, graph.NewDynamic(nodes)
}

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	m, dyn := testModelDyn(t)
	s := New(m, dyn, core.OptAll())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func ingest(t *testing.T, url string, edges []edgeJSON) {
	t.Helper()
	resp, body := post(t, url+"/v1/ingest", ingestRequest{Edges: edges})
	if resp.StatusCode != 200 {
		t.Fatalf("ingest failed: %d %s", resp.StatusCode, body)
	}
}

func TestServeIngestEmbedScore(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10},
		{Src: 1, Dst: 3, Time: 20},
		{Src: 2, Dst: 4, Time: 30},
	})

	resp, body := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{40, 40}})
	if resp.StatusCode != 200 {
		t.Fatalf("embed: %d %s", resp.StatusCode, body)
	}
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Embeddings) != 2 || len(er.Embeddings[0]) != 16 {
		t.Fatalf("embedding shape wrong: %d x %d", len(er.Embeddings), len(er.Embeddings[0]))
	}

	resp, body = post(t, ts.URL+"/v1/score", scoreRequest{Pairs: []edgeJSON{{Src: 1, Dst: 2, Time: 40}}})
	if resp.StatusCode != 200 {
		t.Fatalf("score: %d %s", resp.StatusCode, body)
	}
	var sr scoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Logits) != 1 || len(sr.Probs) != 1 {
		t.Fatalf("score shape wrong: %+v", sr)
	}
	if sr.Probs[0] <= 0 || sr.Probs[0] >= 1 {
		t.Fatalf("prob %v out of (0,1)", sr.Probs[0])
	}
}

func TestServeEmbedMatchesEngineDirectly(t *testing.T) {
	s, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{
		{Src: 5, Dst: 6, Time: 1},
		{Src: 5, Dst: 7, Time: 2},
	})
	_, body := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{5}, Times: []float64{3}})
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	want := s.engine.Embed([]int32{5}, []float64{3})
	for j := 0; j < 16; j++ {
		if er.Embeddings[0][j] != want.At(0, j) {
			t.Fatalf("served embedding differs at %d", j)
		}
	}
}

func TestServeValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		path string
		body any
	}{
		{"/v1/embed", embedRequest{Nodes: []int32{1}, Times: nil}},           // length mismatch
		{"/v1/embed", embedRequest{}},                                        // empty
		{"/v1/embed", embedRequest{Nodes: []int32{99}, Times: []float64{1}}}, // out of range
		{"/v1/embed", embedRequest{Nodes: []int32{0}, Times: []float64{1}}},  // padding node
		{"/v1/score", scoreRequest{}},                                        // empty
		{"/v1/score", scoreRequest{Pairs: []edgeJSON{{Src: 1, Dst: 99}}}},    // out of range
		{"/v1/ingest", ingestRequest{Edges: []edgeJSON{{Src: 0, Dst: 1}}}},   // bad endpoint
		{"/v1/ingest", map[string]any{"edges": []any{}, "unknown": "field"}}, // unknown field
	}
	for i, c := range cases {
		resp, _ := post(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d (%s): status %d, want 400", i, c.path, resp.StatusCode)
		}
	}
	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/embed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/embed: %d", resp.StatusCode)
	}
	r2, _ := post(t, ts.URL+"/v1/stats", map[string]any{})
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: %d", r2.StatusCode)
	}
}

func TestServeRejectsNonFiniteTimes(t *testing.T) {
	// Non-finite times would truncate to arbitrary low bits in the memo
	// key, poisoning the cache and the single-flight registry. JSON has
	// no NaN/Inf literals, so over the wire they can only appear as
	// out-of-range numbers like 1e999 — rejected at decode — but the
	// handler-level guard must hold for any transport.
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}})
	for _, raw := range []string{
		`{"nodes":[1],"times":[1e999]}`,
		`{"nodes":[1],"times":[-1e999]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/embed", "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("embed %s: status %d, want 400", raw, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"pairs":[{"src":1,"dst":2,"time":1e999}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("score with overflow time: status %d, want 400", resp.StatusCode)
	}

	// The in-process guard itself, for values that bypass JSON.
	s, _ := testServer(t)
	for _, bad := range [][]float64{{math.NaN()}, {math.Inf(1)}, {1, math.Inf(-1)}} {
		rec := httptest.NewRecorder()
		if s.validTimes(rec, bad) {
			t.Fatalf("validTimes accepted %v", bad)
		}
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("validTimes(%v) wrote %d, want 400", bad, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	if !s.validTimes(rec, []float64{0, 1e308, -5}) {
		t.Fatal("validTimes rejected finite times")
	}
}

func TestServeIngestDropsTimeRegression(t *testing.T) {
	// With no lateness window configured, an out-of-order edge is below
	// the watermark: it is dropped and counted — never applied, never a
	// request failure (drops are per-edge outcomes, not client errors).
	s, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 100}})
	resp, body := post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{{Src: 1, Dst: 3, Time: 50}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("time-regressing ingest: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal([]byte(body), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 0 || ir.Dropped != 1 {
		t.Fatalf("drop accounting wrong: %s", body)
	}
	if s.dyn.NumEdges() != 1 {
		t.Fatalf("dropped edge reached the graph: %d edges", s.dyn.NumEdges())
	}
	if s.dyn.LateDropped() != 1 {
		t.Fatalf("LateDropped = %d, want 1", s.dyn.LateDropped())
	}
}

func TestServeStats(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}, {Src: 2, Dst: 3, Time: 2}})
	post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1, 2, 1, 2}, Times: []float64{5, 5, 5, 5}})
	post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{5, 5}})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.NumEdges != 2 || sr.NumNodes != 20 {
		t.Fatalf("stats graph counts wrong: %+v", sr)
	}
	if sr.CacheItems == 0 {
		t.Fatal("stats show empty cache after embeds")
	}
	if sr.HitRate <= 0 {
		t.Fatal("repeated embed produced no cache hits")
	}
	if sr.Requests < 3 || sr.Ingested != 2 {
		t.Fatalf("request accounting wrong: %+v", sr)
	}
}

func TestServeEmbedStableAcrossIngest(t *testing.T) {
	// The no-invalidation claim: an embedding served at time t must be
	// byte-identical when re-requested after newer edges arrive.
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 10}, {Src: 1, Dst: 3, Time: 20}})
	_, body1 := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{25}})
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 4, Time: 30}, {Src: 1, Dst: 5, Time: 40}})
	_, body2 := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{25}})
	if !bytes.Equal(body1, body2) {
		t.Fatal("past-time embedding changed after ingest")
	}
	// And at a later time it must differ (new neighborhood).
	_, body3 := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{45}})
	if bytes.Equal(body1, body3) {
		t.Fatal("later-time embedding identical despite new interactions")
	}
}

func TestServeConcurrentClients(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}, {Src: 3, Dst: 4, Time: 2}})
	// postRaw avoids t.Fatal from inside goroutines.
	postRaw := func(path string, body any) error {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %d %s", path, resp.StatusCode, buf.String())
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var err error
				if w%2 == 0 {
					err = postRaw("/v1/embed", embedRequest{Nodes: []int32{1, 3}, Times: []float64{5, 5}})
				} else {
					err = postRaw("/v1/ingest", ingestRequest{
						Edges: []edgeJSON{{Src: int32(1 + (w+i)%19), Dst: int32(2 + (w+i)%18), Time: 1e9}},
					})
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}})
	post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{5}})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, metric := range []string{
		"tgopt_graph_edges 1", "tgopt_cache_items", "tgopt_requests_total", "tgopt_ingested_total 1",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("metrics missing %q in:\n%s", metric, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	r2, _ := post(t, ts.URL+"/metrics", map[string]any{})
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d", r2.StatusCode)
	}
}

func TestServeExplain(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10},
		{Src: 1, Dst: 3, Time: 20},
		{Src: 1, Dst: 2, Time: 30},
	})
	resp, body := post(t, ts.URL+"/v1/explain", explainRequest{Node: 1, Time: 40})
	if resp.StatusCode != 200 {
		t.Fatalf("explain: %d %s", resp.StatusCode, body)
	}
	var er explainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Embedding) != 16 {
		t.Fatalf("embedding width %d", len(er.Embedding))
	}
	if len(er.Attributions) != 3 {
		t.Fatalf("attributions = %d, want 3", len(er.Attributions))
	}
	var sum float64
	for i, a := range er.Attributions {
		if a.EdgeTime >= 40 {
			t.Fatal("attribution violates temporal constraint")
		}
		if i > 0 && er.Attributions[i-1].Weight < a.Weight {
			t.Fatal("attributions not sorted")
		}
		sum += a.Weight
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("weights sum %v", sum)
	}
	// Validation.
	r2, _ := post(t, ts.URL+"/v1/explain", explainRequest{Node: 99, Time: 40})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range explain: %d", r2.StatusCode)
	}
}
