package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/swap"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

// This file is the serving side of the online-learning loop (DESIGN.md
// §16): SwapParams atomically hot-swaps the model to a published
// parameter snapshot, and StartSwapLoop runs the background cadence —
// either fine-tuning locally and publishing, or watching a swap
// directory another process publishes into.

// modelStats is the /v1/stats "model" section.
type modelStats struct {
	Version      uint64 `json:"version"`
	Swaps        int64  `json:"swaps"`
	Rollbacks    int64  `json:"rollbacks"`
	LastSwapUnix int64  `json:"last_swap_unix"`
}

func (s *Server) modelStatsJSON() modelStats {
	return modelStats{
		Version:      s.modelVersion.Load(),
		Swaps:        s.swaps.Load(),
		Rollbacks:    s.rollbacks.Load(),
		LastSwapUnix: s.lastSwapUnix.Load(),
	}
}

// ModelVersion returns the params version currently serving.
func (s *Server) ModelVersion() uint64 { return s.modelVersion.Load() }

// SwapRollbacks returns how many swaps were rejected with the previous
// version kept serving.
func (s *Server) SwapRollbacks() int64 { return s.rollbacks.Load() }

// SwapParams atomically swaps the serving model to the params
// checkpoint at path, as the given version. Prepare-then-commit: the
// checkpoint is parsed and fully validated (envelope CRC, tensor count,
// every shape) before any serving state is touched, so a corrupt or
// torn snapshot rolls back trivially — nothing was mutated, the
// previous version keeps serving, and the attempt is counted in
// rollbacks. The commit runs under the server's request gate (no
// in-flight embed/score/ingest/explain straddles it) plus the engine or
// pool barrier underneath, and re-derives every params-dependent
// structure: packed int8 weights (including the server's own affinity
// head), precomputed time tables, and the memo caches across hot tier,
// spill segments, and pending promotions (stamped with the new version
// so pre-swap spill segments read as misses even after a restart).
//
// In sharded mode the pool reads the checkpoint through its own
// configured file system (shard.Config.FS / SwapFS) and fsys only
// covers the single-engine path; pass checkpoint.OS{} (or nil) outside
// tests.
func (s *Server) SwapParams(fsys checkpoint.FS, path string, version uint64) error {
	if s.router != nil {
		s.swapGate.Lock()
		err := s.router.SwapParams(path, version)
		if err == nil && s.qmodel != nil {
			// The server's own packed affinity head must follow the
			// engines' weights (sharded scoring runs it here).
			s.qmodel = tgat.QuantizeModel(s.model)
		}
		s.swapGate.Unlock()
		if err != nil {
			s.rollbacks.Add(1)
			return fmt.Errorf("serve: swap to v%d rejected, serving v%d unchanged: %w",
				version, s.modelVersion.Load(), err)
		}
	} else {
		sp, err := s.model.ParseParamsFS(fsys, path)
		if err != nil {
			s.rollbacks.Add(1)
			return fmt.Errorf("serve: swap to v%d rejected, serving v%d unchanged: %w",
				version, s.modelVersion.Load(), err)
		}
		s.swapGate.Lock()
		s.engine.SwapParams(version, func() { s.model.ApplyParams(sp) })
		if s.qmodel != nil {
			s.qmodel = tgat.QuantizeModel(s.model)
		}
		s.swapGate.Unlock()
	}
	s.modelVersion.Store(version)
	s.swaps.Add(1)
	s.lastSwapUnix.Store(time.Now().Unix())
	return nil
}

// SwapConfig configures the background swap loop.
type SwapConfig struct {
	// Dir is the swap directory (params-<version>.tgp + CURRENT).
	Dir string
	// Interval is the tick cadence (must be > 0).
	Interval time.Duration
	// FS overrides the swap-directory file system (default
	// checkpoint.OS); fault tests inject faultfs.
	FS checkpoint.FS
	// Train selects the loop's role. True: fine-tune a clone of the
	// serving model on the watermarked prefix of the live stream each
	// tick, publish it into Dir, and swap to it. False: watch Dir's
	// CURRENT manifest and swap whenever another process (tgopt-train
	// -swap-dir, or a training-mode server) publishes a new version.
	Train bool
	// Trainer configures the fine-tune when Train is set.
	Trainer trainer.Config
	// Logf receives swap events. Optional.
	Logf func(format string, args ...any)
}

// StartSwapLoop runs the online-learning loop in the background and
// returns a stop function that quiesces it (waiting out an in-progress
// tick). Every tick failure is logged and non-fatal: a fine-tune that
// cannot run (stream too short), a publish that cannot land, or a swap
// rejected on a corrupt snapshot all leave the current version serving.
func (s *Server) StartSwapLoop(cfg SwapConfig) (stop func()) {
	if cfg.FS == nil {
		cfg.FS = checkpoint.OS{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.swapTick(cfg)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// swapTick is one loop iteration: train-publish-swap, or poll-swap.
func (s *Server) swapTick(cfg SwapConfig) {
	if !cfg.Train {
		v, path, err := swap.Latest(cfg.FS, cfg.Dir)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				cfg.Logf("swap: manifest read: %v", err)
			}
			return // nothing published yet
		}
		if v == s.modelVersion.Load() {
			return
		}
		if err := s.SwapParams(cfg.FS, path, v); err != nil {
			cfg.Logf("%v", err)
			return
		}
		cfg.Logf("swap: picked up published params v%d from %s", v, cfg.Dir)
		return
	}

	// Training role: fine-tune a private clone on the watermarked
	// prefix (the serving tensors are read, never written, so this runs
	// concurrently with traffic), publish, then swap through the same
	// validated path a watcher would take.
	clone, res, err := swap.FineTune(s.model, s.dyn, cfg.Trainer)
	if err != nil {
		cfg.Logf("swap: fine-tune skipped: %v", err)
		return
	}
	version := s.modelVersion.Load() + 1
	if v, _, lerr := swap.Latest(cfg.FS, cfg.Dir); lerr == nil && v >= version {
		version = v + 1 // never republish an existing version number
	}
	if err := swap.Publish(cfg.FS, cfg.Dir, clone, version); err != nil {
		cfg.Logf("swap: publish v%d: %v", version, err)
		return
	}
	if err := s.SwapParams(cfg.FS, swap.ParamsPath(cfg.Dir, version), version); err != nil {
		cfg.Logf("%v", err)
		return
	}
	loss := 0.0
	if len(res.EpochLoss) > 0 {
		loss = res.EpochLoss[len(res.EpochLoss)-1]
	}
	cfg.Logf("swap: fine-tuned (loss %.4f, val AP %.4f) and swapped to v%d", loss, res.ValAP, version)
}
