package serve

import (
	"net/http"
)

// Liveness and readiness endpoints, the contract a load balancer or
// orchestrator drives restarts and traffic by:
//
//   - GET /healthz (liveness): 200 as long as the process can serve
//     HTTP at all. It deliberately checks nothing else — a deployment
//     with every shard down is degraded, not dead, and restarting the
//     process would only lose the warm caches.
//   - GET /readyz (readiness): 200 only when the server should receive
//     traffic: warm-start finished (SetReady), not draining
//     (BeginDrain), and — in sharded mode — the healthy-shard count
//     meets the configured quorum.
//
// Both bypass the in-flight limit and deadline middleware: health
// checks must answer while the serving path is saturated, which is
// exactly when the orchestrator most needs the signal.

// SetReady marks warm-start complete: /readyz starts answering 200.
// Call it after WarmStart (and any other boot work) but before
// accepting traffic matters.
func (s *Server) SetReady() { s.ready.Store(true) }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// requests here, without affecting requests already in flight. Call it
// at the start of graceful shutdown, before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "warm-start not complete")
	case s.router != nil && s.router.HealthyShards() < s.router.Quorum():
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			"%d healthy shards of %d, quorum %d", s.router.HealthyShards(), s.router.Shards(), s.router.Quorum())
	default:
		writeJSON(w, map[string]string{"status": "ready"})
	}
}
