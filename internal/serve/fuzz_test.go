package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// fuzzIngestServer is built once per fuzz process: state accumulates
// across iterations, which is exactly what the invariant wants — the
// ingested counter must track the live edge count no matter how many
// partial, late, dropped, or rejected requests have gone before.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzTS   *httptest.Server
)

func fuzzIngestTarget(f *testing.F) (*Server, *httptest.Server) {
	f.Helper()
	fuzzOnce.Do(func() {
		const nodes, d = 20, 8
		r := tensor.NewRNG(4)
		nodeFeat := tensor.Randn(r, nodes+1, d)
		edgeFeat := tensor.Randn(r, 4096, d)
		for j := 0; j < d; j++ {
			nodeFeat.Set(0, 0, j)
			edgeFeat.Set(0, 0, j)
		}
		cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 3, Seed: 6}
		m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
		if err != nil {
			f.Fatal(err)
		}
		dyn := graph.NewDynamic(nodes)
		dyn.SetLateness(100)
		fuzzSrv = New(m, dyn, core.OptAll())
		fuzzTS = httptest.NewServer(fuzzSrv.Handler())
	})
	return fuzzSrv, fuzzTS
}

// FuzzIngest throws arbitrary bodies at /v1/ingest and asserts the
// accepted-prefix accounting invariant stays exact: the ingested
// counter always equals the number of live edges in the graph —
// appends and late inserts count, drops and rejected suffixes never do.
func FuzzIngest(f *testing.F) {
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":10}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":50},{"src":2,"dst":3,"time":20}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":1e9},{"src":3,"dst":4,"time":1}]}`))
	f.Add([]byte(`{"edges":[{"src":0,"dst":2,"time":5}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":99,"time":5}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":1e999}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":3,"idx":7},{"src":1,"dst":2,"time":4,"idx":7}]}`))
	f.Add([]byte(`{"edges":[{"src":1,"dst":2,"time":3,"bogus":1}]}`))
	f.Add([]byte(`{"edges":`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"edges":[{"src":2147483647,"dst":-2147483648,"time":-1e308}]}`))

	srv, ts := fuzzIngestTarget(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, buf.String())
		}
		if resp.StatusCode == http.StatusOK {
			var ir ingestResponse
			if err := json.Unmarshal(buf.Bytes(), &ir); err != nil {
				t.Fatalf("bad ingest response %q: %v", buf.String(), err)
			}
			if ir.Accepted < 0 || ir.Late < 0 || ir.Dropped < 0 || ir.Invalidated < 0 {
				t.Fatalf("negative counters: %+v", ir)
			}
			if ir.NumEdges != srv.dyn.NumEdges() {
				t.Fatalf("response NumEdges %d != graph %d", ir.NumEdges, srv.dyn.NumEdges())
			}
		}
		// The invariant: every edge counted as ingested is in the graph,
		// and every edge in the graph was counted — across the whole
		// accumulated fuzz history, partial failures included.
		if got, want := srv.ingested.Load(), int64(srv.dyn.NumEdges()); got != want {
			t.Fatalf("ingested counter %d != live edges %d", got, want)
		}
	})
}
