package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestServeMaxInFlightRejectsWith429(t *testing.T) {
	s, ts := testServer(t)
	s.SetLimits(Limits{MaxInFlight: 1})
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}})

	// Occupy the single slot directly, then drive concurrent embed
	// traffic past the limit: every request must be rejected with 429.
	s.sem <- struct{}{}
	const clients = 8
	var got429 atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(embedRequest{Nodes: []int32{1}, Times: []float64{5}})
			resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("status %d, want 429", resp.StatusCode)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				errs <- fmt.Errorf("429 missing Retry-After")
				return
			}
			got429.Add(1)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got429.Load() != clients {
		t.Fatalf("saw %d rejections, want %d", got429.Load(), clients)
	}

	// Observability stays reachable while saturated (stats/metrics are
	// exempt from the limit) and reports the rejections.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Rejected != clients {
		t.Fatalf("stats rejected = %d, want %d", sr.Rejected, clients)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), fmt.Sprintf("tgopt_rejected_total %d", clients)) {
		t.Fatalf("metrics missing rejected counter:\n%s", buf.String())
	}

	// Release the slot: serving resumes.
	<-s.sem
	resp2, body := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{5}})
	if resp2.StatusCode != 200 {
		t.Fatalf("post-release embed: %d %s", resp2.StatusCode, body)
	}
}

func TestServeTimeoutReturns504(t *testing.T) {
	s, _ := testServer(t)
	s.SetLimits(Limits{Timeout: 30 * time.Millisecond})
	var sawDeadline atomic.Bool
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			sawDeadline.Store(true)
		}
		<-r.Context().Done() // block until the middleware's deadline fires
	})
	ts := httptest.NewServer(s.wrap(slow))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/embed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("504 body not clean JSON: %v", err)
	}
	if !strings.Contains(body["error"], "deadline") {
		t.Fatalf("504 error = %q", body["error"])
	}
	if !sawDeadline.Load() {
		t.Fatal("handler saw no context deadline")
	}
	if s.timeouts.Load() != 1 {
		t.Fatalf("timeouts counter = %d, want 1", s.timeouts.Load())
	}
}

func TestServeTimeoutFastRequestUnaffected(t *testing.T) {
	s, ts := testServer(t)
	s.SetLimits(Limits{Timeout: 5 * time.Second, MaxInFlight: 4})
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}})
	resp, body := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{5}})
	if resp.StatusCode != 200 {
		t.Fatalf("embed under limits: %d %s", resp.StatusCode, body)
	}
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Embeddings) != 1 {
		t.Fatalf("embedding count %d", len(er.Embeddings))
	}
	if s.timeouts.Load() != 0 || s.rejected.Load() != 0 {
		t.Fatal("fast request tripped a limit counter")
	}
}

func TestServePanicRecoveredTo500(t *testing.T) {
	log.SetOutput(&bytes.Buffer{}) // silence the recovery stack trace
	defer log.SetOutput(nil)
	for _, timeout := range []time.Duration{0, time.Second} {
		s, _ := testServer(t)
		s.SetLimits(Limits{Timeout: timeout})
		boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("partial output before the panic"))
			panic("handler boom")
		})
		ts := httptest.NewServer(s.wrap(boom))
		resp, err := http.Get(ts.URL + "/v1/anything")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("timeout=%v: status %d, want 500", timeout, resp.StatusCode)
		}
		// Both paths buffer handler output, so the partial body written
		// before the panic is discarded: the 500 is clean JSON with no
		// handler output interleaved.
		var body map[string]string
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body["error"] != "internal error" {
			t.Fatalf("timeout=%v: 500 body corrupt: %v %v", timeout, body, err)
		}
		if s.panics.Load() != 1 {
			t.Fatalf("timeout=%v: panics counter = %d, want 1", timeout, s.panics.Load())
		}
		// The server keeps serving after a panic.
		resp2, err := http.Get(ts.URL + "/v1/anything")
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if s.inflight.Load() != 0 {
			t.Fatalf("timeout=%v: inflight gauge stuck at %d", timeout, s.inflight.Load())
		}
		ts.Close()
	}
}

func TestServeMetricsIncludesStageSummaries(t *testing.T) {
	_, ts := testServer(t)
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}, {Src: 2, Dst: 3, Time: 2}})
	post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1, 2}, Times: []float64{5, 5}})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		`tgopt_stage_latency_seconds{stage="sample",quantile="0.5"}`,
		`tgopt_stage_latency_seconds{stage="attention",quantile="0.99"}`,
		`tgopt_stage_latency_seconds_sum{stage="time_encode"}`,
		`tgopt_stage_latency_seconds_count{stage="cache_lookup"}`,
		"tgopt_inflight_requests",
		"tgopt_timeouts_total 0",
		"tgopt_panics_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	// The embed above must have produced nonzero attention observations.
	var count int64
	if _, err := fmt.Sscanf(afterLine(body, `tgopt_stage_latency_seconds_count{stage="attention"}`), "%d", &count); err != nil || count == 0 {
		t.Fatalf("attention stage count = %d (err %v)", count, err)
	}
}

// afterLine returns the remainder of the first line starting with prefix.
func afterLine(body, prefix string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix))
		}
	}
	return ""
}

func TestServeStatsIncludesStageAndLimitFields(t *testing.T) {
	s, ts := testServer(t)
	s.SetLimits(Limits{Timeout: time.Minute, MaxInFlight: 8})
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 1}})
	post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{5}})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Stages) == 0 {
		t.Fatal("stats missing stages")
	}
	att, ok := sr.Stages["attention"]
	if !ok || att.Count == 0 {
		t.Fatalf("attention stage absent or empty: %+v", sr.Stages)
	}
	if att.P99us < att.P50us {
		t.Fatalf("stage quantiles inconsistent: %+v", att)
	}
	if sr.InFlight < 0 || sr.Rejected != 0 || sr.Timeouts != 0 || sr.Panics != 0 {
		t.Fatalf("limit counters wrong: %+v", sr)
	}
}

func TestServeIngestCountsAcceptedPrefix(t *testing.T) {
	s, ts := testServer(t)
	// Two good edges, then an invalid endpoint: the request fails with
	// 400 but the accepted prefix is in the graph and must be counted.
	// (A mere time regression no longer fails the request — it is
	// dropped against the watermark and counted, see
	// TestServeIngestDropsTimeRegression.)
	resp, body := post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{
		{Src: 1, Dst: 2, Time: 100},
		{Src: 2, Dst: 3, Time: 200},
		{Src: 0, Dst: 4, Time: 300}, // invalid endpoint: rejected
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial ingest status %d: %s", resp.StatusCode, body)
	}
	if s.dyn.NumEdges() != 2 {
		t.Fatalf("graph has %d edges, want the 2-edge prefix", s.dyn.NumEdges())
	}
	if s.ingested.Load() != 2 {
		t.Fatalf("ingested counter = %d, want 2 (the accepted prefix)", s.ingested.Load())
	}
}
