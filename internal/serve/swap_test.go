package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/core"
	"tgopt/internal/faultfs"
	"tgopt/internal/graph"
	"tgopt/internal/shard"
	"tgopt/internal/swap"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

// swapSeedModel is testModelDyn's model with a caller-chosen parameter
// seed over identical feature tables: two seeds stand in for two
// published versions of one architecture.
func swapSeedModel(t *testing.T, seed uint64) *tgat.Model {
	t.Helper()
	const nodes, maxEdges, d = 20, 4096, 16
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, nodes+1, d)
	edgeFeat := tensor.Randn(r, maxEdges+1, d)
	for j := 0; j < d; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 4, Seed: seed}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// swapSeedDyn is the deterministic 60-edge stream every swap-equivalence
// fixture serves over; all query times sit past its end.
func swapSeedDyn(t *testing.T) *graph.Dynamic {
	t.Helper()
	dyn := graph.NewDynamic(20)
	for i := 0; i < 60; i++ {
		e := graph.Edge{
			Src:  int32(1 + (i*7)%19),
			Dst:  int32(1 + (i*11+3)%19),
			Time: float64(10 * (i + 1)),
		}
		if _, _, err := dyn.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	return dyn
}

var (
	swapQueryNodes = []int32{1, 5, 3, 1, 9, 12, 5, 1}
	swapQueryTimes = []float64{1000, 1000, 1000, 900, 1000, 1000, 1000, 900}
	swapQueryPairs = []edgeJSON{
		{Src: 1, Dst: 2, Time: 1000}, {Src: 3, Dst: 4, Time: 1000},
		{Src: 5, Dst: 6, Time: 1000}, {Src: 1, Dst: 2, Time: 900},
	}
)

// recordJSON runs one request straight through a handler (no network)
// and decodes the JSON body.
func recordJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var rb io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rb = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rb)
	rd := httptest.NewRecorder()
	h.ServeHTTP(rd, req)
	if out != nil && rd.Code == http.StatusOK {
		if err := json.Unmarshal(rd.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: %v (%s)", method, path, err, rd.Body.String())
		}
	}
	return rd.Code
}

// swapRefRows computes the ground-truth embed rows and score logits for
// one params seed at one precision, through the same JSON path the
// hammered responses take (so comparisons are exact bitwise, encoding
// included).
func swapRefRows(t *testing.T, seed uint64, quant core.QuantMode) ([][]float32, []float64) {
	t.Helper()
	opt := core.OptAll()
	opt.Quant = quant
	s := New(swapSeedModel(t, seed), swapSeedDyn(t), opt)
	t.Cleanup(func() { s.Close() })
	h := s.Handler()
	var er embedResponse
	if code := recordJSON(t, h, http.MethodPost, "/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes}, &er); code != 200 {
		t.Fatalf("ref embed: %d", code)
	}
	var sr scoreResponse
	if code := recordJSON(t, h, http.MethodPost, "/v1/score", scoreRequest{Pairs: swapQueryPairs}, &sr); code != 200 {
		t.Fatalf("ref score: %d", code)
	}
	return er.Embeddings, sr.Logits
}

func rowsEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func logitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsDist and logitsDist are max-norm distances, +Inf on a shape
// mismatch. Int8 serving stores quantized rows in the memo cache, so a
// warm hit legitimately differs from a cold compute by the quantization
// round-trip (~0.02 per element, measured) while distinct param
// versions sit orders of magnitude apart (~2.9); classification by
// nearest version with swapTol is therefore unambiguous, and the
// fixture's gap is asserted at runtime.
const swapTol = 0.15

func rowsDist(a, b [][]float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return math.Inf(1)
		}
		for j := range a[i] {
			if v := math.Abs(float64(a[i][j] - b[i][j])); v > d {
				d = v
			}
		}
	}
	return d
}

func logitsDist(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// postE is the goroutine-safe post: hammer workers cannot t.Fatal.
func postE(url string, body any) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// buildSwapServer builds the server under test over the shared fixture:
// single-engine when shards == 0, a shard pool otherwise.
func buildSwapServer(t *testing.T, m *tgat.Model, quant core.QuantMode, shards int) (*Server, *httptest.Server) {
	t.Helper()
	opt := core.OptAll()
	opt.Quant = quant
	var (
		s   *Server
		err error
	)
	if shards > 0 {
		s, err = NewSharded(m, swapSeedDyn(t), opt, shard.Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		s = New(m, swapSeedDyn(t), opt)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestServeSwapEquivalenceUnderLoad is the online-learning acceptance
// test: hammer /v1/embed, /v1/score, and /v1/ingest while hot-swapping
// params back and forth between two published versions, in every
// serving configuration (single-engine and sharded, float32 and int8).
// Every response must be computed wholly under ONE version — bitwise
// equal to a fresh server on that version's params — and after the
// final swap the server must converge exactly onto the final params
// with zero rollbacks. Run with -race in CI (scripts/check.sh).
func TestServeSwapEquivalenceUnderLoad(t *testing.T) {
	for _, mode := range []struct {
		name   string
		shards int
	}{{"single", 0}, {"sharded", 3}} {
		for _, prec := range []struct {
			name  string
			quant core.QuantMode
		}{{"float32", core.QuantOff}, {"int8", core.QuantInt8}} {
			t.Run(mode.name+"/"+prec.name, func(t *testing.T) {
				runSwapEquiv(t, mode.shards, prec.quant)
			})
		}
	}
}

func runSwapEquiv(t *testing.T, shards int, quant core.QuantMode) {
	rowsA, logitsA := swapRefRows(t, 2, quant)
	rowsB, logitsB := swapRefRows(t, 9, quant)
	if rowsEqual(rowsA, rowsB) {
		t.Fatal("fixture degenerate: both versions produce identical rows")
	}
	if quant == core.QuantInt8 {
		// The int8 hammers classify by nearest version with swapTol;
		// that only detects tears if the versions sit far apart.
		if g := rowsDist(rowsA, rowsB); g < 8*swapTol {
			t.Fatalf("fixture row gap %v too small for tolerance classification", g)
		}
		if g := logitsDist(logitsA, logitsB); g < 8*swapTol {
			t.Fatalf("fixture logit gap %v too small for tolerance classification", g)
		}
	}

	dir := t.TempDir()
	pathA := filepath.Join(dir, "params-a.tgp")
	pathB := filepath.Join(dir, "params-b.tgp")
	if err := swapSeedModel(t, 2).SaveParamsFS(checkpoint.OS{}, pathA); err != nil {
		t.Fatal(err)
	}
	if err := swapSeedModel(t, 9).SaveParamsFS(checkpoint.OS{}, pathB); err != nil {
		t.Fatal(err)
	}

	srv, ts := buildSwapServer(t, swapSeedModel(t, 2), quant, shards)

	stop := make(chan struct{})
	errc := make(chan error, 16)
	workers := 0
	hammer := func(f func() error) {
		workers++
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				if err := f(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	// Float32 responses must be bitwise one version's rows. Int8 warm
	// hits carry quantization round-trip noise (the memo cache stores
	// quantized vectors), so those classify by nearest version instead;
	// the fixture gap asserted above keeps a mixed-version response —
	// far from BOTH references — detectable either way.
	for i := 0; i < 3; i++ {
		hammer(func() error {
			code, body, err := postE(ts.URL+"/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes})
			if err != nil {
				return err
			}
			if code != 200 {
				return fmt.Errorf("embed: %d %s", code, body)
			}
			var er embedResponse
			if err := json.Unmarshal(body, &er); err != nil {
				return err
			}
			if quant == core.QuantOff {
				if !rowsEqual(er.Embeddings, rowsA) && !rowsEqual(er.Embeddings, rowsB) {
					return fmt.Errorf("embed rows match neither version (mixed-version or stale-cache response)")
				}
			} else if math.Min(rowsDist(er.Embeddings, rowsA), rowsDist(er.Embeddings, rowsB)) > swapTol {
				return fmt.Errorf("embed rows within tolerance of neither version (mixed-version or stale-cache response)")
			}
			return nil
		})
	}
	for i := 0; i < 2; i++ {
		hammer(func() error {
			code, body, err := postE(ts.URL+"/v1/score", scoreRequest{Pairs: swapQueryPairs})
			if err != nil {
				return err
			}
			if code != 200 {
				return fmt.Errorf("score: %d %s", code, body)
			}
			var sr scoreResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				return err
			}
			if quant == core.QuantOff {
				if !logitsEqual(sr.Logits, logitsA) && !logitsEqual(sr.Logits, logitsB) {
					return fmt.Errorf("score logits match neither version (embed/head version tear)")
				}
			} else if math.Min(logitsDist(sr.Logits, logitsA), logitsDist(sr.Logits, logitsB)) > swapTol {
				return fmt.Errorf("score logits within tolerance of neither version (embed/head version tear)")
			}
			return nil
		})
	}
	var ingestTime float64 = 2000
	hammer(func() error {
		// Strictly-future edges: invalidation churns, but rows at the
		// query times stay pinned to their version's reference.
		ingestTime += 10
		code, body, err := postE(ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{
			{Src: 2, Dst: 3, Time: ingestTime},
		}})
		if err != nil {
			return err
		}
		if code != 200 {
			return fmt.Errorf("ingest: %d %s", code, body)
		}
		return nil
	})

	// Swap back and forth under load; odd versions are B, even are A.
	version := uint64(0)
	for i := 0; i < 10; i++ {
		version++
		p := pathB
		if version%2 == 0 {
			p = pathA
		}
		if err := srv.SwapParams(checkpoint.OS{}, p, version); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	for i := 0; i < workers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// Converge on B and require exact final-state equality: a stale
	// cache entry (hot, spill, or promoted) from any earlier version
	// would break the bitwise match.
	version++
	if version%2 == 0 {
		version++
	}
	if err := srv.SwapParams(checkpoint.OS{}, pathB, version); err != nil {
		t.Fatal(err)
	}
	var er embedResponse
	if code := recordJSON(t, srv.Handler(), http.MethodPost, "/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes}, &er); code != 200 {
		t.Fatalf("final embed: %d", code)
	}
	if !rowsEqual(er.Embeddings, rowsB) {
		t.Fatal("final rows do not match the final params version")
	}
	var sr scoreResponse
	if code := recordJSON(t, srv.Handler(), http.MethodPost, "/v1/score", scoreRequest{Pairs: swapQueryPairs}, &sr); code != 200 {
		t.Fatalf("final score: %d", code)
	}
	if !logitsEqual(sr.Logits, logitsB) {
		t.Fatal("final logits do not match the final params version")
	}

	var st statsResponse
	if code := recordJSON(t, srv.Handler(), http.MethodGet, "/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.Model.Version != version {
		t.Fatalf("stats model version %d, want %d", st.Model.Version, version)
	}
	if st.Model.Swaps != int64(version) {
		t.Fatalf("stats swaps %d, want %d", st.Model.Swaps, version)
	}
	if st.Model.Rollbacks != 0 {
		t.Fatalf("unexpected rollbacks: %d", st.Model.Rollbacks)
	}
	if st.Model.LastSwapUnix == 0 {
		t.Fatal("last_swap_unix not stamped")
	}
}

// TestServeSwapRollbackOnCorruptSnapshot pins the rollback contract: a
// bit-flipped params checkpoint is rejected before anything mutates —
// the version, the tensors, and every served row stay exactly as they
// were, and the attempt is counted.
func TestServeSwapRollbackOnCorruptSnapshot(t *testing.T) {
	rowsA, _ := swapRefRows(t, 2, core.QuantOff)
	srv, _ := buildSwapServer(t, swapSeedModel(t, 2), core.QuantOff, 0)

	dir := t.TempDir()
	bad := filepath.Join(dir, "params-bad.tgp")
	if err := swapSeedModel(t, 9).SaveParamsFS(checkpoint.OS{}, bad); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(bad, int64(len(raw))/2*8+5); err != nil {
		t.Fatal(err)
	}

	if err := srv.SwapParams(checkpoint.OS{}, bad, 1); err == nil {
		t.Fatal("corrupt snapshot swapped in")
	}
	if v := srv.ModelVersion(); v != 0 {
		t.Fatalf("version advanced to %d on rejected swap", v)
	}
	if srv.SwapRollbacks() != 1 {
		t.Fatalf("rollbacks = %d, want 1", srv.SwapRollbacks())
	}
	var er embedResponse
	if code := recordJSON(t, srv.Handler(), http.MethodPost, "/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes}, &er); code != 200 {
		t.Fatalf("embed: %d", code)
	}
	if !rowsEqual(er.Embeddings, rowsA) {
		t.Fatal("rows changed after a rejected swap")
	}
}

// TestServeSwapLoopPicksUpPublished pins the watcher role end to end:
// a version published into the swap directory (the tgopt-train
// -swap-dir path) is hot-swapped in by the background loop without a
// restart.
func TestServeSwapLoopPicksUpPublished(t *testing.T) {
	rowsB, _ := swapRefRows(t, 9, core.QuantOff)
	srv, _ := buildSwapServer(t, swapSeedModel(t, 2), core.QuantOff, 0)

	dir := t.TempDir()
	stopLoop := srv.StartSwapLoop(SwapConfig{Dir: dir, Interval: 2 * time.Millisecond})
	defer stopLoop()

	if err := swap.Publish(checkpoint.OS{}, dir, swapSeedModel(t, 9), 3); err != nil {
		t.Fatal(err)
	}
	waitForServe(t, 5*time.Second, func() bool { return srv.ModelVersion() == 3 })

	var er embedResponse
	if code := recordJSON(t, srv.Handler(), http.MethodPost, "/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes}, &er); code != 200 {
		t.Fatalf("embed: %d", code)
	}
	if !rowsEqual(er.Embeddings, rowsB) {
		t.Fatal("rows do not reflect the published params after loop pickup")
	}
}

// TestServeSwapLoopTrainerRole pins the -swap-train role end to end:
// the background loop fine-tunes on the watermarked prefix of the live
// stream, publishes the result into the swap directory, and hot-swaps
// it in — and the served rows move off the boot params.
func TestServeSwapLoopTrainerRole(t *testing.T) {
	rowsA, _ := swapRefRows(t, 2, core.QuantOff)
	srv, _ := buildSwapServer(t, swapSeedModel(t, 2), core.QuantOff, 0)

	tcfg := trainer.DefaultConfig()
	tcfg.Epochs = 1
	tcfg.BatchSize = 16
	dir := t.TempDir()
	stopLoop := srv.StartSwapLoop(SwapConfig{Dir: dir, Interval: 5 * time.Millisecond, Train: true, Trainer: tcfg})
	defer stopLoop()

	waitForServe(t, 30*time.Second, func() bool { return srv.ModelVersion() >= 1 })
	v, _, err := swap.Latest(checkpoint.OS{}, dir)
	if err != nil || v < 1 {
		t.Fatalf("nothing published: v%d err %v", v, err)
	}

	var er embedResponse
	if code := recordJSON(t, srv.Handler(), http.MethodPost, "/v1/embed", embedRequest{Nodes: swapQueryNodes, Times: swapQueryTimes}, &er); code != 200 {
		t.Fatalf("embed: %d", code)
	}
	if rowsEqual(er.Embeddings, rowsA) {
		t.Fatal("rows unchanged after a fine-tune swap")
	}
}
