package serve

import (
	"errors"
	"io/fs"
	"sync"
	"time"
)

// WarmStart loads a cache snapshot saved by a previous process. A
// missing file is a normal cold start; a corrupt or unreadable one is
// logged and also starts cold — the engine's LoadCaches is
// all-or-nothing, so a damaged snapshot never half-populates the cache.
// A serving process must come up either way, which is why no error is
// returned.
func (s *Server) WarmStart(path string, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if s.router != nil {
		// Sharded mode: each shard warms from its own snapshot in the
		// router's snapshot directory (path is implied by the router
		// config; load problems are counted in its snapshot_errors).
		warmed := s.router.WarmStart()
		logf("warm-started %d of %d shards (%d memoized embeddings)",
			warmed, s.router.Shards(), s.router.CacheLen())
		return
	}
	switch err := s.engine.LoadCaches(path); {
	case err == nil:
		logf("warm-started %d memoized embeddings from %s", s.engine.CacheLen(), path)
	case errors.Is(err, fs.ErrNotExist):
		logf("no warm cache at %s; starting cold", path)
	default:
		s.snapshotErrors.Add(1)
		logf("warm cache %s unusable (%v); starting cold", path, err)
	}
}

// saveSnapshot writes the cache snapshot for whichever serving plane
// is active: the single engine's snapshot at path, or one snapshot per
// shard in the router's snapshot directory.
func (s *Server) saveSnapshot(path string) error {
	if s.router != nil {
		return s.router.SaveSnapshots()
	}
	return s.engine.SaveCaches(path)
}

// StartSnapshots begins periodic background cache snapshots to path
// and returns a stop function that halts the snapshotter and waits for
// any in-progress save. Saves go through the atomic checkpoint writer,
// so a crash mid-snapshot (or a snapshot racing ingestion) always
// leaves the previous snapshot intact on disk. Failures are counted
// (snapshot_errors in /v1/stats) and logged, never fatal.
func (s *Server) StartSnapshots(path string, interval time.Duration, logf func(format string, args ...any)) (stop func()) {
	if path == "" || interval <= 0 {
		return func() {}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := s.saveSnapshot(path); err != nil {
					s.snapshotErrors.Add(1)
					logf("cache snapshot to %s failed: %v", path, err)
				} else {
					s.snapshotSaves.Add(1)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
