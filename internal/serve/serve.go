// Package serve exposes a TGOpt inference engine over HTTP: a small,
// dependency-free JSON API for online temporal-graph serving. It wires
// together the pieces a production deployment needs — streaming edge
// ingestion into a graph.Dynamic, memoized embedding computation via
// core.Engine, link scoring with the model's affinity head, and cache /
// hit-rate introspection.
//
// Endpoints:
//
//	POST /v1/ingest  {"edges":[{"src":1,"dst":2,"time":42}]}
//	POST /v1/embed   {"nodes":[1,2],"times":[50,50]}
//	POST /v1/score   {"pairs":[{"src":1,"dst":2,"time":50}]}
//	GET  /v1/stats
//
// Because the engine's memoization is sound under chronological appends
// (§3.2 of the paper), embeddings served before an in-order ingest
// remain valid after it. Real event streams are not chronological:
// with a lateness window configured on the dynamic graph
// (graph.Dynamic.SetLateness), /v1/ingest also accepts bounded
// out-of-order edges by sorted insert and keeps the cache exact by
// selective invalidation of the embeddings whose sampled neighborhoods
// the late edge could reach (core.Engine.InvalidateLateEdge); edges
// older than the low-watermark are dropped and counted, never silently
// applied. See DESIGN.md §11.
//
// Every endpoint is wrapped in the serving middleware (middleware.go):
// a semaphore-based in-flight limit (429 at saturation), a per-request
// deadline (504 on expiry), and panic-to-500 recovery, with the
// resulting counters and the engine's per-stage latency histograms
// exposed on /v1/stats and /metrics.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/shard"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Server serves TGOpt inference over a live dynamic graph.
type Server struct {
	dyn     *graph.Dynamic
	model   *tgat.Model
	engine  *core.Engine
	hitRate *stats.HitRate
	// quant is the serving precision; qmodel is the packed int8 model
	// view when quant == core.QuantInt8 (scoring must match the
	// engines' embedding precision, including in sharded mode where
	// the per-request affinity head runs here, not in a shard).
	quant  core.QuantMode
	qmodel *tgat.QuantModel

	// router, when non-nil (NewSharded), partitions serving across N
	// fault-isolated engine shards; engine and batcher are then nil and
	// embed/score scatter-gather through it (sharding.go).
	router *shard.Router

	// batcher, when non-nil (SetBatching), fuses concurrent embed and
	// score targets into shared engine passes with single-flight dedup.
	batcher *batcher.Batcher

	// swapGate is the request-level hot-swap barrier (swap.go): embed,
	// score, ingest, and explain hold the read side for their whole
	// handler body, SwapParams' commit takes the write side. The engine
	// and router have their own gates, but this one is still needed —
	// /v1/score runs embedSlab and the affinity head as two separate
	// calls, and a swap landing between them would score new-version
	// logits over old-version embeddings. Lock order: swapGate before
	// the router's swapMu before any engine's gate.
	swapGate sync.RWMutex
	// modelVersion is the params version currently serving; swaps,
	// rollbacks, and lastSwapUnix are the /v1/stats "model" section.
	modelVersion atomic.Uint64
	swaps        atomic.Int64
	rollbacks    atomic.Int64
	lastSwapUnix atomic.Int64

	// Request bounds (SetLimits) and the middleware's counters: the
	// admission semaphore, the live in-flight gauge, and totals for
	// 429-rejected, 504-timed-out, and panic-500 requests.
	limits   Limits
	sem      chan struct{}
	inflight atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
	panics   atomic.Int64

	requests atomic.Int64
	ingested atomic.Int64
	// invalidated counts cache entries dropped by late-edge selective
	// invalidation.
	invalidated atomic.Int64

	// Embed/score failure accounting, split by cause so dashboards can
	// tell "the client hung up" (499) from "we could not serve" (503):
	// clientCancels counts abandoned requests, unavailable counts
	// server-side failures, quorumRejects the below-quorum 503s, and
	// partials the 206 degraded responses.
	clientCancels atomic.Int64
	unavailable   atomic.Int64
	quorumRejects atomic.Int64
	partials      atomic.Int64

	// Readiness state for /readyz (health.go): ready flips on once
	// warm-start (or explicit SetReady) completes; draining flips on at
	// shutdown so load balancers stop sending new work.
	ready    atomic.Bool
	draining atomic.Bool

	// Background snapshotter counters (snapshot.go).
	snapshotSaves  atomic.Int64
	snapshotErrors atomic.Int64
}

// New builds a server over a model and a (possibly pre-populated)
// dynamic graph. opt's Collector/HitRate are overridden with the
// server's own instrumentation.
func New(model *tgat.Model, dyn *graph.Dynamic, opt core.Options) *Server {
	s := &Server{
		dyn:     dyn,
		model:   model,
		hitRate: stats.NewHitRate(10),
		quant:   opt.Quant,
	}
	if opt.Quant == core.QuantInt8 {
		s.qmodel = tgat.QuantizeModel(model)
	}
	s.modelVersion.Store(opt.ModelVersion)
	opt.HitRate = s.hitRate
	// The server always keeps the per-node key index: late-edge
	// invalidation needs it to be targeted rather than a full cache
	// clear, and even a purely chronological stream needs it — an
	// append must be able to selectively drop memos served at *future*
	// timestamps whose sampled windows it lands in (InvalidateAppend).
	opt.TrackTargets = true
	sampler := graph.NewDynamicSampler(dyn, model.Cfg.NumNeighbors, graph.MostRecent, 0)
	s.engine = core.NewEngine(model, sampler, opt)
	return s
}

// Engine exposes the underlying TGOpt engine (cache persistence,
// introspection). Nil in sharded mode — use Router then.
func (s *Server) Engine() *core.Engine { return s.engine }

// Close releases the engine's background resources: it stops the
// cache promotion workers and seals the spill tier's open segments so
// spilled entries survive a restart. In sharded mode it closes every
// shard. Call it after the HTTP server has drained.
func (s *Server) Close() error {
	if s.router != nil {
		return s.router.Close()
	}
	return s.engine.Close()
}

// Handler returns the HTTP handler for the API, wrapped in the serving
// middleware (admission control, deadlines, panic recovery — see wrap).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/embed", s.handleEmbed)
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return s.wrap(mux)
}

type explainRequest struct {
	Node int32   `json:"node"`
	Time float64 `json:"time"`
}

type explainResponse struct {
	Embedding    []float32     `json:"embedding"`
	Attributions []attribution `json:"attributions"`
}

type attribution struct {
	Neighbor int32   `json:"neighbor"`
	EdgeIdx  int32   `json:"edge_idx"`
	EdgeTime float64 `json:"edge_time"`
	Weight   float64 `json:"weight"`
}

// handleExplain returns a target's temporal embedding together with the
// top-layer attention attribution over its sampled past interactions —
// which history the model looked at.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req explainRequest
	if !decode(w, r, &req) {
		return
	}
	if !s.validNodes(w, []int32{req.Node}) {
		return
	}
	s.swapGate.RLock()
	defer s.swapGate.RUnlock()
	sampler := graph.NewDynamicSampler(s.dyn, s.model.Cfg.NumNeighbors, graph.MostRecent, 0)
	h, attrs := s.model.Explain(sampler, req.Node, req.Time)
	resp := explainResponse{Embedding: append([]float32(nil), h.Row(0)...)}
	for _, a := range attrs {
		resp.Attributions = append(resp.Attributions, attribution{
			Neighbor: a.Neighbor, EdgeIdx: a.EdgeIdx, EdgeTime: a.EdgeTime, Weight: a.Weight,
		})
	}
	writeJSON(w, resp)
}

// handleMetrics exposes the serving counters in the Prometheus text
// exposition format, so standard scrapers can monitor a deployment.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	write := func(name, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, value)
	}
	write("tgopt_graph_nodes", "Nodes in the serving graph.", float64(s.dyn.NumNodes()))
	write("tgopt_graph_edges", "Interactions ingested.", float64(s.dyn.NumEdges()))
	write("tgopt_cache_items", "Memoized embeddings resident.", float64(s.cacheLen()))
	write("tgopt_cache_bytes", "Estimated cache footprint in bytes.", float64(s.cacheBytes()))
	write("tgopt_cache_hit_rate", "Average embedding cache hit rate.", s.hitRate.Average())
	cs := s.cacheStats()
	write("tgopt_cache_lookups_total", "Memo cache lookups (hot tier).", float64(cs.Lookups))
	write("tgopt_cache_hits_total", "Memo cache hot-tier hits.", float64(cs.Hits))
	write("tgopt_cache_misses_total", "Memo cache hot-tier misses.", float64(cs.Misses))
	write("tgopt_cache_spill_hits_total", "Hot-tier misses served from the disk spill tier.", float64(cs.SpillHits))
	write("tgopt_cache_promotes_total", "Spilled entries promoted back into the hot tier.", float64(cs.Promotes))
	write("tgopt_cache_promote_drops_total", "Promotions dropped (queue full or raced an invalidation).", float64(cs.PromoteDrops))
	write("tgopt_cache_admit_rejected_total", "Stores refused admission by the TinyLFU filter.", float64(cs.AdmitRejected))
	write("tgopt_cache_spill_entries", "Entries resident in the spill tier.", float64(cs.Spill.Entries))
	write("tgopt_cache_spill_segments", "Sealed spill segment files on disk.", float64(cs.Spill.Segments))
	write("tgopt_cache_spill_bytes", "Spill tier footprint in bytes (sealed + open).", float64(cs.Spill.Bytes))
	write("tgopt_cache_spill_seal_errors_total", "Spill segment seal failures (entries dropped, never half-indexed).", float64(cs.Spill.SealErrors))
	write("tgopt_cache_spill_corrupt_records_total", "Spill records that failed CRC validation (served as misses).", float64(cs.Spill.CorruptRecords))
	write("tgopt_cache_spill_corrupt_segments_total", "Spill segments discarded at recovery for failed validation.", float64(cs.Spill.CorruptSegments))
	write("tgopt_cache_spill_dropped_segments_total", "Spill segments dropped whole to honor the byte budget.", float64(cs.Spill.DroppedSegments))
	write("tgopt_cache_spill_compactions_total", "Spill segment compactions.", float64(cs.Spill.Compactions))
	s.writeLayerCacheMetrics(&b)
	write("tgopt_requests_total", "API requests handled.", float64(s.requests.Load()))
	write("tgopt_ingested_total", "Edges accepted via /v1/ingest.", float64(s.ingested.Load()))
	write("tgopt_ingest_late_accepted_total", "Out-of-order edges absorbed inside the lateness window.", float64(s.dyn.LateAccepted()))
	write("tgopt_ingest_late_dropped_total", "Edges dropped below the low-watermark.", float64(s.dyn.LateDropped()))
	write("tgopt_ingest_watermark", "Low-watermark: edges older than this are dropped.", s.dyn.Watermark())
	write("tgopt_cache_invalidated_total", "Memoized embeddings dropped by late-edge invalidation.", float64(s.invalidated.Load()))
	write("tgopt_cache_stale_store_skips_total", "Memo stores skipped or rolled back because a mutation raced the compute.", float64(s.staleStoreSkips()))
	write("tgopt_inflight_requests", "Requests currently executing.", float64(s.inflight.Load()))
	write("tgopt_rejected_total", "Requests rejected with 429 at the in-flight limit.", float64(s.rejected.Load()))
	write("tgopt_timeouts_total", "Requests that exceeded the deadline (504).", float64(s.timeouts.Load()))
	write("tgopt_panics_total", "Handler panics recovered to 500.", float64(s.panics.Load()))
	write("tgopt_client_cancels_total", "Computations abandoned because the client went away (499-style).", float64(s.clientCancels.Load()))
	write("tgopt_unavailable_total", "Computations failed server-side (503), client cancels excluded.", float64(s.unavailable.Load()))
	write("tgopt_snapshots_total", "Background cache snapshots written.", float64(s.snapshotSaves.Load()))
	write("tgopt_snapshot_errors_total", "Cache snapshot or warm-start failures.", float64(s.snapshotErrors.Load()))
	write("tgopt_model_version", "Params version currently serving.", float64(s.modelVersion.Load()))
	write("tgopt_model_swaps_total", "Successful parameter hot-swaps since boot.", float64(s.swaps.Load()))
	write("tgopt_model_rollbacks_total", "Hot-swaps rejected (corrupt or failed snapshot); the previous version kept serving.", float64(s.rollbacks.Load()))
	write("tgopt_model_last_swap_timestamp_seconds", "Unix time of the last successful hot-swap (0 = never).", float64(s.lastSwapUnix.Load()))
	if bs := s.batchStatsJSON(); bs != nil {
		write("tgopt_batch_enqueued_total", "Targets enqueued into the micro-batcher.", float64(bs.Enqueued))
		write("tgopt_batch_coalesced_total", "Targets deduplicated onto an in-flight computation.", float64(bs.Coalesced))
		write("tgopt_batch_coalesce_ratio", "Fraction of targets served by single-flight dedup.", bs.CoalesceRatio)
		write("tgopt_batch_passes_total", "Fused engine passes executed.", float64(bs.Batches))
		write("tgopt_batch_panics_total", "Fused passes that panicked (recovered to errors).", float64(bs.Panics))
		fmt.Fprintf(&b, "# HELP tgopt_batch_occupancy Unique targets per fused pass.\n# TYPE tgopt_batch_occupancy summary\n")
		occ := s.batcher.Occupancy()
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "tgopt_batch_occupancy{quantile=%q} %d\n", q.label, occ.Quantile(q.q))
		}
		fmt.Fprintf(&b, "tgopt_batch_occupancy_sum %d\ntgopt_batch_occupancy_count %d\n", occ.Sum(), occ.Count())
		fmt.Fprintf(&b, "# HELP tgopt_batch_queue_wait_seconds Enqueue-to-flush wait.\n# TYPE tgopt_batch_queue_wait_seconds summary\n")
		qw := s.batcher.QueueWait()
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "tgopt_batch_queue_wait_seconds{quantile=%q} %g\n", q.label, qw.Quantile(q.q).Seconds())
		}
		fmt.Fprintf(&b, "tgopt_batch_queue_wait_seconds_sum %g\ntgopt_batch_queue_wait_seconds_count %d\n", qw.Sum().Seconds(), qw.Count())
	}
	if s.router != nil {
		s.writeShardMetrics(&b, write)
	}
	fmt.Fprintf(&b, "# HELP tgopt_stage_latency_seconds Engine per-stage latency quantiles.\n")
	fmt.Fprintf(&b, "# TYPE tgopt_stage_latency_seconds summary\n")
	hists := s.stageSnapshots()
	for _, st := range core.Stages {
		h := hists[st]
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "tgopt_stage_latency_seconds{stage=%q,quantile=%q} %g\n",
				st, q.label, snapshotQuantile(h, q.q).Seconds())
		}
		fmt.Fprintf(&b, "tgopt_stage_latency_seconds_sum{stage=%q} %g\n", st, h.Sum.Seconds())
		fmt.Fprintf(&b, "tgopt_stage_latency_seconds_count{stage=%q} %d\n", st, h.Count)
	}
	io.WriteString(w, b.String())
}

// edgeJSON is the wire form of one interaction.
type edgeJSON struct {
	Src  int32   `json:"src"`
	Dst  int32   `json:"dst"`
	Time float64 `json:"time"`
	Idx  int32   `json:"idx,omitempty"`
}

type ingestRequest struct {
	Edges []edgeJSON `json:"edges"`
}

type ingestResponse struct {
	// Accepted counts in-order appends, Late the out-of-order edges
	// absorbed by sorted insert inside the lateness window, Dropped the
	// edges older than the low-watermark (counted, never applied).
	Accepted int `json:"accepted"`
	Late     int `json:"late"`
	Dropped  int `json:"dropped"`
	// Invalidated is how many memoized embeddings this request's edges
	// (late inserts, and appends landing under future-time memos)
	// forced out of the cache to keep served results exact.
	Invalidated int     `json:"invalidated"`
	NumEdges    int     `json:"num_edges"`
	MaxTime     float64 `json:"max_time"`
	Watermark   float64 `json:"watermark"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req ingestRequest
	if !decode(w, r, &req) {
		return
	}
	// Partial-ingest semantics: edges are absorbed in request order, and
	// the prefix before the first invalid edge stays in the graph
	// (ingestion is not transactional). The error response reports the
	// absorbed prefix, and tgopt_ingested_total counts exactly the edges
	// that are actually in the graph — including that prefix. Late edges
	// inside the lateness window sorted-insert and selectively
	// invalidate the memoized embeddings they could reach; edges below
	// the watermark are dropped and counted, never silently applied.
	//
	// The whole batch runs under the swap gate's read side: a params
	// swap drops every memo, so an invalidation interleaved with the
	// commit could neither resurrect an old-version entry nor miss a
	// new one — but holding the gate keeps the batch's invalidation
	// accounting attributable to one model version.
	s.swapGate.RLock()
	defer s.swapGate.RUnlock()
	var resp ingestResponse
	for i, e := range req.Edges {
		res, _, err := s.dyn.Ingest(graph.Edge{Src: e.Src, Dst: e.Dst, Time: e.Time, Idx: e.Idx})
		if err != nil {
			s.ingested.Add(int64(resp.Accepted + resp.Late))
			httpError(w, http.StatusBadRequest,
				"edge %d rejected after %d appended, %d late, %d dropped: %v",
				i, resp.Accepted, resp.Late, resp.Dropped, err)
			return
		}
		switch res {
		case graph.IngestAppended:
			resp.Accepted++
			n := s.invalidateFor(e, res)
			resp.Invalidated += n
			s.invalidated.Add(int64(n))
		case graph.IngestLate:
			resp.Late++
			n := s.invalidateFor(e, res)
			resp.Invalidated += n
			s.invalidated.Add(int64(n))
		case graph.IngestDropped:
			resp.Dropped++
		}
	}
	s.ingested.Add(int64(resp.Accepted + resp.Late))
	resp.NumEdges = s.dyn.NumEdges()
	resp.MaxTime = s.dyn.MaxTime()
	resp.Watermark = s.dyn.Watermark()
	writeJSON(w, resp)
}

// invalidateFor runs the cache invalidation an accepted edge requires.
// Single-engine mode invalidates the one engine directly; sharded mode
// broadcasts the edge to every live replica through the router's edge
// log (which also covers per-shard invalidation and restart replay).
// A chronological append can still invalidate: memos served at
// timestamps beyond the new edge were computed before it and their
// sampled windows may now be wrong. The engine's watermark fast path
// makes this a single atomic load when no future-time memo exists (the
// steady state).
func (s *Server) invalidateFor(e edgeJSON, res graph.IngestResult) int {
	edge := graph.Edge{Src: e.Src, Dst: e.Dst, Time: e.Time, Idx: e.Idx}
	if s.router != nil {
		return s.router.Apply(edge, res)
	}
	if res == graph.IngestLate {
		return s.engine.InvalidateLateEdge(e.Src, e.Dst, e.Time)
	}
	return s.engine.InvalidateAppend(e.Src, e.Dst, e.Time)
}

type embedRequest struct {
	Nodes []int32   `json:"nodes"`
	Times []float64 `json:"times"`
}

type embedResponse struct {
	Embeddings [][]float32 `json:"embeddings"`
	// Partial marks a degraded response (HTTP 206): the rows listed in
	// Degraded could not be computed (their shard was down and no
	// fallback answered) and are null; every other row is exact.
	Partial  bool  `json:"partial,omitempty"`
	Degraded []int `json:"degraded,omitempty"`
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req embedRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Nodes) == 0 || len(req.Nodes) != len(req.Times) {
		httpError(w, http.StatusBadRequest, "nodes and times must be non-empty and equal length")
		return
	}
	if !s.validNodes(w, req.Nodes) || !s.validTimes(w, req.Times) {
		return
	}
	// Read side of the hot-swap barrier: every row of this response is
	// computed under one params version.
	s.swapGate.RLock()
	defer s.swapGate.RUnlock()
	slab, degraded, ok := s.embedSlab(w, r, req.Nodes, req.Times)
	if !ok {
		return
	}
	// Response rows sub-slice the single backing slab instead of
	// allocating one []float32 per row.
	d := s.model.Cfg.NodeDim
	out := make([][]float32, len(req.Nodes))
	for i := range out {
		out[i] = slab[i*d : (i+1)*d]
	}
	resp := embedResponse{Embeddings: out}
	if len(degraded) > 0 {
		resp.Partial = true
		resp.Degraded = degraded
		for _, i := range degraded {
			out[i] = nil
		}
		writeJSONStatus(w, http.StatusPartialContent, resp)
		return
	}
	writeJSON(w, resp)
}

// embedSlab computes the embeddings of the given targets as one backing
// slab (row i at [i*d, (i+1)*d)) — scatter-gathered across the shard
// pool in sharded mode (degraded lists the rows no shard could serve),
// through the batcher when batching is on, else by a direct engine pass
// on a pooled arena. On failure it writes the error response and
// returns ok=false.
func (s *Server) embedSlab(w http.ResponseWriter, r *http.Request, nodes []int32, ts []float64) (slab []float32, degraded []int, ok bool) {
	if s.router != nil {
		res, err := s.router.Embed(r.Context(), nodes, ts)
		if err != nil {
			s.writeEmbedError(w, err)
			return nil, nil, false
		}
		if res.Partial {
			s.partials.Add(1)
		}
		return res.Slab, res.Degraded, true
	}
	if s.batcher != nil {
		slab, err := s.batcher.Embed(r.Context(), nodes, ts)
		if err != nil {
			s.writeEmbedError(w, err)
			return nil, nil, false
		}
		return slab, nil, true
	}
	d := s.model.Cfg.NodeDim
	ar := tensor.GetArena()
	h := s.engine.EmbedWith(ar, nodes, ts)
	slab = make([]float32, len(nodes)*d)
	copy(slab, h.Data()[:len(nodes)*d])
	tensor.PutArena(ar)
	return slab, nil, true
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for
// "the client went away before we could answer". It never reaches that
// client; it exists so the access log and counters don't book client
// hang-ups as server-side failures.
const statusClientClosedRequest = 499

// writeEmbedError classifies a failed embed/score computation:
//
//   - the client canceled → 499 accounting, not a server-side 503
//     (previously both were conflated into one 503 path);
//   - the deadline expired → 504 (the middleware's own 504 response
//     wins the race; the write here is a discarded buffer);
//   - the shard pool is below quorum → 503 with a Retry-After hint;
//   - anything else → 503, counted as unavailable.
func (s *Server) writeEmbedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.clientCancels.Add(1)
		httpError(w, statusClientClosedRequest, "client closed request: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "request exceeded its deadline: %v", err)
	case errors.Is(err, shard.ErrNoQuorum):
		s.quorumRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "degraded below quorum: %v", err)
	default:
		s.unavailable.Add(1)
		httpError(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	}
}

type scoreRequest struct {
	Pairs []edgeJSON `json:"pairs"`
}

type scoreResponse struct {
	Logits []float64 `json:"logits"`
	Probs  []float64 `json:"probs"`
	// Partial marks a degraded response (HTTP 206): pairs listed in
	// Degraded had at least one endpoint on an unreachable shard and
	// carry zeroed logit/prob placeholders.
	Partial  bool  `json:"partial,omitempty"`
	Degraded []int `json:"degraded,omitempty"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req scoreRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		httpError(w, http.StatusBadRequest, "pairs must be non-empty")
		return
	}
	nb := len(req.Pairs)
	nodes := make([]int32, 2*nb)
	ts := make([]float64, 2*nb)
	for i, p := range req.Pairs {
		nodes[i], nodes[nb+i] = p.Src, p.Dst
		ts[i], ts[nb+i] = p.Time, p.Time
	}
	if !s.validNodes(w, nodes) || !s.validTimes(w, ts[:nb]) {
		return
	}
	// Read side of the hot-swap barrier. Scoring is two engine calls
	// (embed the slab, then the affinity head) — without this gate a
	// swap could land between them and mix versions inside one logit.
	s.swapGate.RLock()
	defer s.swapGate.RUnlock()
	d := s.model.Cfg.NodeDim
	var resp scoreResponse
	switch {
	case s.router != nil || s.batcher != nil:
		// Sharded or batched path: the src‖dst embeddings come out of
		// the scatter-gather (or the shared fused pass); only the tiny
		// affinity head runs per-request.
		slab, degraded, ok := s.embedSlab(w, r, nodes, ts)
		if !ok {
			return
		}
		ar := tensor.GetArena()
		hSrc := ar.Wrap(slab[:nb*d], nb, d)
		hDst := ar.Wrap(slab[nb*d:], nb, d)
		resp = scoreLogits(s.scoreWith(ar, hSrc, hDst), nb)
		tensor.PutArena(ar)
		if len(degraded) > 0 {
			// A pair is degraded if either endpoint row was (targets are
			// laid out src[0..nb) ‖ dst[0..nb)). Its score was computed
			// over a zero row and is meaningless: zero the placeholders.
			bad := map[int]bool{}
			for _, i := range degraded {
				bad[i%nb] = true
			}
			for i := range resp.Logits {
				if bad[i] {
					resp.Logits[i], resp.Probs[i] = 0, 0
					resp.Degraded = append(resp.Degraded, i)
				}
			}
			resp.Partial = true
			writeJSONStatus(w, http.StatusPartialContent, resp)
			return
		}
	default:
		// Full arena hot path: embed src‖dst, split, score — zero heap
		// allocations in the engine once the pooled arenas are warm.
		ar := tensor.GetArena()
		h := s.engine.EmbedWith(ar, nodes, ts)
		hSrc := ar.Wrap(h.Data()[:nb*d], nb, d)
		hDst := ar.Wrap(h.Data()[nb*d:], nb, d)
		resp = scoreLogits(s.scoreWith(ar, hSrc, hDst), nb)
		tensor.PutArena(ar)
	}
	writeJSON(w, resp)
}

// scoreWith runs the affinity head at the server's precision. It is
// mode-agnostic: the engine is nil in sharded mode, so the server holds
// its own packed head instead of borrowing an engine's.
func (s *Server) scoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor {
	if s.qmodel != nil {
		return s.qmodel.ScoreWith(ar, hSrc, hDst)
	}
	return s.model.ScoreWith(ar, hSrc, hDst)
}

// scoreLogits renders an affinity-head output column into the score
// response (logit plus overflow-safe sigmoid probability).
func scoreLogits(logits *tensor.Tensor, nb int) scoreResponse {
	resp := scoreResponse{Logits: make([]float64, nb), Probs: make([]float64, nb)}
	for i := 0; i < nb; i++ {
		l := float64(logits.At(i, 0))
		resp.Logits[i] = l
		resp.Probs[i] = sigmoid(l)
	}
	return resp
}

type statsResponse struct {
	NumNodes   int             `json:"num_nodes"`
	NumEdges   int             `json:"num_edges"`
	MaxTime    float64         `json:"max_time"`
	CacheItems int             `json:"cache_items"`
	CacheBytes int64           `json:"cache_bytes"`
	HitRate    float64         `json:"hit_rate"`
	Cache      core.CacheStats `json:"cache"`
	// CacheLayers breaks the cache section down per memoized layer
	// (summed across shards in sharded mode); deep layers (>= 2) only
	// appear when serving a model with -layers >= 3.
	CacheLayers []core.LayerCacheStats `json:"cache_layers,omitempty"`
	Requests    int64                  `json:"requests"`
	Ingested    int64                  `json:"ingested"`
	InFlight    int64                  `json:"in_flight"`
	Rejected    int64                  `json:"rejected"`
	Timeouts    int64                  `json:"timeouts"`
	Panics      int64                  `json:"panics"`
	// ClientCancels (499-style) and Unavailable (real 503s) split the
	// failed-computation accounting by cause; QuorumRejects and
	// Partials are the sharded degradation counters.
	ClientCancels int64                 `json:"client_cancels"`
	Unavailable   int64                 `json:"unavailable"`
	QuorumRejects int64                 `json:"quorum_rejects,omitempty"`
	Partials      int64                 `json:"partial_responses,omitempty"`
	Snapshots     int64                 `json:"snapshots"`
	SnapErrors    int64                 `json:"snapshot_errors"`
	Ingest        ingestStats           `json:"ingest"`
	// Model reports the online-learning loop: the params version
	// serving, successful hot-swaps, rejected (rolled-back) swaps, and
	// when the last swap landed.
	Model    modelStats            `json:"model"`
	Stages   map[string]stageStats `json:"stages"`
	Batching *batchStats           `json:"batching,omitempty"`
	// Shards reports per-shard breaker/restart state and the router's
	// hedge/degradation counters in sharded mode.
	Shards *shard.RouterStats `json:"shards,omitempty"`
}

// ingestStats reports the out-of-order ingestion state: the configured
// lateness window, the current low-watermark, the late-edge outcome
// counters, and the invalidation work late edges have caused.
type ingestStats struct {
	Lateness        float64 `json:"lateness"`
	Watermark       float64 `json:"watermark"`
	LateAccepted    int64   `json:"late_accepted"`
	LateDropped     int64   `json:"late_dropped"`
	Invalidated     int64   `json:"invalidated"`
	StaleStoreSkips int64   `json:"stale_store_skips"`
}

// stageStats is the JSON rendering of one engine stage's latency
// histogram (quantiles are upper bounds, see stats.Histogram.Quantile).
type stageStats struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := statsResponse{
		NumNodes:      s.dyn.NumNodes(),
		NumEdges:      s.dyn.NumEdges(),
		MaxTime:       s.dyn.MaxTime(),
		CacheItems:    s.cacheLen(),
		CacheBytes:    s.cacheBytes(),
		HitRate:       s.hitRate.Average(),
		Cache:         s.cacheStats(),
		CacheLayers:   s.layerCacheStats(),
		Requests:      s.requests.Load(),
		Ingested:      s.ingested.Load(),
		InFlight:      s.inflight.Load(),
		Rejected:      s.rejected.Load(),
		Timeouts:      s.timeouts.Load(),
		Panics:        s.panics.Load(),
		ClientCancels: s.clientCancels.Load(),
		Unavailable:   s.unavailable.Load(),
		QuorumRejects: s.quorumRejects.Load(),
		Partials:      s.partials.Load(),
		Snapshots:     s.snapshotSaves.Load(),
		SnapErrors:    s.snapshotErrors.Load(),
		Ingest: ingestStats{
			Lateness:        s.dyn.Lateness(),
			Watermark:       s.dyn.Watermark(),
			LateAccepted:    s.dyn.LateAccepted(),
			LateDropped:     s.dyn.LateDropped(),
			Invalidated:     s.invalidated.Load(),
			StaleStoreSkips: s.staleStoreSkips(),
		},
		Model:    s.modelStatsJSON(),
		Stages:   s.stageStatsJSON(),
		Batching: s.batchStatsJSON(),
	}
	if s.router != nil {
		rs := s.router.Stats()
		resp.Shards = &rs
	}
	writeJSON(w, resp)
}

// validTimes rejects non-finite timestamps with 400: NaN/Inf truncate
// to arbitrary low bits in the memo key (core.Key), poisoning the cache
// and the single-flight registry with unreachable-yet-resident entries.
func (s *Server) validTimes(w http.ResponseWriter, ts []float64) bool {
	for _, t := range ts {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			httpError(w, http.StatusBadRequest, "non-finite time %v", t)
			return false
		}
	}
	return true
}

// validNodes rejects node ids outside the graph (and the feature
// tables), writing the error response itself.
func (s *Server) validNodes(w http.ResponseWriter, nodes []int32) bool {
	max := int32(s.dyn.NumNodes())
	for _, v := range nodes {
		if v < 1 || v > max {
			httpError(w, http.StatusBadRequest, "node %d out of range 1..%d", v, max)
			return false
		}
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// writeJSON encodes v to a buffer first, so an encoding failure can
// still produce a clean 500 — encoding straight into the ResponseWriter
// would have already committed a 200 header and a partial body.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit status code (degraded
// partial responses go out as 206).
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode error: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// sigmoid is the overflow-safe logistic function.
func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
