package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/shard"
	"tgopt/internal/tensor"
)

// shardedServer builds a server over a shard pool with the same model
// fixture as testServer, so bodies are directly comparable between the
// two serving planes.
func shardedServer(t *testing.T, cfg shard.Config) (*Server, *httptest.Server) {
	t.Helper()
	m, dyn := testModelDyn(t)
	s, err := NewSharded(m, dyn, core.OptAll(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

var shardTestEdges = []edgeJSON{
	{Src: 1, Dst: 2, Time: 10}, {Src: 1, Dst: 3, Time: 20},
	{Src: 2, Dst: 4, Time: 30}, {Src: 3, Dst: 5, Time: 40},
	{Src: 4, Dst: 6, Time: 50}, {Src: 5, Dst: 7, Time: 60},
	{Src: 6, Dst: 8, Time: 70}, {Src: 7, Dst: 1, Time: 80},
}

func waitForServe(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestServeShardedEquivalence is the router/gather ordering regression
// test (the sharded sibling of TestServeBatchedEquivalence): a scrambled
// embed request scattered over 4 shards must return rows in exact input
// order, bitwise-identical to the unsharded single-engine server, and
// per-shard single-flight dedup must demonstrably fire.
func TestServeShardedEquivalence(t *testing.T) {
	_, off := testServer(t)
	sOn, on := shardedServer(t, shard.Config{
		Shards: 4,
		Batch:  &batcher.Config{Window: 2 * time.Millisecond, MaxBatch: 32},
	})
	ingest(t, off.URL, shardTestEdges)
	ingest(t, on.URL, shardTestEdges)

	// Targets deliberately scrambled across owners and duplicated, so a
	// gather that appended rows in shard-completion order (or deduped
	// without restoring multiplicity) would corrupt the body.
	req := embedRequest{
		Nodes: []int32{7, 1, 7, 3, 5, 2, 8, 1, 6, 4, 2, 7},
		Times: []float64{90, 90, 90, 95, 95, 90, 95, 90, 95, 95, 90, 90},
	}
	want, code, err := postBody(off.URL, "/v1/embed", req)
	if err != nil || code != 200 {
		t.Fatalf("unsharded ground truth: code %d err %v", code, err)
	}
	got, code, err := postBody(on.URL, "/v1/embed", req)
	if err != nil || code != 200 {
		t.Fatalf("sharded embed: code %d err %v", code, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded body differs from unsharded\nsharded:   %s\nunsharded: %s", got, want)
	}

	// Concurrent identical requests: still bitwise-identical, and the
	// per-shard batchers coalesce the overlap.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, err := postBody(on.URL, "/v1/embed", req)
			if err != nil || code != 200 {
				errs <- fmt.Errorf("concurrent sharded embed: code %d err %v", code, err)
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("concurrent sharded body differs from unsharded")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sr statsResponse
	getJSON(t, on.URL+"/v1/stats", &sr)
	if sr.Shards == nil {
		t.Fatal("stats missing shards section in sharded mode")
	}
	if sr.Shards.Healthy != 4 || sr.Shards.Quorum != 1 {
		t.Fatalf("healthy/quorum = %d/%d, want 4/1", sr.Shards.Healthy, sr.Shards.Quorum)
	}
	if sr.Shards.Batching == nil || sr.Shards.Batching.Enqueued == 0 {
		t.Fatalf("per-shard batchers unused: %+v", sr.Shards.Batching)
	}
	// The request repeats node 7 three times at one timestamp: dedup
	// must have coalesced targets even within a single request.
	if sr.Shards.Batching.Coalesced == 0 {
		t.Fatalf("no single-flight dedup across shards: %+v", sr.Shards.Batching)
	}
	if sOn.Router().CacheLen() == 0 {
		t.Fatal("shard caches empty after serving")
	}
	// Per-layer stats must survive the shard merge: the summed Items
	// across layers equals the router's total entry count, and the
	// stats response carries the same per-layer section it does in
	// single-engine mode.
	if len(sr.CacheLayers) == 0 {
		t.Fatal("sharded stats missing cache_layers section")
	}
	layerItems := 0
	for _, lc := range sOn.Router().LayerCacheStats() {
		layerItems += lc.Items
	}
	if layerItems != sOn.Router().CacheLen() {
		t.Fatalf("merged per-layer Items %d != router CacheLen %d",
			layerItems, sOn.Router().CacheLen())
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// poisonEmbedder panics on any shard whose batch contains the poisoned
// node while armed — the fault follows the target, so the primary and
// every fallback for that group fail, forcing a degraded row rather
// than a rescued one.
type poisonEmbedder struct {
	core.Embedder
	node  int32
	armed *atomic.Bool
}

func (p poisonEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if p.armed.Load() {
		for _, n := range nodes {
			if n == p.node {
				panic("poisoned target")
			}
		}
	}
	return p.Embedder.EmbedWith(ar, nodes, ts)
}

// TestServeShardedPartialResponse drives the degraded contract over
// HTTP: a request whose group fails on every shard returns 206 with
// partial=true, null degraded rows, and exact remaining rows; /v1/stats
// and /metrics expose the breaker cycle; after the supervisor restarts
// the crashed shards the same request returns 200 bitwise-identical to
// the unsharded server.
func TestServeShardedPartialResponse(t *testing.T) {
	const poisoned = 3
	var armed atomic.Bool
	_, off := testServer(t)
	s, on := shardedServer(t, shard.Config{
		Shards:  4,
		Breaker: shard.BreakerConfig{Window: 16, MinSamples: 2, Cooldown: 20 * time.Millisecond, Probes: 1},
		WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
			return poisonEmbedder{Embedder: e, node: poisoned, armed: &armed}
		},
	})
	ingest(t, off.URL, shardTestEdges)
	ingest(t, on.URL, shardTestEdges)

	req := embedRequest{
		Nodes: []int32{1, 2, poisoned, 4},
		Times: []float64{90, 90, 90, 90},
	}
	want, code, err := postBody(off.URL, "/v1/embed", req)
	if err != nil || code != 200 {
		t.Fatalf("unsharded ground truth: code %d err %v", code, err)
	}
	var wantResp embedResponse
	if err := json.Unmarshal(want, &wantResp); err != nil {
		t.Fatal(err)
	}

	// Healthy first: full 200, bitwise equal.
	got, code, err := postBody(on.URL, "/v1/embed", req)
	if err != nil || code != 200 || !bytes.Equal(got, want) {
		t.Fatalf("healthy sharded embed: code %d err %v", code, err)
	}

	armed.Store(true)
	body, code, err := postBody(on.URL, "/v1/embed", req)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusPartialContent {
		t.Fatalf("poisoned embed: code %d body %s, want 206", code, body)
	}
	var pr embedResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Partial || len(pr.Degraded) == 0 {
		t.Fatalf("206 body not marked partial: %s", body)
	}
	bad := map[int]bool{}
	for _, i := range pr.Degraded {
		bad[i] = true
	}
	if !bad[2] {
		t.Fatalf("poisoned row 2 not degraded: %v", pr.Degraded)
	}
	for i, row := range pr.Embeddings {
		if bad[i] {
			if row != nil {
				t.Fatalf("degraded row %d not null: %v", i, row)
			}
			continue
		}
		if len(row) != len(wantResp.Embeddings[i]) {
			t.Fatalf("row %d length mismatch", i)
		}
		for j := range row {
			if row[j] != wantResp.Embeddings[i][j] {
				t.Fatalf("non-degraded row %d differs from unsharded reference", i)
			}
		}
	}
	armed.Store(false)

	// The poisoned group's shards crashed; the supervisor restarts them
	// and the pool settles back to full clean 200s.
	waitForServe(t, 5*time.Second, func() bool {
		body, code, err := postBody(on.URL, "/v1/embed", req)
		return err == nil && code == 200 && bytes.Equal(body, want)
	})

	var sr statsResponse
	getJSON(t, on.URL+"/v1/stats", &sr)
	if sr.Shards == nil {
		t.Fatal("stats missing shards section")
	}
	if sr.Partials == 0 || sr.Shards.PartialResponses == 0 || sr.Shards.DegradedTargets == 0 {
		t.Fatalf("partial counters not booked: server=%d router=%+v", sr.Partials, sr.Shards)
	}
	var panics, opens, restarts int64
	for _, v := range sr.Shards.Shards {
		panics += v.Panics
		opens += v.BreakerOpens
		restarts += v.Restarts
	}
	if panics == 0 || opens == 0 || restarts == 0 {
		t.Fatalf("breaker cycle not visible in stats: panics=%d opens=%d restarts=%d", panics, opens, restarts)
	}

	// The same cycle must be scrapeable from /metrics.
	resp, err := http.Get(on.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	metrics := buf.String()
	for _, series := range []string{
		"tgopt_shards 4",
		"tgopt_partial_responses_total",
		"tgopt_shard_up{shard=\"0\"}",
		"tgopt_shard_panics_total{shard=",
		"tgopt_shard_restarts_total{shard=",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	_ = s
}

// stallEmbedder stalls every shard while armed — used to open every
// breaker via deadline failures (no crash, so no supervisor involved)
// and prove the pool recovers through cooldown + half-open probes alone.
type stallEmbedder struct {
	core.Embedder
	armed *atomic.Bool
	d     time.Duration
}

func (p stallEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if p.armed.Load() {
		time.Sleep(p.d)
	}
	return p.Embedder.EmbedWith(ar, nodes, ts)
}

// TestServeHealthEndpoints pins the /healthz and /readyz contract in
// both serving modes, including the below-quorum 503 and the
// cooldown-based recovery of a pool whose every breaker opened on
// error rate (no crash → no supervisor → recovery must come from
// half-open probes admitted by the quorum check's Eligible semantics).
func TestServeHealthEndpoints(t *testing.T) {
	t.Run("lifecycle", func(t *testing.T) {
		s, ts := testServer(t)
		if code := getCode(t, ts.URL+"/healthz"); code != 200 {
			t.Fatalf("/healthz = %d, want 200", code)
		}
		if code := getCode(t, ts.URL+"/readyz"); code != 503 {
			t.Fatalf("/readyz before SetReady = %d, want 503", code)
		}
		s.SetReady()
		if code := getCode(t, ts.URL+"/readyz"); code != 200 {
			t.Fatalf("/readyz after SetReady = %d, want 200", code)
		}
		s.BeginDrain()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("/readyz draining = %d (Retry-After %q), want 503 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		if code := getCode(t, ts.URL+"/healthz"); code != 200 {
			t.Fatal("/healthz must stay 200 while draining")
		}
	})

	t.Run("quorum", func(t *testing.T) {
		var armed atomic.Bool
		s, ts := shardedServer(t, shard.Config{
			Shards: 2,
			Quorum: 2,
			Breaker: shard.BreakerConfig{
				Window: 4, Threshold: 0.4, MinSamples: 1,
				Cooldown: 50 * time.Millisecond, Probes: 1,
			},
			WrapEmbedder: func(id int, e core.Embedder) core.Embedder {
				return stallEmbedder{Embedder: e, armed: &armed, d: 2 * time.Second}
			},
		})
		s.SetLimits(Limits{Timeout: 100 * time.Millisecond})
		ingest(t, ts.URL, shardTestEdges)
		s.SetReady()
		if code := getCode(t, ts.URL+"/readyz"); code != 200 {
			t.Fatalf("/readyz with full quorum = %d, want 200", code)
		}

		// Stall both shards: each embed leg exceeds the server deadline,
		// books a breaker failure, and with MinSamples 1 both breakers
		// open. Quorum 2 with 0 admitting shards → not ready.
		req := embedRequest{Nodes: []int32{1, 2, 3, 4}, Times: []float64{90, 90, 90, 90}}
		armed.Store(true)
		for i := 0; i < 4; i++ {
			postBody(ts.URL, "/v1/embed", req)
		}
		if code := getCode(t, ts.URL+"/readyz"); code != 503 {
			t.Fatalf("/readyz below quorum = %d, want 503", code)
		}
		resp, body := post(t, ts.URL+"/v1/embed", req)
		if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("embed below quorum = %d (%s), want 503 with Retry-After", resp.StatusCode, body)
		}
		var sr statsResponse
		getJSON(t, ts.URL+"/v1/stats", &sr)
		if sr.QuorumRejects == 0 {
			t.Fatal("quorum_rejects not booked")
		}

		// Recovery with no supervisor help: cooldowns elapse, the shards
		// become quorum-eligible again, and half-open probes re-close the
		// breakers under live traffic.
		armed.Store(false)
		waitForServe(t, 5*time.Second, func() bool {
			body, code, err := postBody(ts.URL, "/v1/embed", req)
			_ = body
			return err == nil && code == 200
		})
		if code := getCode(t, ts.URL+"/readyz"); code != 200 {
			t.Fatalf("/readyz after recovery = %d, want 200", code)
		}
	})
}

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestWriteEmbedErrorAccounting pins the 499/503/504 split: client
// cancellation is booked as client_cancels (nginx-style 499), never as
// a server-side 503, and quorum rejections carry a Retry-After hint.
func TestWriteEmbedErrorAccounting(t *testing.T) {
	s := &Server{}
	cases := []struct {
		err        error
		code       int
		retryAfter bool
	}{
		{context.Canceled, statusClientClosedRequest, false},
		{fmt.Errorf("leg: %w", context.Canceled), statusClientClosedRequest, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{shard.ErrNoQuorum, http.StatusServiceUnavailable, true},
		{fmt.Errorf("disk on fire"), http.StatusServiceUnavailable, false},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeEmbedError(rec, tc.err)
		if rec.Code != tc.code {
			t.Errorf("writeEmbedError(%v) = %d, want %d", tc.err, rec.Code, tc.code)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("writeEmbedError(%v) Retry-After present = %v, want %v", tc.err, got, tc.retryAfter)
		}
	}
	if got := s.clientCancels.Load(); got != 2 {
		t.Errorf("clientCancels = %d, want 2 (cancellation must not book as unavailable)", got)
	}
	if got := s.unavailable.Load(); got != 1 {
		t.Errorf("unavailable = %d, want 1", got)
	}
	if got := s.quorumRejects.Load(); got != 1 {
		t.Errorf("quorumRejects = %d, want 1", got)
	}
}
