package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// oooModel builds the shared model for the equivalence pair: both
// servers must run identical parameters so any divergence is ingestion
// order, not weights.
func oooModel(t *testing.T, nodes, maxEdges, d int) *tgat.Model {
	return oooModelLayers(t, nodes, maxEdges, d, 2)
}

func oooModelLayers(t *testing.T, nodes, maxEdges, d, layers int) *tgat.Model {
	t.Helper()
	r := tensor.NewRNG(21)
	nodeFeat := tensor.Randn(r, nodes+1, d)
	edgeFeat := tensor.Randn(r, maxEdges+1, d)
	for j := 0; j < d; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: layers, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 4, Seed: 2}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// embedRows posts one embed request and returns the parsed rows.
func embedRows(t *testing.T, url string, ns []int32, ts []float64) [][]float32 {
	t.Helper()
	resp, body := post(t, url+"/v1/embed", embedRequest{Nodes: ns, Times: ts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed: %d %s", resp.StatusCode, body)
	}
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	return er.Embeddings
}

// TestServeOutOfOrderIngestConvergesToSorted is the tentpole pin: a
// window-shuffled live ingest, with /v1/embed queries racing it, must
// converge to bitwise-identical embeddings against a server that
// ingested the same stream fully sorted. Bitwise equality holds because
// per-row computation is deterministic, the converged adjacency is
// identical, and selective invalidation plus the mutation-epoch store
// guard leave no stale memo behind. Run with -race.
func TestServeOutOfOrderIngestConvergesToSorted(t *testing.T) {
	serveOOOConvergence(t, 2, 500)
}

// TestServeOutOfOrderIngestConvergesToSortedDeep repeats the
// convergence pin with a 3-layer model, so the layer-2 memo cache and
// its transitive invalidation (DESIGN.md §15) are under the same
// concurrent ingest/embed race. Run with -race.
func TestServeOutOfOrderIngestConvergesToSortedDeep(t *testing.T) {
	serveOOOConvergence(t, 3, 300)
}

func serveOOOConvergence(t *testing.T, layers, total int) {
	const (
		nodes    = 20
		lateness = 60.0
		dim      = 16
	)
	m := oooModelLayers(t, nodes, total+1, dim, layers)
	r := tensor.NewRNG(33)

	// Strictly increasing distinct integral times and explicit edge ids:
	// no tie-order ambiguity between the two ingestion orders.
	stream := make([]edgeJSON, 0, total)
	for i := 0; len(stream) < total; i++ {
		src := int32(1 + r.Intn(nodes))
		dst := int32(1 + r.Intn(nodes))
		if src == dst {
			continue
		}
		stream = append(stream, edgeJSON{Src: src, Dst: dst, Time: float64(len(stream) + 1), Idx: int32(len(stream) + 1)})
	}
	// Shuffle by release time: each edge is delayed by up to 80% of the
	// lateness window, so every arrival is guaranteed in-window.
	type release struct {
		e  edgeJSON
		at float64
	}
	rels := make([]release, total)
	for i, e := range stream {
		rels[i] = release{e, e.Time + r.Float64()*lateness*0.8}
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })

	sortedDyn := graph.NewDynamic(nodes)
	sortedSrv := New(m, sortedDyn, core.OptAll())
	sortedTS := httptest.NewServer(sortedSrv.Handler())
	t.Cleanup(sortedTS.Close)

	oooDyn := graph.NewDynamic(nodes)
	oooDyn.SetLateness(lateness)
	oooSrv := New(m, oooDyn, core.OptAll())
	oooTS := httptest.NewServer(oooSrv.Handler())
	t.Cleanup(oooTS.Close)

	ingest(t, sortedTS.URL, stream)

	// Shuffled ingest in chunks, with embed workers hammering the server
	// for already-ingested (node, time) pairs the whole time.
	var progress atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			wr := tensor.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := int(progress.Load())
				if p == 0 {
					continue
				}
				e := rels[wr.Intn(p)].e
				b, _ := json.Marshal(embedRequest{Nodes: []int32{e.Src, e.Dst}, Times: []float64{e.Time, e.Time}})
				resp, err := http.Post(oooTS.URL+"/v1/embed", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("concurrent embed: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("concurrent embed status %d", resp.StatusCode)
					return
				}
			}
		}(uint64(100 + w))
	}
	for lo := 0; lo < total; lo += 16 {
		hi := lo + 16
		if hi > total {
			hi = total
		}
		chunk := make([]edgeJSON, 0, hi-lo)
		for _, x := range rels[lo:hi] {
			chunk = append(chunk, x.e)
		}
		resp, body := post(t, oooTS.URL+"/v1/ingest", ingestRequest{Edges: chunk})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shuffled ingest: %d %s", resp.StatusCode, body)
		}
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Dropped != 0 {
			t.Fatalf("in-window edge dropped: %s", body)
		}
		if ir.Accepted+ir.Late != hi-lo {
			t.Fatalf("chunk accounting wrong: %s", body)
		}
		progress.Store(int64(hi))
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent embed worker failed")
	}

	if oooDyn.NumEdges() != total {
		t.Fatalf("converged graph has %d edges, want %d", oooDyn.NumEdges(), total)
	}
	if oooDyn.LateAccepted() == 0 {
		t.Fatal("shuffle produced no late edges (test is vacuous)")
	}

	// Replay every stream query on both servers and compare bitwise; a
	// second pass on the shuffled server is all cache hits and must not
	// change a single bit (no stale memo survived).
	probe := func(url string) [][]float32 {
		var rows [][]float32
		for lo := 0; lo < total; lo += 100 {
			batch := stream[lo : lo+100]
			ns := make([]int32, 2*len(batch))
			ts := make([]float64, 2*len(batch))
			for i, e := range batch {
				ns[i], ns[len(batch)+i] = e.Src, e.Dst
				ts[i], ts[len(batch)+i] = e.Time, e.Time
			}
			rows = append(rows, embedRows(t, url, ns, ts)...)
		}
		// Final-time probe over every node.
		ns := make([]int32, nodes)
		ts := make([]float64, nodes)
		for i := range ns {
			ns[i], ts[i] = int32(i+1), float64(total+1)
		}
		return append(rows, embedRows(t, url, ns, ts)...)
	}
	want := probe(sortedTS.URL)
	got := probe(oooTS.URL)
	again := probe(oooTS.URL)
	for i := range want {
		for j := range want[i] {
			if math.Float32bits(want[i][j]) != math.Float32bits(got[i][j]) {
				t.Fatalf("row %d dim %d: shuffled ingest diverged from sorted (%v vs %v)",
					i, j, got[i][j], want[i][j])
			}
			if math.Float32bits(got[i][j]) != math.Float32bits(again[i][j]) {
				t.Fatalf("row %d dim %d: second (all-hit) pass changed (%v vs %v) — stale memo",
					i, j, got[i][j], again[i][j])
			}
		}
	}
	if layers >= 3 {
		// The deep cache must have survived the churn selectively — a
		// clear-all policy would leave it rebuilt but proves nothing; a
		// zero here means deep memoization never engaged at all.
		if c := oooSrv.engine.CacheFor(2); c == nil || c.Len() == 0 {
			t.Fatal("layer-2 cache empty after converged deep serving")
		}
	}
}

func TestServeIngestLateEdgeInvalidatesStaleEmbedding(t *testing.T) {
	// Direct staleness pin: serve an embedding, ingest a late edge that
	// lands inside its sampled window, and require the re-served value
	// to change (the memo was invalidated) and to match a sorted-ingest
	// control bitwise.
	const nodes, dim = 20, 16
	m := oooModel(t, nodes, 64, dim)

	build := func(lateness float64) (*Server, *httptest.Server) {
		dyn := graph.NewDynamic(nodes)
		if lateness > 0 {
			dyn.SetLateness(lateness)
		}
		srv := New(m, dyn, core.OptAll())
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, ts
	}
	srv, ts := build(100)
	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
		{Src: 2, Dst: 4, Time: 30, Idx: 3},
	})
	before := embedRows(t, ts.URL, []int32{1}, []float64{40})[0]

	// Late edge at t=25 touching node 1: inside the (most-recent-4)
	// window of ⟨1, 40⟩.
	resp, body := post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{{Src: 1, Dst: 5, Time: 25, Idx: 4}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late ingest: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Late != 1 {
		t.Fatalf("late edge not classified late: %s", body)
	}
	if srv.dyn.LateAccepted() != 1 {
		t.Fatal("LateAccepted counter not bumped")
	}

	after := embedRows(t, ts.URL, []int32{1}, []float64{40})[0]
	changed := false
	for j := range after {
		if math.Float32bits(after[j]) != math.Float32bits(before[j]) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("embedding unchanged after in-window late edge (stale memo served)")
	}

	// Control: a server that saw the four edges in order must agree
	// bitwise with the post-invalidation value.
	_, ctlTS := build(0)
	ingest(t, ctlTS.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
		{Src: 1, Dst: 5, Time: 25, Idx: 4},
		{Src: 2, Dst: 4, Time: 30, Idx: 3},
	})
	want := embedRows(t, ctlTS.URL, []int32{1}, []float64{40})[0]
	for j := range want {
		if math.Float32bits(after[j]) != math.Float32bits(want[j]) {
			t.Fatalf("dim %d: late-ingest value %v != sorted control %v", j, after[j], want[j])
		}
	}
}

func TestServeIngestAppendInvalidatesFutureMemo(t *testing.T) {
	// Regression (PR 5 debt): only *late* edges invalidated memos. A
	// perfectly chronological append under an already-served future-time
	// embedding left the memo stale, and the server re-served the
	// pre-append value forever. Same shape as the late-edge pin above,
	// but with a strictly in-order ingest.
	const nodes, dim = 20, 16
	m := oooModel(t, nodes, 64, dim)

	build := func() (*Server, *httptest.Server) {
		dyn := graph.NewDynamic(nodes) // no lateness: every edge appends
		srv := New(m, dyn, core.OptAll())
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, ts
	}
	_, ts := build()
	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
		{Src: 2, Dst: 4, Time: 30, Idx: 3},
	})
	// Serve ⟨1, 40⟩ ahead of the stream head: memoized at t=40.
	before := embedRows(t, ts.URL, []int32{1}, []float64{40})[0]

	// Chronological append at t=35 touching node 1 — inside the sampled
	// window of the cached query.
	resp, body := post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{{Src: 1, Dst: 5, Time: 35, Idx: 4}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append ingest: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 || ir.Late != 0 {
		t.Fatalf("append misclassified: %s", body)
	}
	if ir.Invalidated == 0 {
		t.Fatal("chronological append under a future-time memo invalidated nothing (the seed behavior)")
	}

	after := embedRows(t, ts.URL, []int32{1}, []float64{40})[0]
	changed := false
	for j := range after {
		if math.Float32bits(after[j]) != math.Float32bits(before[j]) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("embedding unchanged after in-window append (stale memo served)")
	}

	// Control: a server that had all four edges before the first query
	// must agree bitwise.
	_, ctlTS := build()
	ingest(t, ctlTS.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
		{Src: 2, Dst: 4, Time: 30, Idx: 3},
		{Src: 1, Dst: 5, Time: 35, Idx: 4},
	})
	want := embedRows(t, ctlTS.URL, []int32{1}, []float64{40})[0]
	for j := range want {
		if math.Float32bits(after[j]) != math.Float32bits(want[j]) {
			t.Fatalf("dim %d: post-append value %v != sorted control %v", j, after[j], want[j])
		}
	}
}

func TestServeAppendInvalidationReachesBatcher(t *testing.T) {
	// Wiring pin for the read-your-writes fix: with batching on, every
	// invalidating ingest (append or late) must call RetireTargets on
	// the serving batcher — in-flight single-flight keys for the touched
	// endpoints are computed against pre-edit history and must not be
	// joined by requests that arrive after the ingest acknowledgement.
	const nodes, dim = 20, 16
	m := oooModel(t, nodes, 64, dim)
	dyn := graph.NewDynamic(nodes)
	srv := New(m, dyn, core.OptAll())
	srv.SetBatching(batcher.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
	})
	embedRows(t, ts.URL, []int32{1}, []float64{30})
	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 4, Time: 25, Idx: 3}})
	if got := srv.Batcher().Stats().RetireCalls; got == 0 {
		t.Fatal("invalidating append never reached Batcher.RetireTargets (hook unwired)")
	}
}

func TestServeStatsReportIngestSection(t *testing.T) {
	const nodes, dim = 20, 16
	m := oooModel(t, nodes, 64, dim)
	dyn := graph.NewDynamic(nodes)
	dyn.SetLateness(50)
	srv := New(m, dyn, core.OptAll())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ingest(t, ts.URL, []edgeJSON{{Src: 1, Dst: 2, Time: 100}})
	embedRows(t, ts.URL, []int32{1, 2}, []float64{100, 100})
	// One late (in-window) and one dropped (below watermark).
	post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: []edgeJSON{
		{Src: 1, Dst: 3, Time: 80},
		{Src: 2, Dst: 3, Time: 10},
	}})

	resp, body := post(t, ts.URL+"/v1/embed", embedRequest{Nodes: []int32{1}, Times: []float64{100}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed after late ingest: %d %s", resp.StatusCode, body)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Ingest.Lateness != 50 {
		t.Fatalf("stats lateness = %v", sr.Ingest.Lateness)
	}
	if sr.Ingest.Watermark != 50 {
		t.Fatalf("stats watermark = %v", sr.Ingest.Watermark)
	}
	if sr.Ingest.LateAccepted != 1 || sr.Ingest.LateDropped != 1 {
		t.Fatalf("late counters: %+v", sr.Ingest)
	}
	if sr.Ingested != 2 {
		t.Fatalf("ingested = %d, want 2 (append + late; drop not counted)", sr.Ingested)
	}

	// The Prometheus rendering carries the same counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"tgopt_ingest_late_accepted_total 1",
		"tgopt_ingest_late_dropped_total 1",
		"tgopt_ingest_watermark 50",
		"tgopt_cache_invalidated_total",
		"tgopt_cache_stale_store_skips_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServeStatsReportPerLayerCache pins the per-layer cache breakdown:
// a 3-layer server must expose a cache_layers section on /v1/stats with
// one entry per memoized layer, and layer-labeled tgopt_cache_layer_*
// series on /metrics. The per-layer counters must sum to the aggregate
// section for the fields both report.
func TestServeStatsReportPerLayerCache(t *testing.T) {
	const nodes, dim = 20, 16
	m := oooModelLayers(t, nodes, 64, dim, 3)
	dyn := graph.NewDynamic(nodes)
	dyn.SetLateness(50)
	srv := New(m, dyn, core.OptAll())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ingest(t, ts.URL, []edgeJSON{
		{Src: 1, Dst: 2, Time: 10, Idx: 1},
		{Src: 1, Dst: 3, Time: 20, Idx: 2},
		{Src: 2, Dst: 4, Time: 30, Idx: 3},
	})
	embedRows(t, ts.URL, []int32{1, 2, 3}, []float64{40, 40, 40})
	embedRows(t, ts.URL, []int32{1, 2, 3}, []float64{40, 40, 40}) // all-hit pass

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.CacheLayers) != 2 {
		t.Fatalf("cache_layers has %d entries, want 2 (layers 1 and 2): %+v", len(sr.CacheLayers), sr.CacheLayers)
	}
	var items int
	var lookups, hits int64
	for i, ls := range sr.CacheLayers {
		if ls.Layer != i+1 {
			t.Fatalf("cache_layers[%d].Layer = %d, want %d", i, ls.Layer, i+1)
		}
		if ls.Items == 0 || ls.Lookups == 0 {
			t.Fatalf("layer %d reports no activity: %+v", ls.Layer, ls)
		}
		items += ls.Items
		lookups += ls.Lookups
		hits += ls.Hits
	}
	if items != sr.CacheItems {
		t.Fatalf("per-layer items sum %d != aggregate %d", items, sr.CacheItems)
	}
	if lookups != sr.Cache.Lookups || hits != sr.Cache.Hits {
		t.Fatalf("per-layer counters (%d lookups, %d hits) != aggregate (%d, %d)",
			lookups, hits, sr.Cache.Lookups, sr.Cache.Hits)
	}
	if sr.CacheLayers[1].Hits == 0 {
		t.Fatal("layer-2 cache never hit across the repeat pass")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		`tgopt_cache_layer_entries{layer="1"}`,
		`tgopt_cache_layer_entries{layer="2"}`,
		`tgopt_cache_layer_hits_total{layer="2"}`,
		`tgopt_cache_layer_lookups_total{layer="1"}`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServeIngestBeyondFeatureTableServes pins the padding-row fallback
// for live-ingested edges: edge ids past the model's feature table must
// embed as featureless (row 0), not read out of bounds. Before the
// guard this panicked the fused embed pass on any freshly ingested
// edge near a query target.
func TestServeIngestBeyondFeatureTableServes(t *testing.T) {
	m := oooModel(t, 10, 2, 8) // feature table holds 2 edges + padding
	dyn := graph.NewDynamic(10)
	srv := New(m, dyn, core.OptAll())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Ingest well past the table: auto-assigned ids run 1..8, rows 3..8
	// have no features.
	var edges []edgeJSON
	for i := 0; i < 8; i++ {
		edges = append(edges, edgeJSON{Src: int32(1 + i%9), Dst: int32(1 + (i+3)%9), Time: float64(10 * (i + 1))})
	}
	resp, body := post(t, ts.URL+"/v1/ingest", ingestRequest{Edges: edges})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}

	rows := embedRows(t, ts.URL, []int32{1, 4, 7}, []float64{100, 100, 100})
	for i, row := range rows {
		for _, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("row %d contains non-finite value %v", i, v)
			}
		}
	}
}
