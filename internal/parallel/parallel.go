// Package parallel provides a small work-sharing runtime used by the
// compute-heavy parts of the repository: blocked matrix multiplication,
// temporal neighbor sampling, and the concurrent embedding cache.
//
// It plays the role that OpenMP and Intel TBB play in the original TGOpt
// C++ extension. The primitives are deliberately simple: structured
// fork-join parallel-for helpers that spawn a bounded number of
// goroutines, and a Pool for long-lived background tasks. The fork-join
// helpers also run chunks on the calling goroutine, so nesting them
// never deadlocks; it merely oversubscribes slightly, which the Go
// scheduler absorbs. All helpers fall back to a serial loop when the
// configured parallelism is 1 or the trip count is too small to amortize
// goroutine startup.
//
// # Panic propagation
//
// A panic inside a parallel body or pool task never wedges the caller:
// worker goroutines recover, the remaining workers drain, and the first
// recovered panic is re-raised on the calling goroutine — as a
// *WorkerPanic carrying the original value and worker stack — once every
// sibling has finished (ForChunked/Do) or when Wait/Close is called
// (Pool). Serial fallback paths run the body on the calling goroutine,
// so their panics propagate natively, unwrapped.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// MinParallelWork is the smallest trip count for which the parallel-for
// helpers bother to fan out. Below it, scheduling overhead dominates.
const MinParallelWork = 256

var defaultDegree atomic.Int64

func init() { defaultDegree.Store(int64(runtime.GOMAXPROCS(0))) }

// Degree reports the process-wide parallelism degree used by the
// package-level helpers.
func Degree() int { return int(defaultDegree.Load()) }

// SetDegree overrides the process-wide parallelism degree. n <= 0 resets
// it to GOMAXPROCS. It returns the previous degree, so callers can
// restore it (tests use this to force serial or oversubscribed runs).
func SetDegree(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(defaultDegree.Swap(int64(n)))
}

// WorkerPanic wraps a panic recovered from a parallel worker goroutine.
// It is re-raised on the goroutine that called ForChunked/Do (or
// Pool.Wait/Close), where the worker's own stack is already gone; Stack
// preserves it for debugging.
type WorkerPanic struct {
	Value any    // the value passed to panic on the worker
	Stack []byte // the worker's stack at the point of the panic
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", p.Value)
}

// capture runs fn, recording a recovered panic into first (keeping only
// the earliest). An already-wrapped *WorkerPanic (from a nested parallel
// region re-raising) is forwarded without double-wrapping.
func capture(first *atomic.Pointer[WorkerPanic], fn func()) {
	defer func() {
		if r := recover(); r != nil {
			wp, ok := r.(*WorkerPanic)
			if !ok {
				wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
			}
			first.CompareAndSwap(nil, wp)
		}
	}()
	fn()
}

// rethrow re-raises the first captured panic, if any.
func rethrow(first *atomic.Pointer[WorkerPanic]) {
	if wp := first.Load(); wp != nil {
		panic(wp)
	}
}

// For executes body(i) for every i in [0, n), potentially in parallel.
// body must be safe to call concurrently for distinct i. For returns
// after every iteration has completed.
func For(n int, body func(i int)) {
	ForChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and executes
// body(lo, hi) for each chunk, potentially in parallel. chunk <= 0 picks
// a chunk size yielding roughly 2 chunks per worker. The serial fallback
// is a single body(0, n) call.
//
// At most Degree() workers run concurrently regardless of the chunk
// count: workers (the calling goroutine plus up to Degree()-1 spawned
// ones) pull chunks from a shared counter, so a tiny caller-provided
// chunk cannot cause unbounded goroutine growth. Because the calling
// goroutine is itself a worker, nested use is safe. If a body panics,
// the remaining chunks are abandoned, every in-flight sibling finishes,
// and the first panic is re-raised as a *WorkerPanic.
func ForChunked(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	degree := Degree()
	if degree == 1 || n < MinParallelWork {
		body(0, n)
		return
	}
	if chunk <= 0 {
		chunk = n / (2 * degree)
		if chunk < 1 {
			chunk = 1
		}
	}
	if chunk >= n {
		body(0, n)
		return
	}
	nchunks := (n + chunk - 1) / chunk
	workers := degree - 1 // the calling goroutine is the final worker
	if workers > nchunks-1 {
		workers = nchunks - 1
	}
	var next atomic.Int64
	var first atomic.Pointer[WorkerPanic]
	run := func() {
		for first.Load() == nil {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			capture(&first, run)
		}()
	}
	capture(&first, run)
	wg.Wait()
	rethrow(&first)
}

// Do runs the given functions, potentially concurrently, and returns when
// all have finished. It is a structured fork-join for heterogeneous
// tasks; the last function runs on the calling goroutine. If any
// function panics, the rest still run to completion and the first panic
// is re-raised as a *WorkerPanic after all have finished.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Degree() == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	var first atomic.Pointer[WorkerPanic]
	for _, fn := range fns[:len(fns)-1] {
		fn := fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			capture(&first, fn)
		}()
	}
	capture(&first, fns[len(fns)-1])
	wg.Wait()
	rethrow(&first)
}

// Pool is a fixed-size set of workers executing closures from a queue.
// It is intended for long-lived background work (for example the
// asynchronous cache-store drain in the device experiments), not for the
// fork-join loops above. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	closed  atomic.Bool
	first   atomic.Pointer[WorkerPanic]
}

// NewPool creates a pool with n workers. If n <= 0 it uses GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		tasks:   make(chan func(), 4*n),
	}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for task := range p.tasks {
		p.runTask(task)
	}
}

// runTask executes one task, releasing the WaitGroup slot even when the
// task panics — a panicking task must never wedge Wait — and records the
// first panic for Wait/Close to re-raise.
func (p *Pool) runTask(task func()) {
	defer p.wg.Done()
	capture(&p.first, task)
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues a task. It panics if the pool has been closed.
func (p *Pool) Submit(task func()) {
	if p.closed.Load() {
		panic("parallel: Submit on closed Pool")
	}
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until all submitted tasks have completed. If any task
// panicked since the last Wait, the first recorded panic is re-raised
// here as a *WorkerPanic; the record is cleared, so the pool stays
// usable after the caller recovers.
func (p *Pool) Wait() {
	p.wg.Wait()
	if wp := p.first.Swap(nil); wp != nil {
		panic(wp)
	}
}

// Close shuts the pool down after draining in-flight tasks. Submitting
// after Close panics. Close is idempotent. Like Wait, Close re-raises
// the first unconsumed task panic after the drain completes.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.wg.Wait()
		close(p.tasks)
	}
	if wp := p.first.Swap(nil); wp != nil {
		panic(wp)
	}
}
