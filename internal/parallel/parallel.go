// Package parallel provides a small work-sharing runtime used by the
// compute-heavy parts of the repository: blocked matrix multiplication,
// temporal neighbor sampling, and the concurrent embedding cache.
//
// It plays the role that OpenMP and Intel TBB play in the original TGOpt
// C++ extension. The primitives are deliberately simple: structured
// fork-join parallel-for helpers that spawn a bounded number of
// goroutines, and a Pool for long-lived background tasks. The fork-join
// helpers run the final chunk on the calling goroutine, so nesting them
// never deadlocks; it merely oversubscribes slightly, which the Go
// scheduler absorbs. All helpers fall back to a serial loop when the
// configured parallelism is 1 or the trip count is too small to amortize
// goroutine startup.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinParallelWork is the smallest trip count for which the parallel-for
// helpers bother to fan out. Below it, scheduling overhead dominates.
const MinParallelWork = 256

var defaultDegree atomic.Int64

func init() { defaultDegree.Store(int64(runtime.GOMAXPROCS(0))) }

// Degree reports the process-wide parallelism degree used by the
// package-level helpers.
func Degree() int { return int(defaultDegree.Load()) }

// SetDegree overrides the process-wide parallelism degree. n <= 0 resets
// it to GOMAXPROCS. It returns the previous degree, so callers can
// restore it (tests use this to force serial or oversubscribed runs).
func SetDegree(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(defaultDegree.Swap(int64(n)))
}

// For executes body(i) for every i in [0, n), potentially in parallel.
// body must be safe to call concurrently for distinct i. For returns
// after every iteration has completed.
func For(n int, body func(i int)) {
	ForChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and executes
// body(lo, hi) for each chunk, potentially in parallel. chunk <= 0 picks
// a chunk size yielding roughly 2 chunks per worker. The serial fallback
// is a single body(0, n) call. The last chunk runs on the calling
// goroutine, making nested use safe.
func ForChunked(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	degree := Degree()
	if degree == 1 || n < MinParallelWork {
		body(0, n)
		return
	}
	if chunk <= 0 {
		chunk = n / (2 * degree)
		if chunk < 1 {
			chunk = 1
		}
	}
	if chunk >= n {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		lo := lo
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(lo, lo+chunk)
		}()
	}
	body(lo, n) // final chunk inline
	wg.Wait()
}

// Do runs the given functions, potentially concurrently, and returns when
// all have finished. It is a structured fork-join for heterogeneous
// tasks; the last function runs on the calling goroutine.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Degree() == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns[:len(fns)-1] {
		fn := fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	fns[len(fns)-1]()
	wg.Wait()
}

// Pool is a fixed-size set of workers executing closures from a queue.
// It is intended for long-lived background work (for example the
// asynchronous cache-store drain in the device experiments), not for the
// fork-join loops above. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewPool creates a pool with n workers. If n <= 0 it uses GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		tasks:   make(chan func(), 4*n),
	}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for task := range p.tasks {
		task()
		p.wg.Done()
	}
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues a task. It panics if the pool has been closed.
func (p *Pool) Submit(task func()) {
	if p.closed.Load() {
		panic("parallel: Submit on closed Pool")
	}
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until all submitted tasks have completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close shuts the pool down after draining in-flight tasks. Submitting
// after Close panics. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.wg.Wait()
		close(p.tasks)
	}
}
