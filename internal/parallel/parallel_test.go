package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, MinParallelWork - 1, MinParallelWork, 4096} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, c)
			}
		}
	}
}

func TestForChunkedCoversAllIndicesExactlyOnce(t *testing.T) {
	prop := func(n uint16, chunk uint8) bool {
		nn := int(n) % 5000
		seen := make([]int32, nn)
		ForChunked(nn, int(chunk), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkedChunksAreOrderedAndDisjoint(t *testing.T) {
	var total atomic.Int64
	ForChunked(10000, 97, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty or inverted chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != 10000 {
		t.Fatalf("chunks cover %d elements, want 10000", total.Load())
	}
}

func TestForChunkedZeroAndNegative(t *testing.T) {
	called := false
	ForChunked(0, 10, func(lo, hi int) { called = true })
	ForChunked(-5, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

func TestDoRunsAllFunctions(t *testing.T) {
	var count atomic.Int32
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	Do(fns...)
	if count.Load() != 17 {
		t.Fatalf("ran %d functions, want 17", count.Load())
	}
	Do() // no-op
	Do(func() { count.Add(1) })
	if count.Load() != 18 {
		t.Fatalf("single-function Do did not run")
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	var count atomic.Int64
	For(600, func(i int) {
		ForChunked(600, 50, func(lo, hi int) {
			count.Add(int64(hi - lo))
		})
	})
	if count.Load() != 600*600 {
		t.Fatalf("nested loops executed %d iterations, want %d", count.Load(), 600*600)
	}
}

func TestSetDegreeSerialFallback(t *testing.T) {
	prev := SetDegree(1)
	defer SetDegree(prev)
	if Degree() != 1 {
		t.Fatalf("Degree() = %d after SetDegree(1)", Degree())
	}
	// In serial mode the body must still cover everything, on this goroutine.
	n := 0
	For(1000, func(i int) { n++ }) // not atomic: safe only because serial
	if n != 1000 {
		t.Fatalf("serial For executed %d iterations, want 1000", n)
	}
}

func TestSetDegreeResetsToGOMAXPROCS(t *testing.T) {
	prev := SetDegree(3)
	if Degree() != 3 {
		t.Fatalf("Degree() = %d, want 3", Degree())
	}
	SetDegree(0)
	if Degree() < 1 {
		t.Fatalf("Degree() = %d after reset, want >= 1", Degree())
	}
	SetDegree(prev)
}

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int32
	for i := 0; i < 100; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 100 {
		t.Fatalf("pool ran %d tasks, want 100", count.Load())
	}
}

func TestPoolCloseIdempotentAndSubmitPanics(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
}

func TestPoolPanicDoesNotWedgeWait(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	p.Submit(func() { panic("task boom") })
	for i := 0; i < 10; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	// The regression: before panic recovery, a panicking task killed its
	// worker without calling Done, so Wait blocked forever. Now Wait must
	// return (by re-raising the first panic as a *WorkerPanic).
	recovered := func() (r any) {
		defer func() { r = recover() }()
		p.Wait()
		return nil
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("Wait recovered %T %v, want *WorkerPanic", recovered, recovered)
	}
	if wp.Value != "task boom" {
		t.Fatalf("WorkerPanic.Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("WorkerPanic.Stack empty")
	}
	if ran.Load() != 10 {
		t.Fatalf("non-panicking tasks ran %d times, want 10", ran.Load())
	}
	// The panic record was consumed: the pool remains usable.
	p.Submit(func() { ran.Add(1) })
	p.Wait()
	if ran.Load() != 11 {
		t.Fatal("pool unusable after recovered panic")
	}
	p.Close()
}

func TestPoolPanicSurfacesAtClose(t *testing.T) {
	p := NewPool(1)
	p.Submit(func() { panic("late boom") })
	defer func() {
		if _, ok := recover().(*WorkerPanic); !ok {
			t.Fatal("Close did not re-raise the unconsumed task panic")
		}
	}()
	p.Close()
}

func TestForChunkedPanicPropagates(t *testing.T) {
	prev := SetDegree(4)
	defer SetDegree(prev)
	recovered := func() (r any) {
		defer func() { r = recover() }()
		ForChunked(MinParallelWork*4, 7, func(lo, hi int) {
			if lo >= MinParallelWork {
				panic(lo)
			}
		})
		return nil
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T %v, want *WorkerPanic", recovered, recovered)
	}
	if _, ok := wp.Value.(int); !ok {
		t.Fatalf("WorkerPanic.Value = %v, want the body's int", wp.Value)
	}
}

func TestDoPanicPropagates(t *testing.T) {
	prev := SetDegree(4)
	defer SetDegree(prev)
	var ran atomic.Int32
	recovered := func() (r any) {
		defer func() { r = recover() }()
		Do(
			func() { ran.Add(1) },
			func() { panic("do boom") },
			func() { ran.Add(1) },
			func() { ran.Add(1) },
		)
		return nil
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T, want *WorkerPanic", recovered)
	}
	if wp.Value != "do boom" {
		t.Fatalf("WorkerPanic.Value = %v", wp.Value)
	}
	if ran.Load() != 3 {
		t.Fatalf("sibling functions ran %d times, want 3", ran.Load())
	}
}

func TestNestedPanicNotDoubleWrapped(t *testing.T) {
	prev := SetDegree(4)
	defer SetDegree(prev)
	recovered := func() (r any) {
		defer func() { r = recover() }()
		Do(
			func() {
				ForChunked(MinParallelWork*2, 3, func(lo, hi int) { panic("inner") })
			},
			func() {},
		)
		return nil
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T, want *WorkerPanic", recovered)
	}
	if wp.Value != "inner" {
		t.Fatalf("WorkerPanic.Value = %v, want unwrapped \"inner\"", wp.Value)
	}
}

func TestSerialPanicUnwrapped(t *testing.T) {
	prev := SetDegree(1)
	defer SetDegree(prev)
	defer func() {
		if r := recover(); r != "serial boom" {
			t.Fatalf("serial path recovered %v, want the raw value", r)
		}
	}()
	ForChunked(MinParallelWork*2, 0, func(lo, hi int) { panic("serial boom") })
}

func TestForChunkedBoundedWorkers(t *testing.T) {
	// The regression: chunk=1 with a large n used to spawn one goroutine
	// per chunk (~n goroutines). Workers must now be capped by Degree.
	const degree = 4
	prev := SetDegree(degree)
	defer SetDegree(prev)
	before := runtime.NumGoroutine()
	var inFlight, maxInFlight atomic.Int32
	ForChunked(100000, 1, func(lo, hi int) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if got := maxInFlight.Load(); got > degree {
		t.Fatalf("observed %d concurrent bodies, degree %d", got, degree)
	}
	// Goroutine count during the loop is harder to observe exactly, but
	// afterwards nothing may linger.
	after := runtime.NumGoroutine()
	if after > before+degree {
		t.Fatalf("goroutines grew from %d to %d", before, after)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	sink := make([]float64, 1<<14)
	b.Run("serial", func(b *testing.B) {
		prev := SetDegree(1)
		defer SetDegree(prev)
		for i := 0; i < b.N; i++ {
			ForChunked(len(sink), 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					sink[j] += 1
				}
			})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForChunked(len(sink), 0, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					sink[j] += 1
				}
			})
		}
	})
}

// The machine running tests may have a single CPU, in which case the
// package-level helpers short-circuit to the serial path and the
// fan-out code never executes. Force a higher degree to exercise it.

func TestForChunkedParallelPathForced(t *testing.T) {
	prev := SetDegree(4)
	defer SetDegree(prev)
	var count atomic.Int64
	seen := make([]int32, 10000)
	ForChunked(len(seen), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
		count.Add(int64(hi - lo))
	})
	if count.Load() != int64(len(seen)) {
		t.Fatalf("covered %d of %d", count.Load(), len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunkedExplicitChunkParallel(t *testing.T) {
	prev := SetDegree(8)
	defer SetDegree(prev)
	var total atomic.Int64
	ForChunked(MinParallelWork*3, 17, func(lo, hi int) {
		total.Add(int64(hi - lo))
	})
	if total.Load() != MinParallelWork*3 {
		t.Fatalf("total = %d", total.Load())
	}
	// Chunk larger than n falls back to one call.
	calls := 0
	ForChunked(MinParallelWork, MinParallelWork*2, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("oversized chunk made %d calls", calls)
	}
}

func TestDoParallelPathForced(t *testing.T) {
	prev := SetDegree(4)
	defer SetDegree(prev)
	var count atomic.Int32
	fns := make([]func(), 9)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	Do(fns...)
	if count.Load() != 9 {
		t.Fatalf("ran %d of 9", count.Load())
	}
}

func TestNestedParallelForcedDegree(t *testing.T) {
	prev := SetDegree(3)
	defer SetDegree(prev)
	var count atomic.Int64
	For(MinParallelWork*2, func(i int) {
		ForChunked(MinParallelWork*2, 0, func(lo, hi int) {
			count.Add(int64(hi - lo))
		})
	})
	want := int64(MinParallelWork * 2 * MinParallelWork * 2)
	if count.Load() != want {
		t.Fatalf("nested executed %d, want %d", count.Load(), want)
	}
}
