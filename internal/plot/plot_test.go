package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG with encoding/xml to catch unbalanced tags
// or bad escaping.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestLineChartBasics(t *testing.T) {
	svg := LineChart("Hit rate", "batch", "rate", []Series{
		{Name: "jodie-lastfm", X: []float64{0, 1, 2, 3}, Y: []float64{0, 0.5, 0.7, 0.75}},
		{Name: "snap-msg", X: []float64{0, 1, 2}, Y: []float64{0, 0.2, 0.3}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("no polyline drawn")
	}
	if strings.Count(svg, "<circle") != 7 {
		t.Fatalf("marker count = %d, want 7", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "jodie-lastfm") || !strings.Contains(svg, "Hit rate") {
		t.Fatal("labels missing")
	}
}

func TestLineChartEmptyAndSinglePoint(t *testing.T) {
	wellFormed(t, LineChart("empty", "x", "y", nil))
	svg := LineChart("one", "x", "y", []Series{{Name: "s", X: []float64{5}, Y: []float64{5}}})
	wellFormed(t, svg)
	if strings.Contains(svg, "polyline") {
		t.Fatal("single point should not draw a line")
	}
}

func TestBarChartWithErrors(t *testing.T) {
	svg := BarChart("Inference runtime", "seconds", []string{"baseline", "tgopt"}, []BarGroup{
		{Label: "jodie-lastfm", Values: []float64{10.4, 1.7}, Errs: []float64{0.1, 0.02}},
		{Label: "snap-msg", Values: []float64{0.5, 0.1}, Errs: []float64{0, 0}},
	})
	wellFormed(t, svg)
	// 4 bars + background + legend swatches (2).
	if got := strings.Count(svg, "<rect"); got != 1+4+2 {
		t.Fatalf("rect count = %d, want 7", got)
	}
	// Error bars only where err > 0 (2 of them) plus 2 axes + 6 gridlines.
	if got := strings.Count(svg, "<line"); got != 2+6+2 {
		t.Fatalf("line count = %d, want 10", got)
	}
}

func TestBarChartEmpty(t *testing.T) {
	wellFormed(t, BarChart("empty", "y", nil, nil))
}

func TestHistogram(t *testing.T) {
	svg := Histogram("dt distribution", "dt", []string{"<1", "<10", "<100"}, []int64{5, 100, 20})
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got != 1+3 {
		t.Fatalf("rect count = %d, want 4", got)
	}
	if !strings.Contains(svg, "&lt;10") {
		t.Fatal("bin labels not escaped/rendered")
	}
}

func TestHistogramEmptyAndZeroCounts(t *testing.T) {
	wellFormed(t, Histogram("empty", "x", nil, nil))
	wellFormed(t, Histogram("zeros", "x", []string{"a"}, []int64{0}))
}

func TestEscape(t *testing.T) {
	svg := LineChart(`a<b>&"c"`, "x", "y", []Series{{Name: "<s>", X: []float64{0, 1}, Y: []float64{0, 1}}})
	wellFormed(t, svg)
	if strings.Contains(svg, "<b>") {
		t.Fatal("title not escaped")
	}
}

func TestChartsScaleMonotonically(t *testing.T) {
	// Higher values must map to smaller y pixels (SVG origin top-left).
	if yPix(1, 0, 1) >= yPix(0, 0, 1) {
		t.Fatal("y scaling inverted")
	}
	if xPix(1, 0, 1) <= xPix(0, 0, 1) {
		t.Fatal("x scaling inverted")
	}
	// Degenerate ranges must not divide by zero.
	if y := yPix(5, 5, 5); y != marginT+plotH {
		t.Fatalf("degenerate y = %v", y)
	}
	if x := xPix(5, 5, 5); x != marginL {
		t.Fatalf("degenerate x = %v", x)
	}
}
