// Package plot renders the experiment results as standalone SVG
// figures, the analogue of the artifact's PDF plot scripts
// (plot-ablation-both.py, plot-hit-rate.py, …). It is a deliberately
// small chart library: line charts with multiple series (Figures 3
// and 7), grouped bar charts with error bars (Figures 5 and 6), and
// log-binned histograms (Figure 4), all built by direct SVG string
// assembly with no dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas geometry shared by all charts.
const (
	width      = 720
	height     = 420
	marginL    = 70
	marginR    = 20
	marginT    = 40
	marginB    = 70
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	fontFamily = "sans-serif"
)

// palette cycles across series/groups.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// BarGroup is one cluster of bars sharing an x-axis label.
type BarGroup struct {
	Label  string
	Values []float64
	Errs   []float64 // optional error bars, aligned with Values
}

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) open(title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(b, `<text x="%d" y="24" font-family="%s" font-size="16" text-anchor="middle" font-weight="bold">%s</text>`,
		width/2, fontFamily, escape(title))
}

func (b *svgBuilder) close() { b.WriteString(`</svg>`) }

func (b *svgBuilder) axes(xlabel, ylabel string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-family="%s" font-size="13" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-12, fontFamily, escape(xlabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-family="%s" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		marginT+plotH/2, fontFamily, marginT+plotH/2, escape(ylabel))
}

func (b *svgBuilder) yTicks(lo, hi float64, format string) {
	for i := 0; i <= 5; i++ {
		v := lo + (hi-lo)*float64(i)/5
		y := yPix(v, lo, hi)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`, marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%s</text>`,
			marginL-6, y+4, fontFamily, fmt.Sprintf(format, v))
	}
}

func (b *svgBuilder) legend(names []string) {
	x := marginL + 10
	for i, name := range names {
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`, x, marginT+4, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="%s" font-size="12">%s</text>`,
			x+16, marginT+14, fontFamily, escape(name))
		x += 16 + 8*len(name) + 24
	}
}

func xPix(v, lo, hi float64) float64 {
	if hi == lo {
		return marginL
	}
	return marginL + (v-lo)/(hi-lo)*plotW
}

func yPix(v, lo, hi float64) float64 {
	if hi == lo {
		return marginT + plotH
	}
	return marginT + plotH - (v-lo)/(hi-lo)*plotH
}

// LineChart renders one or more series as polylines with markers.
func LineChart(title, xlabel, ylabel string, series []Series) string {
	var xlo, xhi, ylo, yhi float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xlo, xhi, ylo, yhi = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ylo = math.Min(ylo, s.Y[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	if first { // no data at all
		xlo, xhi, ylo, yhi = 0, 1, 0, 1
	}
	if ylo > 0 {
		ylo = 0 // anchor rates/counts at zero
	}
	if yhi == ylo {
		yhi = ylo + 1
	}

	var b svgBuilder
	b.open(title)
	b.axes(xlabel, ylabel)
	b.yTicks(ylo, yhi, "%.3g")
	// X ticks at 5 positions.
	for i := 0; i <= 5; i++ {
		v := xlo + (xhi-xlo)*float64(i)/5
		x := xPix(v, xlo, xhi)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%.3g</text>`,
			x, marginT+plotH+18, fontFamily, v)
	}
	names := make([]string, len(series))
	for si, s := range series {
		names[si] = s.Name
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPix(s.X[i], xlo, xhi), yPix(s.Y[i], ylo, yhi)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`,
				xPix(s.X[i], xlo, xhi), yPix(s.Y[i], ylo, yhi), color)
		}
	}
	b.legend(names)
	b.close()
	return b.String()
}

// BarChart renders clustered bars. seriesNames labels the bars within
// each group (legend); every group must have len(seriesNames) values.
func BarChart(title, ylabel string, seriesNames []string, groups []BarGroup) string {
	yhi := 0.0
	for _, g := range groups {
		for i, v := range g.Values {
			e := 0.0
			if i < len(g.Errs) {
				e = g.Errs[i]
			}
			yhi = math.Max(yhi, v+e)
		}
	}
	if yhi == 0 {
		yhi = 1
	}
	yhi *= 1.1

	var b svgBuilder
	b.open(title)
	b.axes("", ylabel)
	b.yTicks(0, yhi, "%.3g")

	ng := len(groups)
	if ng == 0 {
		b.close()
		return b.String()
	}
	groupW := float64(plotW) / float64(ng)
	nb := len(seriesNames)
	barW := groupW * 0.7 / math.Max(1, float64(nb))
	for gi, g := range groups {
		gx := float64(marginL) + groupW*float64(gi)
		for i, v := range g.Values {
			color := palette[i%len(palette)]
			x := gx + groupW*0.15 + barW*float64(i)
			y := yPix(v, 0, yhi)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				x, y, barW*0.92, float64(marginT+plotH)-y, color)
			if i < len(g.Errs) && g.Errs[i] > 0 {
				cx := x + barW*0.46
				y1 := yPix(v-g.Errs[i], 0, yhi)
				y2 := yPix(v+g.Errs[i], 0, yhi)
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`, cx, y1, cx, y2)
			}
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="end" transform="rotate(-30 %.1f %d)">%s</text>`,
			gx+groupW/2, marginT+plotH+18, fontFamily, gx+groupW/2, marginT+plotH+18, escape(g.Label))
	}
	b.legend(seriesNames)
	b.close()
	return b.String()
}

// Histogram renders pre-binned counts with labeled bin edges.
func Histogram(title, xlabel string, binLabels []string, counts []int64) string {
	yhi := 0.0
	for _, c := range counts {
		yhi = math.Max(yhi, float64(c))
	}
	if yhi == 0 {
		yhi = 1
	}
	yhi *= 1.1

	var b svgBuilder
	b.open(title)
	b.axes(xlabel, "count")
	b.yTicks(0, yhi, "%.3g")
	n := len(counts)
	if n == 0 {
		b.close()
		return b.String()
	}
	binW := float64(plotW) / float64(n)
	for i, c := range counts {
		x := float64(marginL) + binW*float64(i)
		y := yPix(float64(c), 0, yhi)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x+1, y, binW-2, float64(marginT+plotH)-y, palette[0])
		if i < len(binLabels) {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %d)">%s</text>`,
				x+binW/2, marginT+plotH+16, fontFamily, x+binW/2, marginT+plotH+16, escape(binLabels[i]))
		}
	}
	b.close()
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
