package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tgopt/internal/graph"
)

// WriteCSV writes the dataset's edge list in the TGAT artifact's
// ml_{name}.csv layout: a header line followed by
// "idx,u,i,ts,label,idx" rows (label is always 0 here; the artifact
// carries state labels we do not use). The leading unnamed column is the
// pandas row index the original files contain.
func WriteCSV(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, ",u,i,ts,label,idx"); err != nil {
		return err
	}
	for i, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%g,0,%d\n", i, e.Src, e.Dst, e.Time, e.Idx); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveCSV writes the edge list to path via WriteCSV.
func SaveCSV(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV parses an edge list in the TGAT artifact format. It accepts
// both the full "idx,u,i,ts,label,idx" layout (with or without the
// leading unnamed index column) and a minimal "u,i,ts" layout. Column
// positions are resolved from the header. Node ids must be positive.
func ReadCSV(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	uCol, iCol, tsCol, idxCol := -1, -1, -1, -1
	for c, name := range header {
		switch strings.TrimSpace(name) {
		case "u":
			uCol = c
		case "i":
			iCol = c
		case "ts":
			tsCol = c
		case "idx":
			idxCol = c
		}
	}
	if uCol < 0 || iCol < 0 || tsCol < 0 {
		return nil, fmt.Errorf("dataset: CSV header %q missing u/i/ts columns", sc.Text())
	}
	var edges []graph.Edge
	maxNode := int32(0)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) <= tsCol || len(fields) <= uCol || len(fields) <= iCol {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields", line, len(fields))
		}
		u, err := strconv.ParseInt(strings.TrimSpace(fields[uCol]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad u: %w", line, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(fields[iCol]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad i: %w", line, err)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(fields[tsCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad ts: %w", line, err)
		}
		var idx int64
		if idxCol >= 0 && idxCol < len(fields) {
			idx, err = strconv.ParseInt(strings.TrimSpace(fields[idxCol]), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: bad idx: %w", line, err)
			}
		}
		e := graph.Edge{Src: int32(u), Dst: int32(v), Time: ts, Idx: int32(idx)}
		if e.Src > maxNode {
			maxNode = e.Src
		}
		if e.Dst > maxNode {
			maxNode = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graph.NewGraph(int(maxNode), edges)
}

// LoadCSV reads an edge list from path via ReadCSV.
func LoadCSV(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %s: %w", path, err)
	}
	return g, nil
}
