package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tgopt/internal/tensor"
)

func tinySpec() Spec {
	return Spec{
		Name: "tiny", Bipartite: true, Users: 20, Items: 10, Edges: 500,
		MaxTime: 1e5, Repeat: 0.6, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 1,
	}
}

func TestSpecsMatchTable2(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("got %d specs, want 7", len(specs))
	}
	// Spot-check the published counts.
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	if s := byName["jodie-lastfm"]; s.NumNodes() != 1980 || s.Edges != 1293103 {
		t.Fatalf("jodie-lastfm stats wrong: %+v", s)
	}
	if s := byName["snap-msg"]; s.NumNodes() != 1899 || s.Edges != 59835 || s.Bipartite {
		t.Fatalf("snap-msg stats wrong: %+v", s)
	}
	if s := byName["snap-reddit"]; s.NumNodes() != 67180 || s.NativeEdgeDim != 86 {
		t.Fatalf("snap-reddit stats wrong: %+v", s)
	}
	// jodie-* must have higher repetition than snap-* (the behavioural
	// property §5.2.1 ties to their higher speedups).
	for _, j := range []string{"jodie-lastfm", "jodie-mooc", "jodie-reddit", "jodie-wiki"} {
		for _, s := range []string{"snap-email", "snap-msg", "snap-reddit"} {
			if byName[j].Repeat <= byName[s].Repeat {
				t.Fatalf("%s repeat %v not above %s repeat %v", j, byName[j].Repeat, s, byName[s].Repeat)
			}
		}
	}
}

func TestSpecByNameAndNames(t *testing.T) {
	if _, err := SpecByName("jodie-wiki"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if len(Names()) != 7 || Names()[0] != "jodie-lastfm" {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestScalePreservesShape(t *testing.T) {
	s, _ := SpecByName("jodie-lastfm")
	half := s.Scale(0.5)
	if half.Edges != s.Edges/2 {
		t.Fatalf("scaled edges = %d", half.Edges)
	}
	if math.Abs(half.MaxTime-s.MaxTime/2) > 1 {
		t.Fatalf("scaled MaxTime = %v", half.MaxTime)
	}
	if half.Repeat != s.Repeat {
		t.Fatal("Scale changed behavioural parameters")
	}
	tinyScale := s.Scale(1e-9)
	if tinyScale.Edges < 50 || tinyScale.Users < 10 {
		t.Fatalf("Scale under-clamped: %+v", tinyScale)
	}
	if same := s.Scale(1); same.Edges != s.Edges {
		t.Fatal("Scale(1) changed the spec")
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	ds, err := Generate(tinySpec(), Options{FeatureDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if g.NumEdges() != 500 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.NumNodes() != 30 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.MaxTime() > 1e5+1 {
		t.Fatalf("MaxTime = %v exceeds spec", g.MaxTime())
	}
	// Timestamps must be integral (§4.1's 32-bit hash relies on it).
	for _, e := range g.Edges() {
		if e.Time != math.Trunc(e.Time) {
			t.Fatalf("non-integral timestamp %v", e.Time)
		}
		if e.Time < 0 {
			t.Fatalf("negative timestamp %v", e.Time)
		}
	}
	// Feature tables have the padding row and requested width.
	if ds.NodeFeat.Dim(0) != 31 || ds.NodeFeat.Dim(1) != 8 {
		t.Fatalf("node feat shape %v", ds.NodeFeat.Shape())
	}
	if ds.EdgeFeat.Dim(0) != 501 || ds.EdgeFeat.Dim(1) != 8 {
		t.Fatalf("edge feat shape %v", ds.EdgeFeat.Shape())
	}
	for j := 0; j < 8; j++ {
		if ds.EdgeFeat.At(0, j) != 0 || ds.NodeFeat.At(0, j) != 0 {
			t.Fatal("padding row not zero")
		}
	}
	// Paper: node features are zero vectors by default.
	for i := 0; i < ds.NodeFeat.Len(); i++ {
		if ds.NodeFeat.Data()[i] != 0 {
			t.Fatal("default node features not zero")
		}
	}
}

func TestGenerateBipartiteRespectsPartition(t *testing.T) {
	spec := tinySpec()
	ds, err := Generate(spec, Options{FeatureDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Graph.Edges() {
		if e.Src < 1 || e.Src > int32(spec.Users) {
			t.Fatalf("source %d outside user partition", e.Src)
		}
		if e.Dst <= int32(spec.Users) || e.Dst > int32(spec.Users+spec.Items) {
			t.Fatalf("destination %d outside item partition", e.Dst)
		}
	}
}

func TestGenerateHomogeneousNoSelfLoops(t *testing.T) {
	spec := Spec{Name: "h", Users: 15, Edges: 400, MaxTime: 1e5, Repeat: 0.3, ZipfExponent: 1.1, ParetoAlpha: 1.1, Seed: 2}
	ds, err := Generate(spec, Options{FeatureDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Graph.Edges() {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinySpec(), Options{FeatureDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinySpec(), Options{FeatureDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs across same-seed generations", i)
		}
	}
	if !a.EdgeFeat.AllClose(b.EdgeFeat, 0) {
		t.Fatal("edge features differ across same-seed generations")
	}
}

func TestGenerateRepeatBehaviour(t *testing.T) {
	// With high Repeat, consecutive interactions of a user frequently hit
	// the same item; with Repeat=0 they rarely should. Measure the
	// fraction of edges whose (src,dst) equals the src's previous edge.
	measure := func(repeat float64) float64 {
		spec := tinySpec()
		spec.Repeat = repeat
		spec.Edges = 3000
		spec.Users, spec.Items = 50, 200
		ds, err := Generate(spec, Options{FeatureDim: 2})
		if err != nil {
			t.Fatal(err)
		}
		last := map[int32]int32{}
		repeats := 0
		for _, e := range ds.Graph.Edges() {
			if last[e.Src] == e.Dst {
				repeats++
			}
			last[e.Src] = e.Dst
		}
		return float64(repeats) / float64(len(ds.Graph.Edges()))
	}
	hi, lo := measure(0.8), measure(0.0)
	if hi < 0.5 {
		t.Fatalf("high-repeat fraction = %v, want > 0.5", hi)
	}
	if lo > 0.2 {
		t.Fatalf("zero-repeat fraction = %v, want small", lo)
	}
}

func TestGenerateInterEventTimesHeavyTailed(t *testing.T) {
	// Figure 4's property: Δt between consecutive events clusters near 0
	// with a long tail — median well below mean.
	spec := tinySpec()
	spec.Edges = 5000
	ds, err := Generate(spec, Options{FeatureDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := ds.Graph.Edges()
	deltas := make([]float64, 0, len(edges)-1)
	for i := 1; i < len(edges); i++ {
		deltas = append(deltas, edges[i].Time-edges[i-1].Time)
	}
	mean := 0.0
	for _, d := range deltas {
		mean += d
	}
	mean /= float64(len(deltas))
	// Median via counting below mean: heavy tail ⇒ most deltas below mean.
	below := 0
	for _, d := range deltas {
		if d < mean {
			below++
		}
	}
	if frac := float64(below) / float64(len(deltas)); frac < 0.6 {
		t.Fatalf("only %v of deltas below mean; distribution not heavy-tailed", frac)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(tinySpec(), Options{}); err == nil {
		t.Fatal("FeatureDim 0 accepted")
	}
	bad := tinySpec()
	bad.Edges = 0
	if _, err := Generate(bad, Options{FeatureDim: 4}); err == nil {
		t.Fatal("0-edge spec accepted")
	}
}

func TestGenerateRandomNodeFeatures(t *testing.T) {
	ds, err := Generate(tinySpec(), Options{FeatureDim: 4, RandomNodeFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, v := range ds.NodeFeat.Data() {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("RandomNodeFeatures produced all zeros")
	}
	for j := 0; j < 4; j++ {
		if ds.NodeFeat.At(0, j) != 0 {
			t.Fatal("padding row 0 not zero with random features")
		}
	}
}

func TestZipfHeavyHead(t *testing.T) {
	r := newTestRNG()
	z := newZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	// Undo the shuffle by counting rank popularity through the perm.
	inv := make([]int, 1000)
	for rank, id := range z.perm {
		inv[id] = rank
	}
	for i := 0; i < 50000; i++ {
		counts[inv[z.Sample(r)]]++
	}
	if counts[0] < counts[500]*5 {
		t.Fatalf("Zipf head not heavy: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Generate(tinySpec(), Options{FeatureDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", g2.NumEdges(), ds.Graph.NumEdges())
	}
	ea, eb := ds.Graph.Edges(), g2.Edges()
	for i := range ea {
		if ea[i].Src != eb[i].Src || ea[i].Dst != eb[i].Dst || ea[i].Time != eb[i].Time || ea[i].Idx != eb[i].Idx {
			t.Fatalf("edge %d changed: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestReadCSVMinimalHeader(t *testing.T) {
	src := "u,i,ts\n1,2,10\n2,3,20\n"
	g, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("minimal CSV parsed wrong: %d edges %d nodes", g.NumEdges(), g.NumNodes())
	}
	// Auto-assigned edge ids.
	if g.Edges()[0].Idx != 1 {
		t.Fatalf("edge idx = %d", g.Edges()[0].Idx)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"a,b,c\n1,2,3\n",      // missing columns
		"u,i,ts\n1,2\n",       // short row
		"u,i,ts\nx,2,3\n",     // bad u
		"u,i,ts\n1,y,3\n",     // bad i
		"u,i,ts\n1,2,z\n",     // bad ts
		"u,i,ts,idx\n1,2,3,w", // bad idx
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d accepted: %q", i, src)
		}
	}
	// Blank lines are tolerated.
	if g, err := ReadCSV(strings.NewReader("u,i,ts\n1,2,3\n\n")); err != nil || g.NumEdges() != 1 {
		t.Fatalf("blank line handling: %v", err)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds, err := Generate(tinySpec(), Options{FeatureDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/edges.csv"
	if err := SaveCSV(path, ds.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("file round trip lost edges")
	}
	if _, err := LoadCSV(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func newTestRNG() *tensor.RNG { return tensor.NewRNG(42) }
