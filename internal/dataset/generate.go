package dataset

import (
	"fmt"
	"math"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
)

// Dataset is a ready-to-run workload: the CTDG plus feature tables whose
// row 0 is the all-zero padding row.
type Dataset struct {
	Name     string
	Spec     Spec
	Graph    *graph.Graph
	NodeFeat *tensor.Tensor // (|V|+1, featDim)
	EdgeFeat *tensor.Tensor // (|E|+1, featDim)
}

// Options control feature synthesis.
type Options struct {
	// FeatureDim is the width of node and edge feature rows (the model's
	// NodeDim/EdgeDim). Required, must be >= 1.
	FeatureDim int
	// RandomNodeFeatures fills node features with small Gaussian noise
	// instead of the paper's zero vectors (Table 2: "Node features use a
	// zero-vector"). Tests use this to exercise feature-dependent paths.
	RandomNodeFeatures bool
}

// Generate synthesizes the workload described by spec.
//
// The generator is an event-driven process: at each step an active user
// is drawn from a Zipf popularity distribution; with probability
// spec.Repeat it re-interacts with its previous partner (JODIE-style
// repetition), otherwise it picks a partner from a Zipf distribution
// over items (bipartite) or over other nodes (homogeneous). Inter-event
// times are Pareto-distributed and the resulting clock is normalized to
// [0, MaxTime] and rounded to integral timestamps (matching the
// second-resolution timestamps of the real datasets, which the 32-bit
// hash of §4.1 relies on).
func Generate(spec Spec, opt Options) (*Dataset, error) {
	if opt.FeatureDim < 1 {
		return nil, fmt.Errorf("dataset: FeatureDim must be >= 1, got %d", opt.FeatureDim)
	}
	if spec.Edges < 1 || spec.Users < 1 || (spec.Bipartite && spec.Items < 1) {
		return nil, fmt.Errorf("dataset: degenerate spec %+v", spec)
	}
	r := tensor.NewRNG(spec.Seed)

	userZipf := newZipf(r, spec.Users, spec.ZipfExponent)
	var partnerZipf *zipf
	if spec.Bipartite {
		partnerZipf = newZipf(r, spec.Items, spec.ZipfExponent)
	} else {
		partnerZipf = newZipf(r, spec.Users, spec.ZipfExponent)
	}

	alpha := spec.ParetoAlpha
	if alpha <= 0 {
		alpha = 1.2
	}

	// Raw clock: cumulative Pareto increments, normalized afterwards.
	raw := make([]float64, spec.Edges)
	clock := 0.0
	for i := range raw {
		clock += r.Pareto(1, alpha)
		raw[i] = clock
	}

	lastPartner := make(map[int32]int32, spec.Users)
	edges := make([]graph.Edge, spec.Edges)
	numNodes := spec.NumNodes()
	for i := range edges {
		u := int32(1 + userZipf.Sample(r))
		var v int32
		if prev, ok := lastPartner[u]; ok && r.Float64() < spec.Repeat {
			v = prev
		} else if spec.Bipartite {
			v = int32(1 + spec.Users + partnerZipf.Sample(r))
		} else {
			v = int32(1 + partnerZipf.Sample(r))
			for v == u {
				v = int32(1 + partnerZipf.Sample(r))
			}
		}
		lastPartner[u] = v
		t := math.Round(raw[i] / clock * spec.MaxTime)
		edges[i] = graph.Edge{Src: u, Dst: v, Time: t, Idx: int32(i + 1)}
	}

	g, err := graph.NewGraph(numNodes, edges)
	if err != nil {
		return nil, err
	}

	nodeFeat := tensor.New(numNodes+1, opt.FeatureDim)
	if opt.RandomNodeFeatures {
		fillGaussian(r, nodeFeat, 0.1)
		zeroRow(nodeFeat, 0)
	}
	edgeFeat := tensor.New(spec.Edges+1, opt.FeatureDim)
	fillGaussian(r, edgeFeat, 0.1)
	zeroRow(edgeFeat, 0)

	return &Dataset{Name: spec.Name, Spec: spec, Graph: g, NodeFeat: nodeFeat, EdgeFeat: edgeFeat}, nil
}

// FromGraph wraps an externally loaded graph (for example a CSV edge
// list) as a Dataset, synthesizing feature tables: zero node features
// and small-Gaussian edge features at opt.FeatureDim, matching the
// paper's rule for datasets without native features.
func FromGraph(name string, g *graph.Graph, opt Options, seed uint64) (*Dataset, error) {
	if opt.FeatureDim < 1 {
		return nil, fmt.Errorf("dataset: FeatureDim must be >= 1, got %d", opt.FeatureDim)
	}
	r := tensor.NewRNG(seed)
	nodeFeat := tensor.New(g.NumNodes()+1, opt.FeatureDim)
	if opt.RandomNodeFeatures {
		fillGaussian(r, nodeFeat, 0.1)
		zeroRow(nodeFeat, 0)
	}
	edgeFeat := tensor.New(g.NumEdges()+1, opt.FeatureDim)
	fillGaussian(r, edgeFeat, 0.1)
	zeroRow(edgeFeat, 0)
	return &Dataset{Name: name, Graph: g, NodeFeat: nodeFeat, EdgeFeat: edgeFeat}, nil
}

func fillGaussian(r *tensor.RNG, t *tensor.Tensor, std float64) {
	for i := range t.Data() {
		t.Data()[i] = float32(r.NormFloat64() * std)
	}
}

func zeroRow(t *tensor.Tensor, row int) {
	w := t.Dim(1)
	d := t.Data()[row*w : (row+1)*w]
	for i := range d {
		d[i] = 0
	}
}

// zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s via inverse-CDF binary search over a precomputed table.
// Ranks are shuffled once so that popularity is not correlated with node
// id.
type zipf struct {
	cdf  []float64
	perm []int
}

func newZipf(r *tensor.RNG, n int, s float64) *zipf {
	if s <= 0 {
		s = 1
	}
	z := &zipf{cdf: make([]float64, n), perm: r.Perm(n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Sample draws one rank.
func (z *zipf) Sample(r *tensor.RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.perm[lo]
}
