// Package dataset provides the dynamic-graph workloads for every
// experiment: synthetic generators that reproduce the statistical and
// behavioural shape of the seven datasets in the paper's Table 2, and a
// loader/saver for the TGAT artifact's ml_{name}.csv edge-list format so
// real data can be dropped in.
//
// The real JODIE and SNAP datasets are not available in this offline
// environment. Per DESIGN.md §2, each generator reproduces the
// properties the TGOpt optimizations are sensitive to: bipartite vs
// homogeneous topology, node/edge counts and the maximum timestamp
// (scaled), Zipf-distributed node popularity, power-law inter-event
// times (the paper's Figure 4 observation), and — for the jodie-*
// datasets — the repeat-consumption behaviour that JODIE's curation
// emphasizes and that §5.2.1 credits for the higher bipartite speedups.
package dataset

import (
	"fmt"
	"math"
)

// Spec describes a synthetic dynamic-graph workload.
type Spec struct {
	Name      string
	Bipartite bool
	// Node counts. For bipartite graphs Users+Items nodes exist; for
	// homogeneous graphs only Users is used.
	Users, Items int
	Edges        int
	// NativeEdgeDim is the raw edge-feature width in the original
	// dataset (0 where the original has none and the paper substitutes
	// a random 100-dim vector). Informational: generated features are
	// produced at the model's width.
	NativeEdgeDim int
	MaxTime       float64
	// Repeat is the probability that a user's next interaction repeats
	// its previous partner (JODIE-style repetitive consumption).
	Repeat float64
	// ZipfExponent skews partner popularity; larger = heavier head.
	ZipfExponent float64
	// ParetoAlpha shapes the inter-event time tail; smaller = heavier.
	ParetoAlpha float64
	Seed        uint64
}

// Specs returns the seven workloads of the paper's Table 2. Counts and
// max timestamps follow the table; behavioural parameters encode the
// properties described in §3 and §5.2.1 (high repetition for jodie-*,
// lower for snap-*).
func Specs() []Spec {
	return []Spec{
		{Name: "jodie-lastfm", Bipartite: true, Users: 980, Items: 1000, Edges: 1293103, NativeEdgeDim: 0, MaxTime: 1.4e8, Repeat: 0.70, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 11},
		{Name: "jodie-mooc", Bipartite: true, Users: 7047, Items: 97, Edges: 411749, NativeEdgeDim: 4, MaxTime: 2.6e6, Repeat: 0.65, ZipfExponent: 1.0, ParetoAlpha: 1.3, Seed: 12},
		{Name: "jodie-reddit", Bipartite: true, Users: 10000, Items: 984, Edges: 672447, NativeEdgeDim: 172, MaxTime: 2.7e6, Repeat: 0.75, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 13},
		{Name: "jodie-wiki", Bipartite: true, Users: 8227, Items: 1000, Edges: 157474, NativeEdgeDim: 172, MaxTime: 2.7e6, Repeat: 0.70, ZipfExponent: 1.1, ParetoAlpha: 1.3, Seed: 14},
		{Name: "snap-email", Bipartite: false, Users: 986, Edges: 332334, NativeEdgeDim: 0, MaxTime: 6.9e7, Repeat: 0.30, ZipfExponent: 1.2, ParetoAlpha: 1.1, Seed: 15},
		{Name: "snap-msg", Bipartite: false, Users: 1899, Edges: 59835, NativeEdgeDim: 0, MaxTime: 1.1e9, Repeat: 0.25, ZipfExponent: 1.1, ParetoAlpha: 1.1, Seed: 16},
		{Name: "snap-reddit", Bipartite: false, Users: 67180, Edges: 858488, NativeEdgeDim: 86, MaxTime: 1.5e9, Repeat: 0.35, ZipfExponent: 1.3, ParetoAlpha: 1.1, Seed: 17},
	}
}

// SpecByName returns the named workload from Specs.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names lists the available workload names in Table 2 order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Scale returns a copy of the spec with the edge count and maximum
// timestamp scaled by f and the node counts scaled by √f (clamped to at
// least a handful of nodes and edges). Scaling MaxTime along with Edges
// keeps the inter-event time distribution — and hence the Δt redundancy
// structure — intact; scaling nodes sub-linearly keeps per-node activity
// spread across batches rather than collapsing it inside single batches,
// which is what the cross-batch embedding reuse the paper exploits
// depends on (a linearly scaled graph becomes so dense per node that
// most-recent windows turn over within one batch and cache hits vanish).
func (s Spec) Scale(f float64) Spec {
	if f <= 0 || f == 1 {
		return s
	}
	nodeF := math.Sqrt(f)
	scaled := s
	scaled.Edges = clampMin(int(float64(s.Edges)*f), 50)
	scaled.Users = clampMin(int(float64(s.Users)*nodeF), 10)
	if s.Bipartite {
		scaled.Items = clampMin(int(float64(s.Items)*nodeF), 5)
	}
	scaled.MaxTime = s.MaxTime * f
	if scaled.MaxTime < 1e4 {
		scaled.MaxTime = 1e4
	}
	return scaled
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// NumNodes returns the total node count of the spec.
func (s Spec) NumNodes() int {
	if s.Bipartite {
		return s.Users + s.Items
	}
	return s.Users
}
