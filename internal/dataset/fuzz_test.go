package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the edge-list parser with arbitrary input: it
// must never panic, and any graph it does accept must satisfy the
// structural invariants (chronological edges, endpoints in range).
func FuzzReadCSV(f *testing.F) {
	f.Add("u,i,ts\n1,2,10\n2,3,20\n")
	f.Add(",u,i,ts,label,idx\n0,1,2,10,0,1\n")
	f.Add("u,i,ts\n")
	f.Add("u,i,ts\n1,2,1e9\n")
	f.Add("x,y\n1,2\n")
	f.Add("u,i,ts\n-5,2,1\n")
	f.Add("u,i,ts\n1,2,notanumber\n")
	f.Add(strings.Repeat("u,i,ts\n1,2,3\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		prev := -1.0
		for _, e := range g.Edges() {
			if e.Time < prev {
				t.Fatal("accepted graph has unsorted edges")
			}
			prev = e.Time
			if e.Src < 1 || int(e.Src) > g.NumNodes() || e.Dst < 1 || int(e.Dst) > g.NumNodes() {
				t.Fatal("accepted graph has out-of-range endpoints")
			}
		}
		// Accepted graphs must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
	})
}
