package core

import (
	"sync"
	"testing"
	"tgopt/internal/parallel"

	"tgopt/internal/tensor"
)

func TestCacheStoreLookupRoundTrip(t *testing.T) {
	c := NewCache(100, 4, 4)
	keys := []uint64{1, 2, 3}
	h := tensor.FromSlice([]float32{
		1, 1, 1, 1,
		2, 2, 2, 2,
		3, 3, 3, 3,
	}, 3, 4)
	c.Store(keys, h)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	dst := tensor.New(4, 4)
	hits, n := c.Lookup([]uint64{2, 99, 3, 1}, dst)
	if n != 3 {
		t.Fatalf("hits = %d", n)
	}
	if !hits[0] || hits[1] || !hits[2] || !hits[3] {
		t.Fatalf("hit mask %v", hits)
	}
	if dst.At(0, 0) != 2 || dst.At(2, 0) != 3 || dst.At(3, 0) != 1 {
		t.Fatalf("looked-up rows wrong: %v", dst.Data())
	}
	// Miss row untouched (stays zero).
	if dst.At(1, 0) != 0 {
		t.Fatal("miss row was written")
	}
}

func TestCacheStoreCopiesRows(t *testing.T) {
	c := NewCache(10, 2, 1)
	h := tensor.FromSlice([]float32{7, 7}, 1, 2)
	c.Store([]uint64{1}, h)
	h.Set(0, 0, 0) // mutate the source after store
	dst := tensor.New(1, 2)
	c.Lookup([]uint64{1}, dst)
	if dst.At(0, 0) != 7 {
		t.Fatal("cache aliased caller storage")
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := NewCache(10, 2, 1)
	c.Store([]uint64{5}, tensor.FromSlice([]float32{1, 1}, 1, 2))
	c.Store([]uint64{5}, tensor.FromSlice([]float32{9, 9}, 1, 2))
	if c.Len() != 1 {
		t.Fatalf("Len after refresh = %d", c.Len())
	}
	dst := tensor.New(1, 2)
	c.Lookup([]uint64{5}, dst)
	if dst.At(0, 0) != 9 {
		t.Fatal("refresh did not update value")
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	// Single shard so FIFO order is exact.
	c := NewCache(3, 1, 1)
	for k := uint64(1); k <= 3; k++ {
		c.Store([]uint64{k}, tensor.FromSlice([]float32{float32(k)}, 1, 1))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Inserting a 4th evicts the oldest (key 1).
	c.Store([]uint64{4}, tensor.FromSlice([]float32{4}, 1, 1))
	if c.Len() != 3 {
		t.Fatalf("Len after eviction = %d", c.Len())
	}
	if c.Contains(1) {
		t.Fatal("oldest entry not evicted")
	}
	for _, k := range []uint64{2, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("key %d missing after eviction", k)
		}
	}
}

func TestCacheLimitNeverExceeded(t *testing.T) {
	c := NewCache(64, 2, 8)
	r := tensor.NewRNG(1)
	for batch := 0; batch < 50; batch++ {
		n := 20
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		c.Store(keys, tensor.Rand(r, n, 2))
		if c.Len() > c.Limit() {
			t.Fatalf("cache grew to %d, cap %d", c.Len(), c.Limit())
		}
	}
	if c.UsedBytes() <= 0 {
		t.Fatal("UsedBytes not positive")
	}
}

func TestCacheGlobalLimitExactMultiShard(t *testing.T) {
	// The regression: per-shard limits used to round up (ceil(limit/ns)),
	// so a multi-shard cache could settle at up to ns-1 items above its
	// configured limit. Fill well past the limit and require Len() to
	// land at most at Limit() — and, with this many distinct keys, at
	// exactly Limit().
	c := NewCache(100, 2, 16)
	r := tensor.NewRNG(7)
	for batch := 0; batch < 20; batch++ {
		n := 50
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(batch*n + i + 1)
		}
		c.Store(keys, tensor.Rand(r, n, 2))
	}
	if c.Len() > c.Limit() {
		t.Fatalf("Len %d exceeds Limit %d", c.Len(), c.Limit())
	}
	if c.Len() != c.Limit() {
		t.Fatalf("overfilled cache settled at %d, want exactly %d", c.Len(), c.Limit())
	}
}

func TestCacheLimitSmallerThanShards(t *testing.T) {
	// A limit below the shard count shrinks the shard count so every
	// shard can hold at least one entry; the limit still binds exactly.
	c := NewCache(3, 1, 16)
	if len(c.shards) > 3 {
		t.Fatalf("shards = %d for limit 3", len(c.shards))
	}
	for k := uint64(1); k <= 20; k++ {
		c.Store([]uint64{k}, tensor.FromSlice([]float32{float32(k)}, 1, 1))
		if c.Len() > c.Limit() {
			t.Fatalf("Len %d exceeds Limit %d", c.Len(), c.Limit())
		}
	}
	if c.Len() == 0 {
		t.Fatal("tiny cache stored nothing")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache(10, 1, 2)
	c.Store([]uint64{1, 2}, tensor.Ones(2, 1))
	c.Clear()
	if c.Len() != 0 || c.Contains(1) {
		t.Fatal("Clear left entries")
	}
}

func TestCacheValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 1, 1) },
		func() { NewCache(1, 0, 1) },
		func() {
			c := NewCache(1, 2, 1)
			c.Lookup([]uint64{1}, tensor.New(2, 2))
		},
		func() {
			c := NewCache(1, 2, 1)
			c.Store([]uint64{1, 2}, tensor.New(1, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid cache call did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := NewCache(100, 1, 5) // rounds shards up to 8
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	if c.Limit() != 100 || c.Dim() != 1 {
		t.Fatal("accessors wrong")
	}
	d := NewCache(100, 1, 0)
	if len(d.shards) != 16 {
		t.Fatalf("default shards = %d, want 16", len(d.shards))
	}
}

func TestCacheConcurrentStoreLookup(t *testing.T) {
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	c := NewCache(10000, 4, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := tensor.NewRNG(uint64(w))
			for iter := 0; iter < 50; iter++ {
				n := 64
				keys := make([]uint64, n)
				h := tensor.New(n, 4)
				for i := range keys {
					k := uint64(r.Intn(2000))
					keys[i] = k
					for j := 0; j < 4; j++ {
						h.Set(float32(k), i, j)
					}
				}
				c.Store(keys, h)
				dst := tensor.New(n, 4)
				hits, _ := c.Lookup(keys, dst)
				for i := range keys {
					if hits[i] && dst.At(i, 0) != float32(keys[i]) {
						t.Errorf("value/key mismatch under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestCacheLargeBatchParallelPath(t *testing.T) {
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	c := NewCache(100000, 2, 16)
	n := cacheParallelThreshold + 1000
	keys := make([]uint64, n)
	h := tensor.New(n, 2)
	for i := range keys {
		keys[i] = uint64(i)
		h.Set(float32(i), i, 0)
	}
	c.Store(keys, h)
	dst := tensor.New(n, 2)
	hits, nh := c.Lookup(keys, dst)
	if nh != n {
		t.Fatalf("parallel lookup hits = %d, want %d", nh, n)
	}
	for i := 0; i < n; i += 997 {
		if !hits[i] || dst.At(i, 0) != float32(i) {
			t.Fatalf("parallel row %d wrong", i)
		}
	}
}

func TestCacheFifoCompaction(t *testing.T) {
	// Force many evictions through one shard to exercise head compaction.
	c := NewCache(4, 1, 1)
	for k := uint64(0); k < 5000; k++ {
		c.Store([]uint64{k}, tensor.FromSlice([]float32{1}, 1, 1))
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after churn", c.Len())
	}
	s := &c.shards[0]
	if len(s.fifo)-s.head > 16 {
		t.Fatalf("fifo grew unbounded: len=%d head=%d", len(s.fifo), s.head)
	}
}

func TestSplitCacheLimitPolicies(t *testing.T) {
	// Weighted (default): layer l weighs k^(top-l). k=4, top=2 →
	// weights 4:1, so a 1000-entry budget splits 800/200.
	per := SplitCacheLimit(1000, 4, 2, CacheSplitWeighted)
	if len(per) != 3 || per[1] != 800 || per[2] != 200 {
		t.Fatalf("weighted split = %v, want [_ 800 200]", per)
	}
	// Even: flat shares, the pre-weighting behavior.
	per = SplitCacheLimit(1000, 4, 2, CacheSplitEven)
	if per[1] != 500 || per[2] != 500 {
		t.Fatalf("even split = %v, want [_ 500 500]", per)
	}
	// Degenerate fan-out (k < 2) degrades to even regardless of policy.
	per = SplitCacheLimit(1000, 1, 2, CacheSplitWeighted)
	if per[1] != 500 || per[2] != 500 {
		t.Fatalf("k=1 split = %v, want even", per)
	}
	// Single cached layer takes everything; tiny budgets floor at 1.
	if per = SplitCacheLimit(1000, 4, 1, CacheSplitWeighted); per[1] != 1000 {
		t.Fatalf("single-layer split = %v", per)
	}
	if per = SplitCacheLimit(1, 4, 3, CacheSplitWeighted); per[1] < 1 || per[2] < 1 || per[3] < 1 {
		t.Fatalf("tiny budget split %v starved a layer", per)
	}

	// Byte budgets: same shape, and non-positive totals stay unbounded.
	bb := SplitCacheBudget(1000, 4, 2, CacheSplitWeighted)
	if bb[1] != 800 || bb[2] != 200 {
		t.Fatalf("weighted byte split = %v", bb)
	}
	bb = SplitCacheBudget(0, 4, 2, CacheSplitWeighted)
	if bb[1] != 0 || bb[2] != 0 {
		t.Fatalf("unbounded byte split = %v, want zeros", bb)
	}
}
