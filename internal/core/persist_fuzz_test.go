package core

import (
	"bytes"
	"testing"

	"tgopt/internal/tensor"
)

// fuzzSeedBlobs builds representative cache-blob inputs: a valid v2
// blob, a valid legacy v1 blob, and mutations of each. The same blobs
// back the checked-in corpus under testdata/fuzz.
func fuzzSeedBlobs() [][]byte {
	c := NewCache(16, 3, 4)
	r := tensor.NewRNG(9)
	keys := make([]uint64, 8)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	c.Store(keys, tensor.Rand(r, 8, 3))
	var v2 bytes.Buffer
	if _, err := c.WriteTo(&v2); err != nil {
		panic(err)
	}
	vals := make([][]float32, len(keys))
	for i := range vals {
		vals[i] = []float32{1, 2, 3}
	}
	v1 := legacyV1Blob(3, keys, vals)

	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x10
	countLies := append([]byte(nil), v1...)
	countLies[8] = 0xFF // v1 count header far beyond the entries present

	return [][]byte{
		v2.Bytes(),
		v1,
		v2.Bytes()[:v2.Len()/2],
		flipped,
		countLies,
		{},
	}
}

// FuzzCacheReadFrom asserts the reader's contract over arbitrary
// bytes: it never panics, never allocates proportionally to a hostile
// header, and either applies a full snapshot or — on any error —
// leaves the cache exactly as it was (here: one pre-existing entry).
func FuzzCacheReadFrom(f *testing.F) {
	for _, seed := range fuzzSeedBlobs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCache(16, 3, 4)
		c.Store([]uint64{42}, tensor.Ones(1, 3))
		probe := func() {
			// Counter invariant: whatever bytes the reader consumed, a
			// lookup pass afterwards must account exactly — every lookup
			// is a hit or a miss, and without a spill tier there are no
			// spill hits or promotions.
			dst := tensor.New(1, 3)
			hits := make([]bool, 1)
			c.LookupInto([]uint64{42}, dst, hits)
			c.LookupInto([]uint64{977}, dst, hits)
			st := c.Stats()
			if st.Lookups != st.Hits+st.Misses {
				t.Fatalf("lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
			}
			if st.SpillHits != 0 || st.Promotes != 0 {
				t.Fatalf("spill counters moved without a spill tier: %+v", st)
			}
		}
		_, err := c.ReadFrom(bytes.NewReader(data))
		if err != nil {
			if c.Len() != 1 || !c.Contains(42) {
				t.Fatalf("failed load half-applied: len=%d", c.Len())
			}
			probe()
			return
		}
		// On success the pre-existing entry may legitimately have been
		// FIFO-evicted by the loaded ones; only the limit must hold.
		if c.Len() > c.Limit() {
			t.Fatalf("load exceeded limit: %d > %d", c.Len(), c.Limit())
		}
		probe()
	})
}
