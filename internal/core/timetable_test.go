package core

import (
	"testing"
	"testing/quick"

	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

func TestTimeTableVerify(t *testing.T) {
	enc := nn.NewTimeEncoder(8)
	tt := NewTimeTable(enc, 100)
	if !tt.Verify(0) {
		t.Fatal("precomputed rows differ from fresh encoding")
	}
	if tt.Window() != 100 || tt.Dim() != 8 {
		t.Fatalf("accessors wrong: %d %d", tt.Window(), tt.Dim())
	}
	if tt.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
}

func TestTimeTableZeroRow(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	tt := NewTimeTable(enc, 10)
	dst := tensor.New(3, 4)
	tt.EncodeZerosInto(3, dst)
	want := enc.EncodeScalar(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if dst.At(i, j) != want.At(j) {
				t.Fatalf("zero row (%d,%d) = %v, want %v", i, j, dst.At(i, j), want.At(j))
			}
		}
	}
}

func TestTimeTableHitsAndMisses(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	tt := NewTimeTable(enc, 10)
	dts := []float64{0, 5, 9, 10, 2.5, -1, 1e9}
	out, hits := tt.Encode(dts)
	if hits != 3 { // 0, 5, 9 in window; 10 (== window) is out; 2.5 fractional; -1 negative
		t.Fatalf("hits = %d, want 3", hits)
	}
	want := enc.Encode(dts)
	if !out.AllClose(want, 0) {
		t.Fatalf("table output differs from direct encoding: %g", out.MaxAbsDiff(want))
	}
}

func TestTimeTableSemanticsPreservingProperty(t *testing.T) {
	enc := nn.NewTimeEncoder(16)
	tt := NewTimeTable(enc, 1000)
	prop := func(raw []int16, frac bool) bool {
		dts := make([]float64, len(raw))
		for i, v := range raw {
			dts[i] = float64(v)
			if frac {
				dts[i] += 0.5
			}
		}
		out, _ := tt.Encode(dts)
		return out.AllClose(enc.Encode(dts), 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeTableAllMisses(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	tt := NewTimeTable(enc, 2)
	out, hits := tt.Encode([]float64{100, 200})
	if hits != 0 {
		t.Fatalf("hits = %d", hits)
	}
	if !out.AllClose(enc.Encode([]float64{100, 200}), 0) {
		t.Fatal("miss fallback wrong")
	}
}

func TestTimeTableWindowPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 did not panic")
		}
	}()
	NewTimeTable(nn.NewTimeEncoder(4), 0)
}
