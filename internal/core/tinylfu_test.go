package core

import "testing"

func TestFreqSketchCountsAndSaturates(t *testing.T) {
	f := newFreqSketch(64)
	if got := f.estimate(42); got != 0 {
		t.Fatalf("fresh sketch estimate = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		f.inc(42)
	}
	if got := f.estimate(42); got != 3 {
		t.Fatalf("estimate after 3 incs = %d, want 3 (empty sketch has no collisions)", got)
	}
	for i := 0; i < 100; i++ {
		f.inc(42)
	}
	if got := f.estimate(42); got != 15 {
		t.Fatalf("estimate after 103 incs = %d, want saturation at 15", got)
	}
}

func TestFreqSketchEstimateIsUpperBound(t *testing.T) {
	// Count-min property: collisions can only inflate, never deflate.
	// Capacity 64 → sampleCap 640, so 500 increments stay inside one
	// sample period and the pre-aging bound applies.
	f := newFreqSketch(64)
	truth := make(map[uint64]byte)
	for i := 0; i < 500; i++ {
		k := uint64(i % 50)
		f.inc(k)
		if truth[k] < 15 {
			truth[k]++
		}
	}
	// Halvings may have aged counts down; run within one sample period.
	if f.halvings > 0 {
		t.Skip("sample period elapsed; bound only holds pre-aging")
	}
	for k, want := range truth {
		if got := f.estimate(k); got < want {
			t.Fatalf("estimate(%d) = %d below true count %d", k, got, want)
		}
	}
}

func TestFreqSketchHalvingAges(t *testing.T) {
	f := newFreqSketch(8) // sampleCap = 80
	for i := 0; i < 10; i++ {
		f.inc(7)
	}
	before := f.estimate(7)
	if before == 0 {
		t.Fatal("no count recorded")
	}
	// Drive unrelated keys until the sample period elapses.
	start := f.halvings
	for i := 0; f.halvings == start && i < 1000; i++ {
		f.inc(uint64(1000 + i))
	}
	if f.halvings == start {
		t.Fatal("sample period never elapsed")
	}
	after := f.estimate(7)
	if after >= before {
		t.Fatalf("halving did not age key 7: %d -> %d", before, after)
	}
}

func TestFreqSketchHalvePreservesNibblePacking(t *testing.T) {
	// Directly verify the packed shift: counters 15/15 in one byte halve
	// to 7/7 with no bit leaking between nibbles.
	f := newFreqSketch(1)
	for i := range f.table {
		f.table[i] = 0xFF
	}
	f.halve()
	for i, b := range f.table {
		if b != 0x77 {
			t.Fatalf("table[%d] = %02x after halving 0xFF, want 0x77", i, b)
		}
	}
}

func TestFreqSketchSizing(t *testing.T) {
	f := newFreqSketch(100)
	counters := int(f.mask) + 1
	if counters < 400 {
		t.Fatalf("%d counters for capacity 100, want >= 4x", counters)
	}
	if counters&(counters-1) != 0 {
		t.Fatalf("counter count %d not a power of two", counters)
	}
	if len(f.table) != counters/2 {
		t.Fatalf("table %d bytes for %d counters", len(f.table), counters)
	}
	// Degenerate capacities still produce a usable sketch.
	f = newFreqSketch(0)
	f.inc(1)
	if f.estimate(1) == 0 {
		t.Fatal("minimal sketch does not count")
	}
}
