package core

import (
	"os"
	"path/filepath"
	"testing"

	"tgopt/internal/checkpoint"
	"tgopt/internal/faultfs"
	"tgopt/internal/tensor"
)

// fillSpill stores keys 1..n with vec[i] = float32(key) so reads can be
// checked bit-exactly.
func fillSpill(sp *SpillStore, n int) {
	vec := make([]float32, sp.dim)
	for k := uint64(1); k <= uint64(n); k++ {
		for i := range vec {
			vec[i] = float32(k)
		}
		sp.Put(k, vec)
	}
}

// checkSpillExact asserts that every Get over keys 1..n either misses
// or returns exactly the value fillSpill wrote — a wrong value is the
// one unacceptable outcome. Returns the number of hits.
func checkSpillExact(t *testing.T, sp *SpillStore, n int) int {
	t.Helper()
	dst := make([]float32, sp.dim)
	hits := 0
	for k := uint64(1); k <= uint64(n); k++ {
		if !sp.Get(k, dst) {
			continue
		}
		hits++
		for i, x := range dst {
			if x != float32(k) {
				t.Fatalf("key %d: corrupt value %g at dim %d (want %d)", k, x, i, k)
			}
		}
	}
	return hits
}

func TestSpillSealCrashDropsEntriesNeverCorrupts(t *testing.T) {
	// A crash mid-seal (disk full, power cut before the atomic rename)
	// must lose the unsealed records cleanly: they disappear from the
	// index, nothing torn is ever indexed, and the store keeps working
	// once the disk recovers.
	fs := faultfs.NewFS()
	dir := t.TempDir()
	sp, err := NewSpillStore(fs, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 256 // 16-byte records: seal roughly every 16 puts

	fs.WriteLimit = 64 // the first seal's write dies partway through
	fillSpill(sp, 40)
	st := sp.Stats()
	if st.SealErrors == 0 {
		t.Fatal("write fault never surfaced as a seal error")
	}
	checkSpillExact(t, sp, 40)

	// Disk recovers: later entries seal and read back fine.
	fs.WriteLimit = -1
	fillSpill(sp, 40) // re-put everything
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if hits := checkSpillExact(t, sp, 40); hits != 40 {
		t.Fatalf("after recovery only %d/40 entries readable", hits)
	}

	// No torn file survived: everything on disk revalidates, and a
	// fresh store over the same dir recovers with zero corruption.
	sp2, err := NewSpillStore(checkpoint.OS{}, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.Stats().CorruptSegments; got != 0 {
		t.Fatalf("recovery found %d corrupt segments after a clean shutdown", got)
	}
	if hits := checkSpillExact(t, sp2, 40); hits != 40 {
		t.Fatalf("restart recovered %d/40 entries", hits)
	}
}

func TestSpillBitFlipIsAMissNeverAPromotion(t *testing.T) {
	// At-rest corruption of a sealed record must surface as a cache
	// miss (recompute) — never as corrupt bytes handed to a caller or
	// promoted into the hot tier.
	dir := t.TempDir()
	sp, err := NewSpillStore(checkpoint.OS{}, dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 1 // every put seals its own segment
	fillSpill(sp, 8)
	if sp.Stats().Segments != 8 {
		t.Fatalf("expected 8 sealed segments, got %d", sp.Stats().Segments)
	}

	// Flip a bit inside key 3's vector bytes: envelope header (16) +
	// dim header (4) + record key (8) puts bit 0 of the first vec byte
	// at bit (16+4+8)*8.
	if err := faultfs.FlipBit(sp.segPath(2), (16+4+8)*8); err != nil {
		t.Fatal(err)
	}

	dst := make([]float32, 2)
	if sp.Get(3, dst) {
		t.Fatal("bit-flipped record served as a hit")
	}
	if sp.Stats().CorruptRecords == 0 {
		t.Fatal("corruption not counted")
	}
	if sp.Contains(3) {
		t.Fatal("corrupt record still indexed after detection")
	}
	// The other records are untouched.
	if hits := checkSpillExact(t, sp, 8); hits != 7 {
		t.Fatalf("%d/8 hits after one corrupt record, want 7", hits)
	}

	// Through the tiered cache: the flipped key is a miss, so a fresh
	// value gets recomputed/stored; no promotion ever carries bad bytes.
	c := NewCacheWith(CacheConfig{Limit: 4, Dim: 2, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()
	row := tensor.New(1, 2)
	hits := make([]bool, 1)
	if c.LookupInto([]uint64{3}, row, hits) != 0 {
		t.Fatal("tiered cache served the corrupt spilled record")
	}
	if c.Stats().Promotes != 0 {
		t.Fatal("a corrupt record was promoted")
	}
}

func TestSpillRecoveryDeletesCorruptSegments(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillStore(checkpoint.OS{}, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 256 // ~16 records per segment
	fillSpill(sp, 40)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, spillSegPrefix+"*"+spillSegSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 sealed segments, got %v (err %v)", segs, err)
	}

	// One segment bit-flipped at rest, one torn (truncated mid-file,
	// modeling a crash that defeated the atomic rename).
	if err := faultfs.FlipBit(segs[0], 200); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.TruncateFile(segs[1], 10); err != nil {
		t.Fatal(err)
	}

	sp2, err := NewSpillStore(checkpoint.OS{}, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.Stats().CorruptSegments; got != 2 {
		t.Fatalf("recovery counted %d corrupt segments, want 2", got)
	}
	for _, path := range segs[:2] {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt segment %s not deleted", filepath.Base(path))
		}
	}
	// Whatever recovered reads back exactly; nothing from the corrupt
	// segments is indexed.
	checkSpillExact(t, sp2, 40)
	for _, k := range sp2.Keys() {
		ref := sp2.index[k]
		if sp2.segs[ref.seg] == nil && ref.seg != sp2.openID {
			t.Fatalf("key %d indexed into a missing segment %d", k, ref.seg)
		}
	}
}

func TestTieredCacheUnderWriteFaults(t *testing.T) {
	// End-to-end: a tiered cache whose spill disk fails mid-run keeps
	// serving — hot tier unaffected, spilled entries degrade to misses,
	// every hit bit-exact, and counters stay consistent.
	fs := faultfs.NewFS()
	sp, err := NewSpillStore(fs, t.TempDir(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 128
	c := NewCacheWith(CacheConfig{Limit: 8, Dim: 1, Shards: 2, Policy: CacheTinyLFU, Spill: sp})
	defer c.Close()

	fs.WriteLimit = 300 // a few seals succeed, then the disk dies
	r := tensor.NewRNG(11)
	row := tensor.New(1, 1)
	hits := make([]bool, 1)
	one := tensor.New(1, 1)
	for i := 0; i < 3000; i++ {
		k := uint64(1 + r.Intn(100))
		if c.LookupInto([]uint64{k}, row, hits) == 1 {
			if row.At(0, 0) != float32(k) {
				t.Fatalf("iteration %d: key %d served corrupt value %g", i, k, row.At(0, 0))
			}
			continue
		}
		one.Set(float32(k), 0, 0)
		c.Store([]uint64{k}, one)
	}
	st := c.Stats()
	if st.Spill.SealErrors == 0 {
		t.Fatal("write faults never hit the seal path")
	}
	if st.Lookups != st.Hits+st.Misses {
		t.Fatalf("counters diverged under faults: lookups %d hits %d misses %d",
			st.Lookups, st.Hits, st.Misses)
	}
}

func TestSpillRecoveryScanGoesThroughInjectedFS(t *testing.T) {
	// Recovery's directory scan (MkdirAll, ReadDir, Stat) must run
	// through the injected checkpoint.FS like every seal and read — a
	// store that silently read the real filesystem would make the
	// crash-injection tests above vacuous for the scan itself.
	dir := t.TempDir()
	sp, err := NewSpillStore(faultfs.NewFS(), dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fillSpill(sp, 4)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	fs := faultfs.NewFS()
	fs.FailReadDir = true
	if _, err := NewSpillStore(fs, dir, 1, 0); err == nil {
		t.Fatal("recovery scan bypassed the injected FS (ReadDir fault invisible)")
	}

	fs = faultfs.NewFS()
	fs.FailMkdirAll = true
	if _, err := NewSpillStore(fs, filepath.Join(dir, "sub"), 1, 0); err == nil {
		t.Fatal("spill dir creation bypassed the injected FS (MkdirAll fault invisible)")
	}

	// A Stat fault only degrades byte accounting (segment size unknown),
	// never the data: recovery still indexes every record.
	fs = faultfs.NewFS()
	fs.FailStat = true
	sp3, err := NewSpillStore(fs, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits := checkSpillExact(t, sp3, 4); hits != 4 {
		t.Fatalf("recovered %d of 4 records under a Stat fault", hits)
	}
}
