package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"

	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func TestCachePersistenceRoundTrip(t *testing.T) {
	c := NewCache(100, 3, 4)
	r := tensor.NewRNG(1)
	keys := make([]uint64, 20)
	vals := tensor.Rand(r, 20, 3)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	c.Store(keys, vals)

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(100, 3, 8) // different shard count is fine
	if _, err := c2.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 20 {
		t.Fatalf("restored %d entries, want 20", c2.Len())
	}
	dst := tensor.New(20, 3)
	_, nh := c2.Lookup(keys, dst)
	if nh != 20 {
		t.Fatalf("restored lookup hits = %d", nh)
	}
	if !dst.AllClose(vals, 0) {
		t.Fatal("restored values differ")
	}
}

func TestCachePersistenceDimMismatch(t *testing.T) {
	c := NewCache(10, 3, 1)
	c.Store([]uint64{1}, tensor.Ones(1, 3))
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(10, 4, 1)
	if _, err := c2.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	c3 := NewCache(10, 3, 1)
	if _, err := c3.ReadFrom(bytes.NewReader([]byte{9, 9, 9, 9})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := c3.ReadFrom(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCachePersistenceRespectsLimit(t *testing.T) {
	big := NewCache(1000, 2, 1)
	r := tensor.NewRNG(2)
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	big.Store(keys, tensor.Rand(r, 100, 2))
	var buf bytes.Buffer
	if _, err := big.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	small := NewCache(10, 2, 1)
	if _, err := small.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if small.Len() > 10 {
		t.Fatalf("restore exceeded limit: %d", small.Len())
	}
}

func TestEngineSaveLoadCachesWarmStart(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)
	eng := NewEngine(m, s, OptAll())
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	warmLen := eng.CacheLen()
	if warmLen == 0 {
		t.Fatal("no warm state to persist")
	}
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := eng.SaveCaches(path); err != nil {
		t.Fatal(err)
	}

	// A fresh engine restores the warm state and serves identical
	// results with immediate hits.
	eng2 := NewEngine(m, s, OptAll())
	if err := eng2.LoadCaches(path); err != nil {
		t.Fatal(err)
	}
	if eng2.CacheLen() != warmLen {
		t.Fatalf("restored %d entries, warm had %d", eng2.CacheLen(), warmLen)
	}
	nodes := []int32{1, 2, 3}
	ts := []float64{4e4, 4e4, 4.9e4}
	want := m.Embed(s, nodes, ts, nil)
	got := eng2.Embed(nodes, ts)
	if d := got.MaxAbsDiff(want); d > 1e-5 {
		t.Fatalf("warm-restored embeddings differ by %g", d)
	}
}

func TestEngineSaveLoadCachesValidation(t *testing.T) {
	ds, m, s := engineTestSetup(t, 200)
	noCache := NewEngine(m, s, Options{})
	dir := t.TempDir()
	if err := noCache.SaveCaches(filepath.Join(dir, "x.bin")); err == nil {
		t.Fatal("cacheless save accepted")
	}
	if err := noCache.LoadCaches(filepath.Join(dir, "x.bin")); err == nil {
		t.Fatal("cacheless load accepted")
	}
	eng := NewEngine(m, s, OptAll())
	if err := eng.LoadCaches(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Architecture mismatch: 3-layer snapshot into 2-layer engine.
	cfg := engineTestConfig()
	cfg.Layers = 3
	m3, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s3 := NewEngine(m3, graphSampler(ds, cfg), OptAll())
	edges := ds.Graph.Edges()[:50]
	ns := make([]int32, 2*len(edges))
	tts := make([]float64, 2*len(edges))
	for i, e := range edges {
		ns[i], ns[len(edges)+i] = e.Src, e.Dst
		tts[i], tts[len(edges)+i] = e.Time, e.Time
	}
	s3.Embed(ns, tts)
	path := filepath.Join(dir, "l3.bin")
	if err := s3.SaveCaches(path); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadCaches(path); err == nil {
		t.Fatal("layer mismatch accepted")
	}
}

func graphSampler(ds *dataset.Dataset, cfg tgat.Config) *graph.Sampler {
	return graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
}
