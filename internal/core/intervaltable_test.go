package core

import (
	"testing"

	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

func TestIntervalTableQuantizes(t *testing.T) {
	enc := nn.NewTimeEncoder(8)
	it := NewIntervalTimeTable(enc, 128, 10_000)
	if it.Intervals() != 128 {
		t.Fatalf("Intervals = %d", it.Intervals())
	}
	// Every delta within one interval maps to the same encoding.
	a := it.Encode([]float64{10})
	b := it.Encode([]float64{50}) // same 78.125-wide interval as 10
	if !a.AllClose(b, 0) {
		t.Fatal("same-interval deltas encoded differently")
	}
	// Representative (midpoint) deltas are exact.
	mid := 10_000.0 / 128 / 2
	exact := enc.Encode([]float64{mid})
	if !it.Encode([]float64{mid}).AllClose(exact, 1e-7) {
		t.Fatal("midpoint encoding not exact")
	}
}

func TestIntervalTableClamps(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	it := NewIntervalTimeTable(enc, 8, 100)
	lo := it.Encode([]float64{-5})
	first := it.Encode([]float64{0})
	if !lo.AllClose(first, 0) {
		t.Fatal("negative delta did not clamp to first interval")
	}
	hi := it.Encode([]float64{1e9})
	last := it.Encode([]float64{99.9})
	if !hi.AllClose(last, 0) {
		t.Fatal("overflow delta did not clamp to last interval")
	}
}

// TestIntervalTableAltersSemanticsButTGOptDoesNot is the related-work
// contrast at the heart of §4.3 and §6: the 128-interval table of Zhou
// et al. [41] introduces real encoding error, while TGOpt's dense
// window is exact on the same inputs.
func TestIntervalTableAltersSemanticsButTGOptDoesNot(t *testing.T) {
	enc := nn.NewTimeEncoder(16)
	interval := NewIntervalTimeTable(enc, 128, 10_000)
	window := NewTimeTable(enc, 10_000)

	r := tensor.NewRNG(1)
	dts := make([]float64, 2000)
	for i := range dts {
		dts[i] = float64(r.Intn(10_000))
	}
	_, maxErr := interval.QuantizationError(dts)
	if maxErr < 1e-3 {
		t.Fatalf("interval table suspiciously accurate: max error %g", maxErr)
	}
	out, hits := window.Encode(dts)
	if hits != len(dts) {
		t.Fatalf("window hits = %d, want all", hits)
	}
	if !out.AllClose(enc.Encode(dts), 0) {
		t.Fatal("TGOpt window table is not exact")
	}
}

func TestIntervalTableValidation(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	for _, f := range []func(){
		func() { NewIntervalTimeTable(enc, 0, 100) },
		func() { NewIntervalTimeTable(enc, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid interval table accepted")
				}
			}()
			f()
		}()
	}
}

func TestIntervalTableQuantizationErrorEmpty(t *testing.T) {
	enc := nn.NewTimeEncoder(4)
	it := NewIntervalTimeTable(enc, 8, 100)
	mean, max := it.QuantizationError(nil)
	if mean != 0 || max != 0 {
		t.Fatal("empty error not zero")
	}
}
