package core

import (
	"testing"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func TestCacheRemoveRestoreEviction(t *testing.T) {
	// Regression: Remove left the key's old FIFO occurrence behind, so
	// re-storing the key and then evicting dropped the *fresh* entry —
	// the stale occurrence made it look oldest.
	c := NewCache(2, 1, 1)
	c.Store([]uint64{1, 2}, tensor.Ones(2, 1))
	c.Remove([]uint64{1})
	c.Store([]uint64{1}, tensor.Ones(1, 1)) // restore: must queue as newest
	c.Store([]uint64{3}, tensor.Ones(1, 1)) // overflow: must evict 2
	if !c.Contains(1) {
		t.Fatal("restored entry evicted through its stale FIFO occurrence")
	}
	if c.Contains(2) || !c.Contains(3) {
		t.Fatal("eviction picked the wrong victim after remove→restore")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheRemoveChurnCompactsFIFO(t *testing.T) {
	// An invalidation storm (store+remove cycles) must not grow the FIFO
	// without bound: dead occurrences compact away once they dominate.
	c := NewCache(4, 1, 1)
	one := tensor.Ones(1, 1)
	for i := 0; i < 50_000; i++ {
		k := uint64(i + 1)
		c.Store([]uint64{k}, one)
		c.Remove([]uint64{k})
	}
	s := &c.shards[0]
	s.mu.Lock()
	pending, ndead := len(s.fifo)-s.head, s.ndead
	s.mu.Unlock()
	if pending > 1024 {
		t.Fatalf("FIFO holds %d slots after remove churn (compaction broken)", pending)
	}
	if ndead > pending {
		t.Fatalf("ndead=%d exceeds pending FIFO slots %d", ndead, pending)
	}
	// The cache still behaves after the churn.
	c.Store([]uint64{100_001, 100_002}, tensor.Ones(2, 1))
	if !c.Contains(100_001) || !c.Contains(100_002) {
		t.Fatal("cache broken after remove churn")
	}
}

func TestTargetIndexRecordCollect(t *testing.T) {
	ix := NewTargetIndex(nil)
	ix.Record(5, 100, 10)
	ix.Record(5, 101, 20)
	ix.Record(5, 102, 30)
	ix.Record(7, 103, 5)
	ix.Record(0, 999, 1) // padding node: ignored
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.CollectNewer(5, 15, nil)
	if len(got) != 2 {
		t.Fatalf("CollectNewer(5, 15) = %v, want keys 101,102", got)
	}
	seen := map[uint64]bool{got[0]: true, got[1]: true}
	if !seen[101] || !seen[102] {
		t.Fatalf("wrong keys collected: %v", got)
	}
	// Collected entries left the index; older ones stayed.
	if rest := ix.CollectNewer(5, 0, nil); len(rest) != 1 || rest[0] != 100 {
		t.Fatalf("second collect = %v, want [100]", rest)
	}
	// Other nodes are untouched.
	if keys := ix.CollectNewer(7, 0, nil); len(keys) != 1 || keys[0] != 103 {
		t.Fatalf("node 7 = %v", keys)
	}
	// A declining drop predicate keeps candidates indexed.
	ix.Record(9, 200, 50)
	if keys := ix.CollectNewer(9, 0, func(uint64, float64) bool { return false }); len(keys) != 0 {
		t.Fatalf("declined candidates collected: %v", keys)
	}
	if keys := ix.CollectNewer(9, 0, nil); len(keys) != 1 || keys[0] != 200 {
		t.Fatal("declined candidate was dropped from the index")
	}
}

func TestTargetIndexPrunesEvictedKeys(t *testing.T) {
	// With a liveness probe, a hot node's list compacts as it grows
	// instead of accumulating entries for long-evicted keys.
	ix := NewTargetIndex(func(key uint64) bool { return key%2 == 0 })
	for i := 0; i < 4096; i++ {
		ix.Record(1, uint64(i), float64(i))
	}
	if n := ix.Len(); n >= 4096 || n == 0 {
		t.Fatalf("Len = %d after recording 4096 half-dead keys", n)
	}
}

// oooSetup is invalidationSetup with out-of-order ingestion enabled: a
// lateness window on the graph and the target index on the engine.
func oooSetup(t *testing.T, lateness float64) (*tgat.Model, *graph.Dynamic, *Engine, []graph.Edge) {
	t.Helper()
	r := tensor.NewRNG(5)
	const nodes, total = 25, 600
	stream := make([]graph.Edge, 0, total)
	clock := 0.0
	for len(stream) < total {
		clock += 1 + r.Float64()*10
		src := int32(1 + r.Intn(nodes))
		dst := int32(1 + r.Intn(nodes))
		if src == dst {
			continue
		}
		stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
	}
	nodeFeat := tensor.Randn(r, nodes+1, 16)
	edgeFeat := tensor.Randn(r, total+2, 16)
	for j := 0; j < 16; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 11}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(nodes)
	dyn.SetLateness(lateness)
	for _, e := range stream {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	opt := OptAll()
	opt.TrackTargets = true
	eng := NewEngine(m, graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0), opt)
	for start := 0; start < total; start += 100 {
		batch := stream[start : start+100]
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		eng.Embed(ns, ts)
	}
	if eng.CacheLen() == 0 || eng.Targets().Len() == 0 {
		t.Fatal("warming pass cached nothing / indexed nothing")
	}
	return m, dyn, eng, stream
}

func TestInvalidateLateEdgeRestoresExactness(t *testing.T) {
	m, dyn, eng, stream := oooSetup(t, 200)
	// A late edge landing ~20 interactions before the stream head, well
	// inside the window, between two nodes busy enough to be cached.
	total := len(stream)
	tLate := (stream[total-20].Time + stream[total-19].Time) / 2
	u, v := stream[total-20].Src, stream[total-19].Dst
	if u == v {
		v = stream[total-18].Dst
	}
	res, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: tLate, Idx: int32(total + 1)})
	if err != nil || res != graph.IngestLate {
		t.Fatalf("late ingest: res=%v err=%v", res, err)
	}

	before := eng.CacheLen()
	removed := eng.InvalidateLateEdge(u, v, tLate)
	if removed == 0 {
		t.Fatal("late edge between busy nodes invalidated nothing")
	}
	if removed == before {
		t.Fatal("invalidation was not selective (entire cache dropped)")
	}
	if eng.CacheLen() != before-removed {
		t.Fatalf("cache len %d, want %d", eng.CacheLen(), before-removed)
	}

	// Replay every cached query against a fresh no-cache baseline: the
	// surviving entries must all still be exact.
	for start := 0; start < total; start += 150 {
		batch := stream[start : start+150]
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d > 1e-5 {
			t.Fatalf("replay at offset %d disagrees by %g after late insert", start, d)
		}
	}
}

func TestInvalidateLateEdgeFutureTimeRemovesNothing(t *testing.T) {
	// No cached query is newer than the stream head, so an "insert" at
	// the head invalidates nothing and preserves every entry.
	_, dyn, eng, _ := oooSetup(t, 200)
	before := eng.CacheLen()
	if removed := eng.InvalidateLateEdge(1, 2, dyn.MaxTime()+1); removed != 0 {
		t.Fatalf("future-time invalidation removed %d entries", removed)
	}
	if eng.CacheLen() != before {
		t.Fatal("cache shrank on a no-op invalidation")
	}
}

func TestInvalidateLateEdgeMostRecentWindowRefinement(t *testing.T) {
	// Node 1 interacts 10 times before the only cached query time. A
	// late edge older than all of them cannot enter the most-recent-k
	// window, so the CountBetween refinement keeps the entry; a late
	// edge inside the window drops it.
	r := tensor.NewRNG(9)
	const nodes = 9
	nodeFeat := tensor.Randn(r, nodes+1, 16)
	edgeFeat := tensor.Randn(r, 64, 16)
	for j := 0; j < 16; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 3}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(nodes)
	dyn.SetLateness(1_000)
	for i := 0; i < 10; i++ {
		// Alternate partners so node 1's degree is 10.
		if _, err := dyn.Append(graph.Edge{Src: 1, Dst: int32(2 + i%3), Time: float64(10 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	opt := OptAll()
	opt.TrackTargets = true
	eng := NewEngine(m, graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0), opt)
	eng.Embed([]int32{1}, []float64{150})
	if eng.CacheLen() == 0 {
		t.Fatal("warming query cached nothing")
	}

	// Ten interactions separate t=5 from the query at 150: the late edge
	// cannot displace the most-recent-5 window, entry kept. Node 9 has
	// no cached entries at all.
	if removed := eng.InvalidateLateEdge(1, 9, 5); removed != 0 {
		t.Fatalf("out-of-window late edge removed %d entries", removed)
	}
	if eng.CacheLen() == 0 {
		t.Fatal("refinement dropped the cache anyway")
	}
	// Only 3 interactions in (75, 150): the window shifts, entry dropped.
	if removed := eng.InvalidateLateEdge(1, 9, 75); removed == 0 {
		t.Fatal("in-window late edge removed nothing")
	}
}

func TestInvalidateAppendRestoresExactness(t *testing.T) {
	// Regression (PR 5 debt): a *chronological* Append never invalidated
	// anything, so a memo cached at a query time beyond the stream head
	// went silently stale the moment a newer edge arrived beneath it. A
	// request replayed after the append kept reading the pre-append
	// embedding forever.
	m, dyn, eng, stream := oooSetup(t, 0)
	total := len(stream)
	u, v := stream[total-1].Src, stream[total-1].Dst

	// Cache embeddings at a query time beyond the head — the window the
	// appended edge will land inside.
	tFuture := dyn.MaxTime() + 10
	ns := []int32{u, v}
	ts := []float64{tFuture, tFuture}
	if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d > 1e-5 {
		t.Fatalf("pre-append disagreement %g", d)
	}

	// In-order append between the two cached endpoints, below tFuture.
	tNew := dyn.MaxTime() + 5
	if _, err := dyn.Append(graph.Edge{Src: u, Dst: v, Time: tNew, Idx: int32(total + 1)}); err != nil {
		t.Fatal(err)
	}

	// Premise check: the cached memos really are stale now. Without it a
	// no-op invalidation could pass the exactness check vacuously.
	if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d <= 1e-5 {
		t.Fatal("appended edge did not change the future-time embeddings; test premise broken")
	}

	before := eng.CacheLen()
	removed := eng.InvalidateAppend(u, v, tNew)
	if removed == 0 {
		t.Fatal("append under cached future-time memos invalidated nothing (the seed behavior)")
	}
	if removed == before {
		t.Fatal("append invalidation was not selective (entire cache dropped)")
	}

	// The stale window recomputes exactly, and every surviving memo from
	// the warming pass is still exact.
	if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d > 1e-5 {
		t.Fatalf("post-invalidation disagreement %g", d)
	}
	for start := 0; start < total; start += 150 {
		batch := stream[start : start+150]
		bns := make([]int32, 2*len(batch))
		bts := make([]float64, 2*len(batch))
		for i, e := range batch {
			bns[i], bns[len(batch)+i] = e.Src, e.Dst
			bts[i], bts[len(batch)+i] = e.Time, e.Time
		}
		if d := eng.Embed(bns, bts).MaxAbsDiff(freshBaseline(t, m, dyn, bns, bts)); d > 1e-5 {
			t.Fatalf("replay at offset %d disagrees by %g after append", start, d)
		}
	}
}

func TestInvalidateAppendAheadOfAllEmbedsIsFree(t *testing.T) {
	// The common case — appends strictly ahead of every embedded query
	// time — must take the O(1) fast path: nothing removed, no index
	// scan. oooSetup only embeds at edge times, so an append at the head
	// is ahead of them all.
	_, dyn, eng, _ := oooSetup(t, 0)
	before := eng.CacheLen()
	if removed := eng.InvalidateAppend(3, 4, dyn.MaxTime()+1); removed != 0 {
		t.Fatalf("ahead-of-embeds append invalidated %d entries", removed)
	}
	if eng.CacheLen() != before {
		t.Fatal("cache shrank on an ahead-of-embeds append")
	}
}

func TestInvalidateLateEdgeWithoutIndexClearsAll(t *testing.T) {
	// Without the target index the only sound response is a full clear —
	// and the count must reflect it.
	_, _, eng, _ := invalidationSetup(t)
	before := eng.CacheLen()
	if before == 0 {
		t.Fatal("setup cached nothing")
	}
	if removed := eng.InvalidateLateEdge(1, 2, 0); removed != before {
		t.Fatalf("fallback clear reported %d, want %d", removed, before)
	}
	if eng.CacheLen() != 0 {
		t.Fatal("fallback did not clear the cache")
	}
}

func TestStaleByAppendDetectsEqualTimeAppend(t *testing.T) {
	// Regression: the append-staleness guard compared MaxTime against the
	// pre-sampling watermark, so an append at *exactly* the stream clock
	// — legal for Append (e.Time >= lastTime) and common in coarse-
	// grained event streams — changed adjacency without tripping the
	// guard, and a future-time batch racing it could memoize pre-append
	// windows. The guard now compares the append sequence.
	_, dyn, eng, stream := oooSetup(t, 0)
	wm := dyn.MaxTime()
	aseq := dyn.Appends()
	last := stream[len(stream)-1]

	if _, err := dyn.Append(graph.Edge{Src: last.Src, Dst: last.Dst, Time: wm}); err != nil {
		t.Fatal(err)
	}
	if dyn.MaxTime() != wm {
		t.Fatal("test premise broken: equal-time append advanced MaxTime")
	}
	if dyn.Appends() == aseq {
		t.Fatal("equal-time append did not advance the append sequence")
	}
	if !eng.staleByAppend([]float64{wm + 1}, wm, aseq) {
		t.Fatal("equal-time append invisible to the staleness guard (seed behavior)")
	}
	// Rows at or below the watermark cannot have sampled the new edge's
	// window and stay memoizable.
	if eng.staleByAppend([]float64{wm}, wm, aseq) {
		t.Fatal("non-future rows flagged stale by an equal-time append")
	}
	// A snapshot taken after the append sees nothing stale.
	if eng.staleByAppend([]float64{wm + 1}, wm, dyn.Appends()) {
		t.Fatal("guard fired with no append since the snapshot")
	}
}
