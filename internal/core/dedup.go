package core

import (
	"sort"

	"tgopt/internal/tensor"
)

// DedupResult is the output of a deduplication filter: the unique
// node–timestamp pairs and the inverse index mapping each original
// position to its row in the unique list.
type DedupResult struct {
	Nodes  []int32
	Times  []float64
	InvIdx []int32
}

// Unique returns the number of unique pairs.
func (d *DedupResult) Unique() int { return len(d.Nodes) }

// DedupFilter removes duplicate ⟨node, t⟩ pairs from the batch in a
// single pass, following Algorithm 2 of the paper: it operates jointly
// on the two parallel arrays (never materializing an intermediate 2-D
// tensor) and identifies duplicates with the collision-free 64-bit Key.
// The inverse index lets DedupInvert restore the original batch shape
// after computation.
func DedupFilter(nodes []int32, ts []float64) *DedupResult {
	res := DedupFilterWith(nil, nodes, ts)
	return &res
}

// DedupFilterWith is DedupFilter with all output and scratch storage
// drawn from ar (heap when ar is nil), returned by value so the hot
// path allocates nothing. Instead of a Go map it probes an
// open-addressed table over arena scratch — the map's per-call bucket
// allocations were the dominant dedup cost. Results are invalidated by
// ar.Reset.
func DedupFilterWith(ar *tensor.Arena, nodes []int32, ts []float64) DedupResult {
	if len(nodes) != len(ts) {
		panic("core: DedupFilter nodes/ts length mismatch")
	}
	n := len(nodes)
	res := DedupResult{
		Nodes:  ar.Int32s(n),
		Times:  ar.Float64s(n),
		InvIdx: ar.Int32s(n),
	}
	// Power-of-two table with load factor <= 1/2; slot -1 is empty.
	size := 4
	for size < 2*n {
		size <<= 1
	}
	slots := ar.Int32s(size)
	for i := range slots {
		slots[i] = -1
	}
	skeys := ar.Uint64s(size)
	mask := uint64(size - 1)
	u := 0
	for i := 0; i < n; i++ {
		key := Key(nodes[i], ts[i])
		p := mix64(key) & mask
		for {
			idx := slots[p]
			if idx < 0 {
				slots[p] = int32(u)
				skeys[p] = key
				res.Nodes[u] = nodes[i]
				res.Times[u] = ts[i]
				res.InvIdx[i] = int32(u)
				u++
				break
			}
			if skeys[p] == key {
				res.InvIdx[i] = idx
				break
			}
			p = (p + 1) & mask
		}
	}
	res.Nodes = res.Nodes[:u]
	res.Times = res.Times[:u]
	return res
}

// mix64 is the splitmix64 finalizer: Key is structured (node id high,
// time low), so probe positions need full avalanche.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}

// DedupInvert expands the unique-row tensor H (unique, d) back to the
// original batch shape using the inverse index, duplicating rows so the
// output is elementwise identical to what the unoptimized computation
// would have produced (§4.1).
func DedupInvert(h *tensor.Tensor, invIdx []int32) *tensor.Tensor {
	return DedupInvertWith(nil, h, invIdx)
}

// DedupInvertWith is DedupInvert with the output drawn from ar (heap
// when ar is nil).
func DedupInvertWith(ar *tensor.Arena, h *tensor.Tensor, invIdx []int32) *tensor.Tensor {
	d := h.Dim(1)
	out := ar.Tensor(len(invIdx), d)
	src := h.Data()
	dst := out.Data()
	for i, r := range invIdx {
		copy(dst[i*d:(i+1)*d], src[int(r)*d:(int(r)+1)*d])
	}
	return out
}

// DedupFilterSorted is an alternative deduplication strategy used by the
// ablation benchmarks: sort key order, then compact. It produces the
// same unique *set* but in key order rather than first-appearance order;
// the inverse index still restores the original batch exactly. It
// allocates O(n) scratch and is typically slower than the hash-based
// single pass for the batch sizes TGAT uses, which is why the paper's
// Algorithm 2 is hash-based.
func DedupFilterSorted(nodes []int32, ts []float64) *DedupResult {
	if len(nodes) != len(ts) {
		panic("core: DedupFilterSorted nodes/ts length mismatch")
	}
	n := len(nodes)
	keys := make([]uint64, n)
	order := make([]int32, n)
	for i := range nodes {
		keys[i] = Key(nodes[i], ts[i])
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	res := &DedupResult{InvIdx: make([]int32, n)}
	var prev uint64
	for rank, oi := range order {
		k := keys[oi]
		if rank == 0 || k != prev {
			res.Nodes = append(res.Nodes, nodes[oi])
			res.Times = append(res.Times, ts[oi])
			prev = k
		}
		res.InvIdx[oi] = int32(len(res.Nodes) - 1)
	}
	return res
}

// DuplicationRatio reports the fraction of a batch that DedupFilter
// would remove — the metric of the paper's Table 1.
func DuplicationRatio(nodes []int32, ts []float64) float64 {
	if len(nodes) == 0 {
		return 0
	}
	res := DedupFilter(nodes, ts)
	return 1 - float64(res.Unique())/float64(len(nodes))
}

// NodeDuplicationRatio is DuplicationRatio ignoring timestamps — the
// layer-0 rule of §3.1, where only the node id matters because features
// are static.
func NodeDuplicationRatio(nodes []int32) float64 {
	if len(nodes) == 0 {
		return 0
	}
	seen := make(map[int32]struct{}, len(nodes))
	for _, v := range nodes {
		seen[v] = struct{}{}
	}
	return 1 - float64(len(seen))/float64(len(nodes))
}
