package core

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/device"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Options configure the TGOpt engine. The zero value disables every
// optimization, making the engine an instrumented re-implementation of
// the baseline; OptAll enables everything with the paper's defaults.
type Options struct {
	// EnableDedup turns on the §4.1 deduplication filter.
	EnableDedup bool
	// EnableCache turns on the §4.2 embedding memoization cache.
	EnableCache bool
	// EnableTimePrecompute turns on the §4.3 precomputed time encodings.
	EnableTimePrecompute bool

	// CacheLimit bounds the total cached embeddings (default 2,000,000,
	// the paper's setting). With more than one cached layer the limit
	// is divided across per-layer caches per CacheSplit.
	CacheLimit int
	// CacheSplit selects how CacheLimit and CacheSpillMaxBytes divide
	// across per-layer caches when more than one layer is cached. The
	// zero value is CacheSplitWeighted — layer l's share is
	// proportional to k^(top−l), matching expected lookup traffic
	// (every layer-(l+1) miss fans out into k layer-l lookups);
	// CacheSplitEven restores the flat split.
	CacheSplit CacheSplitPolicy
	// CacheBudgetBytes, when > 0, overrides CacheLimit with an explicit
	// hot-tier byte budget: the item limit becomes
	// budget / (4·NodeDim + entry overhead). This is the operator-facing
	// knob (-cache-budget): capacity planning talks in bytes, not items.
	CacheBudgetBytes int64
	// CacheShards controls cache concurrency (default 16).
	CacheShards int
	// CachePolicy picks the hot-tier eviction policy. The zero value is
	// CacheTinyLFU — sketch-based admission that keeps heavy hitters
	// resident under skewed reuse; CacheFIFO restores the paper's
	// original policy.
	CachePolicy CachePolicy
	// CacheSpillDir, when non-empty, enables the cold tier: entries
	// evicted from the hot tier spill to append-only segment files
	// under this directory (one subdirectory per cached layer, since
	// ⟨node, t⟩ keys collide across layers), hot-tier misses fall
	// through to it, and spill hits are promoted back asynchronously.
	CacheSpillDir string
	// CacheSpillMaxBytes bounds the cold tier's on-disk footprint
	// (split across cached layers); <= 0 means unbounded. When the
	// budget is exceeded the oldest segments are dropped whole.
	CacheSpillMaxBytes int64
	// SpillFS overrides the file system the spill tier writes through
	// (default checkpoint.OS). Tests inject faultfs.FS here to prove
	// the no-corrupt-promotion invariant under crashes.
	SpillFS checkpoint.FS
	// TimeWindow is the precomputed Δt window (default 10,000).
	TimeWindow int

	// Quant selects the inference precision (DESIGN.md §14). QuantOff
	// (the default) is the unchanged float32 path. QuantInt8 packs the
	// model's projection weights once at engine construction and runs
	// them through the int8 kernels, stores memo-cache entries (hot
	// tier, spill tier, snapshots) as per-vector-scaled int8 (~4× more
	// entries per byte budget), and quantizes the precomputed time
	// table. Outputs differ from float32 by quantization error only;
	// the quantacc harness bounds the downstream AP delta.
	Quant QuantMode

	// Collector receives per-operation timings (Table 3). Optional.
	Collector *stats.Collector
	// HitRate receives per-lookup hit statistics (Figure 7). Optional.
	HitRate *stats.HitRate

	// Device, when non-nil, simulates running on an accelerator: op
	// timings recorded into Collector are converted by the device cost
	// model and cache/table data movements are charged and counted.
	Device *device.Sim
	// CacheOnDevice stores cached embeddings in simulated device memory
	// instead of host memory (the Table 5 comparison). Only meaningful
	// with Device set.
	CacheOnDevice bool

	// TrackDependencies records which node and edge features each
	// memoized embedding consumed, enabling the §7 extension of
	// selective cache invalidation on node-feature changes and edge
	// deletions (Engine.InvalidateNode / InvalidateEdge). Costs extra
	// memory proportional to cached items × (k+1).
	TrackDependencies bool

	// TrackTargets maintains the per-node indexes that make
	// out-of-order edge inserts sound under memoization
	// (Engine.InvalidateLateEdge). The final cached layer costs one
	// target record per cached entry — far cheaper than
	// TrackDependencies' k+1 — listing, for every node, the cached
	// ⟨node, t⟩ keys; deeper cached layers (models with L > 2)
	// additionally record their sampled support set (at most k support
	// records per entry), enabling transitive selective invalidation
	// instead of the conservative deep clear (DESIGN.md §15). Serving
	// over a graph.Dynamic with a lateness window enables this
	// automatically.
	TrackTargets bool

	// DeepClearAll disables transitive deep-layer invalidation: every
	// late insert or future-displacing append clears the l ≥ 2 caches
	// whole, as before PR 9. Operational escape hatch, and the
	// baseline leg of the deepsweep benchmark (BENCH_5).
	DeepClearAll bool

	// ModelVersion is the version of the parameters the engine starts
	// serving. It stamps spill segments and cache snapshots so state
	// computed under other parameters is refused at recovery, and it
	// seeds ParamsVersion for the hot-swap protocol (SwapParams).
	ModelVersion uint64
}

// OptAll returns Options with all three optimizations enabled at the
// paper's default settings.
func OptAll() Options {
	return Options{
		EnableDedup:          true,
		EnableCache:          true,
		EnableTimePrecompute: true,
		CacheLimit:           2_000_000,
		TimeWindow:           10_000,
	}
}

func (o Options) withDefaults() Options {
	if o.CacheLimit <= 0 {
		o.CacheLimit = 2_000_000
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.TimeWindow <= 0 {
		o.TimeWindow = 10_000
	}
	return o
}

// Engine pipeline stages, the keys of Engine.StageStats. They partition
// Algorithm 1's per-layer work the way a serving deployment needs to
// observe it: neighbor sampling, deduplication (filter + invert), cache
// key computation and lookup, time encoding (zero + delta), the
// attention operator, and the cache store.
const (
	StageSample      = "sample"
	StageDedup       = "dedup"
	StageCacheLookup = "cache_lookup"
	StageTimeEncode  = "time_encode"
	StageAttention   = "attention"
	StageCacheStore  = "cache_store"
)

// Stages lists the engine stages in pipeline order.
var Stages = []string{
	StageSample, StageDedup, StageCacheLookup,
	StageTimeEncode, StageAttention, StageCacheStore,
}

// Engine computes TGAT temporal embeddings with the redundancy-aware
// optimizations of Algorithm 1. It is a drop-in replacement for the
// baseline tgat.Model.Embed: same inputs, same outputs within
// floating-point tolerance.
type Engine struct {
	model   *tgat.Model
	sampler *graph.Sampler
	opt     Options
	// caches[l] is the memoization cache for layer l outputs; only
	// layers 1..L-1 are cached (§4.2.2: the top layer's output is never
	// re-consumed, so caching it would waste the budget).
	caches []*Cache
	ttable *TimeTable
	// qmodel is the packed int8 view of model (Options.Quant ==
	// QuantInt8); nil on the float path. Weights are quantized once
	// here, never per request.
	qmodel *tgat.QuantModel
	deps   *DepTracker
	// layerTargets[l] indexes layer l's cached keys by target node and
	// layerSupports[l] (l ≥ 2) indexes them by support node — the
	// (node, time) pairs whose layer-(l−1) embeddings the entry
	// aggregated (Options.TrackTargets). dyn is the live graph when
	// serving a stream. Together they implement selective staleness
	// invalidation for late inserts and appends, transitively across
	// cached layers (DESIGN.md §15). Support indexes for middle layers
	// (2 ≤ l < top) retain records past eviction: an upper entry may
	// still depend on an evicted value, and losing its record would
	// break rule-(iii) propagation; the retained lists are capped, and
	// an overflow forces the conservative deep clear.
	layerTargets  []*TargetIndex
	layerSupports []*SupportIndex
	dyn           *graph.Dynamic
	// staleSkips counts memoizations abandoned because the graph's
	// mutation epoch advanced between sampling and store: the sampled
	// neighborhoods may predate a history rewrite, so caching the
	// result could resurrect invalidated state.
	staleSkips atomic.Int64
	// maxEmbedBits holds the float bits of the largest query timestamp
	// ever embedded — an upper bound on any memo's t' at any layer
	// (neighbor recursion only descends in time). InvalidateAppend
	// consults it so the steady-state append (no future-time memos
	// outstanding) costs one atomic load.
	maxEmbedBits atomic.Uint64
	// hook, when set, is told the endpoints and time of every targeted
	// invalidation before the cache scan runs — the batcher retires
	// matching in-flight computations so a result computed against the
	// pre-insert history can never serve a post-insert waiter. Set it
	// before serving starts; it is read without synchronization.
	hook func(u, v int32, t float64)
	// swapGate is the parameter hot-swap barrier: every embed and score
	// pass holds the read side for its whole duration, and SwapLock
	// takes the write side, so a swap can never tear a request — no
	// request observes a mix of old- and new-version tensors (DESIGN.md
	// §16). version is the model version currently served.
	swapGate sync.RWMutex
	version  atomic.Uint64
	// stages holds always-on per-stage latency histograms (one atomic
	// observation per op, so the cost is negligible next to the ops).
	stages map[string]*stats.Histogram
}

// NewEngine creates an engine over a trained model and a most-recent
// sampler. Using a Uniform sampler with EnableCache panics: memoization
// is only sound when re-sampling a target reproduces the same temporal
// subgraph (§3.2, §7).
func NewEngine(m *tgat.Model, s *graph.Sampler, opt Options) *Engine {
	opt = opt.withDefaults()
	e := &Engine{model: m, sampler: s, opt: opt}
	e.stages = make(map[string]*stats.Histogram, len(Stages))
	for _, st := range Stages {
		e.stages[st] = stats.NewHistogram()
	}
	if s.K() != m.Cfg.NumNeighbors {
		panic("core: sampler k differs from model NumNeighbors")
	}
	e.maxEmbedBits.Store(math.Float64bits(math.Inf(-1)))
	e.version.Store(opt.ModelVersion)
	quant := opt.Quant == QuantInt8
	if quant {
		e.qmodel = tgat.QuantizeModel(m)
	}
	if opt.EnableCache {
		if s.Strategy() != graph.MostRecent {
			panic("core: the memoization cache requires most-recent sampling (§3.2)")
		}
		if opt.CacheBudgetBytes > 0 {
			limit := EntriesForBudgetQuant(opt.CacheBudgetBytes, m.Cfg.NodeDim, quant)
			opt.CacheLimit = limit
			e.opt.CacheLimit = limit
		}
		top := m.Cfg.Layers - 1
		if m.Cfg.Layers == 1 {
			top = 1 // single-layer models cache their only layer
		}
		per := SplitCacheLimit(opt.CacheLimit, m.Cfg.NumNeighbors, top, opt.CacheSplit)
		spillPer := SplitCacheBudget(opt.CacheSpillMaxBytes, m.Cfg.NumNeighbors, top, opt.CacheSplit)
		fsys := opt.SpillFS
		if fsys == nil {
			fsys = checkpoint.OS{}
		}
		e.caches = make([]*Cache, m.Cfg.Layers+1)
		for l := 1; l <= top; l++ {
			var sp *SpillStore
			if opt.CacheSpillDir != "" {
				var err error
				sp, err = NewSpillStoreVersioned(fsys, filepath.Join(opt.CacheSpillDir, fmt.Sprintf("layer%d", l)), m.Cfg.NodeDim, spillPer[l], quant, opt.ModelVersion)
				if err != nil {
					panic("core: opening cache spill dir: " + err.Error())
				}
			}
			e.caches[l] = NewCacheWith(CacheConfig{
				Limit:  per[l],
				Dim:    m.Cfg.NodeDim,
				Shards: opt.CacheShards,
				Policy: opt.CachePolicy,
				Spill:  sp,
				Quant:  quant,
			})
		}
	}
	if opt.TrackDependencies && opt.EnableCache {
		e.deps = NewDepTracker()
	}
	e.dyn = s.Dynamic()
	if opt.TrackTargets && opt.EnableCache {
		top := 0
		for l, c := range e.caches {
			if c != nil {
				top = l
			}
		}
		e.layerTargets = make([]*TargetIndex, len(e.caches))
		e.layerSupports = make([]*SupportIndex, len(e.caches))
		for l, c := range e.caches {
			if c == nil {
				continue
			}
			e.layerTargets[l] = NewTargetIndex(c.Contains)
			if l < 2 {
				continue
			}
			// Deep layers also track supports. The top layer's records
			// serve only rules (ii)/(iii) against itself, so pruning
			// against its own liveness is sound; middle layers feed
			// rule-(iii) propagation upward and must retain records
			// past eviction (nil probe, capped — see SupportIndex).
			alive := c.Contains
			if l < top {
				alive = nil
			}
			e.layerSupports[l] = NewSupportIndex(alive)
		}
	}
	if opt.EnableTimePrecompute {
		if quant {
			e.ttable = NewTimeTableQuant(m.Time, opt.TimeWindow)
		} else {
			e.ttable = NewTimeTable(m.Time, opt.TimeWindow)
		}
		// Table residency: on a device run the table ships to device
		// memory once, charged here.
		if opt.Device != nil {
			d := opt.Device.TransferTime(device.HtoD, e.ttable.Bytes(), 1)
			opt.Collector.Add(stats.OpTransfer, d)
		}
	}
	return e
}

// Options returns the engine's (defaulted) options.
func (e *Engine) Options() Options { return e.opt }

// Model returns the underlying TGAT model.
func (e *Engine) Model() *tgat.Model { return e.model }

// Quant returns the engine's inference precision.
func (e *Engine) Quant() QuantMode { return e.opt.Quant }

// ScoreWith computes link-prediction logits through the engine's
// precision: the packed int8 affinity head on the quantized path, the
// float head otherwise. Servers must score through this seam rather
// than the model directly, so -quant changes the whole request path.
// The pass holds the swap barrier's read side: a concurrent parameter
// hot-swap waits it out rather than tearing its tensors.
func (e *Engine) ScoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor {
	e.swapGate.RLock()
	defer e.swapGate.RUnlock()
	if e.qmodel != nil {
		return e.qmodel.ScoreWith(ar, hSrc, hDst)
	}
	return e.model.ScoreWith(ar, hSrc, hDst)
}

// ParamsVersion returns the model version the engine currently serves.
func (e *Engine) ParamsVersion() uint64 { return e.version.Load() }

// SwapLock acquires the hot-swap barrier's write side: every in-flight
// embed/score pass drains first and new passes block until SwapUnlock.
// While held, the caller may mutate the shared model's parameter
// tensors (tgat.ApplyParams) and must then call FinishSwap on every
// engine sharing them before unlocking.
func (e *Engine) SwapLock() { e.swapGate.Lock() }

// SwapUnlock releases the hot-swap barrier.
func (e *Engine) SwapUnlock() { e.swapGate.Unlock() }

// FinishSwap completes a parameter swap on this engine while SwapLock
// is held and the shared model already carries the new parameters:
// the packed int8 weights are re-quantized from the swapped tensors,
// every memo-cache layer is dropped and its spill tier re-stamped with
// the new version (hot tier, spill segments, and — through the
// generation fence Clear bumps — pending promote-on-hit enqueues), the
// target/support/dependency indexes reset with them, and the served
// version advances. Memoized embeddings are only valid for the
// parameters that computed them, so the version bump is the cache-wide
// invalidation event (the PR 5/9 epoch machinery keyed on model
// version).
func (e *Engine) FinishSwap(version uint64) {
	if e.qmodel != nil {
		e.qmodel = tgat.QuantizeModel(e.model)
	}
	if e.ttable != nil {
		if e.opt.Quant == QuantInt8 {
			e.ttable = NewTimeTableQuant(e.model.Time, e.opt.TimeWindow)
		} else {
			e.ttable = NewTimeTable(e.model.Time, e.opt.TimeWindow)
		}
	}
	for _, c := range e.caches {
		if c != nil {
			c.SetModelVersion(version)
		}
	}
	for _, tix := range e.layerTargets {
		if tix != nil {
			tix.Reset()
		}
	}
	for _, six := range e.layerSupports {
		if six != nil {
			six.Reset()
		}
	}
	if e.deps != nil {
		e.deps.Reset()
	}
	e.version.Store(version)
}

// SwapParams atomically swaps this engine to a new parameter version:
// apply mutates the shared model's tensors (typically
// tgat.ApplyParams) under the barrier, then FinishSwap invalidates
// every version-dependent derived structure. Single-engine
// deployments use this directly; a shard pool coordinates the same
// three steps across engines itself (shard.Router.SwapParams), since
// all its engines share one model.
func (e *Engine) SwapParams(version uint64, apply func()) {
	e.SwapLock()
	defer e.SwapUnlock()
	apply()
	e.FinishSwap(version)
}

// CacheFor returns the memoization cache serving layer l, or nil.
func (e *Engine) CacheFor(l int) *Cache {
	if e.caches == nil || l < 1 || l >= len(e.caches) {
		return nil
	}
	return e.caches[l]
}

// CacheLen returns the total number of cached embeddings across layers.
func (e *Engine) CacheLen() int {
	total := 0
	for _, c := range e.caches {
		if c != nil {
			total += c.Len()
		}
	}
	return total
}

// CacheBytes returns the estimated resident footprint of all caches.
func (e *Engine) CacheBytes() int64 {
	var total int64
	for _, c := range e.caches {
		if c != nil {
			total += c.UsedBytes()
		}
	}
	return total
}

// StageStats returns the engine's live per-stage latency histograms,
// keyed by the Stage* constants. The histograms are updated on every
// Embed (at every recursion layer) and are safe for concurrent reads;
// callers must treat the map itself as read-only.
func (e *Engine) StageStats() map[string]*stats.Histogram { return e.stages }

// TimeTable returns the precomputed encoding table, or nil.
func (e *Engine) TimeTable() *TimeTable { return e.ttable }

// Deps returns the dependency tracker, or nil when
// Options.TrackDependencies is off.
func (e *Engine) Deps() *DepTracker { return e.deps }

// InvalidateNode drops every memoized embedding whose computation
// consumed node v's features — call it after mutating v's feature row
// (the §7 node-feature-change event). The layer-1 cache is invalidated
// selectively through the dependency tracker; deeper cached layers (for
// models with L > 2) lack transitive key-to-key dependencies and are
// cleared conservatively. Returns the number of entries removed
// selectively. Panics unless dependency tracking is enabled.
func (e *Engine) InvalidateNode(v int32) int {
	if e.deps == nil {
		panic("core: InvalidateNode requires Options.TrackDependencies")
	}
	removed := 0
	if c := e.CacheFor(1); c != nil {
		removed = c.Remove(e.deps.KeysForNode(v))
	}
	e.clearDeepCaches()
	return removed
}

// InvalidateEdge drops every memoized embedding whose sampled temporal
// subgraph included the 1-based edge id — call it after deleting the
// interaction (the §7 edge-deletion event; see graph.Dynamic.DeleteEdge).
// Embeddings that never sampled the edge are untouched: deleting an
// interaction outside a target's most-recent-k window does not change
// its sampled subgraph, so maximal reuse is preserved. Semantics as
// InvalidateNode.
func (e *Engine) InvalidateEdge(eidx int32) int {
	if e.deps == nil {
		panic("core: InvalidateEdge requires Options.TrackDependencies")
	}
	removed := 0
	if c := e.CacheFor(1); c != nil {
		removed = c.Remove(e.deps.KeysForEdge(eidx))
	}
	e.clearDeepCaches()
	return removed
}

// InvalidateLateEdge makes the memo cache exact again after an
// out-of-order edge (u, v, t) was sorted-inserted into the live graph
// (graph.Dynamic.InsertLate): it drops every memoized embedding
// ⟨w, t'⟩ with t' > t whose sampled neighborhood could now include the
// new edge. At layer 1 only targets u and v qualify — the edge enters
// no other node's adjacency — and a candidate is kept (reuse
// maximized, §7) when k or more of the target's interactions already
// lie strictly between t and t': the most-recent-k window is then full
// of newer edges and the insert cannot surface in it. Deeper cached
// layers propagate the same refinement transitively through their
// recorded support sets instead of clearing whole (DESIGN.md §15;
// Options.DeepClearAll restores the conservative clear). Returns the
// number of entries removed.
//
// Without Options.TrackTargets there is no index to consult, so the
// only sound response is dropping every cache; enable tracking on any
// engine serving a stream with a lateness window.
func (e *Engine) InvalidateLateEdge(u, v int32, t float64) int {
	if e.hook != nil {
		e.hook(u, v, t)
	}
	if e.caches == nil {
		return 0
	}
	return e.invalidateNewer(u, v, t)
}

// InvalidateAppend makes the memo cache exact again after a
// chronological append of edge (u, v, t): any memoized embedding
// ⟨w, t'⟩ with t' strictly in the future (t' > t) was computed before
// the append and its most-recent-k window may now be wrong — the exact
// same displacement condition as a late insert, so the same selective
// scan applies. Unlike InsertLate, appends are the steady-state
// serving event, so the scan is gated on a monotonic bound over every
// embedded query timestamp: when no future-time memo can exist (the
// common case — queries at t' ≤ now), the call costs one atomic load.
// The batcher retire hook still fires first: an in-flight future-time
// computation is invisible to the memo bound.
//
// Without Options.TrackTargets the selective scan is impossible and
// every cache is cleared, as in InvalidateLateEdge; engines serving
// appends should always enable tracking.
func (e *Engine) InvalidateAppend(u, v int32, t float64) int {
	if e.hook != nil {
		e.hook(u, v, t)
	}
	if e.caches == nil {
		return 0
	}
	if math.Float64frombits(e.maxEmbedBits.Load()) <= t {
		return 0
	}
	return e.invalidateNewer(u, v, t)
}

// SetInvalidationHook installs the callback invoked at the start of
// every targeted invalidation (late insert or append). Call it once
// during setup, before any concurrent use of the engine.
func (e *Engine) SetInvalidationHook(fn func(u, v int32, t float64)) {
	e.hook = fn
}

// invalidateNewer is the shared selective-invalidation body behind
// InvalidateLateEdge and InvalidateAppend. Layers are processed bottom
// up; a layer-l entry is dropped when (i) its own most-recent-k window
// is displaced by the new edge — the PR 5 rule, now applied per layer
// through layerTargets — or (ii) one of its recorded support values
// ⟨s, t_s⟩ with s ∈ {u, v} had its window displaced (the same
// CountBetween refinement one hop down), or (iii) one of its supports
// is itself a layer-(l−1) entry dropped in the previous pass. Rule
// (ii) makes the propagation exact for L = 3 — layer-1 values depend
// only on their own window and immutable layer-0 features — and rule
// (iii) carries deeper models, relying on middle-layer record
// retention (see SupportIndex).
func (e *Engine) invalidateNewer(u, v int32, t float64) int {
	if e.layerTargets == nil {
		removed := e.CacheLen()
		for _, c := range e.caches {
			if c != nil {
				c.Clear()
			}
		}
		return removed
	}
	// A shed support record means some deep entry's dependencies are
	// unknown: fall back to the conservative clear this one time (the
	// deep indexes reset with it, so tracking restarts clean).
	deepClear := e.opt.DeepClearAll || e.supportsShed()
	k := e.model.Cfg.NumNeighbors
	endpoints := [2]int32{u, v}
	n := 2
	if u == v {
		n = 1 // self-loop: one scan suffices
	}
	// The insert displaces the window of a value ⟨w, at⟩ only if fewer
	// than k interactions separate it from the query time (CountBetween
	// runs post-insert and excludes the new edge itself at time t).
	displacesWindow := func(w int32) func(uint64, float64) bool {
		return func(_ uint64, at float64) bool {
			if e.dyn == nil {
				return true
			}
			return e.dyn.CountBetween(w, t, at) < k
		}
	}
	removed := 0
	var displaced []uint64 // layer-(l−1) keys dropped in the previous pass
	for l := 1; l < len(e.caches); l++ {
		c := e.caches[l]
		if c == nil {
			continue
		}
		if l >= 2 && deepClear {
			removed += c.Len()
			c.Clear()
			e.layerTargets[l].Reset()
			if six := e.layerSupports[l]; six != nil {
				six.Reset()
			}
			continue
		}
		var drop []uint64
		tix := e.layerTargets[l]
		for _, w := range endpoints[:n] {
			drop = append(drop, tix.CollectNewer(w, t, displacesWindow(w))...)
		}
		if six := e.layerSupports[l]; six != nil {
			for _, w := range endpoints[:n] {
				drop = append(drop, six.CollectWindow(w, t, displacesWindow(w))...)
			}
			for _, lower := range displaced {
				drop = append(drop, six.CollectUpper(lower)...)
			}
		}
		removed += c.Remove(drop)
		// Propagate every displaced value, cached or not: an upper
		// entry may have consumed it before it aged out of this cache.
		displaced = drop
	}
	return removed
}

// supportsShed reports whether any retained support index dropped a
// record at its cap since the last reset.
func (e *Engine) supportsShed() bool {
	for _, six := range e.layerSupports {
		if six != nil && six.Shed() {
			return true
		}
	}
	return false
}

// StaleStoreSkips returns how many batch memoizations were abandoned
// (or rolled back) because a history rewrite raced the computation.
func (e *Engine) StaleStoreSkips() int64 { return e.staleSkips.Load() }

// Targets returns layer 1's per-node key index, or nil when
// Options.TrackTargets is off.
func (e *Engine) Targets() *TargetIndex { return e.TargetsFor(1) }

// TargetsFor returns layer l's per-node key index, or nil.
func (e *Engine) TargetsFor(l int) *TargetIndex {
	if e.layerTargets == nil || l < 1 || l >= len(e.layerTargets) {
		return nil
	}
	return e.layerTargets[l]
}

// SupportsFor returns layer l's support index (l ≥ 2 on deep models
// with Options.TrackTargets), or nil.
func (e *Engine) SupportsFor(l int) *SupportIndex {
	if e.layerSupports == nil || l < 1 || l >= len(e.layerSupports) {
		return nil
	}
	return e.layerSupports[l]
}

// clearDeepCaches drops every deep (l ≥ 2) cache whole and resets the
// matching indexes — the conservative response on the paths without
// transitive dependency information (DepTracker invalidations and
// snapshot loads).
func (e *Engine) clearDeepCaches() {
	for l := 2; l < len(e.caches); l++ {
		if e.caches[l] == nil {
			continue
		}
		e.caches[l].Clear()
		if e.layerTargets != nil && e.layerTargets[l] != nil {
			e.layerTargets[l].Reset()
		}
		if six := e.SupportsFor(l); six != nil {
			six.Reset()
		}
	}
}

// staleByAppend reports whether this batch's memo stores are unsafe
// because an append landed after the pre-sampling snapshot — aseq is
// the append sequence and wm the stream clock captured then — while
// the batch embedded timestamps beyond the watermark (only future-time
// rows can have sampled a window the append lands in). The guard
// compares the append sequence, not MaxTime: an append at exactly the
// current stream clock changes adjacency without advancing MaxTime (or
// the mutation epoch), and equal timestamps are common in
// coarse-grained event streams. Any append accepted after the snapshot
// carries a time >= wm, so rows at t' > wm conservatively cover every
// window it could displace.
func (e *Engine) staleByAppend(missTs []float64, wm float64, aseq int64) bool {
	if e.dyn == nil || e.dyn.Appends() == aseq {
		return false
	}
	for _, mt := range missTs {
		if mt > wm {
			return true
		}
	}
	return false
}

// CacheStats aggregates the per-layer cache counters (hot-tier
// hit/miss, spill, promote, admission; see CacheStats). Zero when the
// cache is disabled.
func (e *Engine) CacheStats() CacheStats {
	var agg CacheStats
	for _, c := range e.caches {
		if c != nil {
			agg.Add(c.Stats())
		}
	}
	return agg
}

// LayerCacheStats is one cached layer's slice of the cache counters,
// plus its resident footprint — the per-layer breakdown behind the
// serving plane's cache_layers stats section and the
// tgopt_cache_layer_* metrics.
type LayerCacheStats struct {
	Layer int   `json:"layer"`
	Items int   `json:"items"`
	Bytes int64 `json:"bytes"`
	CacheStats
}

// LayerCacheStats returns the per-layer cache counters in layer order.
// Nil when the cache is disabled.
func (e *Engine) LayerCacheStats() []LayerCacheStats {
	var out []LayerCacheStats
	for l, c := range e.caches {
		if c == nil {
			continue
		}
		out = append(out, LayerCacheStats{
			Layer:      l,
			Items:      c.Len(),
			Bytes:      c.UsedBytes(),
			CacheStats: c.Stats(),
		})
	}
	return out
}

// Close stops the caches' promotion workers and seals their spill
// tiers so spilled entries survive a restart. Engines without a spill
// tier need not be closed; Close is then a no-op.
func (e *Engine) Close() error {
	var first error
	for _, c := range e.caches {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// EmbedFunc adapts the engine to the inference driver's signature.
func (e *Engine) EmbedFunc() tgat.EmbedFunc { return e.Embed }

// EmbedArenaFunc adapts the engine to the arena-aware driver signature
// — the zero-allocation steady-state path.
func (e *Engine) EmbedArenaFunc() tgat.EmbedArenaFunc { return e.EmbedWith }

// Embed computes top-layer temporal embeddings for the given targets —
// the paper's Algorithm 1. The result is an ordinary heap tensor owned
// by the caller; hot loops should prefer EmbedWith, which skips the
// final defensive copy.
func (e *Engine) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	ar := tensor.GetArena()
	h := e.EmbedWith(ar, nodes, ts).Clone()
	tensor.PutArena(ar)
	return h
}

// EmbedWith is Embed with every intermediate and the result drawn from
// ar (heap when ar is nil): the returned tensor is invalidated by
// ar.Reset. After a warmup batch has grown the arena's slots, a
// steady-state batch of the same shape performs zero heap allocations
// end to end (see DESIGN.md §9). Concurrent callers need distinct
// arenas; the engine itself stays safe for concurrent use.
func (e *Engine) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	if len(nodes) != len(ts) {
		panic("core: Embed nodes/ts length mismatch")
	}
	// The whole pass runs under the swap barrier's read side: a
	// parameter hot-swap (SwapLock) drains in-flight passes and blocks
	// new ones, so no pass ever mixes tensors from two versions or
	// stores a memo under the wrong version stamp.
	e.swapGate.RLock()
	defer e.swapGate.RUnlock()
	if e.caches != nil {
		e.noteEmbedTimes(ts)
	}
	return e.embed(ar, e.model.Cfg.Layers, nodes, ts)
}

// noteEmbedTimes advances the monotonic bound on embedded query
// timestamps (see InvalidateAppend). One scan and at most a few CAS
// attempts per batch.
func (e *Engine) noteEmbedTimes(ts []float64) {
	mx := math.Inf(-1)
	for _, t := range ts {
		if t > mx {
			mx = t
		}
	}
	for {
		old := e.maxEmbedBits.Load()
		if math.Float64frombits(old) >= mx {
			return
		}
		if e.maxEmbedBits.CompareAndSwap(old, math.Float64bits(mx)) {
			return
		}
	}
}

// observe records an operation that started at `start`: wall time into
// the stage's latency histogram (stage "" skips that; the histograms
// stay on even without a Collector so a serving deployment always has
// per-stage visibility), and the device-model-converted duration into
// the Collector. It replaces a closure-returning predecessor (timeOp)
// whose per-call closure was measurable garbage on the embed hot path.
func (e *Engine) observe(op, stage string, kind device.OpKind, launches int, start time.Time) {
	h := e.stages[stage]
	if h == nil && e.opt.Collector == nil && e.opt.Device == nil {
		return
	}
	wall := time.Since(start)
	h.Observe(wall)
	if e.opt.Collector != nil || e.opt.Device != nil {
		e.opt.Collector.Add(op, e.opt.Device.OpTime(kind, wall, launches))
	}
}

// chargeTransfer charges a simulated data movement against op.
func (e *Engine) chargeTransfer(op string, dir device.Direction, bytes int64, calls int) {
	if e.opt.Device == nil || bytes == 0 {
		return
	}
	e.opt.Collector.Add(op, e.opt.Device.TransferTime(dir, bytes, calls))
}

func (e *Engine) embed(ar *tensor.Arena, l int, nodes []int32, ts []float64) *tensor.Tensor {
	cfg := e.model.Cfg
	d := cfg.NodeDim
	if l == 0 {
		start := time.Now()
		h := gatherRows32(ar, e.model.NodeFeat, nodes)
		e.observe(stats.OpFeatLookup, "", device.HostOp, 0, start)
		e.chargeTransfer(stats.OpFeatLookup, device.HtoD, int64(len(nodes)*d*4), 1)
		return h
	}

	// §4.1 — deduplicate targets. Applied for l > 0 only, as in the
	// paper: layer 0 is a pure gather, so deduplicating it buys nothing.
	var inv []int32
	if e.opt.EnableDedup {
		start := time.Now()
		res := DedupFilterWith(ar, nodes, ts)
		e.observe(stats.OpDedupFilter, StageDedup, device.HostOp, 0, start)
		nodes, ts, inv = res.Nodes, res.Times, res.InvIdx
	}

	n := len(nodes)
	// Miss rows are either filled below or never read (nhits == 0 hands
	// the miss tensor back directly), so uninitialized scratch is safe.
	h := ar.Tensor(n, d)

	// §4.2 — look up memoized embeddings.
	cache := e.CacheFor(l)
	var keys []uint64
	var hitMask []bool
	nhits := 0
	if cache != nil {
		start := time.Now()
		keys = ar.Uint64s(n)
		ComputeKeysInto(keys, nodes, ts)
		e.observe(stats.OpComputeKeys, StageCacheLookup, device.HostOp, 0, start)
		start = time.Now()
		hitMask = ar.Bools(n)
		nhits = cache.LookupInto(keys, h, hitMask)
		e.observe(stats.OpCacheLookup, StageCacheLookup, device.HostOp, 0, start)
		if e.opt.CacheOnDevice {
			// Device-resident cache: every hit is a small on-device copy.
			e.chargeTransfer(stats.OpCacheLookup, device.DtoD, int64(nhits*d*4), nhits)
		} else {
			// Host-resident cache: assemble on host, ship once (§4.2.2).
			e.chargeTransfer(stats.OpCacheLookup, device.HtoD, int64(n*d*4), 1)
		}
		e.opt.HitRate.Record(nhits, n)
		e.opt.Collector.Count("cache_hits", int64(nhits))
		e.opt.Collector.Count("cache_lookups", int64(n))
	}

	if nhits < n {
		// Shrink to the misses (line 10 of Algorithm 1).
		missNodes, missTs := nodes, ts
		var missPos []int32
		var missKeys []uint64
		if nhits > 0 {
			nm := n - nhits
			missNodes = ar.Int32s(nm)
			missTs = ar.Float64s(nm)
			missPos = ar.Int32s(nm)
			if keys != nil {
				missKeys = ar.Uint64s(nm)
			}
			w := 0
			for i := 0; i < n; i++ {
				if hitMask[i] {
					continue
				}
				missNodes[w] = nodes[i]
				missTs[w] = ts[i]
				missPos[w] = int32(i)
				if keys != nil {
					missKeys[w] = keys[i]
				}
				w++
			}
		} else if keys != nil {
			missKeys = keys
		}
		nm := len(missNodes)
		k := cfg.NumNeighbors

		// Snapshot the history-rewrite epoch before sampling: if a late
		// insert or deletion lands while this batch computes, the
		// sampled neighborhoods may predate it and must not be memoized
		// (the store below would resurrect just-invalidated state).
		// The append sequence plus time watermark close the same race
		// for chronological appends, which do not bump the epoch: a
		// batch embedding *future* timestamps (t' beyond the watermark)
		// that raced an append may have sampled pre-append windows, and
		// InvalidateAppend's scan can run before the entries are
		// indexed — so those stores are skipped or rolled back too. The
		// sequence (not MaxTime) detects the append, since an append at
		// exactly the stream clock leaves MaxTime unchanged.
		var epoch, aseq int64
		var wm float64
		if cache != nil && e.dyn != nil {
			epoch = e.dyn.Mutations()
			aseq = e.dyn.Appends()
			wm = e.dyn.MaxTime()
		}

		start := time.Now()
		b := graph.Batch{
			K:     k,
			Nghs:  ar.Int32s(nm * k),
			EIdxs: ar.Int32s(nm * k),
			Times: ar.Float64s(nm * k),
			Valid: ar.Bools(nm * k),
		}
		e.sampler.SampleTo(&b, missNodes, missTs)
		e.observe(stats.OpNghLookup, StageSample, device.HostOp, 0, start)

		// Recurse over targets ∪ neighbors (line 12).
		allNodes := ar.Int32s(nm + nm*k)
		allTs := ar.Float64s(nm + nm*k)
		copy(allNodes, missNodes)
		copy(allTs, missTs)
		copy(allNodes[nm:], b.Nghs)
		copy(allTs[nm:], b.Times)
		hAll := e.embed(ar, l-1, allNodes, allTs)
		hTgt := ar.Wrap(hAll.Data()[:nm*d], nm, d)
		hNgh := ar.Wrap(hAll.Data()[nm*d:], nm*k, d)

		tEnc0 := e.encodeZeros(ar, nm)
		tEncD := e.encodeDeltas(ar, missTs, &b, nm, k)

		start = time.Now()
		eFeat := gatherRows32(ar, e.model.EdgeFeat, b.EIdxs)
		e.observe(stats.OpFeatLookup, "", device.HostOp, 0, start)
		e.chargeTransfer(stats.OpFeatLookup, device.HtoD, int64(nm*k*cfg.EdgeDim*4), 1)

		start = time.Now()
		var hm *tensor.Tensor
		if e.qmodel != nil {
			hm = e.qmodel.LayerForwardWith(ar, l, hTgt, hNgh, eFeat, tEnc0, tEncD, b.Valid)
		} else {
			hm = e.model.LayerForwardWith(ar, l, hTgt, hNgh, eFeat, tEnc0, tEncD, b.Valid)
		}
		e.observe(stats.OpAttention, StageAttention, device.TensorOp, 8, start)

		if cache != nil && e.dyn != nil &&
			(e.dyn.Mutations() != epoch || e.staleByAppend(missTs, wm, aseq)) {
			// A history rewrite (or an append racing a future-time
			// batch) landed while this batch computed: the results may
			// be built on pre-rewrite neighborhoods. Recompute-next-time
			// is cheap, a stale memo would be permanent, so skip
			// memoizing the whole batch.
			e.staleSkips.Add(1)
		} else if cache != nil {
			if e.deps != nil {
				// Dependency tracking is an opt-in diagnostic; its
				// per-target slices stay on the heap deliberately.
				for i := 0; i < nm; i++ {
					depNodes := make([]int32, 0, k+1)
					depNodes = append(depNodes, missNodes[i])
					depNodes = append(depNodes, b.Nghs[i*k:(i+1)*k]...)
					e.deps.Record(missKeys[i], depNodes, b.EIdxs[i*k:(i+1)*k])
				}
			}
			start = time.Now()
			cache.Store(missKeys, hm)
			e.observe(stats.OpCacheStore, StageCacheStore, device.HostOp, 0, start)
			if e.layerTargets != nil {
				// Index per-target, and — for deep layers — per
				// support: the (node, time) pairs whose layer-(l−1)
				// embeddings this entry aggregated, read straight off
				// the sampled batch (padding slots carry node 0).
				// Recording only runs on the miss path, so the all-hit
				// steady state stays allocation-free.
				if tix := e.layerTargets[l]; tix != nil {
					for i := 0; i < nm; i++ {
						tix.Record(missNodes[i], missKeys[i], missTs[i])
					}
				}
				if six := e.layerSupports[l]; six != nil {
					for i := 0; i < nm; i++ {
						base := i * k
						for j := 0; j < k; j++ {
							six.Record(b.Nghs[base+j], missKeys[i], b.Times[base+j])
						}
					}
				}
			}
			if e.dyn != nil && (e.dyn.Mutations() != epoch || e.staleByAppend(missTs, wm, aseq)) {
				// A rewrite (or a watermark-crossing append) raced the
				// store itself. Its invalidation scan may have run
				// before our entries were indexed, so roll the whole
				// batch back: once the entries are both stored and
				// indexed (checked-epoch and watermark unchanged), any
				// later rewrite is guaranteed to see them.
				cache.Remove(missKeys)
				e.staleSkips.Add(1)
			}
			if e.opt.CacheOnDevice {
				e.chargeTransfer(stats.OpCacheStore, device.DtoD, int64(nm*d*4), nm)
			} else {
				e.chargeTransfer(stats.OpCacheStore, device.DtoH, int64(nm*d*4), 1)
			}
		}

		// Copy miss results into the output (line 18).
		if missPos == nil {
			h = hm
		} else {
			dst := h.Data()
			src := hm.Data()
			for j, p := range missPos {
				copy(dst[int(p)*d:(int(p)+1)*d], src[j*d:(j+1)*d])
			}
		}
	}

	// §4.1 — restore the original batch shape (line 20).
	if inv != nil {
		start := time.Now()
		h = DedupInvertWith(ar, h, inv)
		e.observe(stats.OpDedupInvert, StageDedup, device.HostOp, 0, start)
	}
	return h
}

// encodeZeros produces Φ(0) rows for n targets, from the precomputed
// table when enabled (§3.3: the zero encoding never changes at
// inference time).
func (e *Engine) encodeZeros(ar *tensor.Arena, n int) *tensor.Tensor {
	d := e.model.Cfg.TimeDim
	out := ar.Tensor(n, d)
	if e.ttable != nil {
		start := time.Now()
		e.ttable.EncodeZerosInto(n, out)
		e.observe(stats.OpTimeEncZero, StageTimeEncode, device.HostOp, 0, start)
		// Device run: the Φ(0) row is already resident; replicating it is
		// an on-device broadcast.
		e.chargeTransfer(stats.OpTimeEncZero, device.DtoD, int64(n*d*4), 1)
		return out
	}
	start := time.Now()
	zeros := ar.Float64s(n)
	clear(zeros) // arena scratch is dirty; the encoder reads it
	e.model.Time.EncodeInto(zeros, out)
	e.observe(stats.OpTimeEncZero, StageTimeEncode, device.TensorOp, 2, start)
	// Baseline on device: materialize the zero-delta tensor host-side
	// and ship it, then encode (the intermediate-tensor cost the paper
	// measures for TimeEncode(0) on GPU).
	e.chargeTransfer(stats.OpTimeEncZero, device.HtoD, int64(n*8+n*d*4), 2)
	return out
}

// encodeDeltas produces Φ(t − t_j) for every neighbor slot.
func (e *Engine) encodeDeltas(ar *tensor.Arena, ts []float64, b *graph.Batch, n, k int) *tensor.Tensor {
	d := e.model.Cfg.TimeDim
	deltas := ar.Float64s(n * k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			deltas[i*k+j] = ts[i] - b.Times[i*k+j]
		}
	}
	out := ar.Tensor(n*k, d)
	if e.ttable != nil {
		start := time.Now()
		hits := e.ttable.EncodeIntoWith(ar, deltas, out)
		e.observe(stats.OpTimeEncDelta, StageTimeEncode, device.HostOp, 0, start)
		e.opt.Collector.Count("ttable_hits", int64(hits))
		e.opt.Collector.Count("ttable_lookups", int64(len(deltas)))
		// Table rows are gathered host-side and shipped to the device —
		// the per-batch overhead behind the paper's observed GPU
		// regression for this optimization.
		e.chargeTransfer(stats.OpTimeEncDelta, device.HtoD, int64(n*k*d*4), 1)
		return out
	}
	start := time.Now()
	e.model.Time.EncodeInto(deltas, out)
	e.observe(stats.OpTimeEncDelta, StageTimeEncode, device.TensorOp, 2, start)
	e.chargeTransfer(stats.OpTimeEncDelta, device.HtoD, int64(n*k*8), 1)
	return out
}

// gatherRows32 copies rows of t selected by 32-bit indices into an
// arena tensor (heap when ar is nil).
func gatherRows32(ar *tensor.Arena, t *tensor.Tensor, idx []int32) *tensor.Tensor {
	w := t.Dim(1)
	rows := t.Dim(0)
	out := ar.Tensor(len(idx), w)
	src := t.Data()
	dst := out.Data()
	for i, r := range idx {
		// Edges ingested after the feature table was built have ids past
		// its last row; they carry no features, so fall back to the
		// all-zero padding row instead of reading out of bounds.
		if int(r) >= rows || r < 0 {
			r = 0
		}
		copy(dst[i*w:(i+1)*w], src[int(r)*w:(int(r)+1)*w])
	}
	return out
}
