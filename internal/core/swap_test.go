package core

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tgopt/internal/checkpoint"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// swapTestModel builds the small deterministic fixture; seed varies the
// parameter init over identical feature tables, so two seeds model two
// published versions of the same architecture.
func swapTestModel(t *testing.T, seed uint64) *tgat.Model {
	t.Helper()
	const nodes, maxEdges, d = 24, 4096, 16
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, nodes+1, d)
	edgeFeat := tensor.Randn(r, maxEdges+1, d)
	for j := 0; j < d; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 4, Seed: seed}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func swapTestDyn(t *testing.T, n int) *graph.Dynamic {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	dyn := graph.NewDynamic(24)
	for i := 0; i < n; i++ {
		e := graph.Edge{
			Src:  int32(1 + rng.Intn(23)),
			Dst:  int32(1 + rng.Intn(23)),
			Time: float64(10 * (i + 1)),
		}
		if _, _, err := dyn.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	return dyn
}

func swapTestEngine(t *testing.T, m *tgat.Model, opt Options) *Engine {
	t.Helper()
	dyn := swapTestDyn(t, 60)
	sampler := graph.NewDynamicSampler(dyn, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	eng := NewEngine(m, sampler, opt)
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestEngineSwapBitwiseEquivalence pins the hot-swap contract on one
// engine: after SwapParams, rows are bitwise-identical to a fresh
// engine built directly on the new parameters — no stale memo (hot or
// spill), no stale packed weights, no stale precomputed time table
// survives the swap. Exercised at both serving precisions because int8
// re-derives the most state (packed kernels + quantized time table).
func TestEngineSwapBitwiseEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		quant QuantMode
	}{{"float32", QuantOff}, {"int8", QuantInt8}} {
		t.Run(tc.name, func(t *testing.T) {
			opt := OptAll()
			opt.TimeWindow = 10_000
			opt.Quant = tc.quant

			mA := swapTestModel(t, 2)
			eng := swapTestEngine(t, mA, opt)

			nodes := []int32{1, 5, 3, 1, 9, 12}
			ts := []float64{1000, 1000, 1000, 900, 1000, 1000}
			eng.Embed(nodes, ts) // warm the memo cache under version 0
			eng.Embed(nodes, ts)
			if eng.CacheLen() == 0 {
				t.Fatal("cache did not warm")
			}
			if eng.ParamsVersion() != 0 {
				t.Fatalf("boot version %d", eng.ParamsVersion())
			}

			// Publish version-B params through a checkpoint file, the way
			// the serving loop does.
			dir := t.TempDir()
			path := filepath.Join(dir, "params.tgp")
			if err := swapTestModel(t, 9).SaveParamsFS(checkpoint.OS{}, path); err != nil {
				t.Fatal(err)
			}
			sp, err := mA.ParseParamsFS(checkpoint.OS{}, path)
			if err != nil {
				t.Fatal(err)
			}
			eng.SwapParams(1, func() { mA.ApplyParams(sp) })
			if eng.ParamsVersion() != 1 {
				t.Fatalf("version after swap: %d", eng.ParamsVersion())
			}

			got := eng.Embed(nodes, ts)
			ref := swapTestEngine(t, swapTestModel(t, 9), opt)
			want := ref.Embed(nodes, ts)
			for i := range nodes {
				for j := 0; j < mA.Cfg.NodeDim; j++ {
					if got.At(i, j) != want.At(i, j) {
						t.Fatalf("row %d col %d: swapped %v vs fresh %v", i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		})
	}
}

// TestSpillRecoveryRejectsOtherVersion pins the durable half of swap
// invalidation: spill segments written under model version 0 must read
// as corrupt (dropped whole) when the engine comes back serving
// version 1 — an on-disk embedding computed by old weights is as wrong
// as a bit flip.
func TestSpillRecoveryRejectsOtherVersion(t *testing.T) {
	const dim = 4
	vec := []float32{1, 2, 3, 4}

	// Same version across restart: entries survive.
	dirSame := t.TempDir()
	sp, err := NewSpillStoreVersioned(checkpoint.OS{}, dirSame, dim, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		sp.Put(k, vec)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewSpillStoreVersioned(checkpoint.OS{}, dirSame, dim, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 10 {
		t.Fatalf("same-version recovery: %d of 10 entries", re.Len())
	}
	re.Close()

	// Version advanced across restart: every old segment is discarded.
	dirSwap := t.TempDir()
	sp, err = NewSpillStoreVersioned(checkpoint.OS{}, dirSwap, dim, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		sp.Put(k, vec)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	re, err = NewSpillStoreVersioned(checkpoint.OS{}, dirSwap, dim, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("v1 recovery served %d v0 entries", re.Len())
	}
	if re.Stats().CorruptSegments == 0 {
		t.Fatal("version mismatch not surfaced as corrupt segments")
	}
	var buf [dim]float32
	if re.Get(1, buf[:]) {
		t.Fatal("old-version record served after recovery")
	}
}

// TestCacheSnapshotVersionStamp pins the snapshot side: a cache
// snapshot is valid only for the params version that computed its
// entries, and loading it into an engine serving any other version is
// refused (cold start, never silent staleness).
func TestCacheSnapshotVersionStamp(t *testing.T) {
	opt := OptAll()
	opt.ModelVersion = 3
	m := swapTestModel(t, 2)
	eng := swapTestEngine(t, m, opt)
	nodes := []int32{1, 5, 3}
	ts := []float64{1000, 1000, 1000}
	eng.Embed(nodes, ts)
	if eng.CacheLen() == 0 {
		t.Fatal("cache did not warm")
	}
	path := filepath.Join(t.TempDir(), "caches.tgc")
	if err := eng.SaveCachesFS(checkpoint.OS{}, path); err != nil {
		t.Fatal(err)
	}

	same := swapTestEngine(t, swapTestModel(t, 2), opt)
	if err := same.LoadCachesFS(checkpoint.OS{}, path); err != nil {
		t.Fatal(err)
	}
	if same.CacheLen() == 0 {
		t.Fatal("same-version snapshot loaded no entries")
	}

	optOther := opt
	optOther.ModelVersion = 4
	other := swapTestEngine(t, swapTestModel(t, 2), optOther)
	err := other.LoadCachesFS(checkpoint.OS{}, path)
	if err == nil {
		t.Fatal("v3 snapshot accepted by a v4 engine")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("unexpected error: %v", err)
	}
	if other.CacheLen() != 0 {
		t.Fatalf("refused load still populated %d entries", other.CacheLen())
	}
}
