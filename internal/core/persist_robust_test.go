package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tgopt/internal/faultfs"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// legacyV1Blob builds a pre-envelope cache blob: global-count header,
// as the v1 writer produced it.
func legacyV1Blob(dim int, keys []uint64, vals [][]float32) []byte {
	var buf bytes.Buffer
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	put32(cacheMagicV1)
	put32(uint32(dim))
	put32(uint32(len(keys)))
	rec := make([]byte, 8+4*dim)
	for i, k := range keys {
		binary.LittleEndian.PutUint64(rec, k)
		for j, f := range vals[i] {
			binary.LittleEndian.PutUint32(rec[8+4*j:], math.Float32bits(f))
		}
		buf.Write(rec)
	}
	return buf.Bytes()
}

// TestCacheWriteToConcurrentStores exercises the snapshot count race
// the v1 format had: the header count was taken before the per-shard
// iteration, so stores and evictions racing with WriteTo could make
// the header disagree with the entries written, and the snapshot
// failed (or silently truncated) on load. The v2 per-shard sections
// count entries as they are serialized under the shard lock, so every
// snapshot taken mid-churn must load cleanly.
func TestCacheWriteToConcurrentStores(t *testing.T) {
	c := NewCache(256, 4, 8)
	r := tensor.NewRNG(3)
	seedKeys := make([]uint64, 128)
	for i := range seedKeys {
		seedKeys[i] = r.Uint64()
	}
	c.Store(seedKeys, tensor.Rand(r, len(seedKeys), 4))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rg := tensor.NewRNG(seed)
			row := tensor.New(1, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Churn: new keys force evictions, old keys refresh.
				key := rg.Uint64() % 512
				c.Store([]uint64{key}, row)
			}
		}(uint64(g + 10))
	}
	for iter := 0; iter < 50; iter++ {
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatalf("iter %d: WriteTo: %v", iter, err)
		}
		fresh := NewCache(256, 4, 8)
		if _, err := fresh.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("iter %d: snapshot taken mid-churn does not load: %v", iter, err)
		}
		if fresh.Len() > fresh.Limit() {
			t.Fatalf("iter %d: restored %d entries over limit %d", iter, fresh.Len(), fresh.Limit())
		}
	}
	close(stop)
	wg.Wait()
}

func TestCacheReadFromAllOrNothing(t *testing.T) {
	good := NewCache(100, 3, 4)
	r := tensor.NewRNG(4)
	keys := make([]uint64, 30)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	good.Store(keys, tensor.Rand(r, 30, 3))
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	orig := tensor.Ones(1, 3)
	for cut := 0; cut < len(blob); cut++ {
		c := NewCache(100, 3, 4)
		c.Store([]uint64{7}, orig)
		_, err := c.ReadFrom(bytes.NewReader(blob[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		// The failed load must not have half-applied: the cache holds
		// exactly its prior single entry.
		if c.Len() != 1 || !c.Contains(7) {
			t.Fatalf("truncation at %d half-applied: len=%d", cut, c.Len())
		}
	}
}

func TestCacheReadFromLegacyV1Blob(t *testing.T) {
	keys := []uint64{11, 22, 33}
	vals := [][]float32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	blob := legacyV1Blob(3, keys, vals)
	c := NewCache(10, 3, 2)
	if _, err := c.ReadFrom(bytes.NewReader(blob)); err != nil {
		t.Fatalf("legacy v1 blob rejected: %v", err)
	}
	dst := tensor.New(3, 3)
	if _, nh := c.Lookup(keys, dst); nh != 3 {
		t.Fatalf("restored %d/3 legacy entries", nh)
	}
	for i := range keys {
		for j, want := range vals[i] {
			if dst.At(i, j) != want {
				t.Fatalf("entry %d col %d = %v, want %v", i, j, dst.At(i, j), want)
			}
		}
	}
}

// TestSaveCachesAtomicUnderWriteFaults proves the engine-level
// invariant: whatever fault the file system injects during a snapshot
// — a short write at any offset, a failed create, fsync, or rename —
// the previous on-disk snapshot remains fully loadable.
func TestSaveCachesAtomicUnderWriteFaults(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	eng := NewEngine(m, s, OptAll())
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	warmLen := eng.CacheLen()
	if warmLen == 0 {
		t.Fatal("no warm state to persist")
	}
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := eng.SaveCaches(path); err != nil {
		t.Fatal(err)
	}
	size, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	checkPrevIntact := func(when string, saveErr error) {
		t.Helper()
		if saveErr == nil {
			t.Fatalf("%s: fault not reported", when)
		}
		eng2 := NewEngine(m, s, OptAll())
		if err := eng2.LoadCaches(path); err != nil {
			t.Fatalf("%s: previous snapshot damaged: %v", when, err)
		}
		if eng2.CacheLen() != warmLen {
			t.Fatalf("%s: previous snapshot lost entries: %d, want %d", when, eng2.CacheLen(), warmLen)
		}
	}

	// Short writes: every boundary of the small header region, then a
	// stride through the body (a full per-byte sweep would re-serialize
	// the cache thousands of times for no extra coverage).
	limits := []int{0, 1, 4, 15, 16, 17, 20}
	for l := 64; l < int(size.Size()); l += 997 {
		limits = append(limits, l)
	}
	limits = append(limits, int(size.Size())-1)
	for _, limit := range limits {
		fsys := faultfs.NewFS()
		fsys.WriteLimit = limit
		checkPrevIntact("short write", eng.SaveCachesFS(fsys, path))
	}
	checkPrevIntact("create", eng.SaveCachesFS(&faultfs.FS{WriteLimit: -1, FailCreate: true}, path))
	checkPrevIntact("sync", eng.SaveCachesFS(&faultfs.FS{WriteLimit: -1, FailSync: true}, path))
	checkPrevIntact("rename", eng.SaveCachesFS(&faultfs.FS{WriteLimit: -1, FailRename: true}, path))
}

// TestLoadCachesCorruptLeavesEngineCold: at-rest corruption (bit flips
// and truncations anywhere in the file) must surface as a clean error
// with zero entries applied — the degraded-but-consistent cold start
// tgopt-serve relies on.
func TestLoadCachesCorruptLeavesEngineCold(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	eng := NewEngine(m, s, OptAll())
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.bin")
	if err := eng.SaveCaches(path); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []int64{0, 13, 35, 64 * 8}
	for bit := int64(1000); bit < int64(len(clean))*8; bit += 7919 {
		corruptions = append(corruptions, bit)
	}
	corruptions = append(corruptions, int64(len(clean))*8-1)
	for _, bit := range corruptions {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		cold := NewEngine(m, s, OptAll())
		if err := cold.LoadCaches(path); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
		if n := cold.CacheLen(); n != 0 {
			t.Fatalf("bit flip at %d half-applied %d entries", bit, n)
		}
	}
	for _, cut := range []int64{0, 3, 16, 19, int64(len(clean) / 2), int64(len(clean)) - 1} {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.TruncateFile(path, cut); err != nil {
			t.Fatal(err)
		}
		cold := NewEngine(m, s, OptAll())
		if err := cold.LoadCaches(path); err == nil {
			t.Fatalf("truncation to %d went undetected", cut)
		}
		if n := cold.CacheLen(); n != 0 {
			t.Fatalf("truncation to %d half-applied %d entries", cut, n)
		}
	}
}

// TestLoadCachesLegacyFile: snapshot files written before the envelope
// (raw layer stream with v1 blobs) must keep loading.
func TestLoadCachesLegacyFile(t *testing.T) {
	ds, m, s := engineTestSetup(t, 300)
	_ = ds
	var buf bytes.Buffer
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	put32(1) // one cached layer
	put32(1) // layer 1
	keys := []uint64{5, 6}
	vals := [][]float32{make([]float32, 16), make([]float32, 16)}
	vals[0][0], vals[1][0] = 1.5, 2.5
	buf.Write(legacyV1Blob(16, keys, vals))
	path := filepath.Join(t.TempDir(), "legacy.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(m, s, OptAll())
	if err := eng.LoadCaches(path); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if eng.CacheLen() != 2 {
		t.Fatalf("restored %d legacy entries, want 2", eng.CacheLen())
	}

	// A truncated legacy file (no checksum to catch it) must still be
	// all-or-nothing: parse fails, zero entries applied.
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()-5], 0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewEngine(m, s, OptAll())
	if err := cold.LoadCaches(path); err == nil {
		t.Fatal("truncated legacy snapshot accepted")
	}
	if cold.CacheLen() != 0 {
		t.Fatalf("truncated legacy snapshot half-applied %d entries", cold.CacheLen())
	}
}
