package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tgopt/internal/checkpoint"
)

// spillSegVersion is the payload format version of a spill segment
// inside the checkpoint envelope. Version 2 added the model-version
// word to the segment header; version-1 segments (no model stamp) are
// treated like any other unreadable segment and dropped at recovery.
const spillSegVersion = 2

// spillHdrSize is the segment payload header: the dim word (quant flag
// in bit 31) followed by the model version the records were computed
// under.
const spillHdrSize = 4 + 8

// spillSegPrefix/Suffix name segment files: seg-<id>.tgs.
const (
	spillSegPrefix = "seg-"
	spillSegSuffix = ".tgs"
)

// defaultSegTarget is the open-buffer payload size that triggers a
// seal (~1 MiB keeps segment count moderate while bounding the memory
// held by the unsealed tail).
const defaultSegTarget = 1 << 20

// spillRef locates one record: the segment holding it and the record's
// payload-relative byte offset (the on-disk offset adds the envelope
// header).
type spillRef struct {
	seg uint32
	off int64
}

// spillSeg is one sealed on-disk segment.
type spillSeg struct {
	id    uint32
	path  string
	bytes int64    // full file size including envelope
	keys  []uint64 // record keys in offset order (including superseded ones)
	live  int      // records still reachable through the index
}

// SpillStats is a point-in-time snapshot of the cold tier's counters.
type SpillStats struct {
	Entries         int   `json:"entries"`
	Segments        int   `json:"segments"`
	Bytes           int64 `json:"bytes"`
	Hits            int64 `json:"hits"`
	Puts            int64 `json:"puts"`
	SealErrors      int64 `json:"seal_errors"`
	CorruptRecords  int64 `json:"corrupt_records"`
	CorruptSegments int64 `json:"corrupt_segments"`
	DroppedSegments int64 `json:"dropped_segments"`
	Compactions     int64 `json:"compactions"`
}

// SpillStore is the cold tier of the two-tier memo cache: an
// append-only log of evicted ⟨key, embedding⟩ records in segment
// files under dir. Records accumulate in an in-memory open segment
// and are sealed to disk through checkpoint.WriteFS, so every sealed
// file carries the versioned envelope and whole-file CRC and lands
// atomically (tmp + fsync + rename + dir fsync). Each record also
// carries its own CRC32 so random-access reads of a sealed segment
// validate without re-reading the file — a bit-flipped record surfaces
// as a miss, never as a corrupt promotion.
//
// Layout of a segment payload:
//
//	dim      uint32 (bit 31 set when records are int8-quantized)
//	modelVer uint64 (model version the records were computed under)
//	records × (key uint64, payload [entryCodec], crc32 uint32)
//
// where each record's crc32 is IEEE over its key+payload bytes and the
// payload is the shared entry codec's format — float32 vectors, or
// scale-prefixed int8 codes in quant mode (~4× smaller records). A
// segment whose header flag, dim, or model version disagrees with the
// store is treated exactly like a corrupt one: deleted and counted, so
// a precision change across restarts — or a parameter hot-swap — costs
// the cold entries, never a wrong embedding.
//
// Overwritten and removed records stay in their segment as dead bytes
// until compaction folds the survivors back into the open buffer and
// deletes the file. When the byte budget is exceeded the oldest sealed
// segments are dropped whole — the cold tier is a cache, not a store
// of record, so losing its coldest entries is always safe.
type SpillStore struct {
	fsys      checkpoint.FS
	dir       string
	dim       int
	codec     entryCodec
	maxBytes  int64
	segTarget int
	modelVer  uint64 // stamped into segment headers; guarded by mu

	mu          sync.Mutex
	index       map[uint64]spillRef
	segs        map[uint32]*spillSeg
	order       []uint32 // sealed segment ids, oldest first
	open        []byte   // open segment payload (starts with the dim header)
	openKeys    []uint64
	openID      uint32
	nextID      uint32
	sealedBytes int64

	hits        atomic.Int64
	puts        atomic.Int64
	sealErrs    atomic.Int64
	corruptRecs atomic.Int64
	corruptSegs atomic.Int64
	droppedSegs atomic.Int64
	compactions atomic.Int64
}

// spillQuantFlag marks a segment's dim header word as holding
// int8-quantized records (dims are far below 2³¹, so the bit is free).
const spillQuantFlag = 1 << 31

// NewSpillStore opens (or creates) a float32 cold tier under dir,
// recovering every valid sealed segment already present. Segments that
// fail envelope validation — torn by a crash mid-seal that somehow
// bypassed the atomic rename, or bit-flipped at rest — are deleted and
// counted, never indexed. maxBytes <= 0 means unbounded.
func NewSpillStore(fsys checkpoint.FS, dir string, dim int, maxBytes int64) (*SpillStore, error) {
	return NewSpillStoreWith(fsys, dir, dim, maxBytes, false)
}

// NewSpillStoreWith is NewSpillStore with an explicit record precision:
// quant stores scale-prefixed int8 payloads instead of float32 vectors.
// Existing segments of the other precision are dropped during recovery
// (counted as corrupt), mirroring how any unreadable segment is a miss.
func NewSpillStoreWith(fsys checkpoint.FS, dir string, dim int, maxBytes int64, quant bool) (*SpillStore, error) {
	return NewSpillStoreVersioned(fsys, dir, dim, maxBytes, quant, 0)
}

// NewSpillStoreVersioned is NewSpillStoreWith with an explicit model
// version: segments written under a different model version — an
// earlier process generation, or the tier's own pre-swap output — are
// dropped during recovery exactly like corrupt ones, since spilled
// embeddings are only valid for the parameters that computed them.
func NewSpillStoreVersioned(fsys checkpoint.FS, dir string, dim int, maxBytes int64, quant bool, modelVer uint64) (*SpillStore, error) {
	if fsys == nil {
		fsys = checkpoint.OS{}
	}
	if dim < 1 {
		return nil, fmt.Errorf("core: spill dim must be >= 1, got %d", dim)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating spill dir: %w", err)
	}
	sp := &SpillStore{
		fsys:      fsys,
		dir:       dir,
		dim:       dim,
		codec:     entryCodec{dim: dim, quant: quant},
		maxBytes:  maxBytes,
		segTarget: defaultSegTarget,
		modelVer:  modelVer,
		index:     make(map[uint64]spillRef),
		segs:      make(map[uint32]*spillSeg),
	}
	if err := sp.recover(); err != nil {
		return nil, err
	}
	sp.openID = sp.nextID
	sp.nextID++
	sp.resetOpenLocked()
	return sp, nil
}

// resetOpenLocked starts a fresh open buffer holding only the segment
// header (dim word + model version).
func (sp *SpillStore) resetOpenLocked() {
	sp.open = sp.open[:0]
	var hdr [spillHdrSize]byte
	h := uint32(sp.dim)
	if sp.codec.quant {
		h |= spillQuantFlag
	}
	binary.LittleEndian.PutUint32(hdr[:4], h)
	binary.LittleEndian.PutUint64(hdr[4:], sp.modelVer)
	sp.open = append(sp.open, hdr[:]...)
	sp.openKeys = sp.openKeys[:0]
}

// recover scans dir for sealed segments and rebuilds the index. Later
// segments win duplicate keys (they were written later).
func (sp *SpillStore) recover() error {
	entries, err := sp.fsys.ReadDir(sp.dir)
	if err != nil {
		return fmt.Errorf("core: scanning spill dir: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, spillSegPrefix) || !strings.HasSuffix(name, spillSegSuffix) {
			continue
		}
		idStr := strings.TrimSuffix(strings.TrimPrefix(name, spillSegPrefix), spillSegSuffix)
		id, perr := strconv.ParseUint(idStr, 10, 32)
		if perr != nil {
			continue
		}
		ids = append(ids, uint32(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		path := sp.segPath(id)
		seg := &spillSeg{id: id, path: path}
		err := checkpoint.ReadFS(sp.fsys, path, func(version uint32, r io.Reader) error {
			return sp.decodeSegment(seg, version, r)
		})
		if err != nil {
			// Torn, bit-flipped, or wrong-format: delete and count. No
			// record of it reaches the index, so it can never be
			// promoted.
			sp.corruptSegs.Add(1)
			sp.fsys.Remove(path)
			continue
		}
		if fi, serr := sp.fsys.Stat(path); serr == nil {
			seg.bytes = fi.Size()
		}
		sp.segs[id] = seg
		sp.order = append(sp.order, id)
		sp.sealedBytes += seg.bytes
		if id >= sp.nextID {
			sp.nextID = id + 1
		}
	}
	// Live counts: a record is live iff the index still points at it.
	for _, id := range sp.order {
		seg := sp.segs[id]
		rec := sp.codec.recSize()
		for i, key := range seg.keys {
			if sp.index[key] == (spillRef{seg: id, off: spillHdrSize + int64(i)*rec}) {
				seg.live++
			}
		}
	}
	return nil
}

// decodeSegment parses a validated segment payload, indexing its
// records. Individual records with bad CRCs are skipped and counted
// (possible only if the envelope was rewritten around them, since the
// whole-file CRC already passed).
func (sp *SpillStore) decodeSegment(seg *spillSeg, version uint32, r io.Reader) error {
	if version != spillSegVersion {
		return fmt.Errorf("unsupported spill segment version %d", version)
	}
	var hdr [spillHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	h := binary.LittleEndian.Uint32(hdr[:4])
	if quant := h&spillQuantFlag != 0; quant != sp.codec.quant {
		return fmt.Errorf("spill segment quant=%v, store quant=%v", quant, sp.codec.quant)
	}
	if d := h &^ spillQuantFlag; int(d) != sp.dim {
		return fmt.Errorf("spill segment dim %d, cache dim %d", d, sp.dim)
	}
	if v := binary.LittleEndian.Uint64(hdr[4:]); v != sp.modelVer {
		return fmt.Errorf("spill segment model version %d, store version %d", v, sp.modelVer)
	}
	rec := sp.codec.recSize()
	buf := make([]byte, rec)
	off := int64(spillHdrSize)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		key := binary.LittleEndian.Uint64(buf)
		want := binary.LittleEndian.Uint32(buf[rec-4:])
		if crc32.ChecksumIEEE(buf[:rec-4]) != want {
			sp.corruptRecs.Add(1)
		} else {
			sp.index[key] = spillRef{seg: seg.id, off: off}
		}
		seg.keys = append(seg.keys, key)
		off += rec
	}
}

func (sp *SpillStore) segPath(id uint32) string {
	return filepath.Join(sp.dir, spillSegPrefix+strconv.FormatUint(uint64(id), 10)+spillSegSuffix)
}

// Put spills one entry. vec is copied into the open buffer; sealing
// happens inline once the buffer reaches the segment target.
func (sp *SpillStore) Put(key uint64, vec []float32) {
	if len(vec) != sp.dim {
		panic("core: spill Put dim mismatch")
	}
	sp.puts.Add(1)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.putLocked(key, vec)
	if len(sp.open) >= sp.segTarget {
		sp.sealLocked()
		sp.enforceBudgetLocked()
	}
}

// putLocked appends one record to the open buffer and points the index
// at it, superseding any older copy of the key. The vector is encoded
// through the entry codec directly into the buffer.
func (sp *SpillStore) putLocked(key uint64, vec []float32) {
	off := sp.beginRecordLocked(key)
	sp.open = sp.codec.appendTo(sp.open, vec)
	sp.finishRecordLocked(key, off)
}

// putPayload spills an already-encoded entry payload — the hot tier's
// eviction path, which hands over its stored bytes without a re-encode.
func (sp *SpillStore) putPayload(key uint64, payload []byte) {
	sp.puts.Add(1)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.putPayloadLocked(key, payload)
	if len(sp.open) >= sp.segTarget {
		sp.sealLocked()
		sp.enforceBudgetLocked()
	}
}

// putPayloadLocked is putLocked for pre-encoded payload bytes.
func (sp *SpillStore) putPayloadLocked(key uint64, payload []byte) {
	off := sp.beginRecordLocked(key)
	sp.open = append(sp.open, payload...)
	sp.finishRecordLocked(key, off)
}

// beginRecordLocked drops any superseded copy of key and appends the
// record's key prefix, returning the record's start offset.
func (sp *SpillStore) beginRecordLocked(key uint64) int64 {
	if old, ok := sp.index[key]; ok {
		sp.dropRefLocked(key, old)
	}
	off := int64(len(sp.open))
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], key)
	sp.open = append(sp.open, scratch[:]...)
	return off
}

// finishRecordLocked appends the record CRC and indexes the record.
func (sp *SpillStore) finishRecordLocked(key uint64, off int64) {
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], crc32.ChecksumIEEE(sp.open[off:]))
	sp.open = append(sp.open, scratch[:]...)
	sp.index[key] = spillRef{seg: sp.openID, off: off}
	sp.openKeys = append(sp.openKeys, key)
}

// dropRefLocked forgets one superseded or removed record, updating the
// owning segment's live count and compacting it when dead records
// dominate.
func (sp *SpillStore) dropRefLocked(key uint64, ref spillRef) {
	delete(sp.index, key)
	if ref.seg == sp.openID {
		return // dead bytes in the open buffer fold away at the next seal
	}
	if seg, ok := sp.segs[ref.seg]; ok {
		seg.live--
		if seg.live*2 < len(seg.keys) {
			sp.compactLocked(seg)
		}
	}
}

// sealLocked writes the open buffer to disk as a new segment. On write
// failure the buffered records are dropped from the index — the cold
// tier loses entries rather than ever indexing a file that is not
// fully durable.
func (sp *SpillStore) sealLocked() {
	if len(sp.openKeys) == 0 {
		sp.resetOpenLocked()
		return
	}
	id := sp.openID
	path := sp.segPath(id)
	payload := sp.open
	err := checkpoint.WriteFS(sp.fsys, path, spillSegVersion, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	rec := sp.codec.recSize()
	if err != nil {
		sp.sealErrs.Add(1)
		for i, key := range sp.openKeys {
			if sp.index[key] == (spillRef{seg: id, off: spillHdrSize + int64(i)*rec}) {
				delete(sp.index, key)
			}
		}
	} else {
		seg := &spillSeg{
			id:    id,
			path:  path,
			bytes: int64(len(payload)) + 20, // envelope header + trailer
			keys:  append([]uint64(nil), sp.openKeys...),
		}
		for i, key := range sp.openKeys {
			if sp.index[key] == (spillRef{seg: id, off: spillHdrSize + int64(i)*rec}) {
				seg.live++
			}
		}
		sp.segs[id] = seg
		sp.order = append(sp.order, id)
		sp.sealedBytes += seg.bytes
	}
	sp.openID = sp.nextID
	sp.nextID++
	sp.resetOpenLocked()
}

// enforceBudgetLocked drops whole sealed segments oldest-first until
// the on-disk footprint fits the byte budget.
func (sp *SpillStore) enforceBudgetLocked() {
	if sp.maxBytes <= 0 {
		return
	}
	for sp.sealedBytes > sp.maxBytes && len(sp.order) > 0 {
		sp.removeSegLocked(sp.segs[sp.order[0]])
		sp.droppedSegs.Add(1)
	}
}

// removeSegLocked unindexes and deletes one sealed segment.
func (sp *SpillStore) removeSegLocked(seg *spillSeg) {
	rec := sp.codec.recSize()
	for i, key := range seg.keys {
		if sp.index[key] == (spillRef{seg: seg.id, off: spillHdrSize + int64(i)*rec}) {
			delete(sp.index, key)
		}
	}
	delete(sp.segs, seg.id)
	for i, id := range sp.order {
		if id == seg.id {
			sp.order = append(sp.order[:i], sp.order[i+1:]...)
			break
		}
	}
	sp.sealedBytes -= seg.bytes
	sp.fsys.Remove(seg.path)
}

// compactLocked folds a mostly-dead segment's surviving records back
// into the open buffer and deletes the file.
func (sp *SpillStore) compactLocked(seg *spillSeg) {
	sp.compactions.Add(1)
	rec := sp.codec.recSize()
	// Collect survivors before removeSegLocked unindexes them.
	type rescued struct {
		key uint64
		off int64
	}
	var keep []rescued
	for i, key := range seg.keys {
		ref := spillRef{seg: seg.id, off: spillHdrSize + int64(i)*rec}
		if sp.index[key] == ref {
			keep = append(keep, rescued{key: key, off: ref.off})
		}
	}
	var payload []byte
	if len(keep) > 0 {
		err := checkpoint.ReadFS(sp.fsys, seg.path, func(version uint32, r io.Reader) error {
			var rerr error
			payload, rerr = io.ReadAll(r)
			return rerr
		})
		if err != nil {
			sp.corruptSegs.Add(1)
			payload = nil
		}
	}
	sp.removeSegLocked(seg)
	for _, k := range keep {
		if payload == nil || k.off+rec > int64(len(payload)) {
			continue
		}
		buf := payload[k.off : k.off+rec]
		if crc32.ChecksumIEEE(buf[:rec-4]) != binary.LittleEndian.Uint32(buf[rec-4:]) {
			sp.corruptRecs.Add(1)
			continue
		}
		sp.putPayloadLocked(k.key, buf[8:rec-4])
	}
}

// Get copies the spilled embedding for key into dst and reports
// whether it was found intact. Disk reads happen outside the store
// lock; the index is re-checked afterwards so a record superseded,
// compacted, or removed mid-read is returned as a miss, never as stale
// data. A record whose CRC fails is unindexed and counted — corrupt
// bytes never reach dst.
func (sp *SpillStore) Get(key uint64, dst []float32) bool {
	if len(dst) != sp.dim {
		panic("core: spill Get dim mismatch")
	}
	sp.mu.Lock()
	ref, ok := sp.index[key]
	if !ok {
		sp.mu.Unlock()
		return false
	}
	rec := sp.codec.recSize()
	if ref.seg == sp.openID {
		buf := sp.open[ref.off : ref.off+rec]
		sp.codec.decode(buf[8:rec-4], dst)
		sp.mu.Unlock()
		sp.hits.Add(1)
		return true
	}
	seg := sp.segs[ref.seg]
	path := seg.path
	sp.mu.Unlock()

	buf := make([]byte, rec)
	if !sp.readRecord(path, ref.off, buf) {
		sp.dropCorruptRef(key, ref)
		return false
	}
	if binary.LittleEndian.Uint64(buf) != key ||
		crc32.ChecksumIEEE(buf[:rec-4]) != binary.LittleEndian.Uint32(buf[rec-4:]) {
		sp.dropCorruptRef(key, ref)
		return false
	}

	sp.mu.Lock()
	still := sp.index[key] == ref
	sp.mu.Unlock()
	if !still {
		return false
	}
	sp.codec.decode(buf[8:rec-4], dst)
	sp.hits.Add(1)
	return true
}

// dropCorruptRef unindexes a record that failed validation, if the
// index still points at it.
func (sp *SpillStore) dropCorruptRef(key uint64, ref spillRef) {
	sp.corruptRecs.Add(1)
	sp.mu.Lock()
	if sp.index[key] == ref {
		sp.dropRefLocked(key, ref)
	}
	sp.mu.Unlock()
}

// readRecord reads one record at the given payload offset of a sealed
// segment (envelope header precedes the payload on disk).
func (sp *SpillStore) readRecord(path string, off int64, buf []byte) bool {
	f, err := sp.fsys.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	const envelopeHeader = 16
	if ra, ok := f.(io.ReaderAt); ok {
		_, err = ra.ReadAt(buf, envelopeHeader+off)
		return err == nil
	}
	if _, err := io.CopyN(io.Discard, f, envelopeHeader+off); err != nil {
		return false
	}
	_, err = io.ReadFull(f, buf)
	return err == nil
}

// Remove forgets key if spilled; it reports whether an entry was
// dropped.
func (sp *SpillStore) Remove(key uint64) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ref, ok := sp.index[key]
	if !ok {
		return false
	}
	sp.dropRefLocked(key, ref)
	return true
}

// Contains reports whether key is indexed in the cold tier.
func (sp *SpillStore) Contains(key uint64) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	_, ok := sp.index[key]
	return ok
}

// Keys returns every indexed key (no particular order).
func (sp *SpillStore) Keys() []uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]uint64, 0, len(sp.index))
	for key := range sp.index {
		out = append(out, key)
	}
	return out
}

// Len returns the number of indexed entries.
func (sp *SpillStore) Len() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.index)
}

// Clear drops every entry and deletes every segment file.
func (sp *SpillStore) Clear() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, id := range append([]uint32(nil), sp.order...) {
		sp.removeSegLocked(sp.segs[id])
	}
	sp.index = make(map[uint64]spillRef)
	sp.openID = sp.nextID
	sp.nextID++
	sp.resetOpenLocked()
}

// SetModelVersion stamps subsequently written segments with v. The
// open buffer — whose header already carries the old version — is
// sealed first so no record is ever filed under a version it was not
// computed for. Callers invalidating on a parameter swap should Clear
// first and then SetModelVersion, which leaves the tier empty and
// correctly stamped.
func (sp *SpillStore) SetModelVersion(v uint64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if v == sp.modelVer {
		return
	}
	if len(sp.openKeys) > 0 {
		sp.sealLocked()
		sp.enforceBudgetLocked()
	}
	sp.modelVer = v
	sp.resetOpenLocked()
}

// ModelVersion returns the version stamped into new segments.
func (sp *SpillStore) ModelVersion() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.modelVer
}

// Stats snapshots the cold tier's counters.
func (sp *SpillStore) Stats() SpillStats {
	sp.mu.Lock()
	entries := len(sp.index)
	segments := len(sp.order)
	bytes := sp.sealedBytes + int64(len(sp.open))
	sp.mu.Unlock()
	return SpillStats{
		Entries:         entries,
		Segments:        segments,
		Bytes:           bytes,
		Hits:            sp.hits.Load(),
		Puts:            sp.puts.Load(),
		SealErrors:      sp.sealErrs.Load(),
		CorruptRecords:  sp.corruptRecs.Load(),
		CorruptSegments: sp.corruptSegs.Load(),
		DroppedSegments: sp.droppedSegs.Load(),
		Compactions:     sp.compactions.Load(),
	}
}

// Close seals the open buffer so its records survive a restart.
func (sp *SpillStore) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.sealLocked()
	sp.enforceBudgetLocked()
	return nil
}
