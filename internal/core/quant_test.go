package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tgopt/internal/checkpoint"
	"tgopt/internal/faultfs"
	"tgopt/internal/nn"
	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// quantCache builds an int8 cache for tests.
func quantCache(limit, dim, shards int) *Cache {
	return NewCacheWith(CacheConfig{Limit: limit, Dim: dim, Shards: shards, Quant: true})
}

// TestQuantCacheRoundTrip: an int8 cache reconstructs stored rows
// within the per-vector quantization step (scale/2 per element, scale
// = maxabs/127), and reports the smaller per-entry footprint.
func TestQuantCacheRoundTrip(t *testing.T) {
	const dim = 16
	c := quantCache(100, dim, 4)
	r := tensor.NewRNG(3)
	keys := make([]uint64, 20)
	vals := tensor.Randn(r, 20, dim)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	c.Store(keys, vals)
	dst := tensor.New(20, dim)
	hits := make([]bool, 20)
	if nh := c.LookupInto(keys, dst, hits); nh != 20 {
		t.Fatalf("hits = %d, want 20", nh)
	}
	for i := 0; i < 20; i++ {
		var maxAbs float64
		for _, v := range vals.Row(i) {
			if a := float64(v); a > maxAbs {
				maxAbs = a
			} else if -a > maxAbs {
				maxAbs = -a
			}
		}
		tol := maxAbs/254 + 1e-6 // scale/2
		for j, v := range vals.Row(i) {
			got := float64(dst.At(i, j))
			if d := got - float64(v); d > tol || -d > tol {
				t.Fatalf("row %d dim %d: reconstruction error %g exceeds quant step %g", i, j, d, tol)
			}
		}
	}
	fc := NewCache(100, dim, 4)
	fc.Store(keys, vals)
	if c.UsedBytes() >= fc.UsedBytes() {
		t.Fatalf("int8 cache footprint %d not below float32 %d", c.UsedBytes(), fc.UsedBytes())
	}
}

// TestEntriesForBudgetQuant: the same byte budget holds more int8
// entries than float32 entries, by exactly the payload shrink.
func TestEntriesForBudgetQuant(t *testing.T) {
	const dim, budget = 32, 1 << 20
	f := EntriesForBudgetQuant(budget, dim, false)
	q := EntriesForBudgetQuant(budget, dim, true)
	if q <= f {
		t.Fatalf("int8 entries %d not above float32 %d at equal budget", q, f)
	}
	if f != EntriesForBudget(budget, dim) {
		t.Fatal("EntriesForBudget disagrees with EntriesForBudgetQuant(false)")
	}
	wantF := budget / (4*dim + cacheEntryOverhead)
	wantQ := budget / (4 + dim + cacheEntryOverhead)
	if f != wantF || q != wantQ {
		t.Fatalf("capacities (%d, %d), want (%d, %d)", f, q, wantF, wantQ)
	}
}

// TestQuantCacheLookupSteadyStateAllocs pins satellite 2 for the core
// layer: the int8 decode path of a warm lookup allocates nothing.
func TestQuantCacheLookupSteadyStateAllocs(t *testing.T) {
	old := parallel.Degree()
	parallel.SetDegree(1)
	defer parallel.SetDegree(old)

	const dim, n = 16, 64
	c := quantCache(2*n, dim, 4)
	r := tensor.NewRNG(5)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	c.Store(keys, tensor.Randn(r, n, dim))
	dst := tensor.New(n, dim)
	hits := make([]bool, n)
	run := func() {
		if c.LookupInto(keys, dst, hits) != n {
			t.Fatal("warm lookup missed")
		}
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("quant LookupInto allocated %v times/op in steady state, want 0", allocs)
	}
}

// TestQuantEngineSteadyStateAllocs extends the DESIGN.md §9 pin to the
// int8 configuration: warm EmbedWith + ScoreWith through the packed
// kernels and the quantized cache allocate nothing.
func TestQuantEngineSteadyStateAllocs(t *testing.T) {
	old := parallel.Degree()
	parallel.SetDegree(1)
	defer parallel.SetDegree(old)

	_, m, s := engineTestSetup(t, 500)
	opt := OptAll()
	opt.Quant = QuantInt8
	eng := NewEngine(m, s, opt)
	nodes := []int32{1, 2, 3, 1, 26, 30, 7, 12}
	ts := []float64{4e4, 4e4, 3e4, 4e4, 4.5e4, 2e4, 3.5e4, 4.2e4}
	ar := tensor.NewArena()
	nb := len(nodes) / 2
	run := func() {
		ar.Reset()
		h := eng.EmbedWith(ar, nodes, ts)
		d := h.Dim(1)
		hSrc := ar.Wrap(h.Data()[:nb*d], nb, d)
		hDst := ar.Wrap(h.Data()[nb*d:], nb, d)
		eng.ScoreWith(ar, hSrc, hDst)
	}
	for i := 0; i < 3; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("int8 EmbedWith allocated %v times/op in steady state, want 0", allocs)
	}
}

// TestQuantEngineCloseToBaseline: the int8 engine's embeddings track
// the float baseline within quantization error — the end-to-end
// correctness bound behind the quantacc harness.
func TestQuantEngineCloseToBaseline(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)
	base := tgat.StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	opt := OptAll()
	opt.Quant = QuantInt8
	eng := NewEngine(m, s, opt)
	got := tgat.StreamInferenceArenaScored(ds.Graph, m, 100, 1, eng.EmbedArenaFunc(), eng)
	var maxd float64
	for i := range base.Scores {
		d := base.Scores[i] - got.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	// Loose bound: int8 error compounds across two layers and the
	// affinity head; it must stay far from sign-flipping territory.
	if maxd > 0.25 {
		t.Fatalf("int8 stream logits diverge from baseline by %g", maxd)
	}
	if maxd == 0 {
		t.Fatal("int8 path produced bit-identical logits — quantization evidently not engaged")
	}
}

// TestQuantSnapshotRoundTrip pins satellite 3's positive half: an int8
// engine's caches survive save/load, and the restored engine serves
// from the warm entries at matching precision.
func TestQuantSnapshotRoundTrip(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)
	opt := OptAll()
	opt.Quant = QuantInt8
	eng := NewEngine(m, s, opt)
	tgat.StreamInferenceArenaScored(ds.Graph, m, 100, 1, eng.EmbedArenaFunc(), eng)
	warmLen := eng.CacheLen()
	if warmLen == 0 {
		t.Fatal("no warm state to persist")
	}
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := eng.SaveCaches(path); err != nil {
		t.Fatal(err)
	}

	eng2 := NewEngine(m, s, opt)
	if err := eng2.LoadCaches(path); err != nil {
		t.Fatal(err)
	}
	if eng2.CacheLen() != warmLen {
		t.Fatalf("restored %d entries, warm had %d", eng2.CacheLen(), warmLen)
	}
	nodes := []int32{1, 2, 3}
	ts := []float64{4e4, 4e4, 4.9e4}
	want := eng.Embed(nodes, ts)
	got := eng2.Embed(nodes, ts)
	if d := got.MaxAbsDiff(want); d > 1e-5 {
		t.Fatalf("warm-restored int8 embeddings differ by %g", d)
	}
}

// TestQuantSnapshotRefusedAcrossPrecisions pins satellite 3's refusal
// half: a float32 cache refuses an int8 snapshot (and vice versa) with
// an error that names the precision mismatch — loading across
// precisions would silently reinterpret payload bytes.
func TestQuantSnapshotRefusedAcrossPrecisions(t *testing.T) {
	const dim = 8
	r := tensor.NewRNG(7)
	keys := []uint64{1, 2, 3}
	vals := tensor.Randn(r, 3, dim)

	qc := quantCache(10, dim, 1)
	qc.Store(keys, vals)
	var qbuf bytes.Buffer
	if _, err := qc.WriteTo(&qbuf); err != nil {
		t.Fatal(err)
	}
	fc := NewCache(10, dim, 1)
	fc.Store(keys, vals)
	var fbuf bytes.Buffer
	if _, err := fc.WriteTo(&fbuf); err != nil {
		t.Fatal(err)
	}

	if _, err := NewCache(10, dim, 1).ReadFrom(bytes.NewReader(qbuf.Bytes())); err == nil {
		t.Fatal("float32 cache accepted an int8 snapshot")
	} else if !strings.Contains(err.Error(), "quantized") {
		t.Fatalf("refusal does not name the precision mismatch: %v", err)
	}
	if _, err := quantCache(10, dim, 1).ReadFrom(bytes.NewReader(fbuf.Bytes())); err == nil {
		t.Fatal("int8 cache accepted a float32 snapshot")
	} else if !strings.Contains(err.Error(), "float32") {
		t.Fatalf("refusal does not name the precision mismatch: %v", err)
	}

	// A failed cross-precision load must leave the target untouched.
	tc := quantCache(10, dim, 1)
	tc.Store(keys, vals)
	if _, err := tc.ReadFrom(bytes.NewReader(fbuf.Bytes())); err == nil {
		t.Fatal("cross-precision load accepted")
	}
	if tc.Len() != 3 {
		t.Fatalf("failed load disturbed the cache: %d entries", tc.Len())
	}

	// Truncated int8 snapshots fail cleanly too.
	if _, err := quantCache(10, dim, 1).ReadFrom(bytes.NewReader(qbuf.Bytes()[:qbuf.Len()/2])); err == nil {
		t.Fatal("truncated int8 snapshot accepted")
	}
}

// TestQuantEngineRefusesFloatSnapshot is the serving-facing variant:
// a float32 server pointed at an int8 warm-start file (or the
// reverse) errors out instead of loading garbage.
func TestQuantEngineRefusesFloatSnapshot(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	fEng := NewEngine(m, s, OptAll())
	tgat.StreamInference(ds.Graph, m, 100, fEng.EmbedFunc())
	dir := t.TempDir()
	fPath := filepath.Join(dir, "float.bin")
	if err := fEng.SaveCaches(fPath); err != nil {
		t.Fatal(err)
	}
	qOpt := OptAll()
	qOpt.Quant = QuantInt8
	qEng := NewEngine(m, s, qOpt)
	if err := qEng.LoadCaches(fPath); err == nil {
		t.Fatal("int8 engine loaded a float32 snapshot")
	}
	tgat.StreamInferenceArenaScored(ds.Graph, m, 100, 1, qEng.EmbedArenaFunc(), qEng)
	qPath := filepath.Join(dir, "int8.bin")
	if err := qEng.SaveCaches(qPath); err != nil {
		t.Fatal(err)
	}
	if err := fEng.LoadCaches(qPath); err == nil {
		t.Fatal("float32 engine loaded an int8 snapshot")
	}
}

// TestQuantSpillBitFlipIsAMiss extends the no-corrupt-promotion
// invariant to int8 spill records: at-rest corruption of a quantized
// record is a miss, never a wrong embedding.
func TestQuantSpillBitFlipIsAMiss(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillStoreWith(checkpoint.OS{}, dir, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 1 // every put seals its own segment
	fillSpill(sp, 8)
	if sp.Stats().Segments != 8 {
		t.Fatalf("expected 8 sealed segments, got %d", sp.Stats().Segments)
	}
	// Flip a bit in key 3's payload: envelope header (16) + dim header
	// (4) + record key (8) puts it at the scale float of the payload.
	if err := faultfs.FlipBit(sp.segPath(2), (16+4+8)*8); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 2)
	if sp.Get(3, dst) {
		t.Fatal("bit-flipped int8 record served as a hit")
	}
	if sp.Stats().CorruptRecords == 0 {
		t.Fatal("corruption not counted")
	}
	// Remaining records reconstruct within the quantization step.
	readable := 0
	for k := uint64(1); k <= 8; k++ {
		if !sp.Get(k, dst) {
			continue
		}
		readable++
		for _, x := range dst {
			d := float64(x) - float64(k)
			if d > float64(k)/127+1e-6 || -d > float64(k)/127+1e-6 {
				t.Fatalf("key %d: int8 spill value %g outside quant tolerance", k, x)
			}
		}
	}
	if readable != 7 {
		t.Fatalf("%d/8 records readable after one flip, want 7", readable)
	}
}

// TestQuantSpillPrecisionChangeIsCorruption: a spill directory written
// at one precision reopened at the other is treated as corrupt — the
// segments are dropped and counted, entries become misses, and nothing
// is ever decoded under the wrong codec.
func TestQuantSpillPrecisionChangeIsCorruption(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillStoreWith(checkpoint.OS{}, dir, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 1
	fillSpill(sp, 6)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	fsp, err := NewSpillStoreWith(checkpoint.OS{}, dir, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := fsp.Stats().CorruptSegments; got == 0 {
		t.Fatal("precision change not detected as segment corruption")
	}
	dst := make([]float32, 2)
	for k := uint64(1); k <= 6; k++ {
		if fsp.Get(k, dst) {
			t.Fatalf("key %d decoded across precisions", k)
		}
	}
	if err := fsp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuantTimeTable: the quantized Δt table answers within the
// quantization step of the exact encoder, keeps Φ(0) exact, and is
// smaller than the float table.
func TestQuantTimeTable(t *testing.T) {
	enc := nn.NewTimeEncoder(8)
	qt := NewTimeTableQuant(enc, 64)
	ft := NewTimeTable(enc, 64)
	if !qt.Quant() || ft.Quant() {
		t.Fatal("Quant() flags wrong")
	}
	if qt.Bytes() >= ft.Bytes() {
		t.Fatalf("quant table %d B not below float %d B", qt.Bytes(), ft.Bytes())
	}
	if !qt.Verify(0.02) {
		t.Fatal("quant table rows exceed quantization tolerance")
	}
	// Φ(0) stays exact: the z_i path must not pick up systematic error.
	d := enc.Dim()
	z := tensor.New(3, d)
	qt.EncodeZerosInto(3, z)
	exact := enc.EncodeScalar(0)
	for j := 0; j < d; j++ {
		if z.At(0, j) != exact.At(j) {
			t.Fatal("quant table Φ(0) not exact")
		}
	}
	// Hits dequantize close to the exact rows; misses stay exact.
	dts := []float64{0, 5, 63, 63.5, 100}
	qout := tensor.New(len(dts), d)
	hits := qt.EncodeInto(dts, qout)
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	fout := tensor.New(len(dts), d)
	ft.EncodeInto(dts, fout)
	if diff := qout.MaxAbsDiff(fout); diff > 0.02 {
		t.Fatalf("quant table rows differ from float by %g", diff)
	}
	for i := 3; i < 5; i++ {
		for j := 0; j < d; j++ {
			if qout.At(i, j) != fout.At(i, j) {
				t.Fatal("miss-path encodings must be exact at both precisions")
			}
		}
	}
}
