package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Cache persistence: a production deployment restarting its serving
// process would otherwise pay the full warm-up cost again (Figure 7
// shows hit rates take a while to climb). The format is little-endian:
//
//	magic   uint32 = 0x54474343 ("TGCC")
//	dim     uint32
//	count   uint32
//	entries count × { key uint64, vec [dim]float32 }

const cacheMagic uint32 = 0x54474343

// WriteTo serializes every cached entry. Entries are written in shard
// order; on load they re-enter FIFO order as written, which preserves
// the limit semantics approximately (exact FIFO age does not survive a
// restart, matching the usual warm-cache tradeoff).
func (c *Cache) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	if err := put32(cacheMagic); err != nil {
		return n, err
	}
	if err := put32(uint32(c.dim)); err != nil {
		return n, err
	}
	if err := put32(uint32(c.Len())); err != nil {
		return n, err
	}
	rec := make([]byte, 8+4*c.dim)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		// Write in FIFO order so ages are approximately preserved.
		for _, key := range s.fifo[s.head:] {
			v, ok := s.m[key]
			if !ok {
				continue
			}
			binary.LittleEndian.PutUint64(rec, key)
			for j, f := range v {
				binary.LittleEndian.PutUint32(rec[8+4*j:], math.Float32bits(f))
			}
			k, err := bw.Write(rec)
			n += int64(k)
			if err != nil {
				s.mu.Unlock()
				return n, err
			}
		}
		s.mu.Unlock()
	}
	return n, bw.Flush()
}

// ReadFrom loads entries written by WriteTo into the cache (on top of
// any existing contents, evicting per the usual FIFO policy if the
// limit is exceeded). The stored dimension must match.
func (c *Cache) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	get32 := func() (uint32, error) {
		var buf [4]byte
		k, err := io.ReadFull(br, buf[:])
		n += int64(k)
		return binary.LittleEndian.Uint32(buf[:]), err
	}
	magic, err := get32()
	if err != nil {
		return n, err
	}
	if magic != cacheMagic {
		return n, fmt.Errorf("core: bad cache magic %#x", magic)
	}
	dim, err := get32()
	if err != nil {
		return n, err
	}
	if int(dim) != c.dim {
		return n, fmt.Errorf("core: cached dim %d, cache expects %d", dim, c.dim)
	}
	count, err := get32()
	if err != nil {
		return n, err
	}
	rec := make([]byte, 8+4*c.dim)
	vec := make([]float32, c.dim)
	for i := uint32(0); i < count; i++ {
		k, err := io.ReadFull(br, rec)
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("core: cache entry %d: %w", i, err)
		}
		key := binary.LittleEndian.Uint64(rec)
		for j := range vec {
			vec[j] = math.Float32frombits(binary.LittleEndian.Uint32(rec[8+4*j:]))
		}
		c.storeOne(key, vec)
	}
	return n, nil
}

// SaveCaches persists the engine's per-layer caches to path.
func (e *Engine) SaveCaches(path string) error {
	if e.caches == nil {
		return fmt.Errorf("core: engine has no caches to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	// Header: number of cached layers, then (layer, cache blob) pairs.
	var live []int
	for l, c := range e.caches {
		if c != nil {
			live = append(live, l)
		}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(live)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, l := range live {
		binary.LittleEndian.PutUint32(hdr[:], uint32(l))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := e.caches[l].WriteTo(w); err != nil {
			return err
		}
	}
	return w.Flush()
}

// LoadCaches restores caches saved by SaveCaches. The engine's
// architecture (cached layers and embedding width) must match.
func (e *Engine) LoadCaches(path string) error {
	if e.caches == nil {
		return fmt.Errorf("core: engine has no caches to load into")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	layers := binary.LittleEndian.Uint32(hdr[:])
	for i := uint32(0); i < layers; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		l := int(binary.LittleEndian.Uint32(hdr[:]))
		if l < 0 || l >= len(e.caches) || e.caches[l] == nil {
			return fmt.Errorf("core: snapshot has cache for layer %d, engine does not", l)
		}
		if _, err := e.caches[l].ReadFrom(r); err != nil {
			return fmt.Errorf("core: layer %d: %w", l, err)
		}
	}
	return nil
}
