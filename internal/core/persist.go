package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tgopt/internal/checkpoint"
)

// Cache persistence: a production deployment restarting its serving
// process would otherwise pay the full warm-up cost again (Figure 7
// shows hit rates take a while to climb).
//
// A cache blob is little-endian. The current (v2) layout snapshots one
// shard at a time, each section's count taken under that shard's lock
// while its entries are serialized, so concurrent stores and evictions
// can never make a header disagree with the entries actually written:
//
//	magic    uint32 = 0x32434754 ("TGC2") | 0x31514754 ("TGQ1")
//	dim      uint32
//	sections repeated { count uint32, count × { key uint64, payload } }
//	end      uint32 = 0xFFFFFFFF
//
// The entry payload is the shared entry codec's format: [dim]float32
// under TGC2, or {scale float32, [dim]int8} under TGQ1 (an
// int8-quantized cache, ~4× smaller on disk). The magic states the
// precision, so a float32 cache refuses a TGQ1 blob — and vice versa —
// with a clear error instead of misreading the bytes.
//
// The legacy (v1, "TGCC") layout — a single global count followed by
// all float32 entries — is still read, never written.
//
// Engine snapshots wrap the per-layer blobs in a checkpoint envelope
// (internal/checkpoint): CRC32-checksummed and atomically replaced, so
// a crash mid-save preserves the previous snapshot and corruption is
// detected before any entry reaches a live cache.

const (
	cacheMagicV1 uint32 = 0x54474343 // "TGCC": global count header (legacy)
	cacheMagicV2 uint32 = 0x32434754 // "TGC2": per-shard sections
	cacheMagicQ1 uint32 = 0x31514754 // "TGQ1": per-shard sections, int8 payloads
	// cacheSectionEnd terminates the v2 section list. Section counts
	// are bounded by the cache limit, far below this sentinel.
	cacheSectionEnd uint32 = 0xFFFFFFFF

	// cacheSnapshotVersion is the engine snapshot's envelope version.
	// Version 3 prefixed the layer stream with the model version the
	// entries were computed under; version-2 snapshots load as model
	// version 0 (the pre-swap-era default).
	cacheSnapshotVersion uint32 = 3

	// cacheSnapshotVersionV2 is the previous, unversioned-model layout.
	cacheSnapshotVersionV2 uint32 = 2
)

// WriteTo serializes every cached entry as a v2 blob. Each shard's
// entries are staged and counted under the shard lock, then streamed
// out, so a snapshot taken concurrently with stores and evictions is
// always internally consistent (it captures each shard at one instant,
// and the whole cache at slightly staggered instants — the usual
// warm-cache tradeoff, like FIFO age, which survives a restart only
// approximately).
func (c *Cache) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	magic := cacheMagicV2
	if c.codec.quant {
		magic = cacheMagicQ1
	}
	if err := put32(magic); err != nil {
		return n, err
	}
	if err := put32(uint32(c.dim)); err != nil {
		return n, err
	}
	var scratch bytes.Buffer
	rec := make([]byte, 8+c.codec.payloadSize())
	for i := range c.shards {
		s := &c.shards[i]
		scratch.Reset()
		count := uint32(0)
		s.mu.Lock()
		// Write in FIFO order so ages are approximately preserved. The
		// stored payload IS the serialized form — both precisions.
		for _, key := range s.fifo[s.head:] {
			v, ok := s.m[key]
			if !ok {
				continue
			}
			binary.LittleEndian.PutUint64(rec, key)
			copy(rec[8:], v)
			scratch.Write(rec)
			count++
		}
		s.mu.Unlock()
		if count == 0 {
			continue
		}
		if err := put32(count); err != nil {
			return n, err
		}
		k, err := bw.Write(scratch.Bytes())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	if err := put32(cacheSectionEnd); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom loads entries written by WriteTo (either blob version) into
// the cache on top of any existing contents, evicting per the usual
// FIFO policy if the limit is exceeded. The stored dimension must
// match. The load is all-or-nothing: the stream is fully parsed into a
// staging area first, so a mid-stream error leaves the cache exactly
// as it was.
func (c *Cache) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	get32 := func() (uint32, error) {
		var buf [4]byte
		k, err := io.ReadFull(br, buf[:])
		n += int64(k)
		return binary.LittleEndian.Uint32(buf[:]), err
	}
	magic, err := get32()
	if err != nil {
		return n, err
	}
	switch magic {
	case cacheMagicV1, cacheMagicV2:
		if c.codec.quant {
			return n, fmt.Errorf("core: cache snapshot is float32, cache runs int8-quantized — re-warm instead of loading across precisions")
		}
	case cacheMagicQ1:
		if !c.codec.quant {
			return n, fmt.Errorf("core: cache snapshot is int8-quantized, cache runs float32 — re-warm instead of loading across precisions")
		}
	default:
		return n, fmt.Errorf("core: bad cache magic %#x", magic)
	}
	dim, err := get32()
	if err != nil {
		return n, err
	}
	if int(dim) != c.dim {
		return n, fmt.Errorf("core: cached dim %d, cache expects %d", dim, c.dim)
	}

	// Stage every entry before touching the live shards. Capacities
	// grow by append: a hostile count in a truncated stream must not
	// drive a huge allocation.
	var keys []uint64
	var payloads []byte
	ps := c.codec.payloadSize()
	rec := make([]byte, 8+ps)
	readEntries := func(count uint32) error {
		for i := uint32(0); i < count; i++ {
			k, err := io.ReadFull(br, rec)
			n += int64(k)
			if err != nil {
				return fmt.Errorf("core: cache entry %d: %w", len(keys), err)
			}
			keys = append(keys, binary.LittleEndian.Uint64(rec))
			payloads = append(payloads, rec[8:]...)
		}
		return nil
	}
	switch magic {
	case cacheMagicV1:
		count, err := get32()
		if err != nil {
			return n, err
		}
		if err := readEntries(count); err != nil {
			return n, err
		}
	default: // cacheMagicV2, cacheMagicQ1: per-shard sections
		for {
			count, err := get32()
			if err != nil {
				return n, fmt.Errorf("core: cache section header: %w", err)
			}
			if count == cacheSectionEnd {
				break
			}
			if err := readEntries(count); err != nil {
				return n, err
			}
		}
	}

	// Commit: the stream parsed cleanly; only now do entries enter the
	// live cache. Payloads re-enter through the decoded path so TinyLFU
	// admission and spill cascades behave exactly like live stores.
	vec := make([]float32, c.dim)
	for i, key := range keys {
		c.codec.decode(payloads[i*ps:(i+1)*ps], vec)
		c.storeOne(key, vec)
	}
	return n, nil
}

// cloneEmpty returns a cache with identical geometry (limit, dim,
// shard count) and no entries — a staging target for all-or-nothing
// loads.
func (c *Cache) cloneEmpty() *Cache {
	return NewCacheWith(CacheConfig{
		Limit:  c.limit,
		Dim:    c.dim,
		Shards: len(c.shards),
		Policy: CacheFIFO,
		Quant:  c.codec.quant,
	})
}

// absorb merges every entry of other into c in other's FIFO order,
// under c's usual limit semantics. other must have the same dim and
// precision and is expected to be a private staging cache (it is read
// without locking).
func (c *Cache) absorb(other *Cache) {
	vec := make([]float32, c.dim)
	for i := range other.shards {
		s := &other.shards[i]
		for _, key := range s.fifo[s.head:] {
			if v, ok := s.m[key]; ok {
				c.codec.decode(v, vec)
				c.storeOne(key, vec)
			}
		}
	}
}

// SaveCaches persists the engine's per-layer caches to path as an
// atomic, checksummed snapshot: the write goes to path.tmp and is
// fsynced and renamed into place, so a crash mid-save leaves the
// previous snapshot intact.
func (e *Engine) SaveCaches(path string) error {
	return e.SaveCachesFS(checkpoint.OS{}, path)
}

// SaveCachesFS is SaveCaches over an injectable file system (fault
// tests drive it through internal/faultfs).
func (e *Engine) SaveCachesFS(fsys checkpoint.FS, path string) error {
	if e.caches == nil {
		return fmt.Errorf("core: engine has no caches to save")
	}
	// The save runs under the swap barrier's read side so the model
	// version it stamps is the version every serialized entry was
	// computed under — a swap cannot land between the stamp and the
	// blobs.
	e.swapGate.RLock()
	defer e.swapGate.RUnlock()
	return checkpoint.WriteFS(fsys, path, cacheSnapshotVersion, func(w io.Writer) error {
		// Payload: model version, number of cached layers, then
		// (layer, blob) pairs.
		var mv [8]byte
		binary.LittleEndian.PutUint64(mv[:], e.version.Load())
		if _, err := w.Write(mv[:]); err != nil {
			return err
		}
		// Number of cached layers, then (layer, blob) pairs.
		var live []int
		for l, c := range e.caches {
			if c != nil {
				live = append(live, l)
			}
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(live)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		for _, l := range live {
			binary.LittleEndian.PutUint32(hdr[:], uint32(l))
			if _, err := w.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := e.caches[l].WriteTo(w); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadCaches restores caches saved by SaveCaches. The engine's
// architecture (cached layers and embedding width) must match. The
// load is all-or-nothing across every layer: entries are parsed into
// staging caches and committed only after the whole snapshot validates,
// so a corrupt file leaves the engine's caches untouched. Both current
// (enveloped, checksummed) and legacy (raw v1) snapshot files load.
func (e *Engine) LoadCaches(path string) error {
	return e.LoadCachesFS(checkpoint.OS{}, path)
}

// LoadCachesFS is LoadCaches over an injectable file system — the
// shard supervisor restores a crashed shard's snapshot through it so
// fault tests can drive the restart leg with internal/faultfs.
func (e *Engine) LoadCachesFS(fsys checkpoint.FS, path string) error {
	if e.caches == nil {
		return fmt.Errorf("core: engine has no caches to load into")
	}
	// Under the swap barrier's read side: the version the snapshot is
	// validated against cannot change while entries are committed.
	e.swapGate.RLock()
	defer e.swapGate.RUnlock()
	err := checkpoint.ReadFS(fsys, path, func(version uint32, r io.Reader) error {
		switch version {
		case cacheSnapshotVersion:
			// v3: model-version stamp precedes the layer stream. A
			// snapshot taken under other parameters is refused — its
			// memos would be bitwise-wrong under the current model.
			var mv [8]byte
			if _, err := io.ReadFull(r, mv[:]); err != nil {
				return err
			}
			if v := binary.LittleEndian.Uint64(mv[:]); v != e.version.Load() {
				return fmt.Errorf("core: cache snapshot is model version %d, engine serves %d — re-warm instead of loading across versions", v, e.version.Load())
			}
			return e.loadCacheStream(r)
		case cacheSnapshotVersionV2:
			// v2: no model stamp; treat as version 0, loadable only by a
			// version-0 engine (fresh boots that never swapped).
			if v := e.version.Load(); v != 0 {
				return fmt.Errorf("core: unversioned (v2) cache snapshot, engine serves model version %d", v)
			}
			return e.loadCacheStream(r)
		default:
			return fmt.Errorf("core: cache snapshot version %d, engine reads %d", version, cacheSnapshotVersion)
		}
	})
	if errors.Is(err, checkpoint.ErrNotCheckpoint) {
		return e.loadCachesLegacy(fsys, path)
	}
	return err
}

// loadCachesLegacy reads a pre-envelope snapshot file: the same layer
// stream, with v1 cache blobs and no checksum.
func (e *Engine) loadCachesLegacy(fsys checkpoint.FS, path string) error {
	if v := e.version.Load(); v != 0 {
		return fmt.Errorf("core: legacy cache snapshot, engine serves model version %d", v)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.loadCacheStream(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("core: legacy snapshot %s: %w", path, err)
	}
	return nil
}

// loadCacheStream parses a layer stream into staging caches and
// commits them only if every layer parses cleanly.
func (e *Engine) loadCacheStream(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	layers := binary.LittleEndian.Uint32(hdr[:])
	if layers > uint32(len(e.caches)) {
		return fmt.Errorf("core: snapshot has %d cached layers, engine has %d", layers, len(e.caches))
	}
	staged := make(map[int]*Cache, layers)
	for i := uint32(0); i < layers; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		l := int(binary.LittleEndian.Uint32(hdr[:]))
		if l < 0 || l >= len(e.caches) || e.caches[l] == nil {
			return fmt.Errorf("core: snapshot has cache for layer %d, engine does not", l)
		}
		if _, ok := staged[l]; ok {
			return fmt.Errorf("core: snapshot lists layer %d twice", l)
		}
		sc := e.caches[l].cloneEmpty()
		if _, err := sc.ReadFrom(br); err != nil {
			return fmt.Errorf("core: layer %d: %w", l, err)
		}
		staged[l] = sc
	}
	// Commit: every layer validated; merge into the live caches. Deep
	// layers are the exception under transitive invalidation: a key
	// decodes its target and time but not the support set the entry
	// aggregated, so a warm-started deep entry could never be
	// selectively invalidated — those layers conservatively re-warm
	// instead of loading (DESIGN.md §15). Layer 1 keeps its warm
	// start: its index rebuilds from the keys alone.
	for l, sc := range staged {
		if l >= 2 && e.layerSupports != nil {
			continue
		}
		e.caches[l].absorb(sc)
	}
	e.rebuildTargetIndex()
	return nil
}

// rebuildTargetIndex re-derives the layer-1 per-node key index from
// the layer-1 cache after a snapshot load, so late-edge invalidation
// also covers warm-started entries. Keys decode exactly within Key's
// documented domain (integral timestamps fitting 32 bits); outside it
// the cache keying itself already forfeits its guarantees.
func (e *Engine) rebuildTargetIndex() {
	ix := e.TargetsFor(1)
	if ix == nil {
		return
	}
	c := e.CacheFor(1)
	if c == nil {
		return
	}
	for _, key := range c.Keys() {
		ix.Record(int32(key>>32), key, float64(uint32(key)))
	}
}
