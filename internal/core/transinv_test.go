package core

import (
	"testing"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// transSetup is oooSetup with a 3-layer model: both layer 1 and layer 2
// are cached, so deep-layer transitive invalidation (DESIGN.md §15) is
// on the line. Timestamps have gaps > 1, keeping Key injective per node.
func transSetup(t *testing.T, lateness float64, opt Options) (*tgat.Model, *graph.Dynamic, *Engine, []graph.Edge) {
	t.Helper()
	r := tensor.NewRNG(5)
	const nodes, total = 25, 500
	stream := make([]graph.Edge, 0, total)
	clock := 0.0
	for len(stream) < total {
		clock += 1 + r.Float64()*10
		src := int32(1 + r.Intn(nodes))
		dst := int32(1 + r.Intn(nodes))
		if src == dst {
			continue
		}
		stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
	}
	nodeFeat := tensor.Randn(r, nodes+1, 16)
	edgeFeat := tensor.Randn(r, total+2, 16)
	for j := 0; j < 16; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 3, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 11}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(nodes)
	dyn.SetLateness(lateness)
	for _, e := range stream {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(m, graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0), opt)
	for start := 0; start < total; start += 100 {
		batch := stream[start : start+100]
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		eng.Embed(ns, ts)
	}
	if eng.CacheFor(2) == nil || eng.CacheFor(2).Len() == 0 {
		t.Fatal("warming pass left the layer-2 cache empty")
	}
	return m, dyn, eng, stream
}

// transOpt is the engine option set every transitive test starts from.
func transOpt() Options {
	opt := OptAll()
	opt.TrackTargets = true
	return opt
}

// replayExact re-embeds the whole warmed query set and compares against
// a fresh no-cache baseline, failing on any surviving stale entry.
func replayExact(t *testing.T, m *tgat.Model, dyn *graph.Dynamic, eng *Engine, stream []graph.Edge, label string) {
	t.Helper()
	for start := 0; start < len(stream); start += 125 {
		end := start + 125
		if end > len(stream) {
			end = len(stream)
		}
		batch := stream[start:end]
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d > 1e-5 {
			t.Fatalf("%s: replay at offset %d disagrees by %g", label, start, d)
		}
	}
}

func TestTransitiveInvalidateLateEdgeDeepExactness(t *testing.T) {
	m, dyn, eng, stream := transSetup(t, 200, transOpt())
	if eng.SupportsFor(2) == nil || eng.SupportsFor(2).Len() == 0 {
		t.Fatal("layer-2 support index recorded nothing")
	}
	total := len(stream)
	tLate := (stream[total-20].Time + stream[total-19].Time) / 2
	u, v := stream[total-20].Src, stream[total-19].Dst
	if u == v {
		v = stream[total-18].Dst
	}
	res, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: tLate, Idx: int32(total + 1)})
	if err != nil || res != graph.IngestLate {
		t.Fatalf("late ingest: res=%v err=%v", res, err)
	}

	deepBefore := eng.CacheFor(2).Len()
	removed := eng.InvalidateLateEdge(u, v, tLate)
	if removed == 0 {
		t.Fatal("late edge between busy nodes invalidated nothing")
	}
	if eng.CacheFor(2).Len() == 0 {
		t.Fatalf("deep invalidation was not selective: all %d layer-2 entries dropped", deepBefore)
	}
	replayExact(t, m, dyn, eng, stream, "late edge")
}

func TestTransitiveInvalidateAppendDeepExactness(t *testing.T) {
	m, dyn, eng, stream := transSetup(t, 0, transOpt())
	// Embed a few targets in the future so appends have memos to displace.
	total := len(stream)
	future := dyn.MaxTime() + 10
	futureNs := []int32{stream[total-1].Src, stream[total-1].Dst, stream[total-2].Src, stream[total-3].Dst}
	futureTs := []float64{future, future, future, future}
	eng.Embed(futureNs, futureTs)

	u, v := stream[total-1].Src, stream[total-2].Src
	if u == v {
		v = stream[total-2].Dst
	}
	tNew := dyn.MaxTime() + 2 // below the future-time memos
	res, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: tNew, Idx: int32(total + 1)})
	if err != nil || res != graph.IngestAppended {
		t.Fatalf("append ingest: res=%v err=%v", res, err)
	}
	eng.InvalidateAppend(u, v, tNew)
	if eng.CacheFor(2).Len() == 0 {
		t.Fatal("append invalidation cleared the whole deep cache")
	}
	replayExact(t, m, dyn, eng, stream, "append")
	if d := eng.Embed(futureNs, futureTs).MaxAbsDiff(freshBaseline(t, m, dyn, futureNs, futureTs)); d > 1e-5 {
		t.Fatalf("future-time queries disagree by %g after append", d)
	}
}

func TestDeepClearAllRestoresConservativeClear(t *testing.T) {
	opt := transOpt()
	opt.DeepClearAll = true
	_, dyn, eng, stream := transSetup(t, 200, opt)
	total := len(stream)
	tLate := (stream[total-20].Time + stream[total-19].Time) / 2
	u, v := stream[total-20].Src, stream[total-19].Dst
	if u == v {
		v = stream[total-18].Dst
	}
	if _, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: tLate, Idx: int32(total + 1)}); err != nil {
		t.Fatal(err)
	}
	eng.InvalidateLateEdge(u, v, tLate)
	if n := eng.CacheFor(2).Len(); n != 0 {
		t.Fatalf("DeepClearAll left %d layer-2 entries", n)
	}
	if eng.CacheFor(1).Len() == 0 {
		t.Fatal("DeepClearAll must not clear layer 1 (still selective there)")
	}
}

func TestSupportShedFallsBackToDeepClear(t *testing.T) {
	// Shedding only arises on retained (nil-alive) middle-layer indexes,
	// i.e. models with L >= 4. Simulate the overflow directly instead of
	// building one: flood a retained-style record list past the cap.
	_, dyn, eng, stream := transSetup(t, 200, transOpt())
	six := eng.SupportsFor(2)
	if six == nil {
		t.Fatal("no layer-2 support index")
	}
	if six.Shed() {
		t.Fatal("shed flag set before overflow")
	}
	retained := NewSupportIndex(nil)
	for i := 0; i <= supportNodeCap; i++ {
		retained.Record(7, uint64(i), float64(i))
	}
	if !retained.Shed() {
		t.Fatal("cap overflow did not shed")
	}
	// Splice the shed index in as if it were a middle layer's and verify
	// the next invalidation degrades to the conservative deep clear.
	eng.layerSupports[2] = retained
	total := len(stream)
	tLate := (stream[total-20].Time + stream[total-19].Time) / 2
	u, v := stream[total-20].Src, stream[total-19].Dst
	if u == v {
		v = stream[total-18].Dst
	}
	if _, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: tLate, Idx: int32(total + 1)}); err != nil {
		t.Fatal(err)
	}
	eng.InvalidateLateEdge(u, v, tLate)
	if n := eng.CacheFor(2).Len(); n != 0 {
		t.Fatalf("shed fallback left %d layer-2 entries", n)
	}
	if retained.Shed() {
		t.Fatal("conservative clear did not reset the shed flag")
	}
}

func TestSupportIndexRecordCollect(t *testing.T) {
	ix := NewSupportIndex(nil)
	ix.Record(0, 1, 1) // padding: skipped
	if ix.Len() != 0 {
		t.Fatal("padding node recorded")
	}
	k10 := Key(3, 10)
	k20 := Key(3, 20)
	ix.Record(3, 100, 10)
	ix.Record(3, 101, 20)
	ix.Record(3, 102, 20)
	ix.Record(4, 200, 15)

	// CollectWindow: strictly-after t, drop consulted per record.
	got := ix.CollectWindow(3, 10, func(upper uint64, st float64) bool { return upper != 102 })
	if len(got) != 1 || got[0] != 101 {
		t.Fatalf("CollectWindow = %v, want [101]", got)
	}
	if got := ix.CollectWindow(3, 10, nil); len(got) != 1 || got[0] != 102 {
		t.Fatalf("declined record not retained: %v", got)
	}
	// Record at st == t is not displaced (window is strictly-before-t').
	if got := ix.CollectWindow(3, 10, nil); len(got) != 0 {
		t.Fatalf("st == t collected: %v", got)
	}

	// CollectUpper matches through the Key encoding.
	if got := ix.CollectUpper(k20); len(got) != 0 {
		t.Fatalf("drained key matched again: %v", got)
	}
	if got := ix.CollectUpper(k10); len(got) != 1 || got[0] != 100 {
		t.Fatalf("CollectUpper(k10) = %v, want [100]", got)
	}
	if got := ix.CollectUpper(Key(4, 15)); len(got) != 1 || got[0] != 200 {
		t.Fatalf("CollectUpper(4@15) = %v, want [200]", got)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after draining everything", ix.Len())
	}

	// Reset clears records and the shed flag.
	for i := 0; i <= supportNodeCap; i++ {
		ix.Record(9, uint64(i), float64(i))
	}
	if !ix.Shed() {
		t.Fatal("overflow did not shed")
	}
	ix.Reset()
	if ix.Shed() || ix.Len() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSupportIndexAlivePrune(t *testing.T) {
	alive := func(upper uint64) bool { return upper%2 == 0 }
	ix := NewSupportIndex(alive)
	// The prune triggers at multiples of 1024 records under one node;
	// after crossing it, dead (odd) uppers must be gone.
	for i := 0; i < 1500; i++ {
		ix.Record(5, uint64(i), float64(i))
	}
	n := ix.Len()
	if n >= 1024 {
		t.Fatalf("liveness prune never ran: %d records retained", n)
	}
	if got := ix.CollectUpper(Key(5, 3)); len(got) != 0 {
		t.Fatalf("pruned record still indexed: %v", got)
	}
}

// FuzzTransitiveInvalidate drives a random interleaving of appends,
// late inserts, and embed batches through a 3-layer engine and asserts
// no stale deep entry survives: after every mutation+invalidate pair
// the full warmed query set must match a fresh no-cache recompute.
func FuzzTransitiveInvalidate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, int64(1))
	f.Add([]byte{9, 9, 9, 0, 0, 0, 7, 7}, int64(42))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1}, int64(7))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 24 {
			ops = ops[:24] // bound per-input work
		}
		r := tensor.NewRNG(uint64(seed))
		const nodes, total = 12, 120
		stream := make([]graph.Edge, 0, total)
		// Integral timestamps: the memo Key is documented sound only when
		// distinct times truncate distinctly, and late inserts below land
		// between neighbors, so every time here is a whole number.
		clock := 0.0
		for len(stream) < total {
			clock += float64(2 + r.Intn(6))
			src := int32(1 + r.Intn(nodes))
			dst := int32(1 + r.Intn(nodes))
			if src == dst {
				continue
			}
			stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
		}
		nodeFeat := tensor.Randn(r, nodes+1, 8)
		edgeFeat := tensor.Randn(r, total+len(ops)+2, 8)
		for j := 0; j < 8; j++ {
			nodeFeat.Set(0, 0, j)
			edgeFeat.Set(0, 0, j)
		}
		cfg := tgat.Config{Layers: 3, Heads: 2, NodeDim: 8, EdgeDim: 8, TimeDim: 8, NumNeighbors: 3, Seed: 11}
		m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
		if err != nil {
			t.Fatal(err)
		}
		dyn := graph.NewDynamic(nodes)
		dyn.SetLateness(1e9) // accept arbitrarily late edges
		for _, e := range stream {
			if _, err := dyn.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		opt := transOpt()
		eng := NewEngine(m, graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0), opt)

		// Query set: every stream interaction plus a head-time probe per
		// node. Re-embedded after every event, so the caches stay warm and
		// any unsoundness surfaces as a stale hit.
		var qns []int32
		var qts []float64
		for _, e := range stream {
			qns = append(qns, e.Src, e.Dst)
			qts = append(qts, e.Time, e.Time)
		}
		check := func(step int) {
			probe := dyn.MaxTime() + 1
			ns := append(append([]int32{}, qns...), make([]int32, nodes)...)
			ts := append(append([]float64{}, qts...), make([]float64, nodes)...)
			for i := 0; i < nodes; i++ {
				ns[len(qns)+i] = int32(i + 1)
				ts[len(qts)+i] = probe
			}
			got := eng.Embed(ns, ts)
			want := freshBaseline(t, m, dyn, ns, ts)
			if d := got.MaxAbsDiff(want); d > 1e-4 {
				t.Fatalf("step %d: stale entry survived, diff %g", step, d)
			}
		}
		check(-1)

		nextIdx := int32(total + 1)
		for step, b := range ops {
			u := int32(1 + (int(b)+step)%nodes)
			v := int32(1 + (int(b>>3)+3*step)%nodes)
			if u == v {
				v = v%int32(nodes) + 1
				if u == v {
					continue
				}
			}
			var et float64
			if b%3 == 0 {
				et = dyn.MaxTime() + 1 + float64(b%7) // append
			} else {
				// Late: land at a whole-number time at or after some
				// mid-stream interaction (Ingest classifies by time, so
				// picks that cross MaxTime are handled as appends).
				lo := stream[(int(b)*7+step)%(total-1)]
				et = lo.Time + float64(1+b%3)
			}
			res, _, err := dyn.Ingest(graph.Edge{Src: u, Dst: v, Time: et, Idx: nextIdx})
			if err != nil {
				t.Fatal(err)
			}
			switch res {
			case graph.IngestAppended:
				nextIdx++
				eng.InvalidateAppend(u, v, et)
			case graph.IngestLate:
				nextIdx++
				eng.InvalidateLateEdge(u, v, et)
			default:
				continue
			}
			check(step)
		}
	})
}
