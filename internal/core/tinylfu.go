package core

// freqSketch is a 4-bit count-min sketch of key access frequencies —
// the admission filter behind the TinyLFU eviction policy. Each key
// maps to four counters (double hashing over a power-of-two table);
// an increment bumps all four saturating at 15, an estimate reads
// their minimum. Every sampleCap increments the whole table halves
// ("aging"), so the sketch tracks recent popularity rather than
// all-time counts: a heavy hitter that goes cold decays away in a few
// sample periods instead of squatting in the cache forever.
//
// Counters are packed two per byte. The table is sized at sixteen
// counters per cached slot: a sample period admits ~10 accesses per
// slot, and each access touches four counters, so anything much
// smaller drowns the signal in collision noise (every counter ends up
// near the mean and admission degenerates to "reject all"). A sketch is
// owned by one cache shard and mutated under that shard's lock; it has
// no locking of its own.
type freqSketch struct {
	table     []byte // 2 four-bit counters per byte
	mask      uint64 // counter-index mask; counter count is a power of two
	samples   int    // increments since the last halving
	sampleCap int    // halve when samples reaches this
	halvings  int64  // aging passes performed (diagnostics)
}

// newFreqSketch sizes a sketch for a shard holding up to capacity
// entries.
func newFreqSketch(capacity int) *freqSketch {
	if capacity < 1 {
		capacity = 1
	}
	counters := 256
	for counters < 16*capacity {
		counters *= 2
	}
	return &freqSketch{
		table: make([]byte, counters/2),
		mask:  uint64(counters - 1),
		// The classic TinyLFU sample period: ~10 accesses per cached
		// slot between halvings.
		sampleCap: 10 * capacity,
	}
}

// spread mixes a key into two independent hash streams for double
// hashing (the same finalizer family as shardFor; g is forced odd so
// successive probes cover the whole table).
func (f *freqSketch) spread(key uint64) (h, g uint64) {
	h = key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	g = key*0x9E3779B97F4A7C15 + 0x165667B19E3779F9
	g ^= g >> 29
	g |= 1
	return h, g
}

func (f *freqSketch) get(idx uint64) byte {
	b := f.table[idx>>1]
	if idx&1 == 0 {
		return b & 0x0F
	}
	return b >> 4
}

func (f *freqSketch) set(idx uint64, v byte) {
	if idx&1 == 0 {
		f.table[idx>>1] = f.table[idx>>1]&0xF0 | v
	} else {
		f.table[idx>>1] = f.table[idx>>1]&0x0F | v<<4
	}
}

// inc records one access of key, halving the table when the sample
// period elapses.
func (f *freqSketch) inc(key uint64) {
	h, g := f.spread(key)
	for i := uint64(0); i < 4; i++ {
		idx := (h + i*g) & f.mask
		if v := f.get(idx); v < 15 {
			f.set(idx, v+1)
		}
	}
	f.samples++
	if f.samples >= f.sampleCap {
		f.halve()
	}
}

// estimate returns the sketch's frequency estimate for key (an upper
// bound of the true recent count, capped at 15).
func (f *freqSketch) estimate(key uint64) byte {
	h, g := f.spread(key)
	min := byte(15)
	for i := uint64(0); i < 4; i++ {
		if v := f.get((h + i*g) & f.mask); v < min {
			min = v
		}
	}
	return min
}

// halve ages the sketch: every counter is divided by two, so frequency
// mass decays exponentially across sample periods.
func (f *freqSketch) halve() {
	for i, b := range f.table {
		// Shift each packed nibble right by one; 0x77 masks the bit
		// that would leak from the high nibble into the low one.
		f.table[i] = (b >> 1) & 0x77
	}
	f.samples /= 2
	f.halvings++
}
