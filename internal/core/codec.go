package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"tgopt/internal/tensor"
)

// QuantMode selects the numeric precision of the inference path
// (DESIGN.md §14). It is a serve-time choice, not a model property:
// the same trained float32 weights serve either mode, quantized once
// at engine construction when int8 is selected.
type QuantMode int

const (
	// QuantOff is the default float32 path, bit-identical to every
	// release before the quantized path existed.
	QuantOff QuantMode = iota
	// QuantInt8 runs attention projections through the packed int8
	// kernels and stores memo-cache entries (hot tier, spill tier, and
	// snapshots) as per-vector-scaled int8 — about 4× smaller, so the
	// same byte budget holds about 4× the entries.
	QuantInt8
)

// String returns the operator-facing name (-quant flag values).
func (m QuantMode) String() string {
	if m == QuantInt8 {
		return "int8"
	}
	return "float32"
}

// ParseQuantMode parses a -quant flag value.
func ParseQuantMode(s string) (QuantMode, error) {
	switch s {
	case "", "off", "float32", "fp32":
		return QuantOff, nil
	case "int8":
		return QuantInt8, nil
	}
	return QuantOff, fmt.Errorf("core: unknown quant mode %q (want float32 or int8)", s)
}

// entryCodec fixes the serialized embedding format shared by the memo
// cache's hot-tier payloads, the spill tier's record bodies, and the
// snapshot blobs, so an entry moves between tiers by copying bytes —
// never by re-encoding. Two formats exist:
//
//	float32: dim × little-endian float32     (4·dim bytes)
//	int8:    scale float32, dim × int8 codes (4 + dim bytes)
//
// The int8 payload is per-vector symmetric quantization: code c
// reconstructs as scale·c, the max-magnitude element maps to ±127.
type entryCodec struct {
	dim   int
	quant bool
}

// payloadSize returns the serialized embedding size in bytes.
func (c entryCodec) payloadSize() int {
	if c.quant {
		return 4 + c.dim
	}
	return 4 * c.dim
}

// entryBytes returns the accounted hot-tier footprint of one entry:
// payload plus per-item bookkeeping (see cacheEntryOverhead).
func (c entryCodec) entryBytes() int { return c.payloadSize() + cacheEntryOverhead }

// recSize returns the spill-tier on-disk record size: key + payload +
// record CRC.
func (c entryCodec) recSize() int64 { return 8 + int64(c.payloadSize()) + 4 }

// encode serializes vec into dst (len ≥ payloadSize).
func (c entryCodec) encode(vec []float32, dst []byte) {
	if c.quant {
		scale := tensor.QuantizeVecBytes(vec, dst[4:c.payloadSize()])
		binary.LittleEndian.PutUint32(dst[:4], math.Float32bits(scale))
		return
	}
	for i, x := range vec {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(x))
	}
}

// appendTo appends vec's serialized payload to buf.
func (c entryCodec) appendTo(buf []byte, vec []float32) []byte {
	n := len(buf)
	buf = slices.Grow(buf, c.payloadSize())[:n+c.payloadSize()]
	c.encode(vec, buf[n:])
	return buf
}

// decode reconstructs a payload into dst (len ≥ dim).
func (c entryCodec) decode(payload []byte, dst []float32) {
	if c.quant {
		scale := math.Float32frombits(binary.LittleEndian.Uint32(payload[:4]))
		tensor.DequantizeVecBytes(payload[4:4+c.dim], scale, dst[:c.dim])
		return
	}
	for i := 0; i < c.dim; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
}
