package core

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"tgopt/internal/checkpoint"
	"tgopt/internal/tensor"
)

// replayTrace drives a key trace through the cache the way the engine
// does: look up, store on miss. Returns the measured hit fraction
// (spill hits included — they avoid the recompute too).
func replayTrace(t *testing.T, c *Cache, trace []uint64) float64 {
	t.Helper()
	row := tensor.New(1, c.Dim())
	hits := make([]bool, 1)
	keys := make([]uint64, 1)
	served := 0
	for _, k := range trace {
		keys[0] = k
		if c.LookupInto(keys, row, hits) == 1 {
			served++
			continue
		}
		for j := 0; j < c.Dim(); j++ {
			row.Set(float32(k), 0, j)
		}
		c.Store(keys, row)
	}
	return float64(served) / float64(len(trace))
}

// zipfTrace samples n keys from [1, keyspace] under a Zipf(s)
// popularity law (rank-1 most popular), deterministically.
func zipfTrace(n, keyspace int, s float64, seed uint64) []uint64 {
	r := tensor.NewRNG(seed)
	cum := make([]float64, keyspace)
	total := 0.0
	for i := 0; i < keyspace; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	trace := make([]uint64, n)
	for i := range trace {
		x := r.Float64() * total
		trace[i] = uint64(1 + sort.SearchFloat64s(cum, x))
	}
	return trace
}

func TestTinyLFUKeepsHeavyHitterUnderScanChurn(t *testing.T) {
	// A key accessed repeatedly must survive a one-hit-wonder scan that
	// would flush the entire FIFO. This is the whole point of admission.
	cfg := CacheConfig{Limit: 8, Dim: 1, Shards: 1, Policy: CacheTinyLFU}
	c := NewCacheWith(cfg)
	one := tensor.Ones(1, 1)
	hot := uint64(7)
	// Build frequency for the hot key and make it resident.
	row := tensor.New(1, 1)
	hits := make([]bool, 1)
	c.Store([]uint64{hot}, one)
	for i := 0; i < 20; i++ {
		c.LookupInto([]uint64{hot}, row, hits)
	}
	// Scan: 1000 distinct cold keys, each stored once.
	for i := 0; i < 1000; i++ {
		c.Store([]uint64{uint64(1000 + i)}, one)
	}
	if !c.Contains(hot) {
		t.Fatal("TinyLFU evicted the heavy hitter during a cold scan")
	}
	st := c.Stats()
	if st.AdmitRejected == 0 {
		t.Fatal("cold scan triggered no admission rejections")
	}
	// FIFO control: same churn flushes the hot key.
	cf := NewCacheWith(CacheConfig{Limit: 8, Dim: 1, Shards: 1, Policy: CacheFIFO})
	cf.Store([]uint64{hot}, one)
	for i := 0; i < 20; i++ {
		cf.LookupInto([]uint64{hot}, row, hits)
	}
	for i := 0; i < 1000; i++ {
		cf.Store([]uint64{uint64(1000 + i)}, one)
	}
	if cf.Contains(hot) {
		t.Fatal("FIFO control unexpectedly kept the heavy hitter (test premise broken)")
	}
}

func TestZipfTraceTinyLFUBeatsFIFO(t *testing.T) {
	// The satellite property test: replay a Zipf-skewed trace at equal
	// byte budget and require (a) TinyLFU hit-rate >= FIFO and (b) the
	// heavy hitters resident at the end.
	const keyspace = 4096
	trace := zipfTrace(60_000, keyspace, 1.1, 3)
	for _, limit := range []int{64, 256, 1024} {
		fifo := NewCacheWith(CacheConfig{Limit: limit, Dim: 4, Shards: 4, Policy: CacheFIFO})
		tlfu := NewCacheWith(CacheConfig{Limit: limit, Dim: 4, Shards: 4, Policy: CacheTinyLFU})
		hrFIFO := replayTrace(t, fifo, trace)
		hrTLFU := replayTrace(t, tlfu, trace)
		t.Logf("limit %4d: fifo %.4f tinylfu %.4f", limit, hrFIFO, hrTLFU)
		if hrTLFU < hrFIFO {
			t.Fatalf("limit %d: TinyLFU hit-rate %.4f below FIFO %.4f", limit, hrTLFU, hrFIFO)
		}
		if limit == 64 && hrTLFU <= hrFIFO {
			t.Fatalf("smallest budget: TinyLFU %.4f not strictly above FIFO %.4f", hrTLFU, hrFIFO)
		}
		// Heavy hitters (the top ranks dominate a Zipf trace) resident.
		resident := 0
		for k := uint64(1); k <= 8; k++ {
			if tlfu.Contains(k) {
				resident++
			}
		}
		if resident < 6 {
			t.Fatalf("limit %d: only %d/8 heavy hitters resident under TinyLFU", limit, resident)
		}
		// Counter invariant, both policies.
		for name, c := range map[string]*Cache{"fifo": fifo, "tinylfu": tlfu} {
			st := c.Stats()
			if st.Lookups != st.Hits+st.Misses {
				t.Fatalf("%s: lookups %d != hits %d + misses %d", name, st.Lookups, st.Hits, st.Misses)
			}
			if st.Lookups != int64(len(trace)) {
				t.Fatalf("%s: counted %d lookups, trace has %d", name, st.Lookups, len(trace))
			}
		}
	}
}

func newTestSpill(t *testing.T, dim int) *SpillStore {
	t.Helper()
	sp, err := NewSpillStore(checkpoint.OS{}, t.TempDir(), dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestTieredCacheSpillServesEvictedEntries(t *testing.T) {
	sp := newTestSpill(t, 2)
	c := NewCacheWith(CacheConfig{Limit: 4, Dim: 2, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()

	// Fill past the hot limit: the overflow must land in the cold tier.
	n := 32
	keys := make([]uint64, n)
	vals := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		keys[i] = uint64(i + 1)
		vals.Set(float32(i+1), i, 0)
		vals.Set(float32(-(i + 1)), i, 1)
	}
	c.Store(keys, vals)
	if c.Len() != 4 {
		t.Fatalf("hot tier holds %d, want 4", c.Len())
	}
	if sp.Len() != n-4 {
		t.Fatalf("spill holds %d, want %d", sp.Len(), n-4)
	}

	// Every key is still served, with the right bytes.
	dst := tensor.New(n, 2)
	hits := make([]bool, n)
	if got := c.LookupInto(keys, dst, hits); got != n {
		t.Fatalf("served %d of %d after spill", got, n)
	}
	for i := 0; i < n; i++ {
		if dst.At(i, 0) != float32(i+1) || dst.At(i, 1) != float32(-(i+1)) {
			t.Fatalf("key %d: got (%g,%g)", keys[i], dst.At(i, 0), dst.At(i, 1))
		}
	}

	st := c.Stats()
	if st.Lookups != st.Hits+st.Misses {
		t.Fatalf("lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
	}
	if st.SpillHits > st.Misses {
		t.Fatalf("spill hits %d exceed hot-tier misses %d", st.SpillHits, st.Misses)
	}
	if st.SpillHits != int64(n-4) {
		t.Fatalf("spill hits %d, want %d", st.SpillHits, n-4)
	}

	// Contains and Keys reach the cold tier.
	if !c.Contains(keys[0]) {
		t.Fatal("Contains misses a spilled key")
	}
	if got := len(c.Keys()); got != n {
		t.Fatalf("Keys() = %d entries, want %d", got, n)
	}
}

func TestTieredCachePromoteOnHit(t *testing.T) {
	sp := newTestSpill(t, 1)
	c := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()
	vals := tensor.Ones(4, 1)
	c.Store([]uint64{1, 2, 3, 4}, vals) // 1 and 2 spill

	row := tensor.New(1, 1)
	hits := make([]bool, 1)
	c.LookupInto([]uint64{1}, row, hits)
	if !hits[0] {
		t.Fatal("spilled key not served")
	}
	// The promotion is async; wait for the worker.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := c.shardFor(1)
		s.mu.Lock()
		_, resident := s.m[1]
		s.mu.Unlock()
		if resident {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("key never promoted to the hot tier (promotes=%d drops=%d)",
				c.Stats().Promotes, c.Stats().PromoteDrops)
		}
		time.Sleep(time.Millisecond)
	}
	if c.Stats().Promotes == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestTieredCacheRemoveReachesSpill(t *testing.T) {
	sp := newTestSpill(t, 1)
	c := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()
	c.Store([]uint64{1, 2, 3, 4}, tensor.Ones(4, 1)) // 1,2 spill

	if !sp.Contains(1) {
		t.Fatal("precondition: key 1 not spilled")
	}
	// Invalidation must reach the cold tier, or a spilled stale memo
	// would be served (and promoted!) after the invalidation pass.
	if removed := c.Remove([]uint64{1, 3}); removed != 2 {
		t.Fatalf("Remove = %d, want 2 (one per tier)", removed)
	}
	if c.Contains(1) || c.Contains(3) {
		t.Fatal("removed keys still resident")
	}
	row := tensor.New(1, 1)
	hits := make([]bool, 1)
	if c.LookupInto([]uint64{1}, row, hits) != 0 {
		t.Fatal("removed spilled key still served")
	}
	// Clear wipes both tiers.
	c.Clear()
	if c.Len() != 0 || sp.Len() != 0 {
		t.Fatalf("Clear left len=%d spill=%d", c.Len(), sp.Len())
	}
}

func TestTieredCachePromoteGenerationFence(t *testing.T) {
	// White box: a promotion whose generation predates an invalidation
	// must be dropped, never applied — otherwise a removed entry would
	// resurrect into the hot tier.
	sp := newTestSpill(t, 1)
	c := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()
	c.Store([]uint64{1, 2, 3, 4}, tensor.Ones(4, 1))

	stale := promoteReq{key: 1, vec: []float32{1}, gen: c.gen.Load()}
	c.Remove([]uint64{1}) // bumps gen, removes from both tiers
	c.promoteOne(stale)
	if c.Contains(1) {
		t.Fatal("stale promotion resurrected a removed entry")
	}
	if c.Stats().PromoteDrops == 0 {
		t.Fatal("stale promotion not counted as dropped")
	}
	// A current-generation promotion still works.
	fresh := promoteReq{key: 9, vec: []float32{9}, gen: c.gen.Load()}
	c.promoteOne(fresh)
	if !c.Contains(9) {
		t.Fatal("current-generation promotion was dropped")
	}
}

func TestTieredCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillStore(checkpoint.OS{}, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp})
	n := 16
	keys := make([]uint64, n)
	vals := tensor.New(n, 1)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals.Set(float32(i+1), i, 0)
	}
	c.Store(keys, vals)
	if err := c.Close(); err != nil { // seals the open segment
		t.Fatal(err)
	}

	sp2, err := NewSpillStore(checkpoint.OS{}, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp2})
	defer c2.Close()
	if sp2.Len() != n-2 {
		t.Fatalf("recovered %d spilled entries, want %d", sp2.Len(), n-2)
	}
	row := tensor.New(1, 1)
	hits := make([]bool, 1)
	for i := 0; i < n-2; i++ { // the first n-2 stores were the evicted ones
		k := keys[i]
		if c2.LookupInto([]uint64{k}, row, hits) != 1 {
			t.Fatalf("key %d lost across restart", k)
		}
		if row.At(0, 0) != float32(k) {
			t.Fatalf("key %d: got %g want %d", k, row.At(0, 0), k)
		}
	}
}

func TestSpillBudgetDropsOldestSegments(t *testing.T) {
	sp, err := NewSpillStore(checkpoint.OS{}, t.TempDir(), 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 512 // force frequent seals
	vec := []float32{1}
	for i := 0; i < 400; i++ {
		sp.Put(uint64(i+1), vec)
	}
	st := sp.Stats()
	if st.DroppedSegments == 0 {
		t.Fatal("budget never dropped a segment")
	}
	if st.Bytes > 2048+int64(sp.segTarget)+64 {
		t.Fatalf("spill bytes %d far above budget", st.Bytes)
	}
	// Oldest keys are the dropped ones; newest still present.
	if sp.Contains(1) {
		t.Fatal("oldest key survived budget enforcement")
	}
	if !sp.Contains(400) {
		t.Fatal("newest key dropped by budget enforcement")
	}
}

func TestSpillCompaction(t *testing.T) {
	sp, err := NewSpillStore(checkpoint.OS{}, t.TempDir(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.segTarget = 256
	vec := []float32{1}
	for i := 0; i < 100; i++ {
		sp.Put(uint64(i+1), vec)
	}
	if sp.Stats().Segments == 0 {
		t.Fatal("no sealed segments to compact")
	}
	// Remove 80% of keys: dead records dominate every segment, so
	// compaction must fold the survivors forward and delete files.
	for k := uint64(1); k <= 80; k++ {
		sp.Remove(k)
	}
	if sp.Stats().Compactions == 0 {
		t.Fatal("dead-dominated segments never compacted")
	}
	// Survivors still readable, removed keys stay gone.
	dst := make([]float32, 1)
	for k := uint64(81); k <= 100; k++ {
		if !sp.Get(k, dst) {
			t.Fatalf("key %d lost in compaction", k)
		}
	}
	for k := uint64(1); k <= 80; k++ {
		if sp.Get(k, dst) {
			t.Fatalf("removed key %d resurrected by compaction", k)
		}
	}
}

func TestCacheStatsInvariantAcrossTiers(t *testing.T) {
	// Randomized mixed workload: the counter invariant must hold at
	// every point regardless of spill/promote interleaving.
	sp := newTestSpill(t, 2)
	c := NewCacheWith(CacheConfig{Limit: 16, Dim: 2, Shards: 4, Policy: CacheTinyLFU, Spill: sp})
	defer c.Close()
	r := tensor.NewRNG(7)
	row := tensor.New(1, 2)
	hits := make([]bool, 1)
	var want int64
	for i := 0; i < 5000; i++ {
		k := uint64(1 + r.Intn(200))
		switch r.Intn(4) {
		case 0, 1:
			c.LookupInto([]uint64{k}, row, hits)
			want++
		case 2:
			c.Store([]uint64{k}, tensor.Ones(1, 2))
		case 3:
			c.Remove([]uint64{k})
		}
		if i%997 == 0 {
			st := c.Stats()
			if st.Lookups != st.Hits+st.Misses {
				t.Fatalf("i=%d: lookups %d != hits %d + misses %d", i, st.Lookups, st.Hits, st.Misses)
			}
			if st.SpillHits > st.Misses {
				t.Fatalf("i=%d: spill hits %d > misses %d", i, st.SpillHits, st.Misses)
			}
		}
	}
	if st := c.Stats(); st.Lookups != want {
		t.Fatalf("lookups %d, want %d", st.Lookups, want)
	}
}

func TestNewCacheWithValidation(t *testing.T) {
	for _, bad := range []CacheConfig{
		{Limit: 0, Dim: 1},
		{Limit: 1, Dim: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCacheWith(%+v) did not panic", bad)
				}
			}()
			NewCacheWith(bad)
		}()
	}
	// Spill dim mismatch panics too.
	sp := newTestSpill(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("spill dim mismatch did not panic")
		}
	}()
	NewCacheWith(CacheConfig{Limit: 1, Dim: 2, Spill: sp})
}

func TestEngineCacheStatsAggregates(t *testing.T) {
	_, _, eng, _ := oooSetup(t, 0)
	st := eng.CacheStats()
	if st.Lookups == 0 || st.Lookups != st.Hits+st.Misses {
		t.Fatalf("engine cache stats inconsistent: %+v", st)
	}
}

func ExampleCachePolicy() {
	c := NewCacheWith(CacheConfig{Limit: 4, Dim: 1, Shards: 1}) // zero Policy
	fmt.Println(c.Policy() == CacheTinyLFU)
	// Output: true
}

func TestTieredCachePromoteGenCapturedBeforeSpillRead(t *testing.T) {
	// Regression: the lookup path used to load the fence generation
	// *after* the spill read. An invalidation completing fully in the
	// window between SpillStore.Get returning and that load handed the
	// promotion a post-invalidation generation, so it passed the fence
	// in promoteOne and resurrected the just-removed entry. The
	// generation is now captured before the spill read and threaded
	// through maybePromote; this pins the threading: a promotion
	// enqueued *after* an invalidation, but carrying a pre-invalidation
	// generation, must be dropped by the worker.
	sp := newTestSpill(t, 1)
	c := NewCacheWith(CacheConfig{Limit: 2, Dim: 1, Shards: 1, Policy: CacheFIFO, Spill: sp})
	defer c.Close()
	c.Store([]uint64{1, 2, 3, 4}, tensor.Ones(4, 1)) // 1,2 spill

	// The serving goroutine's view of the race: gen loaded, spill read
	// returns a hit…
	gen := c.gen.Load()
	row := make([]float32, 1)
	if !sp.Get(1, row) {
		t.Fatal("precondition: key 1 not in spill tier")
	}
	// …then a Remove completes fully before the promotion is enqueued.
	c.Remove([]uint64{1})
	drops := c.Stats().PromoteDrops
	c.maybePromote(1, row, gen)

	waitFor(t, "stale promotion drained", func() bool {
		return c.Stats().PromoteDrops > drops
	})
	if c.Contains(1) {
		t.Fatal("promotion with a pre-invalidation generation resurrected the entry")
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
