package core

import (
	"testing"
	"testing/quick"

	"tgopt/internal/tensor"
)

func TestKeyPacksNodeAndTime(t *testing.T) {
	if Key(0, 0) != 0 {
		t.Fatalf("Key(0,0) = %#x", Key(0, 0))
	}
	if Key(1, 0) != 1<<32 {
		t.Fatalf("Key(1,0) = %#x", Key(1, 0))
	}
	if Key(0, 1) != 1 {
		t.Fatalf("Key(0,1) = %#x", Key(0, 1))
	}
	if Key(2, 3) != 2<<32|3 {
		t.Fatalf("Key(2,3) = %#x", Key(2, 3))
	}
}

func TestKeyCollisionFreeProperty(t *testing.T) {
	// §4.1: for 32-bit nodes and integral 32-bit timestamps the packing
	// is injective: distinct pairs yield distinct keys.
	prop := func(n1, n2 int32, t1, t2 uint32) bool {
		if n1 < 0 {
			n1 = -n1
		}
		if n2 < 0 {
			n2 = -n2
		}
		k1 := Key(n1, float64(t1))
		k2 := Key(n2, float64(t2))
		same := n1 == n2 && t1 == t2
		return (k1 == k2) == same
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTripComponents(t *testing.T) {
	k := Key(123456, 987654321)
	if k>>32 != 123456 || uint32(k) != 987654321 {
		t.Fatalf("components do not round-trip: %#x", k)
	}
}

func TestComputeKeysMatchesScalar(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, n := range []int{0, 1, 100, computeKeysParallelThreshold + 500} {
		nodes := make([]int32, n)
		ts := make([]float64, n)
		for i := range nodes {
			nodes[i] = int32(r.Intn(1 << 20))
			ts[i] = float64(r.Intn(1 << 30))
		}
		keys := ComputeKeys(nodes, ts)
		for i := range keys {
			if keys[i] != Key(nodes[i], ts[i]) {
				t.Fatalf("n=%d: key %d mismatch", n, i)
			}
		}
	}
}
