package core

import (
	"testing"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// TestEngineEmbedSteadyStateAllocs pins the headline memory-discipline
// claim (DESIGN.md §9): after warmup, a repeated EmbedWith call of the
// same shape performs zero heap allocations end to end — through
// dedup, cache key computation and lookup, sampling, time encoding,
// attention and score assembly. Verified both for the instrumented
// baseline (no optimizations) and the full TGOpt configuration.
//
// Warmup runs three times: the first call populates the cache (the
// all-miss slot sequence), the second settles the all-hit sequence,
// and the third confirms the slot capacities converged. AllocsPerRun
// counts allocations on every goroutine, so the test forces serial
// execution.
func TestEngineEmbedSteadyStateAllocs(t *testing.T) {
	old := parallel.Degree()
	parallel.SetDegree(1)
	defer parallel.SetDegree(old)

	ds, m, s := engineTestSetup(t, 500)
	nodes := []int32{1, 2, 3, 1, 26, 30, 7, 12}
	ts := []float64{4e4, 4e4, 3e4, 4e4, 4.5e4, 2e4, 3.5e4, 4.2e4}

	// A 3-layer model exercises the deep-memo dependency recording
	// (target + support indexes, DESIGN.md §15): recording happens only
	// on the miss/store path, so the all-hit steady state must stay
	// allocation-free there too.
	cfg3 := engineTestConfig()
	cfg3.Layers = 3
	m3, err := tgat.NewModel(cfg3, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	tracked := OptAll()
	tracked.TrackTargets = true

	cases := []struct {
		name  string
		model *tgat.Model
		opt   Options
	}{
		{"baseline", m, Options{}},
		{"optall", m, OptAll()},
		{"optall-3layer-tracked", m3, tracked},
	}
	for _, tc := range cases {
		m := tc.model
		eng := NewEngine(m, s, tc.opt)
		ar := tensor.NewArena()
		nb := len(nodes) / 2
		run := func() {
			// The full stream-worker hot path: embed src‖dst targets,
			// split the rows, score the pairs.
			ar.Reset()
			h := eng.EmbedWith(ar, nodes, ts)
			d := h.Dim(1)
			hSrc := ar.Wrap(h.Data()[:nb*d], nb, d)
			hDst := ar.Wrap(h.Data()[nb*d:], nb, d)
			m.ScoreWith(ar, hSrc, hDst)
		}
		for i := 0; i < 3; i++ {
			run()
		}
		if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
			t.Errorf("%s: EmbedWith allocated %v times/op in steady state, want 0", tc.name, allocs)
		}
	}
}

// TestEngineEmbedCompatCopies checks that the allocating Embed wrapper
// returns a tensor that survives arena reuse: the copy must not alias
// pooled arena storage.
func TestEngineEmbedCompatCopies(t *testing.T) {
	_, m, s := engineTestSetup(t, 300)
	eng := NewEngine(m, s, OptAll())
	nodes := []int32{1, 2, 26}
	ts := []float64{4e4, 3e4, 4.5e4}
	h1 := eng.Embed(nodes, ts)
	want := h1.Clone()
	// Churn the pool: a second Embed reuses the pooled arena h1 came from.
	eng.Embed([]int32{3, 7, 12}, []float64{2e4, 3.5e4, 4.2e4})
	if d := h1.MaxAbsDiff(want); d != 0 {
		t.Fatalf("Embed result mutated by later arena reuse (max diff %g)", d)
	}
}
