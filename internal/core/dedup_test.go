package core

import (
	"testing"
	"testing/quick"

	"tgopt/internal/tensor"
)

func TestDedupFilterSimple(t *testing.T) {
	nodes := []int32{5, 7, 5, 9, 7, 5}
	ts := []float64{1, 2, 1, 3, 2, 4}
	res := DedupFilter(nodes, ts)
	// Unique pairs in first-appearance order: (5,1) (7,2) (9,3) (5,4).
	if res.Unique() != 4 {
		t.Fatalf("unique = %d, want 4", res.Unique())
	}
	wantNodes := []int32{5, 7, 9, 5}
	wantTs := []float64{1, 2, 3, 4}
	for i := range wantNodes {
		if res.Nodes[i] != wantNodes[i] || res.Times[i] != wantTs[i] {
			t.Fatalf("unique[%d] = (%d,%v)", i, res.Nodes[i], res.Times[i])
		}
	}
	wantInv := []int32{0, 1, 0, 2, 1, 3}
	for i := range wantInv {
		if res.InvIdx[i] != wantInv[i] {
			t.Fatalf("invIdx[%d] = %d, want %d", i, res.InvIdx[i], wantInv[i])
		}
	}
}

func TestDedupFilterNoDuplicates(t *testing.T) {
	nodes := []int32{1, 2, 3}
	ts := []float64{1, 1, 1}
	res := DedupFilter(nodes, ts)
	if res.Unique() != 3 {
		t.Fatalf("unique = %d", res.Unique())
	}
	for i, v := range res.InvIdx {
		if v != int32(i) {
			t.Fatal("identity inverse expected")
		}
	}
}

func TestDedupFilterEmptyAndMismatch(t *testing.T) {
	res := DedupFilter(nil, nil)
	if res.Unique() != 0 || len(res.InvIdx) != 0 {
		t.Fatal("empty input mishandled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DedupFilter([]int32{1}, nil)
}

func TestDedupInvertRestoresBatch(t *testing.T) {
	nodes := []int32{5, 7, 5, 9, 7}
	ts := []float64{1, 2, 1, 3, 2}
	res := DedupFilter(nodes, ts)
	// Fabricate per-unique-row embeddings: row r filled with value r.
	d := 3
	h := tensor.New(res.Unique(), d)
	for r := 0; r < res.Unique(); r++ {
		for j := 0; j < d; j++ {
			h.Set(float32(r), r, j)
		}
	}
	out := DedupInvert(h, res.InvIdx)
	if out.Dim(0) != 5 || out.Dim(1) != d {
		t.Fatalf("invert shape %v", out.Shape())
	}
	want := []float32{0, 1, 0, 2, 1}
	for i := range want {
		if out.At(i, 0) != want[i] {
			t.Fatalf("invert row %d = %v, want %v", i, out.At(i, 0), want[i])
		}
	}
}

// dedupRoundTripProperty checks, for any batch, that expanding the
// unique rows through the inverse index reproduces each original pair's
// values — the semantics-preservation contract of §4.1.
func dedupRoundTripProperty(t *testing.T, filter func([]int32, []float64) *DedupResult) {
	t.Helper()
	prop := func(seed uint32, nRaw uint8) bool {
		r := tensor.NewRNG(uint64(seed))
		n := int(nRaw)%200 + 1
		nodes := make([]int32, n)
		ts := make([]float64, n)
		for i := range nodes {
			nodes[i] = int32(r.Intn(10)) // force duplicates
			ts[i] = float64(r.Intn(5))
		}
		res := filter(nodes, ts)
		if len(res.InvIdx) != n {
			return false
		}
		// No duplicates among unique pairs.
		seen := map[uint64]bool{}
		for i := range res.Nodes {
			k := Key(res.Nodes[i], res.Times[i])
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		// Inverse maps every original pair to its own value.
		for i := range nodes {
			u := res.InvIdx[i]
			if res.Nodes[u] != nodes[i] || res.Times[u] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupFilterRoundTripProperty(t *testing.T) {
	dedupRoundTripProperty(t, DedupFilter)
}

func TestDedupFilterSortedRoundTripProperty(t *testing.T) {
	dedupRoundTripProperty(t, DedupFilterSorted)
}

func TestDedupStrategiesAgreeOnUniqueCount(t *testing.T) {
	r := tensor.NewRNG(9)
	n := 500
	nodes := make([]int32, n)
	ts := make([]float64, n)
	for i := range nodes {
		nodes[i] = int32(r.Intn(40))
		ts[i] = float64(r.Intn(20))
	}
	a := DedupFilter(nodes, ts)
	b := DedupFilterSorted(nodes, ts)
	if a.Unique() != b.Unique() {
		t.Fatalf("hash dedup %d unique, sorted dedup %d", a.Unique(), b.Unique())
	}
}

func TestDuplicationRatio(t *testing.T) {
	if r := DuplicationRatio([]int32{1, 1, 1, 1}, []float64{0, 0, 0, 0}); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
	if r := DuplicationRatio([]int32{1, 2}, []float64{0, 0}); r != 0 {
		t.Fatalf("ratio = %v, want 0", r)
	}
	if DuplicationRatio(nil, nil) != 0 {
		t.Fatal("empty ratio should be 0")
	}
	// Same node at different times is NOT a duplicate (§3.1's rule).
	if r := DuplicationRatio([]int32{1, 1}, []float64{0, 1}); r != 0 {
		t.Fatalf("time-distinct pairs deduplicated: %v", r)
	}
}

func TestNodeDuplicationRatio(t *testing.T) {
	// Layer-0 rule: timestamps ignored.
	if r := NodeDuplicationRatio([]int32{1, 1, 2}); r < 0.33 || r > 0.34 {
		t.Fatalf("node ratio = %v", r)
	}
	if NodeDuplicationRatio(nil) != 0 {
		t.Fatal("empty node ratio should be 0")
	}
}
