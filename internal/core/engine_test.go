package core

import (
	"testing"
	"testing/quick"
	"tgopt/internal/tensor"

	"tgopt/internal/dataset"
	"tgopt/internal/device"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tgat"
)

func engineTestConfig() tgat.Config {
	return tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 7}
}

func engineTestSetup(t *testing.T, edges int) (*dataset.Dataset, *tgat.Model, *graph.Sampler) {
	t.Helper()
	spec := dataset.Spec{
		Name: "eng", Bipartite: true, Users: 25, Items: 12, Edges: edges,
		MaxTime: 5e4, Repeat: 0.6, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 21,
	}
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: 16, RandomNodeFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tgat.NewModel(engineTestConfig(), ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	return ds, m, s
}

// TestEngineSemanticsPreservation is the central correctness claim of
// the paper (§4, §5.1.3): for every combination of optimizations, the
// engine's embeddings over a full chronological inference pass equal the
// baseline's within 1e-5. With our deterministic arithmetic the match
// is in fact exact, but we assert the paper's published tolerance.
func TestEngineSemanticsPreservation(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)
	baseline := tgat.StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	combos := []Options{
		{},
		{EnableDedup: true},
		{EnableCache: true},
		{EnableTimePrecompute: true},
		{EnableDedup: true, EnableCache: true},
		{EnableCache: true, EnableTimePrecompute: true},
		{EnableDedup: true, EnableTimePrecompute: true},
		OptAll(),
	}
	for _, opt := range combos {
		opt := opt
		eng := NewEngine(m, s, opt)
		got := tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
		if len(got.Scores) != len(baseline.Scores) {
			t.Fatalf("opts %+v: score count %d vs %d", opt, len(got.Scores), len(baseline.Scores))
		}
		for i := range got.Scores {
			diff := got.Scores[i] - baseline.Scores[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-5 {
				t.Fatalf("opts {dedup:%v cache:%v time:%v}: score %d differs by %g",
					opt.EnableDedup, opt.EnableCache, opt.EnableTimePrecompute, i, diff)
			}
		}
	}
}

func TestEngineEmbeddingEquivalenceExact(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	eng := NewEngine(m, s, OptAll())
	// Warm the cache with one pass, then compare embeddings directly on
	// arbitrary repeated targets.
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	nodes := []int32{1, 2, 3, 1, 26, 30}
	ts := []float64{4e4, 4e4, 3e4, 4e4, 4.5e4, 2e4}
	want := m.Embed(s, nodes, ts, nil)
	got := eng.Embed(nodes, ts)
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
	}
	if d := got.MaxAbsDiff(want); d > 1e-5 {
		t.Fatalf("warm-cache embeddings differ by %g", d)
	}
}

func TestEngineCachePopulatesAndHits(t *testing.T) {
	ds, m, s := engineTestSetup(t, 500)
	hr := stats.NewHitRate(10)
	col := stats.NewCollector()
	opt := OptAll()
	opt.HitRate = hr
	opt.Collector = col
	eng := NewEngine(m, s, opt)
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	if eng.CacheLen() == 0 {
		t.Fatal("cache empty after a full pass")
	}
	if eng.CacheBytes() <= 0 {
		t.Fatal("cache bytes not positive")
	}
	if hr.Average() <= 0 {
		t.Fatal("no cache hits recorded on a repetitive dataset")
	}
	if col.Counter("cache_hits") == 0 || col.Counter("cache_lookups") == 0 {
		t.Fatal("hit counters not recorded")
	}
	if col.Duration(stats.OpCacheLookup) <= 0 || col.Duration(stats.OpCacheStore) <= 0 {
		t.Fatal("cache op timings missing")
	}
	// Only layer 1 of a 2-layer model is cached (§4.2.2).
	if eng.CacheFor(2) != nil {
		t.Fatal("top layer has a cache")
	}
	if eng.CacheFor(1) == nil {
		t.Fatal("layer 1 cache missing")
	}
	if eng.CacheFor(0) != nil || eng.CacheFor(99) != nil {
		t.Fatal("out-of-range CacheFor not nil")
	}
}

func TestEngineHitRateGrowsOverTime(t *testing.T) {
	ds, m, s := engineTestSetup(t, 1500)
	hr := stats.NewHitRate(10)
	opt := OptAll()
	opt.HitRate = hr
	eng := NewEngine(m, s, opt)
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	w := hr.Windowed()
	if len(w) < 4 {
		t.Fatalf("too few batches recorded: %d", len(w))
	}
	early := w[1]
	late := w[len(w)-1]
	if late <= early {
		t.Fatalf("hit rate did not grow: early=%v late=%v", early, late)
	}
}

func TestEngineBaselineModeMatchesModelEmbed(t *testing.T) {
	// Engine with zero options must reproduce the baseline exactly: this
	// is what the experiments use as the instrumented baseline.
	ds, m, s := engineTestSetup(t, 300)
	eng := NewEngine(m, s, Options{})
	nodes := []int32{1, 5, 9, 5}
	ts := []float64{2e4, 2e4, 3e4, 2e4}
	got := eng.Embed(nodes, ts)
	want := m.Embed(s, nodes, ts, nil)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("no-opt engine differs from baseline by %g", d)
	}
	_ = ds
}

func TestEngineDedupOnlyExactMatch(t *testing.T) {
	ds, m, s := engineTestSetup(t, 300)
	eng := NewEngine(m, s, Options{EnableDedup: true})
	// A batch with heavy duplication.
	nodes := []int32{3, 3, 3, 7, 7, 3}
	ts := []float64{1e4, 1e4, 1e4, 2e4, 2e4, 1e4}
	got := eng.Embed(nodes, ts)
	want := m.Embed(s, nodes, ts, nil)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("dedup engine differs by %g", d)
	}
	// Duplicate rows must be byte-identical to each other.
	for j := 0; j < 16; j++ {
		if got.At(0, j) != got.At(1, j) || got.At(0, j) != got.At(5, j) {
			t.Fatal("duplicated targets received different embeddings")
		}
	}
	_ = ds
}

func TestEngineValidation(t *testing.T) {
	ds, m, _ := engineTestSetup(t, 200)
	// Uniform sampler with cache must panic.
	us := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.Uniform, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("uniform sampler + cache accepted")
			}
		}()
		NewEngine(m, us, OptAll())
	}()
	// Sampler k mismatch must panic.
	ks := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors+3, graph.MostRecent, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k mismatch accepted")
			}
		}()
		NewEngine(m, ks, Options{})
	}()
	// Mismatched input lengths panic.
	s := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	eng := NewEngine(m, s, Options{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch accepted")
			}
		}()
		eng.Embed([]int32{1}, nil)
	}()
	// Uniform sampler WITHOUT cache is fine (dedup/precompute remain sound).
	NewEngine(m, us, Options{EnableDedup: true, EnableTimePrecompute: true})
}

func TestEngineOptionsDefaults(t *testing.T) {
	ds, m, s := engineTestSetup(t, 200)
	eng := NewEngine(m, s, Options{EnableCache: true, EnableTimePrecompute: true})
	if eng.Options().CacheLimit != 2_000_000 || eng.Options().TimeWindow != 10_000 {
		t.Fatalf("defaults not applied: %+v", eng.Options())
	}
	if eng.TimeTable() == nil || eng.TimeTable().Window() != 10_000 {
		t.Fatal("time table not built with defaults")
	}
	if eng.Model() != m {
		t.Fatal("Model accessor wrong")
	}
	_ = ds
}

func TestEngineCacheLimitRespected(t *testing.T) {
	ds, m, s := engineTestSetup(t, 800)
	opt := OptAll()
	opt.CacheLimit = 32
	opt.CacheShards = 4
	eng := NewEngine(m, s, opt)
	res := tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	if eng.CacheLen() > 32+4 {
		t.Fatalf("cache size %d exceeds limit 32", eng.CacheLen())
	}
	// Even with a tiny cache the results stay correct.
	baseline := tgat.StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	for i := range res.Scores {
		d := res.Scores[i] - baseline.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("tiny-cache score %d differs by %g", i, d)
		}
	}
}

func TestEngineSingleLayerModelCachesItsLayer(t *testing.T) {
	ds, _, _ := engineTestSetup(t, 200)
	cfg := engineTestConfig()
	cfg.Layers = 1
	m, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	eng := NewEngine(m, s, OptAll())
	if eng.CacheFor(1) == nil {
		t.Fatal("single-layer model got no cache at all")
	}
	baseline := tgat.StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	got := tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	for i := range got.Scores {
		d := got.Scores[i] - baseline.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("1-layer score %d differs by %g", i, d)
		}
	}
}

func TestEngineStageStats(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	eng := NewEngine(m, s, OptAll())
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	hs := eng.StageStats()
	if len(hs) != len(Stages) {
		t.Fatalf("StageStats has %d stages, want %d", len(hs), len(Stages))
	}
	// Every stage of a fully-optimized run must have been exercised.
	for _, st := range Stages {
		h := hs[st]
		if h == nil {
			t.Fatalf("stage %q missing", st)
		}
		if h.Count() == 0 {
			t.Fatalf("stage %q recorded no observations", st)
		}
		if h.Sum() < 0 || h.Quantile(0.99) < h.Quantile(0.5) {
			t.Fatalf("stage %q histogram inconsistent", st)
		}
	}
	// A baseline engine (no dedup/cache) still times sampling, time
	// encoding, and attention, but never the cache stages.
	base := NewEngine(m, s, Options{})
	tgat.StreamInference(ds.Graph, m, 100, base.EmbedFunc())
	bs := base.StageStats()
	for _, st := range []string{StageSample, StageTimeEncode, StageAttention} {
		if bs[st].Count() == 0 {
			t.Fatalf("baseline stage %q recorded nothing", st)
		}
	}
	for _, st := range []string{StageDedup, StageCacheLookup, StageCacheStore} {
		if bs[st].Count() != 0 {
			t.Fatalf("baseline stage %q unexpectedly recorded %d", st, bs[st].Count())
		}
	}
}

func TestEngineDeviceSimAccountsTransfers(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	col := stats.NewCollector()
	sim := device.NewSim(device.DefaultCostModel())
	opt := OptAll()
	opt.Collector = col
	opt.Device = sim
	eng := NewEngine(m, s, opt)
	tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
	x := sim.Transfers()
	if x[device.HtoD].Bytes == 0 {
		t.Fatal("host-resident cache produced no HtoD traffic")
	}
	if x[device.DtoH].Bytes == 0 {
		t.Fatal("cache stores produced no DtoH traffic")
	}
	if col.Total() <= 0 {
		t.Fatal("no simulated time accumulated")
	}
}

func TestEngineCacheOnDeviceDtoDDominates(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)

	run := func(onDevice bool) [3]device.Transfer {
		sim := device.NewSim(device.DefaultCostModel())
		opt := OptAll()
		opt.Collector = stats.NewCollector()
		opt.Device = sim
		opt.CacheOnDevice = onDevice
		eng := NewEngine(m, s, opt)
		tgat.StreamInference(ds.Graph, m, 100, eng.EmbedFunc())
		return sim.Transfers()
	}
	host := run(false)
	dev := run(true)
	if host[device.DtoD].Time >= host[device.HtoD].Time {
		t.Fatalf("host-resident cache: DtoD (%v) should be below HtoD (%v)",
			host[device.DtoD].Time, host[device.HtoD].Time)
	}
	// Table 5's shape: storing on device makes DtoD the dominant mover.
	if dev[device.DtoD].Time <= host[device.DtoD].Time {
		t.Fatalf("device-resident cache did not raise DtoD time: %v vs %v",
			dev[device.DtoD].Time, host[device.DtoD].Time)
	}
	if dev[device.DtoD].Calls <= host[device.DtoD].Calls {
		t.Fatal("device-resident cache should issue many small DtoD copies")
	}
}

// TestEngineEquivalencePropertyRandomGraphs drives the semantics-
// preservation guarantee across randomly shaped graphs, not just the
// synthetic generators: random topology, timestamps with collisions,
// and random model seeds.
func TestEngineEquivalencePropertyRandomGraphs(t *testing.T) {
	prop := func(seed uint32) bool {
		r := tensor.NewRNG(uint64(seed))
		n := 5 + r.Intn(20)
		mEdges := 30 + r.Intn(200)
		edges := make([]graph.Edge, 0, mEdges)
		for len(edges) < mEdges {
			src := int32(1 + r.Intn(n))
			dst := int32(1 + r.Intn(n))
			if src == dst {
				continue
			}
			edges = append(edges, graph.Edge{
				Src: src, Dst: dst,
				Time: float64(r.Intn(500)), // deliberate timestamp collisions
			})
		}
		g, err := graph.NewGraph(n, edges)
		if err != nil {
			return false
		}
		d := 8
		nodeFeat := tensor.Randn(r, n+1, d)
		edgeFeat := tensor.Randn(r, mEdges+1, d)
		for j := 0; j < d; j++ {
			nodeFeat.Set(0, 0, j)
			edgeFeat.Set(0, 0, j)
		}
		cfg := tgat.Config{
			Layers: 1 + r.Intn(2), Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d,
			NumNeighbors: 1 + r.Intn(6), Seed: uint64(seed) + 1,
		}
		m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
		if err != nil {
			return false
		}
		s := graph.NewSampler(g, cfg.NumNeighbors, graph.MostRecent, 0)
		opt := OptAll()
		opt.CacheLimit = 1 + r.Intn(500) // random pressure, incl. tiny caches
		eng := NewEngine(m, s, opt)
		base := tgat.StreamInference(g, m, 50, m.BaselineEmbedFunc(s))
		got := tgat.StreamInference(g, m, 50, eng.EmbedFunc())
		for i := range base.Scores {
			diff := base.Scores[i] - got.Scores[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEdgeCases(t *testing.T) {
	ds, m, s := engineTestSetup(t, 200)
	eng := NewEngine(m, s, OptAll())
	// Empty batch.
	h := eng.Embed(nil, nil)
	if h.Dim(0) != 0 {
		t.Fatalf("empty batch produced %d rows", h.Dim(0))
	}
	// Single padding-node target.
	hp := eng.Embed([]int32{0}, []float64{5})
	want := m.Embed(s, []int32{0}, []float64{5}, nil)
	if d := hp.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("padding-node embed differs by %g", d)
	}
	// Batch size exceeding the stream length.
	res := tgat.StreamInference(ds.Graph, m, ds.Graph.NumEdges()*3, eng.EmbedFunc())
	if len(res.Scores) != ds.Graph.NumEdges() || res.Batches != 1 {
		t.Fatalf("oversized batch: %d scores in %d batches", len(res.Scores), res.Batches)
	}
	// Same target repeated at far-future times still matches baseline.
	far := ds.Graph.MaxTime() * 100
	hf := eng.Embed([]int32{1, 1}, []float64{far, far})
	wf := m.Embed(s, []int32{1, 1}, []float64{far, far}, nil)
	if d := hf.MaxAbsDiff(wf); d > 1e-5 {
		t.Fatalf("far-future embed differs by %g", d)
	}
}
