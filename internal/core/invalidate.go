package core

import (
	"sync"
)

// DepTracker records, for every memoized embedding, which node features
// and which edge interactions its computation consumed. It implements
// the §7 future-work direction — supporting node-feature changes and
// edge deletions "in a way that efficiently updates the cache while
// maximizing reuse" — by enabling *selective* invalidation: only the
// embeddings that actually read the changed input are dropped; every
// other cached value keeps being reused.
//
// Scope: dependencies are exact for a cached layer whose inputs are
// layer-0 features — i.e. layer 1, the only cached layer of the paper's
// 2-layer configuration. Deeper cached layers would need transitive
// key-to-key dependencies; Engine handles them conservatively (see
// Engine.InvalidateNode).
type DepTracker struct {
	mu       sync.Mutex
	byNode   map[int32][]uint64
	byEdge   map[int32][]uint64
	recorded int64
}

// NewDepTracker creates an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{
		byNode: make(map[int32][]uint64),
		byEdge: make(map[int32][]uint64),
	}
}

// Record registers that the embedding under key consumed the given
// nodes' features and the given edges' features. Zero ids (padding) are
// skipped.
func (d *DepTracker) Record(key uint64, nodes []int32, edges []int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, v := range nodes {
		if v != 0 {
			d.byNode[v] = append(d.byNode[v], key)
		}
	}
	for _, e := range edges {
		if e != 0 {
			d.byEdge[e] = append(d.byEdge[e], key)
		}
	}
	d.recorded++
}

// KeysForNode returns (and forgets) the keys dependent on node v.
func (d *DepTracker) KeysForNode(v int32) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := d.byNode[v]
	delete(d.byNode, v)
	return keys
}

// KeysForEdge returns (and forgets) the keys dependent on edge e.
func (d *DepTracker) KeysForEdge(e int32) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := d.byEdge[e]
	delete(d.byEdge, e)
	return keys
}

// Recorded returns the number of Record calls (diagnostics).
func (d *DepTracker) Recorded() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recorded
}

// Reset drops all recorded dependencies.
func (d *DepTracker) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byNode = make(map[int32][]uint64)
	d.byEdge = make(map[int32][]uint64)
	d.recorded = 0
}
