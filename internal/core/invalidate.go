package core

import (
	"sync"
)

// DepTracker records, for every memoized embedding, which node features
// and which edge interactions its computation consumed. It implements
// the §7 future-work direction — supporting node-feature changes and
// edge deletions "in a way that efficiently updates the cache while
// maximizing reuse" — by enabling *selective* invalidation: only the
// embeddings that actually read the changed input are dropped; every
// other cached value keeps being reused.
//
// Scope: dependencies are exact for a cached layer whose inputs are
// layer-0 features — i.e. layer 1, the only cached layer of the paper's
// 2-layer configuration. Deeper cached layers would need transitive
// key-to-key dependencies; Engine handles them conservatively (see
// Engine.InvalidateNode).
type DepTracker struct {
	mu       sync.Mutex
	byNode   map[int32][]uint64
	byEdge   map[int32][]uint64
	recorded int64
}

// NewDepTracker creates an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{
		byNode: make(map[int32][]uint64),
		byEdge: make(map[int32][]uint64),
	}
}

// Record registers that the embedding under key consumed the given
// nodes' features and the given edges' features. Zero ids (padding) are
// skipped.
func (d *DepTracker) Record(key uint64, nodes []int32, edges []int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, v := range nodes {
		if v != 0 {
			d.byNode[v] = append(d.byNode[v], key)
		}
	}
	for _, e := range edges {
		if e != 0 {
			d.byEdge[e] = append(d.byEdge[e], key)
		}
	}
	d.recorded++
}

// KeysForNode returns (and forgets) the keys dependent on node v.
func (d *DepTracker) KeysForNode(v int32) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := d.byNode[v]
	delete(d.byNode, v)
	return keys
}

// KeysForEdge returns (and forgets) the keys dependent on edge e.
func (d *DepTracker) KeysForEdge(e int32) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := d.byEdge[e]
	delete(d.byEdge, e)
	return keys
}

// targetIndexShards fixes the TargetIndex lock striping; recording is
// one short critical section per cached entry.
const targetIndexShards = 64

// TargetIndex is the per-node key index behind late-edge invalidation:
// for every node it lists the cache keys memoized *with that node as
// target*, together with their query timestamps. A late edge (u,v,t)
// can only change the sampled neighborhood of targets u and v at times
// after t, so the index turns "which memoized embeddings might now be
// stale?" into two list scans instead of a full cache sweep — targeted
// invalidation rather than Cache.Clear, complementing DepTracker
// (which maps *inputs* to keys and costs k+1 records per entry; this
// index costs one).
//
// Entries whose keys age out of the cache by eviction linger until a
// scan or an occasional prune (Record compacts a node's list against
// the liveness probe as it grows); stale entries are harmless — they
// only cause no-op removes.
type TargetIndex struct {
	alive  func(uint64) bool // liveness probe, prunes evicted keys
	shards [targetIndexShards]targetShard
}

type targetShard struct {
	mu sync.Mutex
	m  map[int32][]keyAt
}

type keyAt struct {
	key uint64
	t   float64
}

// NewTargetIndex creates an empty index. alive reports whether a key is
// still cached; it may be nil (no pruning).
func NewTargetIndex(alive func(uint64) bool) *TargetIndex {
	ix := &TargetIndex{alive: alive}
	for i := range ix.shards {
		ix.shards[i].m = make(map[int32][]keyAt)
	}
	return ix
}

func (ix *TargetIndex) shardFor(v int32) *targetShard {
	h := uint64(uint32(v)) * 0x9E3779B97F4A7C15
	return &ix.shards[(h>>32)%targetIndexShards]
}

// Record registers that key memoizes node v's embedding at time t.
func (ix *TargetIndex) Record(v int32, key uint64, t float64) {
	if v == 0 {
		return
	}
	s := ix.shardFor(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	list := append(s.m[v], keyAt{key, t})
	// Occasional prune: a hot node's list would otherwise accumulate
	// entries for keys long evicted from the cache.
	if ix.alive != nil && len(list) >= 1024 && len(list)%1024 == 0 {
		w := 0
		for _, ka := range list {
			if ix.alive(ka.key) {
				list[w] = ka
				w++
			}
		}
		list = list[:w]
	}
	s.m[v] = list
}

// CollectNewer removes and returns the keys recorded for node v at
// times strictly after t for which drop returns true (nil drop keeps
// every candidate). Entries at or before t, and candidates drop
// declines, stay indexed.
func (ix *TargetIndex) CollectNewer(v int32, t float64, drop func(key uint64, at float64) bool) []uint64 {
	s := ix.shardFor(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.m[v]
	if len(list) == 0 {
		return nil
	}
	var out []uint64
	w := 0
	for _, ka := range list {
		if ka.t > t && (drop == nil || drop(ka.key, ka.t)) {
			out = append(out, ka.key)
			continue
		}
		list[w] = ka
		w++
	}
	if w == 0 {
		delete(s.m, v)
	} else {
		s.m[v] = list[:w]
	}
	return out
}

// Len returns the number of indexed entries (diagnostics).
func (ix *TargetIndex) Len() int {
	total := 0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.Lock()
		for _, list := range s.m {
			total += len(list)
		}
		s.mu.Unlock()
	}
	return total
}

// Recorded returns the number of Record calls (diagnostics).
func (d *DepTracker) Recorded() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recorded
}

// Reset drops all recorded dependencies.
func (d *DepTracker) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byNode = make(map[int32][]uint64)
	d.byEdge = make(map[int32][]uint64)
	d.recorded = 0
}
