package core

import (
	"tgopt/internal/tensor"
)

// Embedder is the minimal computation surface of a TGOpt engine: a
// fused batch-embedding pass. It is the seam between the engine and
// everything that drives it — the request micro-batcher fuses
// concurrent targets into one EmbedWith call, the shard router
// scatters target groups across per-shard engines, and tests
// substitute controllable fakes. *Engine is the production
// implementation; implementations must be safe for concurrent calls
// with distinct arenas and must return a (len(nodes), dim) row-major
// tensor whose rows are deterministic functions of the graph state
// (batch composition must not change row values — see DESIGN.md §10).
type Embedder interface {
	// EmbedWith computes temporal embeddings for the ⟨node, time⟩
	// targets, drawing every intermediate from ar (heap when ar is
	// nil). The returned tensor is invalidated by ar.Reset.
	EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor
	// Dim returns the embedding row width.
	Dim() int
}

// Scorer is the link-scoring surface of a model: the affinity head
// over a pair of embedding batches. *tgat.Model is the production
// implementation; the serve layer consumes this interface so a future
// multi-model registry can swap heads without touching handlers.
type Scorer interface {
	ScoreWith(ar *tensor.Arena, hSrc, hDst *tensor.Tensor) *tensor.Tensor
}

var _ Embedder = (*Engine)(nil)

// Dim returns the width of the embedding rows the engine produces.
func (e *Engine) Dim() int { return e.model.Cfg.NodeDim }
