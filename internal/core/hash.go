// Package core implements TGOpt, the paper's contribution: the
// redundancy-aware optimizations for TGAT inference. It provides
//
//   - the collision-free node–timestamp hash and the deduplication
//     filter of §4.1 (Algorithm 2),
//   - the sharded, memory-bounded embedding memoization cache of §4.2
//     with FIFO eviction,
//   - the precomputed time-encoding table of §4.3, and
//   - Engine, the end-to-end redundancy-aware embedding computation of
//     Algorithm 1 — a drop-in replacement for the baseline recursive
//     tgat.Model.Embed whose outputs are identical within
//     floating-point tolerance.
package core

import (
	"tgopt/internal/parallel"
)

// Key packs a 32-bit node id and a 32-bit timestamp into a single
// collision-free 64-bit cache key by bitwise shifting and OR-ing, as
// described in §4.1 of the paper. Timestamps in the supported datasets
// are integral and fit in 32 bits; fractional or out-of-range times are
// truncated to their low 32 bits, which keeps the function total but
// forfeits the collision-free guarantee outside the documented domain.
func Key(node int32, t float64) uint64 {
	return uint64(uint32(node))<<32 | uint64(uint32(int64(t)))
}

// computeKeysParallelThreshold is the batch size above which ComputeKeys
// fans out; each key is independent (§4.2.1).
const computeKeysParallelThreshold = 1024

// ComputeKeys computes the cache key of every ⟨node, t⟩ pair. Pairs are
// independent, so large batches are processed in parallel (§4.2.1).
func ComputeKeys(nodes []int32, ts []float64) []uint64 {
	keys := make([]uint64, len(nodes))
	ComputeKeysInto(keys, nodes, ts)
	return keys
}

// ComputeKeysInto is ComputeKeys writing into a caller-supplied slice of
// length len(nodes) (the engine passes arena scratch).
func ComputeKeysInto(keys []uint64, nodes []int32, ts []float64) {
	if len(keys) != len(nodes) {
		panic("core: ComputeKeysInto keys length mismatch")
	}
	if len(nodes) >= computeKeysParallelThreshold && parallel.Degree() > 1 {
		parallel.ForChunked(len(nodes), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				keys[i] = Key(nodes[i], ts[i])
			}
		})
		return
	}
	for i := range nodes {
		keys[i] = Key(nodes[i], ts[i])
	}
}
