package core

import (
	"math"

	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

// TimeTable is the precomputed time-encoding store of §4.3. Unlike the
// 128-interval lookup table of Zhou et al. (which alters semantics),
// TGOpt precomputes Φ(Δt) exactly for every integral Δt in a contiguous
// window starting at 0, so the Δt value itself indexes a dense tensor
// and the lookup is semantics-preserving. Misses (fractional, negative,
// or beyond-window deltas) fall back to the original computation.
type TimeTable struct {
	enc    *nn.TimeEncoder
	window int
	table  *tensor.Tensor // (window, d)
	phi0   []float32      // Φ(0) row, kept separately for the z_i path
}

// NewTimeTable precomputes the window [0, window) of time encodings.
// The paper uses a 10,000-wide window.
func NewTimeTable(enc *nn.TimeEncoder, window int) *TimeTable {
	if window < 1 {
		panic("core: time table window must be >= 1")
	}
	tt := &TimeTable{enc: enc, window: window}
	dts := make([]float64, window)
	for i := range dts {
		dts[i] = float64(i)
	}
	tt.table = enc.Encode(dts)
	tt.phi0 = make([]float32, enc.Dim())
	copy(tt.phi0, tt.table.Data()[:enc.Dim()])
	return tt
}

// Window returns the precomputed range length.
func (tt *TimeTable) Window() int { return tt.window }

// Dim returns the encoding width d_t.
func (tt *TimeTable) Dim() int { return tt.enc.Dim() }

// EncodeZerosInto fills the n rows of dst with the precomputed Φ(0) —
// the "compute once, reuse indefinitely" optimization for z_i(t) of
// §3.3.
func (tt *TimeTable) EncodeZerosInto(n int, dst *tensor.Tensor) {
	d := tt.Dim()
	data := dst.Data()
	for i := 0; i < n; i++ {
		copy(data[i*d:(i+1)*d], tt.phi0)
	}
}

// EncodeInto fills dst (len(dts), d) with time encodings, copying
// precomputed rows for integral in-window deltas and computing the rest
// with the original encoder. It returns the number of table hits
// (instrumented by the breakdown analysis).
func (tt *TimeTable) EncodeInto(dts []float64, dst *tensor.Tensor) int {
	return tt.EncodeIntoWith(nil, dts, dst)
}

// EncodeIntoWith is EncodeInto drawing the miss-path scratch from ar
// (heap when ar is nil), so a steady-state batch with out-of-window
// deltas still allocates nothing.
func (tt *TimeTable) EncodeIntoWith(ar *tensor.Arena, dts []float64, dst *tensor.Tensor) int {
	d := tt.Dim()
	data := dst.Data()
	tab := tt.table.Data()
	hitCount := 0
	missIdx := ar.Int32s(len(dts))
	nm := 0
	for i, dt := range dts {
		idx := int(dt)
		if dt >= 0 && float64(idx) == dt && idx < tt.window {
			copy(data[i*d:(i+1)*d], tab[idx*d:(idx+1)*d])
			hitCount++
			continue
		}
		missIdx[nm] = int32(i)
		nm++
	}
	if nm > 0 {
		missDts := ar.Float64s(nm)
		for j, i := range missIdx[:nm] {
			missDts[j] = dts[i]
		}
		missEnc := ar.Tensor(nm, d)
		tt.enc.EncodeInto(missDts, missEnc)
		for j, i := range missIdx[:nm] {
			copy(data[int(i)*d:(int(i)+1)*d], missEnc.Data()[j*d:(j+1)*d])
		}
	}
	return hitCount
}

// Encode is EncodeInto with allocation.
func (tt *TimeTable) Encode(dts []float64) (*tensor.Tensor, int) {
	out := tensor.New(len(dts), tt.Dim())
	hits := tt.EncodeInto(dts, out)
	return out, hits
}

// Bytes returns the memory footprint of the precomputed table.
func (tt *TimeTable) Bytes() int64 { return int64(tt.table.Len()+len(tt.phi0)) * 4 }

// Verify checks that every table row matches a fresh encoder evaluation
// within tol (used by the self-test and property tests).
func (tt *TimeTable) Verify(tol float64) bool {
	d := tt.Dim()
	for i := 0; i < tt.window; i++ {
		fresh := tt.enc.EncodeScalar(float64(i))
		for j := 0; j < d; j++ {
			if math.Abs(float64(tt.table.At(i, j))-float64(fresh.At(j))) > tol {
				return false
			}
		}
	}
	return true
}
