package core

import (
	"math"

	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

// TimeTable is the precomputed time-encoding store of §4.3. Unlike the
// 128-interval lookup table of Zhou et al. (which alters semantics),
// TGOpt precomputes Φ(Δt) exactly for every integral Δt in a contiguous
// window starting at 0, so the Δt value itself indexes a dense tensor
// and the lookup is semantics-preserving. Misses (fractional, negative,
// or beyond-window deltas) fall back to the original computation.
type TimeTable struct {
	enc    *nn.TimeEncoder
	window int
	table  *tensor.Tensor // (window, d); nil in quant mode
	// Quant mode replaces the float table with per-row int8 codes and
	// scales (~4× smaller residency). Rows dequantize on copy-out; Φ(0)
	// stays an exact float row — it is reused on every single target, so
	// its error would be systematic, and keeping it exact is free.
	qtable  []int8    // (window·d) codes, nil in float mode
	qscales []float32 // (window) per-row scales
	phi0    []float32 // Φ(0) row, kept separately for the z_i path
}

// NewTimeTable precomputes the window [0, window) of time encodings.
// The paper uses a 10,000-wide window.
func NewTimeTable(enc *nn.TimeEncoder, window int) *TimeTable {
	return newTimeTable(enc, window, false)
}

// NewTimeTableQuant is NewTimeTable storing the precomputed rows
// int8-quantized (per-row scale), trading ≤ scale/2 per-element error
// for a 4× smaller table. Miss-path encodings stay exact float32.
func NewTimeTableQuant(enc *nn.TimeEncoder, window int) *TimeTable {
	return newTimeTable(enc, window, true)
}

func newTimeTable(enc *nn.TimeEncoder, window int, quant bool) *TimeTable {
	if window < 1 {
		panic("core: time table window must be >= 1")
	}
	tt := &TimeTable{enc: enc, window: window}
	dts := make([]float64, window)
	for i := range dts {
		dts[i] = float64(i)
	}
	full := enc.Encode(dts)
	d := enc.Dim()
	tt.phi0 = make([]float32, d)
	copy(tt.phi0, full.Data()[:d])
	if !quant {
		tt.table = full
		return tt
	}
	tt.qtable = make([]int8, window*d)
	tt.qscales = make([]float32, window)
	for i := 0; i < window; i++ {
		tt.qscales[i] = tensor.QuantizeVecInto(full.Data()[i*d:(i+1)*d], tt.qtable[i*d:(i+1)*d])
	}
	return tt
}

// Quant reports whether the table rows are stored int8-quantized.
func (tt *TimeTable) Quant() bool { return tt.qtable != nil }

// Window returns the precomputed range length.
func (tt *TimeTable) Window() int { return tt.window }

// Dim returns the encoding width d_t.
func (tt *TimeTable) Dim() int { return tt.enc.Dim() }

// EncodeZerosInto fills the n rows of dst with the precomputed Φ(0) —
// the "compute once, reuse indefinitely" optimization for z_i(t) of
// §3.3.
func (tt *TimeTable) EncodeZerosInto(n int, dst *tensor.Tensor) {
	d := tt.Dim()
	data := dst.Data()
	for i := 0; i < n; i++ {
		copy(data[i*d:(i+1)*d], tt.phi0)
	}
}

// EncodeInto fills dst (len(dts), d) with time encodings, copying
// precomputed rows for integral in-window deltas and computing the rest
// with the original encoder. It returns the number of table hits
// (instrumented by the breakdown analysis).
func (tt *TimeTable) EncodeInto(dts []float64, dst *tensor.Tensor) int {
	return tt.EncodeIntoWith(nil, dts, dst)
}

// EncodeIntoWith is EncodeInto drawing the miss-path scratch from ar
// (heap when ar is nil), so a steady-state batch with out-of-window
// deltas still allocates nothing.
func (tt *TimeTable) EncodeIntoWith(ar *tensor.Arena, dts []float64, dst *tensor.Tensor) int {
	d := tt.Dim()
	data := dst.Data()
	hitCount := 0
	missIdx := ar.Int32s(len(dts))
	nm := 0
	if tt.qtable != nil {
		// Quantized rows dequantize on copy-out: one multiply per
		// element instead of a copy, still branch- and allocation-free.
		for i, dt := range dts {
			idx := int(dt)
			if dt >= 0 && float64(idx) == dt && idx < tt.window {
				tensor.DequantizeVecInto(tt.qtable[idx*d:(idx+1)*d], tt.qscales[idx], data[i*d:(i+1)*d])
				hitCount++
				continue
			}
			missIdx[nm] = int32(i)
			nm++
		}
	} else {
		tab := tt.table.Data()
		for i, dt := range dts {
			idx := int(dt)
			if dt >= 0 && float64(idx) == dt && idx < tt.window {
				copy(data[i*d:(i+1)*d], tab[idx*d:(idx+1)*d])
				hitCount++
				continue
			}
			missIdx[nm] = int32(i)
			nm++
		}
	}
	if nm > 0 {
		missDts := ar.Float64s(nm)
		for j, i := range missIdx[:nm] {
			missDts[j] = dts[i]
		}
		missEnc := ar.Tensor(nm, d)
		tt.enc.EncodeInto(missDts, missEnc)
		for j, i := range missIdx[:nm] {
			copy(data[int(i)*d:(int(i)+1)*d], missEnc.Data()[j*d:(j+1)*d])
		}
	}
	return hitCount
}

// Encode is EncodeInto with allocation.
func (tt *TimeTable) Encode(dts []float64) (*tensor.Tensor, int) {
	out := tensor.New(len(dts), tt.Dim())
	hits := tt.EncodeInto(dts, out)
	return out, hits
}

// Bytes returns the memory footprint of the precomputed table.
func (tt *TimeTable) Bytes() int64 {
	if tt.qtable != nil {
		return int64(len(tt.qtable)) + int64(len(tt.qscales)+len(tt.phi0))*4
	}
	return int64(tt.table.Len()+len(tt.phi0)) * 4
}

// Verify checks that every table row matches a fresh encoder evaluation
// within tol (used by the self-test and property tests). In quant mode
// the comparison is against the dequantized row, so tol must absorb the
// quantization step (≤ scale/2 per element).
func (tt *TimeTable) Verify(tol float64) bool {
	d := tt.Dim()
	for i := 0; i < tt.window; i++ {
		fresh := tt.enc.EncodeScalar(float64(i))
		for j := 0; j < d; j++ {
			var got float64
			if tt.qtable != nil {
				got = float64(tt.qscales[i]) * float64(tt.qtable[i*d+j])
			} else {
				got = float64(tt.table.At(i, j))
			}
			if math.Abs(got-float64(fresh.At(j))) > tol {
				return false
			}
		}
	}
	return true
}
