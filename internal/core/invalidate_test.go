package core

import (
	"testing"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func TestDepTrackerRecordAndDrain(t *testing.T) {
	d := NewDepTracker()
	d.Record(101, []int32{1, 2, 0}, []int32{7, 0})
	d.Record(102, []int32{2}, nil)
	if d.Recorded() != 2 {
		t.Fatalf("Recorded = %d", d.Recorded())
	}
	k1 := d.KeysForNode(2)
	if len(k1) != 2 {
		t.Fatalf("node 2 keys = %v", k1)
	}
	// Draining forgets.
	if len(d.KeysForNode(2)) != 0 {
		t.Fatal("KeysForNode did not drain")
	}
	if len(d.KeysForNode(0)) != 0 {
		t.Fatal("padding node recorded")
	}
	if got := d.KeysForEdge(7); len(got) != 1 || got[0] != 101 {
		t.Fatalf("edge 7 keys = %v", got)
	}
	d.Reset()
	if d.Recorded() != 0 || len(d.KeysForNode(1)) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCacheRemove(t *testing.T) {
	c := NewCache(10, 2, 2)
	c.Store([]uint64{1, 2, 3}, tensor.Ones(3, 2))
	if n := c.Remove([]uint64{2, 99}); n != 1 {
		t.Fatalf("Remove returned %d, want 1", n)
	}
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatal("Remove removed the wrong entries")
	}
	// Eviction still works after removals churn the FIFO.
	c2 := NewCache(2, 1, 1)
	c2.Store([]uint64{1, 2}, tensor.Ones(2, 1))
	c2.Remove([]uint64{1})
	c2.Store([]uint64{3}, tensor.Ones(1, 1))
	c2.Store([]uint64{4}, tensor.Ones(1, 1)) // must evict 2 (1 is stale in FIFO)
	if c2.Contains(2) || !c2.Contains(3) || !c2.Contains(4) {
		t.Fatal("eviction confused by removed FIFO entries")
	}
}

// invalidationSetup builds a model over a Dynamic graph with dependency
// tracking enabled and runs one warming pass.
func invalidationSetup(t *testing.T) (*tgat.Model, *graph.Dynamic, *Engine, []graph.Edge) {
	t.Helper()
	r := tensor.NewRNG(5)
	const nodes, total = 25, 600
	stream := make([]graph.Edge, 0, total)
	clock := 0.0
	for len(stream) < total {
		clock += 1 + r.Float64()*10
		src := int32(1 + r.Intn(nodes))
		dst := int32(1 + r.Intn(nodes))
		if src == dst {
			continue
		}
		stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
	}
	nodeFeat := tensor.Randn(r, nodes+1, 16)
	edgeFeat := tensor.Randn(r, total+1, 16)
	for j := 0; j < 16; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 11}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(nodes)
	for _, e := range stream {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	opt := OptAll()
	opt.TrackDependencies = true
	eng := NewEngine(m, graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0), opt)
	// Warm the cache over the whole stream.
	for start := 0; start < total; start += 100 {
		batch := stream[start : start+100]
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		eng.Embed(ns, ts)
	}
	if eng.CacheLen() == 0 || eng.Deps().Recorded() == 0 {
		t.Fatal("warming pass cached nothing / recorded no deps")
	}
	return m, dyn, eng, stream
}

// freshBaseline recomputes embeddings from scratch on the current graph
// state, bypassing every cache.
func freshBaseline(t *testing.T, m *tgat.Model, dyn *graph.Dynamic, ns []int32, ts []float64) *tensor.Tensor {
	t.Helper()
	s := graph.NewDynamicSampler(dyn, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	return m.Embed(s, ns, ts, nil)
}

func TestInvalidateNodeFeatureChange(t *testing.T) {
	m, dyn, eng, stream := invalidationSetup(t)
	victim := stream[100].Src
	queryT := dyn.MaxTime() + 1
	ns := []int32{victim, stream[100].Dst, 1}
	ts := []float64{queryT, queryT, queryT}

	// Sanity: warm engine agrees with fresh baseline before the change.
	if d := eng.Embed(ns, ts).MaxAbsDiff(freshBaseline(t, m, dyn, ns, ts)); d > 1e-5 {
		t.Fatalf("pre-change disagreement %g", d)
	}

	// Mutate the victim's feature row (the §7 node-feature-change event).
	row := m.NodeFeat.Row(int(victim))
	for j := range row {
		row[j] += 3
	}

	// Without invalidation the cache is stale.
	stale := eng.Embed(ns, ts)
	fresh := freshBaseline(t, m, dyn, ns, ts)
	if stale.MaxAbsDiff(fresh) <= 1e-5 {
		t.Fatal("feature change had no effect (test is vacuous)")
	}

	// Selective invalidation restores exactness.
	before := eng.CacheLen()
	removed := eng.InvalidateNode(victim)
	if removed == 0 {
		t.Fatal("nothing invalidated for an active node")
	}
	if eng.CacheLen() != before-removed {
		t.Fatalf("cache len %d, want %d", eng.CacheLen(), before-removed)
	}
	if removed == before {
		t.Fatal("invalidation was not selective (entire cache dropped)")
	}
	got := eng.Embed(ns, ts)
	if d := got.MaxAbsDiff(fresh); d > 1e-5 {
		t.Fatalf("post-invalidation disagreement %g", d)
	}
}

func TestInvalidateEdgeDeletion(t *testing.T) {
	m, dyn, eng, stream := invalidationSetup(t)
	// Pick a mid-stream interaction: those sit inside the most-recent
	// windows of many later cached targets. Probe until one with
	// recorded dependents is found (the probe itself performs the
	// selective invalidation).
	var victim graph.Edge
	removed := 0
	for _, e := range stream[len(stream)/2:] {
		if r := eng.InvalidateEdge(e.Idx); r > 0 {
			victim, removed = e, r
			break
		}
	}
	if removed == 0 {
		t.Fatal("no mid-stream edge had cached dependents")
	}
	if !dyn.DeleteEdge(victim.Idx) {
		t.Fatal("DeleteEdge failed")
	}
	if dyn.DeleteEdge(victim.Idx) {
		t.Fatal("double delete succeeded")
	}
	queryT := dyn.MaxTime() + 1
	ns := []int32{victim.Src, victim.Dst}
	ts := []float64{queryT, queryT}
	fresh := freshBaseline(t, m, dyn, ns, ts)
	got := eng.Embed(ns, ts)
	if d := got.MaxAbsDiff(fresh); d > 1e-5 {
		t.Fatalf("post-deletion disagreement %g", d)
	}
	// Also verify at the timestamps that were actually cached: replay
	// the stream's queries and compare against fresh computation.
	for start := 0; start < len(stream); start += 150 {
		batch := stream[start : start+150]
		bns := make([]int32, 2*len(batch))
		bts := make([]float64, 2*len(batch))
		for i, e := range batch {
			bns[i], bns[len(batch)+i] = e.Src, e.Dst
			bts[i], bts[len(batch)+i] = e.Time, e.Time
		}
		if d := eng.Embed(bns, bts).MaxAbsDiff(freshBaseline(t, m, dyn, bns, bts)); d > 1e-5 {
			t.Fatalf("replay at offset %d disagrees by %g after deletion", start, d)
		}
	}
}

func TestInvalidateEdgeOutsideWindowsPreservesReuse(t *testing.T) {
	// Deleting an interaction that no cached embedding sampled must not
	// drop anything: "maximizing reuse" (§7).
	_, dyn, eng, stream := invalidationSetup(t)
	// Edge 1 is the oldest; busy endpoints' most-recent-5 windows at the
	// times that were cached are very unlikely to still include it —
	// but rather than assume, pick an edge whose deps list is empty.
	var target int32 = -1
	for _, e := range stream[:50] {
		// Peek without draining by checking a copy via KeysForEdge on a
		// cloned id is impossible; instead use an edge and accept either
		// outcome, requiring at least one zero-removal case among the
		// oldest edges.
		if removed := eng.InvalidateEdge(e.Idx); removed == 0 {
			target = e.Idx
			break
		}
	}
	if target == -1 {
		t.Skip("every probed old edge was still inside a cached window")
	}
	if !dyn.DeleteEdge(target) {
		t.Fatal("DeleteEdge failed")
	}
	if eng.CacheLen() == 0 {
		t.Fatal("cache emptied by no-op invalidation")
	}
}

func TestInvalidateRequiresTracking(t *testing.T) {
	ds, m, s := engineTestSetup(t, 200)
	eng := NewEngine(m, s, OptAll())
	_ = ds
	defer func() {
		if recover() == nil {
			t.Fatal("InvalidateNode without tracking did not panic")
		}
	}()
	eng.InvalidateNode(1)
}

func TestInvalidateDeepCachesCleared(t *testing.T) {
	// A 3-layer model caches layers 1 and 2; invalidation must clear the
	// layer-2 cache conservatively.
	ds, _, _ := engineTestSetup(t, 300)
	cfg := engineTestConfig()
	cfg.Layers = 3
	m, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	opt := OptAll()
	opt.TrackDependencies = true
	eng := NewEngine(m, s, opt)
	edges := ds.Graph.Edges()[:60]
	ns := make([]int32, 2*len(edges))
	ts := make([]float64, 2*len(edges))
	for i, e := range edges {
		ns[i], ns[len(edges)+i] = e.Src, e.Dst
		ts[i], ts[len(edges)+i] = e.Time, e.Time
	}
	eng.Embed(ns, ts)
	if eng.CacheFor(2) == nil || eng.CacheFor(2).Len() == 0 {
		t.Fatal("layer-2 cache not populated")
	}
	eng.InvalidateNode(edges[0].Src)
	if eng.CacheFor(2).Len() != 0 {
		t.Fatal("layer-2 cache not conservatively cleared")
	}
}
