package core_test

import (
	"fmt"

	"tgopt/internal/core"
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

// ExampleDedupFilter demonstrates Algorithm 2: duplicate ⟨node, t⟩
// targets collapse to unique pairs, and the inverse index restores the
// original batch shape.
func ExampleDedupFilter() {
	nodes := []int32{7, 9, 7, 7}
	times := []float64{100, 200, 100, 300}
	res := core.DedupFilter(nodes, times)
	fmt.Println("unique:", res.Unique())
	fmt.Println("inverse:", res.InvIdx)

	// Pretend each unique pair produced a 2-wide embedding row.
	h := tensor.FromSlice([]float32{
		1, 1, // ⟨7,100⟩
		2, 2, // ⟨9,200⟩
		3, 3, // ⟨7,300⟩
	}, 3, 2)
	full := core.DedupInvert(h, res.InvIdx)
	fmt.Println("restored rows:", full.Dim(0))
	fmt.Println("row 2 equals row 0:", full.At(2, 0) == full.At(0, 0))
	// Output:
	// unique: 3
	// inverse: [0 1 0 2]
	// restored rows: 4
	// row 2 equals row 0: true
}

// ExampleKey shows the collision-free packing of §4.1.
func ExampleKey() {
	fmt.Printf("%#x\n", core.Key(1, 2))
	fmt.Println(core.Key(1, 2) == core.Key(2, 1))
	// Output:
	// 0x100000002
	// false
}

// ExampleTimeTable shows the §4.3 precomputed window: integral
// in-window deltas are exact table hits, everything else falls back to
// the true computation — so outputs never change.
func ExampleTimeTable() {
	enc := nn.NewTimeEncoder(4)
	table := core.NewTimeTable(enc, 1000)
	out, hits := table.Encode([]float64{0, 42, 999, 1000, 2.5})
	fmt.Println("hits:", hits)
	fmt.Println("exact:", out.AllClose(enc.Encode([]float64{0, 42, 999, 1000, 2.5}), 0))
	// Output:
	// hits: 3
	// exact: true
}

// ExampleCache shows the memoization cache of §4.2: lookups fill hit
// rows and report misses; the FIFO limit bounds memory.
func ExampleCache() {
	cache := core.NewCache(1000, 2, 4)
	keys := []uint64{core.Key(7, 100), core.Key(9, 200)}
	cache.Store(keys, tensor.FromSlice([]float32{1, 1, 2, 2}, 2, 2))

	dst := tensor.New(3, 2)
	hits, n := cache.Lookup([]uint64{keys[1], core.Key(5, 5), keys[0]}, dst)
	fmt.Println("hits:", n, hits)
	fmt.Println("row 0:", dst.At(0, 0))
	// Output:
	// hits: 2 [true false true]
	// row 0: 2
}
