package core

import (
	"sync"
	"sync/atomic"
)

// SupportIndex is the transitive half of deep-layer invalidation
// (DESIGN.md §15). For a cached layer l ≥ 2 it records, under every
// support node s, the layer-l cache keys whose computation aggregated
// s's layer-(l−1) embedding, together with the support's own query time
// t_s — the (node, time) pair identifying the exact lower-layer value
// consumed. One Record per sampled (non-padding) neighbor, so a
// layer-l entry costs at most k support records on top of its one
// TargetIndex record.
//
// Invalidation consults it two ways. CollectWindow answers rule (ii):
// a new edge (u, v, t) displaces the most-recent-k window of a support
// value ⟨s, t_s⟩ with s ∈ {u, v} exactly when fewer than k of s's
// interactions lie strictly between t and t_s — the same CountBetween
// refinement the layer's own TargetIndex uses, applied one hop down.
// CollectUpper answers rule (iii): a lower-layer entry displaced in
// the previous pass (identified by its cache key) drags every upper
// entry that recorded it as a support.
//
// Like TargetIndex, records for keys that age out of the cache linger
// harmlessly (removing an evicted key is a no-op) until the occasional
// liveness prune. Middle layers of deep models (2 ≤ l < top) are built
// with a nil liveness probe instead: their records must outlive
// eviction, because an upper entry may still depend on the evicted
// value (see Engine docs on retention). Those retained lists carry a
// hard per-node cap; a record dropped at the cap sets the shed flag
// and the next invalidation falls back to a conservative deep clear.
type SupportIndex struct {
	alive  func(uint64) bool // nil: retain past eviction (capped)
	shed   atomic.Bool
	shards [targetIndexShards]supportShard
}

type supportShard struct {
	mu sync.Mutex
	m  map[int32][]supportRec
}

type supportRec struct {
	upper uint64  // layer-l cache key of the dependent entry
	st    float64 // the consumed support value's query time
}

// supportNodeCap bounds a retained (nil-alive) node's record list.
// Past it, recording sheds and transitive tracking is declared
// incomplete — invalidation then clears the deep caches whole, which
// is exactly the pre-transitive behavior, so the cap degrades
// gracefully rather than growing without bound on pathological hubs.
const supportNodeCap = 1 << 16

// NewSupportIndex creates an empty index. alive reports whether an
// upper key is still cached and enables pruning; nil retains records
// past eviction under the per-node cap.
func NewSupportIndex(alive func(uint64) bool) *SupportIndex {
	ix := &SupportIndex{alive: alive}
	for i := range ix.shards {
		ix.shards[i].m = make(map[int32][]supportRec)
	}
	return ix
}

func (ix *SupportIndex) shardFor(v int32) *supportShard {
	h := uint64(uint32(v)) * 0x9E3779B97F4A7C15
	return &ix.shards[(h>>32)%targetIndexShards]
}

// Record registers that the layer-l entry under upper consumed the
// support value ⟨s, st⟩. Padding slots (s == 0) are skipped.
func (ix *SupportIndex) Record(s int32, upper uint64, st float64) {
	if s == 0 {
		return
	}
	sh := ix.shardFor(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.m[s]
	if ix.alive == nil && len(list) >= supportNodeCap {
		ix.shed.Store(true)
		return
	}
	list = append(list, supportRec{upper, st})
	if ix.alive != nil && len(list) >= 1024 && len(list)%1024 == 0 {
		w := 0
		for _, r := range list {
			if ix.alive(r.upper) {
				list[w] = r
				w++
			}
		}
		list = list[:w]
	}
	sh.m[s] = list
}

// CollectWindow removes and returns the upper keys recorded under node
// s whose support time lies strictly after t and for which drop
// approves the displacement (nil drop approves everything). Records
// at or before t, and ones drop declines, stay indexed.
func (ix *SupportIndex) CollectWindow(s int32, t float64, drop func(upper uint64, st float64) bool) []uint64 {
	sh := ix.shardFor(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.m[s]
	if len(list) == 0 {
		return nil
	}
	var out []uint64
	w := 0
	for _, r := range list {
		if r.st > t && (drop == nil || drop(r.upper, r.st)) {
			out = append(out, r.upper)
			continue
		}
		list[w] = r
		w++
	}
	if w == 0 {
		delete(sh.m, s)
	} else {
		sh.m[s] = list[:w]
	}
	return out
}

// CollectUpper removes and returns the upper keys that recorded the
// displaced lower-layer entry under cache key lower as a support. The
// support's (node, time) identity is matched through the same Key
// encoding the caches use, so the comparison shares Key's documented
// domain (integral timestamps fitting 32 bits) — outside it the cache
// keying itself already forfeits its guarantees.
func (ix *SupportIndex) CollectUpper(lower uint64) []uint64 {
	s := int32(lower >> 32)
	if s == 0 {
		return nil
	}
	sh := ix.shardFor(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.m[s]
	if len(list) == 0 {
		return nil
	}
	var out []uint64
	w := 0
	for _, r := range list {
		if Key(s, r.st) == lower {
			out = append(out, r.upper)
			continue
		}
		list[w] = r
		w++
	}
	if w == 0 {
		delete(sh.m, s)
	} else {
		sh.m[s] = list[:w]
	}
	return out
}

// Shed reports whether a retained record was ever dropped at the
// per-node cap — the signal that transitive tracking is incomplete and
// invalidation must fall back to the conservative deep clear.
func (ix *SupportIndex) Shed() bool { return ix.shed.Load() }

// Reset drops every record and clears the shed flag. Called after a
// conservative deep clear: the records describe entries that no longer
// exist.
func (ix *SupportIndex) Reset() {
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		sh.m = make(map[int32][]supportRec)
		sh.mu.Unlock()
	}
	ix.shed.Store(false)
}

// Len returns the number of indexed records (diagnostics).
func (ix *SupportIndex) Len() int {
	total := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for _, list := range sh.m {
			total += len(list)
		}
		sh.mu.Unlock()
	}
	return total
}

// Reset drops every record. Called alongside a conservative deep
// clear of the layer this index serves.
func (ix *TargetIndex) Reset() {
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.Lock()
		s.m = make(map[int32][]keyAt)
		s.mu.Unlock()
	}
}
