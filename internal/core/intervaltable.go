package core

import (
	"math"

	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

// IntervalTimeTable is the time-encoding lookup table of Zhou et al.
// (IPDPS 2022, reference [41] of the paper): the Δt range is split into
// a fixed number of intervals (hardcoded to 128 in their design) and
// every delta is encoded as its interval's representative value.
//
// It is implemented here as the related-work comparator the paper
// positions TGOpt against: unlike TGOpt's dense window (§4.3), which
// returns bit-exact encodings for in-window deltas and falls back to
// the true computation otherwise, the interval table *quantizes* —
// every lookup is O(1) but the result differs from Φ(Δt) whenever Δt is
// not exactly a representative, altering model semantics. The accuracy
// tests quantify that difference; the benchmarks compare the cost.
type IntervalTimeTable struct {
	enc       *nn.TimeEncoder
	intervals int
	width     float64        // interval width over [0, maxDelta]
	table     *tensor.Tensor // (intervals, d) encodings of midpoints
}

// NewIntervalTimeTable builds a table of `intervals` buckets covering
// [0, maxDelta]. Zhou et al. use 128 intervals.
func NewIntervalTimeTable(enc *nn.TimeEncoder, intervals int, maxDelta float64) *IntervalTimeTable {
	if intervals < 1 {
		panic("core: interval table needs >= 1 intervals")
	}
	if maxDelta <= 0 {
		panic("core: interval table needs positive maxDelta")
	}
	t := &IntervalTimeTable{
		enc:       enc,
		intervals: intervals,
		width:     maxDelta / float64(intervals),
	}
	mids := make([]float64, intervals)
	for i := range mids {
		mids[i] = (float64(i) + 0.5) * t.width
	}
	t.table = enc.Encode(mids)
	return t
}

// Intervals returns the bucket count.
func (t *IntervalTimeTable) Intervals() int { return t.intervals }

// EncodeInto fills dst (len(dts), d) with quantized encodings. Deltas
// beyond the covered range clamp to the last interval; negative deltas
// clamp to the first. Unlike TimeTable there is no exact-compute
// fallback — that is the point of the comparison.
func (t *IntervalTimeTable) EncodeInto(dts []float64, dst *tensor.Tensor) {
	d := t.enc.Dim()
	tab := t.table.Data()
	for i, dt := range dts {
		idx := int(dt / t.width)
		if idx < 0 {
			idx = 0
		}
		if idx >= t.intervals {
			idx = t.intervals - 1
		}
		copy(dst.Data()[i*d:(i+1)*d], tab[idx*d:(idx+1)*d])
	}
}

// Encode is EncodeInto with allocation.
func (t *IntervalTimeTable) Encode(dts []float64) *tensor.Tensor {
	out := tensor.New(len(dts), t.enc.Dim())
	t.EncodeInto(dts, out)
	return out
}

// QuantizationError returns the mean and max absolute elementwise error
// of the quantized encodings against the exact Φ over the given deltas —
// the semantic drift TGOpt avoids by construction.
func (t *IntervalTimeTable) QuantizationError(dts []float64) (mean, max float64) {
	exact := t.enc.Encode(dts)
	approx := t.Encode(dts)
	var sum float64
	n := exact.Len()
	for i := 0; i < n; i++ {
		e := math.Abs(float64(exact.Data()[i]) - float64(approx.Data()[i]))
		sum += e
		if e > max {
			max = e
		}
	}
	if n > 0 {
		mean = sum / float64(n)
	}
	return mean, max
}
