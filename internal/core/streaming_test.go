package core

import (
	"testing"

	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// TestEngineSoundOnLiveStream exercises the property §3.2 rests on, end
// to end: memoized embeddings stay valid while the graph keeps growing.
// We ingest a stream into a graph.Dynamic in chunks, embedding each
// chunk's interactions as they arrive with a cache-enabled engine, and
// compare every batch against a fresh baseline computed on an immutable
// snapshot of the full stream.
func TestEngineSoundOnLiveStream(t *testing.T) {
	r := tensor.NewRNG(3)
	const nodes = 30
	const total = 900
	// Pre-generate the chronological stream.
	stream := make([]graph.Edge, 0, total)
	clock := 0.0
	for len(stream) < total {
		clock += 1 + r.Float64()*20
		src := int32(1 + r.Intn(nodes))
		dst := int32(1 + r.Intn(nodes))
		if src == dst {
			continue
		}
		stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
	}

	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 7}
	nodeFeat := tensor.Randn(r, nodes+1, 16)
	for j := 0; j < 16; j++ {
		nodeFeat.Set(0, 0, j)
	}
	edgeFeat := tensor.Randn(r, total+1, 16)
	for j := 0; j < 16; j++ {
		edgeFeat.Set(0, 0, j)
	}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}

	dyn := graph.NewDynamic(nodes)
	liveSampler := graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0)
	eng := NewEngine(m, liveSampler, OptAll())

	// Reference: the full stream as an immutable graph.
	full, err := graph.NewGraph(nodes, stream)
	if err != nil {
		t.Fatal(err)
	}
	refSampler := graph.NewSampler(full, cfg.NumNeighbors, graph.MostRecent, 0)

	const chunk = 90
	for start := 0; start < total; start += chunk {
		batch := stream[start : start+chunk]
		// Ingest the chunk, then embed its interactions (each edge's
		// targets are queried at the edge's own timestamp, after it and
		// everything before it has been appended — the standard online
		// inference discipline).
		for _, e := range batch {
			if _, err := dyn.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		ns := make([]int32, 2*len(batch))
		ts := make([]float64, 2*len(batch))
		for i, e := range batch {
			ns[i], ns[len(batch)+i] = e.Src, e.Dst
			ts[i], ts[len(batch)+i] = e.Time, e.Time
		}
		live := eng.Embed(ns, ts)
		ref := m.Embed(refSampler, ns, ts, nil)
		if d := live.MaxAbsDiff(ref); d > 1e-5 {
			t.Fatalf("chunk at %d: live-stream embeddings diverge from reference by %g", start, d)
		}
	}
	if eng.CacheLen() == 0 {
		t.Fatal("no embeddings were memoized during the stream")
	}
}

// TestEngineOnDynamicMatchesSnapshot runs the whole standard inference
// task against a Dynamic-backed sampler and a Graph-backed one and
// demands identical scores.
func TestEngineOnDynamicMatchesSnapshot(t *testing.T) {
	ds, m, s := engineTestSetup(t, 400)
	dyn := graph.NewDynamic(ds.Graph.NumNodes())
	for _, e := range ds.Graph.Edges() {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	dynSampler := graph.NewDynamicSampler(dyn, m.Cfg.NumNeighbors, graph.MostRecent, 0)
	engG := NewEngine(m, s, OptAll())
	engD := NewEngine(m, dynSampler, OptAll())
	a := tgat.StreamInference(ds.Graph, m, 100, engG.EmbedFunc())
	b := tgat.StreamInference(ds.Graph, m, 100, engD.EmbedFunc())
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d differs between Graph and Dynamic backends", i)
		}
	}
}

// TestEngineConcurrentStreamMatchesSerial drives the TGOpt engine (with
// its shared concurrent cache) through the batch-parallel inference
// driver and demands identical scores to the sequential pass.
func TestEngineConcurrentStreamMatchesSerial(t *testing.T) {
	ds, m, s := engineTestSetup(t, 600)
	serial := tgat.StreamInference(ds.Graph, m, 100, m.BaselineEmbedFunc(s))
	eng := NewEngine(m, s, OptAll())
	conc := tgat.StreamInferenceConcurrent(ds.Graph, m, 100, 4, eng.EmbedFunc())
	for i := range serial.Scores {
		d := serial.Scores[i] - conc.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("score %d differs by %g under concurrent TGOpt", i, d)
		}
	}
	if eng.CacheLen() == 0 {
		t.Fatal("concurrent pass cached nothing")
	}
}
