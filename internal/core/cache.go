package core

import (
	"sync"
	"sync/atomic"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// cacheEntryOverhead approximates the per-item bookkeeping bytes beyond
// the embedding payload: the 8-byte key in the map and FIFO ring, the
// slice header, and amortized map bucket space. Used by UsedBytes so the
// reported footprint matches what the paper's Table 3/4 "used cache
// size" measures (their 100,007 × 100-float items report 46.5 MiB ≈
// payload × 1.16).
const cacheEntryOverhead = 64

// EntriesForBudget converts a byte budget into a hot-tier item limit
// for dim-wide float32 entries — the vector payload plus per-item
// bookkeeping, the same accounting UsedBytes reports. Always at least 1.
func EntriesForBudget(budget int64, dim int) int {
	return EntriesForBudgetQuant(budget, dim, false)
}

// EntriesForBudgetQuant is EntriesForBudget for either entry format.
// Int8 entries are roughly 4× smaller, so the same byte budget admits
// roughly 4× the items — the capacity half of the quantization win
// (BENCH_4's hit-rate-at-budget section measures it).
func EntriesForBudgetQuant(budget int64, dim int, quant bool) int {
	n := int(budget / int64(entryCodec{dim: dim, quant: quant}.entryBytes()))
	if n < 1 {
		n = 1
	}
	return n
}

// CacheSplitPolicy selects how a total cache budget (item limit and
// spill bytes) divides across per-layer caches when a deep model
// caches more than one layer.
type CacheSplitPolicy int

const (
	// CacheSplitWeighted (the default) gives layer l a share
	// proportional to k^(top−l): every layer-(l+1) miss fans out into
	// k layer-l lookups, so lower layers see roughly k× the traffic of
	// the layer above and deserve a proportionally larger share of the
	// budget. Dedup and deep hits pull the real ratio below k, but the
	// geometric shape is right and measurably beats the flat split on
	// deep-model hit rate (BENCH_5).
	CacheSplitWeighted CacheSplitPolicy = iota
	// CacheSplitEven restores the flat split: every cached layer gets
	// total/cached — the pre-weighting behavior, kept as an escape
	// hatch for workloads whose reuse concentrates in the deep layers.
	CacheSplitEven
)

// splitWeights returns the relative budget weights for cached layers
// 1..top under the policy (index 0 unused). Weights are floats so a
// large k at depth cannot overflow.
func splitWeights(k, top int, policy CacheSplitPolicy) []float64 {
	w := make([]float64, top+1)
	for l := 1; l <= top; l++ {
		if policy == CacheSplitEven || k < 2 {
			w[l] = 1
			continue
		}
		w[l] = 1
		for i := 0; i < top-l; i++ {
			w[l] *= float64(k)
		}
	}
	return w
}

// SplitCacheLimit divides a total item limit across cached layers
// 1..top (index 0 unused); every cached layer gets at least 1.
func SplitCacheLimit(total, k, top int, policy CacheSplitPolicy) []int {
	w := splitWeights(k, top, policy)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	per := make([]int, top+1)
	for l := 1; l <= top; l++ {
		per[l] = int(float64(total) * w[l] / sum)
		if per[l] < 1 {
			per[l] = 1
		}
	}
	return per
}

// SplitCacheBudget is SplitCacheLimit for byte budgets (the spill
// tier); a non-positive total stays 0 (unbounded) for every layer.
func SplitCacheBudget(total int64, k, top int, policy CacheSplitPolicy) []int64 {
	per := make([]int64, top+1)
	if total <= 0 {
		return per
	}
	w := splitWeights(k, top, policy)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	for l := 1; l <= top; l++ {
		per[l] = int64(float64(total) * w[l] / sum)
		if per[l] < 1 {
			per[l] = 1
		}
	}
	return per
}

// Add accumulates o's counters into s — the shared merge used by the
// engine's cross-layer aggregate and the shard router's cross-shard
// aggregate.
func (s *CacheStats) Add(o CacheStats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.SpillHits += o.SpillHits
	s.Promotes += o.Promotes
	s.PromoteDrops += o.PromoteDrops
	s.AdmitRejected += o.AdmitRejected
	s.Spill.Entries += o.Spill.Entries
	s.Spill.Segments += o.Spill.Segments
	s.Spill.Bytes += o.Spill.Bytes
	s.Spill.Hits += o.Spill.Hits
	s.Spill.Puts += o.Spill.Puts
	s.Spill.SealErrors += o.Spill.SealErrors
	s.Spill.CorruptRecords += o.Spill.CorruptRecords
	s.Spill.CorruptSegments += o.Spill.CorruptSegments
	s.Spill.DroppedSegments += o.Spill.DroppedSegments
	s.Spill.Compactions += o.Spill.Compactions
}

// CachePolicy selects the hot-tier admission/eviction policy.
type CachePolicy int

const (
	// CacheTinyLFU keeps a 4-bit count-min sketch of key frequencies
	// per shard and admits a new entry only when its estimated
	// frequency beats the would-be FIFO victim's. Under skewed reuse
	// (the JODIE-style repeat-consumption of production traffic) this
	// keeps heavy hitters resident where plain FIFO churns them out.
	// The zero value: new engines get TinyLFU unless they opt out.
	CacheTinyLFU CachePolicy = iota
	// CacheFIFO is the original paper policy (§4.2.2): evict strictly
	// oldest-first, admit everything.
	CacheFIFO
)

// CacheConfig configures a memo cache tier stack.
type CacheConfig struct {
	// Limit is the maximum hot-tier item count (required, >= 1).
	Limit int
	// Dim is the embedding width (required, >= 1).
	Dim int
	// Shards is the concurrency sharding degree (<= 0 picks 16;
	// rounded to a power of two and shrunk so each shard holds >= 1).
	Shards int
	// Policy picks the hot-tier eviction policy (default CacheTinyLFU).
	Policy CachePolicy
	// Spill, when set, is the cold tier: entries evicted from (or
	// refused admission to) the hot tier are appended there, hot-tier
	// misses fall through to it, and spill hits are asynchronously
	// promoted back. The cache takes ownership — Cache.Close seals it.
	// Its dim and quant mode must match the cache's.
	Spill *SpillStore
	// Quant stores entries int8-quantized (scale + codes, ~4× smaller)
	// instead of float32. See QuantInt8.
	Quant bool
}

// CacheStats is a point-in-time snapshot of the cache's counters. The
// hot-tier counts are exact: they are taken under the same per-shard
// locks that guard the lookups and stores they count, so
// Lookups == Hits + Misses always holds. SpillHits (spill-tier hits
// among hot-tier misses) never exceeds Misses: every spill hit's miss
// is counted before the spillHits increment, and Stats reads the
// spillHits atomic before sweeping the shards, so the skew between the
// two reads is one-sided.
type CacheStats struct {
	Lookups       int64      `json:"lookups"`
	Hits          int64      `json:"hits"`
	Misses        int64      `json:"misses"`
	SpillHits     int64      `json:"spill_hits"`
	Promotes      int64      `json:"promotes"`
	PromoteDrops  int64      `json:"promote_drops"`
	AdmitRejected int64      `json:"admit_rejected"`
	Spill         SpillStats `json:"spill"`
}

// Cache is the embedding memoization cache of §4.2, grown into a
// two-tier store: a sharded concurrent hash table from 64-bit
// ⟨node, t⟩ keys to embedding vectors (the hot tier, with a global
// item limit enforced per shard under either FIFO or TinyLFU
// admission), optionally backed by an on-disk SpillStore (the cold
// tier) that receives evicted entries and serves hot-tier misses, with
// async promote-on-hit. Sharding keeps Store and Lookup
// parallelizable, mirroring the concurrent hash table of the C++
// implementation.
type Cache struct {
	dim    int
	codec  entryCodec
	shards []cacheShard
	mask   uint64
	limit  int
	policy CachePolicy
	spill  *SpillStore

	// gen invalidation fence: bumped by Remove/Clear before entries
	// leave the tiers, checked by the promote worker under the shard
	// lock, so a promotion raced by an invalidation can never
	// resurrect a removed entry.
	gen atomic.Uint64

	spillHits    atomic.Int64
	promotes     atomic.Int64
	promoteDrops atomic.Int64

	promoteCh chan promoteReq
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type promoteReq struct {
	key uint64
	vec []float32
	gen uint64
}

type cacheShard struct {
	mu    sync.Mutex
	limit int               // this shard's slice of the global limit; Σ limits == Cache.limit
	m     map[uint64][]byte // entryCodec payloads
	fifo  []uint64          // insertion order; head compacts lazily
	head  int
	// dead counts FIFO occurrences orphaned by Remove: re-storing a
	// removed key appends a fresh occurrence, so the old one must be
	// skipped by eviction — not treated as the key's position — or a
	// remove→restore→evict sequence would evict the freshly stored
	// entry (it looks "oldest" through its stale occurrence).
	dead  map[uint64]int
	ndead int
	// sketch is the TinyLFU admission filter (nil under CacheFIFO).
	sketch *freqSketch
	// Hot-tier lookup counters, mutated only under mu so they stay
	// exact with respect to the lookups they count.
	hits          int64
	misses        int64
	admitRejected int64
}

// NewCache creates a FIFO cache for dim-wide embeddings holding at most
// limit items across the given number of shards (rounded up to a power
// of two; <=0 picks a default of 16). It preserves the original paper
// policy exactly — callers wanting TinyLFU admission or the disk tier
// use NewCacheWith. The global limit is enforced exactly: it is
// distributed across the shards — remainder items to the lowest shard
// indices — so the per-shard FIFO limits sum to limit and Len() can
// never settle above Limit(). When limit < shards, the shard count
// shrinks so every shard can hold at least one entry.
func NewCache(limit, dim, shards int) *Cache {
	return NewCacheWith(CacheConfig{Limit: limit, Dim: dim, Shards: shards, Policy: CacheFIFO})
}

// NewCacheWith creates a cache from a full tier configuration.
func NewCacheWith(cfg CacheConfig) *Cache {
	if cfg.Limit < 1 {
		panic("core: cache limit must be >= 1")
	}
	if cfg.Dim < 1 {
		panic("core: cache dim must be >= 1")
	}
	if cfg.Spill != nil && cfg.Spill.codec != (entryCodec{dim: cfg.Dim, quant: cfg.Quant}) {
		panic("core: cache spill dim/quant mismatch")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 16
	}
	ns := 1
	for ns < shards {
		ns *= 2
	}
	for ns > 1 && cfg.Limit < ns {
		ns /= 2
	}
	c := &Cache{
		dim:    cfg.Dim,
		codec:  entryCodec{dim: cfg.Dim, quant: cfg.Quant},
		shards: make([]cacheShard, ns),
		mask:   uint64(ns - 1),
		limit:  cfg.Limit,
		policy: cfg.Policy,
		spill:  cfg.Spill,
	}
	base, rem := cfg.Limit/ns, cfg.Limit%ns
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[uint64][]byte)
		s.limit = base
		if i < rem {
			s.limit++
		}
		if cfg.Policy == CacheTinyLFU {
			s.sketch = newFreqSketch(s.limit)
		}
	}
	if c.spill != nil {
		c.promoteCh = make(chan promoteReq, 256)
		c.stop = make(chan struct{})
		c.wg.Add(1)
		go c.promoteLoop()
	}
	return c
}

// shardFor mixes the key before selecting a shard so that the node-id
// high bits do not bias the distribution.
func (c *Cache) shardFor(key uint64) *cacheShard {
	h := key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return &c.shards[h&c.mask]
}

// Dim returns the embedding width.
func (c *Cache) Dim() int { return c.dim }

// Limit returns the configured maximum hot-tier item count.
func (c *Cache) Limit() int { return c.limit }

// Policy returns the hot-tier eviction policy.
func (c *Cache) Policy() CachePolicy { return c.policy }

// Quant reports whether entries are stored int8-quantized.
func (c *Cache) Quant() bool { return c.codec.quant }

// SpillStore returns the cold tier, or nil.
func (c *Cache) SpillStore() *SpillStore { return c.spill }

// Len returns the current hot-tier item count across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// UsedBytes estimates the resident (hot-tier) footprint of the cached
// embeddings, payload plus bookkeeping overhead. The cold tier's
// on-disk bytes are reported separately via Stats().Spill.Bytes.
func (c *Cache) UsedBytes() int64 {
	return int64(c.Len()) * int64(c.codec.entryBytes())
}

// Stats snapshots the cache counters (see CacheStats for the exactness
// guarantees).
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	// The spillHits atomic is read before the shard sweep: a spill hit's
	// miss is counted (under its shard lock) before spillHits is bumped,
	// so loading spillHits first guarantees every counted spill hit's
	// miss makes the snapshot — SpillHits <= Misses holds.
	st.SpillHits = c.spillHits.Load()
	st.Promotes = c.promotes.Load()
	st.PromoteDrops = c.promoteDrops.Load()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.AdmitRejected += s.admitRejected
		s.mu.Unlock()
	}
	st.Lookups = st.Hits + st.Misses
	if c.spill != nil {
		st.Spill = c.spill.Stats()
	}
	return st
}

// cacheParallelThreshold is the batch size above which Lookup and Store
// fan out across shards-independent chunks.
const cacheParallelThreshold = 2048

// Lookup searches for every key and copies each hit's embedding into the
// corresponding row of dst (shape (len(keys), dim)), leaving miss rows
// untouched. It returns a hit mask and the hit count. The loop
// parallelizes for large batches; distinct keys never contend on the
// same row.
func (c *Cache) Lookup(keys []uint64, dst *tensor.Tensor) ([]bool, int) {
	hits := make([]bool, len(keys))
	n := c.LookupInto(keys, dst, hits)
	return hits, n
}

// LookupInto is Lookup writing the hit mask into a caller-supplied
// slice of length len(keys). Every mask element is written (callers may
// pass dirty arena scratch). Returns the hit count. Hot-tier misses
// fall through to the spill tier when one is configured; a spill hit
// counts toward the returned total (it is a memo hit — the recompute
// is avoided) and queues an async promotion back into the hot tier.
func (c *Cache) LookupInto(keys []uint64, dst *tensor.Tensor, hits []bool) int {
	if dst.Dim(0) != len(keys) || dst.Dim(1) != c.dim {
		panic("core: cache Lookup dst shape mismatch")
	}
	if len(hits) != len(keys) {
		panic("core: cache Lookup hits length mismatch")
	}
	data := dst.Data()
	if len(keys) >= cacheParallelThreshold && parallel.Degree() > 1 {
		var nhits atomic.Int64
		parallel.ForChunked(len(keys), 0, func(lo, hi int) {
			nhits.Add(int64(c.lookupRange(keys, data, hits, lo, hi)))
		})
		return int(nhits.Load())
	}
	return c.lookupRange(keys, data, hits, 0, len(keys))
}

// lookupRange performs lookups for keys [lo,hi), returning the local
// hit count. Hot-tier hit/miss counters are bumped under the shard
// lock; the spill probe runs outside it (disk I/O never blocks a
// shard).
func (c *Cache) lookupRange(keys []uint64, data []float32, hits []bool, lo, hi int) int {
	local := 0
	for i := lo; i < hi; i++ {
		key := keys[i]
		s := c.shardFor(key)
		s.mu.Lock()
		if s.sketch != nil {
			s.sketch.inc(key)
		}
		v, ok := s.m[key]
		if ok {
			c.codec.decode(v, data[i*c.dim:(i+1)*c.dim])
			s.hits++
		} else {
			s.misses++
		}
		s.mu.Unlock()
		if !ok && c.spill != nil {
			// The fence generation is captured BEFORE the spill read: an
			// invalidation (Remove/Clear) that completes anywhere between
			// this load and the promote worker's re-check bumps gen, so
			// the promotion is dropped instead of resurrecting the entry.
			gen := c.gen.Load()
			row := data[i*c.dim : (i+1)*c.dim]
			if c.spill.Get(key, row) {
				ok = true
				c.spillHits.Add(1)
				c.maybePromote(key, row, gen)
			}
		}
		hits[i] = ok
		if ok {
			local++
		}
	}
	return local
}

// maybePromote queues an async promotion of a spill hit back into the
// hot tier. gen is the fence generation the caller loaded before its
// spill read (not loaded here — by now an invalidation may already have
// completed, and a post-invalidation generation would pass the fence
// and resurrect the removed entry). The channel send never blocks the
// serving path: a full queue just drops the promotion (the entry stays
// served from the cold tier).
func (c *Cache) maybePromote(key uint64, vec []float32, gen uint64) {
	if c.promoteCh == nil {
		return
	}
	v := make([]float32, len(vec))
	copy(v, vec)
	select {
	case c.promoteCh <- promoteReq{key: key, vec: v, gen: gen}:
	default:
		c.promoteDrops.Add(1)
	}
}

// promoteLoop is the cold→hot promotion worker.
func (c *Cache) promoteLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case req := <-c.promoteCh:
			c.promoteOne(req)
		}
	}
}

// promoteOne re-inserts a spill hit into the hot tier. The generation
// fence is re-checked under the shard lock: if any invalidation ran
// since the spill read, the promotion is dropped — a removed entry is
// never resurrected. An admission-rejected promotion is simply left in
// the cold tier (it is already there; no re-spill churn).
func (c *Cache) promoteOne(req promoteReq) {
	s := c.shardFor(req.key)
	s.mu.Lock()
	if c.gen.Load() != req.gen {
		s.mu.Unlock()
		c.promoteDrops.Add(1)
		return
	}
	victimKey, victimPayload, admitted := c.insertLocked(s, req.key, req.vec)
	s.mu.Unlock()
	if !admitted {
		c.promoteDrops.Add(1)
		return
	}
	c.promotes.Add(1)
	if victimPayload != nil && c.spill != nil {
		c.spill.putPayload(victimKey, victimPayload)
	}
}

// Store inserts each (key, row of h) pair, evicting the oldest entries
// of overfull shards — subject to TinyLFU admission when that policy is
// active. Rows are copied; h may be reused by the caller. Storing an
// existing key refreshes its value without re-queueing it. Evicted and
// admission-rejected entries cascade into the spill tier when one is
// configured.
func (c *Cache) Store(keys []uint64, h *tensor.Tensor) {
	if h.Dim(0) != len(keys) || h.Dim(1) != c.dim {
		panic("core: cache Store shape mismatch")
	}
	data := h.Data()
	if len(keys) >= cacheParallelThreshold && parallel.Degree() > 1 {
		parallel.ForChunked(len(keys), 0, func(lo, hi int) { c.storeRange(keys, data, lo, hi) })
		return
	}
	c.storeRange(keys, data, 0, len(keys))
}

func (c *Cache) storeRange(keys []uint64, data []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.storeOne(keys[i], data[i*c.dim:(i+1)*c.dim])
	}
}

// storeOne inserts a single entry under the shard's slice of the global
// limit, so the global hot-tier item count never settles above
// Limit(). vec is copied. The displaced entry — the evicted victim, or
// the candidate itself when admission refuses it — is spilled to the
// cold tier after the shard lock is released (spill segment I/O never
// runs under a shard lock).
func (c *Cache) storeOne(key uint64, vec []float32) {
	s := c.shardFor(key)
	s.mu.Lock()
	victimKey, victimPayload, admitted := c.insertLocked(s, key, vec)
	s.mu.Unlock()
	if c.spill == nil {
		return
	}
	if !admitted {
		c.spill.Put(key, vec)
	} else if victimPayload != nil {
		// The evicted payload moves to the cold tier byte-for-byte: the
		// tiers share the entry codec, so no re-encode (and for int8, no
		// second quantization) happens on the demotion path.
		c.spill.putPayload(victimKey, victimPayload)
	}
}

// insertLocked is the single hot-tier insertion point (caller holds
// s.mu). It refreshes existing keys in place, applies TinyLFU
// admission against the would-be victim when the shard is full, and
// returns the displaced victim (nil if none) plus whether key was
// admitted. Frequency is recorded by lookups only (lookupRange incs
// the sketch); counting here too would double-count every miss+store
// access, and a bulk load of never-looked-up keys would age resident
// heavy hitters out of the sketch without a single real access.
func (c *Cache) insertLocked(s *cacheShard, key uint64, vec []float32) (victimKey uint64, victimPayload []byte, admitted bool) {
	if old, ok := s.m[key]; ok {
		c.codec.encode(vec, old)
		return 0, nil, true
	}
	if len(s.m) >= s.limit {
		if s.sketch != nil {
			if victim, ok := s.oldestLocked(); ok && s.sketch.estimate(key) <= s.sketch.estimate(victim) {
				s.admitRejected++
				return 0, nil, false
			}
		}
		victimKey, victimPayload = s.evictOldestLocked()
	}
	v := make([]byte, c.codec.payloadSize())
	c.codec.encode(vec, v)
	s.m[key] = v
	s.fifo = append(s.fifo, key)
	return victimKey, victimPayload, true
}

// oldestLocked peeks at the shard's oldest live entry — the eviction
// victim TinyLFU admission compares against — advancing the head past
// dead and ghost occurrences without consuming the live one.
func (s *cacheShard) oldestLocked() (uint64, bool) {
	for s.head < len(s.fifo) {
		key := s.fifo[s.head]
		if n := s.dead[key]; n > 0 {
			s.markPoppedLocked(key, n)
			s.head++
			continue
		}
		if _, ok := s.m[key]; !ok {
			s.head++
			continue
		}
		return key, true
	}
	return 0, false
}

// evictOldestLocked removes the oldest live entry of the shard,
// skipping dead occurrences left behind by Remove (consuming their
// dead marks) and any key already gone from the map; the head region
// compacts once it grows past half the queue. It returns the evicted
// entry (the cache-owned vector, safe to hand to the spill tier) or ok
// = false when the shard held nothing live.
func (s *cacheShard) evictOldestLocked() (key uint64, payload []byte) {
	for s.head < len(s.fifo) {
		k := s.fifo[s.head]
		s.head++
		if n := s.dead[k]; n > 0 {
			s.markPoppedLocked(k, n)
			continue
		}
		if v, ok := s.m[k]; ok {
			delete(s.m, k)
			key, payload = k, v
			break
		}
	}
	if s.head > len(s.fifo)/2 && s.head > 1024 {
		s.fifo = append(s.fifo[:0], s.fifo[s.head:]...)
		s.head = 0
	}
	return key, payload
}

// markPoppedLocked consumes one dead mark for a key whose stale FIFO
// occurrence was just popped or compacted away.
func (s *cacheShard) markPoppedLocked(key uint64, n int) {
	if n <= 1 {
		delete(s.dead, key)
	} else {
		s.dead[key] = n - 1
	}
	s.ndead--
}

// removeLocked deletes one key, marking its FIFO occurrence dead so a
// later re-store of the same key cannot be mistaken for the old
// occurrence, then compacts the queue if dead occurrences dominate —
// an invalidation storm must not grow the FIFO without bound.
func (s *cacheShard) removeLocked(key uint64) bool {
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	if s.dead == nil {
		s.dead = make(map[uint64]int)
	}
	s.dead[key]++
	s.ndead++
	if s.ndead > 64 && s.ndead > (len(s.fifo)-s.head)/2 {
		s.compactLocked()
	}
	return true
}

// compactLocked rewrites the FIFO without its dead occurrences (and
// the consumed head region), preserving order.
func (s *cacheShard) compactLocked() {
	live := s.fifo[s.head:]
	w := 0
	for _, key := range live {
		if n := s.dead[key]; n > 0 {
			s.markPoppedLocked(key, n)
			continue
		}
		live[w] = key
		w++
	}
	n := copy(s.fifo, live[:w])
	s.fifo = s.fifo[:n]
	s.head = 0
}

// Remove deletes the given keys from both tiers if present and returns
// how many were actually removed (present in at least one tier).
// Removed keys' FIFO occurrences are marked dead (and compacted away
// under churn) so eviction order stays correct if the same keys are
// stored again. The generation fence is bumped first, so in-flight
// promotions of the removed keys are dropped rather than applied.
func (c *Cache) Remove(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	if c.spill != nil {
		c.gen.Add(1)
	}
	removed := 0
	for _, key := range keys {
		s := c.shardFor(key)
		s.mu.Lock()
		ok := s.removeLocked(key)
		s.mu.Unlock()
		if c.spill != nil && c.spill.Remove(key) {
			ok = true
		}
		if ok {
			removed++
		}
	}
	return removed
}

// Clear drops every entry from both tiers (and resets the TinyLFU
// frequency sketches; counters are cumulative and keep counting).
func (c *Cache) Clear() {
	if c.spill != nil {
		c.gen.Add(1)
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[uint64][]byte)
		s.fifo = nil
		s.head = 0
		s.dead = nil
		s.ndead = 0
		if s.sketch != nil {
			s.sketch = newFreqSketch(s.limit)
		}
		s.mu.Unlock()
	}
	if c.spill != nil {
		c.spill.Clear()
	}
}

// SetModelVersion drops every entry from both tiers and stamps the
// spill tier so segments written from now on carry the new model
// version — the invalidation event of a parameter hot-swap. The
// generation fence is bumped by Clear before any entry leaves, so
// in-flight promote-on-hit enqueues of pre-swap entries are dropped
// at the worker's re-check instead of resurrecting old-model rows.
func (c *Cache) SetModelVersion(v uint64) {
	c.Clear()
	if c.spill != nil {
		c.spill.SetModelVersion(v)
	}
}

// Keys returns every resident key across both tiers (no particular
// order, each key once). Used to rebuild derived indexes after a
// snapshot load.
func (c *Cache) Keys() []uint64 {
	out := make([]uint64, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key := range s.m {
			out = append(out, key)
		}
		s.mu.Unlock()
	}
	if c.spill != nil {
		seen := make(map[uint64]struct{}, len(out))
		for _, k := range out {
			seen[k] = struct{}{}
		}
		for _, k := range c.spill.Keys() {
			if _, dup := seen[k]; !dup {
				out = append(out, k)
			}
		}
	}
	return out
}

// Contains reports whether key is resident in either tier. The target
// index uses this as its alive probe, so invalidation reaches spilled
// entries too.
func (c *Cache) Contains(key uint64) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	s.mu.Unlock()
	if !ok && c.spill != nil {
		ok = c.spill.Contains(key)
	}
	return ok
}

// Close stops the promotion worker and seals the spill tier's open
// segment so spilled entries survive a restart. Safe to call more than
// once; a nil-spill cache's Close is a no-op.
func (c *Cache) Close() error {
	var err error
	c.closeOnce.Do(func() {
		if c.stop != nil {
			close(c.stop)
			c.wg.Wait()
		}
		if c.spill != nil {
			err = c.spill.Close()
		}
	})
	return err
}
