package core

import (
	"sync"
	"sync/atomic"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// cacheEntryOverhead approximates the per-item bookkeeping bytes beyond
// the embedding payload: the 8-byte key in the map and FIFO ring, the
// slice header, and amortized map bucket space. Used by UsedBytes so the
// reported footprint matches what the paper's Table 3/4 "used cache
// size" measures (their 100,007 × 100-float items report 46.5 MiB ≈
// payload × 1.16).
const cacheEntryOverhead = 64

// Cache is the embedding memoization cache of §4.2: a sharded concurrent
// hash table from 64-bit ⟨node, t⟩ keys to embedding vectors, with a
// global item limit enforced by per-shard FIFO eviction. Sharding keeps
// Store and Lookup parallelizable, mirroring the concurrent hash table
// of the C++ implementation.
type Cache struct {
	dim    int
	shards []cacheShard
	mask   uint64
	limit  int
}

type cacheShard struct {
	mu    sync.Mutex
	limit int // this shard's slice of the global limit; Σ limits == Cache.limit
	m     map[uint64][]float32
	fifo  []uint64 // insertion order; head compacts lazily
	head  int
	// dead counts FIFO occurrences orphaned by Remove: re-storing a
	// removed key appends a fresh occurrence, so the old one must be
	// skipped by eviction — not treated as the key's position — or a
	// remove→restore→evict sequence would evict the freshly stored
	// entry (it looks "oldest" through its stale occurrence).
	dead  map[uint64]int
	ndead int
}

// NewCache creates a cache for dim-wide embeddings holding at most limit
// items across the given number of shards (rounded up to a power of
// two; <=0 picks a default of 16). The global limit is enforced exactly:
// it is distributed across the shards — remainder items to the lowest
// shard indices — so the per-shard FIFO limits sum to limit and Len()
// can never settle above Limit(). When limit < shards, the shard count
// shrinks so every shard can hold at least one entry.
func NewCache(limit, dim, shards int) *Cache {
	if limit < 1 {
		panic("core: cache limit must be >= 1")
	}
	if dim < 1 {
		panic("core: cache dim must be >= 1")
	}
	if shards <= 0 {
		shards = 16
	}
	ns := 1
	for ns < shards {
		ns *= 2
	}
	for ns > 1 && limit < ns {
		ns /= 2
	}
	c := &Cache{
		dim:    dim,
		shards: make([]cacheShard, ns),
		mask:   uint64(ns - 1),
		limit:  limit,
	}
	base, rem := limit/ns, limit%ns
	for i := range c.shards {
		c.shards[i].m = make(map[uint64][]float32)
		c.shards[i].limit = base
		if i < rem {
			c.shards[i].limit++
		}
	}
	return c
}

// shardFor mixes the key before selecting a shard so that the node-id
// high bits do not bias the distribution.
func (c *Cache) shardFor(key uint64) *cacheShard {
	h := key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return &c.shards[h&c.mask]
}

// Dim returns the embedding width.
func (c *Cache) Dim() int { return c.dim }

// Limit returns the configured maximum item count.
func (c *Cache) Limit() int { return c.limit }

// Len returns the current item count across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// UsedBytes estimates the resident footprint of the cached embeddings,
// payload plus bookkeeping overhead.
func (c *Cache) UsedBytes() int64 {
	return int64(c.Len()) * int64(4*c.dim+cacheEntryOverhead)
}

// cacheParallelThreshold is the batch size above which Lookup and Store
// fan out across shards-independent chunks.
const cacheParallelThreshold = 2048

// Lookup searches for every key and copies each hit's embedding into the
// corresponding row of dst (shape (len(keys), dim)), leaving miss rows
// untouched. It returns a hit mask and the hit count. The loop
// parallelizes for large batches; distinct keys never contend on the
// same row.
func (c *Cache) Lookup(keys []uint64, dst *tensor.Tensor) ([]bool, int) {
	hits := make([]bool, len(keys))
	n := c.LookupInto(keys, dst, hits)
	return hits, n
}

// LookupInto is Lookup writing the hit mask into a caller-supplied
// slice of length len(keys). Every mask element is written (callers may
// pass dirty arena scratch). Returns the hit count.
func (c *Cache) LookupInto(keys []uint64, dst *tensor.Tensor, hits []bool) int {
	if dst.Dim(0) != len(keys) || dst.Dim(1) != c.dim {
		panic("core: cache Lookup dst shape mismatch")
	}
	if len(hits) != len(keys) {
		panic("core: cache Lookup hits length mismatch")
	}
	data := dst.Data()
	if len(keys) >= cacheParallelThreshold && parallel.Degree() > 1 {
		var nhits atomic.Int64
		parallel.ForChunked(len(keys), 0, func(lo, hi int) {
			nhits.Add(int64(c.lookupRange(keys, data, hits, lo, hi)))
		})
		return int(nhits.Load())
	}
	return c.lookupRange(keys, data, hits, 0, len(keys))
}

// lookupRange performs lookups for keys [lo,hi), returning the local
// hit count.
func (c *Cache) lookupRange(keys []uint64, data []float32, hits []bool, lo, hi int) int {
	local := 0
	for i := lo; i < hi; i++ {
		s := c.shardFor(keys[i])
		s.mu.Lock()
		v, ok := s.m[keys[i]]
		if ok {
			copy(data[i*c.dim:(i+1)*c.dim], v)
		}
		s.mu.Unlock()
		hits[i] = ok
		if ok {
			local++
		}
	}
	return local
}

// Store inserts each (key, row of h) pair, evicting the oldest entries
// of overfull shards (FIFO, §4.2.2). Rows are copied; h may be reused by
// the caller. Storing an existing key refreshes its value without
// re-queueing it.
func (c *Cache) Store(keys []uint64, h *tensor.Tensor) {
	if h.Dim(0) != len(keys) || h.Dim(1) != c.dim {
		panic("core: cache Store shape mismatch")
	}
	data := h.Data()
	if len(keys) >= cacheParallelThreshold && parallel.Degree() > 1 {
		parallel.ForChunked(len(keys), 0, func(lo, hi int) { c.storeRange(keys, data, lo, hi) })
		return
	}
	c.storeRange(keys, data, 0, len(keys))
}

func (c *Cache) storeRange(keys []uint64, data []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.storeOne(keys[i], data[i*c.dim:(i+1)*c.dim])
	}
}

// storeOne inserts a single entry under the shard's slice of the global
// limit, evicting the shard's oldest entry first when full, so the
// global item count never settles above Limit(). vec is copied.
func (c *Cache) storeOne(key uint64, vec []float32) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		copy(old, vec)
		return
	}
	if len(s.m) >= s.limit {
		s.evictOldestLocked()
	}
	v := make([]float32, len(vec))
	copy(v, vec)
	s.m[key] = v
	s.fifo = append(s.fifo, key)
}

// evictOldestLocked removes the oldest live entry of the shard,
// skipping dead occurrences left behind by Remove (consuming their
// dead marks) and any key already gone from the map; the head region
// compacts once it grows past half the queue.
func (s *cacheShard) evictOldestLocked() {
	for s.head < len(s.fifo) {
		key := s.fifo[s.head]
		s.head++
		if n := s.dead[key]; n > 0 {
			s.markPoppedLocked(key, n)
			continue
		}
		if _, ok := s.m[key]; ok {
			delete(s.m, key)
			break
		}
	}
	if s.head > len(s.fifo)/2 && s.head > 1024 {
		s.fifo = append(s.fifo[:0], s.fifo[s.head:]...)
		s.head = 0
	}
}

// markPoppedLocked consumes one dead mark for a key whose stale FIFO
// occurrence was just popped or compacted away.
func (s *cacheShard) markPoppedLocked(key uint64, n int) {
	if n <= 1 {
		delete(s.dead, key)
	} else {
		s.dead[key] = n - 1
	}
	s.ndead--
}

// removeLocked deletes one key, marking its FIFO occurrence dead so a
// later re-store of the same key cannot be mistaken for the old
// occurrence, then compacts the queue if dead occurrences dominate —
// an invalidation storm must not grow the FIFO without bound.
func (s *cacheShard) removeLocked(key uint64) bool {
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	if s.dead == nil {
		s.dead = make(map[uint64]int)
	}
	s.dead[key]++
	s.ndead++
	if s.ndead > 64 && s.ndead > (len(s.fifo)-s.head)/2 {
		s.compactLocked()
	}
	return true
}

// compactLocked rewrites the FIFO without its dead occurrences (and
// the consumed head region), preserving order.
func (s *cacheShard) compactLocked() {
	live := s.fifo[s.head:]
	w := 0
	for _, key := range live {
		if n := s.dead[key]; n > 0 {
			s.markPoppedLocked(key, n)
			continue
		}
		live[w] = key
		w++
	}
	n := copy(s.fifo, live[:w])
	s.fifo = s.fifo[:n]
	s.head = 0
}

// Remove deletes the given keys if present and returns how many were
// actually removed. Removed keys' FIFO occurrences are marked dead (and
// compacted away under churn) so eviction order stays correct if the
// same keys are stored again.
func (c *Cache) Remove(keys []uint64) int {
	removed := 0
	for _, key := range keys {
		s := c.shardFor(key)
		s.mu.Lock()
		if s.removeLocked(key) {
			removed++
		}
		s.mu.Unlock()
	}
	return removed
}

// Clear drops every entry.
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[uint64][]float32)
		s.fifo = nil
		s.head = 0
		s.dead = nil
		s.ndead = 0
		s.mu.Unlock()
	}
}

// Keys returns every resident key (no particular order). Used to
// rebuild derived indexes after a snapshot load.
func (c *Cache) Keys() []uint64 {
	out := make([]uint64, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key := range s.m {
			out = append(out, key)
		}
		s.mu.Unlock()
	}
	return out
}

// Contains reports whether key is cached (test helper).
func (c *Cache) Contains(key uint64) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}
