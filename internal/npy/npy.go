// Package npy reads and writes NumPy .npy files (format version 1.0)
// holding little-endian float32 or float64 matrices — the format the
// TGAT artifact uses for its node and edge feature tables
// (ml_{name}.npy, ml_{name}_node.npy). Supporting it lets the real
// datasets drop into this implementation unchanged.
//
// Only C-order (non-Fortran) arrays of rank 1 or 2 are supported, which
// covers every file the artifact ships.
package npy

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"tgopt/internal/tensor"
)

var magic = []byte("\x93NUMPY")

// Write serializes t as a .npy (version 1.0, dtype <f4, C order).
func Write(w io.Writer, t *tensor.Tensor) error {
	if t.Rank() > 2 {
		return fmt.Errorf("npy: rank %d not supported", t.Rank())
	}
	var shape string
	switch t.Rank() {
	case 1:
		shape = fmt.Sprintf("(%d,)", t.Dim(0))
	case 2:
		shape = fmt.Sprintf("(%d, %d)", t.Dim(0), t.Dim(1))
	}
	header := fmt.Sprintf("{'descr': '<f4', 'fortran_order': False, 'shape': %s, }", shape)
	// Total of magic(6)+version(2)+hlen(2)+header must be a multiple of
	// 64; pad with spaces and end with \n.
	total := 6 + 2 + 2 + len(header) + 1
	pad := (64 - total%64) % 64
	header += strings.Repeat(" ", pad) + "\n"

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	if _, err := bw.Write([]byte{1, 0}); err != nil {
		return err
	}
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	if _, err := bw.Write(hlen[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(header); err != nil {
		return err
	}
	buf := make([]byte, 4*t.Len())
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a .npy file into a tensor, converting float64 data to
// float32.
func Read(r io.Reader) (*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if !bytes.Equal(head[:6], magic) {
		return nil, fmt.Errorf("npy: bad magic %q", head[:6])
	}
	major := head[6]
	var hlen int
	switch major {
	case 1:
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, err
		}
		hlen = int(binary.LittleEndian.Uint16(b[:]))
	case 2, 3:
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, err
		}
		hlen = int(binary.LittleEndian.Uint32(b[:]))
	default:
		return nil, fmt.Errorf("npy: unsupported version %d", major)
	}
	// A hostile or corrupt header length would otherwise drive a huge
	// allocation; real headers are well under a kilobyte.
	if hlen > 1<<20 {
		return nil, fmt.Errorf("npy: implausible header length %d", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	descr, fortran, shape, err := parseHeader(string(hdr))
	if err != nil {
		return nil, err
	}
	if fortran {
		return nil, fmt.Errorf("npy: fortran_order arrays not supported")
	}
	var itemSize int
	switch descr {
	case "<f4":
		itemSize = 4
	case "<f8":
		itemSize = 8
	default:
		return nil, fmt.Errorf("npy: unsupported dtype %q", descr)
	}
	n := 1
	for _, d := range shape {
		if d > 1<<28 {
			return nil, fmt.Errorf("npy: implausible dimension %d", d)
		}
		n *= d
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("npy: implausible element count %d", n)
	}
	buf := make([]byte, n*itemSize)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	data := make([]float32, n)
	if itemSize == 4 {
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	} else {
		for i := range data {
			data[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	if len(shape) == 0 {
		shape = []int{1}
	}
	return tensor.FromSlice(data, shape...), nil
}

// parseHeader extracts descr, fortran_order and shape from the Python
// dict literal in the .npy header.
func parseHeader(h string) (descr string, fortran bool, shape []int, err error) {
	descr, err = extractQuoted(h, "'descr':")
	if err != nil {
		return "", false, nil, err
	}
	fo, err := extractToken(h, "'fortran_order':")
	if err != nil {
		return "", false, nil, err
	}
	fortran = strings.HasPrefix(fo, "True")
	sh, err := extractParen(h, "'shape':")
	if err != nil {
		return "", false, nil, err
	}
	for _, part := range strings.Split(sh, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return "", false, nil, fmt.Errorf("npy: bad shape element %q", part)
		}
		if d < 0 {
			return "", false, nil, fmt.Errorf("npy: negative dimension %d", d)
		}
		shape = append(shape, d)
	}
	if len(shape) > 2 {
		return "", false, nil, fmt.Errorf("npy: rank %d not supported", len(shape))
	}
	return descr, fortran, shape, nil
}

func extractQuoted(h, key string) (string, error) {
	i := strings.Index(h, key)
	if i < 0 {
		return "", fmt.Errorf("npy: header missing %s", key)
	}
	rest := h[i+len(key):]
	a := strings.IndexByte(rest, '\'')
	if a < 0 {
		return "", fmt.Errorf("npy: malformed %s", key)
	}
	b := strings.IndexByte(rest[a+1:], '\'')
	if b < 0 {
		return "", fmt.Errorf("npy: malformed %s", key)
	}
	return rest[a+1 : a+1+b], nil
}

func extractToken(h, key string) (string, error) {
	i := strings.Index(h, key)
	if i < 0 {
		return "", fmt.Errorf("npy: header missing %s", key)
	}
	return strings.TrimSpace(h[i+len(key):]), nil
}

func extractParen(h, key string) (string, error) {
	i := strings.Index(h, key)
	if i < 0 {
		return "", fmt.Errorf("npy: header missing %s", key)
	}
	rest := h[i+len(key):]
	a := strings.IndexByte(rest, '(')
	b := strings.IndexByte(rest, ')')
	if a < 0 || b < a {
		return "", fmt.Errorf("npy: malformed %s", key)
	}
	return rest[a+1 : b], nil
}

// WriteFile writes t to path as .npy.
func WriteFile(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a .npy file from path.
func ReadFile(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("npy: reading %s: %w", path, err)
	}
	return t, nil
}
