package npy

import (
	"bytes"
	"testing"

	"tgopt/internal/tensor"
)

// FuzzRead exercises the .npy parser with arbitrary bytes: it must
// never panic, and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and a few near-misses.
	var valid bytes.Buffer
	if err := Write(&valid, tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("\x93NUMPY"))
	f.Add([]byte("\x93NUMPY\x01\x00\x10\x00{'descr': '<f4'}"))
	f.Add([]byte("not numpy at all"))
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid.Bytes()...)
	corrupted[10] ^= 0xFF
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, input []byte) {
		got, err := Read(bytes.NewReader(input))
		if err != nil {
			return
		}
		if got.Rank() > 2 {
			t.Fatalf("accepted rank-%d tensor", got.Rank())
		}
		var buf bytes.Buffer
		if err := Write(&buf, got); err != nil {
			t.Fatalf("cannot re-serialize accepted tensor: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted tensor failed: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatal("round trip changed element count")
		}
	})
}
