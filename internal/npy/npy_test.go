package npy

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"tgopt/internal/tensor"
)

func TestRoundTrip2D(t *testing.T) {
	r := tensor.NewRNG(1)
	orig := tensor.Randn(r, 7, 5)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(orig) {
		t.Fatalf("shape %v, want %v", back.Shape(), orig.Shape())
	}
	if !back.AllClose(orig, 0) {
		t.Fatal("data changed in round trip")
	}
}

func TestRoundTrip1D(t *testing.T) {
	orig := tensor.FromSlice([]float32{1, 2, 3}, 3)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rank() != 1 || back.Dim(0) != 3 || back.At(2) != 3 {
		t.Fatalf("1-D round trip wrong: %v", back)
	}
}

func TestHeaderIsPaddedTo64(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tensor.Ones(2, 2)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	hlen := int(binary.LittleEndian.Uint16(data[8:10]))
	if (10+hlen)%64 != 0 {
		t.Fatalf("header end at %d not 64-aligned", 10+hlen)
	}
	if data[10+hlen-1] != '\n' {
		t.Fatal("header does not end with newline")
	}
	if !strings.Contains(string(data[10:10+hlen]), "'descr': '<f4'") {
		t.Fatalf("header missing dtype: %q", data[10:10+hlen])
	}
}

func TestWriteRejectsRank3(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tensor.Ones(2, 2, 2)); err == nil {
		t.Fatal("rank-3 write accepted")
	}
}

// buildNpy fabricates a .npy byte stream with arbitrary header fields.
func buildNpy(t *testing.T, header string, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(magic)
	buf.Write([]byte{1, 0})
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	buf.Write(hlen[:])
	buf.WriteString(header)
	buf.Write(payload)
	return buf.Bytes()
}

func TestReadFloat64Converts(t *testing.T) {
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint64(payload, math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(-2.25))
	raw := buildNpy(t, "{'descr': '<f8', 'fortran_order': False, 'shape': (2,), }\n", payload)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 1.5 || got.At(1) != -2.25 {
		t.Fatalf("f8 conversion wrong: %v", got.Data())
	}
}

func TestReadRejections(t *testing.T) {
	f4 := make([]byte, 4)
	cases := []struct {
		name string
		raw  []byte
	}{
		{"bad magic", []byte("NOTNUMPY????")},
		{"fortran", buildNpy(t, "{'descr': '<f4', 'fortran_order': True, 'shape': (1,), }\n", f4)},
		{"dtype", buildNpy(t, "{'descr': '<i8', 'fortran_order': False, 'shape': (1,), }\n", make([]byte, 8))},
		{"rank3", buildNpy(t, "{'descr': '<f4', 'fortran_order': False, 'shape': (1, 1, 1), }\n", f4)},
		{"badshape", buildNpy(t, "{'descr': '<f4', 'fortran_order': False, 'shape': (x,), }\n", f4)},
		{"truncated", buildNpy(t, "{'descr': '<f4', 'fortran_order': False, 'shape': (9, 9), }\n", f4)},
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c.raw)); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestReadVersion2Header(t *testing.T) {
	// Version 2.0 uses a 4-byte header length.
	header := "{'descr': '<f4', 'fortran_order': False, 'shape': (1,), }\n"
	var buf bytes.Buffer
	buf.Write(magic)
	buf.Write([]byte{2, 0})
	var hlen [4]byte
	binary.LittleEndian.PutUint32(hlen[:], uint32(len(header)))
	buf.Write(hlen[:])
	buf.WriteString(header)
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, math.Float32bits(7))
	buf.Write(payload)
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 7 {
		t.Fatalf("v2 payload wrong: %v", got.Data())
	}
}

func TestScalarShape(t *testing.T) {
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, math.Float32bits(3))
	raw := buildNpy(t, "{'descr': '<f4', 'fortran_order': False, 'shape': (), }\n", payload)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.At(0) != 3 {
		t.Fatalf("scalar read wrong: %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feat.npy")
	orig := tensor.Randn(tensor.NewRNG(2), 10, 4)
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.AllClose(orig, 0) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
