package nn

import (
	"math"

	"tgopt/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// and {0,1} labels, numerically stable via the log-sum-exp form:
// loss = max(x,0) - x·y + log(1+e^{-|x|}).
func BCEWithLogits(logits *tensor.Tensor, labels []float32) float64 {
	if logits.Len() != len(labels) {
		panic("nn: BCEWithLogits length mismatch")
	}
	var total float64
	for i, x := range logits.Data() {
		xf, y := float64(x), float64(labels[i])
		total += math.Max(xf, 0) - xf*y + math.Log1p(math.Exp(-math.Abs(xf)))
	}
	return total / float64(len(labels))
}

// BCEWithLogitsGrad returns dLoss/dLogits = (sigmoid(x) - y)/n for the
// mean BCE above, used by the trainer to seed backpropagation.
func BCEWithLogitsGrad(logits *tensor.Tensor, labels []float32) *tensor.Tensor {
	n := float32(logits.Len())
	g := tensor.New(logits.Shape()...)
	for i, x := range logits.Data() {
		s := float32(1 / (1 + math.Exp(-float64(x))))
		g.Data()[i] = (s - labels[i]) / n
	}
	return g
}

// AveragePrecision computes the area under the precision–recall curve
// for scores with binary labels — the standard link-prediction metric
// reported for TGAT. Higher scores should indicate positive edges.
func AveragePrecision(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort descending by score (insertion-free: simple sort.Slice clone
	// avoided to keep determinism on ties via index order).
	quicksortByScore(idx, scores)
	var tp, fp int
	var ap float64
	var positives int
	for _, l := range labels {
		if l {
			positives++
		}
	}
	if positives == 0 {
		return 0
	}
	for _, i := range idx {
		if labels[i] {
			tp++
			ap += float64(tp) / float64(tp+fp)
		} else {
			fp++
		}
	}
	return ap / float64(positives)
}

func quicksortByScore(idx []int, scores []float64) {
	if len(idx) < 2 {
		return
	}
	// Simple iterative quicksort on the index slice, descending score,
	// ascending index for ties (deterministic).
	type span struct{ lo, hi int }
	stack := []span{{0, len(idx) - 1}}
	less := func(a, b int) bool {
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := s.lo, s.hi
		for lo < hi {
			p := idx[(lo+hi)/2]
			i, j := lo, hi
			for i <= j {
				for less(idx[i], p) {
					i++
				}
				for less(p, idx[j]) {
					j--
				}
				if i <= j {
					idx[i], idx[j] = idx[j], idx[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				if lo < j {
					stack = append(stack, span{lo, j})
				}
				lo = i
			} else {
				if i < hi {
					stack = append(stack, span{i, hi})
				}
				hi = j
			}
		}
	}
}

// Accuracy computes the fraction of scores classified correctly at a 0.5
// probability threshold, given logit scores.
func Accuracy(logits []float64, labels []bool) float64 {
	if len(logits) == 0 {
		return 0
	}
	correct := 0
	for i, x := range logits {
		if (x > 0) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(logits))
}
