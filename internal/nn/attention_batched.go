package nn

import (
	"fmt"
	"math"

	"tgopt/internal/tensor"
)

// ForwardBatched is an alternative attention kernel built on batched
// matrix multiplication instead of the fused per-target loop of
// Forward. It exists as a kernel ablation (DESIGN.md §6): the batched
// formulation is how a tensor-framework implementation (like the
// original PyTorch TGOpt) expresses attention, paying for operand
// reshuffling into (batch, m, k) layout; the fused loop streams the
// projections in place. Outputs are identical within float tolerance;
// BenchmarkAttentionKernels compares their cost.
func (a *TemporalAttention) ForwardBatched(q, kv *tensor.Tensor, k int, mask []bool) *tensor.Tensor {
	return a.ForwardBatchedWith(nil, q, kv, k, mask)
}

// ForwardBatchedWith is ForwardBatched with every intermediate and the
// output drawn from ar (heap when ar is nil). The result is
// invalidated by ar.Reset.
func (a *TemporalAttention) ForwardBatchedWith(ar *tensor.Arena, q, kv *tensor.Tensor, k int, mask []bool) *tensor.Tensor {
	n := q.Dim(0)
	if kv.Dim(0) != n*k {
		panic(fmt.Sprintf("nn: attention kv rows %d != n*k %d", kv.Dim(0), n*k))
	}
	if len(mask) != n*k {
		panic(fmt.Sprintf("nn: attention mask len %d != n*k %d", len(mask), n*k))
	}
	qp := a.WQ.ForwardWith(ar, q)
	kp := a.WK.ForwardWith(ar, kv)
	vp := a.WV.ForwardWith(ar, kv)
	h := a.Heads
	hd := a.EmbedDim / h
	scale := float32(1 / math.Sqrt(float64(hd)))

	// Repack into (n*h, 1, hd) queries and (n*h, hd, k) transposed keys.
	// Every element is overwritten below, so the uninitialized arena
	// tensors are safe.
	qb := ar.Tensor(n*h, 1, hd)
	kb := ar.Tensor(n*h, hd, k)
	vb := ar.Tensor(n*h, k, hd)
	for i := 0; i < n; i++ {
		for hh := 0; hh < h; hh++ {
			b := i*h + hh
			copy(qb.Data()[b*hd:(b+1)*hd], qp.Data()[i*a.EmbedDim+hh*hd:i*a.EmbedDim+(hh+1)*hd])
			for j := 0; j < k; j++ {
				p := i*k + j
				krow := kp.Data()[p*a.EmbedDim+hh*hd : p*a.EmbedDim+(hh+1)*hd]
				vrow := vp.Data()[p*a.EmbedDim+hh*hd : p*a.EmbedDim+(hh+1)*hd]
				for d := 0; d < hd; d++ {
					kb.Data()[b*hd*k+d*k+j] = krow[d]
				}
				copy(vb.Data()[b*k*hd+j*hd:b*k*hd+(j+1)*hd], vrow)
			}
		}
	}

	// scores: (n*h, 1, k) = qb × kb, then scale + masked softmax (the
	// softmax aliases its input; no extra alpha tensor).
	scores := ar.Tensor(n*h, 1, k)
	tensor.BatchedMatMulInto(qb, kb, scores)
	tensor.ScaleInPlace(scores, scale)
	smask := ar.Bools(n * h * k)
	for i := 0; i < n; i++ {
		for hh := 0; hh < h; hh++ {
			copy(smask[(i*h+hh)*k:(i*h+hh+1)*k], mask[i*k:(i+1)*k])
		}
	}
	tensor.MaskedSoftmaxLastDimInto(scores, smask, scores)

	// Context: (n*h, 1, hd) = α × vb, reassembled to (n, embed). The
	// masked softmax zeroes every padded slot, so α is genuinely sparse
	// for small neighborhoods — the zero-skipping kernel's home turf.
	ctxB := ar.Tensor(n*h, 1, hd)
	tensor.BatchedMatMulSparseInto(scores, vb, ctxB)
	ctx := ar.Tensor(n, a.EmbedDim)
	for i := 0; i < n; i++ {
		for hh := 0; hh < h; hh++ {
			b := i*h + hh
			copy(ctx.Data()[i*a.EmbedDim+hh*hd:i*a.EmbedDim+(hh+1)*hd], ctxB.Data()[b*hd:(b+1)*hd])
		}
	}
	return a.WO.ForwardWith(ar, ctx)
}
