package nn

import (
	"testing"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// TestForwardWithSteadyStateAllocs pins the zero-allocation contract of
// the arena forward passes: once a warmup call has grown the arena's
// slots, repeating the same shapes must not touch the heap.
// AllocsPerRun counts allocations on every goroutine, so the test runs
// serially.
func TestForwardWithSteadyStateAllocs(t *testing.T) {
	old := parallel.Degree()
	parallel.SetDegree(1)
	defer parallel.SetDegree(old)

	r := tensor.NewRNG(11)
	const n, k, qDim, kDim = 8, 5, 16, 24
	attn := NewTemporalAttention(r, 2, qDim, kDim)
	merge := NewMergeLayer(r, attn.EmbedDim, qDim, 32, qDim)
	lin := NewLinear(r, qDim, qDim, true)
	q := tensor.Randn(r, n, qDim)
	kv := tensor.Randn(r, n*k, kDim)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	ar := tensor.NewArena()

	cases := []struct {
		name string
		fn   func()
	}{
		{"attention", func() {
			ar.Reset()
			attn.ForwardWith(ar, q, kv, k, mask)
		}},
		{"attention_batched", func() {
			ar.Reset()
			attn.ForwardBatchedWith(ar, q, kv, k, mask)
		}},
		{"merge_linear", func() {
			ar.Reset()
			h := merge.ForwardWith(ar, q, q)
			lin.ForwardWith(ar, h)
		}},
	}
	for _, tc := range cases {
		tc.fn() // warmup: grow arena slots
		if allocs := testing.AllocsPerRun(10, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
