package nn

import (
	"fmt"
	"math"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// This file holds the int8 inference variants of the forward-only
// layers (DESIGN.md §14). Weights are quantized ONCE, at model load or
// hot swap, into tensor.QuantMat's packed-lane layout; per-request work
// is limited to quantizing activations row-by-row into arena scratch
// and running the packed kernel. The quantized operators mirror the
// float ForwardWith contracts exactly — same shapes, same arena
// discipline, zero steady-state heap allocations — so the engine can
// select a precision per request without touching batch assembly.

// QuantLinear is a Linear whose weight matrix has been pre-quantized to
// the packed int8 layout. The bias stays float32: it is added after
// dequantization, where it is exact.
type QuantLinear struct {
	W *tensor.QuantMat
	B *tensor.Tensor // (out) or nil
}

// QuantizeLinear quantizes l's weights per output row. The returned
// layer shares l's bias tensor (biases are never quantized).
func QuantizeLinear(l *Linear) *QuantLinear {
	return &QuantLinear{W: tensor.QuantizeMat(l.W), B: l.B}
}

// In returns the input dimension.
func (l *QuantLinear) In() int { return l.W.In }

// Out returns the output dimension.
func (l *QuantLinear) Out() int { return l.W.Out }

// Bytes returns the resident size of the quantized weights plus bias.
func (l *QuantLinear) Bytes() int {
	b := l.W.Bytes()
	if l.B != nil {
		b += 4 * l.B.Len()
	}
	return b
}

// quantRows quantizes x's rows into arena scratch and returns the
// packed activation triple consumed by tensor.QuantLinearInto. Callers
// that feed the same activations to several QuantLinears (attention's
// kv into WK and WV) quantize once and reuse the triple.
func quantRows(ar *tensor.Arena, x *tensor.Tensor) (q []uint8, scales []float32, sums []int32) {
	m, k := x.Dim(0), x.Dim(1)
	q = ar.Bytes(m * k)
	scales = ar.Float32s(m)
	sums = ar.Int32s(m)
	tensor.QuantizeRowsInto(x, q, scales, sums)
	return q, scales, sums
}

// ForwardWith computes x·Wᵀ+b through the int8 kernel, with every
// intermediate and the output drawn from ar (heap when ar is nil).
func (l *QuantLinear) ForwardWith(ar *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	q, scales, sums := quantRows(ar, x)
	return l.forwardQuantized(ar, q, scales, sums, x.Dim(0))
}

// forwardQuantized runs the kernel over pre-quantized activations.
func (l *QuantLinear) forwardQuantized(ar *tensor.Arena, q []uint8, scales []float32, sums []int32, m int) *tensor.Tensor {
	dst := ar.Tensor(m, l.Out())
	tensor.QuantLinearInto(q, scales, sums, m, l.W, l.B, dst)
	return dst
}

// QuantMergeLayer is the int8 variant of MergeLayer. The concat and
// ReLU between the two projections stay float32 — they are cheap and
// keeping them exact means the only error sources are the two matmuls.
type QuantMergeLayer struct {
	FC1, FC2 *QuantLinear
}

// QuantizeMergeLayer quantizes both projections of m.
func QuantizeMergeLayer(m *MergeLayer) *QuantMergeLayer {
	return &QuantMergeLayer{FC1: QuantizeLinear(m.FC1), FC2: QuantizeLinear(m.FC2)}
}

// Bytes returns the resident size of both quantized projections.
func (m *QuantMergeLayer) Bytes() int { return m.FC1.Bytes() + m.FC2.Bytes() }

// ForwardWith mirrors MergeLayer.ForwardWith through the int8 kernels.
func (m *QuantMergeLayer) ForwardWith(ar *tensor.Arena, a, b *tensor.Tensor) *tensor.Tensor {
	cat := ar.Tensor(a.Dim(0), a.Dim(1)+b.Dim(1))
	tensor.ConcatColsInto(cat, a, b)
	h := m.FC1.ForwardWith(ar, cat)
	tensor.ReLUInPlace(h)
	return m.FC2.ForwardWith(ar, h)
}

// QuantTemporalAttention is TemporalAttention with all four projections
// quantized. The attention core — scores, softmax, weighted value sum —
// runs in float32 over the dequantized projections via the same
// attnRows loop as the float operator; only the matmuls change. The kv
// activations are quantized once and shared by the WK and WV kernels.
type QuantTemporalAttention struct {
	Heads    int
	EmbedDim int
	QDim     int
	KDim     int

	WQ, WK, WV, WO *QuantLinear
}

// QuantizeAttention quantizes a's projections.
func QuantizeAttention(a *TemporalAttention) *QuantTemporalAttention {
	return &QuantTemporalAttention{
		Heads:    a.Heads,
		EmbedDim: a.EmbedDim,
		QDim:     a.QDim,
		KDim:     a.KDim,
		WQ:       QuantizeLinear(a.WQ),
		WK:       QuantizeLinear(a.WK),
		WV:       QuantizeLinear(a.WV),
		WO:       QuantizeLinear(a.WO),
	}
}

// Bytes returns the resident size of all four quantized projections.
func (a *QuantTemporalAttention) Bytes() int {
	return a.WQ.Bytes() + a.WK.Bytes() + a.WV.Bytes() + a.WO.Bytes()
}

// ForwardWith mirrors TemporalAttention.ForwardWith: n targets with k
// neighbor slots each, kv row i*k+j is slot j of target i, mask marks
// valid slots. Returns (n, embedDim) drawn from ar.
func (a *QuantTemporalAttention) ForwardWith(ar *tensor.Arena, q, kv *tensor.Tensor, k int, mask []bool) *tensor.Tensor {
	n := q.Dim(0)
	if kv.Dim(0) != n*k {
		panic(fmt.Sprintf("nn: quant attention kv rows %d != n*k %d", kv.Dim(0), n*k))
	}
	if len(mask) != n*k {
		panic(fmt.Sprintf("nn: quant attention mask len %d != n*k %d", len(mask), n*k))
	}
	qp := a.WQ.ForwardWith(ar, q)
	// kv feeds both the key and value projections: quantize its rows
	// once and run two kernels over the shared packed bytes.
	kq, kscales, ksums := quantRows(ar, kv)
	kp := a.WK.forwardQuantized(ar, kq, kscales, ksums, n*k)
	vp := a.WV.forwardQuantized(ar, kq, kscales, ksums, n*k)
	hd := a.EmbedDim / a.Heads
	scale := float32(1 / math.Sqrt(float64(hd)))

	ctx := ar.TensorZero(n, a.EmbedDim)
	scoresAll := ar.Float32s(n * k)

	qd, kd, vd, cd := qp.Data(), kp.Data(), vp.Data(), ctx.Data()
	if n >= parallel.MinParallelWork && parallel.Degree() > 1 {
		heads, embedDim := a.Heads, a.EmbedDim
		parallel.ForChunked(n, 0, func(lo, hi int) {
			attnRows(qd, kd, vd, cd, scoresAll, mask, nil, lo, hi, k, hd, heads, embedDim, scale, false)
		})
	} else {
		attnRows(qd, kd, vd, cd, scoresAll, mask, nil, 0, n, k, hd, a.Heads, a.EmbedDim, scale, false)
	}
	return a.WO.ForwardWith(ar, ctx)
}
