package nn

import (
	"testing"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// maxAbs returns the largest |v| in t.
func maxAbs(t *tensor.Tensor) float32 {
	var m float32
	for _, v := range t.Data() {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// relTol bounds the allowed deviation of a quantized forward pass from
// its float32 twin: a fraction of the float output's dynamic range plus
// a small absolute floor for near-zero outputs.
func relTol(ref *tensor.Tensor, frac float32) float64 {
	return float64(frac*maxAbs(ref)) + 1e-3
}

func TestQuantLinearCloseToFloatLayer(t *testing.T) {
	r := tensor.NewRNG(61)
	lin := NewLinear(r, 48, 24, true)
	ql := QuantizeLinear(lin)
	if ql.In() != 48 || ql.Out() != 24 {
		t.Fatalf("quant linear dims %dx%d, want 48x24", ql.In(), ql.Out())
	}
	if ql.Bytes() <= 0 {
		t.Fatal("quant linear Bytes() not positive")
	}
	x := tensor.Randn(r, 32, 48)
	want := lin.ForwardWith(nil, x)
	got := ql.ForwardWith(nil, x)
	if d := got.MaxAbsDiff(want); d > relTol(want, 0.05) {
		t.Errorf("QuantLinear diff %g exceeds tol %g", d, relTol(want, 0.05))
	}
}

func TestQuantMergeLayerCloseToFloat(t *testing.T) {
	r := tensor.NewRNG(62)
	m := NewMergeLayer(r, 16, 16, 40, 16)
	qm := QuantizeMergeLayer(m)
	a := tensor.Randn(r, 20, 16)
	b := tensor.Randn(r, 20, 16)
	want := m.ForwardWith(nil, a, b)
	got := qm.ForwardWith(nil, a, b)
	// Two stacked quantized matmuls with a ReLU between: errors compound,
	// so the tolerance is looser than the single-layer case.
	if d := got.MaxAbsDiff(want); d > relTol(want, 0.1) {
		t.Errorf("QuantMergeLayer diff %g exceeds tol %g", d, relTol(want, 0.1))
	}
	if qm.Bytes() >= 4*(16+16)*40+4*40*16+4*(40+16) {
		t.Errorf("QuantMergeLayer Bytes() %d not smaller than float weights", qm.Bytes())
	}
}

func TestQuantAttentionCloseToFloat(t *testing.T) {
	r := tensor.NewRNG(63)
	const n, k, qDim, kDim = 12, 7, 16, 24
	attn := NewTemporalAttention(r, 2, qDim, kDim)
	qa := QuantizeAttention(attn)
	q := tensor.Randn(r, n, qDim)
	kv := tensor.Randn(r, n*k, kDim)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	want := attn.ForwardWith(nil, q, kv, k, mask)
	got := qa.ForwardWith(nil, q, kv, k, mask)
	// Four quantized projections around an exact softmax core. The
	// softmax re-normalizes, which damps score perturbations, but the
	// value and output projections contribute directly.
	if d := got.MaxAbsDiff(want); d > relTol(want, 0.15) {
		t.Errorf("QuantTemporalAttention diff %g exceeds tol %g", d, relTol(want, 0.15))
	}
}

func TestQuantAttentionZeroNeighborRows(t *testing.T) {
	r := tensor.NewRNG(64)
	const n, k, qDim, kDim = 4, 3, 8, 10
	attn := NewTemporalAttention(r, 2, qDim, kDim)
	qa := QuantizeAttention(attn)
	q := tensor.Randn(r, n, qDim)
	kv := tensor.Randn(r, n*k, kDim)
	mask := make([]bool, n*k) // all padded: every target is neighbor-less
	want := attn.ForwardWith(nil, q, kv, k, mask)
	got := qa.ForwardWith(nil, q, kv, k, mask)
	// Zero context through WO: outputs are both exactly WO's bias rows.
	if d := got.MaxAbsDiff(want); d > relTol(want, 0.02) {
		t.Errorf("masked-out quant attention diff %g", d)
	}
}

func TestQuantAttentionParallelMatchesSerial(t *testing.T) {
	r := tensor.NewRNG(65)
	const n, k, qDim, kDim = 64, 5, 16, 24
	attn := NewTemporalAttention(r, 2, qDim, kDim)
	qa := QuantizeAttention(attn)
	q := tensor.Randn(r, n, qDim)
	kv := tensor.Randn(r, n*k, kDim)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = i%4 != 1
	}
	par := qa.ForwardWith(nil, q, kv, k, mask)
	prev := parallel.SetDegree(1)
	ser := qa.ForwardWith(nil, q, kv, k, mask)
	parallel.SetDegree(prev)
	if d := par.MaxAbsDiff(ser); d != 0 {
		t.Errorf("parallel vs serial quant attention: diff %g", d)
	}
}

// TestQuantForwardWithSteadyStateAllocs is the int8 twin of
// TestForwardWithSteadyStateAllocs: the quantized arena forward passes
// must be allocation-free once the arena slots are warm.
func TestQuantForwardWithSteadyStateAllocs(t *testing.T) {
	old := parallel.Degree()
	parallel.SetDegree(1)
	defer parallel.SetDegree(old)

	r := tensor.NewRNG(66)
	const n, k, qDim, kDim = 8, 5, 16, 24
	attn := QuantizeAttention(NewTemporalAttention(r, 2, qDim, kDim))
	merge := QuantizeMergeLayer(NewMergeLayer(r, qDim, qDim, 32, qDim))
	lin := QuantizeLinear(NewLinear(r, qDim, qDim, true))
	q := tensor.Randn(r, n, qDim)
	kv := tensor.Randn(r, n*k, kDim)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	ar := tensor.NewArena()

	cases := []struct {
		name string
		fn   func()
	}{
		{"quant_attention", func() {
			ar.Reset()
			attn.ForwardWith(ar, q, kv, k, mask)
		}},
		{"quant_merge_linear", func() {
			ar.Reset()
			h := merge.ForwardWith(ar, q, q)
			lin.ForwardWith(ar, h)
		}},
	}
	for _, tc := range cases {
		tc.fn() // warmup: grow arena slots
		if allocs := testing.AllocsPerRun(10, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
