package nn

import (
	"fmt"
	"math"

	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
)

// TemporalAttention is the multi-head self-attention operator M of the
// paper (Eqs. 4–6): scaled dot-product attention where the single query
// per target is z_i(t) = h_i ‖ Φ(0) and the keys/values are
// z_j(t) = h_j ‖ e_ij ‖ Φ(t−t_j) over the k sampled temporal neighbors.
//
// The projection layout follows PyTorch's MultiheadAttention with
// distinct kdim/vdim: queries, keys and values are all projected to
// embedDim = qDim and split across heads.
type TemporalAttention struct {
	Heads    int
	EmbedDim int // = qDim; must be divisible by Heads
	QDim     int // node dim + time dim
	KDim     int // node dim + edge dim + time dim

	WQ, WK, WV *Linear // projections into embedDim
	WO         *Linear // output projection embedDim -> embedDim
}

// NewTemporalAttention constructs the attention operator. qDim must be
// divisible by heads.
func NewTemporalAttention(r *tensor.RNG, heads, qDim, kDim int) *TemporalAttention {
	if qDim%heads != 0 {
		panic(fmt.Sprintf("nn: attention qDim %d not divisible by heads %d", qDim, heads))
	}
	return &TemporalAttention{
		Heads:    heads,
		EmbedDim: qDim,
		QDim:     qDim,
		KDim:     kDim,
		WQ:       NewLinear(r, qDim, qDim, true),
		WK:       NewLinear(r, kDim, qDim, true),
		WV:       NewLinear(r, kDim, qDim, true),
		WO:       NewLinear(r, qDim, qDim, true),
	}
}

// Forward computes attention for n targets with k neighbor slots each.
//
//	q:    (n, qDim)   one query row per target
//	kv:   (n*k, kDim) flattened neighbor messages, row i*k+j is slot j of
//	      target i (keys and values coincide in TGAT)
//	mask: len n*k, false marks padded slots
//
// It returns (n, embedDim) and, optionally, the attention weights
// (n, heads, k) when wantWeights is set (used by tests and diagnostics).
// Targets with no valid neighbors receive a zero attention output,
// matching the baseline's masked-softmax behavior.
func (a *TemporalAttention) Forward(q, kv *tensor.Tensor, k int, mask []bool, wantWeights bool) (*tensor.Tensor, *tensor.Tensor) {
	return a.forward(nil, q, kv, k, mask, wantWeights)
}

// ForwardWith is Forward without the optional attention weights, with
// every intermediate and the output drawn from ar (heap when ar is
// nil). The result is invalidated by ar.Reset.
func (a *TemporalAttention) ForwardWith(ar *tensor.Arena, q, kv *tensor.Tensor, k int, mask []bool) *tensor.Tensor {
	out, _ := a.forward(ar, q, kv, k, mask, false)
	return out
}

func (a *TemporalAttention) forward(ar *tensor.Arena, q, kv *tensor.Tensor, k int, mask []bool, wantWeights bool) (*tensor.Tensor, *tensor.Tensor) {
	n := q.Dim(0)
	if kv.Dim(0) != n*k {
		panic(fmt.Sprintf("nn: attention kv rows %d != n*k %d", kv.Dim(0), n*k))
	}
	if len(mask) != n*k {
		panic(fmt.Sprintf("nn: attention mask len %d != n*k %d", len(mask), n*k))
	}
	qp := a.WQ.ForwardWith(ar, q)  // (n, embed)
	kp := a.WK.ForwardWith(ar, kv) // (n*k, embed)
	vp := a.WV.ForwardWith(ar, kv) // (n*k, embed)
	hd := a.EmbedDim / a.Heads
	scale := float32(1 / math.Sqrt(float64(hd)))

	ctx := ar.TensorZero(n, a.EmbedDim)
	var weights *tensor.Tensor
	if wantWeights {
		weights = tensor.New(n, a.Heads, k) // diagnostics path: heap is fine
	}
	// One score row per target, drawn before any fan-out: parallel chunk
	// bodies index disjoint rows instead of allocating private buffers,
	// and the arena is never bumped inside the parallel region.
	scoresAll := ar.Float32s(n * k)

	qd, kd, vd, cd := qp.Data(), kp.Data(), vp.Data(), ctx.Data()
	// The closure exists only on the fan-out branch so the serial path
	// stays allocation-free (see the same pattern in tensor's kernels).
	if n >= parallel.MinParallelWork && parallel.Degree() > 1 {
		parallel.ForChunked(n, 0, func(lo, hi int) {
			attnRows(qd, kd, vd, cd, scoresAll, mask, weights, lo, hi, k, hd, a.Heads, a.EmbedDim, scale, wantWeights)
		})
	} else {
		attnRows(qd, kd, vd, cd, scoresAll, mask, weights, 0, n, k, hd, a.Heads, a.EmbedDim, scale, wantWeights)
	}
	return a.WO.ForwardWith(ar, ctx), weights
}

// attnRows computes the fused score/softmax/weighted-sum loop for
// targets [lo,hi), writing per-head context into cd. It is a free
// function so the float and int8-quantized attention operators share
// one implementation — only the projections differ between them.
func attnRows(qd, kd, vd, cd, scoresAll []float32, mask []bool, weights *tensor.Tensor, lo, hi, k, hd, heads, embedDim int, scale float32, wantWeights bool) {
	for i := lo; i < hi; i++ {
		scores := scoresAll[i*k : (i+1)*k]
		for h := 0; h < heads; h++ {
			qrow := qd[i*embedDim+h*hd : i*embedDim+(h+1)*hd]
			// Scores for valid slots.
			maxv := float32(math.Inf(-1))
			any := false
			for j := 0; j < k; j++ {
				p := i*k + j
				if !mask[p] {
					continue
				}
				krow := kd[p*embedDim+h*hd : p*embedDim+(h+1)*hd]
				var s float32
				for d, qv := range qrow {
					s += qv * krow[d]
				}
				s *= scale
				scores[j] = s
				any = true
				if s > maxv {
					maxv = s
				}
			}
			out := cd[i*embedDim+h*hd : i*embedDim+(h+1)*hd]
			if !any {
				continue // zero context for neighbor-less targets
			}
			// Stable softmax over valid slots.
			var sum float64
			for j := 0; j < k; j++ {
				if !mask[i*k+j] {
					continue
				}
				e := math.Exp(float64(scores[j] - maxv))
				scores[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := 0; j < k; j++ {
				p := i*k + j
				if !mask[p] {
					if wantWeights {
						weights.Set(0, i, h, j)
					}
					continue
				}
				alpha := scores[j] * inv
				if wantWeights {
					weights.Set(alpha, i, h, j)
				}
				vrow := vd[p*embedDim+h*hd : p*embedDim+(h+1)*hd]
				for d, vv := range vrow {
					out[d] += alpha * vv
				}
			}
		}
	}
}

// Params returns the trainable tensors of all projections.
func (a *TemporalAttention) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	ps = append(ps, a.WQ.Params()...)
	ps = append(ps, a.WK.Params()...)
	ps = append(ps, a.WV.Params()...)
	ps = append(ps, a.WO.Params()...)
	return ps
}
