package nn

import (
	"math"

	"tgopt/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) over a fixed set of
// parameter tensors with externally supplied gradients, as used by the
// link-prediction trainer. State tensors are allocated lazily per
// parameter.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Decay   float64 // L2 weight decay (coupled, PyTorch-style)
	step    int
	m, v    []*tensor.Tensor
	params  []*tensor.Tensor
	indexed map[*tensor.Tensor]int
}

// NewAdam creates an optimizer over params with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params:  params,
		m:       make([]*tensor.Tensor, len(params)),
		v:       make([]*tensor.Tensor, len(params)),
		indexed: make(map[*tensor.Tensor]int, len(params)),
	}
	for i, p := range params {
		a.m[i] = tensor.New(p.Shape()...)
		a.v[i] = tensor.New(p.Shape()...)
		a.indexed[p] = i
	}
	return a
}

// Step applies one Adam update. grads[i] is the gradient for params[i]
// and must have the same element count; a nil gradient skips that
// parameter.
func (a *Adam) Step(grads []*tensor.Tensor) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		g := grads[i]
		if g == nil {
			continue
		}
		pd, gd := p.Data(), g.Data()
		md, vd := a.m[i].Data(), a.v[i].Data()
		for j := range pd {
			gj := float64(gd[j])
			if a.Decay != 0 {
				gj += a.Decay * float64(pd[j])
			}
			mj := a.Beta1*float64(md[j]) + (1-a.Beta1)*gj
			vj := a.Beta2*float64(vd[j]) + (1-a.Beta2)*gj*gj
			md[j], vd[j] = float32(mj), float32(vj)
			mhat := mj / bc1
			vhat := vj / bc2
			pd[j] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// SetStepCount restores the update counter — with the moment tensors
// (Moments), the full optimizer state a training checkpoint resumes
// from.
func (a *Adam) SetStepCount(n int) { a.step = n }

// Moments returns the first- and second-moment state tensors, aligned
// with the constructor's params order. Callers may read or overwrite
// their contents (checkpoint save/restore) but must not reshape them.
func (a *Adam) Moments() (m, v []*tensor.Tensor) { return a.m, a.v }

// SGD is a plain stochastic-gradient-descent optimizer, kept as a simple
// baseline for the optimizer tests.
type SGD struct {
	LR     float64
	params []*tensor.Tensor
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*tensor.Tensor, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies p -= lr*g for each parameter.
func (s *SGD) Step(grads []*tensor.Tensor) {
	for i, p := range s.params {
		g := grads[i]
		if g == nil {
			continue
		}
		pd, gd := p.Data(), g.Data()
		for j := range pd {
			pd[j] -= float32(s.LR * float64(gd[j]))
		}
	}
}
