package nn

import (
	"math"
	"testing"
	"testing/quick"
	"tgopt/internal/parallel"

	"tgopt/internal/tensor"
)

func TestTimeEncoderZeroDeltaIsAllOnes(t *testing.T) {
	te := NewTimeEncoder(16)
	v := te.EncodeScalar(0)
	for i, x := range v.Data() {
		if math.Abs(float64(x)-1) > 1e-6 {
			t.Fatalf("Φ(0)[%d] = %v, want 1 (cos(0))", i, x)
		}
	}
}

func TestTimeEncoderMatchesFormula(t *testing.T) {
	te := NewTimeEncoder(8)
	dts := []float64{0, 1, 3.5, 1e6}
	enc := te.Encode(dts)
	for i, dt := range dts {
		for j := 0; j < 8; j++ {
			want := math.Cos(dt*float64(te.Omega.At(j)) + float64(te.Phi.At(j)))
			if math.Abs(float64(enc.At(i, j))-want) > 1e-6 {
				t.Fatalf("Φ(%v)[%d] = %v, want %v", dt, j, enc.At(i, j), want)
			}
		}
	}
}

func TestTimeEncoderFrequencySpread(t *testing.T) {
	te := NewTimeEncoder(10)
	if te.Omega.At(0) != 1 {
		t.Fatalf("ω_0 = %v, want 1", te.Omega.At(0))
	}
	last := float64(te.Omega.At(9))
	if math.Abs(last-1e-9) > 1e-12 {
		t.Fatalf("ω_last = %v, want 1e-9", last)
	}
	for j := 1; j < 10; j++ {
		if te.Omega.At(j) >= te.Omega.At(j-1) {
			t.Fatal("frequencies not strictly decreasing")
		}
	}
}

func TestTimeEncoderBounded(t *testing.T) {
	te := NewTimeEncoder(32)
	prop := func(dtRaw int32) bool {
		dt := math.Abs(float64(dtRaw))
		v := te.EncodeScalar(dt)
		for _, x := range v.Data() {
			if x < -1 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeEncoderDim1(t *testing.T) {
	te := NewTimeEncoder(1)
	if te.Dim() != 1 || te.Omega.At(0) != 1 {
		t.Fatalf("d=1 encoder wrong: dim=%d ω=%v", te.Dim(), te.Omega.At(0))
	}
}

func TestLinearShapesAndParams(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewLinear(r, 6, 4, true)
	if l.In() != 6 || l.Out() != 4 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
	x := tensor.Rand(r, 3, 6)
	y := l.Forward(x)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("Forward shape %v", y.Shape())
	}
	if len(l.Params()) != 2 {
		t.Fatalf("Params len %d, want 2", len(l.Params()))
	}
	nb := NewLinear(r, 6, 4, false)
	if len(nb.Params()) != 1 || nb.B != nil {
		t.Fatal("no-bias linear has a bias")
	}
}

func TestMergeLayerForward(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewMergeLayer(r, 5, 3, 7, 2)
	a := tensor.Rand(r, 4, 5)
	b := tensor.Rand(r, 4, 3)
	out := m.Forward(a, b)
	if out.Dim(0) != 4 || out.Dim(1) != 2 {
		t.Fatalf("MergeLayer output shape %v", out.Shape())
	}
	// Manual recomputation.
	x := tensor.ConcatCols(a, b)
	want := m.FC2.Forward(tensor.ReLU(m.FC1.Forward(x)))
	if !out.AllClose(want, 1e-6) {
		t.Fatal("MergeLayer differs from manual composition")
	}
	if len(m.Params()) != 4 {
		t.Fatalf("MergeLayer params %d, want 4", len(m.Params()))
	}
}

func newAttn(t *testing.T, heads, qd, kd int) *TemporalAttention {
	t.Helper()
	return NewTemporalAttention(tensor.NewRNG(3), heads, qd, kd)
}

func TestAttentionOutputShape(t *testing.T) {
	a := newAttn(t, 2, 8, 10)
	r := tensor.NewRNG(4)
	n, k := 5, 3
	q := tensor.Rand(r, n, 8)
	kv := tensor.Rand(r, n*k, 10)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = true
	}
	out, w := a.Forward(q, kv, k, mask, true)
	if out.Dim(0) != n || out.Dim(1) != 8 {
		t.Fatalf("attention output shape %v", out.Shape())
	}
	if w.Dim(0) != n || w.Dim(1) != 2 || w.Dim(2) != k {
		t.Fatalf("weights shape %v", w.Shape())
	}
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	a := newAttn(t, 2, 8, 10)
	r := tensor.NewRNG(5)
	n, k := 6, 4
	q := tensor.Randn(r, n, 8)
	kv := tensor.Randn(r, n*k, 10)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = r.Float64() > 0.3
	}
	_, w := a.Forward(q, kv, k, mask, true)
	for i := 0; i < n; i++ {
		anyValid := false
		for j := 0; j < k; j++ {
			if mask[i*k+j] {
				anyValid = true
			}
		}
		for h := 0; h < 2; h++ {
			var sum float64
			for j := 0; j < k; j++ {
				alpha := float64(w.At(i, h, j))
				if alpha < 0 {
					t.Fatalf("negative attention weight %v", alpha)
				}
				if !mask[i*k+j] && alpha != 0 {
					t.Fatalf("masked slot (%d,%d,%d) has weight %v", i, h, j, alpha)
				}
				sum += alpha
			}
			if anyValid && math.Abs(sum-1) > 1e-5 {
				t.Fatalf("weights for target %d head %d sum to %v", i, h, sum)
			}
			if !anyValid && sum != 0 {
				t.Fatalf("neighbor-less target %d has nonzero weights", i)
			}
		}
	}
}

func TestAttentionNoNeighborsGivesBiasOnlyOutput(t *testing.T) {
	a := newAttn(t, 2, 8, 10)
	r := tensor.NewRNG(6)
	q := tensor.Randn(r, 1, 8)
	kv := tensor.Randn(r, 3, 10)
	mask := []bool{false, false, false}
	out, _ := a.Forward(q, kv, 3, mask, false)
	// Zero context through WO leaves only the output bias.
	want := a.WO.Forward(tensor.New(1, 8))
	if !out.AllClose(want, 1e-6) {
		t.Fatal("fully masked target output is not the WO bias")
	}
}

func TestAttentionMaskedSlotsDoNotInfluenceOutput(t *testing.T) {
	a := newAttn(t, 2, 8, 10)
	r := tensor.NewRNG(7)
	n, k := 3, 4
	q := tensor.Randn(r, n, 8)
	kv := tensor.Randn(r, n*k, 10)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = i%k < 2 // slots 2,3 masked
	}
	out1, _ := a.Forward(q, kv, k, mask, false)
	// Scramble the masked rows: output must not change.
	kv2 := kv.Clone()
	for i := 0; i < n*k; i++ {
		if !mask[i] {
			for j := 0; j < 10; j++ {
				kv2.Set(float32(r.NormFloat64()*100), i, j)
			}
		}
	}
	out2, _ := a.Forward(q, kv2, k, mask, false)
	if !out1.AllClose(out2, 1e-6) {
		t.Fatal("masked slot contents leaked into attention output")
	}
}

func TestAttentionSingleVsMultiHeadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible qDim/heads did not panic")
		}
	}()
	NewTemporalAttention(tensor.NewRNG(8), 3, 8, 10)
}

func TestAttentionParamsCount(t *testing.T) {
	a := newAttn(t, 2, 8, 10)
	if len(a.Params()) != 8 {
		t.Fatalf("attention params %d, want 8 (4 layers × W,b)", len(a.Params()))
	}
}

func TestAttentionParallelMatchesSerial(t *testing.T) {
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	a := newAttn(t, 2, 16, 20)
	r := tensor.NewRNG(9)
	n, k := 600, 5 // n above MinParallelWork triggers the parallel path
	q := tensor.Randn(r, n, 16)
	kv := tensor.Randn(r, n*k, 20)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = r.Float64() > 0.2
	}
	full, _ := a.Forward(q, kv, k, mask, false)
	// Compare each target against an independent single-target call.
	for _, i := range []int{0, 123, 599} {
		qi := tensor.FromSlice(q.Row(i), 1, 16)
		kvi := tensor.FromSlice(kv.Data()[i*k*20:(i+1)*k*20], k, 20)
		oi, _ := a.Forward(qi, kvi, k, mask[i*k:(i+1)*k], false)
		got := tensor.FromSlice(full.Row(i), 1, 16)
		if !got.AllClose(oi, 1e-5) {
			t.Fatalf("parallel target %d differs from serial: %g", i, got.MaxAbsDiff(oi))
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(p) = ||p - c||² — Adam should approach c.
	p := tensor.FromSlice([]float32{5, -3, 2}, 3)
	c := []float32{1, 2, 3}
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	for it := 0; it < 500; it++ {
		g := tensor.New(3)
		for i := range c {
			g.Data()[i] = 2 * (p.Data()[i] - c[i])
		}
		opt.Step([]*tensor.Tensor{g})
	}
	for i := range c {
		if math.Abs(float64(p.Data()[i]-c[i])) > 1e-2 {
			t.Fatalf("Adam did not converge: p[%d]=%v want %v", i, p.Data()[i], c[i])
		}
	}
	if opt.StepCount() != 500 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamSkipsNilGrads(t *testing.T) {
	p := tensor.FromSlice([]float32{1}, 1)
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	opt.Step([]*tensor.Tensor{nil})
	if p.Data()[0] != 1 {
		t.Fatal("nil gradient mutated the parameter")
	}
}

func TestSGDStep(t *testing.T) {
	p := tensor.FromSlice([]float32{2}, 1)
	opt := NewSGD([]*tensor.Tensor{p}, 0.5)
	g := tensor.FromSlice([]float32{1}, 1)
	opt.Step([]*tensor.Tensor{g})
	if p.Data()[0] != 1.5 {
		t.Fatalf("SGD step wrong: %v", p.Data()[0])
	}
}

func TestBCEWithLogitsKnownValues(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0}, 2)
	loss := BCEWithLogits(logits, []float32{1, 0})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("BCE at logit 0 = %v, want ln2", loss)
	}
	confident := tensor.FromSlice([]float32{20, -20}, 2)
	if l := BCEWithLogits(confident, []float32{1, 0}); l > 1e-6 {
		t.Fatalf("confident correct BCE = %v, want ~0", l)
	}
	wrong := tensor.FromSlice([]float32{-20, 20}, 2)
	if l := BCEWithLogits(wrong, []float32{1, 0}); l < 19 {
		t.Fatalf("confident wrong BCE = %v, want ~20", l)
	}
}

func TestBCEGradMatchesFiniteDifference(t *testing.T) {
	r := tensor.NewRNG(10)
	logits := tensor.Randn(r, 5)
	labels := []float32{1, 0, 1, 1, 0}
	g := BCEWithLogitsGrad(logits, labels)
	eps := 1e-3
	for i := 0; i < 5; i++ {
		plus := logits.Clone()
		plus.Data()[i] += float32(eps)
		minus := logits.Clone()
		minus.Data()[i] -= float32(eps)
		fd := (BCEWithLogits(plus, labels) - BCEWithLogits(minus, labels)) / (2 * eps)
		if math.Abs(fd-float64(g.Data()[i])) > 1e-3 {
			t.Fatalf("grad[%d] = %v, finite diff %v", i, g.Data()[i], fd)
		}
	}
}

func TestAveragePrecisionPerfectAndRandom(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if ap := AveragePrecision(scores, labels); ap != 1 {
		t.Fatalf("perfect AP = %v, want 1", ap)
	}
	inverted := []bool{false, false, true, true}
	if ap := AveragePrecision(scores, inverted); ap >= 0.6 {
		t.Fatalf("inverted AP = %v, want low", ap)
	}
	if AveragePrecision(nil, nil) != 0 {
		t.Fatal("empty AP should be 0")
	}
	if AveragePrecision([]float64{1}, []bool{false}) != 0 {
		t.Fatal("no-positives AP should be 0")
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]float64{2, -1, 3, -4}, []bool{true, false, false, false}); a != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty Accuracy should be 0")
	}
}

func TestForwardBatchedMatchesFusedKernel(t *testing.T) {
	a := newAttn(t, 2, 16, 20)
	r := tensor.NewRNG(30)
	n, k := 50, 7
	q := tensor.Randn(r, n, 16)
	kv := tensor.Randn(r, n*k, 20)
	mask := make([]bool, n*k)
	for i := range mask {
		mask[i] = r.Float64() > 0.25
	}
	fused, _ := a.Forward(q, kv, k, mask, false)
	batched := a.ForwardBatched(q, kv, k, mask)
	if d := fused.MaxAbsDiff(batched); d > 1e-5 {
		t.Fatalf("kernels diverge by %g", d)
	}
	// Fully masked target agrees too.
	for i := 0; i < k; i++ {
		mask[i] = false
	}
	fused2, _ := a.Forward(q, kv, k, mask, false)
	batched2 := a.ForwardBatched(q, kv, k, mask)
	if d := fused2.MaxAbsDiff(batched2); d > 1e-5 {
		t.Fatalf("masked-row kernels diverge by %g", d)
	}
}
