package nn

import (
	"tgopt/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b with the PyTorch
// nn.Linear weight layout W (out, in).
type Linear struct {
	W *tensor.Tensor // (out, in)
	B *tensor.Tensor // (out), nil for no bias
}

// NewLinear creates a Xavier-initialized linear layer.
func NewLinear(r *tensor.RNG, in, out int, bias bool) *Linear {
	l := &Linear{W: tensor.New(out, in)}
	tensor.XavierUniform(r, l.W)
	if bias {
		l.B = tensor.New(out)
	}
	return l
}

// In returns the input dimensionality.
func (l *Linear) In() int { return l.W.Dim(1) }

// Out returns the output dimensionality.
func (l *Linear) Out() int { return l.W.Dim(0) }

// Forward applies the layer to x of shape (n, in), producing (n, out).
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Linear(x, l.W, l.B)
}

// ForwardWith is Forward with the output drawn from ar (heap when ar is
// nil). The result is invalidated by ar.Reset.
func (l *Linear) ForwardWith(ar *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	dst := ar.Tensor(x.Dim(0), l.Out())
	tensor.LinearInto(x, l.W, l.B, dst)
	return dst
}

// Params returns the trainable tensors (bias omitted when absent).
func (l *Linear) Params() []*tensor.Tensor {
	if l.B == nil {
		return []*tensor.Tensor{l.W}
	}
	return []*tensor.Tensor{l.W, l.B}
}

// MergeLayer is TGAT's two-layer feed-forward update network
// FFN(a ‖ b) = W2·ReLU(W1·[a‖b] + b1) + b2 (Eq. 7 of the paper). It is
// used both as the per-layer feature update and, with output dim 1, as
// the link-prediction affinity head.
type MergeLayer struct {
	FC1 *Linear
	FC2 *Linear
}

// NewMergeLayer builds a merge layer taking inputs of widths dim1 and
// dim2, with hidden width hidden and output width out.
func NewMergeLayer(r *tensor.RNG, dim1, dim2, hidden, out int) *MergeLayer {
	return &MergeLayer{
		FC1: NewLinear(r, dim1+dim2, hidden, true),
		FC2: NewLinear(r, hidden, out, true),
	}
}

// Forward computes the merge of a (n, dim1) and b (n, dim2).
func (m *MergeLayer) Forward(a, b *tensor.Tensor) *tensor.Tensor {
	return m.ForwardWith(nil, a, b)
}

// ForwardWith is Forward with every intermediate and the output drawn
// from ar (heap when ar is nil). The result is invalidated by ar.Reset.
func (m *MergeLayer) ForwardWith(ar *tensor.Arena, a, b *tensor.Tensor) *tensor.Tensor {
	x := ar.Tensor(a.Dim(0), a.Dim(1)+b.Dim(1))
	tensor.ConcatColsInto(x, a, b)
	h := m.FC1.ForwardWith(ar, x)
	tensor.ReLUInPlace(h)
	return m.FC2.ForwardWith(ar, h)
}

// Params returns the trainable tensors of both sublayers.
func (m *MergeLayer) Params() []*tensor.Tensor {
	return append(m.FC1.Params(), m.FC2.Params()...)
}
