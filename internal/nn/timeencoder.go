// Package nn provides the neural-network layers that make up the TGAT
// model: the functional time encoder Φ(Δt) = cos(ω·Δt + φ), linear
// projections, the multi-head temporal attention operator (Eq. 6 of the
// paper), the MergeLayer feed-forward update (Eq. 7), loss functions and
// the Adam optimizer used for link-prediction training.
//
// All forward passes here are inference-oriented (pure tensor ops, no
// tape). Training uses internal/autograd, which rebuilds the same
// computations over the identical parameter tensors, so weights learned
// by the trainer are directly consumed by these layers.
package nn

import (
	"math"

	"tgopt/internal/tensor"
)

// TimeEncoder implements TGAT's learnable time encoding
// Φ(Δt) = cos(ω·Δt + φ) with ω, φ ∈ R^d (Eq. 8 of the paper).
type TimeEncoder struct {
	Omega *tensor.Tensor // frequencies, shape [d]
	Phi   *tensor.Tensor // phases, shape [d]
}

// NewTimeEncoder creates a time encoder with the TGAT initialization:
// ω_i = 1 / 10^(9·i/(d-1)) — geometrically spaced frequencies spanning
// nine decades — and φ = 0.
func NewTimeEncoder(d int) *TimeEncoder {
	omega := tensor.New(d)
	for i := 0; i < d; i++ {
		expo := 0.0
		if d > 1 {
			expo = 9 * float64(i) / float64(d-1)
		}
		omega.Data()[i] = float32(1 / math.Pow(10, expo))
	}
	return &TimeEncoder{Omega: omega, Phi: tensor.New(d)}
}

// Dim returns the encoding dimensionality d_t.
func (te *TimeEncoder) Dim() int { return te.Omega.Len() }

// Encode maps each time delta to its d_t-dimensional encoding, producing
// shape (len(dts), d_t).
func (te *TimeEncoder) Encode(dts []float64) *tensor.Tensor {
	out := tensor.New(len(dts), te.Dim())
	te.EncodeInto(dts, out)
	return out
}

// EncodeInto is Encode writing into a preallocated (len(dts), d_t)
// tensor. The hot path of the baseline model calls this per batch; TGOpt
// mostly replaces it with table lookups (§4.3).
func (te *TimeEncoder) EncodeInto(dts []float64, dst *tensor.Tensor) {
	d := te.Dim()
	om, ph := te.Omega.Data(), te.Phi.Data()
	for i, dt := range dts {
		row := dst.Data()[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = float32(math.Cos(dt*float64(om[j]) + float64(ph[j])))
		}
	}
}

// EncodeScalar computes Φ(dt) as a single d_t vector.
func (te *TimeEncoder) EncodeScalar(dt float64) *tensor.Tensor {
	return te.Encode([]float64{dt}).Reshape(te.Dim())
}

// Params returns the trainable tensors.
func (te *TimeEncoder) Params() []*tensor.Tensor { return []*tensor.Tensor{te.Omega, te.Phi} }
