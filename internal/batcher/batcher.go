// Package batcher coalesces concurrent embedding requests into fused
// engine passes — the cross-request analogue of the paper's
// within-batch deduplication. TGOpt's redundancy (§3.1) spans targets,
// not requests: under concurrent serving load, overlapping ⟨node, t⟩
// targets arrive on different HTTP requests, where per-request engine
// passes recompute them independently and tiny requests can never
// amortize the blocked-matmul and batched-attention kernels.
//
// The batcher restores that lost redundancy with two mechanisms:
//
//   - Dynamic micro-batching: enqueued targets accumulate into one
//     pending batch that is flushed as a single Engine.EmbedWith pass
//     when it reaches Config.MaxBatch targets, when Config.Window has
//     elapsed since the batch opened, or immediately when no pass is
//     currently executing (the idle fast path — an unloaded server adds
//     no batching latency, so p99 at concurrency 1 matches the direct
//     path). Idle-path passes run inline on the caller's goroutine;
//     every other flush schedules a runner that yields to the scheduler
//     once before capturing the batch, so concurrent callers that are
//     already runnable join the same cohort (without this, batches
//     degenerate to single requests on a saturated machine). Result
//     rows are scattered back to the per-request waiters.
//
//   - Single-flight deduplication: every target is keyed by the
//     engine's memo key (core.Key, collision-free per §4.1). A target
//     whose key already has a computation in flight — pending in the
//     current batch or executing in a previous one — attaches to that
//     flight instead of enqueuing a duplicate slot, so N concurrent
//     cache misses for one ⟨node, t⟩ compute exactly once and N−1
//     requests block on the first computation's result. This is sound
//     for the same reason the memo cache is: a target's embedding is
//     immutable under chronological appends (§3.2).
//
// Waiting is per-request-context: a caller whose context is cancelled
// mid-batch stops waiting immediately, while its flights complete
// normally for any other waiters (and warm the engine cache). A panic
// inside the fused pass is recovered and published as an error to every
// waiter of that batch, so no waiter can be left stuck.
package batcher

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
)

// Embedder is the fused-pass computation the batcher drives —
// *core.Engine in production, the shard router's per-shard engines in
// sharded serving, a controllable fake in tests. It is the promoted
// core.Embedder seam (PR 7); the alias remains so existing callers
// read naturally.
type Embedder = core.Embedder

// ErrPassPanicked wraps the error published to every waiter of a
// fused pass that panicked. Callers that supervise an embedder —
// the shard router's panic domain — unwrap it with errors.Is to tell
// a crashed engine from an ordinary failure.
var ErrPassPanicked = errors.New("batcher: fused pass panicked")

// Config bounds a batcher's coalescing behavior. The zero value is
// usable: Window 0 disables the timer (flushes still happen on the size
// trigger, the idle fast path, and pass-completion drain), MaxBatch 0
// falls back to DefaultMaxBatch.
type Config struct {
	// Window is the maximum time a pending batch may wait for more
	// targets before flushing. It only matters while another pass is
	// executing; an idle batcher flushes immediately.
	Window time.Duration
	// MaxBatch flushes the pending batch as soon as it holds this many
	// unique targets. A single request with more targets than MaxBatch
	// still runs as one fused pass (the cap is a flush trigger, not a
	// split point — the engine handles arbitrary batch sizes).
	MaxBatch int
}

// DefaultMaxBatch is the size trigger used when Config.MaxBatch <= 0.
const DefaultMaxBatch = 256

// DefaultWindow is the flush window used by the serving CLI default.
const DefaultWindow = 2 * time.Millisecond

// flight is one in-flight ⟨node, t⟩ computation. done is closed exactly
// once, after row/err are set; waiters must only read them after done.
type flight struct {
	node int32
	t    float64
	enq  time.Time // enqueue instant, for the queue-wait histogram
	done chan struct{}
	row  []float32 // d-wide result row (sub-slice of the batch slab)
	err  error
}

// Batcher coalesces Embed calls into fused Embedder passes. Safe for
// concurrent use; create with New.
type Batcher struct {
	eng Embedder
	dim int
	cfg Config

	mu         sync.Mutex
	pending    []*flight          // the batch currently accumulating
	flights    map[uint64]*flight // memo key -> pending or executing flight
	running    int                // fused passes currently executing
	batchGen   uint64             // invalidates stale window timers
	timerArmed bool               // a window timer covers the open batch

	// maxFlightT holds the float bits of an upper bound on the query
	// times of in-flight computations. It is raised (under mu) whenever
	// a flight is added and reset to -Inf when the table empties, so
	// RetireTargets can skip the locked scan on the common chronological
	// append with no future-time work in flight. It may run stale-high
	// while flights drain (a wasted scan, never a missed retirement).
	maxFlightT atomic.Uint64

	// Counters (atomic so Stats never contends with the hot path).
	enqueued    atomic.Int64 // targets enqueued, pre-coalesce
	coalesced   atomic.Int64 // targets that attached to an existing flight
	batches     atomic.Int64 // fused passes completed
	flushSize   atomic.Int64 // flushes triggered by MaxBatch
	flushWindow atomic.Int64 // flushes triggered by the window timer
	flushIdle   atomic.Int64 // flushes by the idle fast path
	flushDrain  atomic.Int64 // flushes draining the queue after a pass
	panics      atomic.Int64 // recovered fused-pass panics
	retireCalls atomic.Int64 // RetireTargets invocations
	retired     atomic.Int64 // flights retired by RetireTargets

	queueWait *stats.Histogram      // enqueue -> flush start
	occupancy *stats.CountHistogram // unique targets per fused pass
}

// New builds a batcher over an embedder producing dim-wide rows
// (model.Cfg.NodeDim for a TGOpt engine).
func New(eng Embedder, dim int, cfg Config) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	b := &Batcher{
		eng:       eng,
		dim:       dim,
		cfg:       cfg,
		flights:   make(map[uint64]*flight),
		queueWait: stats.NewHistogram(),
		occupancy: stats.NewCountHistogram(),
	}
	b.maxFlightT.Store(math.Float64bits(math.Inf(-1)))
	return b
}

// Dim returns the embedding width of the batcher's rows.
func (b *Batcher) Dim() int { return b.dim }

// Config returns the (defaulted) configuration.
func (b *Batcher) Config() Config { return b.cfg }

// Embed computes the embeddings of the given targets through the fused
// serving path, blocking until every target's flight completes or ctx
// is cancelled. The result is one backing slab with target i's row at
// slab[i*Dim() : (i+1)*Dim()] — callers sub-slice it instead of
// allocating per-row. Rows are bitwise identical to a direct
// Engine.EmbedWith pass over the same targets.
//
// On cancellation the error is ctx.Err(); the targets this call
// enqueued still complete (other requests may share them), they are
// simply no longer waited for.
func (b *Batcher) Embed(ctx context.Context, nodes []int32, ts []float64) ([]float32, error) {
	if len(nodes) != len(ts) {
		panic("batcher: Embed nodes/ts length mismatch")
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	n := len(nodes)
	waits := make([]*flight, n)

	now := time.Now()
	b.mu.Lock()
	for i := range nodes {
		key := core.Key(nodes[i], ts[i])
		if f, ok := b.flights[key]; ok {
			// Single-flight hit: a computation for this exact target is
			// already pending or executing (or just finished — done
			// flights are equally valid, their rows are immutable).
			b.coalesced.Add(1)
			waits[i] = f
			continue
		}
		f := &flight{node: nodes[i], t: ts[i], enq: now, done: make(chan struct{})}
		b.flights[key] = f
		b.pending = append(b.pending, f)
		waits[i] = f
		if ts[i] > math.Float64frombits(b.maxFlightT.Load()) {
			b.maxFlightT.Store(math.Float64bits(ts[i]))
		}
	}
	b.enqueued.Add(int64(n))

	inline := false
	switch {
	case len(b.pending) == 0:
		// Everything coalesced onto existing flights.
	case len(b.pending) >= b.cfg.MaxBatch:
		b.flushSize.Add(1)
		b.scheduleLocked()
	case b.running == 0:
		// Idle fast path: nothing is computing, so waiting could only
		// add latency — run the pass inline on this goroutine, like the
		// direct path (no spawn, no handoff: an unloaded server pays
		// one Gosched for batching). Under load (running > 0) the batch
		// keeps accumulating until size, window, or drain.
		b.flushIdle.Add(1)
		b.running++
		inline = true
	default:
		b.armTimerLocked()
	}
	b.mu.Unlock()

	if inline {
		// Cohort formation, same as runLoop: yield once before capturing
		// the batch so concurrent callers that are already runnable get
		// to enqueue into this pass (running is already 1, so they
		// queue instead of going inline themselves). An unloaded
		// batcher has nothing else runnable and proceeds immediately.
		runtime.Gosched()
		b.mu.Lock()
		fs := b.takeLocked()
		b.mu.Unlock()
		if len(fs) > 0 { // a size flush may have raced the capture
			b.runPass(fs)
		}
		b.mu.Lock()
		b.running--
		if len(b.pending) > 0 {
			// Work queued up behind the inline pass: hand it to a
			// detached runner rather than serving it on this caller's
			// time (and rather than letting it wait out the window).
			b.flushDrain.Add(1)
			b.scheduleLocked()
		}
		b.mu.Unlock()
	}

	slab := make([]float32, n*b.dim)
	for i, f := range waits {
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			return nil, f.err
		}
		copy(slab[i*b.dim:(i+1)*b.dim], f.row)
	}
	return slab, nil
}

// scheduleLocked accounts a new runner as executing and spawns it.
// Callers hold b.mu. The batch is NOT captured here: the runner yields
// once before taking the queue (cohort formation — see runLoop), so
// callers that are already runnable get to enqueue into the same pass.
func (b *Batcher) scheduleLocked() {
	b.running++
	go b.runLoop()
}

// takeLocked claims the pending batch for execution. Callers hold b.mu.
func (b *Batcher) takeLocked() []*flight {
	run := b.pending
	b.pending = nil
	b.batchGen++ // any armed window timer is now stale
	b.timerArmed = false
	return run
}

// runLoop is one runner: it captures and executes fused passes until the
// queue is empty, then exits. Deferred capture is what makes batches
// actually form under load: a flush trigger schedules the runner, the
// runner yields once, and every caller the scheduler had runnable gets
// to enqueue before the batch is taken. Without the yield, Go's
// spawned-goroutine-runs-next scheduling lets a fresh pass execute
// before sibling requests ever reach the queue — on a saturated box
// every batch would hold a single request's targets. After each pass
// the loop drains whatever accumulated during it (the drain trigger),
// so queued targets never wait out the window behind a long pass.
func (b *Batcher) runLoop() {
	first := true
	for {
		runtime.Gosched() // let runnable callers join this cohort
		b.mu.Lock()
		fs := b.takeLocked()
		if len(fs) == 0 {
			b.running--
			b.mu.Unlock()
			return
		}
		if !first {
			b.flushDrain.Add(1)
		}
		first = false
		b.mu.Unlock()
		b.runPass(fs)
	}
}

// armTimerLocked schedules a window flush for the current pending batch
// if one is not already armed. The generation check makes a fired timer
// a no-op when its batch was already flushed by another trigger.
func (b *Batcher) armTimerLocked() {
	if b.cfg.Window <= 0 {
		return // no timer: size, idle, and drain triggers still flush
	}
	if b.timerArmed {
		return
	}
	b.timerArmed = true
	gen := b.batchGen
	time.AfterFunc(b.cfg.Window, func() {
		b.mu.Lock()
		if b.batchGen != gen || len(b.pending) == 0 {
			b.mu.Unlock()
			return
		}
		b.timerArmed = false
		b.flushWindow.Add(1)
		b.scheduleLocked()
		b.mu.Unlock()
	})
}

// runPass executes one fused pass over the claimed flights and
// publishes each result row (or a recovered panic as an error) to its
// waiters.
func (b *Batcher) runPass(fs []*flight) {
	start := time.Now()
	published := false
	defer func() {
		if rec := recover(); rec != nil {
			b.panics.Add(1)
			if !published {
				err := fmt.Errorf("%w: %v", ErrPassPanicked, rec)
				for _, f := range fs {
					f.err = err
					close(f.done)
				}
			}
		}

		b.mu.Lock()
		// Retire the flights so later requests for the same keys start
		// fresh computations (which then hit the engine's memo cache).
		// A retired flight that raced with a just-attached waiter is
		// fine: its done/row/err are already published and immutable.
		// The identity check matters: RetireTargets may have already
		// removed a flight and a successor for the same key may be in
		// the table — deleting blindly would orphan the successor into
		// permanent single-flight misses.
		for _, f := range fs {
			key := core.Key(f.node, f.t)
			if b.flights[key] == f {
				delete(b.flights, key)
			}
		}
		b.resetFlightBoundLocked()
		b.mu.Unlock()
	}()

	nm := len(fs)
	for _, f := range fs {
		b.queueWait.Observe(start.Sub(f.enq))
	}

	ar := tensor.GetArena()
	nodes := ar.Int32s(nm)
	ts := ar.Float64s(nm)
	for i, f := range fs {
		nodes[i] = f.node
		ts[i] = f.t
	}
	h := b.eng.EmbedWith(ar, nodes, ts)
	// One slab for the whole batch; each flight's row sub-slices it.
	// Copied out because the arena goes back to the pool.
	slab := make([]float32, nm*b.dim)
	copy(slab, h.Data()[:nm*b.dim])
	tensor.PutArena(ar)

	for i, f := range fs {
		f.row = slab[i*b.dim : (i+1)*b.dim]
	}
	published = true
	b.batches.Add(1)
	b.occupancy.Observe(int64(nm))
	for _, f := range fs {
		close(f.done)
	}
}

// RetireTargets removes from the single-flight table every in-flight
// computation targeting one of the given nodes at a query time
// strictly after t, returning how many were retired. It closes the
// read-your-writes gap of single-flight dedup under history edits: a
// flight computed against the pre-insert history stays valid for the
// waiters that attached before the insert was acknowledged, but a
// request arriving after the acknowledgement must not attach to it —
// retiring the key forces a fresh computation against the updated
// history. The engine's invalidation hook calls this before its cache
// scan (see core.Engine.SetInvalidationHook); retired flights still
// complete and publish to their existing waiters.
//
// The common case — a chronological append with no future-time work in
// flight — exits on one atomic load without taking the batcher lock,
// so the per-append hook does not contend with the serving hot path.
func (b *Batcher) RetireTargets(nodes []int32, t float64) int {
	b.retireCalls.Add(1)
	if math.Float64frombits(b.maxFlightT.Load()) <= t {
		// No in-flight computation targets a time after t. The bound is
		// only ever raised while such a flight is in the table, so a
		// flight that must be retired can never hide behind this exit.
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	retired := 0
	for key, f := range b.flights {
		if f.t <= t {
			continue
		}
		for _, n := range nodes {
			if f.node == n {
				delete(b.flights, key)
				retired++
				break
			}
		}
	}
	b.resetFlightBoundLocked()
	if retired > 0 {
		b.retired.Add(int64(retired))
	}
	return retired
}

// resetFlightBoundLocked drops the in-flight time bound back to -Inf
// once the single-flight table is empty (callers hold b.mu, so no
// flight can be added concurrently). While the table is non-empty the
// bound is left alone — possibly stale-high, which only costs a scan.
func (b *Batcher) resetFlightBoundLocked() {
	if len(b.flights) == 0 {
		b.maxFlightT.Store(math.Float64bits(math.Inf(-1)))
	}
}

// InFlight reports the live queue state: targets pending in the open
// batch and fused passes currently executing.
func (b *Batcher) InFlight() (pending, running int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending), b.running
}

// Snapshot is a point-in-time copy of the batcher's counters.
type Snapshot struct {
	Enqueued    int64 // targets enqueued, pre-coalesce
	Coalesced   int64 // targets deduplicated onto an existing flight
	Batches     int64 // fused passes completed
	FlushSize   int64 // flushes triggered by MaxBatch
	FlushWindow int64 // flushes triggered by the window timer
	FlushIdle   int64 // flushes by the idle fast path
	FlushDrain  int64 // flushes draining the queue after a pass
	Panics      int64 // recovered fused-pass panics
	RetireCalls int64 // RetireTargets invocations (invalidation hook fires)
	Retired     int64 // in-flight computations retired by history edits
}

// CoalesceRatio is the fraction of enqueued targets that were served by
// an existing flight instead of a new computation slot.
func (s Snapshot) CoalesceRatio() float64 {
	if s.Enqueued == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(s.Enqueued)
}

// Stats returns the batcher's counters.
func (b *Batcher) Stats() Snapshot {
	return Snapshot{
		Enqueued:    b.enqueued.Load(),
		Coalesced:   b.coalesced.Load(),
		Batches:     b.batches.Load(),
		FlushSize:   b.flushSize.Load(),
		FlushWindow: b.flushWindow.Load(),
		FlushIdle:   b.flushIdle.Load(),
		FlushDrain:  b.flushDrain.Load(),
		Panics:      b.panics.Load(),
		RetireCalls: b.retireCalls.Load(),
		Retired:     b.retired.Load(),
	}
}

// QueueWait returns the live enqueue-to-flush latency histogram.
func (b *Batcher) QueueWait() *stats.Histogram { return b.queueWait }

// Occupancy returns the live unique-targets-per-pass histogram.
func (b *Batcher) Occupancy() *stats.CountHistogram { return b.occupancy }
