package batcher

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

const fakeDim = 4

// fakeEmbedder produces deterministic rows from (node, ts) and, when
// gated, blocks each EmbedWith call until the test sends a token —
// letting tests hold a pass "executing" while they drive the queue.
type fakeEmbedder struct {
	gate chan struct{}

	mu      sync.Mutex
	calls   [][]int32 // node list of each pass, in call order
	panicOn bool
}

func fakeRow(node int32, t float64, j int) float32 {
	return float32(node)*100 + float32(t) + float32(j)
}

func (f *fakeEmbedder) EmbedWith(ar *tensor.Arena, nodes []int32, ts []float64) *tensor.Tensor {
	f.mu.Lock()
	f.calls = append(f.calls, append([]int32(nil), nodes...))
	doPanic := f.panicOn
	f.mu.Unlock()
	if f.gate != nil {
		<-f.gate
	}
	if doPanic {
		panic("fake embedder failure")
	}
	out := ar.Tensor(len(nodes), fakeDim)
	for i := range nodes {
		for j := 0; j < fakeDim; j++ {
			out.Set(fakeRow(nodes[i], ts[i], j), i, j)
		}
	}
	return out
}

func (f *fakeEmbedder) Dim() int { return fakeDim }

func (f *fakeEmbedder) numCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func (f *fakeEmbedder) call(i int) []int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[i]
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func checkSlab(t *testing.T, slab []float32, nodes []int32, ts []float64) {
	t.Helper()
	if len(slab) != len(nodes)*fakeDim {
		t.Fatalf("slab length %d, want %d", len(slab), len(nodes)*fakeDim)
	}
	for i := range nodes {
		for j := 0; j < fakeDim; j++ {
			if got, want := slab[i*fakeDim+j], fakeRow(nodes[i], ts[i], j); got != want {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestBatcherIdleFastPath(t *testing.T) {
	f := &fakeEmbedder{}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 64})
	slab, err := b.Embed(context.Background(), []int32{3, 7}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSlab(t, slab, []int32{3, 7}, []float64{1, 2})
	s := b.Stats()
	if s.Batches != 1 || s.FlushIdle != 1 || s.FlushSize != 0 || s.FlushWindow != 0 {
		t.Fatalf("stats %+v: idle request must flush immediately, once", s)
	}
	if b.Occupancy().Sum() != 2 {
		t.Fatalf("occupancy sum %d, want 2", b.Occupancy().Sum())
	}
}

func TestBatcherDuplicateTargetsWithinRequest(t *testing.T) {
	f := &fakeEmbedder{}
	b := New(f, fakeDim, Config{})
	slab, err := b.Embed(context.Background(), []int32{5, 5, 9}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSlab(t, slab, []int32{5, 5, 9}, []float64{1, 1, 1})
	if got := f.call(0); len(got) != 2 {
		t.Fatalf("fused pass saw %v, want the 2 unique targets", got)
	}
	s := b.Stats()
	if s.Enqueued != 3 || s.Coalesced != 1 {
		t.Fatalf("stats %+v: duplicate within a request must coalesce", s)
	}
}

func TestBatcherSizeTrigger(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 4})
	var wg sync.WaitGroup
	embed := func(node int32) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slab, err := b.Embed(context.Background(), []int32{node}, []float64{1})
			if err != nil {
				t.Error(err)
				return
			}
			checkSlab(t, slab, []int32{node}, []float64{1})
		}()
	}
	embed(1) // idle flush; blocks inside the fake
	waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
	for n := int32(2); n <= 5; n++ {
		embed(n) // queues behind the executing pass
	}
	// The 4th queued target hits MaxBatch and flushes while pass 1 is
	// still executing.
	waitUntil(t, "size-triggered pass", func() bool { return f.numCalls() == 2 })
	if got := f.call(1); len(got) != 4 {
		t.Fatalf("size-triggered pass had %d targets, want 4", len(got))
	}
	f.gate <- struct{}{}
	f.gate <- struct{}{}
	wg.Wait()
	s := b.Stats()
	if s.FlushSize != 1 || s.FlushIdle != 1 || s.Batches != 2 {
		t.Fatalf("stats %+v: want one idle and one size flush", s)
	}
}

func TestBatcherWindowTrigger(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: 10 * time.Millisecond, MaxBatch: 1024})
	var wg sync.WaitGroup
	embed := func(node int32) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Embed(context.Background(), []int32{node}, []float64{1}); err != nil {
				t.Error(err)
			}
		}()
	}
	embed(1)
	waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
	embed(2)
	embed(3)
	// Far below MaxBatch: only the window timer can flush these two.
	waitUntil(t, "window-triggered pass", func() bool { return f.numCalls() == 2 })
	if got := f.call(1); len(got) != 2 {
		t.Fatalf("window pass had %d targets, want 2", len(got))
	}
	f.gate <- struct{}{}
	f.gate <- struct{}{}
	wg.Wait()
	if s := b.Stats(); s.FlushWindow != 1 {
		t.Fatalf("stats %+v: want one window flush", s)
	}
}

func TestBatcherDrainAfterPass(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{})}
	// Window 0: queued work can only flush via size or drain.
	b := New(f, fakeDim, Config{Window: 0, MaxBatch: 1024})
	var wg sync.WaitGroup
	embed := func(node int32) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Embed(context.Background(), []int32{node}, []float64{1}); err != nil {
				t.Error(err)
			}
		}()
	}
	embed(1)
	waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
	embed(2)
	embed(3)
	embed(4)
	waitUntil(t, "queue filled", func() bool { p, _ := b.InFlight(); return p == 3 })
	f.gate <- struct{}{} // finish pass 1; completion must drain the queue
	waitUntil(t, "drain pass", func() bool { return f.numCalls() == 2 })
	if got := f.call(1); len(got) != 3 {
		t.Fatalf("drain pass had %d targets, want 3", len(got))
	}
	f.gate <- struct{}{}
	wg.Wait()
	if s := b.Stats(); s.FlushDrain != 1 {
		t.Fatalf("stats %+v: want one drain flush", s)
	}
}

func TestBatcherSingleFlight(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 1024})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([][]float32, waiters+1)
	for i := 0; i <= waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			slab, err := b.Embed(context.Background(), []int32{42}, []float64{7})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = slab
		}()
		if i == 0 {
			waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
		}
	}
	// Everyone requested the same (node, ts): all later arrivals must
	// attach to the executing flight, never queue a duplicate slot.
	waitUntil(t, "all waiters coalesced", func() bool { return b.Stats().Coalesced == waiters })
	if p, _ := b.InFlight(); p != 0 {
		t.Fatalf("%d targets pending; duplicates of an executing flight must not queue", p)
	}
	f.gate <- struct{}{}
	wg.Wait()
	if f.numCalls() != 1 {
		t.Fatalf("%d passes for one key, want exactly 1 (single-flight)", f.numCalls())
	}
	for i, slab := range results {
		checkSlab(t, slab, []int32{42}, []float64{7})
		_ = i
	}
	s := b.Stats()
	if s.Enqueued != waiters+1 || s.Coalesced != waiters || s.Batches != 1 {
		t.Fatalf("stats %+v", s)
	}
	if r := s.CoalesceRatio(); r <= 0.9 {
		t.Fatalf("coalesce ratio %v", r)
	}
}

func TestBatcherCancellationLeavesNoStuckWaiters(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 1024})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Embed(context.Background(), []int32{1}, []float64{1}); err != nil {
			t.Error(err)
		}
	}()
	waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })

	// A waiter on the executing flight whose context is cancelled must
	// return promptly even though the pass is still blocked.
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := b.Embed(ctx, []int32{1}, []float64{1})
		cancelled <- err
	}()
	waitUntil(t, "cancelled waiter attached", func() bool { return b.Stats().Coalesced == 1 })
	cancel()
	select {
	case err := <-cancelled:
		if err != context.Canceled {
			t.Fatalf("cancelled waiter returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck")
	}

	// A patient waiter on the same flight still gets the result.
	patient := make(chan []float32, 1)
	go func() {
		slab, err := b.Embed(context.Background(), []int32{1}, []float64{1})
		if err != nil {
			t.Error(err)
		}
		patient <- slab
	}()
	waitUntil(t, "patient waiter attached", func() bool { return b.Stats().Coalesced == 2 })
	f.gate <- struct{}{}
	select {
	case slab := <-patient:
		checkSlab(t, slab, []int32{1}, []float64{1})
	case <-time.After(2 * time.Second):
		t.Fatal("patient waiter stuck after cancellation of a sibling")
	}
	wg.Wait()
	// The registry must be fully retired: no leaked flights.
	waitUntil(t, "registry drained", func() bool {
		p, r := b.InFlight()
		return p == 0 && r == 0
	})
	b.mu.Lock()
	leaked := len(b.flights)
	b.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flights leaked in the registry", leaked)
	}
}

func TestBatcherPanicPublishesErrors(t *testing.T) {
	f := &fakeEmbedder{gate: make(chan struct{}), panicOn: true}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 1024})
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Embed(context.Background(), []int32{9}, []float64{3})
			errs <- err
		}()
	}
	waitUntil(t, "pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
	f.gate <- struct{}{}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter of a panicked pass got a nil error")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter stuck after pass panic")
		}
	}
	if b.Stats().Panics != 1 {
		t.Fatalf("panics = %d", b.Stats().Panics)
	}
	// The key must be retired so a retry recomputes cleanly.
	f.mu.Lock()
	f.panicOn = false
	f.mu.Unlock()
	f.gate = nil
	slab, err := b.Embed(context.Background(), []int32{9}, []float64{3})
	if err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
	checkSlab(t, slab, []int32{9}, []float64{3})
}

// newTestEngine builds a tiny real engine over a dynamic graph, the
// same shape the serving tests use.
func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	const nodes, maxEdges, d = 20, 4096, 16
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, nodes+1, d)
	edgeFeat := tensor.Randn(r, maxEdges+1, d)
	for j := 0; j < d; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 4, Seed: 2}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.NewDynamic(nodes)
	for _, e := range []graph.Edge{
		{Src: 1, Dst: 2, Time: 10}, {Src: 1, Dst: 3, Time: 20},
		{Src: 2, Dst: 4, Time: 30}, {Src: 3, Dst: 5, Time: 40},
		{Src: 4, Dst: 6, Time: 50}, {Src: 5, Dst: 1, Time: 60},
	} {
		if _, err := dyn.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	sampler := graph.NewDynamicSampler(dyn, cfg.NumNeighbors, graph.MostRecent, 0)
	return core.NewEngine(m, sampler, core.OptAll())
}

func TestBatcherMatchesEngineBitwise(t *testing.T) {
	eng := newTestEngine(t)
	d := eng.Model().Cfg.NodeDim
	b := New(eng, d, Config{Window: time.Millisecond, MaxBatch: 8})

	nodes := []int32{1, 2, 3, 1, 4, 5}
	ts := []float64{70, 70, 65, 70, 80, 80}
	want := eng.Embed(nodes, ts)

	// Concurrent single-target requests through the batcher must
	// reproduce the direct fused pass bitwise.
	var wg sync.WaitGroup
	slabs := make([][]float32, len(nodes))
	for i := range nodes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			slab, err := b.Embed(context.Background(), nodes[i:i+1], ts[i:i+1])
			if err != nil {
				t.Error(err)
				return
			}
			slabs[i] = slab
		}()
	}
	wg.Wait()
	for i := range nodes {
		for j := 0; j < d; j++ {
			if slabs[i][j] != want.At(i, j) {
				t.Fatalf("target %d differs from direct engine pass at col %d", i, j)
			}
		}
	}
}

func TestBatcherRetireTargetsBreaksSingleFlight(t *testing.T) {
	// Read-your-writes: once a history edit retires an in-flight key, a
	// request arriving after the edit must start a fresh pass against
	// the post-edit graph — never attach to the executing pre-edit one.
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 1024})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slab, err := b.Embed(context.Background(), []int32{42}, []float64{7})
		if err != nil {
			t.Error(err)
			return
		}
		checkSlab(t, slab, []int32{42}, []float64{7})
	}()
	waitUntil(t, "first pass executing", func() bool { _, r := b.InFlight(); return r == 1 })

	// An edit at t=7 does not retire the t=7 flight (only strictly newer
	// query times read the edited window)…
	if got := b.RetireTargets([]int32{42}, 7); got != 0 {
		t.Fatalf("edit at the flight's own time retired %d flights, want 0", got)
	}
	// …an edit beneath it does.
	if got := b.RetireTargets([]int32{42}, 5); got != 1 {
		t.Fatalf("retired %d flights, want 1", got)
	}
	if s := b.Stats(); s.RetireCalls != 2 || s.Retired != 1 {
		t.Fatalf("retire stats %+v", s)
	}

	// Same (node, ts) again: must queue a new slot, not coalesce into
	// the executing retired flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		slab, err := b.Embed(context.Background(), []int32{42}, []float64{7})
		if err != nil {
			t.Error(err)
			return
		}
		checkSlab(t, slab, []int32{42}, []float64{7})
	}()
	waitUntil(t, "post-retire request queued", func() bool { p, _ := b.InFlight(); return p == 1 })
	if got := b.Stats().Coalesced; got != 0 {
		t.Fatalf("post-retire request coalesced into the retired flight (%d)", got)
	}

	f.gate <- struct{}{} // release the pre-edit pass
	waitUntil(t, "second pass executing", func() bool { return f.numCalls() == 2 })
	f.gate <- struct{}{} // release the post-edit pass
	wg.Wait()
	if f.numCalls() != 2 {
		t.Fatalf("%d passes, want 2 (retire must break single-flight)", f.numCalls())
	}
	// The successor flight was created under the same key after the
	// retire; the retired pass's cleanup must not orphan it. (The pass
	// marks itself done just after publishing results, so poll.)
	waitUntil(t, "flight table drained", func() bool {
		p, r := b.InFlight()
		return p == 0 && r == 0
	})
}

func TestBatcherRetireTargetsConcurrentChurn(t *testing.T) {
	// Race pin (run with -race): embeds and retires interleaving freely
	// must neither race nor wedge, and every result stays correct.
	f := &fakeEmbedder{}
	b := New(f, fakeDim, Config{MaxBatch: 8})
	stop := make(chan struct{})
	var retirer sync.WaitGroup
	retirer.Add(1)
	go func() {
		defer retirer.Done()
		tm := 0.0
		for {
			select {
			case <-stop:
				return
			default:
				b.RetireTargets([]int32{1, 2, 3, 4}, tm)
				tm += 0.25
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				node := int32(1 + (w+i)%4)
				ts := float64(i)
				slab, err := b.Embed(context.Background(), []int32{node}, []float64{ts})
				if err != nil {
					t.Error(err)
					return
				}
				checkSlab(t, slab, []int32{node}, []float64{ts})
			}
		}()
	}
	wg.Wait()
	close(stop)
	retirer.Wait()
	if p, r := b.InFlight(); p != 0 || r != 0 {
		t.Fatalf("leaked flights after churn: pending=%d running=%d", p, r)
	}
}

func TestRetireTargetsFastPathBound(t *testing.T) {
	// The engine's invalidation hook calls RetireTargets on every
	// chronological append. With no future-time work in flight the call
	// must exit on the atomic time bound without taking the batcher
	// lock — and the bound must reset once the flight table drains, or
	// one long-gone future flight would leave every later append paying
	// the locked scan forever.
	f := &fakeEmbedder{gate: make(chan struct{})}
	b := New(f, fakeDim, Config{Window: time.Hour, MaxBatch: 1024})

	if got := math.Float64frombits(b.maxFlightT.Load()); !math.IsInf(got, -1) {
		t.Fatalf("fresh batcher bound %v, want -Inf", got)
	}
	if got := b.RetireTargets([]int32{1}, 0); got != 0 {
		t.Fatalf("idle retire = %d, want 0", got)
	}

	// A future-time flight raises the bound, so an edit beneath it still
	// takes the slow path and retires it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slab, err := b.Embed(context.Background(), []int32{7}, []float64{100})
		if err != nil {
			t.Error(err)
			return
		}
		checkSlab(t, slab, []int32{7}, []float64{100})
	}()
	waitUntil(t, "pass executing", func() bool { _, r := b.InFlight(); return r == 1 })
	if got := math.Float64frombits(b.maxFlightT.Load()); got != 100 {
		t.Fatalf("bound %v, want 100", got)
	}
	if got := b.RetireTargets([]int32{7}, 50); got != 1 {
		t.Fatalf("retired %d, want 1", got)
	}
	// The retire emptied the table, so the bound is -Inf again and the
	// next append's hook is back to the O(1) exit.
	if got := math.Float64frombits(b.maxFlightT.Load()); !math.IsInf(got, -1) {
		t.Fatalf("bound after drain %v, want -Inf", got)
	}
	if got := b.RetireTargets([]int32{7}, 50); got != 0 {
		t.Fatalf("post-drain retire = %d, want 0", got)
	}

	f.gate <- struct{}{} // release the retired pass; it publishes normally
	wg.Wait()
}
