// Package swap implements the online-learning loop's publication side:
// versioned parameter snapshots in a swap directory, an atomically
// replaced CURRENT manifest naming the live version, and a background
// fine-tuner that trains a private clone of the serving model on the
// watermarked prefix of the live edge stream.
//
// Layout of a swap directory:
//
//	params-<version>.tgp   parameter checkpoints (tgat.SaveParamsFS)
//	CURRENT                manifest: the version to serve
//
// Both go through the checkpoint envelope (CRC-checked, atomically
// replaced), so a crash mid-publish leaves the previous version
// intact and a torn manifest is detected, never half-read. Publishers
// write the params file BEFORE the manifest; consumers read the
// manifest and then open the file it names, so the manifest never
// points at a file that was not fully durable first. See DESIGN.md
// §16.
package swap

import (
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"tgopt/internal/checkpoint"
	"tgopt/internal/graph"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

// manifestVersion is the envelope version of the CURRENT manifest (an
// 8-byte little-endian model version).
const manifestVersion uint32 = 1

// ManifestName is the manifest file's name inside a swap directory.
const ManifestName = "CURRENT"

// ParamsPath returns the checkpoint path for a model version inside a
// swap directory.
func ParamsPath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("params-%d.tgp", version))
}

// Publish writes m's parameters as the given version and flips the
// CURRENT manifest to it. The params file lands (atomically, fsynced)
// before the manifest is replaced, so a consumer that reads the new
// manifest always finds a complete checkpoint behind it; a crash
// between the two writes leaves the previous version current and the
// orphaned params file harmless.
func Publish(fsys checkpoint.FS, dir string, m *tgat.Model, version uint64) error {
	if fsys == nil {
		fsys = checkpoint.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("swap: creating swap dir: %w", err)
	}
	if err := m.SaveParamsFS(fsys, ParamsPath(dir, version)); err != nil {
		return fmt.Errorf("swap: writing params v%d: %w", version, err)
	}
	return WriteManifest(fsys, dir, version)
}

// WriteManifest flips the CURRENT manifest to version without writing
// a params file — the commit half of Publish, exposed for tests and
// for republishing an existing version.
func WriteManifest(fsys checkpoint.FS, dir string, version uint64) error {
	if fsys == nil {
		fsys = checkpoint.OS{}
	}
	err := checkpoint.WriteFS(fsys, filepath.Join(dir, ManifestName), manifestVersion, func(w io.Writer) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], version)
		_, werr := w.Write(buf[:])
		return werr
	})
	if err != nil {
		return fmt.Errorf("swap: writing manifest: %w", err)
	}
	return nil
}

// Latest reads the CURRENT manifest and returns the published version
// and its params path. A missing manifest surfaces the underlying
// fs.ErrNotExist (callers treat it as "nothing published yet"); a
// corrupt one is an error.
func Latest(fsys checkpoint.FS, dir string) (version uint64, path string, err error) {
	if fsys == nil {
		fsys = checkpoint.OS{}
	}
	err = checkpoint.ReadFS(fsys, filepath.Join(dir, ManifestName), func(v uint32, r io.Reader) error {
		if v != manifestVersion {
			return fmt.Errorf("swap: manifest version %d", v)
		}
		var buf [8]byte
		if _, rerr := io.ReadFull(r, buf[:]); rerr != nil {
			return rerr
		}
		version = binary.LittleEndian.Uint64(buf[:])
		return nil
	})
	if err != nil {
		return 0, "", err
	}
	return version, ParamsPath(dir, version), nil
}

// FineTune trains a private clone of m on the watermarked prefix of
// dyn's edge stream and returns the clone. Only edges at or before the
// watermark participate: later ones may still be reordered by late
// arrivals inside the lateness window, and training on a prefix that
// later rewrites would bake unstable history into the parameters. m's
// own tensors are never touched — the caller swaps the clone's values
// in through the barrier (tgat.ApplyParams under core.Engine.SwapLock)
// once it decides to publish.
func FineTune(m *tgat.Model, dyn *graph.Dynamic, cfg trainer.Config) (*tgat.Model, *trainer.Result, error) {
	edges := dyn.Edges()
	wm := dyn.Watermark()
	n := sort.Search(len(edges), func(i int) bool { return edges[i].Time > wm })
	if n < 2 {
		return nil, nil, fmt.Errorf("swap: watermarked prefix has %d edges, need >= 2", n)
	}
	g, err := graph.NewGraph(dyn.NumNodes(), edges[:n:n])
	if err != nil {
		return nil, nil, fmt.Errorf("swap: building training graph: %w", err)
	}
	clone, err := m.Clone()
	if err != nil {
		return nil, nil, fmt.Errorf("swap: cloning model: %w", err)
	}
	s := graph.NewSampler(g, clone.Cfg.NumNeighbors, graph.MostRecent, cfg.Seed)
	res, err := trainer.Train(clone, g, s, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("swap: fine-tune: %w", err)
	}
	return clone, res, nil
}
