package swap

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tgopt/internal/checkpoint"
	"tgopt/internal/faultfs"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

const (
	testNodes = 24
	testDim   = 16
)

// testModel builds the deterministic small model the swap tests share;
// seed varies the parameter init so distinct versions have distinct
// tensors over identical feature tables.
func testModel(t *testing.T, seed uint64) *tgat.Model {
	t.Helper()
	const maxEdges = 4096
	r := tensor.NewRNG(1)
	nodeFeat := tensor.Randn(r, testNodes+1, testDim)
	edgeFeat := tensor.Randn(r, maxEdges+1, testDim)
	for j := 0; j < testDim; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: testDim, EdgeDim: testDim, TimeDim: testDim, NumNeighbors: 4, Seed: seed}
	m, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testDynamic(t *testing.T, n int) *graph.Dynamic {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	dyn := graph.NewDynamic(testNodes)
	for i := 0; i < n; i++ {
		e := graph.Edge{
			Src:  int32(1 + rng.Intn(testNodes-1)),
			Dst:  int32(1 + rng.Intn(testNodes-1)),
			Time: float64(10 * (i + 1)),
		}
		if _, _, err := dyn.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	return dyn
}

func paramBytes(m *tgat.Model) []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.Data()...)
	}
	return out
}

func TestPublishLatestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := testModel(t, 2)

	if _, _, err := Latest(nil, dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty dir: want fs.ErrNotExist, got %v", err)
	}

	if err := Publish(nil, dir, m, 1); err != nil {
		t.Fatal(err)
	}
	v, path, err := Latest(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || path != ParamsPath(dir, 1) {
		t.Fatalf("got v%d %q", v, path)
	}
	// A differently-initialized model of the same shape loads the
	// published params and lands on identical tensors.
	m2 := testModel(t, 9)
	sp, err := m2.ParseParamsFS(checkpoint.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	m2.ApplyParams(sp)
	a, b := paramBytes(m), paramBytes(m2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs after roundtrip: %v vs %v", i, a[i], b[i])
		}
	}

	// Publishing a newer version flips the manifest; the old params
	// file stays on disk for rollback.
	if err := Publish(nil, dir, m2, 2); err != nil {
		t.Fatal(err)
	}
	if v, _, err = Latest(nil, dir); err != nil || v != 2 {
		t.Fatalf("after republish: v%d err %v", v, err)
	}
	if _, err := os.Stat(ParamsPath(dir, 1)); err != nil {
		t.Fatalf("v1 params gone: %v", err)
	}
}

func TestLatestRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := Publish(nil, dir, testModel(t, 2), 7); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(filepath.Join(dir, ManifestName), 150); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(nil, dir); err == nil {
		t.Fatal("bit-flipped manifest accepted")
	}
}

func TestFineTuneTrainsCloneNotServingModel(t *testing.T) {
	m := testModel(t, 2)
	before := paramBytes(m)
	dyn := testDynamic(t, 60)

	cfg := trainer.DefaultConfig()
	cfg.Epochs = 1
	cfg.BatchSize = 16
	clone, res, err := FineTune(m, dyn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != 1 {
		t.Fatalf("epochs run: %d", len(res.EpochLoss))
	}
	after := paramBytes(m)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("serving model param %d mutated by fine-tune", i)
		}
	}
	cb := paramBytes(clone)
	changed := false
	for i := range before {
		if cb[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("fine-tune left the clone's params identical")
	}
}

func TestFineTuneRefusesTinyPrefix(t *testing.T) {
	m := testModel(t, 2)
	dyn := testDynamic(t, 1)
	if _, _, err := FineTune(m, dyn, trainer.DefaultConfig()); err == nil {
		t.Fatal("want error on a 1-edge prefix")
	}
}

// FuzzSwapManifest pins the versioned-params envelope's read side: an
// arbitrary CURRENT file must either parse to a version or error —
// never panic, never hand back garbage silently when the checksum
// cannot have matched.
func FuzzSwapManifest(f *testing.F) {
	dir := f.TempDir()
	if err := WriteManifest(nil, dir, 42); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("TGCK garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, ManifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		v, path, err := Latest(nil, d)
		if err != nil {
			return
		}
		// Accepted: the envelope checksum passed, so the bytes must be a
		// manifest we could have written — and the path must be derived
		// from the parsed version.
		if path != ParamsPath(d, v) {
			t.Fatalf("version %d but path %q", v, path)
		}
	})
}
