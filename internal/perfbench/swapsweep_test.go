package perfbench

import "testing"

// TestSwapSweepAcceptance pins the BENCH_6.json acceptance bar at a
// reduced scale: every post-swap spot check is bitwise-identical to a
// fixed-params reference engine (no stale cache entry, packed weight,
// or time table survives a swap), and the cache visibly re-warms —
// steady-state hit rate strictly above the post-swap rate at every
// cadence.
func TestSwapSweepAcceptance(t *testing.T) {
	cfg := DefaultSwapSweepConfig()
	cfg.Edges = 1_500
	cfg.Queries = 1_200
	cfg.SwapEvery = []int{300}
	cfg.Runs = 1
	rep, err := RunSwapSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		t.Logf("every %d: hit %.4f post-swap %.4f steady %.4f pause %.0fus spot %d/%d",
			p.SwapEvery, p.HitRate, p.PostSwapHitRate, p.SteadyHitRate,
			p.MeanSwapPauseUs, p.SpotChecks-p.SpotCheckFailures, p.SpotChecks)
		if p.SpotChecks == 0 {
			t.Errorf("every %d: no spot checks ran", p.SwapEvery)
		}
		if p.SpotCheckFailures > 0 {
			t.Errorf("every %d: %d post-swap spot checks diverged from the reference",
				p.SwapEvery, p.SpotCheckFailures)
		}
		if p.RecoveryGain <= 0 {
			t.Errorf("every %d: steady %.4f not above post-swap %.4f",
				p.SwapEvery, p.SteadyHitRate, p.PostSwapHitRate)
		}
	}
	if !rep.AllPointsPass {
		t.Error("acceptance flag false")
	}
	if rep.BaselineHitRate <= 0 {
		t.Errorf("baseline hit rate %.4f", rep.BaselineHitRate)
	}
}
