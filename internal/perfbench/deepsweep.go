// BENCH_5: deep-layer memoization under live ingestion (DESIGN.md
// §15). RunDeepSweep serves a 3-layer model over a graph.Dynamic while
// appends and late inserts race the query stream, and compares the two
// invalidation policies — transitive selective invalidation against
// the pre-PR-9 clear-the-deep-caches-whole baseline — at several
// ingest rates. The acceptance bar: selective wins the deep-layer hit
// rate at every measured rate and improves end-to-end ns/edge.

package perfbench

import (
	"runtime"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// DeepSweepConfig shapes the sweep. Edge times are integral (the memo
// Key's documented sound domain) and strictly increasing on the append
// path; late inserts land inside the lateness window.
type DeepSweepConfig struct {
	Nodes  int // graph size
	Edges  int // total pre-generated interaction stream
	Prefix int // edges ingested before serving starts

	Layers int // model depth (3 = one deep cached layer)
	K      int // sampled most-recent neighbors
	Dim    int // node/edge/time feature width
	Heads  int

	Pairs    int     // query pairs served per rate point
	Batch    int     // pairs per fused Embed call
	HotPairs int     // distinct (src, dst) templates queries draw from
	ZipfS    float64 // query skew over the hot pairs
	Rates    []int   // ingest events per 1000 query pairs, one point each
	LateFrac float64 // fraction of ingests that are late inserts
	Lateness float64 // dynamic graph lateness window
	Runs     int     // timing repetitions (min wall wins)
	CacheLim int     // total cache item limit across layers
	Seed     uint64
}

// DefaultDeepSweepConfig is the committed BENCH_5.json configuration.
func DefaultDeepSweepConfig() DeepSweepConfig {
	return DeepSweepConfig{
		Nodes:    60,
		Edges:    6_000,
		Prefix:   4_000,
		Layers:   3,
		K:        5,
		Dim:      32,
		Heads:    2,
		Pairs:    2_000,
		Batch:    25,
		HotPairs: 64,
		ZipfS:    1.1,
		Rates:    []int{25, 100, 400},
		LateFrac: 0.5,
		Lateness: 1e9,
		Runs:     3,
		CacheLim: 200_000,
		Seed:     1,
	}
}

// DeepSweepLayer is one layer's hit-rate line within a leg.
type DeepSweepLayer struct {
	Layer   int     `json:"layer"`
	Lookups int64   `json:"lookups"`
	Hits    int64   `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// DeepSweepLeg is one policy's measurement at one ingest rate.
type DeepSweepLeg struct {
	Policy      string           `json:"policy"` // "selective" | "clear_all"
	NsPerEdge   float64          `json:"ns_per_edge"`
	Layers      []DeepSweepLayer `json:"layers"`
	DeepHitRate float64          `json:"deep_hit_rate"` // layers >= 2 pooled
	Invalidated int64            `json:"invalidated"`
}

// DeepSweepPoint pairs the two legs at one ingest rate.
type DeepSweepPoint struct {
	RatePer1000 int          `json:"rate_per_1000_pairs"`
	Ingests     int          `json:"ingests"`
	LateEdges   int          `json:"late_edges"`
	Selective   DeepSweepLeg `json:"selective"`
	ClearAll    DeepSweepLeg `json:"clear_all"`
	// Acceptance per point: selective must hold a strictly better
	// deep-layer hit rate and no worse end-to-end time.
	HitRateGain float64 `json:"hit_rate_gain"`
	Speedup     float64 `json:"speedup"`
}

// DeepSweepReport is the BENCH_5.json artifact.
type DeepSweepReport struct {
	Schema         int              `json:"schema"`
	GoVersion      string           `json:"go_version"`
	GOOS           string           `json:"goos"`
	GOARCH         string           `json:"goarch"`
	MaxProcs       int              `json:"maxprocs"`
	ParallelDegree int              `json:"parallel_degree"`
	Config         DeepSweepConfig  `json:"config"`
	Points         []DeepSweepPoint `json:"points"`
	// AllPointsPass is the committed acceptance flag: at every rate,
	// selective beats clear-all on deep hit rate and on ns/edge.
	AllPointsPass bool `json:"all_points_pass"`
}

// deepSweepWorkload is the shared deterministic input both legs replay.
type deepSweepWorkload struct {
	model  *tgat.Model
	stream []graph.Edge // full pre-generated stream (prefix + tail)
	pairs  [][2]int32   // hot (src, dst) query templates
	picks  []int        // Zipf-sampled template index per query pair
	lates  []bool       // per ingest event: late insert vs append
}

func buildDeepSweep(cfg DeepSweepConfig) (*deepSweepWorkload, error) {
	r := tensor.NewRNG(cfg.Seed)
	stream := make([]graph.Edge, 0, cfg.Edges)
	clock := 0.0
	for len(stream) < cfg.Edges {
		clock += float64(1 + r.Intn(3))
		src := int32(1 + r.Intn(cfg.Nodes))
		dst := int32(1 + r.Intn(cfg.Nodes))
		if src == dst {
			continue
		}
		stream = append(stream, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(stream) + 1)})
	}
	// Room for every possible live-ingested edge id past the stream.
	nodeFeat := tensor.Randn(r, cfg.Nodes+1, cfg.Dim)
	edgeFeat := tensor.Randn(r, 2*cfg.Edges+2, cfg.Dim)
	for j := 0; j < cfg.Dim; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	mcfg := tgat.Config{
		Layers: cfg.Layers, Heads: cfg.Heads, NodeDim: cfg.Dim, EdgeDim: cfg.Dim,
		TimeDim: cfg.Dim, NumNeighbors: cfg.K, Seed: 7,
	}
	m, err := tgat.NewModel(mcfg, nodeFeat, edgeFeat)
	if err != nil {
		return nil, err
	}
	// Hot query templates: endpoint pairs of busy prefix edges, so their
	// sampled neighborhoods are deep and overlapping.
	pairs := make([][2]int32, cfg.HotPairs)
	for i := range pairs {
		e := stream[r.Intn(cfg.Prefix)]
		pairs[i] = [2]int32{e.Src, e.Dst}
	}
	// Zipf picks over the templates, shared by both legs; reuse the
	// cachesweep inverse-CDF sampler.
	trace := zipfKeys(CacheSweepConfig{
		Keyspace: cfg.HotPairs, Accesses: cfg.Pairs, ZipfS: cfg.ZipfS, Seed: cfg.Seed + 1,
	})
	picks := make([]int, cfg.Pairs)
	for i, k := range trace {
		picks[i] = int(k - 1)
	}
	// Pre-draw the late/append decision per potential ingest event so
	// both legs see the identical mutation sequence.
	lates := make([]bool, cfg.Edges)
	for i := range lates {
		lates[i] = r.Float64() < cfg.LateFrac
	}
	return &deepSweepWorkload{model: m, stream: stream, pairs: pairs, picks: picks, lates: lates}, nil
}

// deepSweepLeg replays the interleaved query/ingest schedule once under
// the given policy and returns the leg measurement. Deterministic: both
// legs consume identical queries and mutations.
func deepSweepLeg(cfg DeepSweepConfig, w *deepSweepWorkload, clearAll bool) (DeepSweepLeg, int, int, error) {
	leg := DeepSweepLeg{Policy: "selective"}
	if clearAll {
		leg.Policy = "clear_all"
	}
	var best time.Duration
	ingests, lateCount := 0, 0
	for run := 0; run < cfg.Runs; run++ {
		dyn := graph.NewDynamic(cfg.Nodes)
		dyn.SetLateness(cfg.Lateness)
		for _, e := range w.stream[:cfg.Prefix] {
			if _, err := dyn.Append(e); err != nil {
				return leg, 0, 0, err
			}
		}
		opt := core.OptAll()
		opt.TrackTargets = true
		opt.CacheLimit = cfg.CacheLim
		opt.DeepClearAll = clearAll
		eng := core.NewEngine(w.model, graph.NewDynamicSampler(dyn, cfg.K, graph.MostRecent, 0), opt)

		mr := tensor.NewRNG(cfg.Seed + 2) // mutation times, same per run/leg
		ar := tensor.NewArena()
		ns := make([]int32, 2*cfg.Batch)
		ts := make([]float64, 2*cfg.Batch)
		tail := cfg.Prefix // next unused stream edge (endpoint source)
		nextIdx := int32(cfg.Edges + 1)
		var invalidated int64
		ingests, lateCount = 0, 0
		pending := 0 // accumulated ingest credit, in events per 1000 pairs

		start := time.Now()
		for q := 0; q < cfg.Pairs; q += cfg.Batch {
			n := cfg.Batch
			if q+n > cfg.Pairs {
				n = cfg.Pairs - q
			}
			now := dyn.MaxTime() + 1
			for i := 0; i < n; i++ {
				p := w.pairs[w.picks[q+i]]
				ns[i], ns[n+i] = p[0], p[1]
				ts[i], ts[n+i] = now, now
			}
			ar.Reset()
			h := eng.EmbedWith(ar, ns[:2*n], ts[:2*n])
			d := h.Dim(1)
			hSrc := ar.Wrap(h.Data()[:n*d], n, d)
			hDst := ar.Wrap(h.Data()[n*d:2*n*d], n, d)
			w.model.ScoreWith(ar, hSrc, hDst)

			// Ingest credit: rate events per 1000 pairs, accumulated in
			// integer thousandths so every rate divides evenly.
			pending += n * cfg.Rates[0]
			for pending >= 1000 && tail < len(w.stream) {
				pending -= 1000
				src, dst := w.stream[tail].Src, w.stream[tail].Dst
				late := w.lates[tail]
				tail++
				var et float64
				if late {
					// Land a whole-number time a few steps behind the head
					// (deep inside every recent query's window).
					back := float64(2 + mr.Intn(8))
					et = dyn.MaxTime() - back
					if et <= 0 {
						et = 1
					}
				} else {
					et = dyn.MaxTime() + float64(1+mr.Intn(2))
				}
				res, _, err := dyn.Ingest(graph.Edge{Src: src, Dst: dst, Time: et, Idx: nextIdx})
				if err != nil {
					return leg, 0, 0, err
				}
				switch res {
				case graph.IngestAppended:
					nextIdx++
					ingests++
					invalidated += int64(eng.InvalidateAppend(src, dst, et))
				case graph.IngestLate:
					nextIdx++
					ingests++
					lateCount++
					invalidated += int64(eng.InvalidateLateEdge(src, dst, et))
				}
			}
		}
		wall := time.Since(start)
		if run == 0 || wall < best {
			best = wall
		}
		if run == cfg.Runs-1 {
			// Stats from the final run (deterministic across runs).
			var deepLookups, deepHits int64
			for _, ls := range eng.LayerCacheStats() {
				lr := DeepSweepLayer{Layer: ls.Layer, Lookups: ls.Lookups, Hits: ls.Hits}
				if ls.Lookups > 0 {
					lr.HitRate = float64(ls.Hits) / float64(ls.Lookups)
				}
				leg.Layers = append(leg.Layers, lr)
				if ls.Layer >= 2 {
					deepLookups += ls.Lookups
					deepHits += ls.Hits
				}
			}
			if deepLookups > 0 {
				leg.DeepHitRate = float64(deepHits) / float64(deepLookups)
			}
			leg.Invalidated = invalidated
		}
	}
	leg.NsPerEdge = float64(best.Nanoseconds()) / float64(cfg.Pairs)
	return leg, ingests, lateCount, nil
}

// RunDeepSweep executes the sweep and returns the report.
func RunDeepSweep(cfg DeepSweepConfig) (*DeepSweepReport, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	w, err := buildDeepSweep(cfg)
	if err != nil {
		return nil, err
	}
	rep := &DeepSweepReport{
		Schema:         1,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		MaxProcs:       runtime.GOMAXPROCS(0),
		ParallelDegree: parallel.Degree(),
		Config:         cfg,
		AllPointsPass:  true,
	}
	rates := cfg.Rates
	for _, rate := range rates {
		ptCfg := cfg
		ptCfg.Rates = []int{rate}
		sel, ingests, lateCount, err := deepSweepLeg(ptCfg, w, false)
		if err != nil {
			return nil, err
		}
		clr, _, _, err := deepSweepLeg(ptCfg, w, true)
		if err != nil {
			return nil, err
		}
		pt := DeepSweepPoint{
			RatePer1000: rate,
			Ingests:     ingests,
			LateEdges:   lateCount,
			Selective:   sel,
			ClearAll:    clr,
			HitRateGain: sel.DeepHitRate - clr.DeepHitRate,
		}
		if sel.NsPerEdge > 0 {
			pt.Speedup = clr.NsPerEdge / sel.NsPerEdge
		}
		if pt.HitRateGain <= 0 || pt.Speedup < 1 {
			rep.AllPointsPass = false
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
