// BENCH_6: online-learning hot-swap under serving load (DESIGN.md
// §16). RunSwapSweep serves a Zipf-skewed query stream over one engine
// while parameter hot-swaps fire every SwapEvery queries, and measures
// what a swap costs the memo cache: the hit rate right after the
// epoch bump versus the steady rate once the cache re-warms, the pause
// a swap itself takes, and — the correctness half — bitwise spot
// checks of post-swap rows against a reference engine built directly
// on the swapped-in parameters.

package perfbench

import (
	"runtime"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// SwapSweepConfig shapes the sweep. Two parameter versions (distinct
// seeds over identical feature tables) alternate; SwapEvery lists one
// measured point per swap cadence.
type SwapSweepConfig struct {
	Nodes  int // graph size
	Edges  int // static interaction stream length
	Layers int
	K      int // sampled most-recent neighbors
	Dim    int // node/edge/time feature width
	Heads  int

	Queries   int     // embed queries served per point
	Batch     int     // queries per fused Embed call
	HotKeys   int     // distinct query nodes the Zipf trace draws from
	ZipfS     float64 // query skew
	SwapEvery []int   // queries between swaps, one point each
	Window    int     // queries per hit-rate window (post-swap vs steady)
	Runs      int     // timing repetitions (min wall wins)
	CacheLim  int     // cache item limit across layers
	Seed      uint64
}

// DefaultSwapSweepConfig is the committed BENCH_6.json configuration.
func DefaultSwapSweepConfig() SwapSweepConfig {
	return SwapSweepConfig{
		Nodes:     60,
		Edges:     4_000,
		Layers:    2,
		K:         5,
		Dim:       32,
		Heads:     2,
		Queries:   3_000,
		Batch:     25,
		HotKeys:   64,
		ZipfS:     1.1,
		SwapEvery: []int{250, 1000},
		Window:    50,
		Runs:      3,
		CacheLim:  200_000,
		Seed:      1,
	}
}

// SwapSweepPoint is one cadence's measurement.
type SwapSweepPoint struct {
	SwapEvery int     `json:"swap_every"`
	Swaps     int     `json:"swaps"`
	HitRate   float64 `json:"hit_rate"` // whole stream, all layers
	// PostSwapHitRate pools the windows that start within Window
	// queries of a swap (cold re-warm); SteadyHitRate pools the windows
	// ending just before the next swap (fully re-warmed).
	PostSwapHitRate float64 `json:"post_swap_hit_rate"`
	SteadyHitRate   float64 `json:"steady_hit_rate"`
	RecoveryGain    float64 `json:"recovery_gain"` // steady - post-swap
	NsPerQuery      float64 `json:"ns_per_query"`  // embed time only
	MeanSwapPauseUs float64 `json:"mean_swap_pause_us"`
	// Bitwise spot checks: after every swap, one hot batch is compared
	// against a reference engine built directly on the active params.
	SpotChecks        int `json:"spot_checks"`
	SpotCheckFailures int `json:"spot_check_failures"`
}

// SwapSweepReport is the BENCH_6.json artifact.
type SwapSweepReport struct {
	Schema         int             `json:"schema"`
	GoVersion      string          `json:"go_version"`
	GOOS           string          `json:"goos"`
	GOARCH         string          `json:"goarch"`
	MaxProcs       int             `json:"maxprocs"`
	ParallelDegree int             `json:"parallel_degree"`
	Config         SwapSweepConfig `json:"config"`
	// Baseline leg: the identical query stream with no swaps at all.
	BaselineHitRate    float64          `json:"baseline_hit_rate"`
	BaselineNsPerQuery float64          `json:"baseline_ns_per_query"`
	Points             []SwapSweepPoint `json:"points"`
	// AllPointsPass: every spot check bitwise-matched its reference and
	// every cadence shows the cache actually re-warming (steady rate
	// strictly above the post-swap rate).
	AllPointsPass bool `json:"all_points_pass"`
}

// swapSweepWorkload is the deterministic input every leg replays.
type swapSweepWorkload struct {
	serve   *tgat.Model    // mutated in place by swaps
	refs    []*core.Engine // one per version, fixed params, for spot checks
	snaps   [][][]float32  // per-version raw param snapshot
	sampler *graph.Sampler
	nodes   []int32 // Zipf-picked query node per query index
	qt      float64 // fixed integral query time past the stream's end
}

func snapshotParams(m *tgat.Model) [][]float32 {
	ps := m.Params()
	out := make([][]float32, len(ps))
	for i, p := range ps {
		out[i] = append([]float32(nil), p.Data()...)
	}
	return out
}

func restoreParams(m *tgat.Model, snap [][]float32) {
	for i, p := range m.Params() {
		copy(p.Data(), snap[i])
	}
}

func buildSwapSweep(cfg SwapSweepConfig) (*swapSweepWorkload, error) {
	r := tensor.NewRNG(cfg.Seed)
	edges := make([]graph.Edge, 0, cfg.Edges)
	clock := 0.0
	for len(edges) < cfg.Edges {
		clock += float64(1 + r.Intn(3))
		src := int32(1 + r.Intn(cfg.Nodes))
		dst := int32(1 + r.Intn(cfg.Nodes))
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, Time: clock, Idx: int32(len(edges) + 1)})
	}
	nodeFeat := tensor.Randn(r, cfg.Nodes+1, cfg.Dim)
	edgeFeat := tensor.Randn(r, cfg.Edges+2, cfg.Dim)
	for j := 0; j < cfg.Dim; j++ {
		nodeFeat.Set(0, 0, j)
		edgeFeat.Set(0, 0, j)
	}
	newModel := func(seed uint64) (*tgat.Model, error) {
		mcfg := tgat.Config{
			Layers: cfg.Layers, Heads: cfg.Heads, NodeDim: cfg.Dim, EdgeDim: cfg.Dim,
			TimeDim: cfg.Dim, NumNeighbors: cfg.K, Seed: seed,
		}
		return tgat.NewModel(mcfg, nodeFeat, edgeFeat)
	}
	serve, err := newModel(7)
	if err != nil {
		return nil, err
	}
	other, err := newModel(9)
	if err != nil {
		return nil, err
	}
	g, err := graph.NewGraph(cfg.Nodes, edges)
	if err != nil {
		return nil, err
	}
	sampler := graph.NewSampler(g, cfg.K, graph.MostRecent, 0)
	w := &swapSweepWorkload{
		serve:   serve,
		snaps:   [][][]float32{snapshotParams(serve), snapshotParams(other)},
		sampler: sampler,
		qt:      clock + 1,
	}
	// Reference engines on fixed params, one per version: the bitwise
	// oracle a post-swap spot check compares against. Cache disabled so
	// every reference row is a cold compute.
	for _, seed := range []uint64{7, 9} {
		rm, err := newModel(seed)
		if err != nil {
			return nil, err
		}
		ropt := core.OptAll()
		ropt.EnableCache = false
		w.refs = append(w.refs, core.NewEngine(rm, sampler, ropt))
	}
	// Hot query nodes drawn from busy edges, Zipf-picked per query.
	hot := make([]int32, cfg.HotKeys)
	for i := range hot {
		hot[i] = edges[r.Intn(cfg.Edges)].Src
	}
	trace := zipfKeys(CacheSweepConfig{
		Keyspace: cfg.HotKeys, Accesses: cfg.Queries, ZipfS: cfg.ZipfS, Seed: cfg.Seed + 1,
	})
	w.nodes = make([]int32, cfg.Queries)
	for i, k := range trace {
		w.nodes[i] = hot[int(k-1)]
	}
	return w, nil
}

// totals sums lookups and hits across all cached layers.
func totals(eng *core.Engine) (lookups, hits int64) {
	for _, ls := range eng.LayerCacheStats() {
		lookups += ls.Lookups
		hits += ls.Hits
	}
	return
}

// spotCheck embeds one hot batch on the serving engine (post-swap, so
// cold) and on the fixed-params reference, requiring bitwise equality.
func spotCheck(cfg SwapSweepConfig, w *swapSweepWorkload, eng, ref *core.Engine) bool {
	n := cfg.Batch
	if n > len(w.nodes) {
		n = len(w.nodes)
	}
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = w.qt
	}
	got := eng.Embed(w.nodes[:n], ts)
	want := ref.Embed(w.nodes[:n], ts)
	for i := 0; i < n; i++ {
		for j := 0; j < cfg.Dim; j++ {
			if got.At(i, j) != want.At(i, j) {
				return false
			}
		}
	}
	return true
}

// swapSweepLeg replays the query stream once per run with swaps every
// swapEvery queries (0 = baseline, no swaps). Embed time is accumulated
// separately from swap pauses and spot checks so NsPerQuery prices the
// serving path alone.
func swapSweepLeg(cfg SwapSweepConfig, w *swapSweepWorkload, swapEvery int) (SwapSweepPoint, error) {
	pt := SwapSweepPoint{SwapEvery: swapEvery}
	var best time.Duration
	for run := 0; run < cfg.Runs; run++ {
		restoreParams(w.serve, w.snaps[0])
		opt := core.OptAll()
		opt.CacheLimit = cfg.CacheLim
		eng := core.NewEngine(w.serve, w.sampler, opt)

		ns := make([]int32, cfg.Batch)
		ts := make([]float64, cfg.Batch)
		ar := tensor.NewArena()
		var embedWall, pauseWall time.Duration
		var winLook, winHit int64 // totals at the current window's start
		var postLook, postHit, steadyLook, steadyHit int64
		version := uint64(0)
		swaps, spotChecks, spotFails := 0, 0, 0
		sinceSwap := 0
		winSwaps := 0 // swap count at the current window's start

		for q := 0; q < cfg.Queries; q += cfg.Batch {
			n := cfg.Batch
			if q+n > cfg.Queries {
				n = cfg.Queries - q
			}
			if swapEvery > 0 && q > 0 && q%swapEvery == 0 {
				version++
				snap := w.snaps[version%2]
				t0 := time.Now()
				eng.SwapParams(version, func() { restoreParams(w.serve, snap) })
				pauseWall += time.Since(t0)
				swaps++
				sinceSwap = 0
				spotChecks++
				if !spotCheck(cfg, w, eng, w.refs[version%2]) {
					spotFails++
				}
			}
			copy(ns[:n], w.nodes[q:q+n])
			for i := 0; i < n; i++ {
				ts[i] = w.qt
			}
			ar.Reset()
			t0 := time.Now()
			eng.EmbedWith(ar, ns[:n], ts[:n])
			embedWall += time.Since(t0)
			sinceSwap += n

			if (q+n)%cfg.Window == 0 || q+n == cfg.Queries {
				lk, ht := totals(eng)
				dl, dh := lk-winLook, ht-winHit
				winLook, winHit = lk, ht
				if swapEvery > 0 {
					// A window that contains a swap (or starts right after
					// one) is cold re-warm; a swap-free window ending just
					// before the next swap is the fully re-warmed steady
					// state.
					if swaps > winSwaps || sinceSwap <= cfg.Window {
						postLook += dl
						postHit += dh
					} else if sinceSwap >= swapEvery-cfg.Window {
						steadyLook += dl
						steadyHit += dh
					}
				}
				winSwaps = swaps
			}
		}
		if run == 0 || embedWall < best {
			best = embedWall
		}
		if run == cfg.Runs-1 {
			lk, ht := totals(eng)
			if lk > 0 {
				pt.HitRate = float64(ht) / float64(lk)
			}
			if postLook > 0 {
				pt.PostSwapHitRate = float64(postHit) / float64(postLook)
			}
			if steadyLook > 0 {
				pt.SteadyHitRate = float64(steadyHit) / float64(steadyLook)
			}
			pt.RecoveryGain = pt.SteadyHitRate - pt.PostSwapHitRate
			pt.Swaps = swaps
			pt.SpotChecks = spotChecks
			pt.SpotCheckFailures = spotFails
			if swaps > 0 {
				pt.MeanSwapPauseUs = float64(pauseWall.Microseconds()) / float64(swaps)
			}
		}
		eng.Close()
	}
	pt.NsPerQuery = float64(best.Nanoseconds()) / float64(cfg.Queries)
	return pt, nil
}

// RunSwapSweep executes the sweep and returns the report.
func RunSwapSweep(cfg SwapSweepConfig) (*SwapSweepReport, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	w, err := buildSwapSweep(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, ref := range w.refs {
			ref.Close()
		}
	}()
	rep := &SwapSweepReport{
		Schema:         1,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		MaxProcs:       runtime.GOMAXPROCS(0),
		ParallelDegree: parallel.Degree(),
		Config:         cfg,
		AllPointsPass:  true,
	}
	base, err := swapSweepLeg(cfg, w, 0)
	if err != nil {
		return nil, err
	}
	rep.BaselineHitRate = base.HitRate
	rep.BaselineNsPerQuery = base.NsPerQuery
	for _, every := range cfg.SwapEvery {
		pt, err := swapSweepLeg(cfg, w, every)
		if err != nil {
			return nil, err
		}
		if pt.SpotCheckFailures > 0 || pt.RecoveryGain <= 0 {
			rep.AllPointsPass = false
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
