package perfbench

import (
	"math"
	"runtime"
	"sort"

	"tgopt/internal/core"
	"tgopt/internal/tensor"
)

// CacheSweepConfig shapes the hit-rate-vs-byte-budget sweep behind
// `tgopt-bench cachesweep` (BENCH_3.json): one deterministic
// Zipf-skewed key trace — the skew production embedding traffic shows
// (a few hot endpoints, a long cold tail) — replayed through a FIFO
// cache and a TinyLFU cache at each byte budget. Both caches see the
// identical access sequence and identical entry accounting, so the
// only degree of freedom is the admission/eviction policy.
type CacheSweepConfig struct {
	Keyspace int     // distinct keys the trace draws from
	Accesses int     // trace length
	ZipfS    float64 // skew exponent (s > 1: heavier head)
	Dim      int     // entry width in float32s (drives bytes/entry)
	Shards   int     // cache shard count (as the serving engine uses)
	Budgets  []int64 // hot-tier byte budgets, one sweep point each
	Seed     uint64
}

// DefaultCacheSweepConfig is the committed BENCH_3.json configuration:
// a 100k-key Zipf(1.05) trace at the serving feature width, swept from
// a cache far too small for the working set up to one holding most of
// it.
func DefaultCacheSweepConfig() CacheSweepConfig {
	return CacheSweepConfig{
		Keyspace: 100_000,
		Accesses: 400_000,
		ZipfS:    1.05,
		Dim:      32,
		Shards:   8,
		Budgets:  []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20},
		Seed:     1,
	}
}

// CacheSweepPoint is one budget's measured pair of hit rates.
type CacheSweepPoint struct {
	BudgetBytes    int64   `json:"budget_bytes"`
	Entries        int     `json:"entries"`
	FIFOHitRate    float64 `json:"fifo_hit_rate"`
	TinyLFUHitRate float64 `json:"tinylfu_hit_rate"`
	// Improvement is TinyLFU minus FIFO in absolute hit-rate points;
	// the acceptance bar is >= 0 at every budget and > 0 at the
	// smallest.
	Improvement   float64 `json:"improvement"`
	AdmitRejected int64   `json:"admit_rejected"`
}

// CacheSweepReport is the BENCH_3.json artifact.
type CacheSweepReport struct {
	Schema    int               `json:"schema"`
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Keyspace  int               `json:"keyspace"`
	Accesses  int               `json:"accesses"`
	ZipfS     float64           `json:"zipf_s"`
	Dim       int               `json:"dim"`
	Seed      uint64            `json:"seed"`
	Points    []CacheSweepPoint `json:"points"`
}

// zipfKeys samples cfg.Accesses keys from [1, cfg.Keyspace] under a
// Zipf(cfg.ZipfS) popularity law via inverse-CDF over the precomputed
// cumulative weights. Deterministic in the seed.
func zipfKeys(cfg CacheSweepConfig) []uint64 {
	r := tensor.NewRNG(cfg.Seed)
	cum := make([]float64, cfg.Keyspace)
	total := 0.0
	for i := 0; i < cfg.Keyspace; i++ {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		cum[i] = total
	}
	trace := make([]uint64, cfg.Accesses)
	for i := range trace {
		x := r.Float64() * total
		trace[i] = uint64(1 + sort.SearchFloat64s(cum, x))
	}
	return trace
}

// sweepOne replays the trace through one cache — lookup, store on miss,
// exactly the engine's memo pattern — and returns its final stats.
func sweepOne(cfg CacheSweepConfig, policy core.CachePolicy, entries int, trace []uint64) core.CacheStats {
	c := core.NewCacheWith(core.CacheConfig{
		Limit:  entries,
		Dim:    cfg.Dim,
		Shards: cfg.Shards,
		Policy: policy,
	})
	keys := make([]uint64, 1)
	hits := make([]bool, 1)
	row := tensor.New(1, cfg.Dim)
	for _, k := range trace {
		keys[0] = k
		if c.LookupInto(keys, row, hits) == 1 {
			continue
		}
		for j := 0; j < cfg.Dim; j++ {
			row.Set(float32(k), 0, j)
		}
		c.Store(keys, row)
	}
	return c.Stats()
}

// RunCacheSweep executes the sweep and returns the report.
func RunCacheSweep(cfg CacheSweepConfig) (*CacheSweepReport, error) {
	trace := zipfKeys(cfg)
	rep := &CacheSweepReport{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Keyspace:  cfg.Keyspace,
		Accesses:  cfg.Accesses,
		ZipfS:     cfg.ZipfS,
		Dim:       cfg.Dim,
		Seed:      cfg.Seed,
	}
	for _, budget := range cfg.Budgets {
		entries := core.EntriesForBudget(budget, cfg.Dim)
		fifo := sweepOne(cfg, core.CacheFIFO, entries, trace)
		tlfu := sweepOne(cfg, core.CacheTinyLFU, entries, trace)
		fr := float64(fifo.Hits) / float64(fifo.Lookups)
		tr := float64(tlfu.Hits) / float64(tlfu.Lookups)
		rep.Points = append(rep.Points, CacheSweepPoint{
			BudgetBytes:    budget,
			Entries:        entries,
			FIFOHitRate:    fr,
			TinyLFUHitRate: tr,
			Improvement:    tr - fr,
			AdmitRejected:  tlfu.AdmitRejected,
		})
	}
	return rep, nil
}
