// BENCH_4: the int8 quantized inference path (DESIGN.md §14). RunQuant
// compares both precisions at three levels — the dense kernel, the
// end-to-end stream task at an equal cache byte budget, and the memo
// cache's hit rate across byte budgets (int8 entries are smaller, so
// the same budget holds more of the working set) — and embeds the
// accuracy harness so the speed numbers always travel with the AP
// delta that buys them.

package perfbench

import (
	"runtime"
	"testing"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/parallel"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// QuantBudgetPoint is one cache byte budget measured at both
// precisions over the same chronological stream.
type QuantBudgetPoint struct {
	BudgetBytes int64 `json:"budget_bytes"`
	// Entry capacities at this budget (int8 entries are smaller).
	Float32Entries int `json:"float32_entries"`
	Int8Entries    int `json:"int8_entries"`
	// Memo-cache hit rates over the full stream.
	Float32HitRate float64 `json:"float32_hit_rate"`
	Int8HitRate    float64 `json:"int8_hit_rate"`
}

// QuantReport is the BENCH_4 artifact.
type QuantReport struct {
	Schema         int     `json:"schema"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	MaxProcs       int     `json:"maxprocs"`
	ParallelDegree int     `json:"parallel_degree"`
	Dataset        string  `json:"dataset"`
	Scale          float64 `json:"scale"`
	Runs           int     `json:"runs"`

	// KernelSpeedup is int8_packed MB/s over float32_blocked MB/s at
	// the attention batch shape (acceptance: >= 2x).
	KernelSpeedup float64 `json:"kernel_speedup"`
	// E2EBudgetBytes is the shared cache byte budget of the two e2e
	// rows; E2ESpeedup is float32 ns/edge over int8 ns/edge there.
	E2EBudgetBytes int64   `json:"e2e_budget_bytes"`
	E2ESpeedup     float64 `json:"e2e_speedup"`

	Results []Result           `json:"results"`
	Budgets []QuantBudgetPoint `json:"budgets"`
	Acc     *QuantAccReport    `json:"acc"`
}

// quantBudgets are the swept hot-tier byte budgets: deliberately tight
// against the scaled workloads so entry density is the deciding factor.
var quantBudgets = []int64{64 << 10, 256 << 10, 1 << 20}

// RunQuant executes the quantized-path suite on the named workload.
func RunQuant(setup experiments.Setup, datasetName string, runs int) (*QuantReport, error) {
	if runs < 1 {
		runs = 1
	}
	rep := &QuantReport{
		Schema:         1,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		MaxProcs:       runtime.GOMAXPROCS(0),
		ParallelDegree: parallel.Degree(),
		Dataset:        datasetName,
		Scale:          setup.Scale,
		Runs:           runs,
	}

	kernels, speedup := quantKernelResults()
	rep.Results = append(rep.Results, kernels...)
	rep.KernelSpeedup = speedup

	w, err := experiments.LoadWorkload(datasetName, setup)
	if err != nil {
		return nil, err
	}

	// Hit rate vs byte budget, both precisions over the same stream.
	for _, budget := range quantBudgets {
		p := QuantBudgetPoint{
			BudgetBytes:    budget,
			Float32Entries: core.EntriesForBudgetQuant(budget, setup.NodeDim, false),
			Int8Entries:    core.EntriesForBudgetQuant(budget, setup.NodeDim, true),
		}
		p.Float32HitRate = quantHitRate(w, setup, budget, core.QuantOff)
		p.Int8HitRate = quantHitRate(w, setup, budget, core.QuantInt8)
		rep.Budgets = append(rep.Budgets, p)
	}

	// End-to-end at an equal (middle) budget: the kernel speedup and
	// the density-driven hit-rate gain compound into ns/edge.
	rep.E2EBudgetBytes = quantBudgets[1]
	rf := quantE2EResult("e2e/stream/float32", w, setup, rep.E2EBudgetBytes, core.QuantOff, runs)
	ri := quantE2EResult("e2e/stream/int8", w, setup, rep.E2EBudgetBytes, core.QuantInt8, runs)
	rep.Results = append(rep.Results, rf, ri)
	if ri.NsPerEdge > 0 {
		rep.E2ESpeedup = rf.NsPerEdge / ri.NsPerEdge
	}

	acc, err := RunQuantAcc(setup, datasetName)
	if err != nil {
		return nil, err
	}
	rep.Acc = acc
	return rep, nil
}

// quantKernelResults measures the float32 blocked kernel against the
// packed int8 kernel at the BENCH_1 attention-batch shape, plus the
// row-quantization pass the int8 path pays per activation matrix. The
// MB/s figures use the float32 byte volume on both rows so they are
// directly comparable (same work, different representation).
func quantKernelResults() ([]Result, float64) {
	r := tensor.NewRNG(1)
	x := tensor.Randn(r, kernelM, kernelK)
	b := tensor.Randn(r, kernelK, kernelN)
	wf := tensor.Randn(r, kernelN, kernelK)
	bias := tensor.Randn(r, kernelN)
	dst := tensor.New(kernelM, kernelN)
	bytes := int64(4 * (kernelM*kernelK + kernelK*kernelN + kernelM*kernelN))

	blocked := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.MatMulInto(x, b, dst)
		}
	})

	w := tensor.QuantizeMat(wf)
	q := make([]uint8, kernelM*kernelK)
	scales := make([]float32, kernelM)
	sums := make([]int32, kernelM)
	tensor.QuantizeRowsInto(x, q, scales, sums)
	packed := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.QuantLinearInto(q, scales, sums, kernelM, w, bias, dst)
		}
	})
	quantize := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.QuantizeRowsInto(x, q, scales, sums)
		}
	})

	rb := toResult("kernel/matmul_float32_blocked", blocked, bytes)
	rp := toResult("kernel/matmul_int8_packed", packed, bytes)
	rq := toResult("kernel/quantize_rows", quantize, bytes)
	var speedup float64
	if rb.MBPerS > 0 {
		speedup = rp.MBPerS / rb.MBPerS
	}
	return []Result{rb, rp, rq}, speedup
}

// quantOpts builds the engine options for one measured configuration:
// all paper optimizations on, hot tier capped by the byte budget at the
// given precision, no spill tier (the sweep isolates hot-tier density).
func quantOpts(s experiments.Setup, budget int64, quant core.QuantMode) core.Options {
	opt := optAll(s)
	opt.CacheBudgetBytes = budget
	opt.Quant = quant
	return opt
}

// quantHitRate runs one full chronological stream pass and returns the
// overall memo-cache hit rate.
func quantHitRate(w *experiments.Workload, s experiments.Setup, budget int64, quant core.QuantMode) float64 {
	hr := stats.NewHitRate(10)
	opt := quantOpts(s, budget, quant)
	opt.HitRate = hr
	eng := core.NewEngine(w.Model, w.Sampler, opt)
	tgat.StreamInferenceArenaScored(w.DS.Graph, w.Model, s.BatchSize, 1, eng.EmbedArenaFunc(), eng)
	return hr.Average()
}

// quantE2EResult measures full-stream inference at one precision and
// budget (fresh engine per repetition, minimum wall time, ns/edge).
func quantE2EResult(name string, w *experiments.Workload, s experiments.Setup, budget int64, quant core.QuantMode, runs int) Result {
	edges := len(w.DS.Graph.Edges())
	var best time.Duration
	var bestAllocs, bestBytes uint64
	for i := 0; i < runs; i++ {
		eng := core.NewEngine(w.Model, w.Sampler, quantOpts(s, budget, quant))
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		tgat.StreamInferenceArenaScored(w.DS.Graph, w.Model, s.BatchSize, 1, eng.EmbedArenaFunc(), eng)
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if i == 0 || wall < best {
			best = wall
			bestAllocs = m1.Mallocs - m0.Mallocs
			bestBytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}
	return Result{
		Name:        name,
		NsPerOp:     float64(best.Nanoseconds()),
		AllocsPerOp: float64(bestAllocs),
		BytesPerOp:  float64(bestBytes),
		NsPerEdge:   float64(best.Nanoseconds()) / float64(edges),
		Edges:       edges,
	}
}
