// The quantized-path accuracy harness (`tgopt-bench quantacc`): runs
// the same link-prediction task at float32 and int8 and reports the
// ranking-quality delta the quantization costs. The task is the
// paper's stream-inference protocol with sampled negatives: every real
// edge (src, dst, t) is a positive, paired with one negative (src,
// rnd, t) drawn uniformly from the node set, and both precisions score
// the identical pairs. check.sh gates on APDelta.

package perfbench

import (
	"sort"

	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/tensor"
)

// QuantAccReport compares link-prediction quality across precisions.
type QuantAccReport struct {
	Dataset string `json:"dataset"`
	Edges   int    `json:"edges"`
	// Average precision (positives ranked above sampled negatives) and
	// accuracy at logit 0, per precision.
	APFloat32  float64 `json:"ap_float32"`
	APInt8     float64 `json:"ap_int8"`
	APDelta    float64 `json:"ap_delta"` // |float32 − int8|
	AccFloat32 float64 `json:"acc_float32"`
	AccInt8    float64 `json:"acc_int8"`
	// MaxAbsEmbedDelta is the largest per-element difference between
	// the float32 and int8 top-layer embeddings over every target.
	MaxAbsEmbedDelta float64 `json:"max_abs_embed_delta"`
	// MaxAbsLogitDelta is the same bound on the affinity logits.
	MaxAbsLogitDelta float64 `json:"max_abs_logit_delta"`
}

// RunQuantAcc runs the accuracy comparison on the named workload. Both
// engines run with all paper optimizations at the default cache limit,
// so the comparison isolates precision, not configuration.
func RunQuantAcc(setup experiments.Setup, datasetName string) (*QuantAccReport, error) {
	w, err := experiments.LoadWorkload(datasetName, setup)
	if err != nil {
		return nil, err
	}
	edges := w.DS.Graph.Edges()
	n := len(edges)
	numNodes := w.DS.Graph.NumNodes()

	// Sampled negatives: deterministic, shared by both precisions.
	rng := tensor.NewRNG(setup.Seed + 17)
	negDst := make([]int32, n)
	for i := range negDst {
		negDst[i] = int32(rng.Uint64() % uint64(numNodes))
	}

	optF := optAll(setup)
	optQ := optAll(setup)
	optQ.Quant = core.QuantInt8
	engF := core.NewEngine(w.Model, w.Sampler, optF)
	engQ := core.NewEngine(w.Model, w.Sampler, optQ)

	rep := &QuantAccReport{Dataset: datasetName, Edges: n}
	batch := setup.BatchSize
	if batch < 1 {
		batch = 200
	}
	d := w.Model.Cfg.NodeDim
	posF := make([]float64, n)
	negF := make([]float64, n)
	posQ := make([]float64, n)
	negQ := make([]float64, n)
	arF := tensor.NewArena()
	arQ := tensor.NewArena()
	nodes := make([]int32, 3*batch)
	ts := make([]float64, 3*batch)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		nb := end - start
		// Targets packed src ‖ dst ‖ negative-dst, timestamps shared.
		for i, e := range edges[start:end] {
			nodes[i], nodes[nb+i], nodes[2*nb+i] = e.Src, e.Dst, negDst[start+i]
			ts[i], ts[nb+i], ts[2*nb+i] = e.Time, e.Time, e.Time
		}
		arF.Reset()
		arQ.Reset()
		hF := engF.EmbedWith(arF, nodes[:3*nb], ts[:3*nb])
		hQ := engQ.EmbedWith(arQ, nodes[:3*nb], ts[:3*nb])
		for i := 0; i < 3*nb*d; i++ {
			diff := float64(hF.Data()[i]) - float64(hQ.Data()[i])
			if diff < 0 {
				diff = -diff
			}
			if diff > rep.MaxAbsEmbedDelta {
				rep.MaxAbsEmbedDelta = diff
			}
		}
		scorePairs := func(eng *core.Engine, ar *tensor.Arena, h *tensor.Tensor, pos, neg []float64) {
			hSrc := ar.Wrap(h.Data()[:nb*d], nb, d)
			hDst := ar.Wrap(h.Data()[nb*d:2*nb*d], nb, d)
			hNeg := ar.Wrap(h.Data()[2*nb*d:3*nb*d], nb, d)
			lp := eng.ScoreWith(ar, hSrc, hDst)
			ln := eng.ScoreWith(ar, hSrc, hNeg)
			for i := 0; i < nb; i++ {
				pos[start+i] = float64(lp.At(i, 0))
				neg[start+i] = float64(ln.At(i, 0))
			}
		}
		scorePairs(engF, arF, hF, posF, negF)
		scorePairs(engQ, arQ, hQ, posQ, negQ)
	}
	for i := 0; i < n; i++ {
		for _, diff := range []float64{posF[i] - posQ[i], negF[i] - negQ[i]} {
			if diff < 0 {
				diff = -diff
			}
			if diff > rep.MaxAbsLogitDelta {
				rep.MaxAbsLogitDelta = diff
			}
		}
	}

	rep.APFloat32 = averagePrecision(posF, negF)
	rep.APInt8 = averagePrecision(posQ, negQ)
	rep.APDelta = rep.APFloat32 - rep.APInt8
	if rep.APDelta < 0 {
		rep.APDelta = -rep.APDelta
	}
	rep.AccFloat32 = thresholdAccuracy(posF, negF)
	rep.AccInt8 = thresholdAccuracy(posQ, negQ)
	return rep, nil
}

// averagePrecision ranks all scores descending (positives labeled 1,
// negatives 0) and returns the mean of precision-at-rank over the
// positives — the standard AP of the TGAT evaluation protocol. Ties
// between a positive and a negative are broken pessimistically
// (negative first) so quantization can only be charged, never
// credited, for collapsing distinct scores.
func averagePrecision(pos, neg []float64) float64 {
	type scored struct {
		s   float64
		lab int
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, s := range pos {
		all = append(all, scored{s, 1})
	}
	for _, s := range neg {
		all = append(all, scored{s, 0})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].lab < all[j].lab
	})
	var hits, sum float64
	for rank, sc := range all {
		if sc.lab == 1 {
			hits++
			sum += hits / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / hits
}

// thresholdAccuracy is the fraction of correct calls at logit 0:
// positives above, negatives at-or-below.
func thresholdAccuracy(pos, neg []float64) float64 {
	var ok int
	for _, s := range pos {
		if s > 0 {
			ok++
		}
	}
	for _, s := range neg {
		if s <= 0 {
			ok++
		}
	}
	return float64(ok) / float64(len(pos)+len(neg))
}
