package perfbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tgopt/internal/batcher"
	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/graph"
	"tgopt/internal/serve"
)

// ServeLoadConfig shapes the closed-loop serving benchmark behind
// `tgopt-bench serve`: at each concurrency level, that many clients
// each send embed requests back-to-back (closed loop — a client's next
// request waits for its previous response) against an in-process server
// with cross-request batching off and then on. Target nodes are drawn
// from a small shared pool, so concurrent requests overlap — the
// redundancy the paper exploits within a batch and the batcher extends
// across requests.
//
// With RotateEvery > 0 (the default) every request queries one shared
// "now" timestamp that steps forward each RotateEvery requests across
// all clients. This is the live-serving workload: time advances, so
// keys are continually fresh (the memo cache alone cannot absorb them),
// yet concurrent requests land in the same time slot and overlap.
// RotateEvery = 0 freezes per-target timestamps instead, a fully
// memoizable workload that degenerates to cache-hit serving after
// warmup.
type ServeLoadConfig struct {
	Concurrency       []int         // closed-loop client counts, one level each
	RequestsPerClient int           // measured requests per client per level
	WarmupPerClient   int           // unmeasured requests per client per level
	TargetsPerRequest int           // ⟨node, ts⟩ targets per embed request
	TargetPool        int           // distinct targets shared by all clients
	RotateEvery       int           // advance the query timestamp every this many requests (0 = static times)
	Window            time.Duration // batcher flush window (batching-on runs)
	MaxBatch          int           // batcher size trigger (batching-on runs)
	Seed              uint64
}

// DefaultServeLoadConfig is the committed BENCH_2.json configuration.
func DefaultServeLoadConfig() ServeLoadConfig {
	return ServeLoadConfig{
		Concurrency:       []int{1, 8, 32},
		RequestsPerClient: 400,
		WarmupPerClient:   30,
		TargetsPerRequest: 4,
		TargetPool:        48,
		RotateEvery:       64,
		Window:            batcher.DefaultWindow,
		MaxBatch:          batcher.DefaultMaxBatch,
		Seed:              1,
	}
}

// ServeLevel is one measured (concurrency, batching) cell.
type ServeLevel struct {
	Concurrency int     `json:"concurrency"`
	Batching    bool    `json:"batching"`
	Requests    int     `json:"requests"`
	WallMs      float64 `json:"wall_ms"`
	Throughput  float64 `json:"req_per_s"`
	MeanUs      float64 `json:"mean_us"`
	P50us       float64 `json:"p50_us"`
	P90us       float64 `json:"p90_us"`
	P99us       float64 `json:"p99_us"`
	// Batcher accounting (zero when batching is off).
	Batches       int64   `json:"batches,omitempty"`
	Enqueued      int64   `json:"enqueued,omitempty"`
	Coalesced     int64   `json:"coalesced,omitempty"`
	CoalesceRatio float64 `json:"coalesce_ratio,omitempty"`
	OccupancyMean float64 `json:"occupancy_mean,omitempty"`
}

// ServeReport is the full `tgopt-bench serve` output (BENCH_2.json).
type ServeReport struct {
	Schema            int          `json:"schema"`
	GoVersion         string       `json:"go_version"`
	GOOS              string       `json:"goos"`
	GOARCH            string       `json:"goarch"`
	MaxProcs          int          `json:"maxprocs"`
	Dataset           string       `json:"dataset"`
	Scale             float64      `json:"scale"`
	TargetPool        int          `json:"target_pool"`
	TargetsPerRequest int          `json:"targets_per_request"`
	RotateEvery       int          `json:"rotate_every"`
	RequestsPerClient int          `json:"requests_per_client"`
	WindowMs          float64      `json:"batch_window_ms"`
	MaxBatch          int          `json:"batch_max"`
	Levels            []ServeLevel `json:"levels"`
	// SpeedupMaxConc is the acceptance number: batched / unbatched
	// throughput at the highest concurrency level.
	SpeedupMaxConc float64 `json:"speedup_at_max_concurrency"`
}

// target is one pool entry.
type target struct {
	node int32
	ts   float64
}

// RunServe executes the closed-loop serving benchmark and returns the
// report. The same target pool, client schedule, and request count are
// used for the batching-off and batching-on runs of each level, each
// against a fresh server (fresh engine cache), so the cells differ only
// in the serving path under test.
func RunServe(setup experiments.Setup, datasetName string, cfg ServeLoadConfig) (*ServeReport, error) {
	if len(cfg.Concurrency) == 0 || cfg.RequestsPerClient <= 0 {
		return nil, fmt.Errorf("perfbench: serve load needs concurrency levels and a request count")
	}
	if cfg.TargetsPerRequest <= 0 {
		cfg.TargetsPerRequest = 1
	}
	if cfg.TargetPool <= 0 {
		cfg.TargetPool = 48
	}
	w, err := experiments.LoadWorkload(datasetName, setup)
	if err != nil {
		return nil, err
	}
	dyn := graph.NewDynamic(w.DS.Graph.NumNodes())
	for _, e := range w.DS.Graph.Edges() {
		if _, err := dyn.Append(e); err != nil {
			return nil, err
		}
	}

	// The shared target pool: nodes across the graph, integral times
	// past the end of history (so every target sees its full sampled
	// neighborhood and keys stay in the collision-free domain).
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	pool := make([]target, cfg.TargetPool)
	base := dyn.MaxTime() + 1
	for i := range pool {
		pool[i] = target{
			node: int32(1 + rng.Intn(dyn.NumNodes())),
			ts:   base + float64(rng.Intn(1000)),
		}
	}

	rep := &ServeReport{
		Schema:            1,
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		MaxProcs:          runtime.GOMAXPROCS(0),
		Dataset:           datasetName,
		Scale:             setup.Scale,
		TargetPool:        cfg.TargetPool,
		TargetsPerRequest: cfg.TargetsPerRequest,
		RotateEvery:       cfg.RotateEvery,
		RequestsPerClient: cfg.RequestsPerClient,
		WindowMs:          float64(cfg.Window) / float64(time.Millisecond),
		MaxBatch:          cfg.MaxBatch,
	}

	opt := core.OptAll()
	opt.CacheLimit = setup.EffectiveCacheLimit()
	opt.TimeWindow = setup.TimeWindow

	for _, conc := range cfg.Concurrency {
		for _, batching := range []bool{false, true} {
			srv := serve.New(w.Model, dyn, opt)
			if batching {
				srv.SetBatching(batcher.Config{Window: cfg.Window, MaxBatch: cfg.MaxBatch})
			}
			level, err := runServeLevel(srv, pool, base, conc, cfg)
			if err != nil {
				return nil, fmt.Errorf("concurrency %d batching %v: %w", conc, batching, err)
			}
			level.Batching = batching
			rep.Levels = append(rep.Levels, *level)
		}
	}

	// Acceptance number: batched vs unbatched at the highest level.
	var offTP, onTP float64
	maxConc := cfg.Concurrency[0]
	for _, c := range cfg.Concurrency {
		if c > maxConc {
			maxConc = c
		}
	}
	for _, l := range rep.Levels {
		if l.Concurrency == maxConc {
			if l.Batching {
				onTP = l.Throughput
			} else {
				offTP = l.Throughput
			}
		}
	}
	if offTP > 0 {
		rep.SpeedupMaxConc = onTP / offTP
	}
	return rep, nil
}

// runServeLevel drives one (server, concurrency) cell and aggregates
// the per-request latencies. The rotation counter is per-cell, so the
// batching-off and batching-on runs see the same timestamp schedule
// against their fresh servers.
func runServeLevel(srv *serve.Server, pool []target, base float64, conc int, cfg ServeLoadConfig) (*ServeLevel, error) {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc * 2,
	}}
	defer client.CloseIdleConnections()
	url := ts.URL + "/v1/embed"

	type clientResult struct {
		lat []time.Duration
		err error
	}
	results := make([]clientResult, conc)
	var reqSeq atomic.Int64
	doOne := func(rng *rand.Rand) (time.Duration, error) {
		nodes := make([]int32, cfg.TargetsPerRequest)
		times := make([]float64, cfg.TargetsPerRequest)
		var now float64
		if cfg.RotateEvery > 0 {
			// Advancing "now": all targets of a request query the current
			// time slot; concurrent requests share it.
			now = base + float64(reqSeq.Add(1)/int64(cfg.RotateEvery))
		}
		for j := range nodes {
			t := pool[rng.Intn(len(pool))]
			nodes[j], times[j] = t.node, t.ts
			if cfg.RotateEvery > 0 {
				times[j] = now
			}
		}
		body, err := json.Marshal(map[string]any{"nodes": nodes, "times": times})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		var sink bytes.Buffer
		sink.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d: %s", resp.StatusCode, sink.String())
		}
		return time.Since(start), nil
	}

	// Warmup phase (populates the engine cache and the HTTP conn pool),
	// then a barrier once EVERY client is warm, then the measured
	// closed loop — the wall clock covers only measured requests.
	var warm, wg sync.WaitGroup
	startGate := make(chan struct{})
	for c := 0; c < conc; c++ {
		c := c
		warm.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919 + 1))
			for i := 0; i < cfg.WarmupPerClient; i++ {
				if _, err := doOne(rng); err != nil {
					results[c].err = err
					break
				}
			}
			warm.Done()
			<-startGate
			if results[c].err != nil {
				return
			}
			lat := make([]time.Duration, 0, cfg.RequestsPerClient)
			for i := 0; i < cfg.RequestsPerClient; i++ {
				d, err := doOne(rng)
				if err != nil {
					results[c].err = err
					return
				}
				lat = append(lat, d)
			}
			results[c].lat = lat
		}()
	}
	warm.Wait()
	wall := time.Now()
	close(startGate)
	wg.Wait()
	elapsed := time.Since(wall)

	var all []time.Duration
	for c := range results {
		if results[c].err != nil {
			return nil, results[c].err
		}
		all = append(all, results[c].lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q*float64(len(all))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / float64(time.Microsecond)
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	level := &ServeLevel{
		Concurrency: conc,
		Requests:    len(all),
		WallMs:      float64(elapsed) / float64(time.Millisecond),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		MeanUs:      float64(sum) / float64(len(all)) / float64(time.Microsecond),
		P50us:       quantile(0.50),
		P90us:       quantile(0.90),
		P99us:       quantile(0.99),
	}
	if b := srv.Batcher(); b != nil {
		snap := b.Stats()
		level.Batches = snap.Batches
		level.Enqueued = snap.Enqueued
		level.Coalesced = snap.Coalesced
		level.CoalesceRatio = snap.CoalesceRatio()
		level.OccupancyMean = b.Occupancy().Mean()
	}
	return level, nil
}
