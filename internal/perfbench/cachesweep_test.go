package perfbench

import "testing"

// TestCacheSweepAcceptance pins the BENCH_3.json acceptance bar at a
// reduced scale: TinyLFU's hit rate is never below FIFO's at equal
// byte budget, and is strictly above it at the smallest budget, where
// admission matters most.
func TestCacheSweepAcceptance(t *testing.T) {
	cfg := DefaultCacheSweepConfig()
	cfg.Keyspace = 20_000
	cfg.Accesses = 80_000
	cfg.Budgets = []int64{64 << 10, 256 << 10, 1 << 20}
	rep, err := RunCacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range rep.Points {
		t.Logf("budget %8d: fifo %.4f tinylfu %.4f", p.BudgetBytes, p.FIFOHitRate, p.TinyLFUHitRate)
		if p.TinyLFUHitRate < p.FIFOHitRate {
			t.Errorf("budget %d: TinyLFU %.4f below FIFO %.4f", p.BudgetBytes, p.TinyLFUHitRate, p.FIFOHitRate)
		}
		if i == 0 && p.Improvement <= 0 {
			t.Errorf("smallest budget: improvement %.4f, want > 0", p.Improvement)
		}
	}
}

// TestCacheSweepDeterministic: the committed artifact must reproduce
// bit-identically from the same seed.
func TestCacheSweepDeterministic(t *testing.T) {
	cfg := DefaultCacheSweepConfig()
	cfg.Keyspace = 5_000
	cfg.Accesses = 20_000
	cfg.Budgets = []int64{64 << 10}
	a, err := RunCacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0] != b.Points[0] {
		t.Fatalf("sweep not deterministic: %+v vs %+v", a.Points[0], b.Points[0])
	}
}
