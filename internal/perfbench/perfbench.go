// Package perfbench is the committed performance harness behind
// `tgopt-bench perf` and scripts/bench.sh. It measures the dense
// kernels, the arena-backed attention operator, and the end-to-end
// stream-inference task, and emits one machine-readable JSON report
// (BENCH_<n>.json at the repo root) so perf regressions are caught by
// diffing committed artifacts rather than by folklore. The end-to-end
// ns/edge metric is the acceptance number: BENCH_1.json must beat the
// pre-optimization BENCH_0.json by the margin recorded in CHANGES.md.
package perfbench

import (
	"runtime"
	"testing"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/experiments"
	"tgopt/internal/nn"
	"tgopt/internal/parallel"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Result is one measured benchmark.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// End-to-end extras (zero for kernel benches).
	NsPerEdge float64 `json:"ns_per_edge,omitempty"`
	Edges     int     `json:"edges,omitempty"`
}

// Report is the full suite output. GC figures cover the whole suite
// run: after the zero-allocation work the end-to-end passes should
// barely move them.
type Report struct {
	Schema         int      `json:"schema"`
	GoVersion      string   `json:"go_version"`
	GOOS           string   `json:"goos"`
	GOARCH         string   `json:"goarch"`
	MaxProcs       int      `json:"maxprocs"`
	ParallelDegree int      `json:"parallel_degree"`
	Dataset        string   `json:"dataset"`
	Scale          float64  `json:"scale"`
	Runs           int      `json:"runs"`
	GCPauseTotalNs uint64   `json:"gc_pause_total_ns"`
	NumGC          uint32   `json:"num_gc"`
	Results        []Result `json:"results"`
}

// kernelDims are the dense-kernel benchmark dimensions: a full batch of
// attention rows (200 targets × 10 neighbors) against the experiment
// feature widths.
const (
	kernelM = 2048
	kernelK = 96
	kernelN = 64
)

// Run executes the whole suite on the named workload and returns the
// report. runs controls the end-to-end repetitions (minimum is
// reported, matching the paper's methodology of discarding warmup and
// scheduler noise).
func Run(setup experiments.Setup, datasetName string, runs int) (*Report, error) {
	if runs < 1 {
		runs = 1
	}
	w, err := experiments.LoadWorkload(datasetName, setup)
	if err != nil {
		return nil, err
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	rep := &Report{
		Schema:         1,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		MaxProcs:       runtime.GOMAXPROCS(0),
		ParallelDegree: parallel.Degree(),
		Dataset:        datasetName,
		Scale:          setup.Scale,
		Runs:           runs,
	}
	rep.Results = append(rep.Results, kernelResults()...)
	rep.Results = append(rep.Results, attentionResult(setup))
	rep.Results = append(rep.Results,
		e2eResult("e2e/stream/baseline", w, setup, core.Options{}, runs),
		e2eResult("e2e/stream/optall", w, setup, optAll(setup), runs),
	)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	rep.GCPauseTotalNs = after.PauseTotalNs - before.PauseTotalNs
	rep.NumGC = after.NumGC - before.NumGC
	return rep, nil
}

func optAll(s experiments.Setup) core.Options {
	opt := core.OptAll()
	opt.CacheLimit = s.EffectiveCacheLimit()
	opt.TimeWindow = s.TimeWindow
	return opt
}

// toResult converts a testing.BenchmarkResult, attaching the byte
// volume moved per op for the MB/s figure (0 skips it).
func toResult(name string, r testing.BenchmarkResult, bytesPerOp int64) Result {
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
		BytesPerOp:  float64(r.MemBytes) / float64(r.N),
	}
	if bytesPerOp > 0 && r.T > 0 {
		res.MBPerS = float64(bytesPerOp) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return res
}

// kernelResults measures the dense matmul kernels at attention-batch
// shape: the naive reference, the blocked kernel behind MatMulInto, the
// packed-panel kernel, and the sparse kernel on an 87%-zero operand
// (its masked-softmax use case).
func kernelResults() []Result {
	r := tensor.NewRNG(1)
	a := tensor.Randn(r, kernelM, kernelK)
	b := tensor.Randn(r, kernelK, kernelN)
	dst := tensor.New(kernelM, kernelN)
	pack := make([]float32, tensor.PackedScratchLen(kernelK, kernelN))
	aSparse := a.Clone()
	sd := aSparse.Data()
	for i := range sd {
		if i%8 != 0 {
			sd[i] = 0
		}
	}
	bytes := int64(4 * (kernelM*kernelK + kernelK*kernelN + kernelM*kernelN))

	blocked := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.MatMulInto(a, b, dst)
		}
	})
	packed := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.MatMulPackedInto(a, b, dst, pack)
		}
	})
	sparse := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			tensor.MatMulSparseInto(aSparse, b, dst)
		}
	})
	return []Result{
		toResult("kernel/matmul_blocked", blocked, bytes),
		toResult("kernel/matmul_packed", packed, bytes),
		toResult("kernel/matmul_sparse_87pct", sparse, bytes),
	}
}

// attentionResult measures one arena-backed attention forward at the
// experiment batch shape.
func attentionResult(s experiments.Setup) Result {
	cfg := s.ModelConfig()
	r := tensor.NewRNG(2)
	attn := nn.NewTemporalAttention(r, cfg.Heads, cfg.QDim(), cfg.KDim())
	n := s.BatchSize
	q := tensor.Randn(r, n, cfg.QDim())
	kv := tensor.Randn(r, n*cfg.NumNeighbors, cfg.KDim())
	mask := make([]bool, n*cfg.NumNeighbors)
	for i := range mask {
		mask[i] = i%4 != 3
	}
	ar := tensor.NewArena()
	res := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			ar.Reset()
			attn.ForwardWith(ar, q, kv, cfg.NumNeighbors, mask)
		}
	})
	return toResult("kernel/attention_forward", res, 0)
}

// e2eResult measures full chronological stream inference over the
// workload under opt: fresh engine per repetition, minimum wall time
// reported, normalized to ns per scored edge. Allocation counts are the
// per-pass malloc totals of the best run's pass.
func e2eResult(name string, w *experiments.Workload, s experiments.Setup, opt core.Options, runs int) Result {
	edges := len(w.DS.Graph.Edges())
	var best time.Duration
	var bestAllocs, bestBytes uint64
	for i := 0; i < runs; i++ {
		eng := core.NewEngine(w.Model, w.Sampler, opt)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		tgat.StreamInferenceArena(w.DS.Graph, w.Model, s.BatchSize, 1, eng.EmbedArenaFunc())
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if i == 0 || wall < best {
			best = wall
			bestAllocs = m1.Mallocs - m0.Mallocs
			bestBytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}
	return Result{
		Name:        name,
		NsPerOp:     float64(best.Nanoseconds()),
		AllocsPerOp: float64(bestAllocs),
		BytesPerOp:  float64(bestBytes),
		NsPerEdge:   float64(best.Nanoseconds()) / float64(edges),
		Edges:       edges,
	}
}
