package trainer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tgopt/internal/checkpoint"
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Training checkpoints capture everything a run needs to continue
// bit-for-bit where it stopped: the model parameters, the Adam moment
// tensors and step counter, both RNG streams (negative sampling and
// dropout), the epoch/batch cursors, and the per-epoch loss history.
// They are written through internal/checkpoint, so a crash mid-save
// preserves the previous checkpoint and corruption is detected before
// any state is applied. A resumed run therefore reproduces the loss
// trajectory of an uninterrupted one exactly.
//
// Payload (little-endian, inside the checkpoint envelope):
//
//	epoch, batch, batches, adamStep  uint64
//	lossSum                          float64 bits
//	negState, dropState              uint64
//	nEpochLoss uint64, then that many float64
//	nTensors   uint32, then params, Adam m, Adam v tensor streams
const trainCheckpointVersion uint32 = 1

// trainState is the resumable position of a training run.
type trainState struct {
	epoch     int       // completed epochs
	batch     int       // completed batches within the current epoch
	lossSum   float64   // current epoch's running loss over finite batches
	batches   int       // finite batches contributing to lossSum
	epochLoss []float64 // completed epochs' mean losses
	negState  uint64
	dropState uint64
	adamStep  int
}

func saveTrainCheckpoint(fsys checkpoint.FS, path string, m *tgat.Model, opt *nn.Adam, neg, drop *tensor.RNG, st *trainState) error {
	return checkpoint.WriteFS(fsys, path, trainCheckpointVersion, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		put64 := func(v uint64) error {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			_, err := bw.Write(b[:])
			return err
		}
		for _, v := range []uint64{
			uint64(st.epoch), uint64(st.batch), uint64(st.batches), uint64(opt.StepCount()),
			math.Float64bits(st.lossSum), neg.State(), drop.State(), uint64(len(st.epochLoss)),
		} {
			if err := put64(v); err != nil {
				return err
			}
		}
		for _, l := range st.epochLoss {
			if err := put64(math.Float64bits(l)); err != nil {
				return err
			}
		}
		ps := m.Params()
		am, av := opt.Moments()
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(ps)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		for _, group := range [][]*tensor.Tensor{ps, am, av} {
			for _, t := range group {
				if _, err := t.WriteTo(bw); err != nil {
					return err
				}
			}
		}
		return bw.Flush()
	})
}

// loadTrainCheckpoint restores a checkpoint into the model and
// optimizer and returns the resumable position. The apply is
// all-or-nothing: every field and tensor is parsed and validated
// before the first byte of live state changes.
func loadTrainCheckpoint(path string, m *tgat.Model, opt *nn.Adam, neg, drop *tensor.RNG) (*trainState, error) {
	st := &trainState{}
	err := checkpoint.Read(path, func(version uint32, r io.Reader) error {
		if version != trainCheckpointVersion {
			return fmt.Errorf("trainer: checkpoint version %d, trainer reads %d", version, trainCheckpointVersion)
		}
		br := bufio.NewReader(r)
		get64 := func() (uint64, error) {
			var b [8]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return 0, err
			}
			return binary.LittleEndian.Uint64(b[:]), nil
		}
		head := make([]uint64, 8)
		for i := range head {
			v, err := get64()
			if err != nil {
				return fmt.Errorf("trainer: checkpoint header: %w", err)
			}
			head[i] = v
		}
		epoch, batch, batches := head[0], head[1], head[2]
		adamStep := head[3]
		lossSum := math.Float64frombits(head[4])
		negState, dropState := head[5], head[6]
		nLoss := head[7]
		const sane = 1 << 32
		if epoch > sane || batch > sane || batches > sane || adamStep > sane || nLoss > sane {
			return fmt.Errorf("trainer: implausible checkpoint cursors %v", head[:4])
		}
		epochLoss := make([]float64, 0, min(int(nLoss), 4096))
		for i := uint64(0); i < nLoss; i++ {
			v, err := get64()
			if err != nil {
				return fmt.Errorf("trainer: checkpoint loss history: %w", err)
			}
			epochLoss = append(epochLoss, math.Float64frombits(v))
		}
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		count := binary.LittleEndian.Uint32(hdr[:])
		ps := m.Params()
		am, av := opt.Moments()
		if int(count) != len(ps) {
			return fmt.Errorf("trainer: checkpoint has %d tensors, model expects %d", count, len(ps))
		}
		// Stage all three tensor groups before applying any.
		staged := make([][]*tensor.Tensor, 3)
		for gi, group := range [][]*tensor.Tensor{ps, am, av} {
			for i, want := range group {
				var t tensor.Tensor
				if _, err := t.ReadFrom(br); err != nil {
					return fmt.Errorf("trainer: checkpoint tensor group %d index %d: %w", gi, i, err)
				}
				if !t.SameShape(want) {
					return fmt.Errorf("trainer: checkpoint tensor group %d index %d shape %v, model expects %v", gi, i, t.Shape(), want.Shape())
				}
				staged[gi] = append(staged[gi], &t)
			}
		}

		// Commit.
		for gi, group := range [][]*tensor.Tensor{ps, am, av} {
			for i, dst := range group {
				dst.CopyFrom(staged[gi][i])
			}
		}
		opt.SetStepCount(int(adamStep))
		neg.SetState(negState)
		drop.SetState(dropState)
		st.epoch = int(epoch)
		st.batch = int(batch)
		st.batches = int(batches)
		st.lossSum = lossSum
		st.epochLoss = epochLoss
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}
