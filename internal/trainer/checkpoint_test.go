package trainer

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"tgopt/internal/faultfs"
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
)

func finiteLosses(t *testing.T, losses []float64) {
	t.Helper()
	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("epoch %d loss is %v: %v", i, l, losses)
		}
	}
}

// TestTrainResumeMatchesUninterrupted is the core resume guarantee: a
// run interrupted mid-epoch and resumed in a fresh process (fresh
// model, sampler, RNGs) produces exactly the loss trajectory and final
// parameters of an uninterrupted run.
func TestTrainResumeMatchesUninterrupted(t *testing.T) {
	base := Config{Epochs: 3, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1, Dropout: 0.1}

	ds, m, s := trainerSetup(t, 600)
	full, err := Train(m, ds.Graph, s, base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := base
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 2
	cfg.MaxBatches = 7 // stop inside epoch 2

	_, m1, s1 := trainerSetup(t, 600)
	part, err := Train(m1, ds.Graph, s1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted {
		t.Fatal("MaxBatches run not marked Interrupted")
	}

	// "New process": everything rebuilt from scratch, state comes only
	// from the checkpoint file.
	_, m2, s2 := trainerSetup(t, 600)
	cfg.MaxBatches = 0
	cfg.Resume = true
	resumed, err := Train(m2, ds.Graph, s2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.EpochLoss) != len(full.EpochLoss) {
		t.Fatalf("resumed epochs %v, uninterrupted %v", resumed.EpochLoss, full.EpochLoss)
	}
	for i := range full.EpochLoss {
		if resumed.EpochLoss[i] != full.EpochLoss[i] {
			t.Fatalf("epoch %d loss diverged after resume: %v vs %v", i, resumed.EpochLoss[i], full.EpochLoss[i])
		}
	}
	fp, rp := m.Params(), m2.Params()
	for i := range fp {
		if d := fp[i].MaxAbsDiff(rp[i]); d != 0 {
			t.Fatalf("parameter %d differs by %g after resume", i, d)
		}
	}
	if resumed.ValAP != full.ValAP || resumed.ValAcc != full.ValAcc {
		t.Fatalf("validation metrics diverged: %+v vs %+v", resumed, full)
	}
}

// TestTrainNonFiniteSkipWithoutCheckpoint: with no checkpoint to roll
// back to, a poisoned batch is skipped, counted, and excluded from the
// epoch mean.
func TestTrainNonFiniteSkipWithoutCheckpoint(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	var saved float32
	preStepHook = func(step int) {
		p := m.Params()[0].Data()
		switch step {
		case 2:
			saved = p[0]
			p[0] = float32(math.NaN())
		case 3:
			p[0] = saved // heal: without rollback nobody else will
		}
	}
	defer func() { preStepHook = nil }()

	cfg := Config{Epochs: 2, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonFinite != 1 {
		t.Fatalf("NonFinite = %d, want 1", res.NonFinite)
	}
	if res.Rollbacks != 0 {
		t.Fatalf("Rollbacks = %d without a checkpoint", res.Rollbacks)
	}
	finiteLosses(t, res.EpochLoss)
}

// TestTrainRollbackHealsPoisonedParams: with checkpointing on, a
// non-finite batch restores the last checkpoint — including the
// poisoned parameter — and training completes cleanly.
func TestTrainRollbackHealsPoisonedParams(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	poisoned := false
	preStepHook = func(step int) {
		if step == 3 && !poisoned {
			poisoned = true
			m.Params()[0].Data()[0] = float32(math.Inf(1))
		}
	}
	defer func() { preStepHook = nil }()

	cfg := Config{
		Epochs: 2, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1,
		CheckpointPath: filepath.Join(t.TempDir(), "train.ckpt"), CheckpointEvery: 2,
	}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonFinite != 1 || res.Rollbacks != 1 {
		t.Fatalf("NonFinite = %d Rollbacks = %d, want 1/1", res.NonFinite, res.Rollbacks)
	}
	finiteLosses(t, res.EpochLoss)
	for i, p := range m.Params() {
		if !finiteTensors([]*tensor.Tensor{p}) {
			t.Fatalf("parameter %d still non-finite after rollback", i)
		}
	}
}

// TestTrainDivergedAfterMaxRollbacks: a fault that reappears after
// every rollback must terminate with an error, not loop forever.
func TestTrainDivergedAfterMaxRollbacks(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	preStepHook = func(step int) {
		if step >= 1 {
			m.Params()[0].Data()[0] = float32(math.NaN())
		}
	}
	defer func() { preStepHook = nil }()

	cfg := Config{
		Epochs: 2, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1,
		CheckpointPath: filepath.Join(t.TempDir(), "train.ckpt"), MaxRollbacks: 2,
	}
	res, err := Train(m, ds.Graph, s, cfg)
	if err == nil {
		t.Fatal("persistently non-finite training did not error")
	}
	if res == nil || res.Rollbacks != 2 || res.NonFinite != 3 {
		t.Fatalf("result %+v, want 2 rollbacks and 3 non-finite batches", res)
	}
}

// TestTrainResumeMissingCheckpointStartsFresh: Resume against a path
// that does not exist yet is a fresh run, not an error.
func TestTrainResumeMissingCheckpointStartsFresh(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	cfg := Config{
		Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 0.7, Seed: 1,
		CheckpointPath: filepath.Join(t.TempDir(), "none.ckpt"), Resume: true,
	}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != 1 {
		t.Fatalf("epoch losses = %v", res.EpochLoss)
	}
}

// TestTrainResumeCorruptCheckpointErrors: resuming from a damaged
// checkpoint must fail loudly, never silently train from garbage.
func TestTrainResumeCorruptCheckpointErrors(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := Config{
		Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 0.7, Seed: 1,
		CheckpointPath: path,
	}
	if _, err := Train(m, ds.Graph, s, cfg); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(path, 999); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	if _, err := Train(m, ds.Graph, s, cfg); err == nil {
		t.Fatal("bit-flipped checkpoint accepted on resume")
	}

	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, ds.Graph, s, cfg); err == nil {
		t.Fatal("garbage checkpoint accepted on resume")
	}
}

// TestTrainCheckpointConfigValidation covers the new config knobs.
func TestTrainCheckpointConfigValidation(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	bad := []Config{
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 0.7, Resume: true},
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 0.7, CheckpointEvery: -1},
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 0.7, MaxBatches: -1},
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 0.7, MaxRollbacks: -1},
	}
	for i, cfg := range bad {
		if _, err := Train(m, ds.Graph, s, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestTrainCheckpointAtomicUnderWriteFaults drives the save path
// through the fault-injecting FS directly: whatever fault interrupts a
// save, the previous checkpoint on disk stays fully loadable.
func TestTrainCheckpointAtomicUnderWriteFaults(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := Config{
		Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 0.7, Seed: 1,
		CheckpointPath: path,
	}
	if _, err := Train(m, ds.Graph, s, cfg); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	opt2 := nn.NewAdam(m.Params(), 1e-3)
	st := &trainState{epoch: 1, batch: 2, lossSum: 0.5, batches: 2, epochLoss: []float64{0.7}}
	neg := tensor.NewRNG(3)
	drop := tensor.NewRNG(4)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	limits := []int{0, 1, 15, 16, 17, int(info.Size()) / 2, int(info.Size()) - 1}
	for _, limit := range limits {
		fsys := faultfs.NewFS()
		fsys.WriteLimit = limit
		if err := saveTrainCheckpoint(fsys, path, m, opt2, neg, drop, st); err == nil {
			t.Fatalf("short write at %d not reported", limit)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(clean) {
			t.Fatalf("short write at %d damaged the previous checkpoint", limit)
		}
	}
}
